# Convenience targets for the skandium reproduction.

GO ?= go

.PHONY: all build test race bench figures examples vet fmt lint cover check chaos overload tournament clean

all: check

# check is the pre-merge gate: compile, full tests, vet/fmt, static
# analysis, then the race detector over the concurrency-heavy packages
# (pool, controller+arbiter, daemon), the cross-backend conformance
# harness (twice: IR optimizer on, then off via SKANDIUM_OPT=off), the
# stream lifecycle tests of the root package, the cluster chaos suite
# (network faults, partitions, flaps), the virtual-time overload
# harness (multi-tenant fairness invariants), and the seeded policy
# tournament (adaptation policies raced across the scenario corpus).
check: build test vet lint race chaos overload tournament

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exec ./internal/event ./internal/sim ./internal/core ./internal/server ./internal/chaos ./internal/journal ./internal/plan ./internal/conformance ./internal/remote ./internal/tournament
	SKANDIUM_OPT=off $(GO) test -race -count=1 ./internal/conformance
	$(GO) test -race -run 'TestClose|TestDrain|TestStream|TestChaos|TestWithRetry|TestWCTGoal' .

# chaos runs the seeded cluster chaos scenarios (RPC drops, one
# partition/heal cycle, ambiguous replays, probation re-admission,
# straggler hedging, local degradation) under the race detector. The
# fault schedule is deterministic per seed; goroutine interleavings are
# not, so CI repeats it with COUNT=3.
COUNT ?= 1
chaos:
	$(GO) test -race -count=$(COUNT) -run 'TestClusterExactlyOnceUnderChaos|TestClusterDedupAbsorbsAmbiguousReplays|TestClusterProbationReadmission|TestWorkerAdmissionControl|TestWorkerJobFencing|TestClusterHedgesStragglers|TestClusterDegradesToLocalPool' ./internal/remote

# overload replays the seeded 2× oversubscription episode (~190k synthetic
# submissions, virtual time) through the real admission ladder and arbiter
# under the race detector, asserting the fairness invariants: weighted
# shares within 10%, guaranteed traffic never shed, ladder walks
# ok → browned-out → ok. Deterministic per seed; COUNT repeats it.
overload:
	$(GO) test -race -count=$(COUNT) -run 'TestOverload|TestAdmission' ./internal/server

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# tournament races every registered adaptation policy across the seeded
# scenario corpus (virtual time — a couple of seconds of wall clock) and
# prints the league table. The same SEED always reproduces the same
# table; EXPERIMENTS.md carries the SEED=1 output verbatim.
SEED ?= 1
tournament:
	$(GO) run ./cmd/tournament -seed $(SEED) -runs 2

# Regenerate every figure of the paper (summaries + the Fig. 1/2 dump).
figures:
	$(GO) run ./cmd/adgdump
	$(GO) run ./cmd/figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline -lines 3
	$(GO) run ./examples/mergesort -n 200000
	$(GO) run ./examples/montecarlo -samples 1000000
	$(GO) run ./examples/wordcount -tweets 10000
	$(GO) run ./examples/stream -jobs 4
	$(GO) run ./examples/distributed

vet:
	$(GO) vet ./...
	gofmt -l .

# lint runs staticcheck when it is installed (CI installs it; local
# machines without it skip with a notice instead of failing check).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -5

clean:
	rm -f cover.out test_output.txt bench_output.txt
