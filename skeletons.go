package skandium

import (
	"skandium/internal/skel"
)

// Skeleton is a typed parallelism pattern transforming P into R. Skeletons
// are immutable and freely shareable; compose them with the constructors
// below and execute them with a Stream.
type Skeleton[P, R any] struct{ n *skel.Node }

// Node exposes the erased skeleton tree (for tooling: ADG dumps, planning).
func (s Skeleton[P, R]) Node() *skel.Node { return s.n }

// String renders the program in the paper's syntax, e.g.
// "map(fs, map(fs, seq(fe), fm), fm)".
func (s Skeleton[P, R]) String() string { return s.n.String() }

// Seq builds seq(fe): the leaf skeleton wrapping one Execution muscle.
func Seq[P, R any](fe Exec[P, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewSeq(fe.m)}
}

// Farm builds farm(∆): task replication — many inputs of one Stream are
// processed concurrently by the nested skeleton.
func Farm[P, R any](sub Skeleton[P, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewFarm(sub.n)}
}

// Pipe builds pipe(∆1,∆2): staged computation.
func Pipe[P, X, R any](s1 Skeleton[P, X], s2 Skeleton[X, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewPipe(s1.n, s2.n)}
}

// Pipe3 builds a three-stage pipe (a convenience over nested Pipe calls
// that keeps a single pipe node, matching pipe(∆1,∆2,∆3)).
func Pipe3[P, X, Y, R any](s1 Skeleton[P, X], s2 Skeleton[X, Y], s3 Skeleton[Y, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewPipe(s1.n, s2.n, s3.n)}
}

// PipeN builds an n-stage pipe of same-typed stages.
func PipeN[P any](stages ...Skeleton[P, P]) Skeleton[P, P] {
	ns := make([]*skel.Node, len(stages))
	for i, s := range stages {
		ns[i] = s.n
	}
	return Skeleton[P, P]{n: skel.NewPipe(ns...)}
}

// While builds while(fc,∆): repeat ∆ while fc holds.
func While[P any](fc Cond[P], body Skeleton[P, P]) Skeleton[P, P] {
	return Skeleton[P, P]{n: skel.NewWhile(fc.m, body.n)}
}

// If builds if(fc,∆true,∆false): conditional branching. Note that the
// paper's autonomic layer treats If as experimental (worst-case-branch
// planning); the engine runs it normally.
func If[P, R any](fc Cond[P], onTrue, onFalse Skeleton[P, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewIf(fc.m, onTrue.n, onFalse.n)}
}

// For builds for(n,∆): execute ∆ exactly n times.
func For[P any](n int, body Skeleton[P, P]) Skeleton[P, P] {
	return Skeleton[P, P]{n: skel.NewFor(n, body.n)}
}

// Map builds map(fs,∆,fm): split, apply ∆ to every sub-problem in
// parallel, merge.
func Map[P, X, Y, R any](fs Split[P, X], sub Skeleton[X, Y], fm Merge[Y, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewMap(fs.m, sub.n, fm.m)}
}

// Fork builds fork(fs,{∆},fm): like Map, but sub-problem i is processed by
// subs[i]. The split must produce exactly len(subs) sub-problems at run
// time. The paper's autonomic layer treats Fork as experimental.
func Fork[P, X, Y, R any](fs Split[P, X], subs []Skeleton[X, Y], fm Merge[Y, R]) Skeleton[P, R] {
	ns := make([]*skel.Node, len(subs))
	for i, s := range subs {
		ns[i] = s.n
	}
	return Skeleton[P, R]{n: skel.NewFork(fs.m, ns, fm.m)}
}

// DaC builds d&c(fc,fs,∆,fm): while fc holds, split and recurse in
// parallel, then merge; when fc fails, solve the leaf with ∆.
func DaC[P, R any](fc Cond[P], fs Split[P, P], sub Skeleton[P, R], fm Merge[R, R]) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.NewDaC(fc.m, fs.m, sub.n, fm.m)}
}

// Optimize returns a semantically equivalent normalized program:
// redundant farms collapse, nested pipes flatten, for-loops merge, and —
// when fuse is true — adjacent seq pipeline stages fuse into one muscle
// (g∘f), trading per-stage events and scheduling for a single coarser
// muscle with a fresh estimator identity.
func Optimize[P, R any](s Skeleton[P, R], fuse bool) Skeleton[P, R] {
	return Skeleton[P, R]{n: skel.Optimize(s.n, skel.OptimizeOptions{FuseSeqPipes: fuse})}
}
