package skandium

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- typed API basics ---------------------------------------------------------

func intRange() Split[int, int] {
	return NewSplit("range", func(n int) ([]int, error) {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
}

func intSum() Merge[int, int] {
	return NewMerge("sum", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
}

func TestSeqTyped(t *testing.T) {
	double := NewExec("double", func(n int) (int, error) { return 2 * n, nil })
	st := NewStream[int, int](Seq(double), WithLP(2))
	defer st.Close()
	res, err := st.Do(21)
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Fatalf("got %d, want 42", res)
	}
}

func TestMapTyped(t *testing.T) {
	double := NewExec("double", func(n int) (int, error) { return 2 * n, nil })
	prog := Map(intRange(), Seq(double), intSum())
	st := NewStream[int, int](prog, WithLP(4))
	defer st.Close()
	res, err := st.Do(10)
	if err != nil {
		t.Fatal(err)
	}
	if res != 90 {
		t.Fatalf("got %d, want 90", res)
	}
}

func TestPipeTypeChange(t *testing.T) {
	itoa := NewExec("itoa", func(n int) (string, error) { return strings.Repeat("x", n), nil })
	length := NewExec("len", func(s string) (int, error) { return len(s), nil })
	prog := Pipe(Seq(itoa), Seq(length))
	st := NewStream[int, int](prog)
	defer st.Close()
	res, err := st.Do(7)
	if err != nil {
		t.Fatal(err)
	}
	if res != 7 {
		t.Fatalf("got %d, want 7", res)
	}
}

func TestPipe3AndPipeN(t *testing.T) {
	inc := NewExec("inc", func(n int) (int, error) { return n + 1, nil })
	st := NewStream[int, int](Pipe3(Seq(inc), Seq(inc), Seq(inc)))
	defer st.Close()
	if res, _ := st.Do(0); res != 3 {
		t.Fatalf("pipe3: got %v, want 3", res)
	}
	st2 := NewStream[int, int](PipeN(Seq(inc), Seq(inc), Seq(inc), Seq(inc)))
	defer st2.Close()
	if res, _ := st2.Do(0); res != 4 {
		t.Fatalf("pipeN: got %v, want 4", res)
	}
}

func TestWhileForIfTyped(t *testing.T) {
	lt := NewCond("lt100", func(n int) (bool, error) { return n < 100, nil })
	double := NewExec("double", func(n int) (int, error) { return 2 * n, nil })
	st := NewStream[int, int](While(lt, Seq(double)))
	defer st.Close()
	if res, _ := st.Do(3); res != 192 {
		t.Fatalf("while: got %v, want 192", res)
	}

	st2 := NewStream[int, int](For(5, Seq(double)))
	defer st2.Close()
	if res, _ := st2.Do(1); res != 32 {
		t.Fatalf("for: got %v, want 32", res)
	}

	pos := NewCond("pos", func(n int) (bool, error) { return n > 0, nil })
	neg := NewExec("neg", func(n int) (int, error) { return -n, nil })
	id := NewExec("id", func(n int) (int, error) { return n, nil })
	st3 := NewStream[int, int](If(pos, Seq(neg), Seq(id)))
	defer st3.Close()
	if res, _ := st3.Do(5); res != -5 {
		t.Fatalf("if-true: got %v, want -5", res)
	}
	if res, _ := st3.Do(-5); res != -5 {
		t.Fatalf("if-false: got %v, want -5", res)
	}
}

func TestDaCTyped(t *testing.T) {
	big := NewCond("big", func(s []int) (bool, error) { return len(s) > 2, nil })
	halve := NewSplit("halve", func(s []int) ([][]int, error) {
		mid := len(s) / 2
		return [][]int{append([]int(nil), s[:mid]...), append([]int(nil), s[mid:]...)}, nil
	})
	leafSum := NewExec("leafSum", func(s []int) (int, error) {
		total := 0
		for _, v := range s {
			total += v
		}
		return total, nil
	})
	add := NewMerge("add", func(ps []int) (int, error) {
		total := 0
		for _, v := range ps {
			total += v
		}
		return total, nil
	})
	prog := DaC(big, halve, Seq(leafSum), add)
	st := NewStream[[]int, int](prog, WithLP(3))
	defer st.Close()
	res, err := st.Do([]int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if res != 45 {
		t.Fatalf("got %v, want 45", res)
	}
}

func TestForkTyped(t *testing.T) {
	dup := NewSplit("dup", func(n int) ([]int, error) { return []int{n, n}, nil })
	inc := NewExec("inc", func(n int) (int, error) { return n + 1, nil })
	dbl := NewExec("dbl", func(n int) (int, error) { return n * 2, nil })
	prog := Fork(dup, []Skeleton[int, int]{Seq(inc), Seq(dbl)}, intSum())
	st := NewStream[int, int](prog)
	defer st.Close()
	if res, _ := st.Do(10); res != 31 {
		t.Fatalf("got %v, want 31", res)
	}
}

func TestSkeletonString(t *testing.T) {
	double := NewExec("fe", func(n int) (int, error) { return 2 * n, nil })
	fs, fm := intRange(), intSum()
	prog := Map(fs, Seq(double), fm)
	want := "map(range, seq(fe), sum)"
	if got := prog.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// --- error handling -----------------------------------------------------------

func TestTypedMuscleError(t *testing.T) {
	boom := errors.New("boom")
	bad := NewExec("bad", func(n int) (int, error) { return 0, boom })
	st := NewStream[int, int](Seq(bad))
	defer st.Close()
	_, err := st.Do(1)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestListenerTypeMismatchSurfacesAsError(t *testing.T) {
	double := NewExec("double", func(n int) (int, error) { return 2 * n, nil })
	st := NewStream[int, int](Seq(double),
		WithListener(ListenerFunc(func(e *Event) any { return "not an int" }),
			Filter{When: Before, HasWhen: true}))
	defer st.Close()
	_, err := st.Do(1)
	if err == nil || !strings.Contains(err.Error(), `muscle "double" received string`) {
		t.Fatalf("want type mismatch error, got %v", err)
	}
}

func TestCancelExecution(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	slow := NewExec("slow", func(n int) (int, error) {
		once.Do(func() { close(started) })
		time.Sleep(5 * time.Millisecond)
		return n, nil
	})
	st := NewStream[int, int](For(100, Seq(slow)), WithLP(1))
	defer st.Close()
	ex := st.Input(1)
	<-started
	abort := errors.New("abort")
	ex.Cancel(abort)
	if _, err := ex.Get(); !errors.Is(err, abort) {
		t.Fatalf("want abort, got %v", err)
	}
}

func TestGetContext(t *testing.T) {
	slow := NewExec("slow", func(n int) (int, error) {
		time.Sleep(50 * time.Millisecond)
		return n, nil
	})
	st := NewStream[int, int](Seq(slow))
	defer st.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := st.Input(1).GetContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline, got %v", err)
	}
}

// --- events through the public API ---------------------------------------------

func TestPublicListenerSeesEvents(t *testing.T) {
	double := NewExec("double", func(n int) (int, error) { return 2 * n, nil })
	prog := Map(intRange(), Seq(double), intSum())
	var count atomic.Int64
	var splitCard atomic.Int64
	st := NewStream[int, int](prog, WithLP(1),
		WithListener(ListenerFunc(func(e *Event) any {
			count.Add(1)
			if e.When == After && e.Where == AtSplit {
				splitCard.Store(int64(e.Card))
			}
			return e.Param
		})))
	defer st.Close()
	if _, err := st.Do(5); err != nil {
		t.Fatal(err)
	}
	if count.Load() == 0 {
		t.Fatal("no events delivered")
	}
	if splitCard.Load() != 5 {
		t.Fatalf("split cardinality %d, want 5", splitCard.Load())
	}
}

func TestFilteredListener(t *testing.T) {
	double := NewExec("double", func(n int) (int, error) { return 2 * n, nil })
	prog := Map(intRange(), Seq(double), intSum())
	var mergeEvents atomic.Int64
	st := NewStream[int, int](prog,
		WithListener(ListenerFunc(func(e *Event) any {
			mergeEvents.Add(1)
			if e.Where != AtMerge {
				t.Errorf("filter leaked %v event", e.Where)
			}
			return e.Param
		}), Filter{Where: AtMerge, HasWhere: true}))
	defer st.Close()
	if _, err := st.Do(4); err != nil {
		t.Fatal(err)
	}
	if mergeEvents.Load() != 2 { // before + after merge
		t.Fatalf("merge events = %d, want 2", mergeEvents.Load())
	}
}

// TestListenerTransformsPartialSolution implements the paper's use case of
// modifying partial solutions in a listener (e.g. encryption): double every
// split part before the nested skeleton sees it.
func TestListenerTransformsPartialSolution(t *testing.T) {
	id := NewExec("id", func(n int) (int, error) { return n, nil })
	prog := Map(intRange(), Seq(id), intSum())
	st := NewStream[int, int](prog,
		WithListener(ListenerFunc(func(e *Event) any {
			return e.Param.(int) * 10
		}), Filter{Kind: 0, HasKind: false, When: Before, HasWhen: true, Where: AtNestedSkel, HasWhere: true}))
	defer st.Close()
	res, err := st.Do(4) // sum(10*i) = 60
	if err != nil {
		t.Fatal(err)
	}
	if res != 60 {
		t.Fatalf("got %v, want 60", res)
	}
}

// --- history across inputs ------------------------------------------------------

func TestEstimatesPersistAcrossInputs(t *testing.T) {
	work := NewExec("work", func(n int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return n, nil
	})
	st := NewStream[int, int](Seq(work))
	defer st.Close()
	if _, err := st.Do(1); err != nil {
		t.Fatal(err)
	}
	d, ok := st.Estimates().Duration(work.Muscle().ID())
	if !ok {
		t.Fatal("no duration learned after first input")
	}
	if d < time.Millisecond {
		t.Fatalf("learned duration %v implausibly small", d)
	}
	prof := st.Profile()
	if len(prof) == 0 {
		t.Fatal("empty profile")
	}
	// A second stream over the same muscle handle can be pre-seeded.
	st2 := NewStream[int, int](Seq(work), WithProfile(prof))
	defer st2.Close()
	d2, ok := st2.Estimates().Duration(work.Muscle().ID())
	if !ok || d2 != d {
		t.Fatalf("profile not restored: %v/%v", d2, ok)
	}
}

// --- autonomic end-to-end on the real engine -------------------------------------

// TestAutonomicRealEngine runs the paper's program shape on real goroutines
// with sleep muscles: with a WCT goal the controller must raise LP and beat
// the sequential time.
func TestAutonomicRealEngine(t *testing.T) {
	fs := NewSplit("chunks", func(c int) ([]int, error) {
		out := make([]int, 4)
		for i := range out {
			out[i] = c
		}
		return out, nil
	})
	fe := NewExec("work", func(n int) (int, error) {
		time.Sleep(8 * time.Millisecond)
		return 1, nil
	})
	fm := NewMerge("fold", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
	inner := Map(fs, Seq(fe), fm)
	outer := Map(fs, inner, fm)
	// Sequential: 16 sleeps of 8ms ≈ 128ms + overhead. Goal: 80ms.
	st := NewStream[int, int](outer,
		WithLP(1),
		WithMaxLP(16),
		WithWCTGoal(80*time.Millisecond))
	defer st.Close()
	start := time.Now()
	ex := st.Input(1)
	res, err := ex.Get()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res != 16 {
		t.Fatalf("result %v, want 16", res)
	}
	if len(ex.Decisions()) == 0 {
		t.Fatal("controller never adapted on the real engine")
	}
	raised := false
	for _, d := range ex.Decisions() {
		if d.NewLP > d.OldLP {
			raised = true
		}
	}
	if !raised {
		t.Fatalf("no LP increase: %v", ex.Decisions())
	}
	if elapsed > 125*time.Millisecond {
		t.Fatalf("autonomic run took %v, sequential would be ~128ms", elapsed)
	}
}

func TestManualSetLP(t *testing.T) {
	id := NewExec("id", func(n int) (int, error) { return n, nil })
	st := NewStream[int, int](Seq(id), WithLP(2), WithMaxLP(4))
	defer st.Close()
	if st.LP() != 2 {
		t.Fatalf("LP=%d, want 2", st.LP())
	}
	st.SetLP(10)
	if st.LP() != 4 {
		t.Fatalf("LP=%d, want clamp to 4", st.LP())
	}
}

func TestOptimizePublicAPI(t *testing.T) {
	inc := NewExec("inc", func(n int) (int, error) { return n + 1, nil })
	dbl := NewExec("dbl", func(n int) (int, error) { return 2 * n, nil })
	prog := PipeN(Seq(inc), Seq(dbl), Seq(inc))
	opt := Optimize(prog, true)
	if opt.Node().Kind().String() != "seq" {
		t.Fatalf("fusion did not collapse the pipe: %s", opt)
	}
	st := NewStream[int, int](opt)
	defer st.Close()
	res, err := st.Do(3)
	if err != nil {
		t.Fatal(err)
	}
	if res != 9 { // ((3+1)*2)+1
		t.Fatalf("got %d, want 9", res)
	}
}

func TestStreamStats(t *testing.T) {
	prog := Map(intRange(), Seq(NewExec("id", func(n int) (int, error) { return n, nil })), intSum())
	st := NewStream[int, int](prog, WithLP(2))
	defer st.Close()
	if _, err := st.Do(6); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.TasksRun == 0 {
		t.Fatal("no tasks counted")
	}
	if stats.Spawned < 1 || stats.Spawned > 2 {
		t.Fatalf("spawned %d workers", stats.Spawned)
	}
}
