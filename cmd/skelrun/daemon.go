package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// daemonClient is the HTTP client for all daemon calls. The bare
// http.DefaultClient has no timeout at all, so a wedged daemon would hang
// the CLI forever; 30s comfortably covers the slowest expected response (a
// status poll or decision-log fetch — event *streams* are not fetched
// through this client).
var daemonClient = &http.Client{Timeout: 30 * time.Second}

// getRetryRefused performs an idempotent GET, retrying after a short pause
// when the connection is refused — the window where the daemon is still
// binding its listener during startup scripts ("skelrund & skelrun -daemon
// ...") or restarting after a crash — and when the daemon answers 429/503
// (overloaded or draining). GETs are idempotent, so retrying is always
// safe; the pause honors the daemon's Retry-After header when present.
func getRetryRefused(url string) (*http.Response, error) {
	var (
		resp *http.Response
		err  error
	)
	for attempt := 0; ; attempt++ {
		resp, err = daemonClient.Get(url)
		if attempt >= 2 {
			return resp, err
		}
		if err != nil {
			if !errors.Is(err, syscall.ECONNREFUSED) {
				return nil, err
			}
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		wait := retryAfter(resp, 500*time.Millisecond)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(wait)
	}
}

// retryAfter reads a response's Retry-After header (delay-seconds form),
// falling back to def and clamping to 30s so a bogus header cannot wedge
// the client.
func retryAfter(resp *http.Response, def time.Duration) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return def
	}
	secs, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || secs < 0 {
		return def
	}
	d := time.Duration(secs) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// jobView mirrors the daemon's job JSON (the fields this client shows).
type jobView struct {
	ID          string  `json:"id"`
	Skeleton    string  `json:"skeleton"`
	Program     string  `json:"program"`
	State       string  `json:"state"`
	GoalMS      float64 `json:"goal_ms"`
	Policy      string  `json:"policy"`
	LP          int     `json:"lp"`
	Active      int     `json:"active"`
	Grant       int     `json:"grant"`
	DesiredLP   int     `json:"desired_lp"`
	PredictedMS float64 `json:"predicted_wct_ms"`
	OvershootMS float64 `json:"overshoot_ms"`
	Decisions   int     `json:"decisions"`
	FinishedMS  float64 `json:"finished_ms"`
	StartedMS   float64 `json:"started_ms"`
	Result      string  `json:"result"`
	Error       string  `json:"error"`
}

type decisionView struct {
	TMS         float64 `json:"t_ms"`
	OldLP       int     `json:"old_lp"`
	NewLP       int     `json:"new_lp"`
	PredictedMS float64 `json:"predicted_wct_ms"`
	BestMS      float64 `json:"best_wct_ms"`
	OptimalLP   int     `json:"optimal_lp"`
	Reason      string  `json:"reason"`
}

// submitOpts carries the fault-tolerance and tenancy knobs of one
// submission.
type submitOpts struct {
	Retries  int
	Timeout  time.Duration
	Partial  string
	Tenant   string
	Priority int
	Policy   string
}

// runDaemonClient submits one job to a running skelrund and follows it to
// completion, printing LP/grant transitions and the decision log.
func runDaemonClient(addr, skeleton, paramsJSON string, goal time.Duration, lp, maxLP int, opts submitOpts) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	params := map[string]any{}
	if paramsJSON != "" {
		if err := json.Unmarshal([]byte(paramsJSON), &params); err != nil {
			return fmt.Errorf("bad -params JSON: %w", err)
		}
	}
	submit := map[string]any{
		"skeleton":   skeleton,
		"params":     params,
		"goal_ms":    float64(goal) / float64(time.Millisecond),
		"initial_lp": lp,
		"max_lp":     maxLP,
	}
	if opts.Retries > 1 {
		submit["retries"] = opts.Retries
	}
	if opts.Timeout > 0 {
		submit["timeout_ms"] = float64(opts.Timeout) / float64(time.Millisecond)
	}
	if opts.Partial != "" {
		submit["partial"] = opts.Partial
	}
	if opts.Tenant != "" {
		submit["tenant"] = opts.Tenant
	}
	if opts.Priority != 0 {
		submit["priority"] = opts.Priority
	}
	if opts.Policy != "" {
		submit["policy"] = opts.Policy
	}
	body, _ := json.Marshal(submit)
	raw, err := submitWithBackoff(base, opts.Tenant, body)
	if err != nil {
		return err
	}
	var j jobView
	if err := json.Unmarshal(raw, &j); err != nil {
		return fmt.Errorf("submit: decode: %w", err)
	}
	fmt.Printf("submitted %s: %s  %s\n", j.ID, j.Skeleton, j.Program)
	if goal > 0 {
		pol := j.Policy
		if pol == "" {
			pol = "paper"
		}
		fmt.Printf("QoS: WCT goal %v, initial LP %d, policy %s\n", goal, lp, pol)
	}

	lastLP, lastGrant, lastState := -1, -1, ""
	for {
		v, err := getJob(base, j.ID)
		if err != nil {
			return err
		}
		if v.LP != lastLP || v.Grant != lastGrant || v.State != lastState {
			fmt.Printf("  t=%-9s state=%-8s lp=%d/%d grant=%d desired=%d pred=%.0fms overshoot=%.0fms\n",
				fmt.Sprintf("%.0fms", sinceStartMS(v)), v.State, v.Active, v.LP,
				v.Grant, v.DesiredLP, v.PredictedMS, v.OvershootMS)
			lastLP, lastGrant, lastState = v.LP, v.Grant, v.State
		}
		if v.State == "done" || v.State == "failed" || v.State == "canceled" {
			return printOutcome(base, v)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// maxSubmitBackoff caps the TOTAL time submitWithBackoff spends sleeping on
// Retry-After hints across all attempts. The daemon's hints are drain-rate
// derived and can reach 60s each; without a cumulative cap a deeply
// overloaded daemon could pin this client for five minutes.
const maxSubmitBackoff = 90 * time.Second

// submitWithBackoff POSTs a submission, retrying up to five times when the
// daemon sheds it with 429 (overloaded/browned-out) or 503
// (draining/restarting), waiting out the daemon's Retry-After hint between
// attempts — but never sleeping more than maxSubmitBackoff in total. Any
// other rejection — including 422 goal-infeasible, which no amount of
// waiting will fix — fails immediately.
func submitWithBackoff(base, tenant string, body []byte) ([]byte, error) {
	const attempts = 5
	var (
		lastErr error
		slept   time.Duration
	)
	for i := 0; i < attempts; i++ {
		req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("submit to %s: %w", base, err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Skel-Tenant", tenant)
		}
		resp, err := daemonClient.Do(req)
		if err != nil {
			return nil, fmt.Errorf("submit to %s: %w", base, err)
		}
		raw := new(bytes.Buffer)
		_, _ = raw.ReadFrom(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return raw.Bytes(), nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			wait := retryAfter(resp, time.Second)
			lastErr = fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(raw.String()))
			if i < attempts-1 {
				if slept+wait > maxSubmitBackoff {
					return nil, fmt.Errorf("%w (gave up after %v of backoff)", lastErr, slept)
				}
				fmt.Printf("daemon shed submission (%s); retrying in %v (%d/%d)\n",
					resp.Status, wait, i+1, attempts-1)
				time.Sleep(wait)
				slept += wait
			}
		default:
			return nil, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(raw.String()))
		}
	}
	return nil, lastErr
}

func sinceStartMS(v jobView) float64 {
	if v.FinishedMS > 0 {
		return v.FinishedMS
	}
	return v.StartedMS
}

func getJob(base, id string) (jobView, error) {
	var v jobView
	resp, err := getRetryRefused(base + "/jobs/" + id)
	if err != nil {
		return v, fmt.Errorf("poll: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("poll: %s", resp.Status)
	}
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

func printOutcome(base string, v jobView) error {
	resp, err := getRetryRefused(base + "/jobs/" + v.ID + "/decisions")
	if err == nil {
		var decs []decisionView
		_ = json.NewDecoder(resp.Body).Decode(&decs)
		resp.Body.Close()
		for _, d := range decs {
			fmt.Printf("  decision t=%-8s LP %2d -> %2d  pred=%.0fms best=%.0fms opt=%d  %s\n",
				fmt.Sprintf("%.0fms", d.TMS), d.OldLP, d.NewLP,
				d.PredictedMS, d.BestMS, d.OptimalLP, d.Reason)
		}
	}
	wall := v.FinishedMS - v.StartedMS
	switch v.State {
	case "done":
		fmt.Printf("done in %.0fms: %s\n", wall, v.Result)
		if v.GoalMS > 0 {
			verdict := "MET"
			if wall > v.GoalMS {
				verdict = "MISSED"
			}
			fmt.Printf("goal: %s (%.0fms vs %.0fms)\n", verdict, wall, v.GoalMS)
		}
		return nil
	case "canceled":
		return fmt.Errorf("job %s canceled: %s", v.ID, v.Error)
	default:
		return fmt.Errorf("job %s failed: %s", v.ID, v.Error)
	}
}
