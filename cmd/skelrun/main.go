// skelrun runs the paper's word-count workload on the deterministic
// simulator with a fully configurable autonomic setup — the exploration
// tool behind EXPERIMENTS.md. It prints a run summary, the decision log,
// and optionally the active-threads series.
//
//	go run ./cmd/skelrun -goal 9.5s
//	go run ./cmd/skelrun -goal 9.5s -init            # paper scenario 2
//	go run ./cmd/skelrun -goal 10.5s -decrease none  # ablation
//	go run ./cmd/skelrun -lp 1 -goal 0               # sequential baseline
//
// With -daemon it instead submits a real job to a running skelrund and
// follows it to completion:
//
//	go run ./cmd/skelrun -daemon localhost:8080 -skeleton wordcount -goal 500ms
//	go run ./cmd/skelrun -daemon localhost:8080 -skeleton sleepgrid \
//	    -params '{"k":4,"m":4,"cell_ms":20}' -goal 100ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/paperexp"
)

func main() {
	goal := flag.Duration("goal", 9500*time.Millisecond, "WCT QoS goal (0 = no autonomics)")
	initEst := flag.Bool("init", false, "initialize estimators from a profiling run (scenario 2)")
	lp := flag.Int("lp", 1, "initial level of parallelism")
	maxLP := flag.Int("maxlp", 24, "hardware threads of the simulated machine")
	k := flag.Int("k", 5, "first-level split cardinality")
	m := flag.Int("m", 7, "second-level split cardinality")
	rho := flag.Float64("rho", 0.5, "estimator weight ρ")
	jitter := flag.Float64("jitter", 0, "relative duration noise")
	seed := flag.Int64("seed", 42, "seed")
	interval := flag.Duration("interval", 100*time.Millisecond, "analysis throttle")
	increase := flag.String("increase", "minimal", "increase policy: optimal|minimal")
	decrease := flag.String("decrease", "halve", "decrease policy: halve|none|exact")
	policy := flag.String("policy", "", "full adaptation policy by registry name (overrides -increase/-decrease; empty = paper rule)")
	csv := flag.Bool("csv", false, "print the active-threads series as CSV")
	daemon := flag.String("daemon", "", "submit to a running skelrund at this address instead of simulating")
	skeleton := flag.String("skeleton", "wordcount", "registered skeleton to run (daemon mode)")
	params := flag.String("params", "", "skeleton params as JSON (daemon mode)")
	retries := flag.Int("retries", 0, "total attempts per muscle, <=1 = no retry (daemon mode)")
	timeout := flag.Duration("timeout", 0, "per-muscle deadline, 0 = none (daemon mode)")
	partial := flag.String("partial", "", "fan-out failure policy: failfast|skip|substitute (daemon mode)")
	tenant := flag.String("tenant", "", "tenant identity for admission fairness, sent as X-Skel-Tenant (daemon mode)")
	priority := flag.Int("priority", 0, "admission priority: <0 sheds first under load, >0 rides to the hard wall (daemon mode)")
	flag.Parse()

	if *daemon != "" {
		opts := submitOpts{
			Retries: *retries, Timeout: *timeout, Partial: *partial,
			Tenant: *tenant, Priority: *priority, Policy: *policy,
		}
		if err := runDaemonClient(*daemon, *skeleton, *params, *goal, *lp, *maxLP, opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	spec := paperexp.Spec{
		K: *k, M: *m,
		Goal:             *goal,
		MaxLP:            *maxLP,
		InitialLP:        *lp,
		Init:             *initEst,
		Jitter:           *jitter,
		Seed:             *seed,
		Rho:              *rho,
		AnalysisInterval: *interval,
	}
	switch *increase {
	case "optimal":
		spec.Increase = core.IncreaseOptimal
	case "minimal":
		spec.Increase = core.IncreaseMinimal
	default:
		fmt.Fprintf(os.Stderr, "unknown -increase %q\n", *increase)
		os.Exit(2)
	}
	switch *decrease {
	case "halve":
		spec.Decrease = core.DecreaseHalve
	case "none":
		spec.Decrease = core.DecreaseNone
	case "exact":
		spec.Decrease = core.DecreaseExact
	default:
		fmt.Fprintf(os.Stderr, "unknown -decrease %q\n", *decrease)
		os.Exit(2)
	}
	if *policy != "" {
		p, err := core.NewPolicy(*policy, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec.Policy = p
	}

	var r *paperexp.Result
	var err error
	if *goal == 0 {
		r, err = paperexp.RunFixedLP(spec, *lp)
	} else {
		r, err = paperexp.Run(spec)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: two-level map word count, K=%d M=%d, %d tweets, %d distinct tags\n",
		r.Spec.K, r.Spec.M, r.Spec.Tweets, len(r.Counts))
	fmt.Printf("machine:  %d simulated hardware threads, initial LP %d\n", r.Spec.MaxLP, *lp)
	if *goal > 0 {
		rule := fmt.Sprintf("increase=%s decrease=%s", *increase, *decrease)
		if *policy != "" {
			rule = "policy=" + *policy
		}
		fmt.Printf("QoS:      WCT goal %v, %s, ρ=%.2f, init=%v\n",
			*goal, rule, *rho, *initEst)
	}
	fmt.Printf("result:   finished in %v  (peak LP %d, peak active %d, %d analyses)\n",
		r.Makespan.Round(time.Millisecond), r.PeakLP, r.PeakActive, r.Analyses)
	if *goal > 0 {
		verdict := "MET"
		if r.Makespan > *goal {
			verdict = "MISSED"
		}
		fmt.Printf("goal:     %s (%v vs %v)\n", verdict, r.Makespan.Round(time.Millisecond), *goal)
	}
	for _, d := range r.Decisions {
		fmt.Printf("  t=%-8v LP %2d -> %2d  pred=%v best=%v opt=%d  %s\n",
			d.Time.Sub(clock.Epoch).Round(time.Millisecond), d.OldLP, d.NewLP,
			d.PredictedWCT.Round(time.Millisecond), d.BestWCT.Round(time.Millisecond),
			d.OptimalLP, d.Reason)
	}
	if *csv {
		fmt.Print(r.Recorder.CSV(time.Millisecond))
	}
}
