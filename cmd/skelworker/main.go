// skelworker is one remote execution node of a skandium cluster: it serves
// the worker wire protocol (program load by blueprint name, NDJSON task
// batches, health probes, LP grants) and interprets tasks through the same
// compiled-program walker the local pool uses.
//
//	go run ./cmd/skelworker -addr localhost:9101 -max-lp 8
//	go run ./cmd/skelworker -addr localhost:9102 -max-lp 8
//	go run ./cmd/skelrund -workers localhost:9101,localhost:9102
//
// The worker's blueprint registry is its code-distribution mechanism: a
// coordinator ships {blueprint, params} and the worker rebuilds the
// identical program locally — muscles never cross the wire. Point a
// coordinator only at workers built from the same catalog.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"skandium/internal/remote"
	_ "skandium/internal/server" // registers the blueprint catalog
)

func main() {
	addr := flag.String("addr", "localhost:9101", "listen address")
	lp := flag.Int("lp", 1, "initial pool level of parallelism")
	maxLP := flag.Int("max-lp", 0, "hard thread cap reported to the cluster arbiter (0 = uncapped)")
	maxFrame := flag.Int("max-frame", remote.DefaultMaxFrame, "max NDJSON task frame in bytes")
	queueMax := flag.Int("queue-max", 0, "max queued tasks before batches are shed with 429 + Retry-After (0 = unbounded)")
	flag.Parse()

	w := remote.NewWorker(remote.WorkerConfig{LP: *lp, MaxLP: *maxLP, MaxFrame: *maxFrame, MaxQueue: *queueMax})
	httpd := &http.Server{Addr: *addr, Handler: w.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpd.ListenAndServe() }()
	log.Printf("skelworker: serving on http://%s (lp %d, max-lp %d)", *addr, *lp, *maxLP)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("skelworker: %v", err)
	case sig := <-sigc:
		log.Printf("skelworker: %v — shutting down", sig)
	}
	httpd.Close()
	w.Close()
}
