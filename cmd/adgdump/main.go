// adgdump reproduces the paper's Fig. 1 and Fig. 2 worked example: the
// Activity Dependency Graph of map(fs, map(fs, seq(fe), fm), fm) with
// t(fs)=10, t(fe)=15, t(fm)=5, |fs|=3, snapshotted at WCT 70 during an
// LP=2 execution, under both scheduling strategies.
//
//	go run ./cmd/adgdump            # the paper's snapshot (t=70, LP=2)
//	go run ./cmd/adgdump -virtual   # the a-priori plan (nothing executed)
//	go run ./cmd/adgdump -plan      # the compiled program IR (internal/plan)
//	go run ./cmd/adgdump -opt       # the IR before/after each optimizer pass
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"skandium/internal/adg"
	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

func u(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

func main() {
	virtual := flag.Bool("virtual", false, "plan the program a priori instead of the t=70 snapshot")
	lp := flag.Int("lp", 2, "limited-LP strategy thread count")
	dot := flag.Bool("dot", false, "emit Graphviz dot of the best-effort schedule and exit")
	showPlan := flag.Bool("plan", false, "print the compiled program IR shared by all engines and exit")
	showOpt := flag.Bool("opt", false, "print the IR before and after each optimizer pass and exit")
	flag.Parse()

	fs := muscle.NewSplit("fs", func(any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func([]any) (any, error) { return nil, nil })
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	outer := skel.NewMap(fs, inner, fm)

	if *showPlan {
		p, err := plan.Of(outer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(p.Dump())
		return
	}

	if *showOpt {
		raw, err := plan.Compile(outer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== raw IR (plan.Compile) ===")
		fmt.Print(raw.Dump())
		opt, reports := plan.OptimizeWithReport(raw)
		for _, r := range reports {
			fmt.Printf("\npass %-12s applied=%d  %s\n", r.Name, r.Applied, r.Detail)
		}
		fmt.Println("\n=== optimized IR (plan.Optimize) ===")
		fmt.Print(opt.Dump())
		return
	}

	est := estimate.NewRegistry(nil)
	est.InitDuration(fs.ID(), u(10))
	est.InitDuration(fe.ID(), u(15))
	est.InitDuration(fm.ID(), u(5))
	est.InitCard(fs.ID(), 3)

	fmt.Printf("program: %s\n", outer)
	fmt.Println("estimates: t(fs)=10  t(fe)=15  t(fm)=5  |fs|=3")

	builder := adg.Builder{Est: est}
	var g *adg.Graph
	var err error
	if *virtual {
		g, err = builder.BuildVirtual(outer, clock.Epoch)
	} else {
		tr := statemachine.NewTracker(est)
		replay(tr, outer, inner)
		g, err = builder.BuildLive(tr.Root(), clock.Epoch, clock.Epoch.Add(u(70)))
		fmt.Println("snapshot: WCT=70 during an LP=2 execution (paper Fig. 1)")
	}
	if err != nil {
		log.Fatal(err)
	}

	if *dot {
		g.ScheduleBestEffort()
		fmt.Print(g.DOT(time.Millisecond))
		return
	}

	g.ScheduleBestEffort()
	fmt.Println("\n=== best effort (infinite LP) ===")
	fmt.Print(g.Render(time.Millisecond))
	fmt.Printf("best-effort WCT: %v\n", g.WCT())
	fmt.Printf("optimal LP (timeline peak): %d\n", g.OptimalLP())
	fmt.Println("\ntimeline (Fig. 2, best effort):")
	g.ScheduleBestEffort()
	fmt.Print(g.RenderTimeline(time.Millisecond))

	g.ScheduleLimited(*lp)
	fmt.Printf("\n=== limited LP (%d threads) ===\n", *lp)
	fmt.Print(g.Render(time.Millisecond))
	fmt.Printf("limited-LP WCT: %v\n", g.WCT())
	fmt.Printf("\ntimeline (Fig. 2, limited LP %d):\n", *lp)
	fmt.Print(g.RenderTimeline(time.Millisecond))
}

// replay feeds the tracker the exact event history of the paper's example
// at WCT 70: outer split [0,10] (card 3), two inner maps done by 70 except
// the second merge, third inner split running since 65.
func replay(tr *statemachine.Tracker, outer, inner *skel.Node) {
	emit := func(nd *skel.Node, idx, parent int64, when event.When, where event.Where, ms, worker int, card int) {
		tr.Listener().Handler(&event.Event{
			Node: nd, Trace: []*skel.Node{nd}, Index: idx, Parent: parent,
			When: when, Where: where, Time: clock.Epoch.Add(u(ms)), Worker: worker, Card: card,
		})
	}
	emit(outer, 0, event.NoParent, event.Before, event.Skeleton, 0, 0, 0)
	emit(outer, 0, event.NoParent, event.Before, event.Split, 0, 0, 0)
	emit(outer, 0, event.NoParent, event.After, event.Split, 10, 0, 3)
	for b, idx := range []int64{1, 2} {
		emit(inner, idx, 0, event.Before, event.Skeleton, 10, b, 0)
		emit(inner, idx, 0, event.Before, event.Split, 10, b, 0)
		emit(inner, idx, 0, event.After, event.Split, 20, b, 3)
	}
	seq := inner.Children()[0]
	idx := int64(3)
	for round := 0; round < 3; round++ {
		for b, parent := range []int64{1, 2} {
			start := 20 + 15*round
			emit(seq, idx, parent, event.Before, event.Skeleton, start, b, 0)
			emit(seq, idx, parent, event.After, event.Skeleton, start+15, b, 0)
			idx++
		}
	}
	emit(inner, 1, 0, event.Before, event.Merge, 65, 0, 0)
	emit(inner, 1, 0, event.After, event.Merge, 70, 0, 0)
	emit(inner, 1, 0, event.After, event.Skeleton, 70, 0, 0)
	emit(inner, 9, 0, event.Before, event.Skeleton, 65, 1, 0)
	emit(inner, 9, 0, event.Before, event.Split, 65, 1, 0)
}
