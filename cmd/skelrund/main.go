// skelrund is the multi-job autonomic skeleton daemon: it serves the
// HTTP/JSON API from internal/server, running submitted skeleton jobs
// under a machine-wide LP budget divided by the arbiter.
//
//	go run ./cmd/skelrund -addr localhost:8080
//	curl -s localhost:8080/skeletons
//	curl -s -X POST localhost:8080/jobs -d '{"skeleton":"wordcount","goal_ms":500}'
//
// With -journal-dir the daemon keeps a write-ahead job journal: every
// submission and state transition is appended to an NDJSON log, so a crash
// (or kill -9) loses nothing — on restart the same -journal-dir replays
// the log, serves finished results from the snapshot, and re-queues the
// jobs the crash interrupted.
//
// SIGINT/SIGTERM starts a graceful shutdown: new submissions are refused,
// running and queued jobs drain within -drain, then the listener closes.
// A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"skandium"
	"skandium/internal/journal"
	"skandium/internal/plan"
	"skandium/internal/remote"
	"skandium/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	budget := flag.Int("budget", 0, "machine-wide LP budget (0 = 2×GOMAXPROCS)")
	rebalance := flag.Duration("rebalance", 25*time.Millisecond, "arbiter rebalance period")
	analysisTick := flag.Duration("analysis-tick", 5*time.Millisecond, "per-job periodic re-analysis")
	analysisInterval := flag.Duration("analysis-interval", 2*time.Millisecond, "event-driven analysis throttle")
	eventLog := flag.Int("eventlog", 8192, "per-job event ring size")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
	journalDir := flag.String("journal-dir", "", "directory for the durable job journal (empty = no persistence)")
	queueMax := flag.Int("queue-max", 0, "max queued jobs before submissions are shed with 429 (0 = unbounded)")
	tenants := flag.String("tenants", "", "tenant weights as name:weight,... (e.g. alpha:3,beta:2); unlisted tenants weigh 1")
	brownoutAfter := flag.Duration("brownout-after", 0, "sustained queue pressure before brownout shedding of optional work (0 = default 1s)")
	brownoutExit := flag.Duration("brownout-exit", 0, "sustained calm before brownout clears (0 = default 2s)")
	shedSeed := flag.Int64("shed-seed", 0, "seed for probabilistic shedding and Retry-After jitter (0 = default 1)")
	fsyncMode := flag.String("fsync", "interval", "journal durability: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "sync period when -fsync=interval")
	rotateBytes := flag.Int64("journal-rotate", 1<<20, "journal size that triggers compaction into the snapshot")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	workers := flag.String("workers", "", "comma-separated skelworker endpoints; eligible jobs route to the cluster")
	clusterBudget := flag.Int("cluster-budget", 0, "cluster-wide LP budget divided across workers (0 = 4×workers)")
	rpcAttempts := flag.Int("rpc-attempts", 0, "worker RPC attempts before the failure counts against the node (0 = default 3)")
	rpcBase := flag.Duration("rpc-base-delay", 0, "base RPC retry backoff, grown exponentially with jitter (0 = default 25ms)")
	suspectAfter := flag.Int("suspect-after", 0, "consecutive node failures before suspect (0 = default 1)")
	downAfter := flag.Int("down-after", 0, "consecutive node failures before the node is retired (0 = default 3)")
	probationProbes := flag.Int("probation-probes", 0, "consecutive successes a recovering node needs to re-earn full trust (0 = default 2)")
	probationCap := flag.Int("probation-cap", 0, "LP share cap while a re-admitted node is on probation (0 = default 1)")
	noDegrade := flag.Bool("no-degrade", false, "fail cluster jobs instead of draining remaining shards to the local pool")
	localLP := flag.Int("degrade-lp", 0, "parallelism of the local degradation pool (0 = default 4)")
	hedgeAfter := flag.Duration("hedge-after", 0, "re-enqueue a claimed task stalled this long so a second node races it (0 = off)")
	opt := flag.Bool("opt", true, "run the IR optimizer on compiled plans (fusion, static specialization, pre-sizing)")
	policyName := flag.String("policy", "", "default adaptation policy for jobs that do not pick one (see skandium.PolicyNames; empty = paper rule)")
	flag.Parse()

	if *policyName != "" {
		if _, err := skandium.NewPolicy(*policyName, 0); err != nil {
			log.Fatalf("skelrund: %v", err)
		}
	}

	if !*opt {
		plan.SetOptimizeEnabled(false)
	}

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux via the blank
		// import; serve them on their own listener so profiling never shares
		// a port (or a mux) with the job API.
		go func() {
			log.Printf("skelrund: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("skelrund: pprof server: %v", err)
			}
		}()
	}

	var (
		jn        *journal.Journal
		recovered []journal.JobState
	)
	if *journalDir != "" {
		policy, err := journal.ParseFsync(*fsyncMode)
		if err != nil {
			log.Fatalf("skelrund: %v", err)
		}
		jn, recovered, err = journal.Open(*journalDir, journal.Options{
			Fsync:       policy,
			FsyncEvery:  *fsyncEvery,
			RotateBytes: *rotateBytes,
		})
		if err != nil {
			log.Fatalf("skelrund: open journal: %v", err)
		}
		if n := len(recovered); n > 0 {
			requeued := 0
			for _, st := range recovered {
				if !st.Terminal() {
					requeued++
				}
			}
			log.Printf("skelrund: journal %s: recovered %d job(s), re-queued %d interrupted", *journalDir, n, requeued)
		}
	}

	tenantWeights, err := parseTenants(*tenants)
	if err != nil {
		log.Fatalf("skelrund: %v", err)
	}

	var cluster *remote.Cluster
	if *workers != "" {
		endpoints := strings.Split(*workers, ",")
		for i := range endpoints {
			endpoints[i] = strings.TrimSpace(endpoints[i])
		}
		var err error
		cluster, err = remote.New(remote.Config{
			Workers: endpoints,
			Budget:  *clusterBudget,
			RPC:     remote.RPCPolicy{MaxAttempts: *rpcAttempts, BaseDelay: *rpcBase},
			Health: remote.HealthConfig{
				SuspectAfter:    *suspectAfter,
				DownAfter:       *downAfter,
				ProbationProbes: *probationProbes,
				ProbationCap:    *probationCap,
			},
			NoDegrade:  *noDegrade,
			LocalLP:    *localLP,
			HedgeAfter: *hedgeAfter,
		})
		if err != nil {
			log.Fatalf("skelrund: cluster: %v", err)
		}
		defer cluster.Close()
		log.Printf("skelrund: cluster coordinator over %d worker(s), budget %d (%d healthy)",
			len(endpoints), cluster.Budget(), cluster.Healthy())
	}

	srv := server.New(server.Config{
		Budget:           *budget,
		Rebalance:        *rebalance,
		AnalysisTick:     *analysisTick,
		AnalysisInterval: *analysisInterval,
		DefaultPolicy:    *policyName,
		EventLog:         *eventLog,
		Journal:          jn,
		Recover:          recovered,
		QueueMax:         *queueMax,
		Tenants:          tenantWeights,
		BrownoutAfter:    *brownoutAfter,
		BrownoutExit:     *brownoutExit,
		ShedSeed:         *shedSeed,
		Cluster:          cluster,
	})
	httpd := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpd.ListenAndServe() }()
	log.Printf("skelrund: serving on http://%s (budget %d)", *addr, srv.Budget())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatalf("skelrund: %v", err)
	case sig := <-sigc:
		log.Printf("skelrund: %v — draining (deadline %v; signal again to force quit)", sig, *drain)
	}

	go func() {
		sig := <-sigc
		log.Printf("skelrund: %v — forcing exit", sig)
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("skelrund: drain cut short: %v", err)
	} else {
		log.Printf("skelrund: all jobs drained")
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer shutCancel()
	if err := httpd.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("skelrund: http shutdown: %v", err)
	}
	srv.Close()
	if jn != nil {
		if err := jn.Close(); err != nil {
			log.Printf("skelrund: close journal: %v", err)
		}
	}
}

// parseTenants parses the -tenants flag: "name:weight,name:weight,...".
// A bare name (no colon) gets weight 1.
func parseTenants(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasW := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-tenants: empty tenant name in %q", part)
		}
		w := 1
		if hasW {
			var err error
			w, err = strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil || w < 1 {
				return nil, fmt.Errorf("-tenants: bad weight %q for %s (want integer ≥ 1)", weightStr, name)
			}
		}
		out[name] = w
	}
	return out, nil
}
