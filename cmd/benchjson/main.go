// Command benchjson converts `go test -bench` output into a stable JSON
// document and compares two such documents against regression thresholds.
// It is the repo's stand-in for benchstat (kept dependency-free so CI needs
// nothing beyond the Go toolchain):
//
//	go test -bench=. -benchmem -run '^$' . | go run ./cmd/benchjson -out BENCH_4.json
//	go run ./cmd/benchjson -compare baseline.json -against BENCH_4.json -max-regress 0.20
//
// Compare mode exits non-zero when any benchmark present in both documents
// regressed by more than -max-regress in ns/op or allocs/op. Single-sample
// benchmark runs are noisy on timing, so that threshold should stay generous
// with -ns-advisory for wall-clock units; allocs/op is deterministic and can
// be gated much tighter via -max-alloc-regress (CI uses 5%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line's parsed measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric values by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write parsed benchmark JSON to this file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON document; enables compare mode")
	against := flag.String("against", "", "candidate JSON document to compare against the baseline")
	maxRegress := flag.Float64("max-regress", 0.20, "fail when ns/op or allocs/op regress by more than this fraction")
	maxAllocRegress := flag.Float64("max-alloc-regress", -1, "tighter threshold for allocs/op, which is deterministic (-1 = use -max-regress)")
	nsAdvisory := flag.Bool("ns-advisory", false, "report ns/op regressions without failing (timing noise on shared CI)")
	flag.Parse()

	if *compare != "" {
		if *against == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires -against")
			os.Exit(2)
		}
		if *maxAllocRegress < 0 {
			*maxAllocRegress = *maxRegress
		}
		if err := runCompare(*compare, *against, *maxRegress, *maxAllocRegress, *nsAdvisory); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. Lines look like:
//
//	BenchmarkName/case-8  200  60415 ns/op  63232 B/op  792 allocs/op  800 jobs_per_s
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX    --- FAIL"
		}
		res := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		doc.Results = append(doc.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(doc.Results))
	for _, r := range doc.Results {
		m[r.Name] = r
	}
	return m, nil
}

func runCompare(basePath, candPath string, maxRegress, maxAllocRegress float64, nsAdvisory bool) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cand, err := load(candPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := cand[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", basePath, candPath)
	}
	var failures []string
	for _, name := range names {
		b, c := base[name], cand[name]
		nsDelta := ratio(c.NsPerOp, b.NsPerOp)
		allocDelta := ratio(c.AllocsPerOp, b.AllocsPerOp)
		fmt.Printf("%-60s ns/op %10.0f -> %10.0f (%+.1f%%)  allocs/op %8.0f -> %8.0f (%+.1f%%)\n",
			name, b.NsPerOp, c.NsPerOp, 100*nsDelta, b.AllocsPerOp, c.AllocsPerOp, 100*allocDelta)
		if allocDelta > maxAllocRegress {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.1f%% (> %.0f%%)",
				name, 100*allocDelta, 100*maxAllocRegress))
		}
		if nsDelta > maxRegress {
			msg := fmt.Sprintf("%s: ns/op regressed %.1f%% (> %.0f%%)", name, 100*nsDelta, 100*maxRegress)
			if nsAdvisory {
				fmt.Println("  advisory:", msg)
			} else {
				failures = append(failures, msg)
			}
		}
		// Custom b.ReportMetric units gate too: same threshold, and units
		// suffixed _ns follow the ns/op advisory switch (wall-clock noise).
		units := make([]string, 0, len(b.Extra))
		for unit := range b.Extra {
			if _, ok := c.Extra[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			delta := ratio(c.Extra[unit], b.Extra[unit])
			fmt.Printf("%-60s %s %12.2f -> %12.2f (%+.1f%%)\n",
				name, unit, b.Extra[unit], c.Extra[unit], 100*delta)
			if delta <= maxRegress {
				continue
			}
			msg := fmt.Sprintf("%s: %s regressed %.1f%% (> %.0f%%)", name, unit, 100*delta, 100*maxRegress)
			if nsAdvisory && strings.HasSuffix(unit, "_ns") {
				fmt.Println("  advisory:", msg)
			} else {
				failures = append(failures, msg)
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("compared %d benchmarks: within %.0f%% of baseline\n", len(names), 100*maxRegress)
	return nil
}

// ratio returns (cand-base)/base, treating a zero base as no change (both
// zero) or full regression guard (base 0, cand > 0 on allocs would divide by
// zero; report the absolute growth instead).
func ratio(cand, base float64) float64 {
	if base == 0 {
		if cand == 0 {
			return 0
		}
		return cand // 100% per unit over a zero base
	}
	return (cand - base) / base
}
