// figures regenerates every figure of the paper's evaluation:
//
//	Fig. 1/2 — the ADG worked example (see also cmd/adgdump)
//	Fig. 5   — "Goal without initialization" (9.5 s, cold estimators)
//	Fig. 6   — "Goal with initialization"    (9.5 s, seeded estimators)
//	Fig. 7   — "WCT goal of 10.5 s"
//
// Scenario runs execute on the deterministic simulator substrate with the
// paper-calibrated duration profile (see internal/paperexp); the output is
// the "active threads vs wall-clock time" series as CSV plus a summary.
//
//	go run ./cmd/figures             # all figures, summaries only
//	go run ./cmd/figures -fig 5 -csv # one figure with its CSV series
//	go run ./cmd/figures -jitter 0.1 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/paperexp"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (5, 6 or 7; 0 = all)")
	csv := flag.Bool("csv", false, "print the full active-threads series as CSV")
	jitter := flag.Float64("jitter", 0, "relative duration noise (paper runs were real, hence noisy)")
	seed := flag.Int64("seed", 42, "noise / corpus seed")
	extra := flag.Bool("extra", false, "also run the extension experiments (d&c mergesort, farm stream sweep)")
	out := flag.String("out", "", "directory to write figN.csv series files into")
	policy := flag.String("policy", "", "re-run the figures under an alternative adaptation policy (registry name; empty = paper rule)")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	scenarios := []struct {
		fig   int
		name  string
		spec  paperexp.Spec
		paper string
	}{
		{5, "Goal without initialization", paperexp.Scenario1(),
			"paper: first analysis 7.6s, peak 17 active, finish 9.3s (window 8.63-9.54s)"},
		{6, "Goal with initialization", paperexp.Scenario2(),
			"paper: adapts at 6.4s (before first merge), peak 19 active, finish 8.4s"},
		{7, "WCT goal of 10.5 secs", paperexp.Scenario3(),
			"paper: adapts at 8.7s, peak 10 active, finish 10.6s"},
	}

	seq, err := paperexp.RunFixedLP(paperexp.Spec{Seed: *seed}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline sequential work (LP=1): %v  (paper: 12.5s)\n\n", seq.Makespan.Round(time.Millisecond))

	for _, sc := range scenarios {
		if *fig != 0 && *fig != sc.fig {
			continue
		}
		spec := sc.spec
		spec.Jitter = *jitter
		spec.Seed = *seed
		if *policy != "" {
			p, err := core.NewPolicy(*policy, *seed)
			if err != nil {
				log.Fatal(err)
			}
			spec.Policy = p
			fmt.Printf("(policy override: %s)\n", *policy)
		}
		r, err := paperexp.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== Fig. %d — %s ===\n", sc.fig, sc.name)
		fmt.Printf("%s\n", sc.paper)
		fmt.Printf("repro: first adaptation %v, peak LP %d, peak active %d, finish %v (goal %v)\n",
			r.FirstAdapt.Round(time.Millisecond), r.PeakLP, r.PeakActive,
			r.Makespan.Round(time.Millisecond), spec.Goal)
		for _, d := range r.Decisions {
			fmt.Printf("  decision t=%-8v LP %2d -> %2d  %s\n",
				d.Time.Sub(clock.Epoch).Round(time.Millisecond), d.OldLP, d.NewLP, d.Reason)
		}
		if *csv {
			fmt.Println("t_ms,active,lp")
			fmt.Print(r.Recorder.CSV(time.Millisecond))
		}
		if *out != "" {
			path := filepath.Join(*out, fmt.Sprintf("fig%d.csv", sc.fig))
			if err := os.WriteFile(path, []byte(r.Recorder.CSV(time.Millisecond)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("series written to %s\n", path)
		}
		fmt.Println()
	}

	if *extra {
		fmt.Println("=== Extension — autonomic d&c mergesort (paper §6 'other benchmarks') ===")
		base, err := paperexp.RunDaC(paperexp.DaCSpec{Goal: -1})
		if err != nil {
			log.Fatal(err)
		}
		dac, err := paperexp.RunDaC(paperexp.DaCSpec{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sequential %v; autonomic %v under a %v goal (peak LP %d, first adaptation %v)\n\n",
			base.Makespan.Round(time.Millisecond), dac.Makespan.Round(time.Millisecond),
			dac.Spec.Goal, dac.PeakLP, dac.FirstAdapt.Round(time.Millisecond))

		fmt.Println("=== Extension — farm stream throughput/latency sweep ===")
		points, err := paperexp.RunFarmSweep(paperexp.FarmSpec{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(paperexp.FormatFarmTable(points))
	}
}
