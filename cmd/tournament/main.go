// Command tournament races every registered adaptation policy across the
// seeded scenario corpus in simulator virtual time and prints a
// reproducible league table (or benchjson-compatible bench lines).
//
//	go run ./cmd/tournament -seed 1
//	go run ./cmd/tournament -seed 1 -bench | go run ./cmd/benchjson -out BENCH_9.json
//	go run ./cmd/tournament -policies paper,costaware -scenarios dacsort -runs 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skandium/internal/core"
	"skandium/internal/tournament"
)

func main() {
	seed := flag.Int64("seed", 1, "tournament seed (drives workloads, jitter, and policy perturbations)")
	runs := flag.Int("runs", 3, "runs per (policy, scenario) pair")
	policies := flag.String("policies", "", "comma-separated policy names (default: all registered)")
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (default: all)")
	bench := flag.Bool("bench", false, "emit go-bench-style lines for cmd/benchjson instead of the table")
	list := flag.Bool("list", false, "list registered policies and scenarios, then exit")
	flag.Parse()

	if *list {
		fmt.Println("policies: ", strings.Join(core.Policies(), ", "))
		fmt.Println("scenarios:", strings.Join(tournament.Names(), ", "))
		return
	}

	cfg := tournament.Config{Seed: *seed, Runs: *runs,
		Policies: splitCSV(*policies), Scenarios: splitCSV(*scenarios)}
	rep, err := tournament.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tournament:", err)
		os.Exit(1)
	}
	if *bench {
		fmt.Print(rep.BenchLines())
		return
	}
	fmt.Print(rep.Table())
}

func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
