package skandium

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/plan"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// Decision is one autonomic adaptation record (see Execution.Decisions).
type Decision = core.Decision

// Demand is the controller's latest resource wish (see Execution.Demand):
// the per-job face a multi-job budget arbiter reads.
type Demand = core.Demand

// ErrClosed resolves executions injected into (or interrupted by) a closed
// Stream.
var ErrClosed = errors.New("skandium: stream closed")

// Policy is the pluggable adaptation rule driven by the controller per
// analysis and by the budget arbiter per rebalance (see WithPolicy).
type Policy = core.Policy

// PolicyCloner is the optional replication face of a stateful Policy: each
// Stream.Input clones the configured policy through it, so concurrent
// executions never share mutable policy state (see WithPolicy).
type PolicyCloner = core.Cloner

// NewPolicy builds a registered adaptation policy by name ("" or "paper"
// for the paper rule; see PolicyNames). The seed drives the stochastic
// policies' perturbations.
func NewPolicy(name string, seed int64) (Policy, error) { return core.NewPolicy(name, seed) }

// PolicyNames lists the registered adaptation policies.
func PolicyNames() []string { return core.Policies() }

// Increase/decrease policy re-exports for WithPolicies.
const (
	// IncreaseOptimal jumps to the optimal LP (peak of the best-effort
	// timeline) when the goal would be missed — the paper's §4 behaviour.
	IncreaseOptimal = core.IncreaseOptimal
	// IncreaseMinimal raises LP to the smallest sufficient value.
	IncreaseMinimal = core.IncreaseMinimal
	// DecreaseHalve halves LP when the goal is met with half the threads —
	// the paper's behaviour.
	DecreaseHalve = core.DecreaseHalve
	// DecreaseNone never lowers LP.
	DecreaseNone = core.DecreaseNone
	// DecreaseExact lowers LP to the smallest sufficient value.
	DecreaseExact = core.DecreaseExact
)

type config struct {
	lp               int
	maxLP            int
	lpCap            int
	goal             time.Duration
	estimator        estimate.Factory
	analysisInterval time.Duration
	analysisTicker   time.Duration
	decreaseHold     time.Duration
	increase         core.IncreasePolicy
	decrease         core.DecreasePolicy
	policy           core.Policy
	predictor        core.Predictor
	adgBudget        int
	clk              clock.Clock
	gauge            exec.GaugeFunc
	profile          estimate.Profile
	listeners        []listenerEntry
	faultTimeout     time.Duration
	faultRetry       exec.RetryPolicy
	faultPartial     exec.PartialPolicy
	noOptimize       bool
}

type listenerEntry struct {
	l      event.Listener
	filter event.Filter
}

// Option configures a Stream.
type Option func(*config)

// WithLP sets the initial level of parallelism (default: number of CPUs).
func WithLP(n int) Option { return func(c *config) { c.lp = n } }

// WithMaxLP caps the level of parallelism — the paper's LP QoS. 0 means
// uncapped.
func WithMaxLP(n int) Option { return func(c *config) { c.maxLP = n } }

// WithLPCap starts the stream under an external LP cap (a budget arbiter's
// initial grant), on top of the job's own MaxLP QoS. Unlike WithMaxLP it is
// meant to move at runtime via SetCap; installing it as an option ensures
// the pool never runs a single task above the grant. 0 means no cap.
func WithLPCap(n int) Option { return func(c *config) { c.lpCap = n } }

// WithWCTGoal sets the wall-clock-time QoS per input: the autonomic
// controller adapts the pool so each execution finishes within d of its
// injection. Zero disables autonomic adaptation.
func WithWCTGoal(d time.Duration) Option { return func(c *config) { c.goal = d } }

// WithRho sets the estimator weight ρ of the paper's EWMA formula
// (default 0.5).
func WithRho(rho float64) Option {
	return func(c *config) { c.estimator = estimate.EWMAFactory(rho) }
}

// WithEstimator replaces the estimator factory entirely (ablation variants:
// estimate.MeanFactory, estimate.WindowFactory, ...).
func WithEstimator(f estimate.Factory) Option {
	return func(c *config) { c.estimator = f }
}

// WithAnalysisInterval throttles controller analyses (default: analyze on
// every qualifying event).
func WithAnalysisInterval(d time.Duration) Option {
	return func(c *config) { c.analysisInterval = d }
}

// WithAnalysisTicker adds periodic re-analysis every d, in addition to
// event-triggered analyses. Events fire when knowledge changes; the ticker
// reacts when time alone invalidates the prediction — e.g. a muscle
// overrunning its estimate emits no events, but the passing clock pushes
// the projected completion out, which a periodic analysis catches
// mid-muscle.
func WithAnalysisTicker(d time.Duration) Option {
	return func(c *config) { c.analysisTicker = d }
}

// WithDecreaseHold suppresses LP decreases for d after any increase,
// damping raise/halve oscillation while estimates settle.
func WithDecreaseHold(d time.Duration) Option {
	return func(c *config) { c.decreaseHold = d }
}

// WithPolicies selects the controller's increase/decrease policies
// (defaults: IncreaseOptimal, DecreaseHalve — the paper's).
func WithPolicies(inc core.IncreasePolicy, dec core.DecreasePolicy) Option {
	return func(c *config) { c.increase = inc; c.decrease = dec }
}

// WithPolicy installs a full adaptation Policy, overriding the paper rule
// (and the WithPolicies increase/decrease selectors). Use NewPolicy to
// build one by registry name.
//
// Each Input drives its controller with an independent instance: stateful
// policies implementing PolicyCloner (the built-ins hillclimb and bandit
// do) are cloned per execution, so a stream with several in-flight inputs
// never shares mutable policy state across controllers. A custom stateful
// policy must implement PolicyCloner too — without it the same value is
// handed to every controller, which is only safe when the policy is
// stateless or the stream runs one input at a time. One instance still
// must not be installed on concurrently running streams.
func WithPolicy(p core.Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithADGBudget caps the size of analysis graphs (0 = default).
func WithADGBudget(n int) Option { return func(c *config) { c.adgBudget = n } }

// WithPredictor selects the controller's WCT estimation algorithm: the
// paper's Activity Dependency Graph (ADGPredictor, the default) or the
// cheap analytic work/span model (WorkSpanPredictor).
func WithPredictor(p core.Predictor) Option { return func(c *config) { c.predictor = p } }

// Predictor variants, re-exported for WithPredictor.
var (
	PredictADG      core.Predictor = core.ADGPredictor{}
	PredictWorkSpan core.Predictor = core.WorkSpanPredictor{}
)

// WithClock substitutes the time source (virtual clocks in tests).
func WithClock(clk clock.Clock) Option { return func(c *config) { c.clk = clk } }

// WithGauge installs an observer of (now, active workers, LP) transitions —
// the hook that records the paper's Figs. 5-7 series.
func WithGauge(g func(now time.Time, active, lp int)) Option {
	return func(c *config) { c.gauge = exec.GaugeFunc(g) }
}

// WithProfile seeds the muscle estimates from a previous run's snapshot —
// the paper's "goal with initialization" scenario. Profiles are keyed by
// muscle identity, so the seeding run must share the muscle handles.
func WithProfile(p estimate.Profile) Option { return func(c *config) { c.profile = p } }

// WithOptimize toggles the IR optimizer for this stream's inputs (default
// on). When off, every input runs the raw 1:1 compiled program, bypassing
// the node's (optimized) plan cache — useful for debugging optimizer passes
// and for differential testing; the optimizer is observation-equivalent, so
// results, events and estimates are identical either way. The controller's
// predictions always use the cached program: they are numerically the same
// on both.
func WithOptimize(on bool) Option { return func(c *config) { c.noOptimize = !on } }

// WithListener registers an event listener for all subsequent inputs. The
// optional filter narrows delivery.
func WithListener(l event.Listener, filter ...event.Filter) Option {
	return func(c *config) {
		f := event.Filter{}
		if len(filter) > 0 {
			f = filter[0]
		}
		c.listeners = append(c.listeners, listenerEntry{l: l, filter: f})
	}
}

// Stream executes a skeleton program: each Input(p) injects one parameter
// and yields an Execution handle. Inputs share the worker pool (so a Farm
// really replicates across inputs) and the muscle estimate registry (so
// history transfers between executions, the paper's "the best predictor of
// the future behaviour is past behaviour").
type Stream[P, R any] struct {
	node *skel.Node
	cfg  config
	pool *exec.Pool
	est  *estimate.Registry
	ctrs *exec.FaultCounters // fault statistics shared across inputs

	mu       sync.Mutex
	closed   bool
	inFlight []<-chan struct{}
	live     []*exec.Root // unresolved executions, canceled on Close

	// Raw (unoptimized) program, compiled once when WithOptimize(false).
	rawOnce sync.Once
	rawProg *plan.Program
	rawErr  error
}

// NewStream builds an execution stream for a skeleton program.
func NewStream[P, R any](s Skeleton[P, R], opts ...Option) *Stream[P, R] {
	cfg := config{
		lp:  runtime.GOMAXPROCS(0),
		clk: clock.System,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.lp < 1 {
		cfg.lp = 1
	}
	pool := exec.NewPool(cfg.clk, cfg.lp, cfg.maxLP)
	if cfg.lpCap > 0 {
		pool.SetCap(cfg.lpCap)
	}
	if cfg.gauge != nil {
		pool.SetGauge(cfg.gauge)
	}
	est := estimate.NewRegistry(cfg.estimator)
	if cfg.profile != nil {
		est.Restore(cfg.profile)
	}
	return &Stream[P, R]{node: s.n, cfg: cfg, pool: pool, est: est, ctrs: &exec.FaultCounters{}}
}

// Input injects one parameter and returns the handle to its (asynchronous)
// execution. Injecting into a closed stream does not panic: it returns an
// execution already resolved with ErrClosed, so Input racing Close (a
// daemon evicting a job mid-submission) degrades gracefully.
func (st *Stream[P, R]) Input(p P) *Execution[R] {
	// The whole injection runs under the stream lock: Close serializes
	// against it, so a stream observed open here stays open until the task
	// is on the pool (a closed pool would still only fail the future, never
	// crash — see exec.ErrPoolClosed).
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		root := exec.NewRoot(st.pool, nil, st.cfg.clk)
		root.Cancel(ErrClosed)
		return &Execution[R]{fut: root.Future(), root: root}
	}

	reg := event.NewRegistry()
	for _, le := range st.cfg.listeners {
		reg.AddFiltered(le.l, le.filter)
	}
	tracker := statemachine.NewTracker(st.est)
	var ctl *core.Controller
	if st.cfg.goal > 0 {
		ctl = core.NewController(core.Config{
			WCTGoal:          st.cfg.goal,
			MaxLP:            st.cfg.maxLP,
			AnalysisInterval: st.cfg.analysisInterval,
			DecreaseHold:     st.cfg.decreaseHold,
			Increase:         st.cfg.increase,
			Decrease:         st.cfg.decrease,
			Policy:           core.ClonePolicy(st.cfg.policy),
			Predictor:        st.cfg.predictor,
			ADGBudget:        st.cfg.adgBudget,
		}, st.node, st.pool, st.est, tracker, st.cfg.clk)
		ctl.SetStart(st.cfg.clk.Now())
		core.Attach(reg, tracker, ctl)
	} else {
		reg.Add(tracker.Listener())
	}
	root := exec.NewRoot(st.pool, reg, st.cfg.clk)
	root.SetFaults(exec.FaultConfig{
		Timeout:  st.cfg.faultTimeout,
		Retry:    st.cfg.faultRetry,
		Partial:  st.cfg.faultPartial,
		Counters: st.ctrs,
	})
	var fut *exec.Future
	if st.cfg.noOptimize {
		prog, errp := st.rawProgram()
		if errp != nil {
			root.Cancel(errp)
			fut = root.Future()
		} else {
			fut = root.StartProgram(prog, p)
		}
	} else {
		fut = root.Start(st.node, p)
	}
	if ctl != nil && st.cfg.analysisTicker > 0 {
		stop := ctl.StartTicker(st.cfg.analysisTicker)
		go func() {
			<-fut.Done()
			stop()
		}()
	}
	ex := &Execution[R]{fut: fut, ctl: ctl, root: root}
	st.inFlight = append(st.inFlight, fut.Done())
	// Track unresolved roots so Close can fail their futures (otherwise a
	// concurrent Drain would wait forever on tasks a closed pool dropped);
	// prune the resolved ones while we are here.
	kept := st.live[:0]
	for _, r := range st.live {
		if _, _, ok := r.Future().TryGet(); !ok {
			kept = append(kept, r)
		}
	}
	st.live = append(kept, root)
	return ex
}

// rawProgram compiles the stream's node without the optimizer, once.
func (st *Stream[P, R]) rawProgram() (*plan.Program, error) {
	st.rawOnce.Do(func() { st.rawProg, st.rawErr = plan.Compile(st.node) })
	return st.rawProg, st.rawErr
}

// Drain blocks until every execution injected so far has resolved, or ctx
// ends. It does not close the stream; new inputs remain possible (and are
// not waited for).
func (st *Stream[P, R]) Drain(ctx context.Context) error {
	st.mu.Lock()
	waiting := append([]<-chan struct{}(nil), st.inFlight...)
	st.inFlight = st.inFlight[:0]
	st.mu.Unlock()
	for _, done := range waiting {
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Do is a convenience for one-shot synchronous execution.
func (st *Stream[P, R]) Do(p P) (R, error) { return st.Input(p).Get() }

// LP returns the pool's current level of parallelism.
func (st *Stream[P, R]) LP() int { return st.pool.LP() }

// SetLP manually adjusts the level of parallelism (the autonomic controller
// may override it on its next analysis when a WCT goal is configured).
func (st *Stream[P, R]) SetLP(n int) { st.pool.SetLP(n) }

// Active returns the number of workers currently executing a task.
func (st *Stream[P, R]) Active() int { return st.pool.Active() }

// SetCap imposes (n > 0) or lifts (n <= 0) an external LP cap on the pool —
// the lever a multi-job budget arbiter pulls. The controller keeps
// computing its desired LP; the cap only bounds what the pool honours, and
// widening it immediately restores the controller's last request.
func (st *Stream[P, R]) SetCap(n int) { st.pool.SetCap(n) }

// Cap returns the external LP cap (0 = none).
func (st *Stream[P, R]) Cap() int { return st.pool.Cap() }

// SetMaxLP adjusts the pool's hard LP cap at runtime (0 = uncapped) — the
// paper's LP QoS as a live knob. Controllers of executions injected later
// inherit it; pair with Execution.SetMaxLP to also re-bound a running
// controller's requests.
func (st *Stream[P, R]) SetMaxLP(n int) {
	st.mu.Lock()
	st.cfg.maxLP = n
	st.mu.Unlock()
	st.pool.SetMaxLP(n)
}

// Stats returns the pool's execution counters (tasks run, cumulative busy
// time, workers spawned).
func (st *Stream[P, R]) Stats() exec.Stats { return st.pool.Stats() }

// FaultStats snapshots the stream's fault-tolerance counters, aggregated
// across every input injected so far.
func (st *Stream[P, R]) FaultStats() FaultStats { return st.ctrs.Stats() }

// Profile snapshots the current muscle estimates, suitable for WithProfile
// of a later stream over the same muscle handles.
func (st *Stream[P, R]) Profile() estimate.Profile { return st.est.Snapshot() }

// Estimates exposes the estimate registry (for inspection and seeding
// individual muscles).
func (st *Stream[P, R]) Estimates() *estimate.Registry { return st.est }

// Close shuts down the stream: unresolved executions resolve with ErrClosed
// (running muscles are not interrupted, but no further ones start) and the
// pool's workers exit after their current task. Close is idempotent and safe
// to call concurrently with Input and Drain — racing Inputs yield failed
// executions and a concurrent Drain observes every future resolve.
func (st *Stream[P, R]) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	live := st.live
	st.live = nil
	st.mu.Unlock()

	for _, r := range live {
		r.Cancel(ErrClosed)
	}
	st.pool.Close()
}

// Execution is the handle to one injected parameter's asynchronous
// execution.
type Execution[R any] struct {
	fut  *exec.Future
	ctl  *core.Controller
	root *exec.Root
}

// Get blocks until the execution finishes and returns the typed result.
func (e *Execution[R]) Get() (R, error) {
	res, err := e.fut.Get()
	return castResult[R](res, err)
}

// GetContext is Get with cancellation of the wait (the execution keeps
// running; use Cancel to abort it).
func (e *Execution[R]) GetContext(ctx context.Context) (R, error) {
	res, err := e.fut.GetContext(ctx)
	return castResult[R](res, err)
}

// Done returns a channel closed when the execution resolves.
func (e *Execution[R]) Done() <-chan struct{} { return e.fut.Done() }

// Cancel aborts the execution; its Get returns err. Running muscles are
// not interrupted, but no further ones start.
func (e *Execution[R]) Cancel(err error) { e.root.Cancel(err) }

// Decisions returns the autonomic adaptation log of this execution (nil
// without a WCT goal).
func (e *Execution[R]) Decisions() []Decision {
	if e.ctl == nil {
		return nil
	}
	return e.ctl.Decisions()
}

// Analyses returns how many controller analyses ran for this execution.
func (e *Execution[R]) Analyses() int {
	if e.ctl == nil {
		return 0
	}
	return e.ctl.Analyses()
}

// Demand returns the controller's latest resource wish — the face a
// multi-job budget arbiter reads. Without a WCT goal it is the zero Demand.
func (e *Execution[R]) Demand() Demand {
	if e.ctl == nil {
		return Demand{}
	}
	return e.ctl.Demand()
}

// SetGoal adjusts this execution's WCT goal at runtime (still measured from
// the original start). A no-op without an autonomic controller, i.e. when
// the stream had no WCT goal at Input time.
func (e *Execution[R]) SetGoal(d time.Duration) {
	if e.ctl != nil {
		e.ctl.SetGoal(d)
	}
}

// Failures returns the fan-out branch failures absorbed by the
// partial-failure policy during this execution, or nil when every branch
// succeeded. A non-nil return alongside a nil Get error means the result is
// partial: branches were skipped or substituted per WithPartialFailure.
func (e *Execution[R]) Failures() *FailureError { return e.root.Failures() }

// SetMaxLP adjusts this execution's LP QoS cap at runtime (0 = uncapped).
// It bounds future controller requests; combine with Stream.SetMaxLP to
// also clamp the pool immediately.
func (e *Execution[R]) SetMaxLP(n int) {
	if e.ctl != nil {
		e.ctl.SetMaxLP(n)
	}
}

func castResult[R any](res any, err error) (R, error) {
	var zero R
	if err != nil {
		return zero, err
	}
	r, ok := res.(R)
	if !ok && res != nil {
		return zero, fmt.Errorf("skandium: execution produced %T, want %T", res, zero)
	}
	return r, nil
}
