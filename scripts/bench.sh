#!/usr/bin/env sh
# Runs the repo's benchmark suite and records the results as benchjson JSON.
#
#   scripts/bench.sh                 # full suite -> BENCH_8.json
#   OUT=my.json scripts/bench.sh     # choose the output file
#   BENCHTIME=200x scripts/bench.sh  # fixed iteration count (comparable runs)
#   FILTER='FarmThroughput|EventOverhead|EngineFanout' scripts/bench.sh
#   PKGS='./internal/server' scripts/bench.sh   # restrict the package list
#
# Compare two recordings (fails on >20% regressions, timing advisory-only):
#
#   go run ./cmd/benchjson -compare BENCH_baseline.json -against BENCH_8.json -ns-advisory
set -eu

cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_8.json}"
BENCHTIME="${BENCHTIME:-200x}"
FILTER="${FILTER:-.}"
PKGS="${PKGS:-. ./internal/server}"

# shellcheck disable=SC2086 # PKGS is a deliberate word list
go test -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" -run '^$' $PKGS \
	| tee /dev/stderr \
	| go run ./cmd/benchjson -out "$OUT"

echo "wrote $OUT" >&2
