package skandium

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func profileProgram() (Skeleton[int, int], Exec[int, int]) {
	fs := NewSplit("chunks", func(n int) ([]int, error) {
		out := make([]int, 3)
		for i := range out {
			out[i] = n
		}
		return out, nil
	})
	fe := NewExec("work", func(n int) (int, error) {
		time.Sleep(time.Millisecond)
		return 1, nil
	})
	fm := NewMerge("fold", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
	return Map(fs, Seq(fe), fm), fe
}

func TestSaveLoadRestoreProfile(t *testing.T) {
	prog, fe := profileProgram()
	st := NewStream[int, int](prog, WithLP(2))
	defer st.Close()
	if _, err := st.Do(0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.SaveProfile(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"work"`) || !strings.Contains(buf.String(), "duration_ns") {
		t.Fatalf("unexpected profile JSON: %s", buf.String())
	}

	np, err := LoadProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !np["chunks"].HasCard || np["chunks"].Card != 3 {
		t.Fatalf("chunks card not persisted: %+v", np["chunks"])
	}
	if !np["work"].HasDur || np["work"].DurationNS < int64(500*time.Microsecond) {
		t.Fatalf("work duration implausible: %+v", np["work"])
	}

	// A brand-new stream over a *rebuilt* program (fresh muscle IDs, same
	// names) restores the knowledge.
	prog2, fe2 := profileProgram()
	if fe2.Muscle().ID() == fe.Muscle().ID() {
		t.Fatal("test setup: expected fresh muscle IDs")
	}
	st2 := NewStream[int, int](prog2, WithLP(2))
	defer st2.Close()
	if err := st2.RestoreProfile(np); err != nil {
		t.Fatal(err)
	}
	d, ok := st2.Estimates().Duration(fe2.Muscle().ID())
	if !ok {
		t.Fatal("restored stream has no duration for work")
	}
	if d != time.Duration(np["work"].DurationNS) {
		t.Fatalf("restored %v, want %v", d, time.Duration(np["work"].DurationNS))
	}
}

func TestNamedProfileRejectsDuplicateNames(t *testing.T) {
	a := NewExec("same", func(n int) (int, error) { return n, nil })
	b := NewExec("same", func(n int) (int, error) { return n + 1, nil })
	prog := Pipe(Seq(a), Seq(b))
	st := NewStream[int, int](prog)
	defer st.Close()
	if _, err := st.NamedProfile(); err == nil || !strings.Contains(err.Error(), `"same"`) {
		t.Fatalf("duplicate names accepted: %v", err)
	}
	if err := st.RestoreProfile(NamedProfile{}); err == nil {
		t.Fatal("restore accepted duplicate names")
	}
}

func TestNamedProfileSharedMuscleOnce(t *testing.T) {
	// The same muscle object reused at two levels (the paper's Listing 1)
	// is fine: one name, one entry.
	fs := NewSplit("fs", func(n int) ([]int, error) { return []int{n, n}, nil })
	fe := NewExec("fe", func(n int) (int, error) { return n, nil })
	fm := NewMerge("fm", func(ps []int) (int, error) { return len(ps), nil })
	inner := Map(fs, Seq(fe), fm)
	outer := Map(fs, inner, fm)
	st := NewStream[int, int](outer)
	defer st.Close()
	if _, err := st.Do(1); err != nil {
		t.Fatal(err)
	}
	np, err := st.NamedProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(np) != 3 {
		t.Fatalf("profile has %d entries, want 3 (fs, fe, fm)", len(np))
	}
}

func TestLoadProfileBadJSON(t *testing.T) {
	if _, err := LoadProfile(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestRestoreProfileIgnoresUnknownNames(t *testing.T) {
	prog, _ := profileProgram()
	st := NewStream[int, int](prog)
	defer st.Close()
	err := st.RestoreProfile(NamedProfile{
		"nonexistent": {DurationNS: 42, HasDur: true},
	})
	if err != nil {
		t.Fatal(err)
	}
}
