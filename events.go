package skandium

import (
	"skandium/internal/event"
)

// Event is the information delivered to listeners: the skeleton node and
// trace, the activation index i correlating Before/After pairs, the partial
// solution, and position metadata (When/Where, split cardinality, branch,
// iteration, condition verdict).
type Event = event.Event

// Listener receives events; Handler returns the (possibly replaced)
// partial solution. Handlers run synchronously on the worker executing the
// adjacent muscle, as in the paper.
type Listener = event.Listener

// ListenerFunc adapts a function to Listener.
type ListenerFunc = event.Func

// Filter narrows which events reach a listener (zero value matches all —
// the paper's "generic listener").
type Filter = event.Filter

// When distinguishes Before/After events.
type When = event.When

// Where locates an event around an activation: the whole skeleton, or its
// split/merge/condition muscle, or one nested-skeleton evaluation.
type Where = event.Where

// Re-exported event positions.
const (
	Before = event.Before
	After  = event.After

	AtSkeleton   = event.Skeleton
	AtSplit      = event.Split
	AtMerge      = event.Merge
	AtCondition  = event.Condition
	AtNestedSkel = event.NestedSkel

	// AtRetry marks a failed muscle attempt about to be retried; AtFault a
	// terminal muscle failure. Both are After events carrying Err.
	AtRetry = event.Retry
	AtFault = event.Fault
)

// NoParent marks events raised by a root-level activation.
const NoParent = event.NoParent
