package skandium

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// NamedProfile is a serializable estimator snapshot keyed by muscle *name*.
// In-memory profiles (Stream.Profile / WithProfile) are keyed by muscle
// identity, which is process-local; a NamedProfile survives across
// processes, so a profiling run can initialize a later production run —
// the paper's "goal with initialization" without keeping the process
// alive. Muscle names must be unique within the program for this to be
// well-defined; SaveProfile enforces that.
type NamedProfile map[string]NamedEstimate

// NamedEstimate is one muscle's persisted estimates.
type NamedEstimate struct {
	// DurationNS is t(m) in nanoseconds (omitted when unknown).
	DurationNS int64 `json:"duration_ns,omitempty"`
	HasDur     bool  `json:"has_dur,omitempty"`
	// Card is |m| (split cardinality, while iterations, d&c depth).
	Card    float64 `json:"card,omitempty"`
	HasCard bool    `json:"has_card,omitempty"`
}

// musclesByName indexes a program's muscles, rejecting duplicate names
// bound to distinct muscle objects.
func musclesByName(node *skel.Node) (map[string]*muscle.Muscle, error) {
	byName := make(map[string]*muscle.Muscle)
	var err error
	node.Walk(func(nd *skel.Node, _ int) bool {
		for _, m := range nd.Muscles() {
			if prev, ok := byName[m.Name()]; ok && prev != m {
				err = fmt.Errorf("skandium: two distinct muscles named %q; named profiles need unique names (use Clone with a new name)", m.Name())
				return false
			}
			byName[m.Name()] = m
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return byName, nil
}

// NamedProfile exports the stream's current estimates keyed by muscle name.
func (st *Stream[P, R]) NamedProfile() (NamedProfile, error) {
	byName, err := musclesByName(st.node)
	if err != nil {
		return nil, err
	}
	prof := st.est.Snapshot()
	out := make(NamedProfile, len(byName))
	for name, m := range byName {
		en, ok := prof[m.ID()]
		if !ok {
			continue
		}
		out[name] = NamedEstimate{
			DurationNS: en.Duration.Nanoseconds(),
			HasDur:     en.HasDuration,
			Card:       en.Card,
			HasCard:    en.HasCard,
		}
	}
	return out, nil
}

// SaveProfile writes the stream's estimates as JSON.
func (st *Stream[P, R]) SaveProfile(w io.Writer) error {
	np, err := st.NamedProfile()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(np)
}

// LoadProfile reads a JSON profile written by SaveProfile.
func LoadProfile(r io.Reader) (NamedProfile, error) {
	var np NamedProfile
	if err := json.NewDecoder(r).Decode(&np); err != nil {
		return nil, fmt.Errorf("skandium: decoding profile: %w", err)
	}
	return np, nil
}

// RestoreProfile seeds the stream's estimators from a named profile
// (entries for unknown muscle names are ignored; the estimates count as
// initialization, not observations). Call before the first Input.
func (st *Stream[P, R]) RestoreProfile(np NamedProfile) error {
	byName, err := musclesByName(st.node)
	if err != nil {
		return err
	}
	for name, en := range np {
		m, ok := byName[name]
		if !ok {
			continue
		}
		if en.HasDur {
			st.est.InitDuration(m.ID(), time.Duration(en.DurationNS))
		}
		if en.HasCard {
			st.est.InitCard(m.ID(), en.Card)
		}
	}
	return nil
}
