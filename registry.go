package skandium

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"skandium/internal/exec"
	"skandium/internal/skel"
)

// Params is the decoded JSON parameter bag of a daemon job submission.
// Numbers arrive as float64 (JSON); the accessors below normalize.
type Params map[string]any

// Int reads an integer parameter, falling back to def when absent or of the
// wrong shape.
func (p Params) Int(key string, def int) int {
	switch v := p[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	default:
		return def
	}
}

// Float reads a float parameter with a default.
func (p Params) Float(key string, def float64) float64 {
	switch v := p[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	default:
		return def
	}
}

// String reads a string parameter with a default.
func (p Params) String(key, def string) string {
	if v, ok := p[key].(string); ok {
		return v
	}
	return def
}

// Blueprint is a named, daemon-runnable skeleton program: a description
// plus a factory that erases the generic types so jobs can be built from
// JSON submissions.
type Blueprint struct {
	// Name is the registry key ("wordcount", "mergesort", ...).
	Name string
	// Description is a one-line human summary for the catalog listing.
	Description string
	// Defaults documents the recognized params with their default values.
	Defaults Params
	// Build compiles the program and its input for one job.
	Build func(p Params) (Runner, error)
	// Remote, when non-nil, marks the blueprint cluster-eligible: its task
	// parameters and results survive a trip over the wire. Muscles are Go
	// functions and never ship — a worker re-Builds the blueprint by name
	// with the job's params and walks the same compiled program — but the
	// *values* flowing through the fan-out do ship, and JSON round-trips
	// erase their Go types. The codec restores them on each side.
	Remote *RemoteCodec
}

// RemoteCodec converts the values crossing the coordinator/worker wire: the
// fan-out parts shipped to workers and the per-part results shipped back.
type RemoteCodec struct {
	EncodePart   func(v any) ([]byte, error)
	DecodePart   func(b []byte) (any, error)
	EncodeResult func(v any) ([]byte, error)
	DecodeResult func(b []byte) (any, error)
}

// JSONCodec builds a RemoteCodec that marshals parts and results as JSON
// into their concrete types — the easy path for blueprints whose fan-out
// values are plain JSON-friendly structs.
func JSONCodec[Part, Res any]() *RemoteCodec {
	return &RemoteCodec{
		EncodePart: func(v any) ([]byte, error) { return json.Marshal(v) },
		DecodePart: func(b []byte) (any, error) {
			var p Part
			if err := json.Unmarshal(b, &p); err != nil {
				return nil, err
			}
			return p, nil
		},
		EncodeResult: func(v any) ([]byte, error) { return json.Marshal(v) },
		DecodeResult: func(b []byte) (any, error) {
			var r Res
			if err := json.Unmarshal(b, &r); err != nil {
				return nil, err
			}
			return r, nil
		},
	}
}

// Runner is one job's erased launcher: a compiled skeleton program plus the
// input it will process, detached from the generic P/R types.
type Runner interface {
	// Program renders the skeleton in the paper's syntax.
	Program() string
	// Node exposes the underlying skeleton tree — the compilation root a
	// coordinator or worker hands to the plan compiler.
	Node() *skel.Node
	// Input returns the erased job input (what Start would inject).
	Input() any
	// Start builds a fresh stream with opts, injects the job's input, and
	// returns the erased execution handle. Call it exactly once.
	Start(opts ...Option) Handle
}

// Handle is the erased face of one running job: the execution plus its
// stream's levers, which is exactly what a multi-job daemon needs — wait,
// read the autonomic record, adjust QoS, obey a budget arbiter, tear down.
type Handle interface {
	// Done is closed when the execution resolves.
	Done() <-chan struct{}
	// Result blocks until done and returns the erased result.
	Result() (any, error)
	// Decisions returns the autonomic adaptation log.
	Decisions() []Decision
	// Analyses returns how many controller analyses ran.
	Analyses() int
	// Demand returns the controller's latest resource wish.
	Demand() Demand
	// LP returns the pool's current level of parallelism.
	LP() int
	// Active returns the number of workers currently running a task.
	Active() int
	// SetLP manually adjusts the LP target.
	SetLP(n int)
	// SetCap imposes/lifts the arbiter's external LP cap.
	SetCap(n int)
	// Cap returns the external LP cap (0 = none).
	Cap() int
	// SetGoal adjusts the WCT goal at runtime.
	SetGoal(d time.Duration)
	// SetMaxLP adjusts the LP QoS cap at runtime (pool and controller).
	SetMaxLP(n int)
	// Stats returns the pool's execution counters.
	Stats() exec.Stats
	// FaultStats returns the fault-tolerance counters.
	FaultStats() FaultStats
	// Failures returns the branch failures absorbed by the partial-failure
	// policy (nil when none — the result is complete).
	Failures() *FailureError
	// Cancel aborts the execution; its Result returns err.
	Cancel(err error)
	// Close shuts the job's stream down (idempotent).
	Close()
}

// NewRunner erases a typed skeleton program and its input into a Runner —
// the bridge between compile-time-typed library code and the daemon's
// JSON-typed job submissions.
func NewRunner[P, R any](s Skeleton[P, R], input P) Runner {
	return &runner[P, R]{s: s, input: input}
}

type runner[P, R any] struct {
	s     Skeleton[P, R]
	input P
}

func (r *runner[P, R]) Program() string { return r.s.String() }

func (r *runner[P, R]) Node() *skel.Node { return r.s.Node() }

func (r *runner[P, R]) Input() any { return r.input }

func (r *runner[P, R]) Start(opts ...Option) Handle {
	st := NewStream[P, R](r.s, opts...)
	return &handle[P, R]{st: st, ex: st.Input(r.input)}
}

type handle[P, R any] struct {
	st *Stream[P, R]
	ex *Execution[R]
}

func (h *handle[P, R]) Done() <-chan struct{} { return h.ex.Done() }
func (h *handle[P, R]) Result() (any, error) {
	r, err := h.ex.Get()
	return r, err
}
func (h *handle[P, R]) Decisions() []Decision { return h.ex.Decisions() }
func (h *handle[P, R]) Analyses() int         { return h.ex.Analyses() }
func (h *handle[P, R]) Demand() Demand        { return h.ex.Demand() }
func (h *handle[P, R]) LP() int               { return h.st.LP() }
func (h *handle[P, R]) Active() int           { return h.st.Active() }
func (h *handle[P, R]) SetLP(n int)           { h.st.SetLP(n) }
func (h *handle[P, R]) SetCap(n int)          { h.st.SetCap(n) }
func (h *handle[P, R]) Cap() int              { return h.st.Cap() }
func (h *handle[P, R]) SetGoal(d time.Duration) {
	h.ex.SetGoal(d)
}
func (h *handle[P, R]) SetMaxLP(n int) {
	h.st.SetMaxLP(n)
	h.ex.SetMaxLP(n)
}
func (h *handle[P, R]) Stats() exec.Stats       { return h.st.Stats() }
func (h *handle[P, R]) FaultStats() FaultStats  { return h.st.FaultStats() }
func (h *handle[P, R]) Failures() *FailureError { return h.ex.Failures() }
func (h *handle[P, R]) Cancel(err error)        { h.ex.Cancel(err) }
func (h *handle[P, R]) Close()                  { h.st.Close() }

// The process-wide blueprint registry. Register at init time; the daemon
// lists and looks blueprints up by name.
var (
	blueprintMu  sync.Mutex
	blueprintMap = map[string]Blueprint{}
)

// RegisterBlueprint adds a named blueprint. It panics on an empty name, a
// nil Build or a duplicate registration — all programming errors.
func RegisterBlueprint(b Blueprint) {
	if b.Name == "" || b.Build == nil {
		panic("skandium: RegisterBlueprint with empty name or nil Build")
	}
	blueprintMu.Lock()
	defer blueprintMu.Unlock()
	if _, dup := blueprintMap[b.Name]; dup {
		panic(fmt.Sprintf("skandium: blueprint %q registered twice", b.Name))
	}
	blueprintMap[b.Name] = b
}

// LookupBlueprint finds a registered blueprint by name.
func LookupBlueprint(name string) (Blueprint, bool) {
	blueprintMu.Lock()
	defer blueprintMu.Unlock()
	b, ok := blueprintMap[name]
	return b, ok
}

// Blueprints returns all registered blueprints sorted by name.
func Blueprints() []Blueprint {
	blueprintMu.Lock()
	defer blueprintMu.Unlock()
	out := make([]Blueprint, 0, len(blueprintMap))
	for _, b := range blueprintMap {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
