// Package skandium is a Go algorithmic-skeleton library with
// self-configuring and self-optimizing autonomic execution, reproducing
// Pabón & Henrio, "Self-Configuration and Self-Optimization Autonomic
// Skeletons using Events" (PMAM 2014), which extended the Java Skandium
// library.
//
// # Skeletons and muscles
//
// Parallel programs are composed from nestable patterns
//
//	∆ ::= seq(fe) | farm(∆) | pipe(∆1,∆2) | while(fc,∆) | if(fc,∆t,∆f)
//	    | for(n,∆) | map(fs,∆,fm) | fork(fs,{∆},fm) | d&c(fc,fs,∆,fm)
//
// parameterized by sequential "muscles": Execute (fe: P→R), Split
// (fs: P→[]R), Merge (fm: []P→R) and Condition (fc: P→bool). The library
// schedules the muscles onto a task pool of goroutine workers; all
// communication and synchronization is implicit in the pattern.
//
//	fs := skandium.NewSplit("chunks", func(j Job) ([]Part, error) { ... })
//	fe := skandium.NewExec("count", func(p Part) (Counts, error) { ... })
//	fm := skandium.NewMerge("fold", func(cs []Counts) (Counts, error) { ... })
//	program := skandium.Map(fs, skandium.Seq(fe), fm)
//
//	stream := skandium.NewStream[Job, Counts](program)
//	defer stream.Close()
//	result, err := stream.Input(job).Get()
//
// # Events
//
// Every muscle invocation and skeleton activation is bracketed by events
// carrying the partial solution, the skeleton trace and an activation index
// — the separation-of-concerns layer that lets non-functional code (logging,
// monitoring, adaptation) observe and even transform the computation without
// touching the muscles:
//
//	stream.AddListener(skandium.ListenerFunc(func(e *skandium.Event) any {
//	    log.Printf("%v %v/%v i=%d", e.Node.Kind(), e.When, e.Where, e.Index)
//	    return e.Param
//	}))
//
// # Autonomic execution
//
// Given a wall-clock-time goal, the runtime estimates every muscle's
// duration t(m) and cardinality |m| online (EWMA, parameter ρ), maintains an
// Activity Dependency Graph of the running execution, predicts the WCT under
// the current level of parallelism, and adapts the worker pool: raising LP
// when the goal would be missed, halving it when the goal survives with half
// the threads:
//
//	stream := skandium.NewStream[Job, Counts](program,
//	    skandium.WithWCTGoal(9500*time.Millisecond),
//	    skandium.WithMaxLP(24))
//	ex := stream.Input(job)
//	result, err := ex.Get()
//	for _, d := range ex.Decisions() { fmt.Println(d) }
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction.
package skandium
