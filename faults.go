package skandium

import (
	"time"

	"skandium/internal/exec"
)

// RetryPolicy bounds how failed muscle invocations are retried (see
// WithRetry): total attempts, exponential backoff with seeded jitter, and an
// optional error predicate.
type RetryPolicy = exec.RetryPolicy

// PartialPolicy decides what happens when one branch of a data-parallel
// fan-out (map, fork, d&c) fails terminally (see WithPartialFailure). Build
// values with FailFast, SkipFailed or Substitute.
type PartialPolicy = exec.PartialPolicy

// FaultStats is a snapshot of a stream's fault-tolerance counters (see
// Stream.FaultStats).
type FaultStats = exec.FaultStats

// MuscleError wraps an error or recovered panic raised by a muscle, carrying
// the muscle identity and the skeleton trace for diagnosis.
type MuscleError = exec.MuscleError

// BranchFailure records one fan-out branch lost to the partial-failure
// policy.
type BranchFailure = exec.BranchFailure

// FailureError aggregates branch failures: it resolves an execution whose
// fan-out lost every branch under SkipFailed, and Execution.Failures returns
// it after partially-degraded successes.
type FailureError = exec.FailureError

// ErrMuscleTimeout is wrapped by the MuscleError of a muscle attempt that
// overran the WithMuscleTimeout deadline. Detect it with errors.Is.
var ErrMuscleTimeout = exec.ErrMuscleTimeout

// FailFast aborts the whole execution on the first branch failure — the
// default.
func FailFast() PartialPolicy { return exec.FailFast() }

// SkipFailed drops failed fan-out branches before the merge: the merge
// muscle receives only the surviving results, and the execution succeeds
// with a partial result (inspect Execution.Failures). When every branch of a
// fan-out fails, the activation fails with a FailureError.
func SkipFailed() PartialPolicy { return exec.SkipFailed() }

// Substitute replaces each failed branch's result with v before the merge,
// preserving the fan-out's cardinality.
func Substitute(v any) PartialPolicy { return exec.Substitute(v) }

// WithMuscleTimeout sets a per-muscle deadline: an attempt overrunning d
// fails with a MuscleError wrapping ErrMuscleTimeout (retryable under
// WithRetry like any other failure). The overrunning attempt is abandoned,
// not interrupted — it finishes in the background and its result is
// discarded — so muscles guarded by a timeout should be side-effect-free or
// idempotent. Zero disables deadlines.
func WithMuscleTimeout(d time.Duration) Option {
	return func(c *config) { c.faultTimeout = d }
}

// WithRetry retries failed muscle invocations per p. Each retry re-raises
// the attempt's Before event, so estimators time every attempt separately
// and the EWMA never absorbs the cost of a failed try; attempts that failed
// but will be retried raise AtRetry events, terminal failures raise AtFault
// events (both carry Err, so autonomic listeners skip their timing).
func WithRetry(p RetryPolicy) Option {
	return func(c *config) { c.faultRetry = p }
}

// WithPartialFailure installs the fan-out branch-failure policy (default
// FailFast).
func WithPartialFailure(p PartialPolicy) Option {
	return func(c *config) { c.faultPartial = p }
}
