package skandium

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skandium/internal/chaos"
	"skandium/internal/clock"
	"skandium/internal/skel"
)

// TestWithRetryRecoversAndEstimatorNotPolluted proves the tentpole's
// estimator contract: a retried muscle's EWMA sees only the succeeding
// attempt's duration. Every attempt advances a virtual clock by a known
// amount; the failed attempts' time must not leak into the estimate.
func TestWithRetryRecoversAndEstimatorNotPolluted(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	var calls atomic.Int64
	fe := NewExec("step", func(n int) (int, error) {
		clk.Advance(10 * time.Millisecond) // every attempt costs 10ms
		if calls.Add(1) <= 2 {
			return 0, errors.New("transient")
		}
		return n + 1, nil
	})
	st := NewStream[int, int](Seq(fe),
		WithLP(1), WithClock(clk),
		WithRetry(RetryPolicy{MaxAttempts: 3}))
	defer st.Close()
	res, err := st.Do(1)
	if err != nil || res != 2 {
		t.Fatalf("got (%v, %v), want (2, nil)", res, err)
	}
	if fs := st.FaultStats(); fs.Retries != 2 {
		t.Fatalf("retries = %d, want 2", fs.Retries)
	}
	d, ok := st.Estimates().Duration(fe.Muscle().ID())
	if !ok {
		t.Fatal("no duration estimate recorded")
	}
	if d != 10*time.Millisecond {
		t.Fatalf("estimate = %v, want 10ms (single-attempt cost; retries double-counted?)", d)
	}
}

// TestChaosSkipFailedWordcountGrid is the PR's acceptance scenario: a
// two-level map grid with >=10%% of leaf muscles failing completes under
// SkipFailed with exactly the surviving leaves counted.
func TestChaosSkipFailedWordcountGrid(t *testing.T) {
	const leaves = 64 // 8×8 grid
	inj := chaos.New(chaos.Config{Seed: 20130725, ErrorRate: 0.2})
	fs := NewSplit("fs", func(n int) ([]int, error) {
		out := make([]int, 8)
		for i := range out {
			out[i] = n / 8
		}
		return out, nil
	})
	fe := NewExec("leaf", chaos.Wrap(inj, func(n int) (int, error) { return 1, nil }))
	fm := NewMerge("fm", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
	inner := Map(fs, Seq(fe), fm)
	program := Map(fs, inner, fm)

	st := NewStream[int, int](program, WithLP(4), WithPartialFailure(SkipFailed()))
	defer st.Close()
	ex := st.Input(leaves)
	res, err := ex.Get()
	if err != nil {
		t.Fatal(err)
	}
	cs := inj.Stats()
	if cs.Errors == 0 || cs.Errors < leaves/10 {
		t.Fatalf("chaos injected only %d errors into %d leaves (want >= 10%%)", cs.Errors, leaves)
	}
	want := leaves - int(cs.Errors)
	if res != want {
		t.Fatalf("partial result = %d, want %d (= %d leaves - %d injected failures)", res, want, leaves, cs.Errors)
	}
	fails := ex.Failures()
	if fails == nil || len(fails.Failures) != int(cs.Errors) {
		t.Fatalf("Failures() reports %v, want %d records", fails, cs.Errors)
	}
	if fs := st.FaultStats(); fs.Skipped != cs.Errors {
		t.Fatalf("skipped counter = %d, want %d", fs.Skipped, cs.Errors)
	}
}

// TestChaosRetryRecoversAllFaults: with a retry budget above the chaos
// error rate's worst streak, every injected fault is recovered and the
// result is complete.
func TestChaosRetryRecoversAllFaults(t *testing.T) {
	const leaves = 32
	inj := chaos.New(chaos.Config{Seed: 7, ErrorRate: 0.3})
	fs := NewSplit("fs", func(n int) ([]int, error) {
		out := make([]int, leaves)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := NewExec("leaf", chaos.Wrap(inj, func(n int) (int, error) { return 1, nil }))
	fm := NewMerge("fm", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
	st := NewStream[int, int](Map(fs, Seq(fe), fm),
		WithLP(4), WithRetry(RetryPolicy{MaxAttempts: 25}))
	defer st.Close()
	res, err := st.Do(leaves)
	if err != nil || res != leaves {
		t.Fatalf("got (%v, %v), want (%d, nil)", res, err, leaves)
	}
	fstats := st.FaultStats()
	if fstats.Retries == 0 {
		t.Fatal("chaos injected no faults to retry — test proves nothing")
	}
	if fstats.Faults != 0 {
		t.Fatalf("faults = %d, want 0 (every injected error recovered)", fstats.Faults)
	}
}

// TestWCTGoalKeptUnderFaults: the autonomic controller still meets its WCT
// goal when muscles fail transiently and are retried. Deterministic faults
// (FailFirst) avoid flakes; sleep muscles make LP a real lever.
func TestWCTGoalKeptUnderFaults(t *testing.T) {
	const fanout = 12
	inj := chaos.New(chaos.Config{FailFirst: 4})
	fs := NewSplit("fs", func(n int) ([]int, error) {
		out := make([]int, fanout)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := NewExec("sleepy", chaos.Wrap(inj, func(n int) (int, error) {
		time.Sleep(5 * time.Millisecond)
		return 1, nil
	}))
	fm := NewMerge("fm", func(ps []int) (int, error) { return len(ps), nil })

	goal := 250 * time.Millisecond
	st := NewStream[int, int](Map(fs, Seq(fe), fm),
		WithLP(1), WithMaxLP(8),
		WithWCTGoal(goal),
		WithRetry(RetryPolicy{MaxAttempts: 6}),
	)
	defer st.Close()
	start := time.Now()
	ex := st.Input(fanout)
	res, err := ex.Get()
	wall := time.Since(start)
	if err != nil || res != fanout {
		t.Fatalf("got (%v, %v), want (%d, nil)", res, err, fanout)
	}
	if fstats := st.FaultStats(); fstats.Retries < 4 {
		t.Fatalf("retries = %d, want >= 4 (FailFirst faults recovered)", fstats.Retries)
	}
	// Sequential would take fanout × 5ms = 60ms plus retries; the goal is
	// generous, so missing it means the controller or retry path stalled.
	if wall > goal {
		t.Fatalf("WCT %v exceeded goal %v under faults (decisions: %v)", wall, goal, ex.Decisions())
	}
}

// TestMuscleTimeoutPublic: a hanging muscle is cut at the deadline and the
// error is detectable with errors.Is.
func TestMuscleTimeoutPublic(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	fe := NewExec("hang", func(n int) (int, error) {
		<-gate
		return n, nil
	})
	st := NewStream[int, int](Seq(fe), WithLP(1), WithMuscleTimeout(15*time.Millisecond))
	defer st.Close()
	_, err := st.Do(1)
	if !errors.Is(err, ErrMuscleTimeout) {
		t.Fatalf("want ErrMuscleTimeout, got %v", err)
	}
	if fstats := st.FaultStats(); fstats.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", fstats.Timeouts)
	}
}

// TestMuscleErrorTracePropagation: a failure in a seq nested inside
// map inside pipe surfaces a MuscleError whose trace walks the static
// skeleton path pipe → map → seq.
func TestMuscleErrorTracePropagation(t *testing.T) {
	fs := NewSplit("fs", func(n int) ([]int, error) { return []int{n, n + 1}, nil })
	bad := NewExec("bad", func(n int) (int, error) {
		return 0, fmt.Errorf("muscle exploded on %d", n)
	})
	fm := NewMerge("fm", func(ps []int) (int, error) { return len(ps), nil })
	first := NewExec("first", func(n int) (int, error) { return n, nil })

	program := Pipe(Seq(first), Map(fs, Seq(bad), fm))
	st := NewStream[int, int](program, WithLP(1))
	defer st.Close()
	_, err := st.Do(3)
	var me *MuscleError
	if !errors.As(err, &me) {
		t.Fatalf("want MuscleError, got %v", err)
	}
	if me.Muscle.Name() != "bad" {
		t.Fatalf("error blames muscle %q, want \"bad\"", me.Muscle.Name())
	}
	kinds := make([]skel.Kind, 0, len(me.Trace))
	for _, nd := range me.Trace {
		kinds = append(kinds, nd.Kind())
	}
	want := []skel.Kind{skel.Pipe, skel.Map, skel.Seq}
	if len(kinds) != len(want) {
		t.Fatalf("trace kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace kinds = %v, want %v", kinds, want)
		}
	}
	if !strings.Contains(err.Error(), "muscle exploded") {
		t.Fatalf("cause lost from rendered error: %v", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("muscle name lost from rendered error: %v", err)
	}
}

// TestRetryEventsVisibleToListeners: AtRetry/AtFault reach public
// listeners with Err set.
func TestRetryEventsVisibleToListeners(t *testing.T) {
	var calls, retrySeen, faultSeen atomic.Int64
	fe := NewExec("flaky", func(n int) (int, error) {
		if calls.Add(1) <= 3 {
			return 0, errors.New("transient")
		}
		return n, nil
	})
	st := NewStream[int, int](Seq(fe),
		WithLP(1),
		WithRetry(RetryPolicy{MaxAttempts: 3}),
		WithListener(ListenerFunc(func(e *Event) any {
			switch e.Where {
			case AtRetry:
				retrySeen.Add(1)
			case AtFault:
				faultSeen.Add(1)
			}
			return e.Param
		})))
	defer st.Close()
	if _, err := st.Do(1); err == nil {
		t.Fatal("want terminal failure after 3 attempts")
	}
	if retrySeen.Load() != 2 || faultSeen.Load() != 1 {
		t.Fatalf("listeners saw %d retries, %d faults; want 2 and 1", retrySeen.Load(), faultSeen.Load())
	}
}
