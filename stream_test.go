package skandium

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/exec"
)

// nestedSleepProgram is the two-level shared-muscle shape with sleep
// muscles (parallelizable even on one CPU).
func nestedSleepProgram(fanout int, d time.Duration) Skeleton[int, int] {
	fs := NewSplit("fs", func(n int) ([]int, error) {
		out := make([]int, fanout)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := NewExec("fe", func(n int) (int, error) {
		time.Sleep(d)
		return 1, nil
	})
	fm := NewMerge("fm", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
	inner := Map(fs, Seq(fe), fm)
	return Map(fs, inner, fm)
}

// TestConcurrentAutonomicInputs: several goal-driven inputs share one pool;
// each gets its own controller and decision log, all complete correctly.
// The pool LP is a shared lever — the controllers cooperate on it
// (last-writer-wins per analysis), which is the stream semantics the
// library documents.
func TestConcurrentAutonomicInputs(t *testing.T) {
	prog := nestedSleepProgram(3, 4*time.Millisecond)
	st := NewStream[int, int](prog,
		WithLP(1),
		WithMaxLP(12),
		WithWCTGoal(60*time.Millisecond))
	defer st.Close()

	const jobs = 4
	var wg sync.WaitGroup
	results := make([]int, jobs)
	decided := make([]int, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ex := st.Input(0)
			results[i], errs[i] = ex.Get()
			decided[i] = len(ex.Decisions())
		}(i)
	}
	wg.Wait()
	adapted := 0
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if results[i] != 9 {
			t.Fatalf("job %d: result %d, want 9", i, results[i])
		}
		adapted += decided[i]
	}
	if adapted == 0 {
		t.Fatal("no execution adapted")
	}
}

// TestWithRhoChangesEstimator: ρ=1 keeps only the last observation.
func TestWithRhoChangesEstimator(t *testing.T) {
	fe := NewExec("varying", func(d time.Duration) (int, error) {
		time.Sleep(d)
		return 0, nil
	})
	st := NewStream[time.Duration, int](Seq(fe), WithRho(1))
	defer st.Close()
	if _, err := st.Do(8 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Do(1 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	d, ok := st.Estimates().Duration(fe.Muscle().ID())
	if !ok {
		t.Fatal("no estimate")
	}
	// With ρ=1 the estimate is the last (~1ms) run, not a blend (~4.5ms).
	if d > 4*time.Millisecond {
		t.Fatalf("ρ=1 estimate %v still blends history", d)
	}
}

// TestWithEstimatorVariant: the median window survives one outlier.
func TestWithEstimatorVariant(t *testing.T) {
	fe := NewExec("spiky", func(d time.Duration) (int, error) {
		time.Sleep(d)
		return 0, nil
	})
	st := NewStream[time.Duration, int](Seq(fe), WithEstimator(estimate.MedianFactory(5)))
	defer st.Close()
	for _, d := range []time.Duration{2, 2, 40, 2, 2} {
		if _, err := st.Do(d * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	d, ok := st.Estimates().Duration(fe.Muscle().ID())
	if !ok {
		t.Fatal("no estimate")
	}
	if d > 10*time.Millisecond {
		t.Fatalf("median estimate %v dominated by the outlier", d)
	}
}

// TestWithPredictorWorkSpan: the analytic predictor drives adaptation too.
func TestWithPredictorWorkSpan(t *testing.T) {
	prog := nestedSleepProgram(4, 5*time.Millisecond)
	st := NewStream[int, int](prog,
		WithLP(1),
		WithMaxLP(16),
		WithWCTGoal(60*time.Millisecond),
		WithPredictor(PredictWorkSpan))
	defer st.Close()
	ex := st.Input(0)
	res, err := ex.Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 16 {
		t.Fatalf("result %d", res)
	}
	if len(ex.Decisions()) == 0 {
		t.Fatal("work/span predictor never adapted")
	}
}

// TestWithADGBudgetStillWorks: a tiny analysis budget degrades gracefully.
func TestWithADGBudgetStillWorks(t *testing.T) {
	prog := nestedSleepProgram(4, 3*time.Millisecond)
	st := NewStream[int, int](prog,
		WithLP(1),
		WithMaxLP(8),
		WithWCTGoal(50*time.Millisecond),
		WithADGBudget(4))
	defer st.Close()
	res, err := st.Do(0)
	if err != nil {
		t.Fatal(err)
	}
	if res != 16 {
		t.Fatalf("result %d", res)
	}
}

// TestCloseIdempotentAndInputFails: stream lifecycle edges — double Close is
// safe, and Input after Close yields an execution resolved with ErrClosed
// instead of panicking (a daemon may evict a job while a submission races).
func TestCloseIdempotentAndInputFails(t *testing.T) {
	id := NewExec("id", func(n int) (int, error) { return n, nil })
	st := NewStream[int, int](Seq(id))
	st.Close()
	st.Close()
	if _, err := st.Input(1).Get(); err != ErrClosed {
		t.Fatalf("Input on closed stream: err = %v, want ErrClosed", err)
	}
}

// TestCloseConcurrentWithInputAndDrain: Close racing in-flight Input and
// Drain calls must neither panic nor hang — every injected execution
// resolves (with its result or ErrClosed) and Drain returns. Run with
// -race; this is the regression test for the daemon's job-eviction and
// shutdown paths.
func TestCloseConcurrentWithInputAndDrain(t *testing.T) {
	slow := NewExec("slow", func(n int) (int, error) {
		time.Sleep(200 * time.Microsecond)
		return n, nil
	})
	for round := 0; round < 8; round++ {
		st := NewStream[int, int](Seq(slow), WithLP(2))
		var wg sync.WaitGroup
		execs := make(chan *Execution[int], 64)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					execs <- st.Input(g*8 + i)
				}
			}(g)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := st.Drain(ctx); err != nil {
				t.Errorf("Drain: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * 300 * time.Microsecond)
			st.Close()
			st.Close() // idempotent under contention too
		}()
		wg.Wait()
		close(execs)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ex := range execs {
				if _, err := ex.Get(); err != nil && err != ErrClosed && err != exec.ErrPoolClosed {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("executions did not resolve after Close")
		}
	}
}

// TestGaugeThroughPublicAPI: WithGauge observes worker activity.
func TestGaugeThroughPublicAPI(t *testing.T) {
	prog := nestedSleepProgram(2, 2*time.Millisecond)
	var mu sync.Mutex
	peak := 0
	st := NewStream[int, int](prog, WithLP(3),
		WithGauge(func(_ time.Time, active, lp int) {
			mu.Lock()
			if active > peak {
				peak = active
			}
			mu.Unlock()
		}))
	defer st.Close()
	if _, err := st.Do(0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak < 1 {
		t.Fatal("gauge saw no activity")
	}
	if peak > 3 {
		t.Fatalf("gauge peak %d exceeds LP", peak)
	}
}

// TestDrainWaitsForInFlight: Drain returns only after every injected
// execution resolved; the stream stays usable.
func TestDrainWaitsForInFlight(t *testing.T) {
	slow := NewExec("slow", func(n int) (int, error) {
		time.Sleep(5 * time.Millisecond)
		return n, nil
	})
	st := NewStream[int, int](Seq(slow), WithLP(2))
	defer st.Close()
	for i := 0; i < 6; i++ {
		st.Input(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if res, err := st.Do(7); err != nil || res != 7 {
		t.Fatalf("stream unusable after drain: %v/%v", res, err)
	}
}

// TestDrainContextCancel: a canceled context aborts the wait.
func TestDrainContextCancel(t *testing.T) {
	block := make(chan struct{})
	stuck := NewExec("stuck", func(n int) (int, error) {
		<-block
		return n, nil
	})
	st := NewStream[int, int](Seq(stuck), WithLP(1))
	defer st.Close()
	defer close(block)
	ex := st.Input(1)
	_ = ex
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := st.Drain(ctx); err == nil {
		t.Fatal("drain returned while execution blocked")
	}
}

// TestRemainingOptionCoverage exercises the less-traveled options and
// accessors together: virtual clock, throttled analyses, damped decreases,
// explicit policies, farm wrapper, and the execution accessors.
func TestRemainingOptionCoverage(t *testing.T) {
	prog := Farm(nestedSleepProgram(3, 2*time.Millisecond))
	st := NewStream[int, int](prog,
		WithLP(1),
		WithMaxLP(8),
		WithWCTGoal(40*time.Millisecond),
		WithAnalysisInterval(time.Millisecond),
		WithDecreaseHold(10*time.Millisecond),
		WithPolicies(IncreaseMinimal, DecreaseHalve),
		WithClock(nil2clock()),
	)
	defer st.Close()
	ex := st.Input(0)
	select {
	case <-ex.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("execution did not finish")
	}
	res, err := ex.Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 9 {
		t.Fatalf("result %d", res)
	}
	_ = ex.Analyses()
	_ = ex.Decisions()
	// Muscle accessors on every handle flavour.
	fs := intRange()
	fm := intSum()
	fc := NewCond("c", func(n int) (bool, error) { return false, nil })
	if fs.Muscle() == nil || fm.Muscle() == nil || fc.Muscle() == nil {
		t.Fatal("nil muscle accessor")
	}
}

// nil2clock returns the default clock through the public option path.
func nil2clock() clockIface { return realClock{} }

type clockIface = interface{ Now() time.Time }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// TestConcurrentInputsCloneStatefulPolicy is the race regression for
// WithPolicy on a multi-input stream: one configured stateful policy value
// (bandit: unsynchronized PRNG plus an arm-value map) used to be handed
// verbatim to every input's controller, so concurrent executions raced on
// it — a concurrent map write is a fatal runtime panic. Input now clones
// the policy per execution (PolicyCloner); several goal-bound inputs in
// flight at once let -race flag any state still shared.
func TestConcurrentInputsCloneStatefulPolicy(t *testing.T) {
	for _, name := range []string{"bandit", "hillclimb"} {
		pol, err := NewPolicy(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		prog := Farm(nestedSleepProgram(3, time.Millisecond))
		st := NewStream[int, int](prog,
			WithLP(1),
			WithMaxLP(8),
			WithWCTGoal(10*time.Millisecond),
			WithAnalysisTicker(time.Millisecond),
			WithPolicy(pol),
		)
		var exs []*Execution[int]
		for i := 0; i < 6; i++ {
			exs = append(exs, st.Input(0))
		}
		for _, ex := range exs {
			if res, err := ex.Get(); err != nil || res != 9 {
				t.Fatalf("policy %s: result %v, %v", name, res, err)
			}
		}
		st.Close()
	}
}

// TestAnalysisTickerCatchesStraggler: a muscle that wildly overruns its
// estimate emits no events, so an event-driven controller stays blind
// until it ends. The periodic ticker re-analyzes mid-muscle, notices the
// projection slipping past the goal, and raises LP so the remaining
// branches overlap the straggler.
func TestAnalysisTickerCatchesStraggler(t *testing.T) {
	var calls atomic.Int64
	fs := NewSplit("fs", func(n int) ([]int, error) {
		out := make([]int, 6)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := NewExec("fe", func(n int) (int, error) {
		if calls.Add(1) == 2 {
			// The second invocation is a 40ms straggler; the first taught
			// the estimator ~2ms.
			time.Sleep(40 * time.Millisecond)
		} else {
			time.Sleep(2 * time.Millisecond)
		}
		return 1, nil
	})
	fm := NewMerge("fm", func(ps []int) (int, error) {
		s := 0
		for _, p := range ps {
			s += p
		}
		return s, nil
	})
	inner := Map(fs, Seq(fe), fm)
	prog := Map(fs, inner, fm)

	st := NewStream[int, int](prog,
		WithLP(1),
		WithMaxLP(8),
		WithWCTGoal(60*time.Millisecond),
		WithAnalysisTicker(3*time.Millisecond))
	defer st.Close()
	ex := st.Input(0)
	res, err := ex.Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 36 {
		t.Fatalf("result %d, want 36", res)
	}
	if len(ex.Decisions()) == 0 {
		t.Fatal("ticker-driven controller never adapted")
	}
}

// TestWithOptimizeOff: a stream with the optimizer disabled runs every
// input through the raw 1:1 compiled program (no annotations) and still
// computes identical results; the node's cached (optimized) plan is left
// untouched for other streams of the same skeleton.
func TestWithOptimizeOff(t *testing.T) {
	prog := nestedSleepProgram(3, time.Millisecond)

	raw := NewStream[int, int](prog, WithLP(2), WithOptimize(false))
	defer raw.Close()
	opt := NewStream[int, int](prog, WithLP(2))
	defer opt.Close()

	const jobs = 3
	for i := 0; i < jobs; i++ {
		r1, err1 := raw.Input(i).Get()
		r2, err2 := opt.Input(i).Get()
		if err1 != nil || err2 != nil {
			t.Fatalf("job %d: raw err %v, optimized err %v", i, err1, err2)
		}
		if r1 != r2 || r1 != 9 {
			t.Fatalf("job %d: raw %d, optimized %d, want 9", i, r1, r2)
		}
	}
}
