module skandium

go 1.22
