package skandium_test

import (
	"fmt"
	"time"

	"skandium"
)

// The canonical map skeleton: split, process in parallel, merge.
func ExampleMap() {
	split := skandium.NewSplit("range", func(n int) ([]int, error) {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	})
	square := skandium.NewExec("square", func(x int) (int, error) { return x * x, nil })
	sum := skandium.NewMerge("sum", func(ps []int) (int, error) {
		t := 0
		for _, p := range ps {
			t += p
		}
		return t, nil
	})
	program := skandium.Map(split, skandium.Seq(square), sum)
	stream := skandium.NewStream[int, int](program, skandium.WithLP(4))
	defer stream.Close()
	res, _ := stream.Do(10)
	fmt.Println(program, "=", res)
	// Output: map(range, seq(square), sum) = 385
}

// Pipelines change types between stages.
func ExamplePipe() {
	stretch := skandium.NewExec("stretch", func(n int) (string, error) {
		out := ""
		for i := 0; i < n; i++ {
			out += "ab"
		}
		return out, nil
	})
	length := skandium.NewExec("length", func(s string) (int, error) { return len(s), nil })
	program := skandium.Pipe(skandium.Seq(stretch), skandium.Seq(length))
	stream := skandium.NewStream[int, int](program)
	defer stream.Close()
	res, _ := stream.Do(3)
	fmt.Println(res)
	// Output: 6
}

// While iterates a body as long as the condition holds.
func ExampleWhile() {
	below := skandium.NewCond("below1000", func(n int) (bool, error) { return n < 1000, nil })
	triple := skandium.NewExec("triple", func(n int) (int, error) { return 3 * n, nil })
	stream := skandium.NewStream[int, int](skandium.While(below, skandium.Seq(triple)))
	defer stream.Close()
	res, _ := stream.Do(1)
	fmt.Println(res)
	// Output: 2187
}

// Divide & conquer recurses while the condition holds and merges upward.
func ExampleDaC() {
	big := skandium.NewCond("big", func(s []int) (bool, error) { return len(s) > 2, nil })
	halve := skandium.NewSplit("halve", func(s []int) ([][]int, error) {
		mid := len(s) / 2
		return [][]int{s[:mid:mid], s[mid:]}, nil
	})
	sumLeaf := skandium.NewExec("sumLeaf", func(s []int) (int, error) {
		t := 0
		for _, v := range s {
			t += v
		}
		return t, nil
	})
	add := skandium.NewMerge("add", func(ps []int) (int, error) {
		t := 0
		for _, v := range ps {
			t += v
		}
		return t, nil
	})
	program := skandium.DaC(big, halve, skandium.Seq(sumLeaf), add)
	stream := skandium.NewStream[[]int, int](program, skandium.WithLP(2))
	defer stream.Close()
	res, _ := stream.Do([]int{1, 2, 3, 4, 5, 6, 7, 8})
	fmt.Println(res)
	// Output: 36
}

// Listeners observe every event without touching business code (the
// paper's separation of concerns).
func ExampleStream_listener() {
	inc := skandium.NewExec("inc", func(n int) (int, error) { return n + 1, nil })
	events := 0
	stream := skandium.NewStream[int, int](skandium.Seq(inc),
		skandium.WithListener(skandium.ListenerFunc(func(e *skandium.Event) any {
			events++
			return e.Param
		})))
	defer stream.Close()
	res, _ := stream.Do(41)
	fmt.Println(res, events)
	// Output: 42 2
}

// An autonomic stream adapts its level of parallelism toward a WCT goal.
func ExampleStream_autonomic() {
	fs := skandium.NewSplit("fs", func(n int) ([]int, error) {
		out := make([]int, 4)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	work := skandium.NewExec("work", func(n int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return 1, nil
	})
	fm := skandium.NewMerge("fm", func(ps []int) (int, error) {
		t := 0
		for _, p := range ps {
			t += p
		}
		return t, nil
	})
	inner := skandium.Map(fs, skandium.Seq(work), fm)
	program := skandium.Map(fs, inner, fm)
	stream := skandium.NewStream[int, int](program,
		skandium.WithLP(1),
		skandium.WithMaxLP(8),
		skandium.WithWCTGoal(20*time.Millisecond))
	defer stream.Close()
	ex := stream.Input(0)
	res, _ := ex.Get()
	fmt.Println(res, len(ex.Decisions()) > 0)
	// Output: 16 true
}
