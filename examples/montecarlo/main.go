// Montecarlo estimates π by map-parallel sampling under a wall-clock-time
// QoS: the autonomic controller raises the level of parallelism only as far
// as needed to meet the goal, and the gauge hook records the active-worker
// timeline (the same series as the paper's Figs. 5-7).
//
//	go run ./examples/montecarlo -samples 8000000 -goal 150ms
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"
	"time"

	"skandium"
)

type batch struct {
	Seed int64
	N    int
}

func main() {
	samples := flag.Int("samples", 8_000_000, "total samples")
	batches := flag.Int("batches", 32, "number of parallel batches")
	goal := flag.Duration("goal", 150*time.Millisecond, "WCT QoS goal")
	maxLP := flag.Int("maxlp", 8, "maximum level of parallelism")
	flag.Parse()

	split := skandium.NewSplit("batches", func(total int) ([]batch, error) {
		out := make([]batch, *batches)
		for i := range out {
			out[i] = batch{Seed: int64(i + 1), N: total / *batches}
		}
		return out, nil
	})
	sample := skandium.NewExec("sample", func(b batch) (int, error) {
		rng := rand.New(rand.NewSource(b.Seed))
		hits := 0
		for i := 0; i < b.N; i++ {
			x, y := rng.Float64(), rng.Float64()
			if x*x+y*y <= 1 {
				hits++
			}
		}
		return hits, nil
	})
	fold := skandium.NewMerge("fold", func(hits []int) (int, error) {
		total := 0
		for _, h := range hits {
			total += h
		}
		return total, nil
	})
	program := skandium.Map(split, skandium.Seq(sample), fold)
	fmt.Println("program:", program)

	// Record the active-worker/LP timeline through the gauge hook.
	type sampleT struct {
		t          time.Duration
		active, lp int
	}
	var mu sync.Mutex
	var series []sampleT
	start := time.Now()
	stream := skandium.NewStream[int, int](program,
		skandium.WithLP(1),
		skandium.WithMaxLP(*maxLP),
		skandium.WithWCTGoal(*goal),
		skandium.WithGauge(func(now time.Time, active, lp int) {
			mu.Lock()
			series = append(series, sampleT{now.Sub(start), active, lp})
			mu.Unlock()
		}),
	)
	defer stream.Close()

	ex := stream.Input(*samples)
	hits, err := ex.Get()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	n := (*samples / *batches) * *batches
	pi := 4 * float64(hits) / float64(n)
	fmt.Printf("π ≈ %.6f (error %.6f) from %d samples in %v\n",
		pi, math.Abs(pi-math.Pi), n, elapsed)

	for _, d := range ex.Decisions() {
		fmt.Printf("decision t=%-12v LP %2d -> %2d (%s)\n",
			d.Time.Sub(start).Round(time.Millisecond), d.OldLP, d.NewLP, d.Reason)
	}
	mu.Lock()
	peak := 0
	for _, s := range series {
		if s.active > peak {
			peak = s.active
		}
	}
	mu.Unlock()
	fmt.Printf("peak active workers: %d (max LP %d)\n", peak, *maxLP)
}
