// Stream demonstrates task replication with farm over a stream of inputs:
// many independent jobs share one worker pool and one estimator history, so
// knowledge learned from early jobs ("the best predictor of the future
// behaviour is past behaviour") is already available when later jobs start.
//
//	go run ./examples/stream -jobs 12 -lp 3
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"skandium"
)

type job struct {
	ID     int
	Rounds int
}

func main() {
	jobs := flag.Int("jobs", 12, "jobs to stream")
	lp := flag.Int("lp", 3, "level of parallelism")
	flag.Parse()

	// farm(pipe(prepare, crunch)): the farm replicates the pipeline across
	// the stream's inputs.
	prepare := skandium.NewExec("prepare", func(j job) (job, error) {
		time.Sleep(time.Duration(500+rand.Intn(500)) * time.Microsecond)
		return j, nil
	})
	crunch := skandium.NewExec("crunch", func(j job) (string, error) {
		h := uint64(14695981039346656037)
		for r := 0; r < j.Rounds; r++ {
			h = (h ^ uint64(j.ID+r)) * 1099511628211
		}
		return fmt.Sprintf("job %02d -> %x", j.ID, h), nil
	})
	program := skandium.Farm(skandium.Pipe(skandium.Seq(prepare), skandium.Seq(crunch)))
	fmt.Println("program:", program)

	stream := skandium.NewStream[job, string](program, skandium.WithLP(*lp))
	defer stream.Close()

	start := time.Now()
	futs := make([]*skandium.Execution[string], *jobs)
	for i := range futs {
		futs[i] = stream.Input(job{ID: i, Rounds: 1 << 18})
	}
	for _, f := range futs {
		line, err := f.Get()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(line)
	}
	fmt.Printf("%d jobs with LP=%d in %v\n", *jobs, *lp, time.Since(start).Round(time.Millisecond))

	// The estimator accumulated history across every job of the stream.
	prof := stream.Profile()
	if d, ok := stream.Estimates().Duration(prepare.Muscle().ID()); ok {
		fmt.Printf("learned t(prepare) ≈ %v across the stream (%d muscles profiled)\n",
			d.Round(10*time.Microsecond), len(prof))
	}
}
