// Mergesort demonstrates the divide & conquer skeleton: sort a large slice
// by recursively halving it in parallel and merging sorted runs, with the
// event layer reporting the recursion live.
//
//	go run ./examples/mergesort -n 2000000 -lp 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"skandium"
)

func main() {
	n := flag.Int("n", 2_000_000, "elements to sort")
	lp := flag.Int("lp", 4, "level of parallelism")
	leaf := flag.Int("leaf", 64_000, "leaf size sorted sequentially")
	flag.Parse()

	deep := skandium.NewCond("deep", func(s []int) (bool, error) {
		return len(s) > *leaf, nil
	})
	halve := skandium.NewSplit("halve", func(s []int) ([][]int, error) {
		mid := len(s) / 2
		return [][]int{s[:mid:mid], s[mid:]}, nil
	})
	sortLeaf := skandium.NewExec("sortLeaf", func(s []int) ([]int, error) {
		out := append([]int(nil), s...)
		sort.Ints(out)
		return out, nil
	})
	mergeRuns := skandium.NewMerge("mergeRuns", func(runs [][]int) ([]int, error) {
		a, b := runs[0], runs[1]
		out := make([]int, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		return append(out, b[j:]...), nil
	})

	program := skandium.DaC(deep, halve, skandium.Seq(sortLeaf), mergeRuns)
	fmt.Println("program:", program)

	// Count leaf sorts and maximum recursion depth through events.
	var leaves, maxDepth atomic.Int64
	stream := skandium.NewStream[[]int, []int](program,
		skandium.WithLP(*lp),
		skandium.WithListener(skandium.ListenerFunc(func(e *skandium.Event) any {
			if e.When == skandium.After && e.Where == skandium.AtCondition {
				if d := int64(e.Iter); d > maxDepth.Load() {
					maxDepth.Store(d)
				}
				if !e.Cond {
					leaves.Add(1)
				}
			}
			return e.Param
		})),
	)
	defer stream.Close()

	rng := rand.New(rand.NewSource(1))
	data := make([]int, *n)
	for i := range data {
		data[i] = rng.Int()
	}

	start := time.Now()
	sorted, err := stream.Do(data)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if !sort.IntsAreSorted(sorted) || len(sorted) != *n {
		log.Fatal("result is not a sorted permutation")
	}
	fmt.Printf("sorted %d ints in %v with LP=%d\n", *n, elapsed, *lp)
	fmt.Printf("recursion: %d leaf sorts, max depth %d\n", leaves.Load(), maxDepth.Load())
}
