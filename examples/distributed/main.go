// Distributed demonstrates the paper's §6 outlook: the same autonomic
// controller scaling a (simulated) cluster instead of a thread pool. A
// centralized coordinator ships skeleton tasks to worker nodes over links
// with configurable latency; when the WCT goal would be missed, the
// controller provisions more nodes mid-run, and decommissions them when the
// goal is safe.
//
//	go run ./examples/distributed -goal 80ms -maxnodes 8 -ship 200us
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"skandium/internal/core"
	"skandium/internal/dist"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

func main() {
	goal := flag.Duration("goal", 80*time.Millisecond, "WCT QoS goal")
	maxNodes := flag.Int("maxnodes", 8, "maximum cluster size")
	ship := flag.Duration("ship", 200*time.Microsecond, "one-way task shipping latency")
	work := flag.Duration("work", 6*time.Millisecond, "per-item compute time")
	flag.Parse()

	// The paper's two-level map shape with shared muscles.
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		out := make([]any, 4)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) {
		time.Sleep(*work)
		return 1, nil
	})
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	program := skel.NewMap(fs, inner, fm)
	fmt.Println("program:", program)
	fmt.Printf("cluster: 1 node initially, up to %d, ship latency %v each way\n", *maxNodes, *ship)

	cluster := dist.New(dist.Config{Nodes: 1, MaxNodes: *maxNodes, ShipLatency: *ship})
	defer cluster.Close()

	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	ctl := core.NewController(core.Config{
		WCTGoal:          *goal,
		MaxLP:            *maxNodes,
		Increase:         core.IncreaseMinimal,
		AnalysisInterval: 10 * time.Millisecond,
		DecreaseHold:     15 * time.Millisecond,
	}, program, cluster, est, tracker, nil)
	core.Attach(reg, tracker, ctl)

	start := time.Now()
	res, err := cluster.NewExecution(reg).Start(program, 0).Get()
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result %v in %v (goal %v, 16 work items × %v sequential ≈ %v)\n",
		res, elapsed.Round(time.Millisecond), *goal, *work, 16**work)
	for _, d := range ctl.Decisions() {
		fmt.Printf("  t=%-10v nodes %d -> %d  (%s)\n",
			d.Time.Sub(start).Round(time.Millisecond), d.OldLP, d.NewLP, d.Reason)
	}
	fmt.Println("per-node accounting:")
	for _, st := range cluster.Stats() {
		fmt.Printf("  node %d: %3d tasks, busy %v\n", st.Node, st.Tasks, st.BusyTime.Round(time.Millisecond))
	}
}
