// Pipeline demonstrates staged computation with a farm stage and the
// paper's Listing 2: a generic event listener implementing a logger as a
// non-functional concern, without touching the business muscles.
//
// The pipeline parses raw log lines, enriches them inside a farm (the farm
// replicates across the stream's inputs), and formats a report.
//
//	go run ./examples/pipeline -lines 6
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"skandium"
)

// record is the value flowing through the pipeline.
type record struct {
	Raw      string
	Level    string
	Msg      string
	Severity int
}

func main() {
	lines := flag.Int("lines", 6, "log lines to process")
	verbose := flag.Bool("v", false, "log every skeleton event (paper Listing 2)")
	flag.Parse()

	parse := skandium.NewExec("parse", func(raw string) (record, error) {
		level, msg, ok := strings.Cut(raw, ": ")
		if !ok {
			return record{}, fmt.Errorf("malformed line %q", raw)
		}
		return record{Raw: raw, Level: level, Msg: msg}, nil
	})
	enrich := skandium.NewExec("enrich", func(r record) (record, error) {
		switch r.Level {
		case "ERROR":
			r.Severity = 3
		case "WARN":
			r.Severity = 2
		default:
			r.Severity = 1
		}
		return r, nil
	})
	format := skandium.NewExec("format", func(r record) (string, error) {
		return fmt.Sprintf("[sev=%d] %-5s %s", r.Severity, r.Level, r.Msg), nil
	})

	// pipe(parse, farm(enrich), format)
	program := skandium.Pipe3(
		skandium.Seq(parse),
		skandium.Farm(skandium.Seq(enrich)),
		skandium.Seq(format),
	)
	fmt.Println("program:", program)

	opts := []skandium.Option{skandium.WithLP(3)}
	if *verbose {
		// The paper's Listing 2: a generic listener logging every event
		// with its trace, when/where position and activation index.
		opts = append(opts, skandium.WithListener(skandium.ListenerFunc(func(e *skandium.Event) any {
			cur := e.Trace[len(e.Trace)-1]
			log.Printf("CURRSKEL: %v | WHEN/WHERE: %v/%v | INDEX: %d | PARTIAL SOL: %v",
				cur.Kind(), e.When, e.Where, e.Index, e.Param)
			return e.Param
		})))
	}
	stream := skandium.NewStream[string, string](program, opts...)
	defer stream.Close()

	levels := []string{"INFO", "WARN", "ERROR"}
	futures := make([]*skandium.Execution[string], 0, *lines)
	for i := 0; i < *lines; i++ {
		raw := fmt.Sprintf("%s: event %d happened", levels[i%len(levels)], i)
		futures = append(futures, stream.Input(raw))
	}
	for _, ex := range futures {
		out, err := ex.Get()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
