// Quickstart: a map skeleton squaring numbers in parallel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skandium"
)

func main() {
	// Muscles: split a range into work items, square each, sum the squares.
	split := skandium.NewSplit("range", func(n int) ([]int, error) {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	})
	square := skandium.NewExec("square", func(x int) (int, error) {
		return x * x, nil
	})
	sum := skandium.NewMerge("sum", func(parts []int) (int, error) {
		total := 0
		for _, p := range parts {
			total += p
		}
		return total, nil
	})

	// The program: map(range, seq(square), sum).
	program := skandium.Map(split, skandium.Seq(square), sum)
	fmt.Println("program:", program)

	stream := skandium.NewStream[int, int](program, skandium.WithLP(4))
	defer stream.Close()

	// Inject inputs; each returns an asynchronous execution handle.
	futures := make([]*skandium.Execution[int], 0, 5)
	for n := 1; n <= 5; n++ {
		futures = append(futures, stream.Input(n*10))
	}
	for i, ex := range futures {
		res, err := ex.Get()
		if err != nil {
			log.Fatal(err)
		}
		n := (i + 1) * 10
		fmt.Printf("sum of squares 1..%d = %d\n", n, res)
	}
}
