// Wordcount is the paper's §5 evaluation workload on the real goroutine
// engine: a hashtag and commented-user count over a (synthetic) tweet
// corpus, structured as two nested map skeletons sharing their muscles,
// executed under a wall-clock-time QoS goal so the autonomic controller
// adapts the number of workers mid-run.
//
//	go run ./examples/wordcount -tweets 40000 -goal 300ms -maxlp 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"skandium"
	"skandium/internal/workload"
)

func main() {
	tweets := flag.Int("tweets", 40000, "corpus size")
	goal := flag.Duration("goal", 300*time.Millisecond, "WCT QoS goal (0 disables autonomics)")
	maxLP := flag.Int("maxlp", 8, "maximum level of parallelism (LP QoS)")
	k := flag.Int("k", 5, "first-level split cardinality")
	m := flag.Int("m", 7, "second-level split cardinality")
	file := flag.String("file", "", "corpus file; when set the corpus is written there and re-read from disk, making the first split I/O-bound like the paper's")
	flag.Parse()

	corpus := workload.Generate(workload.GenConfig{Tweets: *tweets, Seed: 20130725})
	if *file != "" {
		// Round-trip through the filesystem: the paper's first split spent
		// 6.4 of 12.5 s streaming the input file, which is why no degree of
		// parallelism helped before it finished.
		if err := workload.SaveCorpus(*file, corpus); err != nil {
			log.Fatal(err)
		}
		loaded, err := workload.LoadCorpus(*file)
		if err != nil {
			log.Fatal(err)
		}
		corpus = loaded
		fmt.Printf("corpus written to and re-read from %s\n", *file)
	}
	total := len(corpus.Tweets)

	// Shared muscles, as in the paper's Listing 1: the same fs and fm serve
	// both map levels, so their estimates are learned from the very first
	// inner merge on.
	fs := skandium.NewSplit("fs", func(c workload.Chunk) ([]workload.Chunk, error) {
		parts := *k
		if c.Len() < total {
			parts = *m
		}
		return workload.SplitChunk(c, parts), nil
	})
	fe := skandium.NewExec("fe", func(c workload.Chunk) (workload.Counts, error) {
		return workload.CountChunk(c), nil
	})
	fm := skandium.NewMerge("fm", func(parts []workload.Counts) (workload.Counts, error) {
		return workload.MergeCounts(parts), nil
	})

	inner := skandium.Map(fs, skandium.Seq(fe), fm)
	program := skandium.Map(fs, inner, fm)
	fmt.Println("program:", program)

	stream := skandium.NewStream[workload.Chunk, workload.Counts](program,
		skandium.WithLP(1),
		skandium.WithMaxLP(*maxLP),
		skandium.WithWCTGoal(*goal),
		skandium.WithAnalysisInterval(5*time.Millisecond),
	)
	defer stream.Close()

	start := time.Now()
	ex := stream.Input(workload.Chunk{Corpus: corpus, Lo: 0, Hi: total})
	counts, err := ex.Get()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("counted %d distinct tags (%d occurrences) in %v\n",
		len(counts), counts.Total(), elapsed)
	fmt.Println("top tags:")
	for _, tag := range counts.Top(10) {
		fmt.Printf("  %-16s %6d\n", tag, counts[tag])
	}
	if ds := ex.Decisions(); len(ds) > 0 {
		fmt.Println("autonomic decisions:")
		for _, d := range ds {
			fmt.Printf("  t=%-14v LP %2d -> %2d  (%s)\n",
				d.Time.Sub(start).Round(time.Millisecond), d.OldLP, d.NewLP, d.Reason)
		}
	} else {
		fmt.Println("no autonomic adaptation was needed")
	}
}
