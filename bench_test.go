// Benchmarks regenerating the paper's evaluation (one per figure, plus the
// ablations called out in DESIGN.md §5) and micro-benchmarks of the
// engine's hot paths. Figure benches run on the deterministic simulator —
// their custom metrics (makespan_s, peakLP, firstAdapt_s) are the numbers
// EXPERIMENTS.md compares against the paper; ns/op for those is just
// harness cost.
//
//	go test -bench=. -benchmem
package skandium

import (
	"testing"
	"time"

	"skandium/internal/adg"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/paperexp"
	"skandium/internal/sim"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// --- Fig. 1 / Fig. 2: the ADG worked example -----------------------------------

type fig1 struct {
	outer, inner *skel.Node
	est          *estimate.Registry
	tr           *statemachine.Tracker
}

func newFig1() *fig1 {
	fs := muscle.NewSplit("fs", func(any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func([]any) (any, error) { return nil, nil })
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	outer := skel.NewMap(fs, inner, fm)
	est := estimate.NewRegistry(nil)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	est.InitDuration(fs.ID(), ms(10))
	est.InitDuration(fe.ID(), ms(15))
	est.InitDuration(fm.ID(), ms(5))
	est.InitCard(fs.ID(), 3)
	f := &fig1{outer: outer, inner: inner, est: est, tr: statemachine.NewTracker(est)}
	f.replay()
	return f
}

// replay feeds the paper's exact history at WCT 70 (LP=2 execution).
func (f *fig1) replay() {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	emit := func(nd *skel.Node, idx, parent int64, when event.When, where event.Where, at, worker, card int) {
		f.tr.Listener().Handler(&event.Event{
			Node: nd, Trace: []*skel.Node{nd}, Index: idx, Parent: parent,
			When: when, Where: where, Time: clock.Epoch.Add(ms(at)), Worker: worker, Card: card,
		})
	}
	emit(f.outer, 0, event.NoParent, event.Before, event.Skeleton, 0, 0, 0)
	emit(f.outer, 0, event.NoParent, event.Before, event.Split, 0, 0, 0)
	emit(f.outer, 0, event.NoParent, event.After, event.Split, 10, 0, 3)
	for b, idx := range []int64{1, 2} {
		emit(f.inner, idx, 0, event.Before, event.Skeleton, 10, b, 0)
		emit(f.inner, idx, 0, event.Before, event.Split, 10, b, 0)
		emit(f.inner, idx, 0, event.After, event.Split, 20, b, 3)
	}
	seq := f.inner.Children()[0]
	idx := int64(3)
	for round := 0; round < 3; round++ {
		for b, parent := range []int64{1, 2} {
			start := 20 + 15*round
			emit(seq, idx, parent, event.Before, event.Skeleton, start, b, 0)
			emit(seq, idx, parent, event.After, event.Skeleton, start+15, b, 0)
			idx++
		}
	}
	emit(f.inner, 1, 0, event.Before, event.Merge, 65, 0, 0)
	emit(f.inner, 1, 0, event.After, event.Merge, 70, 0, 0)
	emit(f.inner, 1, 0, event.After, event.Skeleton, 70, 0, 0)
	emit(f.inner, 9, 0, event.Before, event.Skeleton, 65, 1, 0)
	emit(f.inner, 9, 0, event.Before, event.Split, 65, 1, 0)
}

// BenchmarkFig1ADG builds the live ADG of the paper's Fig. 1 snapshot and
// evaluates both strategies, asserting the paper's numbers (best-effort WCT
// 100, limited-LP(2) WCT 115).
func BenchmarkFig1ADG(b *testing.B) {
	f := newFig1()
	builder := adg.Builder{Est: f.est}
	now := clock.Epoch.Add(70 * time.Millisecond)
	var best, limited time.Duration
	for i := 0; i < b.N; i++ {
		g, err := builder.BuildLive(f.tr.Root(), clock.Epoch, now)
		if err != nil {
			b.Fatal(err)
		}
		g.ScheduleBestEffort()
		best = g.WCT()
		g.ScheduleLimited(2)
		limited = g.WCT()
	}
	if best != 100*time.Millisecond || limited != 115*time.Millisecond {
		b.Fatalf("fig1 mismatch: best=%v limited=%v", best, limited)
	}
	b.ReportMetric(best.Seconds()*1000, "bestEffortWCT_ms")
	b.ReportMetric(limited.Seconds()*1000, "limitedLP2WCT_ms")
}

// BenchmarkFig2Timeline computes the Fig. 2 timeline and the optimal LP
// (paper: 3, peaking during [75,90)).
func BenchmarkFig2Timeline(b *testing.B) {
	f := newFig1()
	builder := adg.Builder{Est: f.est}
	now := clock.Epoch.Add(70 * time.Millisecond)
	g, err := builder.BuildLive(f.tr.Root(), clock.Epoch, now)
	if err != nil {
		b.Fatal(err)
	}
	opt := 0
	for i := 0; i < b.N; i++ {
		opt = g.OptimalLP()
	}
	if opt != 3 {
		b.Fatalf("optimal LP = %d, want 3", opt)
	}
	b.ReportMetric(float64(opt), "optimalLP")
}

// --- Figs. 5-7: the evaluation scenarios ----------------------------------------

func benchScenario(b *testing.B, spec paperexp.Spec, minS, maxS float64) {
	var r *paperexp.Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = paperexp.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	got := r.Makespan.Seconds()
	if got < minS || got > maxS {
		b.Fatalf("makespan %.3fs outside expected [%.2f, %.2f]", got, minS, maxS)
	}
	b.ReportMetric(got, "makespan_s")
	b.ReportMetric(r.FirstAdapt.Seconds(), "firstAdapt_s")
	b.ReportMetric(float64(r.PeakLP), "peakLP")
	b.ReportMetric(float64(r.PeakActive), "peakActive")
	b.ReportMetric(float64(len(r.Decisions)), "decisions")
}

// BenchmarkSeqBaseline is the paper's stated sequential work: 12.5 s (we
// measure 12.61 s on the calibrated profile).
func BenchmarkSeqBaseline(b *testing.B) {
	var r *paperexp.Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = paperexp.RunFixedLP(paperexp.Spec{}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
}

// BenchmarkFig5GoalNoInit: paper finish 9.3 s within [8.63, 9.54].
func BenchmarkFig5GoalNoInit(b *testing.B) {
	benchScenario(b, paperexp.Scenario1(), 8.6, 9.55)
}

// BenchmarkFig6GoalWithInit: paper adapts at 6.4 s and finishes at 8.4 s,
// earlier than Fig. 5.
func BenchmarkFig6GoalWithInit(b *testing.B) {
	benchScenario(b, paperexp.Scenario2(), 7.0, 9.5)
}

// BenchmarkFig7RelaxedGoal: paper peak LP 10 (< Fig. 5's 17), finish 10.6 s.
func BenchmarkFig7RelaxedGoal(b *testing.B) {
	benchScenario(b, paperexp.Scenario3(), 9.0, 10.5)
}

// BenchmarkDaCScenario is the second benchmark (paper §6: "more experiments
// are conducted on other benchmarks"): an autonomic divide-and-conquer
// mergesort whose structure the ADG must predict from |fc|/|fs| estimates.
// Sequential work 1.536 s; the 400 ms goal forces mid-run scaling.
func BenchmarkDaCScenario(b *testing.B) {
	var r *paperexp.DaCResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = paperexp.RunDaC(paperexp.DaCSpec{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !r.Sorted {
		b.Fatal("not sorted")
	}
	b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
	b.ReportMetric(r.FirstAdapt.Seconds(), "firstAdapt_s")
	b.ReportMetric(float64(r.PeakLP), "peakLP")
}

// BenchmarkFarmThroughput sweeps LP over a simulated farm stream (32 jobs
// of 10 virtual ms): the classic skeleton throughput curve. makespan_ms
// must halve with each LP doubling until saturation.
func BenchmarkFarmThroughput(b *testing.B) {
	fe := muscle.NewExecute("job", func(p any) (any, error) { return p, nil })
	nd := skel.NewFarm(skel.NewSeq(fe))
	costs := simCostTable{fe.ID(): 10 * time.Millisecond}
	for _, lp := range []int{1, 2, 4, 8, 16} {
		b.Run(fmtInt("lp", lp), func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(sim.Config{Costs: costs, LP: lp})
				injs := make([]sim.Injection, 32)
				for j := range injs {
					injs[j] = sim.Injection{Param: j}
				}
				start := eng.Now()
				rs, err := eng.RunStream(nd, injs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rs {
					if r.End.Sub(start) > makespan {
						makespan = r.End.Sub(start)
					}
				}
			}
			b.ReportMetric(float64(makespan)/float64(time.Millisecond), "makespan_ms")
			b.ReportMetric(32.0/makespan.Seconds(), "jobs_per_s_virtual")
		})
	}
}

// simCostTable prices muscles by identity for benches.
type simCostTable map[muscle.ID]time.Duration

func (ct simCostTable) Cost(m *muscle.Muscle, _ any) time.Duration { return ct[m.ID()] }

// BenchmarkDaCBaseline is its fixed-LP(1) reference (1.536 s).
func BenchmarkDaCBaseline(b *testing.B) {
	var r *paperexp.DaCResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = paperexp.RunDaC(paperexp.DaCSpec{Goal: -1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------------

// BenchmarkAblationRho sweeps the estimator weight ρ under 15% duration
// noise: low ρ follows the stable tendency, high ρ chases the last sample
// (paper §4's discussion).
func BenchmarkAblationRho(b *testing.B) {
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		b.Run(fmtFloat("rho", rho), func(b *testing.B) {
			spec := paperexp.Scenario1()
			spec.Rho = rho
			spec.Jitter = 0.15
			var r *paperexp.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = paperexp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
			b.ReportMetric(float64(len(r.Decisions)), "decisions")
			b.ReportMetric(float64(r.PeakLP), "peakLP")
		})
	}
}

// BenchmarkAblationDecrease compares the paper's halving decrease against
// never decreasing and exact-minimum decrease.
func BenchmarkAblationDecrease(b *testing.B) {
	for _, tc := range []struct {
		name string
		pol  core.DecreasePolicy
	}{{"halve", core.DecreaseHalve}, {"none", core.DecreaseNone}, {"exact", core.DecreaseExact}} {
		b.Run(tc.name, func(b *testing.B) {
			spec := paperexp.Scenario1()
			spec.Decrease = tc.pol
			var r *paperexp.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = paperexp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
			b.ReportMetric(float64(r.PeakLP), "peakLP")
			b.ReportMetric(lpTimeIntegral(r), "lpSeconds") // resource cost
		})
	}
}

// BenchmarkAblationIncrease compares jump-to-optimal (paper §4) against
// minimal-sufficient increase.
func BenchmarkAblationIncrease(b *testing.B) {
	for _, tc := range []struct {
		name string
		pol  core.IncreasePolicy
	}{{"optimal", core.IncreaseOptimal}, {"minimal", core.IncreaseMinimal}} {
		b.Run(tc.name, func(b *testing.B) {
			spec := paperexp.Scenario1()
			spec.Increase = tc.pol
			var r *paperexp.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = paperexp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
			b.ReportMetric(float64(r.PeakLP), "peakLP")
			b.ReportMetric(lpTimeIntegral(r), "lpSeconds")
		})
	}
}

// BenchmarkAblationMuscleSharing is the negative ablation behind the
// paper's Listing 1: cloned per-level muscles leave the completeness gate
// shut until the run ends (no adaptation, sequential finish), while shared
// muscles enable the 7.6 s analysis.
func BenchmarkAblationMuscleSharing(b *testing.B) {
	for _, tc := range []struct {
		name     string
		separate bool
	}{{"shared", false}, {"separate", true}} {
		b.Run(tc.name, func(b *testing.B) {
			spec := paperexp.Scenario1()
			spec.SeparateMuscles = tc.separate
			var r *paperexp.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = paperexp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
			b.ReportMetric(float64(len(r.Decisions)), "decisions")
		})
	}
}

// BenchmarkAblationPredictor compares the paper's ADG estimation against
// the cheap analytic work/span model (the paper's §6 "different WCT
// estimation algorithms comparing its overhead costs"): same scenario, the
// metrics show prediction-quality differences (goal adherence, peak LP)
// while ns/op shows the end-to-end cost difference.
func BenchmarkAblationPredictor(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    core.Predictor
	}{{"adg", core.ADGPredictor{}}, {"workspan", core.WorkSpanPredictor{}}} {
		b.Run(tc.name, func(b *testing.B) {
			spec := paperexp.Scenario1()
			spec.Predictor = tc.p
			var r *paperexp.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = paperexp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
			b.ReportMetric(float64(r.PeakLP), "peakLP")
			missed := 0.0
			if r.Makespan > spec.Goal {
				missed = 1
			}
			b.ReportMetric(missed, "goalMissed")
		})
	}
}

// BenchmarkPredictorCost isolates the per-analysis cost of each predictor
// on the Fig. 1 snapshot.
func BenchmarkPredictorCost(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    core.Predictor
	}{{"adg", core.ADGPredictor{}}, {"workspan", core.WorkSpanPredictor{}}} {
		b.Run(tc.name, func(b *testing.B) {
			f := newFig1()
			in := core.PredictorInput{
				Node:    f.outer,
				Tracker: f.tr,
				Est:     f.est,
				Start:   clock.Epoch,
				Now:     clock.Epoch.Add(70 * time.Millisecond),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pred, err := tc.p.Predict(in)
				if err != nil {
					b.Fatal(err)
				}
				pred.LimitedEnd(2)
			}
		})
	}
}

// BenchmarkAnalysisOverhead sweeps the analysis throttle: more frequent
// analyses react faster but cost controller time (paper §6 lists analyzing
// estimation overhead as future work).
func BenchmarkAnalysisOverhead(b *testing.B) {
	for _, iv := range []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond, time.Second} {
		b.Run(iv.String(), func(b *testing.B) {
			spec := paperexp.Scenario1()
			spec.AnalysisInterval = iv
			var r *paperexp.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = paperexp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Analyses), "analyses")
			b.ReportMetric(r.Makespan.Seconds(), "makespan_s")
		})
	}
}

// lpTimeIntegral approximates ∫ LP dt in LP-seconds — the resource the
// decrease policy is supposed to save.
func lpTimeIntegral(r *paperexp.Result) float64 {
	samples := r.Recorder.Samples()
	total := 0.0
	for i := 1; i < len(samples); i++ {
		dt := samples[i].T.Sub(samples[i-1].T).Seconds()
		total += float64(samples[i-1].LP) * dt
	}
	return total
}

// --- engine micro-benchmarks ------------------------------------------------------

// BenchmarkEventOverhead measures the real engine's per-input cost of the
// event layer: no listeners vs a generic listener vs a filtered-out
// listener (ablation C).
func BenchmarkEventOverhead(b *testing.B) {
	mkStream := func(opts ...Option) *Stream[int, int] {
		id := NewExec("id", func(n int) (int, error) { return n, nil })
		fs := NewSplit("fs", func(n int) ([]int, error) {
			out := make([]int, 8)
			for i := range out {
				out[i] = i
			}
			return out, nil
		})
		fm := NewMerge("fm", func(ps []int) (int, error) { return len(ps), nil })
		return NewStream[int, int](Map(fs, Seq(id), fm), append(opts, WithLP(2))...)
	}
	b.Run("no-listener", func(b *testing.B) {
		st := mkStream()
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Do(8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic-listener", func(b *testing.B) {
		st := mkStream(WithListener(ListenerFunc(func(e *Event) any { return e.Param })))
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Do(8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filtered-listener", func(b *testing.B) {
		st := mkStream(WithListener(ListenerFunc(func(e *Event) any { return e.Param }),
			Filter{Where: AtMerge, HasWhere: true}))
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Do(8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineFanout measures raw task fan-out throughput of the pool
// (tasks created, scheduled and merged per op).
func BenchmarkEngineFanout(b *testing.B) {
	for _, width := range []int{1, 16, 256} {
		b.Run(fmtInt("width", width), func(b *testing.B) {
			fs := NewSplit("fs", func(n int) ([]int, error) {
				out := make([]int, n)
				for i := range out {
					out[i] = i
				}
				return out, nil
			})
			id := NewExec("id", func(n int) (int, error) { return n, nil })
			fm := NewMerge("fm", func(ps []int) (int, error) { return len(ps), nil })
			st := NewStream[int, int](Map(fs, Seq(id), fm), WithLP(4))
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, err := st.Do(width); err != nil || res != width {
					b.Fatalf("res=%v err=%v", res, err)
				}
			}
			b.ReportMetric(float64(width), "tasks/op")
		})
	}
}

// BenchmarkADGBuildSchedule measures analysis cost vs problem size: the
// controller runs this on the worker's critical path.
func BenchmarkADGBuildSchedule(b *testing.B) {
	for _, card := range []int{10, 100, 1000} {
		b.Run(fmtInt("card", card), func(b *testing.B) {
			fs := muscle.NewSplit("fs", func(any) ([]any, error) { return nil, nil })
			fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
			fm := muscle.NewMerge("fm", func([]any) (any, error) { return nil, nil })
			node := skel.NewMap(fs, skel.NewSeq(fe), fm)
			est := estimate.NewRegistry(nil)
			est.InitDuration(fs.ID(), time.Millisecond)
			est.InitDuration(fe.ID(), time.Millisecond)
			est.InitDuration(fm.ID(), time.Millisecond)
			est.InitCard(fs.ID(), float64(card))
			builder := adg.Builder{Est: est}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := builder.BuildVirtual(node, clock.Epoch)
				if err != nil {
					b.Fatal(err)
				}
				g.ScheduleBestEffort()
				g.ScheduleLimited(8)
			}
		})
	}
}

// BenchmarkEstimators compares the per-observation cost of the estimator
// variants (ablation of the paper's future-work "different WCT estimation
// algorithms comparing overhead costs").
func BenchmarkEstimators(b *testing.B) {
	factories := []struct {
		name string
		f    estimate.Factory
	}{
		{"ewma", estimate.EWMAFactory(0.5)},
		{"mean", estimate.MeanFactory},
		{"window8", estimate.WindowFactory(8)},
		{"median8", estimate.MedianFactory(8)},
		{"last", estimate.LastFactory},
	}
	for _, tc := range factories {
		b.Run(tc.name, func(b *testing.B) {
			e := tc.f()
			for i := 0; i < b.N; i++ {
				e.Observe(float64(i % 100))
				if _, ok := e.Value(); !ok {
					b.Fatal("no value")
				}
			}
		})
	}
}

// BenchmarkMultiNodeSim runs a 32-cell map on simulated clusters of equal
// total thread count but different shapes: one fat node with no link cost
// versus progressively thinner nodes paying 2×Link per shipped muscle. The
// makespan spread is the price of distribution the coordinator's arbiter
// has to weigh (DESIGN.md §11).
func BenchmarkMultiNodeSim(b *testing.B) {
	cases := []struct {
		name  string
		nodes []sim.NodeSpec
	}{
		{"1n8t-link0", []sim.NodeSpec{{Threads: 8}}},
		{"2n4t-link2ms", []sim.NodeSpec{
			{Threads: 4, Link: 2 * time.Millisecond},
			{Threads: 4, Link: 2 * time.Millisecond},
		}},
		{"4n2t-link2ms", []sim.NodeSpec{
			{Threads: 2, Link: 2 * time.Millisecond},
			{Threads: 2, Link: 2 * time.Millisecond},
			{Threads: 2, Link: 2 * time.Millisecond},
			{Threads: 2, Link: 2 * time.Millisecond},
		}},
		{"8n1t-link5ms", []sim.NodeSpec{
			{Threads: 1, Link: 5 * time.Millisecond}, {Threads: 1, Link: 5 * time.Millisecond},
			{Threads: 1, Link: 5 * time.Millisecond}, {Threads: 1, Link: 5 * time.Millisecond},
			{Threads: 1, Link: 5 * time.Millisecond}, {Threads: 1, Link: 5 * time.Millisecond},
			{Threads: 1, Link: 5 * time.Millisecond}, {Threads: 1, Link: 5 * time.Millisecond},
		}},
	}
	fs := muscle.NewSplit("cells", func(p any) ([]any, error) {
		out := make([]any, p.(int))
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("cell", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("gather", func(ps []any) (any, error) { return len(ps), nil })
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)
	costs := simCostTable{fs.ID(): 2 * time.Millisecond, fe.ID(): 20 * time.Millisecond, fm.ID(): 2 * time.Millisecond}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(sim.Config{Costs: costs, Nodes: tc.nodes, LP: len(tc.nodes)})
				res, ms, err := eng.Run(nd, 32)
				if err != nil {
					b.Fatal(err)
				}
				if res != 32 {
					b.Fatalf("result %v, want 32", res)
				}
				makespan = ms
			}
			b.ReportMetric(float64(makespan)/float64(time.Millisecond), "makespan_ms")
		})
	}
}

// BenchmarkSimThroughput measures virtual events processed per second by
// the discrete-event substrate.
func BenchmarkSimThroughput(b *testing.B) {
	spec := paperexp.Scenario1()
	for i := 0; i < b.N; i++ {
		if _, err := paperexp.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func fmtInt(k string, v int) string { return k + "=" + itoa(v) }
func fmtFloat(k string, v float64) string {
	return k + "=" + itoa(int(v*100)) + "pct"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
