package skandium

import (
	"fmt"

	"skandium/internal/muscle"
)

// Exec is a typed handle to an Execution muscle fe: P → R. Handles carry
// identity: reusing one handle in several places of a program (or across
// programs on one Stream) shares its duration estimate t(m), exactly like
// reusing a muscle object in the paper's Listing 1.
type Exec[P, R any] struct{ m *muscle.Muscle }

// NewExec wraps a sequential function as an Execution muscle.
func NewExec[P, R any](name string, fn func(P) (R, error)) Exec[P, R] {
	if fn == nil {
		panic("skandium: NewExec with nil function")
	}
	m := muscle.NewExecute(name, func(p any) (any, error) {
		tp, err := cast[P](name, p)
		if err != nil {
			return nil, err
		}
		return fn(tp)
	})
	return Exec[P, R]{m: m}
}

// Muscle returns the underlying erased muscle (for estimator seeding and
// advanced uses).
func (e Exec[P, R]) Muscle() *muscle.Muscle { return e.m }

// Split is a typed handle to a Split muscle fs: P → []R.
type Split[P, R any] struct{ m *muscle.Muscle }

// NewSplit wraps a partitioning function as a Split muscle.
func NewSplit[P, R any](name string, fn func(P) ([]R, error)) Split[P, R] {
	if fn == nil {
		panic("skandium: NewSplit with nil function")
	}
	m := muscle.NewSplit(name, func(p any) ([]any, error) {
		tp, err := cast[P](name, p)
		if err != nil {
			return nil, err
		}
		parts, err := fn(tp)
		if err != nil {
			return nil, err
		}
		out := make([]any, len(parts))
		for i, x := range parts {
			out[i] = x
		}
		return out, nil
	})
	return Split[P, R]{m: m}
}

// Muscle returns the underlying erased muscle.
func (s Split[P, R]) Muscle() *muscle.Muscle { return s.m }

// Merge is a typed handle to a Merge muscle fm: []P → R.
type Merge[P, R any] struct{ m *muscle.Muscle }

// NewMerge wraps a folding function as a Merge muscle.
func NewMerge[P, R any](name string, fn func([]P) (R, error)) Merge[P, R] {
	if fn == nil {
		panic("skandium: NewMerge with nil function")
	}
	m := muscle.NewMerge(name, func(ps []any) (any, error) {
		ts := make([]P, len(ps))
		for i, p := range ps {
			tp, err := cast[P](name, p)
			if err != nil {
				return nil, err
			}
			ts[i] = tp
		}
		return fn(ts)
	})
	return Merge[P, R]{m: m}
}

// Muscle returns the underlying erased muscle.
func (m Merge[P, R]) Muscle() *muscle.Muscle { return m.m }

// Cond is a typed handle to a Condition muscle fc: P → bool.
type Cond[P any] struct{ m *muscle.Muscle }

// NewCond wraps a predicate as a Condition muscle.
func NewCond[P any](name string, fn func(P) (bool, error)) Cond[P] {
	if fn == nil {
		panic("skandium: NewCond with nil function")
	}
	m := muscle.NewCondition(name, func(p any) (bool, error) {
		tp, err := cast[P](name, p)
		if err != nil {
			return false, err
		}
		return fn(tp)
	})
	return Cond[P]{m: m}
}

// Muscle returns the underlying erased muscle.
func (c Cond[P]) Muscle() *muscle.Muscle { return c.m }

// cast converts an erased parameter back to its static type. It fails with
// a descriptive error (instead of panicking) when an event listener
// replaced a partial solution with a value of the wrong type.
func cast[P any](name string, p any) (P, error) {
	tp, ok := p.(P)
	if !ok && p != nil {
		var zero P
		return zero, fmt.Errorf("skandium: muscle %q received %T, want %T", name, p, zero)
	}
	return tp, nil
}
