package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
)

func chaosClient(in *NetInjector) *http.Client {
	return &http.Client{Transport: in.Transport(nil)}
}

// TestNetInjectorDeterministic: the same seed deals the same fault sequence
// over the same request stream.
func TestNetInjectorDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true,"padding":"0123456789abcdef"}`)
	}))
	defer srv.Close()

	run := func() NetStats {
		in := NewNet(NetConfig{Seed: 99, DropRate: 0.2, DropReplyRate: 0.1, TornRate: 0.1})
		cl := chaosClient(in)
		for i := 0; i < 200; i++ {
			resp, err := cl.Get(srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return in.NetStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault sequences:\n%+v\n%+v", a, b)
	}
	if a.Drops == 0 || a.ReplyDrops == 0 || a.Torn == 0 {
		t.Fatalf("expected every configured fault class to fire over 200 requests: %+v", a)
	}
	if a.Requests != 200 {
		t.Fatalf("requests %d, want 200", a.Requests)
	}
}

// TestNetInjectorDropClassifiesRefused: a dropped request surfaces as a
// connection refusal — errors.Is sees ECONNREFUSED and ErrInjected.
func TestNetInjectorDropClassifiesRefused(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("a dropped request must never reach the server")
	}))
	defer srv.Close()

	in := NewNet(NetConfig{Seed: 1, DropRate: 1})
	_, err := chaosClient(in).Get(srv.URL)
	if err == nil {
		t.Fatal("want an injected refusal")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("error %v must unwrap to ErrInjected and ECONNREFUSED", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("refusal must be a non-timeout net.Error: %v", err)
	}
}

// TestNetInjectorReplyDropIsTimeout: the server executes, the client sees a
// timeout — the ambiguous failure.
func TestNetInjectorReplyDropIsTimeout(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	in := NewNet(NetConfig{Seed: 1, DropReplyRate: 1})
	_, err := chaosClient(in).Get(srv.URL)
	if err == nil {
		t.Fatal("want an injected timeout")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("reply drop must classify as a timeout: %v", err)
	}
	if served != 1 {
		t.Fatalf("server served %d requests, want 1 — the request must be delivered before the reply drops", served)
	}
}

// TestNetInjectorTornBody: the response arrives truncated so decoders fail
// partway.
func TestNetInjectorTornBody(t *testing.T) {
	const full = `{"ok":true,"value":"a long enough body to be torn in half"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, full)
	}))
	defer srv.Close()

	in := NewNet(NetConfig{Seed: 1, TornRate: 1})
	resp, err := chaosClient(in).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len(full)/2 {
		t.Fatalf("torn body has %d bytes, want %d (half of %d)", len(body), len(full)/2, len(full))
	}
}

// TestNetInjectorPartition: partitioned hosts refuse every round trip until
// healed; other hosts are untouched.
func TestNetInjectorPartition(t *testing.T) {
	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer okSrv.Close()
	cutSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer cutSrv.Close()

	in := NewNet(NetConfig{Seed: 1})
	cl := chaosClient(in)
	cutHost := cutSrv.Listener.Addr().String()
	in.Partition(cutHost)
	if !in.Partitioned(cutHost) {
		t.Fatal("Partitioned must report the cut host")
	}

	if _, err := cl.Get(cutSrv.URL); err == nil || !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("partitioned host must refuse: %v", err)
	}
	if resp, err := cl.Get(okSrv.URL); err != nil {
		t.Fatalf("unpartitioned host must serve: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	in.Heal(cutHost)
	if resp, err := cl.Get(cutSrv.URL); err != nil {
		t.Fatalf("healed host must serve: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if st := in.NetStats(); st.PartitionDrops != 1 {
		t.Fatalf("partition drops %d, want 1", st.PartitionDrops)
	}
}

// TestNetInjectorHealAll: Heal with no arguments reconnects everything.
func TestNetInjectorHealAll(t *testing.T) {
	in := NewNet(NetConfig{})
	in.Partition("a:1", "b:2")
	in.Heal()
	if in.Partitioned("a:1") || in.Partitioned("b:2") {
		t.Fatal("Heal() must clear all partitions")
	}
}
