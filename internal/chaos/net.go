package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"skandium/internal/clock"
)

// NetConfig tunes a NetInjector, the wire-level sibling of the muscle-level
// Injector: it sits inside an http.RoundTripper and, driven by a seeded
// random source, drops requests, drops replies after delivery, tears
// response bodies, and delays round trips. Rates are probabilities in [0,1]
// evaluated per request, in order: drop, drop-reply, torn, delay — at most
// one fault fires per request. Full partitions are imposed explicitly with
// Partition/Heal and override the probabilistic draws.
type NetConfig struct {
	// Seed fixes the fault sequence (0 uses seed 1).
	Seed int64
	// DropRate is the probability the request is lost before delivery:
	// the server never sees it, the client sees a connection refusal. The
	// unambiguous failure — safe to retry blindly.
	DropRate float64
	// DropReplyRate is the probability the request is delivered and
	// executed but its response is lost: the client sees a timeout. The
	// ambiguous failure — the retry the receiver-side dedup must absorb.
	DropReplyRate float64
	// TornRate is the probability the response body is truncated halfway,
	// so the client decodes a torn reply.
	TornRate float64
	// DelayRate is the probability Delay is added before delivery.
	DelayRate float64
	// Delay is the stall added when delay fires, through clock.Sleep — a
	// virtual clock advances instead of sleeping.
	Delay time.Duration
	// Clock is the time source for injected delay (nil = system clock).
	Clock clock.Clock
}

// NetStats is a snapshot of the wire faults a NetInjector has dealt.
type NetStats struct {
	// Requests counts round trips attempted through the injector.
	Requests uint64
	// Drops counts requests lost before delivery.
	Drops uint64
	// ReplyDrops counts responses lost after execution.
	ReplyDrops uint64
	// Torn counts truncated response bodies.
	Torn uint64
	// Delays counts delayed round trips.
	Delays uint64
	// PartitionDrops counts requests refused by an imposed partition.
	PartitionDrops uint64
}

// NetInjector deals deterministic wire faults to the HTTP round trips of a
// cluster coordinator. Safe for concurrent use; one injector may front
// every worker of a cluster, with per-host partitions imposed on top.
type NetInjector struct {
	cfg NetConfig
	clk clock.Clock

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[string]struct{}

	requests   atomic.Uint64
	drops      atomic.Uint64
	replyDrops atomic.Uint64
	torn       atomic.Uint64
	delays     atomic.Uint64
	partDrops  atomic.Uint64
}

// NewNet builds a wire-fault injector from cfg.
func NewNet(cfg NetConfig) *NetInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	return &NetInjector{
		cfg:         cfg,
		clk:         clk,
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: map[string]struct{}{},
	}
}

// Partition cuts the named hosts ("host:port", matching req.URL.Host) off
// the network: every round trip to them fails with a refused connection
// until Heal. Imposing a partition is idempotent.
func (in *NetInjector) Partition(hosts ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, h := range hosts {
		in.partitioned[h] = struct{}{}
	}
}

// Heal reconnects the named hosts (all partitioned hosts when none given).
func (in *NetInjector) Heal(hosts ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(hosts) == 0 {
		in.partitioned = map[string]struct{}{}
		return
	}
	for _, h := range hosts {
		delete(in.partitioned, h)
	}
}

// Partitioned reports whether host is currently cut off.
func (in *NetInjector) Partitioned(host string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	_, ok := in.partitioned[host]
	return ok
}

// NetStats snapshots the wire-fault counters.
func (in *NetInjector) NetStats() NetStats {
	return NetStats{
		Requests:       in.requests.Load(),
		Drops:          in.drops.Load(),
		ReplyDrops:     in.replyDrops.Load(),
		Torn:           in.torn.Load(),
		Delays:         in.delays.Load(),
		PartitionDrops: in.partDrops.Load(),
	}
}

// netVerdict is the wire fault decided for one request.
type netVerdict int

const (
	netPass netVerdict = iota
	netDrop
	netDropReply
	netTorn
	netDelay
)

// draw decides the fault for the next request under one lock, keeping the
// sequence reproducible up to request order.
func (in *NetInjector) draw(host string) (netVerdict, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, cut := in.partitioned[host]; cut {
		return netDrop, true
	}
	u := in.rng.Float64()
	if u < in.cfg.DropRate {
		return netDrop, false
	}
	u -= in.cfg.DropRate
	if u < in.cfg.DropReplyRate {
		return netDropReply, false
	}
	u -= in.cfg.DropReplyRate
	if u < in.cfg.TornRate {
		return netTorn, false
	}
	u -= in.cfg.TornRate
	if u < in.cfg.DelayRate {
		return netDelay, false
	}
	return netPass, false
}

// Transport wraps base (nil = http.DefaultTransport) with the injector.
// The returned RoundTripper is what a cluster coordinator's http.Client
// should use to run under wire chaos.
func (in *NetInjector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &netTransport{in: in, base: base}
}

type netTransport struct {
	in   *NetInjector
	base http.RoundTripper
}

func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	in.requests.Add(1)
	v, cut := in.draw(req.URL.Host)
	if cut {
		in.partDrops.Add(1)
		return nil, &InjectedNetError{Op: "dial", Host: req.URL.Host, Refused: true, partition: true}
	}
	switch v {
	case netDrop:
		// Lost before delivery: consume nothing, refuse the connection.
		in.drops.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &InjectedNetError{Op: "dial", Host: req.URL.Host, Refused: true}
	case netDelay:
		in.delays.Add(1)
		clock.Sleep(in.clk, in.cfg.Delay)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch v {
	case netDropReply:
		// Delivered and executed; the reply evaporates. The client sees a
		// timeout — the ambiguous failure idempotent dispatch exists for.
		in.replyDrops.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &InjectedNetError{Op: "read", Host: req.URL.Host, IsTimeout: true}
	case netTorn:
		// Deliver only the first half of the body, then clean EOF: the
		// client sees a short, undecodable reply.
		in.torn.Add(1)
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cutAt := len(body) / 2
		resp.Body = io.NopCloser(bytes.NewReader(body[:cutAt]))
		resp.ContentLength = int64(cutAt)
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return resp, nil
}

// InjectedNetError is the error a chaos-dropped round trip returns. It
// implements net.Error (so timeout classification sees injected timeouts
// exactly like real ones) and unwraps to ErrInjected plus, for refused
// connections, syscall.ECONNREFUSED — callers classify it with the same
// errors.Is/As they use on real transport failures.
type InjectedNetError struct {
	// Op is the failed pseudo-operation ("dial", "read").
	Op string
	// Host is the target the fault hit.
	Host string
	// Refused marks a connection refusal (request never delivered).
	Refused bool
	// IsTimeout marks a deadline-style failure (reply lost after delivery).
	IsTimeout bool

	partition bool
}

func (e *InjectedNetError) Error() string {
	kind := "fault"
	switch {
	case e.partition:
		kind = "partitioned"
	case e.Refused:
		kind = "connection refused"
	case e.IsTimeout:
		kind = "timeout awaiting reply"
	}
	return fmt.Sprintf("chaos: injected net %s: %s %s", kind, e.Op, e.Host)
}

// Timeout implements net.Error.
func (e *InjectedNetError) Timeout() bool { return e.IsTimeout }

// Temporary implements net.Error (injected faults are always transient).
func (e *InjectedNetError) Temporary() bool { return true }

// Unwrap exposes the fault lineage to errors.Is: every injected net error
// is ErrInjected, and refused ones are also syscall.ECONNREFUSED.
func (e *InjectedNetError) Unwrap() []error {
	if e.Refused {
		return []error{ErrInjected, syscall.ECONNREFUSED}
	}
	return []error{ErrInjected}
}
