package chaos

import (
	"errors"
	"testing"
	"time"

	"skandium/internal/clock"
)

func ident(p int) (int, error) { return p, nil }

// sequence runs n wrapped calls and records which failed.
func sequence(in *Injector, n int) []bool {
	fn := Wrap(in, ident)
	out := make([]bool, n)
	for i := range out {
		_, err := fn(i)
		out[i] = err != nil
	}
	return out
}

func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3}
	a := sequence(New(cfg), 200)
	b := sequence(New(cfg), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at call %d", i)
		}
	}
}

func TestErrorRate(t *testing.T) {
	in := New(Config{Seed: 7, ErrorRate: 0.25})
	fn := Wrap(in, ident)
	fails := 0
	for i := 0; i < 1000; i++ {
		if _, err := fn(i); err != nil {
			fails++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
		}
	}
	if fails < 200 || fails > 300 {
		t.Fatalf("got %d failures out of 1000 at rate 0.25", fails)
	}
	if st := in.Stats(); st.Calls != 1000 || st.Errors != uint64(fails) {
		t.Fatalf("stats mismatch: %+v (fails=%d)", st, fails)
	}
}

func TestFailFirst(t *testing.T) {
	in := New(Config{FailFirst: 3})
	fn := Wrap(in, ident)
	for i := 0; i < 3; i++ {
		if _, err := fn(i); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: want injected failure, got %v", i, err)
		}
	}
	if v, err := fn(99); err != nil || v != 99 {
		t.Fatalf("call after FailFirst budget: got (%v, %v)", v, err)
	}
}

func TestVirtualLatency(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	in := New(Config{Seed: 1, LatencyRate: 1, Latency: 50 * time.Millisecond, Clock: clk})
	fn := Wrap(in, ident)
	start := clk.Now()
	if _, err := fn(0); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now().Sub(start); d != 50*time.Millisecond {
		t.Fatalf("virtual clock advanced %v, want 50ms", d)
	}
	if st := in.Stats(); st.Latencies != 1 {
		t.Fatalf("latencies = %d, want 1", st.Latencies)
	}
}

func TestPanicInjection(t *testing.T) {
	in := New(Config{Seed: 1, PanicRate: 1})
	fn := Wrap(in, ident)
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
		if st := in.Stats(); st.Panics != 1 {
			t.Fatalf("panics = %d, want 1", st.Panics)
		}
	}()
	fn(0)
}

func TestHangAndRelease(t *testing.T) {
	in := New(Config{Seed: 1, HangRate: 1})
	fn := Wrap(in, ident)
	done := make(chan struct{})
	go func() {
		fn(0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("hung call returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	in.Release()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Release did not unblock the hung call")
	}
	// After Release, hangs are no-ops.
	if _, err := fn(1); err != nil {
		t.Fatal(err)
	}
}
