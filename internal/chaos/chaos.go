// Package chaos is a deterministic fault-injection harness for exercising
// the fault-tolerance layer. An Injector wraps muscle functions and, driven
// by a seeded random source, makes a configurable fraction of invocations
// fail, panic, stall, or hang. Latency is injected through the clock
// abstraction, so tests on a virtual clock stay instantaneous and fully
// reproducible: the same seed and invocation order produce the same faults.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/clock"
)

// ErrInjected is the base error of every chaos-injected failure. Detect
// injected faults with errors.Is; real muscle errors never wrap it.
var ErrInjected = errors.New("chaos: injected fault")

// Config tunes an Injector. Rates are probabilities in [0,1] evaluated per
// invocation, in order: hang, panic, error — at most one fault fires per
// call, and latency (when it fires) is added before a successful return.
type Config struct {
	// Seed fixes the fault sequence (0 uses seed 1).
	Seed int64
	// ErrorRate is the probability an invocation returns ErrInjected.
	ErrorRate float64
	// PanicRate is the probability an invocation panics.
	PanicRate float64
	// LatencyRate is the probability Latency is added to a successful call.
	LatencyRate float64
	// Latency is the stall added when latency fires, through clock.Sleep —
	// a virtual clock advances instead of sleeping.
	Latency time.Duration
	// HangRate is the probability an invocation blocks until Release is
	// called (or forever) — the fault a per-muscle deadline must catch.
	HangRate float64
	// FailFirst deterministically fails the first FailFirst invocations
	// with ErrInjected, before any probabilistic draw. This models
	// transient faults precisely: with FailFirst = 2 and MaxAttempts >= 3,
	// a retrying execution always succeeds on its third attempt.
	FailFirst int
	// Clock is the time source for injected latency (nil = system clock).
	Clock clock.Clock
}

// Stats is a snapshot of the faults an Injector has dealt.
type Stats struct {
	// Calls counts wrapped invocations.
	Calls uint64
	// Errors counts invocations failed with ErrInjected (FailFirst
	// included).
	Errors uint64
	// Panics counts injected panics.
	Panics uint64
	// Latencies counts invocations that were stalled.
	Latencies uint64
	// Hangs counts invocations that blocked on the hang gate.
	Hangs uint64
}

// Injector deals faults to the muscle functions wrapped with Wrap. Safe for
// concurrent use; one injector may back every muscle of a program.
type Injector struct {
	cfg Config
	clk clock.Clock

	mu  sync.Mutex
	rng *rand.Rand

	calls     atomic.Uint64
	errs      atomic.Uint64
	panics    atomic.Uint64
	latencies atomic.Uint64
	hangs     atomic.Uint64

	release chan struct{}
	once    sync.Once
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	return &Injector{
		cfg:     cfg,
		clk:     clk,
		rng:     rand.New(rand.NewSource(seed)),
		release: make(chan struct{}),
	}
}

// Release unblocks every invocation hung so far and every future one —
// hangs become no-ops. Idempotent.
func (in *Injector) Release() {
	in.once.Do(func() { close(in.release) })
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:     in.calls.Load(),
		Errors:    in.errs.Load(),
		Panics:    in.panics.Load(),
		Latencies: in.latencies.Load(),
		Hangs:     in.hangs.Load(),
	}
}

// verdict is the fault decided for one invocation.
type verdict int

const (
	pass verdict = iota
	failErr
	failPanic
	stall
	hang
)

// draw decides the fault for the next invocation. A single lock-protected
// draw keeps the sequence reproducible under concurrency up to scheduling
// order.
func (in *Injector) draw() verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.FailFirst > 0 {
		in.cfg.FailFirst--
		return failErr
	}
	u := in.rng.Float64()
	if u < in.cfg.HangRate {
		return hang
	}
	u -= in.cfg.HangRate
	if u < in.cfg.PanicRate {
		return failPanic
	}
	u -= in.cfg.PanicRate
	if u < in.cfg.ErrorRate {
		return failErr
	}
	u -= in.cfg.ErrorRate
	if u < in.cfg.LatencyRate {
		return stall
	}
	return pass
}

// apply executes the verdict before the real muscle runs. It returns a
// non-nil error when the invocation must fail instead of calling through.
func (in *Injector) apply() error {
	n := in.calls.Add(1)
	switch in.draw() {
	case failErr:
		in.errs.Add(1)
		return fmt.Errorf("%w (call %d)", ErrInjected, n)
	case failPanic:
		in.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected panic (call %d)", n))
	case stall:
		in.latencies.Add(1)
		clock.Sleep(in.clk, in.cfg.Latency)
	case hang:
		in.hangs.Add(1)
		<-in.release
	}
	return nil
}

// Wrap decorates a one-argument muscle function (execute, condition, or a
// split/merge specialisation) with fault injection.
func Wrap[P, R any](in *Injector, fn func(P) (R, error)) func(P) (R, error) {
	return func(p P) (R, error) {
		if err := in.apply(); err != nil {
			var zero R
			return zero, err
		}
		return fn(p)
	}
}
