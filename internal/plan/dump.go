package plan

import (
	"fmt"
	"strings"
)

// Dump renders the compiled program as an indented step listing, one line
// per step: pre-order index, operation, skeleton kind, muscle slots and
// control parameters. It is the debugging view `adgdump -plan` prints, so
// drift reports can quote the exact IR all engines walked.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s — %d steps\n", p.node, len(p.steps))
	p.root.dump(&b, 0)
	return b.String()
}

func (s *Step) dump(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s#%-3d %-9s %-4s", strings.Repeat("  ", depth), s.index, s.op, s.nd.Kind())
	if s.cond != nil {
		fmt.Fprintf(b, "  fc=%s", s.cond.Name())
	}
	if s.split != nil {
		fmt.Fprintf(b, "  fs=%s", s.split.Name())
	}
	if s.exec != nil {
		fmt.Fprintf(b, "  fe=%s", s.exec.Name())
	}
	if s.merge != nil {
		fmt.Fprintf(b, "  fm=%s", s.merge.Name())
	}
	if s.op == OpRepeat {
		fmt.Fprintf(b, "  n=%d", s.n)
	}
	fmt.Fprintf(b, "  depth=%d", len(s.trace))
	if s.fused != nil {
		fmt.Fprintf(b, "  [fused: %d µops, %d acts]", len(s.fused.Ops()), s.fused.Activations())
	}
	if s.analytic != nil {
		fmt.Fprintf(b, "  [analytic: work=%d span=%d aops]", len(s.analytic.WorkOps()), len(s.analytic.SpanOps()))
	}
	if s.hint != nil {
		if k, ok := s.hint.Get(); ok {
			fmt.Fprintf(b, "  [hint: card=%d]", k)
		} else {
			fmt.Fprintf(b, "  [hint: card=?]")
		}
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		c.dump(b, depth+1)
	}
}
