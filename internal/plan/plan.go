// Package plan compiles a skeleton tree (skel.Node) into an immutable,
// typed program IR that every engine walks instead of re-deriving structure
// from the tree: the task-pool interpreter (internal/exec), the
// discrete-event simulator (internal/sim), the ADG builder and analytic
// estimators (internal/adg), and the simulated cluster (internal/dist).
//
// One compile, many walkers. The paper's WCT guarantee only holds if the
// controller's predictions (simulator, ADG) describe the same computation
// the interpreter actually runs; a single compiled Program makes that
// structural agreement a property of the representation rather than a
// convention between hand-maintained tree walkers. The conformance harness
// (internal/conformance) enforces the remaining behavioural agreement over
// randomized programs.
//
// A Program is compiled once per execution root and cached on the root
// node, so it is shared by all concurrent executions and all consumers; it
// lives exactly as long as the node does. Each Step carries the node, its
// pre-resolved muscle slots, the fan-out/control structure, and the static
// trace from the root — the hot paths of exec and sim read these fields
// directly instead of chasing the tree and re-allocating traces per
// activation.
package plan

import (
	"fmt"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// Op is the operation a Step performs — the IR's instruction set. Ops map
// one-to-one onto the paper's skeleton grammar, but name what the engines
// must do rather than what the pattern is called, which is what the
// interpreter, the simulator and the ADG builder actually dispatch on.
type Op uint8

// The IR operations.
const (
	// OpExec runs the execute muscle on the value (seq).
	OpExec Op = iota
	// OpWrap brackets one transparent nested evaluation (farm).
	OpWrap
	// OpStages runs the children in order on the value (pipe).
	OpStages
	// OpRepeat runs the single child exactly N times (for).
	OpRepeat
	// OpLoop repeats the single child while the condition holds (while).
	OpLoop
	// OpSelect evaluates the condition and runs child 0 (true) or 1 (if).
	OpSelect
	// OpFanOut splits, runs the single child once per part in parallel,
	// then merges (map).
	OpFanOut
	// OpFanFixed splits into exactly len(children) parts, runs child i on
	// part i in parallel, then merges (fork).
	OpFanFixed
	// OpRecurse evaluates the condition; while it holds, splits and
	// re-enters this step one level deeper per part, else solves with the
	// single child (d&c).
	OpRecurse
)

// String names the operation.
func (op Op) String() string {
	switch op {
	case OpExec:
		return "exec"
	case OpWrap:
		return "wrap"
	case OpStages:
		return "stages"
	case OpRepeat:
		return "repeat"
	case OpLoop:
		return "loop"
	case OpSelect:
		return "select"
	case OpFanOut:
		return "fan-out"
	case OpFanFixed:
		return "fan-fixed"
	case OpRecurse:
		return "recurse"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// opFor maps a skeleton kind to its IR operation.
func opFor(k skel.Kind) (Op, error) {
	switch k {
	case skel.Seq:
		return OpExec, nil
	case skel.Farm:
		return OpWrap, nil
	case skel.Pipe:
		return OpStages, nil
	case skel.For:
		return OpRepeat, nil
	case skel.While:
		return OpLoop, nil
	case skel.If:
		return OpSelect, nil
	case skel.Map:
		return OpFanOut, nil
	case skel.Fork:
		return OpFanFixed, nil
	case skel.DaC:
		return OpRecurse, nil
	default:
		return 0, fmt.Errorf("plan: unknown skeleton kind %v", k)
	}
}

// Step is one compiled position of a program: the operation, the node it
// came from, the pre-resolved muscle slots, the child steps, and the
// (immutable, shared) static trace from the program root down to this
// position. Steps are immutable after Compile and shared by every
// activation and every event of every execution of the program.
//
// Divide&conquer recursion re-enters the same Step with a longer trace than
// the static one; engines handle that by extending the step's trace once
// per recursion level with ExtendTrace.
type Step struct {
	op       Op
	nd       *skel.Node
	trace    []*skel.Node
	children []*Step

	// Muscle slots, pre-resolved at compile time so the hot path does not
	// chase the node. Nil when the op has no such slot.
	exec  *muscle.Muscle // OpExec
	split *muscle.Muscle // OpFanOut, OpFanFixed, OpRecurse
	merge *muscle.Muscle // OpFanOut, OpFanFixed, OpRecurse
	cond  *muscle.Muscle // OpLoop, OpSelect, OpRecurse

	n     int // OpRepeat: iteration count
	index int // pre-order position within the Program

	// Optimizer annotations, set only by Optimize (always nil on a raw
	// Compile output). They never change the step's structure — every
	// structural consumer (sharding, dumping, the ADG builder) works
	// unchanged on an optimized program; engines that know about an
	// annotation use it as a faster equivalent path.
	fused    *FusedProg
	analytic *Analytic
	hint     *CardHint
}

// Op returns the step's operation.
func (s *Step) Op() Op { return s.op }

// Node returns the skeleton node this step was compiled from.
func (s *Step) Node() *skel.Node { return s.nd }

// Kind returns the skeleton kind of the step's node.
func (s *Step) Kind() skel.Kind { return s.nd.Kind() }

// Trace returns the static nesting path from the program root to this
// step's node, inclusive. Callers must not modify it.
func (s *Step) Trace() []*skel.Node { return s.trace }

// Child returns the i-th child step.
func (s *Step) Child(i int) *Step { return s.children[i] }

// Children returns the child steps. Callers must not modify the slice.
func (s *Step) Children() []*Step { return s.children }

// Exec returns the execute muscle slot (OpExec), or nil.
func (s *Step) Exec() *muscle.Muscle { return s.exec }

// Split returns the split muscle slot (fan-out ops), or nil.
func (s *Step) Split() *muscle.Muscle { return s.split }

// Merge returns the merge muscle slot (fan-out ops), or nil.
func (s *Step) Merge() *muscle.Muscle { return s.merge }

// Cond returns the condition muscle slot (control ops), or nil.
func (s *Step) Cond() *muscle.Muscle { return s.cond }

// N returns the repetition count of an OpRepeat step (zero otherwise).
func (s *Step) N() int { return s.n }

// Index returns the step's pre-order position within its Program.
func (s *Step) Index() int { return s.index }

// Fused returns the fused micro-op chain rooted at this step, or nil when
// the step is not the root of a fused serial chain (raw programs, non-serial
// ops, or steps already inlined into an enclosing chain).
func (s *Step) Fused() *FusedProg { return s.fused }

// Analytic returns the closed-form work/span programs for the static
// subtree rooted at this step, or nil when the subtree is not static (or
// the program is unoptimized).
func (s *Step) Analytic() *Analytic { return s.analytic }

// CardHint returns the live cardinality hint slot of a fan-out step, or
// nil for non-fan-out steps and unoptimized programs.
func (s *Step) CardHint() *CardHint { return s.hint }

// Program is the compiled form of one skeleton tree, rooted at Node. It is
// immutable and safe for concurrent use.
type Program struct {
	node  *skel.Node
	root  *Step
	steps []*Step // pre-order
	byID  map[skel.NodeID]*Step
}

// Compile builds the program IR for executions rooted at node. The tree is
// validated first, so a compiled Program is always structurally sound.
// Compile is deterministic and side-effect free; use Of for the cached
// variant engines share.
func Compile(node *skel.Node) (*Program, error) {
	if err := node.Validate(); err != nil {
		return nil, err
	}
	p := &Program{node: node, byID: make(map[skel.NodeID]*Step, node.Size())}
	root, err := p.compile(node, nil)
	if err != nil {
		return nil, err
	}
	p.root = root
	return p, nil
}

func (p *Program) compile(nd *skel.Node, parentTrace []*skel.Node) (*Step, error) {
	op, err := opFor(nd.Kind())
	if err != nil {
		return nil, err
	}
	s := &Step{
		op:    op,
		nd:    nd,
		trace: ExtendTrace(parentTrace, nd),
		exec:  nd.Exec(),
		split: nd.Split(),
		merge: nd.Merge(),
		cond:  nd.Cond(),
		n:     nd.N(),
		index: len(p.steps),
	}
	p.steps = append(p.steps, s)
	if _, dup := p.byID[nd.ID()]; !dup {
		// First pre-order occurrence wins; a node shared twice within one
		// tree has identical structure below both occurrences.
		p.byID[nd.ID()] = s
	}
	if kids := nd.Children(); len(kids) > 0 {
		s.children = make([]*Step, len(kids))
		for i, c := range kids {
			cs, err := p.compile(c, s.trace)
			if err != nil {
				return nil, err
			}
			s.children[i] = cs
		}
	}
	return s, nil
}

// Of returns the compiled program for executions rooted at node, compiling
// (and, unless disabled, optimizing) and caching it on the node on first
// use. The cached Program is shared by all concurrent executions and all
// consumers of node; it stays alive exactly as long as the node does (it is
// stored on the node, not in a global table). Rewrites (skel.Optimize)
// construct fresh nodes and so can never observe a stale cache; the
// optimizer runs before the CAS publish, so racing callers always observe
// either the one cached optimized program or none — never a raw program
// that later "becomes" optimized.
func Of(node *skel.Node) (*Program, error) {
	if c := node.CachedPlan(); c != nil {
		return c.(*Program), nil
	}
	p, err := Compile(node)
	if err != nil {
		return nil, err
	}
	if OptimizeEnabled() {
		p = Optimize(p)
	}
	return node.CachePlan(p).(*Program), nil
}

// Node returns the skeleton root the program was compiled from.
func (p *Program) Node() *skel.Node { return p.node }

// Root returns the entry step.
func (p *Program) Root() *Step { return p.root }

// Steps returns every step in pre-order. Callers must not modify the slice.
func (p *Program) Steps() []*Step { return p.steps }

// Len returns the number of steps.
func (p *Program) Len() int { return len(p.steps) }

// StepFor returns the step compiled from the node with the given identity
// (the first pre-order occurrence when a node is shared within the tree),
// or nil when the node is not part of this program.
func (p *Program) StepFor(id skel.NodeID) *Step { return p.byID[id] }

// ExtendTrace returns a fresh trace slice extending base with nd. The
// static traces of a program are precomputed once at compile time; engines
// call this only for divide&conquer recursion, whose trace grows once per
// recursion level, and the compiler itself uses it to build the static
// traces.
func ExtendTrace(base []*skel.Node, nd *skel.Node) []*skel.Node {
	tr := make([]*skel.Node, len(base)+1)
	copy(tr, base)
	tr[len(base)] = nd
	return tr
}
