package plan

import (
	"sync"
	"testing"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// fakeEst is a map-backed EstimateSource for analytic-pass tests.
type fakeEst struct {
	dur  map[muscle.ID]time.Duration
	card map[muscle.ID]float64
}

func (f fakeEst) Duration(id muscle.ID) (time.Duration, bool) { d, ok := f.dur[id]; return d, ok }
func (f fakeEst) Card(id muscle.ID) (float64, bool)           { c, ok := f.card[id]; return c, ok }

func mustCompile(t *testing.T, nd *skel.Node) *Program {
	t.Helper()
	p, err := Compile(nd)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFusePassSerialChain(t *testing.T) {
	nd := skel.NewPipe(
		skel.NewSeq(fe("a")),
		skel.NewFor(3, skel.NewSeq(fe("b"))),
		skel.NewFarm(skel.NewSeq(fe("c"))),
	)
	raw := mustCompile(t, nd)
	opt := Optimize(raw)

	fp := opt.Root().Fused()
	if fp == nil {
		t.Fatal("fully serial chain not fused at root")
	}
	// Activations: pipe + a + for + 3×b + farm + c.
	if fp.Activations() != 8 {
		t.Fatalf("activations = %d, want 8", fp.Activations())
	}
	begins, bodies, ends := 0, 0, 0
	for _, op := range fp.Ops() {
		switch op.Code {
		case FBegin:
			begins++
			if op.Step == nil {
				t.Fatal("FBegin without step")
			}
		case FBody:
			bodies++
		case FEnd:
			ends++
		}
	}
	if begins != 8 || bodies != 5 { // execs: a, b×3 (unrolled), c
		t.Fatalf("begins=%d bodies=%d, want 8/5", begins, bodies)
	}
	// Every non-exec activation closes with FEnd; exec closes via FBody.
	if begins != bodies+ends {
		t.Fatalf("begins=%d != bodies+ends=%d", begins, bodies+ends)
	}
	// Nested chains are inlined by the root's chain, not annotated again.
	for _, s := range opt.Steps()[1:] {
		if s.Fused() != nil {
			t.Fatalf("inner step #%d carries its own fused chain", s.Index())
		}
	}
	// The input program is never mutated.
	for _, s := range raw.Steps() {
		if s.Fused() != nil || s.Analytic() != nil || s.CardHint() != nil {
			t.Fatalf("Optimize annotated its input at step #%d", s.Index())
		}
	}
}

func TestFuseStopsAtForks(t *testing.T) {
	nd := skel.NewPipe(
		skel.NewFor(2, skel.NewSeq(fe("a"))),
		skel.NewMap(fs("s"), skel.NewSeq(fe("e")), fm("m")),
	)
	opt := Optimize(mustCompile(t, nd))
	root := opt.Root()
	if root.Fused() != nil {
		t.Fatal("chain fused across a fan-out")
	}
	if root.Child(0).Fused() == nil {
		t.Fatal("serial for-chain before the fan-out not fused")
	}
	if root.Child(1).Fused() != nil {
		t.Fatal("fan-out step fused")
	}
	// The map body is a lone activation: fusing it would gain nothing.
	if root.Child(1).Child(0).Fused() != nil {
		t.Fatal("single-activation body fused")
	}
}

func TestFuseRespectsBudget(t *testing.T) {
	opt := Optimize(mustCompile(t, skel.NewFor(1000, skel.NewSeq(fe("a")))))
	for _, s := range opt.Steps() {
		if s.Fused() != nil {
			t.Fatal("over-budget repeat chain was fused")
		}
	}
}

func TestAnalyticWorkAndSpan(t *testing.T) {
	split, body1, body2, merge := fs("s"), fe("a"), fe("b"), fm("m")
	nd := skel.NewMap(split, skel.NewPipe(skel.NewSeq(body1), skel.NewSeq(body2)), merge)
	opt := Optimize(mustCompile(t, nd))
	a := opt.Root().Analytic()
	if a == nil {
		t.Fatal("static map not specialized")
	}
	ms := time.Millisecond
	est := fakeEst{
		dur: map[muscle.ID]time.Duration{
			split.ID(): 10 * ms, body1.ID(): 15 * ms, body2.ID(): 5 * ms, merge.ID(): 5 * ms,
		},
		card: map[muscle.ID]float64{split.ID(): 3},
	}
	if w, miss := a.Work(est); miss != nil || w != 75*ms { // 10 + 3·(15+5) + 5
		t.Fatalf("work = %v (miss %v), want 75ms", w, miss)
	}
	if s, miss := a.Span(est); miss != nil || s != 35*ms { // 10 + (15+5) + 5
		t.Fatalf("span = %v (miss %v), want 35ms", s, miss)
	}
	// Work needs |s|; span does not.
	delete(est.card, split.ID())
	if _, miss := a.Work(est); miss == nil || miss.M != split || !miss.Card {
		t.Fatalf("missing-card detection: %+v", miss)
	}
	if _, miss := a.Span(est); miss != nil {
		t.Fatalf("span consulted the cardinality: %+v", miss)
	}
	// A missing duration fails both.
	delete(est.dur, body2.ID())
	if _, miss := a.Span(est); miss == nil || miss.M != body2 || miss.Card {
		t.Fatalf("missing-duration detection: %+v", miss)
	}
}

func TestAnalyticStopsAtDynamicControl(t *testing.T) {
	nd := skel.NewPipe(
		skel.NewWhile(fc("w"), skel.NewSeq(fe("a"))),
		skel.NewMap(fs("s"), skel.NewSeq(fe("e")), fm("m")),
	)
	opt := Optimize(mustCompile(t, nd))
	root := opt.Root()
	if root.Analytic() != nil {
		t.Fatal("subtree with a while-loop specialized")
	}
	if root.Child(0).Analytic() != nil {
		t.Fatal("loop step specialized")
	}
	// The loop body and the map are the maximal static subtrees.
	if root.Child(0).Child(0).Analytic() == nil {
		t.Fatal("static loop body not specialized")
	}
	if root.Child(1).Analytic() == nil {
		t.Fatal("static map not specialized")
	}
	if root.Child(1).Child(0).Analytic() != nil {
		t.Fatal("nested static step annotated under a specialized parent")
	}
}

func TestCardHints(t *testing.T) {
	nd := skel.NewPipe(
		skel.NewMap(fs("s"), skel.NewSeq(fe("e")), fm("m")),
		skel.NewFork(fs("ks"), []*skel.Node{skel.NewSeq(fe("k0")), skel.NewSeq(fe("k1"))}, fm("km")),
	)
	opt := Optimize(mustCompile(t, nd))
	mapStep, forkStep := opt.Root().Child(0), opt.Root().Child(1)

	h := mapStep.CardHint()
	if h == nil {
		t.Fatal("fan-out without a hint slot")
	}
	if _, ok := h.Get(); ok {
		t.Fatal("dynamic fan-out hint set before any split ran")
	}
	h.Record(4)
	if k, ok := h.Get(); !ok || k != 4 {
		t.Fatalf("hint = %d,%v after Record(4)", k, ok)
	}
	h.Record(-3) // ignored
	if k, _ := h.Get(); k != 4 {
		t.Fatalf("negative record overwrote hint: %d", k)
	}
	if k, ok := forkStep.CardHint().Get(); !ok || k != 2 {
		t.Fatalf("fan-fixed hint = %d,%v, want statically seeded 2", k, ok)
	}
	// Raw programs carry no hint; nil receivers must be safe.
	raw := mustCompile(t, nd)
	var nilHint *CardHint = raw.Root().Child(0).CardHint()
	if nilHint != nil {
		t.Fatal("raw program has a hint slot")
	}
	nilHint.Record(7)
	if _, ok := nilHint.Get(); ok {
		t.Fatal("nil hint returned a value")
	}
}

func TestOptimizePreservesStructure(t *testing.T) {
	raw := mustCompile(t, everyKind())
	opt, reports := OptimizeWithReport(raw)
	if len(reports) == 0 {
		t.Fatal("no pass reports")
	}
	if opt == raw {
		t.Fatal("Optimize returned its input")
	}
	rs, os := raw.Steps(), opt.Steps()
	if len(rs) != len(os) {
		t.Fatalf("step count changed: %d -> %d", len(rs), len(os))
	}
	for i := range rs {
		r, o := rs[i], os[i]
		if o.Index() != r.Index() || o.Op() != r.Op() || o.Node() != r.Node() || o.Kind() != r.Kind() {
			t.Fatalf("step %d identity changed", i)
		}
		if o.Exec() != r.Exec() || o.Split() != r.Split() || o.Merge() != r.Merge() ||
			o.Cond() != r.Cond() || o.N() != r.N() {
			t.Fatalf("step %d slots changed", i)
		}
		if len(o.Trace()) != len(r.Trace()) {
			t.Fatalf("step %d trace depth changed", i)
		}
		if len(o.Children()) != len(r.Children()) {
			t.Fatalf("step %d arity changed", i)
		}
		if opt.StepFor(r.Node().ID()) == nil {
			t.Fatalf("step %d lost its byID entry", i)
		}
	}
}

func TestOfCachesOptimizedProgram(t *testing.T) {
	nd := skel.NewPipe(
		skel.NewSeq(fe("a")),
		skel.NewSeq(fe("b")),
		skel.NewMap(fs("s"), skel.NewSeq(fe("e")), fm("m")),
	)
	p1, err := Of(nd)
	if err != nil {
		t.Fatal(err)
	}
	annotated := false
	for _, s := range p1.Steps() {
		if s.Fused() != nil || s.Analytic() != nil || s.CardHint() != nil {
			annotated = true
		}
	}
	if !annotated {
		t.Fatal("Of cached an unoptimized program with the optimizer enabled")
	}
	if p2, _ := Of(nd); p2 != p1 {
		t.Fatal("Of re-optimized an already cached node")
	}
}

func TestOfRespectsDisable(t *testing.T) {
	SetOptimizeEnabled(false)
	defer SetOptimizeEnabled(true)
	nd := skel.NewPipe(skel.NewSeq(fe("a")), skel.NewSeq(fe("b")))
	p, err := Of(nd)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Steps() {
		if s.Fused() != nil || s.Analytic() != nil || s.CardHint() != nil {
			t.Fatal("optimizer ran while disabled")
		}
	}
}

// TestRewriteOptimizeRace: plan.Of must compose with skel.Optimize rewrites —
// racing callers on the original and the rewritten tree each observe exactly
// one cached program per node, and every published program is optimized.
func TestRewriteOptimizeRace(t *testing.T) {
	nd := skel.NewPipe(
		skel.NewSeq(fe("x")),
		skel.NewSeq(fe("y")),
		skel.NewFor(2, skel.NewSeq(fe("z"))),
	)
	rewritten := skel.Optimize(nd, skel.OptimizeOptions{FuseSeqPipes: true})
	if rewritten == nd {
		t.Fatal("rewrite changed nothing; race test needs two distinct roots")
	}
	const goroutines = 24
	orig := make([]*Program, goroutines)
	rewr := make([]*Program, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				orig[i], _ = Of(nd)
				rewr[i], _ = Of(rewritten)
			} else {
				rewr[i], _ = Of(rewritten)
				orig[i], _ = Of(nd)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if orig[i] != orig[0] || rewr[i] != rewr[0] {
			t.Fatal("racing Of calls observed distinct programs for one node")
		}
	}
	if orig[0] == rewr[0] {
		t.Fatal("distinct roots share a program")
	}
	for _, p := range []*Program{orig[0], rewr[0]} {
		if p.Root().Fused() == nil {
			t.Fatalf("cached program for %s is not optimized", p.Node())
		}
	}
}
