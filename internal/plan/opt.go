// The optimizer: a pass pipeline run over a compiled Program at cache time
// (plan.Of) and on demand (cmd/adgdump -opt). Every pass is annotation-only:
// the optimized program has exactly the same steps, pre-order indices,
// traces and muscle slots as the raw one, plus per-step annotations that
// engines may consult for a faster equivalent path. Keeping the structure
// untouched is what lets every structural consumer — remote sharding by
// step index, the ADG builder, the IR dump — work unchanged, and it is also
// what makes the soundness argument tractable: each annotation comes with a
// legality rule under which the annotated path is observably identical
// (byte-identical events, activation indices, results and virtual
// timestamps) to the un-annotated one. The conformance harness checks that
// equivalence over the full 240-tree corpus with the optimizer on and off.
//
// Passes:
//
//  1. fuse-serial: a chain of serial ops (OpExec, OpWrap, OpStages,
//     OpRepeat) never forks — the interpreter keeps one worker and the
//     simulator one slot for the whole chain — so the chain is flattened
//     into a FusedProg micro-op list executed by a single instruction,
//     eliminating the per-stage Task/Instr push-pop churn.
//  2. specialize-static: a static subtree (no OpLoop/OpSelect/OpRecurse) is
//     the subclass whose analytic work/span the conformance harness proves
//     exact, so the recursive estimator walk is precompiled into flat
//     postfix programs evaluated without touching the subtree.
//  3. presize-fanout: fan-out steps get a cardinality hint slot — exact for
//     OpFanFixed, recorded live after every split otherwise — that
//     consumers use to size buffers and shard batches up front.
//  4. arena: each fused chain carries a program-owned scratch pool so the
//     interpreter's per-activation state is recycled across roots instead
//     of reallocated (the simulator recycles through engine-owned
//     freelists, which need no synchronization at all).
package plan

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// optimizeOn gates the pipeline inside Of. Default on; SKANDIUM_OPT=off in
// the environment (or SetOptimizeEnabled / the skelrund -opt flag /
// skandium.WithOptimize) turns it off so the raw 1:1 lowering runs — CI
// exercises the conformance suite both ways.
var optimizeOn atomic.Bool

func init() {
	optimizeOn.Store(os.Getenv("SKANDIUM_OPT") != "off")
}

// OptimizeEnabled reports whether Of runs the optimizer pipeline.
func OptimizeEnabled() bool { return optimizeOn.Load() }

// SetOptimizeEnabled toggles the optimizer pipeline inside Of. Programs
// already cached on their nodes are unaffected.
func SetOptimizeEnabled(on bool) { optimizeOn.Store(on) }

// PassReport describes what one optimizer pass did to a program.
type PassReport struct {
	Name    string // pass name
	Applied int    // number of sites annotated
	Detail  string // human-readable summary
}

// Optimize returns an optimized copy of p. The input program is never
// mutated — Of relies on that to publish either a raw or an optimized
// program atomically, and tests rely on it to run both side by side.
// Structure (steps, indices, traces, muscle slots) is preserved exactly;
// only annotations are added.
func Optimize(p *Program) *Program {
	np, _ := OptimizeWithReport(p)
	return np
}

// OptimizeWithReport is Optimize plus a per-pass report of what changed,
// for cmd/adgdump -opt and tests.
func OptimizeWithReport(p *Program) (*Program, []PassReport) {
	np := cloneProgram(p)
	reports := []PassReport{
		fusePass(np),
		analyticPass(np),
		cardHintPass(np),
	}
	reports = append(reports, arenaReport(np))
	return np, reports
}

// cloneProgram deep-copies the step tree so annotations never leak into the
// caller's (possibly already published) program. Pre-order indices and the
// shared immutable traces are preserved; byID keeps first-occurrence-wins.
func cloneProgram(p *Program) *Program {
	np := &Program{
		node:  p.node,
		byID:  make(map[skel.NodeID]*Step, len(p.byID)),
		steps: make([]*Step, 0, len(p.steps)),
	}
	np.root = np.cloneStep(p.root)
	return np
}

func (p *Program) cloneStep(s *Step) *Step {
	ns := &Step{
		op:    s.op,
		nd:    s.nd,
		trace: s.trace,
		exec:  s.exec,
		split: s.split,
		merge: s.merge,
		cond:  s.cond,
		n:     s.n,
		index: len(p.steps),
	}
	p.steps = append(p.steps, ns)
	if _, dup := p.byID[s.nd.ID()]; !dup {
		p.byID[s.nd.ID()] = ns
	}
	if len(s.children) > 0 {
		ns.children = make([]*Step, len(s.children))
		for i, c := range s.children {
			ns.children[i] = p.cloneStep(c)
		}
	}
	return ns
}

// ---------------------------------------------------------------------------
// Pass 1: seq fusion.

// Budget caps for one fused chain. OpRepeat unrolls, so a for(10⁶, seq)
// would otherwise compile into millions of micro-ops; over-budget chains
// simply stay unfused (the per-step instructions remain fully functional).
const (
	maxFuseOps    = 512
	maxFuseFrames = 64
)

// FuseCode is a fused micro-operation. The five codes reproduce exactly the
// instruction sequences the per-step interpreter and simulator would push
// for a serial chain, in the same order — which is the fusion legality
// argument: serial ops never fork, both engines process a non-forking chain
// on one worker/slot without interleaving other instructions of the same
// task, so running the flattened list inline emits the same events, in the
// same order, with the same activation indices and (in the simulator) the
// same virtual timestamps.
type FuseCode uint8

const (
	// FBegin opens the activation of Step: allocate the next activation
	// index and emit Before/Skeleton, pushing an activation frame.
	FBegin FuseCode = iota
	// FBody runs the execute muscle of the open OpExec activation (with the
	// full retry/timeout protocol), emits After/Skeleton, and pops the
	// frame.
	FBody
	// FEnd closes the open control activation: emit After/Skeleton, pop.
	FEnd
	// FNestedBegin emits Before/NestedSkel on the open activation with the
	// op's Branch/Iter.
	FNestedBegin
	// FNestedEnd emits After/NestedSkel on the open activation.
	FNestedEnd
)

// String names the micro-op code.
func (c FuseCode) String() string {
	switch c {
	case FBegin:
		return "begin"
	case FBody:
		return "body"
	case FEnd:
		return "end"
	case FNestedBegin:
		return "nested-begin"
	case FNestedEnd:
		return "nested-end"
	default:
		return fmt.Sprintf("FuseCode(%d)", int(c))
	}
}

// FuseOp is one fused micro-operation.
type FuseOp struct {
	Code   FuseCode
	Step   *Step // the step the op belongs to (FBegin/FBody: the opened step)
	Branch int   // FNestedBegin/FNestedEnd: pipeline stage index
	Iter   int   // FNestedBegin/FNestedEnd: repeat iteration index
}

// FusedProg is the flattened micro-op form of one serial chain, annotated
// on the chain's root step. It also owns the interpreter's scratch pool
// (pass 4): per-activation state for this chain is recycled here across
// roots, so steady-state execution of the chain allocates nothing.
type FusedProg struct {
	root        *Step
	ops         []FuseOp
	activations int // number of FBegin ops (skeleton activations covered)
	maxFrames   int // deepest activation nesting, sizes frame stacks exactly

	scratch sync.Pool // interpreter fused-instruction state (internal/exec)
}

// Root returns the chain's root step.
func (f *FusedProg) Root() *Step { return f.root }

// Ops returns the micro-op list. Callers must not modify it.
func (f *FusedProg) Ops() []FuseOp { return f.ops }

// Activations returns how many skeleton activations the chain covers.
func (f *FusedProg) Activations() int { return f.activations }

// MaxFrames returns the deepest activation nesting of the chain.
func (f *FusedProg) MaxFrames() int { return f.maxFrames }

// Scratch returns the program-owned arena for per-activation interpreter
// state of this chain.
func (f *FusedProg) Scratch() *sync.Pool { return &f.scratch }

// fuseSerial reports whether the subtree at s is a pure serial chain:
// composed only of ops that never fork a second task.
func fuseSerial(s *Step) bool {
	switch s.op {
	case OpExec:
		return true
	case OpWrap, OpRepeat:
		return fuseSerial(s.children[0])
	case OpStages:
		for _, c := range s.children {
			if !fuseSerial(c) {
				return false
			}
		}
		return len(s.children) > 0
	default:
		return false
	}
}

// fuseOpCount sizes the micro-op list for a serial subtree (OpRepeat
// unrolls). Only meaningful when fuseSerial(s) holds.
func fuseOpCount(s *Step) int {
	switch s.op {
	case OpExec:
		return 2
	case OpWrap:
		return 4 + fuseOpCount(s.children[0])
	case OpStages:
		n := 2
		for _, c := range s.children {
			n += 2 + fuseOpCount(c)
		}
		return n
	case OpRepeat:
		per := 2 + fuseOpCount(s.children[0])
		if s.n > maxFuseOps { // avoid overflow on absurd repeat counts
			return maxFuseOps + 1
		}
		return 2 + s.n*per
	default:
		return maxFuseOps + 1
	}
}

// fuseFrameDepth returns the deepest activation nesting of a serial subtree.
func fuseFrameDepth(s *Step) int {
	switch s.op {
	case OpExec:
		return 1
	case OpWrap, OpRepeat:
		return 1 + fuseFrameDepth(s.children[0])
	case OpStages:
		deepest := 0
		for _, c := range s.children {
			if d := fuseFrameDepth(c); d > deepest {
				deepest = d
			}
		}
		return 1 + deepest
	default:
		return maxFuseFrames + 1
	}
}

// appendFuseOps flattens the serial subtree at s into micro-ops, mirroring
// exactly the instruction order of the per-step engines: every activation
// opens with FBegin, control ops bracket each nested evaluation with
// FNestedBegin/FNestedEnd (stage index as Branch, repeat index as Iter),
// and every activation closes with FBody (OpExec) or FEnd.
func appendFuseOps(ops []FuseOp, s *Step) []FuseOp {
	ops = append(ops, FuseOp{Code: FBegin, Step: s})
	switch s.op {
	case OpExec:
		return append(ops, FuseOp{Code: FBody, Step: s})
	case OpWrap:
		ops = append(ops, FuseOp{Code: FNestedBegin, Step: s})
		ops = appendFuseOps(ops, s.children[0])
		ops = append(ops, FuseOp{Code: FNestedEnd, Step: s})
	case OpStages:
		for i, c := range s.children {
			ops = append(ops, FuseOp{Code: FNestedBegin, Step: s, Branch: i})
			ops = appendFuseOps(ops, c)
			ops = append(ops, FuseOp{Code: FNestedEnd, Step: s, Branch: i})
		}
	case OpRepeat:
		for i := 0; i < s.n; i++ {
			ops = append(ops, FuseOp{Code: FNestedBegin, Step: s, Iter: i})
			ops = appendFuseOps(ops, s.children[0])
			ops = append(ops, FuseOp{Code: FNestedEnd, Step: s, Iter: i})
		}
	}
	return append(ops, FuseOp{Code: FEnd, Step: s})
}

// fusePass annotates every maximal serial chain of ≥2 activations with its
// flattened FusedProg. Chains nested inside an annotated chain are inlined
// by the parent and not annotated themselves; chains over the micro-op or
// frame budget stay unfused.
func fusePass(p *Program) PassReport {
	rep := PassReport{Name: "fuse-serial"}
	totalActs := 0
	var walk func(s *Step, inChain bool)
	walk = func(s *Step, inChain bool) {
		self := false
		if !inChain && fuseSerial(s) &&
			fuseOpCount(s) <= maxFuseOps && fuseFrameDepth(s) <= maxFuseFrames {
			ops := appendFuseOps(make([]FuseOp, 0, fuseOpCount(s)), s)
			acts := 0
			for i := range ops {
				if ops[i].Code == FBegin {
					acts++
				}
			}
			if acts >= 2 { // a lone OpExec gains nothing from fusing
				s.fused = &FusedProg{
					root:        s,
					ops:         ops,
					activations: acts,
					maxFrames:   fuseFrameDepth(s),
				}
				rep.Applied++
				totalActs += acts
				self = true
			}
		}
		for _, c := range s.children {
			walk(c, inChain || self)
		}
	}
	walk(p.root, false)
	rep.Detail = fmt.Sprintf("%d chains fused covering %d activations", rep.Applied, totalActs)
	return rep
}

// ---------------------------------------------------------------------------
// Pass 2: static specialization.

// maxAnalyticStack bounds the postfix evaluation stack; subtrees needing
// more (pathologically deep nesting) simply stay unannotated.
const maxAnalyticStack = 32

// AOpCode is one postfix analytic micro-operation over time.Durations.
type AOpCode uint8

const (
	// ADur pushes the duration estimate of muscle M (clamped at ≥0).
	ADur AOpCode = iota
	// AAdd pops b then a, pushes a+b.
	AAdd
	// AMax pops b then a, pushes max(a,b).
	AMax
	// AMulN multiplies the top of stack by the static constant N.
	AMulN
	// AMulCard multiplies the top of stack by the rounded (≥0) cardinality
	// estimate of muscle M.
	AMulCard
)

// AOp is one analytic micro-operation.
type AOp struct {
	Code AOpCode
	M    *muscle.Muscle
	N    int
}

// EstimateSource supplies per-muscle duration and cardinality estimates;
// *estimate.Registry satisfies it.
type EstimateSource interface {
	Duration(id muscle.ID) (time.Duration, bool)
	Card(id muscle.ID) (float64, bool)
}

// MissingEstimate reports the muscle whose estimate an analytic evaluation
// needed and did not find (Card distinguishes a missing cardinality from a
// missing duration).
type MissingEstimate struct {
	M    *muscle.Muscle
	Card bool
}

// Analytic holds the closed-form work and span programs of one static
// subtree: the recursive estimator walk of internal/adg compiled into flat
// postfix form. Evaluation is exactly the estimator's arithmetic — same
// clamping (negative durations to 0, cardinalities rounded then clamped to
// ≥0), same missing-estimate failures, same int64 operations in the same
// fold order — so the results are identical to the recursive walk, which is
// the soundness rule for this pass. Only the analytic estimators consult
// the annotation: simulator makespans at intermediate LP are
// schedule-dependent and have no closed form, so the simulator always walks
// the subtree faithfully.
type Analytic struct {
	work []AOp
	span []AOp
}

// Work evaluates the closed-form total work of the subtree.
func (a *Analytic) Work(src EstimateSource) (time.Duration, *MissingEstimate) {
	return evalAnalytic(a.work, src)
}

// Span evaluates the closed-form critical-path span of the subtree.
func (a *Analytic) Span(src EstimateSource) (time.Duration, *MissingEstimate) {
	return evalAnalytic(a.span, src)
}

// WorkOps returns the postfix work program (for dumps and tests).
func (a *Analytic) WorkOps() []AOp { return a.work }

// SpanOps returns the postfix span program (for dumps and tests).
func (a *Analytic) SpanOps() []AOp { return a.span }

func evalAnalytic(ops []AOp, src EstimateSource) (time.Duration, *MissingEstimate) {
	var stack [maxAnalyticStack]time.Duration
	sp := 0
	for i := range ops {
		op := &ops[i]
		switch op.Code {
		case ADur:
			d, ok := src.Duration(op.M.ID())
			if !ok {
				return 0, &MissingEstimate{M: op.M}
			}
			if d < 0 {
				d = 0
			}
			stack[sp] = d
			sp++
		case AAdd:
			sp--
			stack[sp-1] += stack[sp]
		case AMax:
			sp--
			if stack[sp] > stack[sp-1] {
				stack[sp-1] = stack[sp]
			}
		case AMulN:
			stack[sp-1] *= time.Duration(op.N)
		case AMulCard:
			c, ok := src.Card(op.M.ID())
			if !ok {
				return 0, &MissingEstimate{M: op.M, Card: true}
			}
			k := int(math.Round(c))
			if k < 0 {
				k = 0
			}
			stack[sp-1] *= time.Duration(k)
		}
	}
	return stack[0], nil
}

// staticSubtree reports whether the subtree at s belongs to the static
// subclass: no data-dependent control (OpLoop, OpSelect, OpRecurse), so its
// activation structure — and therefore its exact work and span — is fully
// determined by the program plus the per-muscle estimates.
func staticSubtree(s *Step) bool {
	switch s.op {
	case OpExec:
		return true
	case OpWrap, OpStages, OpRepeat, OpFanOut, OpFanFixed:
		if len(s.children) == 0 {
			return false
		}
		for _, c := range s.children {
			if !staticSubtree(c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// buildAnalytic appends the postfix program for the subtree at s, mirroring
// the recursive estimator formulas exactly (left-fold order included, so
// the int64 arithmetic is identical operation for operation). work selects
// the total-work form; otherwise the span form. depth tracks the stack
// level entering the call; *maxSP records the high-water mark.
func buildAnalytic(ops []AOp, s *Step, work bool, depth int, maxSP *int) []AOp {
	if depth+2 > *maxSP {
		*maxSP = depth + 2
	}
	switch s.op {
	case OpExec:
		return append(ops, AOp{Code: ADur, M: s.exec})
	case OpWrap:
		return buildAnalytic(ops, s.children[0], work, depth, maxSP)
	case OpStages:
		ops = buildAnalytic(ops, s.children[0], work, depth, maxSP)
		for _, c := range s.children[1:] {
			ops = buildAnalytic(ops, c, work, depth+1, maxSP)
			ops = append(ops, AOp{Code: AAdd})
		}
		return ops
	case OpRepeat:
		ops = buildAnalytic(ops, s.children[0], work, depth, maxSP)
		return append(ops, AOp{Code: AMulN, N: s.n})
	case OpFanOut:
		// work: ts + k·body + tm    span: ts + body + tm
		ops = append(ops, AOp{Code: ADur, M: s.split})
		ops = buildAnalytic(ops, s.children[0], work, depth+1, maxSP)
		if work {
			ops = append(ops, AOp{Code: AMulCard, M: s.split})
		}
		ops = append(ops, AOp{Code: AAdd})
		ops = append(ops, AOp{Code: ADur, M: s.merge})
		return append(ops, AOp{Code: AAdd})
	case OpFanFixed:
		// work: ts + Σ children + tm    span: ts + max(children) + tm
		ops = append(ops, AOp{Code: ADur, M: s.split})
		ops = buildAnalytic(ops, s.children[0], work, depth+1, maxSP)
		for _, c := range s.children[1:] {
			ops = buildAnalytic(ops, c, work, depth+2, maxSP)
			if work {
				ops = append(ops, AOp{Code: AAdd})
			} else {
				ops = append(ops, AOp{Code: AMax})
			}
		}
		ops = append(ops, AOp{Code: AAdd})
		ops = append(ops, AOp{Code: ADur, M: s.merge})
		return append(ops, AOp{Code: AAdd})
	}
	return ops
}

// analyticPass annotates every maximal static subtree (static subtree whose
// parent is not static, including a fully static root) with its closed-form
// work/span programs. The estimators check the annotation at every step
// they walk, so exactly these maximal roots are hit.
func analyticPass(p *Program) PassReport {
	rep := PassReport{Name: "specialize-static"}
	steps := 0
	var walk func(s *Step, inStatic bool)
	walk = func(s *Step, inStatic bool) {
		self := false
		if !inStatic && staticSubtree(s) {
			maxSP := 0
			work := buildAnalytic(nil, s, true, 0, &maxSP)
			span := buildAnalytic(nil, s, false, 0, &maxSP)
			if maxSP <= maxAnalyticStack {
				s.analytic = &Analytic{work: work, span: span}
				rep.Applied++
				steps += countSteps(s)
				self = true
			}
		}
		for _, c := range s.children {
			walk(c, inStatic || self)
		}
	}
	walk(p.root, false)
	rep.Detail = fmt.Sprintf("%d static subtrees specialized covering %d steps", rep.Applied, steps)
	return rep
}

func countSteps(s *Step) int {
	n := 1
	for _, c := range s.children {
		n += countSteps(c)
	}
	return n
}

// ---------------------------------------------------------------------------
// Pass 3: fan-out pre-sizing.

// CardHint is the live cardinality hint of one fan-out step: the last
// observed (or statically known) number of parts its split produced.
// Engines record after every split; consumers use it to size child-result
// buffers, queue reservations and remote shard batches up front. It is
// strictly an allocation hint — never a semantic input — so a stale or
// absent hint costs only an amortized reallocation.
type CardHint struct {
	v atomic.Int64
}

// Record stores an observed cardinality (negative values are ignored).
func (h *CardHint) Record(k int) {
	if h != nil && k >= 0 {
		h.v.Store(int64(k))
	}
}

// Get returns the hinted cardinality, or ok=false when nothing has been
// observed yet.
func (h *CardHint) Get() (int, bool) {
	if h == nil {
		return 0, false
	}
	v := h.v.Load()
	if v < 0 {
		return 0, false
	}
	return int(v), true
}

// cardHintPass attaches a hint slot to every fan-out step. OpFanFixed fans
// out into exactly len(children) parts, so its hint is seeded statically;
// OpFanOut and OpRecurse start unknown and are filled by the first split.
func cardHintPass(p *Program) PassReport {
	rep := PassReport{Name: "presize-fanout"}
	seeded := 0
	for _, s := range p.steps {
		switch s.op {
		case OpFanOut, OpFanFixed, OpRecurse:
			h := &CardHint{}
			h.v.Store(-1)
			if s.op == OpFanFixed {
				h.v.Store(int64(len(s.children)))
				seeded++
			}
			s.hint = h
			rep.Applied++
		}
	}
	rep.Detail = fmt.Sprintf("%d fan-out hint slots (%d statically seeded)", rep.Applied, seeded)
	return rep
}

// ---------------------------------------------------------------------------
// Pass 4: arenas (reporting only — the pools live on the FusedProgs).

func arenaReport(p *Program) PassReport {
	rep := PassReport{Name: "arena"}
	for _, s := range p.steps {
		if s.fused != nil {
			rep.Applied++
		}
	}
	rep.Detail = fmt.Sprintf("%d program-owned scratch pools provisioned", rep.Applied)
	return rep
}
