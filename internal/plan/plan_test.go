package plan

import (
	"strings"
	"sync"
	"testing"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

func fe(name string) *muscle.Muscle {
	return muscle.NewExecute(name, func(p any) (any, error) { return p, nil })
}

func fc(name string) *muscle.Muscle {
	return muscle.NewCondition(name, func(p any) (bool, error) { return false, nil })
}

func fs(name string) *muscle.Muscle {
	return muscle.NewSplit(name, func(p any) ([]any, error) { return []any{p}, nil })
}

func fm(name string) *muscle.Muscle {
	return muscle.NewMerge(name, func(ps []any) (any, error) { return ps[0], nil })
}

// everyKind is one tree containing all nine skeleton kinds.
func everyKind() *skel.Node {
	return skel.NewPipe(
		skel.NewSeq(fe("a")),
		skel.NewFarm(skel.NewSeq(fe("b"))),
		skel.NewFor(3, skel.NewSeq(fe("c"))),
		skel.NewWhile(fc("w"), skel.NewSeq(fe("d"))),
		skel.NewIf(fc("i"), skel.NewSeq(fe("t")), skel.NewSeq(fe("f"))),
		skel.NewMap(fs("ms"), skel.NewSeq(fe("m")), fm("mm")),
		skel.NewFork(fs("ks"), []*skel.Node{skel.NewSeq(fe("k0")), skel.NewSeq(fe("k1"))}, fm("km")),
		skel.NewDaC(fc("dc"), fs("ds"), skel.NewSeq(fe("dl")), fm("dm")),
	)
}

func TestCompileOpsAndSlots(t *testing.T) {
	nd := everyKind()
	p, err := Compile(nd)
	if err != nil {
		t.Fatal(err)
	}
	root := p.Root()
	if root.Op() != OpStages || root.Node() != nd || root.Kind() != skel.Pipe {
		t.Fatalf("root step: op=%v node=%p kind=%v", root.Op(), root.Node(), root.Kind())
	}
	wantOps := []Op{OpExec, OpWrap, OpRepeat, OpLoop, OpSelect, OpFanOut, OpFanFixed, OpRecurse}
	if len(root.Children()) != len(wantOps) {
		t.Fatalf("%d stages, want %d", len(root.Children()), len(wantOps))
	}
	for i, want := range wantOps {
		if got := root.Child(i).Op(); got != want {
			t.Fatalf("stage %d: op %v, want %v", i, got, want)
		}
	}
	if root.Child(0).Exec().Name() != "a" {
		t.Fatal("exec slot not resolved")
	}
	if st := root.Child(2); st.N() != 3 {
		t.Fatalf("repeat n=%d, want 3", st.N())
	}
	if st := root.Child(3); st.Cond().Name() != "w" {
		t.Fatal("loop cond slot not resolved")
	}
	if st := root.Child(5); st.Split().Name() != "ms" || st.Merge().Name() != "mm" {
		t.Fatal("fan-out split/merge slots not resolved")
	}
	if st := root.Child(7); st.Cond().Name() != "dc" || st.Split().Name() != "ds" || st.Merge().Name() != "dm" {
		t.Fatal("recurse slots not resolved")
	}
}

func TestCompileTracesAndIndexes(t *testing.T) {
	nd := everyKind()
	p, err := Compile(nd)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range p.Steps() {
		if st.Index() != i {
			t.Fatalf("step %d reports index %d", i, st.Index())
		}
		tr := st.Trace()
		if len(tr) == 0 || tr[len(tr)-1] != st.Node() || tr[0] != nd {
			t.Fatalf("step %d: malformed trace (len %d)", i, len(tr))
		}
		for _, c := range st.Children() {
			if len(c.Trace()) != len(tr)+1 {
				t.Fatalf("child trace len %d, want %d", len(c.Trace()), len(tr)+1)
			}
		}
		if got := p.StepFor(st.Node().ID()); got != st {
			t.Fatalf("StepFor(%v) = %v, want step %d", st.Node().ID(), got, i)
		}
	}
	if p.Len() != len(p.Steps()) {
		t.Fatal("Len disagrees with Steps")
	}
}

func TestCompileRejectsInvalidTree(t *testing.T) {
	// Constructors validate eagerly, so the only invalid tree reachable
	// through the public API is the nil skeleton.
	if _, err := Compile(nil); err == nil {
		t.Fatal("Compile accepted a nil tree")
	}
}

func TestOfCachesOnNode(t *testing.T) {
	nd := everyKind()
	p1, err := Of(nd)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Of(nd)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Of compiled twice for the same node")
	}
}

func TestOfConcurrentSingleProgram(t *testing.T) {
	nd := everyKind()
	const goroutines = 16
	progs := make([]*Program, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Of(nd)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent Of returned distinct programs")
		}
	}
}

// TestRewriteNeverObservesStalePlan: skel.Optimize builds fresh nodes, so a
// plan cached on the original root cannot leak into the rewritten tree. A
// subtree reused by the rewrite may legitimately keep its cached plan —
// nodes are immutable, so a per-node cache can never go stale.
func TestRewriteNeverObservesStalePlan(t *testing.T) {
	double := muscle.NewExecute("double", func(p any) (any, error) { return p.(int) * 2, nil })
	inc := muscle.NewExecute("inc", func(p any) (any, error) { return p.(int) + 1, nil })
	nd := skel.NewPipe(skel.NewSeq(double), skel.NewSeq(inc))

	before, err := Of(nd)
	if err != nil {
		t.Fatal(err)
	}
	if before.Len() != 3 { // pipe + 2 seqs
		t.Fatalf("original program has %d steps, want 3", before.Len())
	}

	opt := skel.Optimize(nd, skel.OptimizeOptions{FuseSeqPipes: true})
	if opt == nd {
		t.Fatal("fusion did not rewrite the tree")
	}
	after, err := Of(opt)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("rewritten tree shares the original's cached plan")
	}
	// The fused pipe is a single seq: its program must reflect the rewrite,
	// not the original structure.
	if after.Root().Op() != OpExec {
		t.Fatalf("optimized root op %v, want %v (fused seq)", after.Root().Op(), OpExec)
	}
	// The original's cache is untouched.
	again, err := Of(nd)
	if err != nil {
		t.Fatal(err)
	}
	if again != before || again.Len() != 3 {
		t.Fatal("original cached plan changed after rewrite")
	}
}

// TestRewriteReusedSubtreeKeepsValidPlan: when a rewrite reuses an
// untouched subtree node, that node's cached plan still describes exactly
// that subtree — caching is per-node and nodes are immutable.
func TestRewriteReusedSubtreeKeepsValidPlan(t *testing.T) {
	body := skel.NewMap(fs("s"), skel.NewSeq(fe("e")), fm("m"))
	sub, err := Of(body)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := skel.NewFarm(skel.NewFarm(body))
	opt := skel.Optimize(wrapped, skel.OptimizeOptions{})
	p, err := Of(opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root().Node() == wrapped {
		t.Fatal("optimize did not normalize the farm nest")
	}
	// Wherever body survived in the optimized tree, its own cached program
	// is unchanged and still rooted at body.
	if sub2, err := Of(body); err != nil || sub2 != sub || sub2.Node() != body {
		t.Fatalf("reused subtree plan changed: %v %v", sub2, err)
	}
}

func TestExtendTrace(t *testing.T) {
	a, b, c := skel.NewSeq(fe("a")), skel.NewSeq(fe("b")), skel.NewSeq(fe("c"))
	base := ExtendTrace(nil, a)
	t1 := ExtendTrace(base, b)
	t2 := ExtendTrace(base, c)
	if len(base) != 1 || base[0] != a {
		t.Fatalf("base trace %v", base)
	}
	if len(t1) != 2 || t1[1] != b || len(t2) != 2 || t2[1] != c {
		t.Fatalf("extended traces %v %v", t1, t2)
	}
	if base[0] != a {
		t.Fatal("ExtendTrace mutated its input")
	}
}

func TestDump(t *testing.T) {
	p, err := Of(everyKind())
	if err != nil {
		t.Fatal(err)
	}
	d := p.Dump()
	for _, want := range []string{"stages", "exec", "wrap", "repeat", "loop", "select",
		"fan-out", "fan-fixed", "recurse", "n=3", "fc=w", "fs=ms", "fe=a", "fm=mm"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Dump missing %q:\n%s", want, d)
		}
	}
	if !strings.HasPrefix(d, "program ") {
		t.Fatalf("Dump header: %q", d)
	}
}
