package statemachine

import (
	"fmt"
	"strings"
	"time"
)

// Dump renders the live activation tree as indented text — the debugging
// view of what the state machines currently know. Times are printed
// relative to start in the given unit.
func (tr *Tracker) Dump(start time.Time, unit time.Duration) string {
	var b strings.Builder
	tr.WithTree(func(roots []*Instance) {
		for _, r := range roots {
			dumpInst(&b, r, start, unit, 0)
		}
	})
	if b.Len() == 0 {
		return "(no activations)\n"
	}
	return b.String()
}

func dumpInst(b *strings.Builder, in *Instance, start time.Time, unit time.Duration, depth int) {
	indent := strings.Repeat("  ", depth)
	state := "running"
	if in.Done {
		state = "done"
	}
	fmt.Fprintf(b, "%s%s#%d [%s", indent, in.Kind, in.Index, state)
	fmt.Fprintf(b, " t=%s", rel(in.StartTime, start, unit))
	if in.Done {
		fmt.Fprintf(b, "..%s", rel(in.EndTime, start, unit))
	}
	if in.ActualCard >= 0 {
		fmt.Fprintf(b, " card=%d", in.ActualCard)
	}
	if len(in.Conds) > 0 {
		fmt.Fprintf(b, " conds=%d", len(in.Conds))
	}
	if in.Split.Started {
		fmt.Fprintf(b, " split=%s", recStr(in.Split, start, unit))
	}
	if in.Merge.Started {
		fmt.Fprintf(b, " merge=%s", recStr(in.Merge, start, unit))
	}
	b.WriteString("]\n")
	for _, c := range in.Children {
		dumpInst(b, c, start, unit, depth+1)
	}
}

func recStr(r ActivityRec, start time.Time, unit time.Duration) string {
	if !r.Ended {
		return rel(r.Start, start, unit) + "..?"
	}
	return rel(r.Start, start, unit) + ".." + rel(r.End, start, unit)
}

func rel(t, start time.Time, unit time.Duration) string {
	if t.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%.4g", float64(t.Sub(start))/float64(unit))
}
