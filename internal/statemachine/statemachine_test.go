package statemachine

import (
	"strings"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

func u(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

type world struct {
	tr  *Tracker
	est *estimate.Registry
}

func newWorld() *world {
	est := estimate.NewRegistry(nil)
	return &world{tr: NewTracker(est), est: est}
}

func (w *world) emit(nd *skel.Node, idx, parent int64, when event.When, where event.Where, ms int, mod func(*event.Event)) {
	e := &event.Event{
		Node: nd, Trace: []*skel.Node{nd}, Index: idx, Parent: parent,
		When: when, Where: where, Time: clock.Epoch.Add(u(ms)),
	}
	if mod != nil {
		mod(e)
	}
	w.tr.Listener().Handler(e)
}

// TestSeqStateMachine is the paper's Fig. 3: t(fe) updated on seq@a(i) with
// the elapsed time since seq@b(i).
func TestSeqStateMachine(t *testing.T) {
	w := newWorld()
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	nd := skel.NewSeq(fe)
	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 100, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Skeleton, 140, nil)
	d, ok := w.est.Duration(fe.ID())
	if !ok || d != u(40) {
		t.Fatalf("t(fe) = %v/%v, want 40ms", d, ok)
	}
	root := w.tr.Root()
	if root == nil || !root.Done || root.EndTime.Sub(root.StartTime) != u(40) {
		t.Fatalf("instance not closed correctly: %+v", root)
	}
	// Second activation: EWMA(0.5) blends 40 and 60 -> 50.
	w.emit(nd, 1, event.NoParent, event.Before, event.Skeleton, 200, nil)
	w.emit(nd, 1, event.NoParent, event.After, event.Skeleton, 260, nil)
	if d, _ := w.est.Duration(fe.ID()); d != u(50) {
		t.Fatalf("t(fe) after 2 runs = %v, want 50ms", d)
	}
}

// TestMapStateMachine is the paper's Fig. 4: t(fs) and |fs| on map@as,
// t(fm) on map@am, with children tracked in between.
func TestMapStateMachine(t *testing.T) {
	w := newWorld()
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)
	seq := nd.Children()[0]

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Split, 0, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Split, 10, func(e *event.Event) { e.Card = 2 })
	w.emit(seq, 1, 0, event.Before, event.Skeleton, 10, nil)
	w.emit(seq, 1, 0, event.After, event.Skeleton, 25, nil)
	w.emit(seq, 2, 0, event.Before, event.Skeleton, 25, nil)
	w.emit(seq, 2, 0, event.After, event.Skeleton, 40, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Merge, 40, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Merge, 45, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Skeleton, 45, nil)

	if d, _ := w.est.Duration(fs.ID()); d != u(10) {
		t.Fatalf("t(fs) = %v", d)
	}
	if c, _ := w.est.Card(fs.ID()); c != 2 {
		t.Fatalf("|fs| = %v", c)
	}
	if d, _ := w.est.Duration(fm.ID()); d != u(5) {
		t.Fatalf("t(fm) = %v", d)
	}
	if d, _ := w.est.Duration(fe.ID()); d != u(15) {
		t.Fatalf("t(fe) = %v", d)
	}
	root := w.tr.Root()
	if root.ActualCard != 2 || len(root.Children) != 2 || !root.Done {
		t.Fatalf("map instance wrong: card=%d children=%d done=%v",
			root.ActualCard, len(root.Children), root.Done)
	}
	if !root.Split.Ended || root.Split.Duration() != u(10) {
		t.Fatalf("split record wrong: %+v", root.Split)
	}
	if !root.Merge.Ended || root.Merge.Duration() != u(5) {
		t.Fatalf("merge record wrong: %+v", root.Merge)
	}
}

// TestWhileCardinality: |fc| for while is the number of true verdicts.
func TestWhileCardinality(t *testing.T) {
	w := newWorld()
	fc := muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	nd := skel.NewWhile(fc, skel.NewSeq(fe))
	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	at := 0
	for iter := 0; iter < 3; iter++ { // three true verdicts
		w.emit(nd, 0, event.NoParent, event.Before, event.Condition, at, func(e *event.Event) { e.Iter = iter })
		at += 2
		w.emit(nd, 0, event.NoParent, event.After, event.Condition, at, func(e *event.Event) { e.Cond = true; e.Iter = iter })
		w.emit(nd.Children()[0], int64(iter+1), 0, event.Before, event.Skeleton, at, nil)
		at += 5
		w.emit(nd.Children()[0], int64(iter+1), 0, event.After, event.Skeleton, at, nil)
	}
	w.emit(nd, 0, event.NoParent, event.Before, event.Condition, at, func(e *event.Event) { e.Iter = 3 })
	at += 2
	w.emit(nd, 0, event.NoParent, event.After, event.Condition, at, func(e *event.Event) { e.Cond = false; e.Iter = 3 })
	w.emit(nd, 0, event.NoParent, event.After, event.Skeleton, at, nil)

	if c, ok := w.est.Card(fc.ID()); !ok || c != 3 {
		t.Fatalf("|fc| = %v/%v, want 3", c, ok)
	}
	if d, _ := w.est.Duration(fc.ID()); d != u(2) {
		t.Fatalf("t(fc) = %v, want 2ms", d)
	}
	root := w.tr.Root()
	if !root.CondClosed || root.TrueIters != 3 || len(root.Conds) != 4 {
		t.Fatalf("while instance: %+v", root)
	}
}

// TestDaCDepthCardinality: |fc| for d&c is the recursion depth at the
// false verdict.
func TestDaCDepthCardinality(t *testing.T) {
	w := newWorld()
	fc := muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)
	// A depth-2 leaf activation.
	w.emit(nd, 5, 3, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 5, 3, event.Before, event.Condition, 0, func(e *event.Event) { e.Iter = 2 })
	w.emit(nd, 5, 3, event.After, event.Condition, 1, func(e *event.Event) { e.Cond = false; e.Iter = 2 })
	if c, ok := w.est.Card(fc.ID()); !ok || c != 2 {
		t.Fatalf("|fc| = %v/%v, want depth 2", c, ok)
	}
}

// TestBranchRecoveredFromNestedEvents: a child activation claims the branch
// announced by the preceding NestedSkel/Before on the same worker.
func TestBranchRecoveredFromNestedEvents(t *testing.T) {
	w := newWorld()
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)
	seq := nd.Children()[0]

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Split, 0, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Split, 1, func(e *event.Event) { e.Card = 2 })
	// Branch 1 starts first (out of order), on worker 3.
	w.emit(nd, 0, event.NoParent, event.Before, event.NestedSkel, 1, func(e *event.Event) { e.Branch = 1; e.Worker = 3 })
	w.emit(seq, 2, 0, event.Before, event.Skeleton, 1, func(e *event.Event) { e.Worker = 3 })
	if got := w.tr.Root().Children[0].Branch; got != 1 {
		t.Fatalf("child branch = %d, want 1", got)
	}
}

// TestErrEventsIgnored: events flagged with an error do not pollute the
// estimates.
func TestErrEventsIgnored(t *testing.T) {
	w := newWorld()
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	nd := skel.NewSeq(fe)
	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Skeleton, 99, func(e *event.Event) {
		e.Err = errFake
	})
	if _, ok := w.est.Duration(fe.ID()); ok {
		t.Fatal("failed muscle contributed a duration")
	}
}

var errFake = &exec.MuscleError{}

// TestDump renders the activation tree.
func TestDump(t *testing.T) {
	w := newWorld()
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)
	if got := w.tr.Dump(clock.Epoch, time.Millisecond); got != "(no activations)\n" {
		t.Fatalf("empty dump: %q", got)
	}
	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Split, 0, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Split, 10, func(e *event.Event) { e.Card = 2 })
	w.emit(nd.Children()[0], 1, 0, event.Before, event.Skeleton, 10, nil)
	out := w.tr.Dump(clock.Epoch, time.Millisecond)
	for _, want := range []string{"map#0", "card=2", "split=0..10", "seq#1", "running"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump lacks %q:\n%s", want, out)
		}
	}
}

// TestTrackerDrivenByRealEngine wires a tracker to the real pool and checks
// estimates appear for every muscle of a nested program.
func TestTrackerDrivenByRealEngine(t *testing.T) {
	est := estimate.NewRegistry(nil)
	tr := NewTracker(est)
	reg := event.NewRegistry()
	reg.Add(tr.Listener())

	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		return []any{1, 2, 3}, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) {
		time.Sleep(time.Millisecond)
		return p, nil
	})
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) { return len(ps), nil })
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)

	pool := exec.NewPool(clock.System, 2, 0)
	defer pool.Close()
	root := exec.NewRoot(pool, reg, nil)
	if _, err := root.Start(nd, 0).Get(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*muscle.Muscle{fs, fe, fm} {
		if _, ok := est.Duration(m.ID()); !ok {
			t.Errorf("no duration for %s", m)
		}
	}
	if c, ok := est.Card(fs.ID()); !ok || c != 3 {
		t.Fatalf("|fs| = %v/%v", c, ok)
	}
	if fed, _ := est.Duration(fe.ID()); fed < 500*time.Microsecond {
		t.Fatalf("t(fe) = %v implausibly small", fed)
	}
	if w := tr.InstanceCount(); w != 4 { // map + 3 seqs
		t.Fatalf("instances = %d, want 4", w)
	}
}

// TestRetryResetsStartWithoutDuplicating: a retried attempt re-raises
// seq@b(i) for the same index. The tracker must reset the instance's start
// time (so only the final attempt is timed) instead of opening a second
// instance, and the estimator must see the final attempt's duration only.
func TestRetryResetsStartWithoutDuplicating(t *testing.T) {
	w := newWorld()
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	nd := skel.NewSeq(fe)

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 100, nil)
	// Attempt 1 fails at t=130 and is retried.
	w.emit(nd, 0, event.NoParent, event.After, event.Retry, 130, func(e *event.Event) {
		e.Err = exec.ErrMuscleTimeout
		e.Iter = 1
	})
	// Attempt 2 re-raises seq@b(i) at t=150 and succeeds at t=170.
	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 150, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Skeleton, 170, nil)

	w.tr.mu.Lock()
	n := len(w.tr.instances)
	w.tr.mu.Unlock()
	if n != 1 {
		t.Fatalf("tracker holds %d instances, want 1 (retry must not duplicate)", n)
	}
	root := w.tr.Root()
	if !root.Done || root.StartTime != clock.Epoch.Add(u(150)) {
		t.Fatalf("instance = done=%v start=%v, want done with start reset to t=150", root.Done, root.StartTime)
	}
	if d, ok := w.est.Duration(fe.ID()); !ok || d != u(20) {
		t.Fatalf("t(fe) = %v/%v, want 20ms (final attempt only)", d, ok)
	}
	if n := w.est.DurationObservations(fe.ID()); n != 1 {
		t.Fatalf("%d duration observations, want 1", n)
	}
}

// TestFaultClosesInstance: a terminal fault event marks the activation done
// so the predictor stops counting it as running work.
func TestFaultClosesInstance(t *testing.T) {
	w := newWorld()
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	nd := skel.NewSeq(fe)

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 100, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Fault, 140, func(e *event.Event) {
		e.Err = exec.ErrMuscleTimeout
	})

	root := w.tr.Root()
	if root == nil || !root.Done || root.EndTime != clock.Epoch.Add(u(140)) {
		t.Fatalf("faulted instance not closed: %+v", root)
	}
	// The failed activation must not have fed the estimator.
	if _, ok := w.est.Duration(fe.ID()); ok {
		t.Fatal("faulted activation polluted the duration estimate")
	}
}
