// Package statemachine implements the event-driven state machines of the
// paper's §4 (Fig. 3 for Seq, Fig. 4 for Map, and the analogous machines
// for pipe/farm/for/while/fork/if/d&c). Registered as an event listener on
// an execution, a Tracker:
//
//  1. updates the t(m) and |m| estimates on every muscle completion, using
//     the paper's formula t(m) ← ρ·(now-start) + (1-ρ)·t(m); and
//  2. maintains the dynamic activation tree (which skeleton activations
//     exist, which of their muscles have actually started/finished and
//     when) that the ADG builder turns into an Activity Dependency Graph.
//
// The paper's SMs keyed transitions on the event index i; here each
// activation index maps to one Instance and the events of that index drive
// its state.
package statemachine

import (
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/skel"
)

// ActivityRec is the actual execution record of one muscle invocation.
type ActivityRec struct {
	Start   time.Time
	End     time.Time
	Started bool
	Ended   bool
	// Iter disambiguates repeated invocations (while-condition checks,
	// d&c condition at each level).
	Iter int
}

// Duration returns the measured execution time (zero unless Ended).
func (a ActivityRec) Duration() time.Duration {
	if !a.Started || !a.Ended {
		return 0
	}
	return a.End.Sub(a.Start)
}

// Instance is one live skeleton activation: the paper's state machine
// instance for index Index, plus the actual timing knowledge accumulated so
// far. Fields are only written by the Tracker; readers must hold the
// Tracker's lock (see Tracker.WithTree).
type Instance struct {
	Node   *skel.Node
	Kind   skel.Kind
	Index  int64
	Parent int64

	// Started/Done bracket the whole activation (Skeleton Before/After).
	Started   bool
	StartTime time.Time
	Done      bool
	EndTime   time.Time

	// Exec is the seq execute muscle record.
	Exec ActivityRec
	// Split / Merge are the map/fork/d&c muscle records (one each per
	// activation).
	Split ActivityRec
	Merge ActivityRec
	// Conds are condition-muscle invocations in order (while: one per
	// iteration check; if and d&c: a single entry).
	Conds []ActivityRec

	// ActualCard is the split cardinality once the split completed, else -1.
	ActualCard int
	// CondClosed is set when a while/d&c condition returned false (the
	// iteration count is then exact, not an estimate).
	CondClosed bool
	// TrueIters is the number of true condition verdicts seen (while).
	TrueIters int
	// Depth is the d&c recursion depth of this activation (recovered from
	// its condition events).
	Depth int
	// Branch is the structural slot in the parent (fork branch, pipe
	// stage, if branch, map sub-problem index).
	Branch int
	// Iter is the iteration slot in the parent (while/for body number).
	Iter int

	// Children are nested activations in creation order.
	Children []*Instance
}

// Tracker listens to one execution's events and maintains the activation
// tree. Create one per Root, register via Listener(), and hand it to the
// ADG builder.
type Tracker struct {
	est *estimate.Registry

	// ver counts mutations of the activation tree (instance creation,
	// completion, muscle records). pendingBranch bookkeeping does not bump
	// it: a pending slot only matters once the child's Skeleton/Before
	// arrives, which bumps. The counter only advances, so two equal reads
	// bracket an unchanged tree.
	ver atomic.Uint64

	mu        sync.Mutex
	instances map[int64]*Instance
	roots     []*Instance
	// observed accumulates the total duration of completed muscle
	// invocations — the "work already done" term of the cheap work/span
	// WCT predictor.
	observed time.Duration
	// pendingBranch maps a worker id to the (parent index, branch, iter)
	// announced by the last NestedSkel/Before event on that worker; the
	// next Skeleton/Before on the same worker consumes it. This is how the
	// structural slot of a child activation is recovered, since the
	// child's own events do not carry it.
	pendingBranch map[int]pending
}

type pending struct {
	parent int64
	branch int
	iter   int
}

// NewTracker builds a tracker feeding est. est must not be nil.
func NewTracker(est *estimate.Registry) *Tracker {
	if est == nil {
		panic("statemachine: nil estimate registry")
	}
	return &Tracker{
		est:           est,
		instances:     make(map[int64]*Instance),
		pendingBranch: make(map[int]pending),
	}
}

// Estimates returns the estimate registry the tracker feeds.
func (tr *Tracker) Estimates() *estimate.Registry { return tr.est }

// Listener adapts the tracker to the event.Listener interface.
func (tr *Tracker) Listener() event.Listener {
	return event.Func(func(e *event.Event) any {
		tr.handle(e)
		return e.Param
	})
}

// WithTree runs fn with the activation roots under the tracker's lock. fn
// must not retain the instances after returning; the ADG builder copies
// what it needs.
func (tr *Tracker) WithTree(fn func(roots []*Instance)) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	fn(tr.roots)
}

// Root returns the first root activation (nil before the execution enters
// its outermost skeleton).
func (tr *Tracker) Root() *Instance {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.roots) == 0 {
		return nil
	}
	return tr.roots[0]
}

func (tr *Tracker) handle(e *event.Event) {
	if e.Err != nil {
		// Timing of failed muscle attempts is not knowledge — estimators
		// must only learn from successes. A terminal Fault still closes the
		// activation, so the ADG stops treating it as running work.
		if e.Where == event.Fault {
			tr.mu.Lock()
			if in := tr.inst(e); in != nil && !in.Done {
				in.Done = true
				in.EndTime = e.Time
				tr.ver.Add(1)
			}
			tr.mu.Unlock()
		}
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	switch e.Where {
	case event.Skeleton:
		tr.onSkeleton(e)
		tr.ver.Add(1)
	case event.Split:
		tr.onSplit(e)
		tr.ver.Add(1)
	case event.Merge:
		tr.onMerge(e)
		tr.ver.Add(1)
	case event.Condition:
		tr.onCondition(e)
		tr.ver.Add(1)
	case event.NestedSkel:
		tr.onNested(e)
	}
}

// Version returns the tree mutation counter. Read it before snapshotting
// the tree (WithTree); an equal read later proves the tree is unchanged in
// between, so results derived from the snapshot are still current.
func (tr *Tracker) Version() uint64 { return tr.ver.Load() }

func (tr *Tracker) inst(e *event.Event) *Instance {
	return tr.instances[e.Index]
}

func (tr *Tracker) onSkeleton(e *event.Event) {
	if e.When == event.Before {
		if in := tr.inst(e); in != nil {
			// A retry re-raised the activation's Before: restart its clock
			// so the estimator times only the succeeding attempt, and do
			// not duplicate the instance in the tree.
			in.StartTime = e.Time
			in.Done = false
			return
		}
		in := &Instance{
			Node:       e.Node,
			Kind:       e.Node.Kind(),
			Index:      e.Index,
			Parent:     e.Parent,
			Started:    true,
			StartTime:  e.Time,
			ActualCard: -1,
		}
		if p, ok := tr.pendingBranch[e.Worker]; ok && p.parent == e.Parent {
			in.Branch = p.branch
			in.Iter = p.iter
			delete(tr.pendingBranch, e.Worker)
		}
		tr.instances[e.Index] = in
		if parent, ok := tr.instances[e.Parent]; ok {
			parent.Children = append(parent.Children, in)
		} else {
			tr.roots = append(tr.roots, in)
		}
		return
	}
	in := tr.inst(e)
	if in == nil {
		return
	}
	in.Done = true
	in.EndTime = e.Time
	if in.Kind == skel.Seq {
		// Fig. 3: t(fe) ← ρ(now-eti) + (1-ρ)t(fe) on seq@a(i).
		in.Exec = ActivityRec{Start: in.StartTime, End: e.Time, Started: true, Ended: true}
		tr.est.ObserveDuration(in.Node.Exec().ID(), e.Time.Sub(in.StartTime))
		tr.observed += e.Time.Sub(in.StartTime)
	}
}

func (tr *Tracker) onSplit(e *event.Event) {
	in := tr.inst(e)
	if in == nil {
		return
	}
	if e.When == event.Before {
		in.Split.Start, in.Split.Started = e.Time, true
		return
	}
	// Fig. 4 I→S: t(fs) and |fs| updated on map@as(i, fsCard).
	in.Split.End, in.Split.Ended = e.Time, true
	in.ActualCard = e.Card
	fs := in.Node.Split()
	tr.est.ObserveDuration(fs.ID(), in.Split.Duration())
	tr.est.ObserveCard(fs.ID(), float64(e.Card))
	tr.observed += in.Split.Duration()
}

func (tr *Tracker) onMerge(e *event.Event) {
	in := tr.inst(e)
	if in == nil {
		return
	}
	if e.When == event.Before {
		in.Merge.Start, in.Merge.Started = e.Time, true
		return
	}
	// Fig. 4 M→F: t(fm) updated on map@am(i).
	in.Merge.End, in.Merge.Ended = e.Time, true
	tr.est.ObserveDuration(in.Node.Merge().ID(), in.Merge.Duration())
	tr.observed += in.Merge.Duration()
}

func (tr *Tracker) onCondition(e *event.Event) {
	in := tr.inst(e)
	if in == nil {
		return
	}
	if e.When == event.Before {
		if n := len(in.Conds); n > 0 && !in.Conds[n-1].Ended && in.Conds[n-1].Iter == e.Iter {
			// Retry of the same condition check: restart its clock.
			in.Conds[n-1].Start = e.Time
			return
		}
		in.Conds = append(in.Conds, ActivityRec{Start: e.Time, Started: true, Iter: e.Iter})
		return
	}
	if len(in.Conds) == 0 || in.Conds[len(in.Conds)-1].Ended {
		// After without Before (should not happen); synthesize.
		in.Conds = append(in.Conds, ActivityRec{Start: e.Time, Started: true, Iter: e.Iter})
	}
	rec := &in.Conds[len(in.Conds)-1]
	rec.End, rec.Ended = e.Time, true
	fc := in.Node.Cond()
	tr.est.ObserveDuration(fc.ID(), rec.Duration())
	tr.observed += rec.Duration()
	if in.Kind == skel.DaC {
		in.Depth = e.Iter
	}
	switch in.Kind {
	case skel.While:
		if e.Cond {
			in.TrueIters++
		} else {
			in.CondClosed = true
			// |fc| for while: how many times the condition held.
			tr.est.ObserveCard(fc.ID(), float64(in.TrueIters))
		}
	case skel.DaC:
		if !e.Cond {
			in.CondClosed = true
			// |fc| for d&c: the depth of the recursion tree (paper §4).
			tr.est.ObserveCard(fc.ID(), float64(e.Iter))
		}
	}
}

func (tr *Tracker) onNested(e *event.Event) {
	if e.When == event.Before {
		tr.pendingBranch[e.Worker] = pending{parent: e.Index, branch: e.Branch, iter: e.Iter}
		return
	}
	delete(tr.pendingBranch, e.Worker)
}

// InstanceCount returns the number of live activations tracked so far.
func (tr *Tracker) InstanceCount() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.instances)
}

// ObservedWork returns the accumulated duration of all completed muscle
// invocations of this execution.
func (tr *Tracker) ObservedWork() time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.observed
}
