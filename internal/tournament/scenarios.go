package tournament

// The scenario corpus. Each scenario builds deterministic virtual-time jobs
// from a seed and drives them under one adaptation policy:
//
//   - wordcount: the paper's tweet word-count map (paperexp) with seeded
//     duration jitter — the calibrated baseline workload.
//   - refine: a while-heavy iterative-refinement loop (While over a Map)
//     whose per-iteration cost drifts, so a policy must re-adapt mid-run.
//   - dacsort: a divide-and-conquer sort with skewed 1:3 splits — the
//     critical path hides on the big side, punishing over-eager decreases.
//   - bursty: a Poisson job stream (workload.OverloadPattern) of small map
//     jobs with per-job goals; stateful policies carry learning across jobs.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/metrics"
	"skandium/internal/muscle"
	"skandium/internal/paperexp"
	"skandium/internal/sim"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
	"skandium/internal/workload"
)

type scenario struct {
	name  string
	index int
	run   func(seed int64, run int, pol core.Policy) ([]Outcome, error)
}

func scenarios() []scenario {
	return []scenario{
		{name: "wordcount", index: 0, run: runWordcount},
		{name: "refine", index: 1, run: runRefine},
		{name: "dacsort", index: 2, run: runDacsort},
		{name: "bursty", index: 3, run: runBursty},
	}
}

// Names lists the scenario corpus in canonical order.
func Names() []string {
	all := scenarios()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.name
	}
	return out
}

func selectScenarios(names []string) ([]scenario, error) {
	all := scenarios()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]scenario{}
	for _, s := range all {
		byName[s.name] = s
	}
	var out []scenario
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("tournament: unknown scenario %q (have %v)", n, Names())
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out, nil
}

// job is one controller-driven simulator run.
type job struct {
	program *skel.Node
	input   any
	costs   sim.CostModel
	seedEst func(est *estimate.Registry)
	goal    time.Duration
	maxLP   int
}

func runJob(j job, pol core.Policy) (Outcome, error) {
	reg := event.NewRegistry()
	rec := metrics.NewRecorder()
	est := estimate.NewRegistry(nil)
	j.seedEst(est)
	tracker := statemachine.NewTracker(est)
	eng := sim.NewEngine(sim.Config{Events: reg, Costs: j.costs, LP: 1, MaxLP: j.maxLP, Gauge: rec.Gauge})
	rec.SetStart(eng.Now())
	ctl := core.NewController(core.Config{WCTGoal: j.goal, MaxLP: j.maxLP, Policy: pol},
		j.program, eng, est, tracker, eng.Clock())
	ctl.SetStart(eng.Now())
	core.Attach(reg, tracker, ctl)
	_, makespan, err := eng.Run(j.program, j.input)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Goal:        j.goal,
		Makespan:    makespan,
		LPSeconds:   lpSeconds(rec, makespan, 1),
		Adaptations: len(ctl.Decisions()),
	}, nil
}

// probe measures the program's makespan at a fixed LP with no controller.
func probe(program *skel.Node, input any, costs sim.CostModel, lp int) (time.Duration, error) {
	eng := sim.NewEngine(sim.Config{Costs: costs, LP: lp})
	_, d, err := eng.Run(program, input)
	return d, err
}

// goalBetween probes sequential work and unbounded span and places the WCT
// goal a seeded fraction of the way between them — always reachable, never
// trivial.
func goalBetween(program *skel.Node, input any, costs sim.CostModel, rng *rand.Rand) (time.Duration, error) {
	work, err := probe(program, input, costs, 1)
	if err != nil {
		return 0, err
	}
	span, err := probe(program, input, costs, 4096)
	if err != nil {
		return 0, err
	}
	frac := 0.3 + 0.3*rng.Float64()
	goal := span + time.Duration(float64(work-span)*frac)
	if goal <= 0 {
		goal = work
	}
	return goal, nil
}

// runWordcount is the paper's tweet word-count experiment under seeded
// duration jitter (±15%), goal 9.5s — Scenario 1 with a pluggable policy.
func runWordcount(seed int64, run int, pol core.Policy) ([]Outcome, error) {
	spec := paperexp.Spec{
		Goal:             9500 * time.Millisecond,
		AnalysisInterval: 100 * time.Millisecond,
		Jitter:           0.15,
		Seed:             seed*7919 + int64(run)*104729 + 1,
		Policy:           pol,
	}.Defaults()
	res, err := paperexp.Run(spec)
	if err != nil {
		return nil, err
	}
	return []Outcome{{
		Goal:        spec.Goal,
		Makespan:    res.Makespan,
		LPSeconds:   lpSeconds(res.Recorder, res.Makespan, spec.InitialLP),
		Adaptations: len(res.Decisions),
	}}, nil
}

// runRefine builds While(iters, Map(parts)) where each iteration's exec
// cost is drawn per-level from the run's RNG, so the prediction drifts and
// the controller must keep re-adapting.
func runRefine(seed int64, run int, pol core.Policy) ([]Outcome, error) {
	rng := rand.New(rand.NewSource(seed*31 + int64(run)*1009 + 7))
	iters := 5 + rng.Intn(4)
	const parts = 8

	fc := muscle.NewCondition("more", func(p any) (bool, error) { return p.(int) > 0, nil })
	fs := muscle.NewSplit("scatter", func(p any) ([]any, error) {
		out := make([]any, parts)
		for i := range out {
			out[i] = p.(int)
		}
		return out, nil
	})
	fe := muscle.NewExecute("refine", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("gather", func(ps []any) (any, error) { return ps[0].(int) - 1, nil })
	program := skel.NewWhile(fc, skel.NewMap(fs, skel.NewSeq(fe), fm))

	// Per-iteration exec cost: 20-60ms, drifting level to level.
	execCost := make(map[int]time.Duration, iters)
	var sum time.Duration
	for n := 1; n <= iters; n++ {
		execCost[n] = time.Duration(20+rng.Intn(41)) * time.Millisecond
		sum += execCost[n]
	}
	costs := sim.CostFunc(func(m *muscle.Muscle, param any) time.Duration {
		switch m.ID() {
		case fc.ID():
			return time.Millisecond
		case fs.ID(), fm.ID():
			return 4 * time.Millisecond
		case fe.ID():
			return execCost[param.(int)]
		}
		return 0
	})
	seedEst := func(est *estimate.Registry) {
		est.InitDuration(fc.ID(), time.Millisecond)
		est.InitDuration(fs.ID(), 4*time.Millisecond)
		est.InitDuration(fm.ID(), 4*time.Millisecond)
		est.InitDuration(fe.ID(), sum/time.Duration(iters))
		est.InitCard(fs.ID(), parts)
		est.InitCard(fc.ID(), float64(iters))
	}
	goal, err := goalBetween(program, iters, costs, rng)
	if err != nil {
		return nil, err
	}
	o, err := runJob(job{program: program, input: iters, costs: costs,
		seedEst: seedEst, goal: goal, maxLP: 16}, pol)
	if err != nil {
		return nil, err
	}
	return []Outcome{o}, nil
}

// runDacsort builds a divide-and-conquer "sort" whose split is skewed 1:3,
// so the critical path lives on the big side and naive halving decreases
// miss the goal.
func runDacsort(seed int64, run int, pol core.Policy) ([]Outcome, error) {
	rng := rand.New(rand.NewSource(seed*53 + int64(run)*2003 + 11))
	size := 192 + rng.Intn(128)
	const threshold = 24
	perUnit := time.Duration(300+rng.Intn(300)) * time.Microsecond

	fc := muscle.NewCondition("big", func(p any) (bool, error) { return p.(int) > threshold, nil })
	fs := muscle.NewSplit("skew", func(p any) ([]any, error) {
		n := p.(int)
		return []any{n / 4, n - n/4}, nil
	})
	fe := muscle.NewExecute("sortleaf", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("join", func(ps []any) (any, error) {
		return ps[0].(int) + ps[1].(int), nil
	})
	program := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)

	costs := sim.CostFunc(func(m *muscle.Muscle, param any) time.Duration {
		switch m.ID() {
		case fc.ID():
			return 500 * time.Microsecond
		case fs.ID(), fm.ID():
			return 2 * time.Millisecond
		case fe.ID():
			return time.Duration(param.(int)) * perUnit
		}
		return 0
	})
	seedEst := func(est *estimate.Registry) {
		est.InitDuration(fc.ID(), 500*time.Microsecond)
		est.InitDuration(fs.ID(), 2*time.Millisecond)
		est.InitDuration(fm.ID(), 2*time.Millisecond)
		est.InitDuration(fe.ID(), time.Duration(threshold/2)*perUnit)
		est.InitCard(fs.ID(), 2)
		est.InitCard(fc.ID(), 6) // ~recursion depth along the skewed side
	}
	goal, err := goalBetween(program, size, costs, rng)
	if err != nil {
		return nil, err
	}
	o, err := runJob(job{program: program, input: size, costs: costs,
		seedEst: seedEst, goal: goal, maxLP: 16}, pol)
	if err != nil {
		return nil, err
	}
	return []Outcome{o}, nil
}

// burstyJobs caps how many arrivals each bursty run replays.
const burstyJobs = 8

// runBursty replays a seeded Poisson arrival schedule as a sequence of
// small map jobs, each with the generator's per-job WCT goal. The policy
// instance persists across the stream, so learning policies amortize
// exploration over the burst.
func runBursty(seed int64, run int, pol core.Policy) ([]Outcome, error) {
	pat := workload.OverloadPattern{
		Seed:       seed*131 + int64(run)*17 + 3,
		Duration:   3 * time.Second,
		BurstStart: time.Second,
		BurstEnd:   2 * time.Second,
		Tenants: []workload.TenantLoad{
			{Name: "t0", Weight: 1, Rate: 2, BurstRate: 8, GoalFrac: 1},
		},
		MeanWork:  400 * time.Millisecond,
		MaxWantLP: 4,
	}
	arrivals := pat.Arrivals()
	if len(arrivals) > burstyJobs {
		arrivals = arrivals[:burstyJobs]
	}
	var outs []Outcome
	for _, a := range arrivals {
		const parts = 8
		fs := muscle.NewSplit("scatter", func(p any) ([]any, error) {
			out := make([]any, parts)
			for i := range out {
				out[i] = p.(int)
			}
			return out, nil
		})
		fe := muscle.NewExecute("work", func(p any) (any, error) { return p, nil })
		fm := muscle.NewMerge("gather", func(ps []any) (any, error) { return len(ps), nil })
		program := skel.NewMap(fs, skel.NewSeq(fe), fm)

		exec := a.Work / parts
		costs := sim.CostFunc(func(m *muscle.Muscle, _ any) time.Duration {
			switch m.ID() {
			case fs.ID(), fm.ID():
				return 2 * time.Millisecond
			case fe.ID():
				return exec
			}
			return 0
		})
		seedEst := func(est *estimate.Registry) {
			est.InitDuration(fs.ID(), 2*time.Millisecond)
			est.InitDuration(fm.ID(), 2*time.Millisecond)
			est.InitDuration(fe.ID(), exec)
			est.InitCard(fs.ID(), parts)
		}
		o, err := runJob(job{program: program, input: 1, costs: costs,
			seedEst: seedEst, goal: a.Goal, maxLP: 16}, pol)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}
