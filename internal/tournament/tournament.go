// Package tournament races every registered adaptation policy across a
// seeded scenario corpus in simulator virtual time and scores them into a
// reproducible league table. One policy instance serves all of a scenario's
// sequential runs, so stateful policies (hillclimb, bandit) carry what they
// learn from one job into the next — and the whole table reproduces
// byte-identically from the same seed.
package tournament

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skandium/internal/core"
	"skandium/internal/metrics"
)

// Config selects what to race.
type Config struct {
	// Seed drives every stochastic choice: scenario workloads, jitter, and
	// the policies' own perturbations.
	Seed int64
	// Runs is the number of jobs per (policy, scenario) pair; scenarios that
	// model job streams (bursty) may produce several outcomes per run.
	Runs int
	// Policies filters the registered policy names (empty = all).
	Policies []string
	// Scenarios filters the scenario names (empty = all).
	Scenarios []string
}

// Outcome is one job's result under one policy.
type Outcome struct {
	Goal     time.Duration
	Makespan time.Duration
	// LPSeconds integrates the LP lever over the run (worker-seconds of
	// reserved parallelism, the resource bill).
	LPSeconds float64
	// Adaptations counts controller LP decisions (churn).
	Adaptations int
}

// Hit reports whether the job met its WCT goal.
func (o Outcome) Hit() bool { return o.Makespan <= o.Goal }

// Overshoot is how far past the goal the job finished (0 when met).
func (o Outcome) Overshoot() time.Duration {
	if o.Makespan <= o.Goal {
		return 0
	}
	return o.Makespan - o.Goal
}

// Score aggregates one policy's outcomes on one scenario.
type Score struct {
	Scenario string
	Policy   string
	Jobs     int
	// HitRate is the fraction of jobs meeting their goal.
	HitRate float64
	// MeanOvershoot averages Overshoot over all jobs (virtual time).
	MeanOvershoot time.Duration
	// MeanLPSeconds averages the resource bill per job.
	MeanLPSeconds float64
	// MeanAdaptations averages LP-change churn per job.
	MeanAdaptations float64
	// MeanMakespan averages virtual wall-clock time per job.
	MeanMakespan time.Duration
}

// Report is a full tournament result.
type Report struct {
	Seed   int64
	Runs   int
	Scores []Score // grouped by scenario, ranked best first within each
}

// Run races the selected policies across the selected scenarios.
func Run(cfg Config) (*Report, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	pols := cfg.Policies
	if len(pols) == 0 {
		pols = core.Policies()
	}
	scens, err := selectScenarios(cfg.Scenarios)
	if err != nil {
		return nil, err
	}
	rep := &Report{Seed: cfg.Seed, Runs: cfg.Runs}
	for _, sc := range scens {
		var scores []Score
		for _, name := range pols {
			// One instance per (policy, scenario): stateful policies learn
			// across the scenario's sequential jobs. The seed folds in the
			// scenario index so no two scenarios share a perturbation stream.
			pol, err := core.NewPolicy(name, cfg.Seed*1000003+int64(sc.index))
			if err != nil {
				return nil, err
			}
			var outs []Outcome
			for run := 0; run < cfg.Runs; run++ {
				o, err := sc.run(cfg.Seed, run, pol)
				if err != nil {
					return nil, fmt.Errorf("scenario %s, policy %s, run %d: %w", sc.name, name, run, err)
				}
				outs = append(outs, o...)
			}
			scores = append(scores, aggregate(sc.name, name, outs))
		}
		rank(scores)
		rep.Scores = append(rep.Scores, scores...)
	}
	return rep, nil
}

func aggregate(scenario, policy string, outs []Outcome) Score {
	s := Score{Scenario: scenario, Policy: policy, Jobs: len(outs)}
	if len(outs) == 0 {
		return s
	}
	var hits int
	var overshoot time.Duration
	var lpSec, adapts float64
	var makespan time.Duration
	for _, o := range outs {
		if o.Hit() {
			hits++
		}
		overshoot += o.Overshoot()
		lpSec += o.LPSeconds
		adapts += float64(o.Adaptations)
		makespan += o.Makespan
	}
	n := len(outs)
	s.HitRate = float64(hits) / float64(n)
	s.MeanOvershoot = overshoot / time.Duration(n)
	s.MeanLPSeconds = lpSec / float64(n)
	s.MeanAdaptations = adapts / float64(n)
	s.MeanMakespan = makespan / time.Duration(n)
	return s
}

// rank orders a scenario's scores best first: goal-hit rate, then mean
// overshoot, then the resource bill, then churn, then name (a total,
// deterministic order).
func rank(scores []Score) {
	sort.SliceStable(scores, func(i, j int) bool {
		a, b := scores[i], scores[j]
		if a.HitRate != b.HitRate {
			return a.HitRate > b.HitRate
		}
		if a.MeanOvershoot != b.MeanOvershoot {
			return a.MeanOvershoot < b.MeanOvershoot
		}
		if a.MeanLPSeconds != b.MeanLPSeconds {
			return a.MeanLPSeconds < b.MeanLPSeconds
		}
		if a.MeanAdaptations != b.MeanAdaptations {
			return a.MeanAdaptations < b.MeanAdaptations
		}
		return a.Policy < b.Policy
	})
}

// Table renders the league table as GitHub markdown, one section per
// scenario, ranked best first. The output is byte-stable for a given seed.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Policy tournament (seed %d, %d runs/scenario)\n", r.Seed, r.Runs)
	last := ""
	for _, s := range r.Scores {
		if s.Scenario != last {
			last = s.Scenario
			fmt.Fprintf(&b, "\n### %s\n\n", s.Scenario)
			b.WriteString("| # | policy | goal-hit | mean overshoot | LP·s/job | adapts/job |\n")
			b.WriteString("|---|--------|----------|----------------|----------|------------|\n")
		}
		rankNo := 1
		for _, t := range r.Scores {
			if t.Scenario == s.Scenario {
				if t.Policy == s.Policy {
					break
				}
				rankNo++
			}
		}
		fmt.Fprintf(&b, "| %d | %s | %.0f%% | %s | %.2f | %.1f |\n",
			rankNo, s.Policy, 100*s.HitRate, fmtMS(s.MeanOvershoot),
			s.MeanLPSeconds, s.MeanAdaptations)
	}
	return b.String()
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}

// BenchLines renders the report as `go test -bench`-style lines that
// cmd/benchjson parses, one per (scenario, policy). All custom units are
// lower-is-better so the benchjson regression gate points the right way:
// goal_miss_rate (1 − hit rate), overshoot_ms, lp_seconds, lp_changes.
// ns/op carries the mean virtual makespan.
func (r *Report) BenchLines() string {
	var b strings.Builder
	for _, s := range r.Scores {
		fmt.Fprintf(&b, "BenchmarkTournament/%s/%s 1 %d ns/op %.4f goal_miss_rate %.2f overshoot_ms %.2f lp_seconds %.2f lp_changes\n",
			s.Scenario, s.Policy, s.MeanMakespan.Nanoseconds(), 1-s.HitRate,
			float64(s.MeanOvershoot)/float64(time.Millisecond),
			s.MeanLPSeconds, s.MeanAdaptations)
	}
	return b.String()
}

// lpSeconds integrates the recorder's LP step series from the run start to
// its makespan, in worker-seconds. lp0 is the LP before the first sample.
func lpSeconds(rec *metrics.Recorder, makespan time.Duration, lp0 int) float64 {
	endMS := float64(makespan) / float64(time.Millisecond)
	lp, t, total := float64(lp0), 0.0, 0.0
	for _, p := range rec.LPSeries(time.Millisecond) {
		if p.T > t {
			total += lp * (p.T - t)
			t = p.T
		}
		lp = float64(p.V)
	}
	if endMS > t {
		total += lp * (endMS - t)
	}
	return total / 1000
}
