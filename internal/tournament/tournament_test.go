package tournament

import (
	"reflect"
	"strings"
	"testing"
)

// TestTournamentReproducible runs the full tournament twice from the same
// seed and requires byte-identical league tables and bench lines — the
// reproducibility contract EXPERIMENTS.md and BENCH_9.json rely on. CI runs
// this under -race, so it also proves the harness shares no policy state
// across goroutines.
func TestTournamentReproducible(t *testing.T) {
	cfg := Config{Seed: 1, Runs: 2}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ between identical runs:\n%v\n%v", a, b)
	}
	if a.Table() != b.Table() {
		t.Fatalf("league tables differ:\n%s\n%s", a.Table(), b.Table())
	}
	if a.BenchLines() != b.BenchLines() {
		t.Fatalf("bench lines differ:\n%s\n%s", a.BenchLines(), b.BenchLines())
	}
}

// TestTournamentSeedMatters guards against a harness that ignores its seed
// (everything would trivially "reproduce").
func TestTournamentSeedMatters(t *testing.T) {
	a, err := Run(Config{Seed: 1, Runs: 1, Scenarios: []string{"refine"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2, Runs: 1, Scenarios: []string{"refine"}})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Scores, b.Scores) {
		t.Fatal("different seeds produced identical scores: seed is not wired through")
	}
}

// TestTournamentCoversMatrix checks every (scenario, policy) pair scored,
// every scenario produced adaptation work for at least one policy, and the
// filters select correctly.
func TestTournamentCoversMatrix(t *testing.T) {
	rep, err := Run(Config{Seed: 3, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	perScenario := map[string]int{}
	adapts := map[string]float64{}
	for _, s := range rep.Scores {
		perScenario[s.Scenario]++
		adapts[s.Scenario] += s.MeanAdaptations
		if s.Jobs == 0 {
			t.Errorf("%s/%s scored zero jobs", s.Scenario, s.Policy)
		}
	}
	if len(perScenario) != len(Names()) {
		t.Fatalf("scenarios covered = %v, want %v", perScenario, Names())
	}
	for name, n := range perScenario {
		if n < 2 {
			t.Errorf("scenario %s raced only %d policies", name, n)
		}
		if adapts[name] == 0 {
			t.Errorf("scenario %s produced no adaptations under any policy: vacuous", name)
		}
	}

	sub, err := Run(Config{Seed: 3, Runs: 1,
		Policies: []string{"paper", "costaware"}, Scenarios: []string{"dacsort"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Scores) != 2 {
		t.Fatalf("filtered run scored %d rows, want 2", len(sub.Scores))
	}
	for _, s := range sub.Scores {
		if s.Scenario != "dacsort" {
			t.Errorf("filtered run leaked scenario %s", s.Scenario)
		}
	}

	if _, err := Run(Config{Scenarios: []string{"nope"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Run(Config{Policies: []string{"nope"}}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestBenchLinesParseable sanity-checks the bench output shape: one line
// per score, value/unit pairs, all custom units lower-is-better.
func TestBenchLinesParseable(t *testing.T) {
	rep, err := Run(Config{Seed: 1, Runs: 1, Scenarios: []string{"bursty"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(rep.BenchLines()), "\n")
	if len(lines) != len(rep.Scores) {
		t.Fatalf("%d bench lines for %d scores", len(lines), len(rep.Scores))
	}
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if !strings.HasPrefix(fields[0], "BenchmarkTournament/") {
			t.Fatalf("bad bench name in %q", ln)
		}
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Fatalf("odd field count in %q", ln)
		}
		for _, unit := range []string{"ns/op", "goal_miss_rate", "overshoot_ms", "lp_seconds", "lp_changes"} {
			if !strings.Contains(ln, " "+unit) {
				t.Fatalf("missing unit %s in %q", unit, ln)
			}
		}
	}
}
