package paperexp

import (
	"testing"
	"time"

	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
	"skandium/internal/workload"
)

// TestRealEngineScenario runs the paper's workload shape on the real
// goroutine engine with sleep-calibrated muscles at 1 paper-second = 4 real
// milliseconds (full run ≈ 50 ms). Sleep muscles parallelize even on one
// CPU, so the controller's adaptation is observable end to end outside the
// simulator. Only the qualitative shape is asserted: adaptation happened
// after the first merge, the run beat the sequential time and met a
// generous goal.
func TestRealEngineScenario(t *testing.T) {
	const scale = 4 * time.Millisecond // one paper-second
	corpus := workload.Generate(workload.GenConfig{Tweets: 700, Seed: 42})
	total := len(corpus.Tweets)

	sleepFor := func(d time.Duration) {
		if d > 0 {
			time.Sleep(d)
		}
	}
	split1 := time.Duration(6.4 * float64(scale))
	split2 := split1 / 7
	tiny := time.Duration(0.04 * float64(scale))

	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		c := p.(workload.Chunk)
		parts := 5
		if c.Len() < total {
			parts = 7
			sleepFor(split2)
		} else {
			sleepFor(split1)
		}
		chunks := workload.SplitChunk(c, parts)
		out := make([]any, len(chunks))
		for i, ch := range chunks {
			out[i] = ch
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) {
		sleepFor(tiny)
		return workload.CountChunk(p.(workload.Chunk)), nil
	})
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) {
		sleepFor(tiny)
		parts := make([]workload.Counts, len(ps))
		for i, p := range ps {
			parts[i] = p.(workload.Counts)
		}
		return workload.MergeCounts(parts), nil
	})
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	program := skel.NewMap(fs, inner, fm)

	// Measure the true sequential baseline first: time.Sleep granularity
	// inflates sub-millisecond muscles, so the analytic 12.6×scale figure
	// underestimates real elapsed time.
	basePool := exec.NewPool(nil, 1, 1)
	baseStart := time.Now()
	full0 := workload.Chunk{Corpus: corpus, Lo: 0, Hi: total}
	if _, err := exec.NewRoot(basePool, nil, nil).Start(program, full0).Get(); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(baseStart)
	basePool.Close()

	// Goal: 60% of the measured sequential time — unreachable at LP 1,
	// comfortably reachable with parallel branches.
	goal := baseline * 6 / 10

	pool := exec.NewPool(nil, 1, 24)
	defer pool.Close()
	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	ctl := core.NewController(core.Config{
		WCTGoal:  goal,
		MaxLP:    24,
		Increase: core.IncreaseMinimal,
	}, program, pool, est, tracker, nil)
	core.Attach(reg, tracker, ctl)

	start := time.Now()
	root := exec.NewRoot(pool, reg, nil)
	ctl.SetStart(time.Now())
	full := workload.Chunk{Corpus: corpus, Lo: 0, Hi: total}
	res, err := root.Start(program, full).Get()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.(workload.Counts)
	if counts.Total() == 0 {
		t.Fatal("empty counts")
	}
	ds := ctl.Decisions()
	if len(ds) == 0 {
		t.Fatal("controller never adapted on the real engine")
	}
	// The first adaptation must come after the first split completed (no
	// estimates before that) — i.e. not before ~6.4 paper-seconds.
	firstAdapt := ds[0].Time.Sub(start)
	if firstAdapt < time.Duration(6*float64(scale)) {
		t.Fatalf("first adaptation implausibly early: %v", firstAdapt)
	}
	if ds[0].NewLP <= ds[0].OldLP {
		t.Fatalf("first decision not an increase: %v", ds[0])
	}
	// Require a real speedup over the measured sequential baseline —
	// except under the race detector, whose instrumentation distorts
	// wall-clock comparisons beyond usefulness on small machines.
	if !raceEnabled && elapsed >= baseline*9/10 {
		t.Fatalf("no speedup: %v vs baseline %v (decisions %v)", elapsed, baseline, ds)
	}
}
