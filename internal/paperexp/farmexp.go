package paperexp

import (
	"fmt"
	"strings"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/sim"
	"skandium/internal/skel"
)

// FarmSpec parameterizes the farm streaming experiment: a stream of
// word-count jobs (each a small map) arriving at a fixed rate into a farm,
// measured at several fixed LPs. It produces the classic skeleton
// throughput/latency table — the paper's farm pattern evaluated under its
// "task replication" semantics.
type FarmSpec struct {
	// Jobs is the stream length; Interarrival the virtual gap between
	// arrivals.
	Jobs         int
	Interarrival time.Duration
	// JobSplit/JobExec/JobMerge are per-job muscle durations; JobFanout the
	// per-job map cardinality.
	JobSplit, JobExec, JobMerge time.Duration
	JobFanout                   int
	// LPs is the sweep (default 1,2,4,8,16).
	LPs []int
}

// Defaults fills zero fields: 24 jobs every 20 ms, each a 4-way map of
// 15 ms work items (~72 ms of work per job).
func (s FarmSpec) Defaults() FarmSpec {
	if s.Jobs == 0 {
		s.Jobs = 24
	}
	if s.Interarrival == 0 {
		s.Interarrival = 20 * time.Millisecond
	}
	if s.JobSplit == 0 {
		s.JobSplit = 4 * time.Millisecond
	}
	if s.JobExec == 0 {
		s.JobExec = 15 * time.Millisecond
	}
	if s.JobMerge == 0 {
		s.JobMerge = 4 * time.Millisecond
	}
	if s.JobFanout == 0 {
		s.JobFanout = 4
	}
	if len(s.LPs) == 0 {
		s.LPs = []int{1, 2, 4, 8, 16}
	}
	return s
}

// FarmPoint is one row of the sweep.
type FarmPoint struct {
	LP int
	// Makespan is stream start to last completion.
	Makespan time.Duration
	// MeanLatency / MaxLatency are per-job sojourn times.
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// Throughput is jobs per virtual second.
	Throughput float64
}

// RunFarmSweep executes the sweep on the simulator.
func RunFarmSweep(spec FarmSpec) ([]FarmPoint, error) {
	spec = spec.Defaults()
	fs := muscle.NewSplit("jfs", func(p any) ([]any, error) {
		out := make([]any, spec.JobFanout)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("jfe", func(p any) (any, error) { return 1, nil })
	fm := muscle.NewMerge("jfm", func(ps []any) (any, error) { return len(ps), nil })
	program := skel.NewFarm(skel.NewMap(fs, skel.NewSeq(fe), fm))
	costs := sim.CostFunc(func(m *muscle.Muscle, _ any) time.Duration {
		switch m.ID() {
		case fs.ID():
			return spec.JobSplit
		case fe.ID():
			return spec.JobExec
		case fm.ID():
			return spec.JobMerge
		default:
			return 0
		}
	})

	injections := make([]sim.Injection, spec.Jobs)
	for i := range injections {
		injections[i] = sim.Injection{At: time.Duration(i) * spec.Interarrival, Param: i}
	}

	out := make([]FarmPoint, 0, len(spec.LPs))
	for _, lp := range spec.LPs {
		eng := sim.NewEngine(sim.Config{Costs: costs, LP: lp})
		start := eng.Now()
		rs, err := eng.RunStream(program, injections)
		if err != nil {
			return nil, fmt.Errorf("farm sweep lp=%d: %w", lp, err)
		}
		var last time.Time
		var sum, max time.Duration
		for i, r := range rs {
			if r.Result != spec.JobFanout {
				return nil, fmt.Errorf("farm sweep lp=%d: job %d result %v", lp, i, r.Result)
			}
			if r.End.After(last) {
				last = r.End
			}
			l := r.Latency()
			sum += l
			if l > max {
				max = l
			}
		}
		makespan := last.Sub(start)
		out = append(out, FarmPoint{
			LP:          lp,
			Makespan:    makespan,
			MeanLatency: sum / time.Duration(spec.Jobs),
			MaxLatency:  max,
			Throughput:  float64(spec.Jobs) / makespan.Seconds(),
		})
	}
	return out, nil
}

// FormatFarmTable renders the sweep as an aligned text table.
func FormatFarmTable(points []FarmPoint) string {
	var b strings.Builder
	b.WriteString("LP   makespan   mean-latency  max-latency  throughput(jobs/s)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-4d %-10v %-13v %-12v %.1f\n",
			p.LP, p.Makespan.Round(time.Millisecond),
			p.MeanLatency.Round(time.Millisecond),
			p.MaxLatency.Round(time.Millisecond),
			p.Throughput)
	}
	return b.String()
}
