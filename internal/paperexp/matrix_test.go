package paperexp

import (
	"fmt"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
)

// TestGoldenDecisionLogs pins the deterministic decision sequences of the
// three scenarios: any change to the estimator, ADG, scheduler or policies
// that alters controller behaviour must show up here deliberately.
func TestGoldenDecisionLogs(t *testing.T) {
	golden := map[string]struct {
		spec Spec
		want []string
	}{
		"scenario1": {Scenario1(), []string{
			"7.634s 1->6",
			"8.549s 6->11",
			"8.669s 11->5",
		}},
		"scenario2": {Scenario2(), []string{
			"6.4s 1->7",
			"7.314s 7->3",
			"7.434s 3->1",
		}},
		"scenario3": {Scenario3(), []string{
			"7.634s 1->6",
			"8.549s 6->3",
			"8.669s 3->1",
		}},
	}
	for name, tc := range golden {
		r, err := Run(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got []string
		for _, d := range r.Decisions {
			got = append(got, fmt.Sprintf("%v %d->%d",
				d.Time.Sub(clock.Epoch).Round(time.Millisecond), d.OldLP, d.NewLP))
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: decisions %v, want %v", name, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("%s: decision %d = %q, want %q", name, i, got[i], tc.want[i])
			}
		}
	}
}

// TestPolicyPredictorMatrix: every combination of increase policy, decrease
// policy and predictor still produces a correct result, adapts at least
// once, and lands within 15% of the 9.5 s goal (the work/span predictor is
// cruder, hence the slack).
func TestPolicyPredictorMatrix(t *testing.T) {
	increases := []core.IncreasePolicy{core.IncreaseOptimal, core.IncreaseMinimal}
	decreases := []core.DecreasePolicy{core.DecreaseHalve, core.DecreaseNone, core.DecreaseExact}
	predictors := []core.Predictor{nil, core.ADGPredictor{}, core.WorkSpanPredictor{}}
	seqCounts, err := RunFixedLP(Spec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, inc := range increases {
		for _, dec := range decreases {
			for _, p := range predictors {
				name := fmt.Sprintf("inc=%d/dec=%d/pred=%v", inc, dec, predName(p))
				spec := Scenario1()
				spec.Increase = inc
				spec.Decrease = dec
				spec.Predictor = p
				r, err := Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(r.Decisions) == 0 {
					t.Errorf("%s: never adapted", name)
					continue
				}
				if r.Counts.Total() != seqCounts.Counts.Total() {
					t.Errorf("%s: wrong result", name)
				}
				slack := spec.Goal + spec.Goal*15/100
				if r.Makespan > slack {
					t.Errorf("%s: makespan %v far beyond goal %v", name, r.Makespan, spec.Goal)
				}
				if r.Makespan >= seqCounts.Makespan {
					t.Errorf("%s: no speedup (%v)", name, r.Makespan)
				}
			}
		}
	}
}

func predName(p core.Predictor) string {
	if p == nil {
		return "default"
	}
	return p.Name()
}
