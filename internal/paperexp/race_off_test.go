//go:build !race

package paperexp

// raceEnabled relaxes wall-clock assertions under the race detector.
const raceEnabled = false
