package paperexp

import (
	"testing"
	"time"
)

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

// TestSequentialWork reproduces the paper's stated scalar: "the total
// sequential work (WCT of the execution with 1 thread) takes 12.5 secs".
// Our calibrated profile yields 12.61 s (within 1%).
func TestSequentialWork(t *testing.T) {
	r, err := RunFixedLP(Spec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan < sec(12.3) || r.Makespan > sec(12.8) {
		t.Fatalf("sequential work = %v, want ~12.5s", r.Makespan)
	}
	if len(r.Decisions) != 0 {
		t.Fatalf("baseline must not adapt: %v", r.Decisions)
	}
}

// TestScenario1 reproduces Fig. 5 "Goal without initialization": the first
// analysis happens when the first inner merge completes (paper: 7.6 s; the
// calibrated profile gives 7.63 s), the LP rises, and the run finishes in
// the paper's predicted [8.63 s, 9.54 s] window for the 9.5 s goal.
func TestScenario1(t *testing.T) {
	r, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decisions) == 0 {
		t.Fatal("no adaptation decisions")
	}
	if r.FirstAdapt < sec(7.5) || r.FirstAdapt > sec(7.8) {
		t.Fatalf("first adaptation at %v, want ~7.6s", r.FirstAdapt)
	}
	if r.Decisions[0].NewLP <= 1 {
		t.Fatalf("first decision did not raise LP: %v", r.Decisions[0])
	}
	if r.Makespan < sec(8.6) || r.Makespan > sec(9.55) {
		t.Fatalf("makespan %v outside the paper's [8.63,9.54] window", r.Makespan)
	}
	if r.PeakLP <= 1 || r.PeakLP > 24 {
		t.Fatalf("peak LP %d out of range", r.PeakLP)
	}
}

// TestScenario2 reproduces Fig. 6 "Goal with initialization": with seeded
// estimators the controller adapts right after the first split (paper and
// repro: 6.4 s, before the first merge) and finishes earlier than scenario
// 1, before the goal.
func TestScenario2(t *testing.T) {
	r2, err := Run(Scenario2())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	if r2.FirstAdapt != sec(6.4) {
		t.Fatalf("first adaptation at %v, want exactly 6.4s (right after the first split)", r2.FirstAdapt)
	}
	if r2.FirstAdapt >= r1.FirstAdapt {
		t.Fatalf("init run adapts at %v, not earlier than cold run %v", r2.FirstAdapt, r1.FirstAdapt)
	}
	if r2.Makespan >= r1.Makespan {
		t.Fatalf("init run %v not faster than cold run %v", r2.Makespan, r1.Makespan)
	}
	if r2.Makespan > r2.Spec.Goal {
		t.Fatalf("init run %v misses the goal %v", r2.Makespan, r2.Spec.Goal)
	}
}

// TestScenario3 reproduces Fig. 7 "WCT goal of 10.5 s": the looser goal
// yields a lower LP peak than scenario 1 and a later finish, still near the
// goal.
func TestScenario3(t *testing.T) {
	r3, err := Run(Scenario3())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	if r3.PeakLP >= r1.PeakLP {
		t.Fatalf("loose-goal peak LP %d not below tight-goal peak %d", r3.PeakLP, r1.PeakLP)
	}
	if r3.Makespan <= r1.Makespan {
		t.Fatalf("loose-goal run %v not slower than tight-goal run %v", r3.Makespan, r1.Makespan)
	}
	if r3.Makespan > r3.Spec.Goal {
		t.Fatalf("makespan %v misses the 10.5s goal", r3.Makespan)
	}
}

// TestGoalAboveSequentialNoAdaptation: the paper notes any goal greater
// than the sequential work (12.5 s) "won't produce the necessity of an LP
// increase". One nuance of the shared-muscle program (paper Listing 1):
// right after the first inner split, t(fs)'s EWMA blends the 6.4 s and
// 0.91 s observations, so the mid-run WCT prediction momentarily
// overshoots to ~23 s; the claim therefore holds for goals above the
// worst momentary prediction. We assert it at 24 s; the 15 s case
// correctly triggers a (mild, quickly reverted) adaptation.
func TestGoalAboveSequentialNoAdaptation(t *testing.T) {
	spec := Scenario1()
	spec.Goal = 24 * time.Second
	r, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Decisions {
		if d.NewLP > d.OldLP {
			t.Fatalf("unnecessary LP increase with a loose goal: %v", d)
		}
	}
	if r.PeakLP > 1 {
		t.Fatalf("peak LP %d, want 1", r.PeakLP)
	}
}

// TestMuscleSharingMatters: the negative ablation behind the paper's
// Listing 1. With per-level (cloned) muscles, the outer merge is first
// observed only when the run ends, so the completeness gate blocks every
// mid-run analysis: no adaptation, sequential finish, goal missed. Sharing
// the muscles (the paper's program) is what enables adaptation at 7.6 s.
func TestMuscleSharingMatters(t *testing.T) {
	spec := Scenario1()
	spec.SeparateMuscles = true
	r, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decisions) != 0 {
		t.Fatalf("separate muscles should block analyses, got %v", r.Decisions)
	}
	if r.Makespan < sec(12.3) {
		t.Fatalf("expected sequential finish, got %v", r.Makespan)
	}
	shared, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	if shared.Makespan >= r.Makespan {
		t.Fatalf("shared muscles (%v) not faster than separate (%v)", shared.Makespan, r.Makespan)
	}
}

// TestDeterminism: identical specs give identical runs (the simulator and
// controller are deterministic without jitter).
func TestDeterminism(t *testing.T) {
	a, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.PeakLP != b.PeakLP || len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("non-deterministic: %v/%d/%d vs %v/%d/%d",
			a.Makespan, a.PeakLP, len(a.Decisions), b.Makespan, b.PeakLP, len(b.Decisions))
	}
}

// TestJitterStillMeetsShape: with ±10% duration noise the qualitative
// behaviour must survive (adapts after first merge, beats sequential).
func TestJitterStillMeetsShape(t *testing.T) {
	spec := Scenario1()
	spec.Jitter = 0.10
	for seed := int64(1); seed <= 5; seed++ {
		spec.Seed = seed
		r, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Decisions) == 0 {
			t.Fatalf("seed %d: never adapted", seed)
		}
		if r.Makespan >= sec(12.0) {
			t.Fatalf("seed %d: makespan %v did not beat sequential", seed, r.Makespan)
		}
	}
}

// TestCountsCorrectness: the functional result of the autonomic run equals
// the sequential baseline's counts (adaptation must not change semantics).
func TestCountsCorrectness(t *testing.T) {
	seq, err := RunFixedLP(Spec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	aut, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Counts.Total() == 0 {
		t.Fatal("empty counts")
	}
	if len(seq.Counts) != len(aut.Counts) || seq.Counts.Total() != aut.Counts.Total() {
		t.Fatalf("autonomic run changed the result: %d/%d vs %d/%d",
			len(seq.Counts), seq.Counts.Total(), len(aut.Counts), aut.Counts.Total())
	}
	for k, v := range seq.Counts {
		if aut.Counts[k] != v {
			t.Fatalf("count mismatch for %s: %d vs %d", k, v, aut.Counts[k])
		}
	}
}

// TestSeriesMonotoneTime: the recorded Figs. 5-7 series must be in
// non-decreasing time order with non-negative levels bounded by MaxLP.
func TestSeriesMonotoneTime(t *testing.T) {
	r, err := Run(Scenario1())
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Recorder.ActiveSeries(time.Millisecond)
	if len(pts) < 3 {
		t.Fatalf("series too short: %d points", len(pts))
	}
	prev := -1.0
	for _, p := range pts {
		if p.T < prev {
			t.Fatalf("series goes back in time at %v", p.T)
		}
		prev = p.T
		if p.V < 0 || p.V > 24 {
			t.Fatalf("active level %d out of [0,24]", p.V)
		}
	}
}
