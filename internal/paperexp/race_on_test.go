//go:build race

package paperexp

// raceEnabled relaxes wall-clock assertions: the race detector's
// instrumentation slows real executions by up to an order of magnitude,
// which invalidates timing comparisons on small machines.
const raceEnabled = true
