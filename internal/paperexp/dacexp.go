package paperexp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/metrics"
	"skandium/internal/muscle"
	"skandium/internal/sim"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// DaCSpec parameterizes the second benchmark (the paper's §6 "more
// experiments ... on other benchmarks"): an autonomic divide-and-conquer
// mergesort on the simulator. Unlike the word-count, the structure unfolds
// dynamically (the recursion depth is only known from |fc| estimates), so
// it exercises the ADG's d&c expansion under the controller.
type DaCSpec struct {
	// Elements is the array size; Leaf the cutoff below which the leaf
	// sorter runs. Depth of the recursion ≈ log2(Elements/Leaf).
	Elements int
	Leaf     int
	// Cond/Split/LeafCost/Merge are virtual muscle durations.
	Cond, Split, LeafCost, Merge time.Duration
	// Goal, MaxLP, InitialLP, Rho, AnalysisInterval as in Spec. A negative
	// Goal disables the controller (fixed-LP baseline); zero means the
	// default goal.
	Goal             time.Duration
	MaxLP            int
	InitialLP        int
	Rho              float64
	AnalysisInterval time.Duration
	Increase         core.IncreasePolicy
	Decrease         core.DecreasePolicy
	Seed             int64
}

// Defaults fills zero fields: 16 leaves of 80 ms dominate ≈1.4 s of
// sequential work with a ≈180 ms span.
func (s DaCSpec) Defaults() DaCSpec {
	if s.Elements == 0 {
		s.Elements = 1 << 12
	}
	if s.Leaf == 0 {
		s.Leaf = s.Elements / 16
	}
	if s.Cond == 0 {
		s.Cond = time.Millisecond
	}
	if s.Split == 0 {
		s.Split = 5 * time.Millisecond
	}
	if s.LeafCost == 0 {
		s.LeafCost = 80 * time.Millisecond
	}
	if s.Merge == 0 {
		s.Merge = 10 * time.Millisecond
	}
	if s.Goal == 0 {
		s.Goal = 400 * time.Millisecond
	}
	if s.MaxLP == 0 {
		s.MaxLP = 24
	}
	if s.InitialLP == 0 {
		s.InitialLP = 1
	}
	if s.Rho == 0 {
		s.Rho = estimate.DefaultRho
	}
	if s.Seed == 0 {
		s.Seed = 7
	}
	if s.AnalysisInterval == 0 {
		s.AnalysisInterval = 20 * time.Millisecond
	}
	return s
}

// DaCResult is the outcome of a d&c run.
type DaCResult struct {
	Spec       DaCSpec
	Makespan   time.Duration
	Sorted     bool
	Decisions  []core.Decision
	FirstAdapt time.Duration
	PeakLP     int
	PeakActive int
	Recorder   *metrics.Recorder
}

// RunDaC executes the mergesort experiment on the simulator; goal 0 runs
// the fixed-LP baseline at InitialLP.
func RunDaC(spec DaCSpec) (*DaCResult, error) {
	spec = spec.Defaults()

	fc := muscle.NewCondition("big", func(p any) (bool, error) {
		return len(p.([]int)) > spec.Leaf, nil
	})
	fs := muscle.NewSplit("halve", func(p any) ([]any, error) {
		s := p.([]int)
		mid := len(s) / 2
		return []any{s[:mid:mid], s[mid:]}, nil
	})
	fe := muscle.NewExecute("sortLeaf", func(p any) (any, error) {
		out := append([]int(nil), p.([]int)...)
		sort.Ints(out)
		return out, nil
	})
	fm := muscle.NewMerge("mergeRuns", func(ps []any) (any, error) {
		a, b := ps[0].([]int), ps[1].([]int)
		out := make([]int, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		return append(out, b[j:]...), nil
	})
	program := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)

	costs := sim.CostFunc(func(m *muscle.Muscle, _ any) time.Duration {
		switch m.ID() {
		case fc.ID():
			return spec.Cond
		case fs.ID():
			return spec.Split
		case fe.ID():
			return spec.LeafCost
		case fm.ID():
			return spec.Merge
		default:
			return 0
		}
	})

	reg := event.NewRegistry()
	rec := metrics.NewRecorder()
	eng := sim.NewEngine(sim.Config{
		Events: reg,
		Costs:  costs,
		LP:     spec.InitialLP,
		MaxLP:  spec.MaxLP,
		Gauge:  rec.Gauge,
	})
	rec.SetStart(eng.Now())

	est := estimate.NewRegistry(estimate.EWMAFactory(spec.Rho))
	tracker := statemachine.NewTracker(est)
	var ctl *core.Controller
	if spec.Goal > 0 {
		ctl = core.NewController(core.Config{
			WCTGoal:          spec.Goal,
			MaxLP:            spec.MaxLP,
			AnalysisInterval: spec.AnalysisInterval,
			Increase:         spec.Increase,
			Decrease:         spec.Decrease,
		}, program, eng, est, tracker, eng.Clock())
		ctl.SetStart(eng.Now())
		core.Attach(reg, tracker, ctl)
	} else {
		reg.Add(tracker.Listener())
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	data := make([]int, spec.Elements)
	for i := range data {
		data[i] = rng.Int()
	}
	res, makespan, err := eng.Run(program, data)
	if err != nil {
		return nil, err
	}
	sorted, ok := res.([]int)
	if !ok {
		return nil, fmt.Errorf("paperexp: d&c produced %T", res)
	}
	out := &DaCResult{
		Spec:       spec,
		Makespan:   makespan,
		Sorted:     sort.IntsAreSorted(sorted) && len(sorted) == spec.Elements,
		Recorder:   rec,
		PeakLP:     rec.PeakLP(),
		PeakActive: rec.PeakActive(),
	}
	if ctl != nil {
		out.Decisions = ctl.Decisions()
		if len(out.Decisions) > 0 {
			out.FirstAdapt = out.Decisions[0].Time.Sub(eng.StartTime())
		}
	}
	return out, nil
}
