package paperexp

import (
	"strings"
	"testing"
	"time"
)

func TestFarmSweepShape(t *testing.T) {
	points, err := RunFarmSweep(FarmSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Makespan > points[i-1].Makespan {
			t.Fatalf("makespan grew from LP %d to %d: %v -> %v",
				points[i-1].LP, points[i].LP, points[i-1].Makespan, points[i].Makespan)
		}
		if points[i].MeanLatency > points[i-1].MeanLatency {
			t.Fatalf("mean latency grew with more LP: %v -> %v",
				points[i-1].MeanLatency, points[i].MeanLatency)
		}
		if points[i].Throughput < points[i-1].Throughput {
			t.Fatalf("throughput dropped with more LP")
		}
	}
	// At LP 1 the stream is backlogged: per-job work (~72ms of busy time
	// plus queueing) far exceeds the 20ms interarrival, so the worst
	// latency must reflect deep queueing.
	if points[0].MaxLatency < 200*time.Millisecond {
		t.Fatalf("LP 1 max latency %v suspiciously low", points[0].MaxLatency)
	}
	// At LP 16 the system is overprovisioned: latency approaches the
	// job's intrinsic critical path (split+exec+merge = 23ms).
	last := points[len(points)-1]
	if last.MeanLatency > 50*time.Millisecond {
		t.Fatalf("LP 16 mean latency %v too high", last.MeanLatency)
	}
}

func TestFarmSweepDeterministic(t *testing.T) {
	a, err := RunFarmSweep(FarmSpec{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFarmSweep(FarmSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFormatFarmTable(t *testing.T) {
	points, err := RunFarmSweep(FarmSpec{LPs: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	table := FormatFarmTable(points)
	if !strings.Contains(table, "throughput") || !strings.Contains(table, "\n") {
		t.Fatalf("table malformed:\n%s", table)
	}
	if len(strings.Split(strings.TrimSpace(table), "\n")) != 3 {
		t.Fatalf("table rows wrong:\n%s", table)
	}
}
