// Package paperexp encodes the paper's §5 evaluation as reproducible
// experiments: the two-level map word count over a tweet corpus, executed
// on the simulated 24-hardware-thread machine with the autonomic
// controller, in the paper's three scenarios —
//
//	Fig. 5 "Goal without initialization": WCT goal 9.5 s, cold estimators;
//	Fig. 6 "Goal with initialization":    WCT goal 9.5 s, estimators seeded
//	                                      from a previous run's final values;
//	Fig. 7 "WCT goal of 10.5 s":          a looser goal, cold estimators.
//
// Durations follow the paper's stated profile: the first split takes 6.4 s
// (it streams the input file, which is why no parallelism helps before it
// finishes), second-level splits are ~7x faster, execute and merge muscles
// cost ~0.04 s, and the total sequential work is ~12.5 s. As in the paper's
// Listing 1, both map levels share the same fs/fe/fm muscle objects, so
// every muscle has been observed once as soon as the first inner merge
// finishes — the moment the first analysis becomes possible.
package paperexp

import (
	"math/rand"
	"time"

	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/metrics"
	"skandium/internal/muscle"
	"skandium/internal/sim"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
	"skandium/internal/workload"
)

// Spec parameterizes one run of the word-count experiment.
type Spec struct {
	// K is the first-level split cardinality, M the second-level one.
	// Defaults (5, 7) are fitted to the paper's stated timings: first
	// analysis at ~7.6 s and sequential work at ~12.5 s.
	K, M int
	// Split1/Split2/Exec/Merge are the virtual muscle durations.
	Split1, Split2, Exec, Merge time.Duration
	// Goal is the WCT QoS (0 = no autonomic adaptation).
	Goal time.Duration
	// MaxLP models the machine's hardware threads (paper: 24).
	MaxLP int
	// InitialLP is the starting level of parallelism (default 1).
	InitialLP int
	// Init seeds the estimators with the final values of a prior
	// (identical, goal-less) run — the paper's scenario 2.
	Init bool
	// Jitter adds ±Jitter relative noise to every muscle duration,
	// seeded by Seed (0 = deterministic).
	Jitter float64
	Seed   int64
	// Rho is the estimator weight (0 = paper default 0.5).
	Rho float64
	// Increase/Decrease select controller policies.
	Increase core.IncreasePolicy
	Decrease core.DecreasePolicy
	// Policy overrides the adaptation rule entirely (nil = the paper rule
	// built from Increase/Decrease). A stateful policy must be fresh per run.
	Policy core.Policy
	// Predictor selects the WCT estimation algorithm (nil = ADG).
	Predictor core.Predictor
	// AnalysisInterval throttles analyses (0 = every After event).
	AnalysisInterval time.Duration
	// Tweets sizes the synthetic corpus (0 = small default; corpus size
	// only affects the computed counts, not the virtual durations).
	Tweets int
	// SeparateMuscles clones fs/fm so each map level has its own estimator
	// history (the opt-out of the paper's Listing 1 sharing). With separate
	// muscles the outer merge is only observed when the execution ends, so
	// the estimate-completeness gate blocks every mid-run analysis — the
	// negative ablation showing why the paper's program shares muscles.
	SeparateMuscles bool
}

// Defaults fills zero fields with the paper-calibrated configuration.
func (s Spec) Defaults() Spec {
	if s.K == 0 {
		s.K = 5
	}
	if s.M == 0 {
		s.M = 7
	}
	if s.Split1 == 0 {
		s.Split1 = 6400 * time.Millisecond
	}
	if s.Split2 == 0 {
		s.Split2 = s.Split1 / 7
	}
	if s.Exec == 0 {
		s.Exec = 40 * time.Millisecond
	}
	if s.Merge == 0 {
		s.Merge = 40 * time.Millisecond
	}
	if s.MaxLP == 0 {
		s.MaxLP = 24
	}
	if s.InitialLP == 0 {
		s.InitialLP = 1
	}
	if s.Rho == 0 {
		s.Rho = estimate.DefaultRho
	}
	if s.Tweets == 0 {
		s.Tweets = 2100
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Scenario1 is Fig. 5: goal 9.5 s, no initialization.
func Scenario1() Spec {
	return Spec{Goal: 9500 * time.Millisecond, Increase: core.IncreaseMinimal, AnalysisInterval: 100 * time.Millisecond}.Defaults()
}

// Scenario2 is Fig. 6: goal 9.5 s, with initialization.
func Scenario2() Spec {
	return Spec{Goal: 9500 * time.Millisecond, Init: true, Increase: core.IncreaseMinimal, AnalysisInterval: 100 * time.Millisecond}.Defaults()
}

// Scenario3 is Fig. 7: goal 10.5 s, no initialization.
func Scenario3() Spec {
	return Spec{Goal: 10500 * time.Millisecond, Increase: core.IncreaseMinimal, AnalysisInterval: 100 * time.Millisecond}.Defaults()
}

// Result is the outcome of one run.
type Result struct {
	Spec     Spec
	Makespan time.Duration
	// Counts is the functional result (global tag counts).
	Counts workload.Counts
	// Decisions is the controller's adaptation log (empty without a goal).
	Decisions []core.Decision
	// FirstAdapt is when the first LP change happened (0 if never).
	FirstAdapt time.Duration
	// PeakActive / PeakLP summarize the Figs. 5-7 series.
	PeakActive int
	PeakLP     int
	// Recorder holds the full active-threads/LP series.
	Recorder *metrics.Recorder
	// Profile is the estimator snapshot at the end of the run.
	Profile estimate.Profile
	// Analyses counts controller estimation cycles.
	Analyses int
}

// Program builds the paper's skeleton program over a corpus and returns it
// with its three shared muscles. The split splits the full corpus into K
// chunks and any sub-chunk into M; execute counts tags; merge folds counts.
func Program(corpus *workload.Corpus, k, m int) (*skel.Node, *muscle.Muscle, *muscle.Muscle, *muscle.Muscle) {
	total := len(corpus.Tweets)
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		c := p.(workload.Chunk)
		parts := k
		if c.Len() < total {
			parts = m
		}
		chunks := workload.SplitChunk(c, parts)
		out := make([]any, len(chunks))
		for i, ch := range chunks {
			out[i] = ch
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) {
		return workload.CountChunk(p.(workload.Chunk)), nil
	})
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) {
		parts := make([]workload.Counts, len(ps))
		for i, p := range ps {
			parts[i] = p.(workload.Counts)
		}
		return workload.MergeCounts(parts), nil
	})
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	outer := skel.NewMap(fs, inner, fm)
	return outer, fs, fe, fm
}

// costModel declares the virtual durations: the first-level split is
// recognized by its parameter spanning the whole corpus.
type costModel struct {
	total                       int
	split1, split2, exec, merge time.Duration
	fs, fe, fm                  muscle.ID
	extraSplit, extraMerge      muscle.ID
	jitter                      float64
	rng                         *rand.Rand
}

func (cm *costModel) Cost(m *muscle.Muscle, param any) time.Duration {
	var d time.Duration
	switch m.ID() {
	case cm.extraSplit, cm.fs:
		if c, ok := param.(workload.Chunk); ok && c.Len() >= cm.total {
			d = cm.split1
		} else {
			d = cm.split2
		}
	case cm.fe:
		d = cm.exec
	case cm.extraMerge, cm.fm:
		d = cm.merge
	}
	if cm.jitter > 0 {
		f := 1 + cm.jitter*(2*cm.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Run executes one experiment on the simulator and returns its Result.
// When spec.Init is set, a goal-less profiling run over the same program
// primes the estimator profile first — the paper's "initialized with their
// corresponding final value of a previous execution".
func Run(spec Spec) (*Result, error) {
	spec = spec.Defaults()
	w := newWorld(spec)
	var profile estimate.Profile
	if spec.Init {
		prof := spec
		prof.Goal = 0
		prof.InitialLP = 1
		r, err := w.run(prof, nil)
		if err != nil {
			return nil, err
		}
		profile = r.Profile
	}
	return w.run(spec, profile)
}

// RunFixedLP executes the workload without any controller at a fixed LP —
// the non-autonomic baseline (LP=1 gives the paper's "total sequential
// work").
func RunFixedLP(spec Spec, lp int) (*Result, error) {
	spec = spec.Defaults()
	spec.Goal = 0
	spec.InitialLP = lp
	return newWorld(spec).run(spec, nil)
}

// world fixes the corpus and the program (and therefore the muscle
// identities) so profiling and measured runs share estimator keys.
type world struct {
	corpus     *workload.Corpus
	program    *skel.Node
	fs, fe, fm *muscle.Muscle
	clones     []*muscle.Muscle
}

func newWorld(spec Spec) *world {
	corpus := workload.Generate(workload.GenConfig{Tweets: spec.Tweets, Seed: spec.Seed})
	program, fs, fe, fm := Program(corpus, spec.K, spec.M)
	w := &world{corpus: corpus, program: program, fs: fs, fe: fe, fm: fm}
	if spec.SeparateMuscles {
		// Rebuild the outer level on clones: same functions, fresh IDs.
		fsOuter := fs.Clone("fsOuter")
		fmOuter := fm.Clone("fmOuter")
		inner := program.Children()[0]
		w.program = skel.NewMap(fsOuter, inner, fmOuter)
		w.clones = []*muscle.Muscle{fsOuter, fmOuter}
	}
	return w
}

func (w *world) run(spec Spec, profile estimate.Profile) (*Result, error) {
	corpus := w.corpus
	program, fs, fe, fm := w.program, w.fs, w.fe, w.fm

	cm := &costModel{
		total:  len(corpus.Tweets),
		split1: spec.Split1, split2: spec.Split2,
		exec: spec.Exec, merge: spec.Merge,
		fs: fs.ID(), fe: fe.ID(), fm: fm.ID(),
		jitter: spec.Jitter,
		rng:    rand.New(rand.NewSource(spec.Seed)),
	}
	for _, c := range w.clones {
		switch c.Kind() {
		case muscle.Split:
			cm.extraSplit = c.ID()
		case muscle.Merge:
			cm.extraMerge = c.ID()
		}
	}

	reg := event.NewRegistry()
	rec := metrics.NewRecorder()
	eng := sim.NewEngine(sim.Config{
		Events: reg,
		Costs:  cm,
		LP:     spec.InitialLP,
		MaxLP:  spec.MaxLP,
		Gauge:  rec.Gauge,
	})
	rec.SetStart(eng.Now())

	est := estimate.NewRegistry(estimate.EWMAFactory(spec.Rho))
	if profile != nil {
		est.Restore(profile)
	}
	tracker := statemachine.NewTracker(est)
	var ctl *core.Controller
	if spec.Goal > 0 {
		ctl = core.NewController(core.Config{
			WCTGoal:          spec.Goal,
			MaxLP:            spec.MaxLP,
			AnalysisInterval: spec.AnalysisInterval,
			Increase:         spec.Increase,
			Decrease:         spec.Decrease,
			Policy:           spec.Policy,
			Predictor:        spec.Predictor,
		}, program, eng, est, tracker, eng.Clock())
		ctl.SetStart(eng.Now())
		core.Attach(reg, tracker, ctl)
	} else {
		reg.Add(tracker.Listener())
	}

	full := workload.Chunk{Corpus: corpus, Lo: 0, Hi: len(corpus.Tweets)}
	res, makespan, err := eng.Run(program, full)
	if err != nil {
		return nil, err
	}

	out := &Result{
		Spec:       spec,
		Makespan:   makespan,
		Counts:     res.(workload.Counts),
		Recorder:   rec,
		PeakActive: rec.PeakActive(),
		PeakLP:     rec.PeakLP(),
		Profile:    est.Snapshot(),
	}
	if ctl != nil {
		out.Decisions = ctl.Decisions()
		out.Analyses = ctl.Analyses()
		if len(out.Decisions) > 0 {
			out.FirstAdapt = out.Decisions[0].Time.Sub(eng.StartTime())
		}
	}
	return out, nil
}
