package paperexp

import (
	"testing"
	"time"

	"skandium/internal/core"
)

// TestDaCBaselineSequential: the fixed-LP(1) mergesort takes the full
// sequential work: 16 leaves × 80ms + 15 × (5+10)ms splits/merges + 31 ×
// 1ms conds = 1.536s.
func TestDaCBaselineSequential(t *testing.T) {
	r, err := RunDaC(DaCSpec{Goal: -1}) // negative goal: fixed-LP baseline
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sorted {
		t.Fatal("output not sorted")
	}
	want := 1536 * time.Millisecond
	if r.Makespan != want {
		t.Fatalf("sequential makespan %v, want %v", r.Makespan, want)
	}
	if len(r.Decisions) != 0 {
		t.Fatalf("baseline adapted: %v", r.Decisions)
	}
}

// TestDaCAutonomic: with a 400ms goal the controller must adapt mid-run —
// the d&c structure unfolds dynamically, so this exercises the ADG's
// recursive expansion from |fc| and |fs| estimates.
func TestDaCAutonomic(t *testing.T) {
	r, err := RunDaC(DaCSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sorted {
		t.Fatal("output not sorted")
	}
	if len(r.Decisions) == 0 {
		t.Fatal("controller never adapted")
	}
	if r.Decisions[0].NewLP <= r.Decisions[0].OldLP {
		t.Fatalf("first decision not an increase: %v", r.Decisions[0])
	}
	if r.Makespan > r.Spec.Goal {
		t.Fatalf("makespan %v misses the %v goal (decisions %v)",
			r.Makespan, r.Spec.Goal, r.Decisions)
	}
	if r.Makespan >= 1536*time.Millisecond {
		t.Fatal("no speedup over sequential")
	}
	if r.PeakLP <= 1 || r.PeakLP > 24 {
		t.Fatalf("peak LP %d out of range", r.PeakLP)
	}
	// Adaptation must happen well before the sequential half-way point.
	if r.FirstAdapt > 800*time.Millisecond {
		t.Fatalf("first adaptation too late: %v", r.FirstAdapt)
	}
}

// TestDaCLooseGoalNoAdaptation: a goal above the sequential work needs no
// threads added.
func TestDaCLooseGoalNoAdaptation(t *testing.T) {
	spec := DaCSpec{Goal: 5 * time.Second}
	r, err := RunDaC(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Decisions {
		if d.NewLP > d.OldLP {
			t.Fatalf("unnecessary increase: %v", d)
		}
	}
}

// TestDaCTighterGoalHigherPeak: shrinking the goal raises the LP peak
// (same who-wins ordering as Figs. 5 vs 7).
func TestDaCTighterGoalHigherPeak(t *testing.T) {
	tight, err := RunDaC(DaCSpec{Goal: 300 * time.Millisecond, Increase: core.IncreaseMinimal})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RunDaC(DaCSpec{Goal: 900 * time.Millisecond, Increase: core.IncreaseMinimal})
	if err != nil {
		t.Fatal(err)
	}
	if tight.PeakLP <= loose.PeakLP {
		t.Fatalf("tight goal peak %d not above loose goal peak %d",
			tight.PeakLP, loose.PeakLP)
	}
}
