package metrics

import (
	"testing"
	"time"
)

func fleetAt(ms int) time.Time {
	return time.Unix(0, 0).UTC().Add(time.Duration(ms) * time.Millisecond)
}

// TestFleetTotalLPSeries: the aggregate series sums each job's step series
// at every instant.
func TestFleetTotalLPSeries(t *testing.T) {
	f := NewFleet()
	f.SetStart(fleetAt(0))

	a := f.Job("a")
	b := f.Job("b")
	a.Gauge(fleetAt(0), 0, 2)  // a: LP 2 from t=0
	b.Gauge(fleetAt(5), 0, 3)  // b: LP 3 from t=5 -> total 5
	a.Gauge(fleetAt(10), 0, 4) // a: LP 4 -> total 7
	b.Gauge(fleetAt(15), 0, 0) // b done -> total 4

	got := f.TotalLPSeries(time.Millisecond)
	want := []Point{{0, 2}, {5, 5}, {10, 7}, {15, 4}}
	if len(got) != len(want) {
		t.Fatalf("series %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
	if peak := f.PeakTotalLP(); peak != 7 {
		t.Fatalf("peak total LP = %d, want 7", peak)
	}
	if total := f.TotalLP(); total != 4 {
		t.Fatalf("current total LP = %d, want 4", total)
	}
}

// TestFleetJobIdentity: Job is create-on-demand and stable; Remove forgets.
func TestFleetJobIdentity(t *testing.T) {
	f := NewFleet()
	r1 := f.Job("x")
	if f.Job("x") != r1 {
		t.Fatal("Job not stable")
	}
	f.Job("y")
	if jobs := f.Jobs(); len(jobs) != 2 || jobs[0] != "x" || jobs[1] != "y" {
		t.Fatalf("jobs %v", jobs)
	}
	f.Remove("x")
	if jobs := f.Jobs(); len(jobs) != 1 || jobs[0] != "y" {
		t.Fatalf("jobs after remove %v", jobs)
	}
	if f.Job("x") == r1 {
		t.Fatal("removed recorder resurrected")
	}
}

// TestRecorderLast: Last returns the freshest observation.
func TestRecorderLast(t *testing.T) {
	r := NewRecorder()
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty recorder")
	}
	r.Gauge(fleetAt(1), 1, 2)
	r.Gauge(fleetAt(2), 0, 5)
	if s, ok := r.Last(); !ok || s.LP != 5 {
		t.Fatalf("Last = %v/%v", s, ok)
	}
}

// TestFleetSheds: shed counters accumulate per reason and Sheds returns a
// copy the caller cannot use to corrupt the fleet's own map.
func TestFleetSheds(t *testing.T) {
	f := NewFleet()
	if got := f.Sheds(); len(got) != 0 {
		t.Fatalf("fresh fleet sheds = %v, want empty", got)
	}
	f.Shed(ShedQueueFull)
	f.Shed(ShedQueueFull)
	f.Shed(ShedInfeasible)
	got := f.Sheds()
	if got[ShedQueueFull] != 2 || got[ShedInfeasible] != 1 || got[ShedDraining] != 0 {
		t.Fatalf("sheds = %v, want queue-full 2 / goal-infeasible 1", got)
	}
	got[ShedQueueFull] = 99
	if again := f.Sheds(); again[ShedQueueFull] != 2 {
		t.Fatalf("Sheds returned a shared map: %v", again)
	}
}
