// Package metrics records execution telemetry: the "number of active
// threads vs wall-clock time" series plotted in the paper's Figs. 5-7, plus
// summary statistics (peak LP, adaptation instants, makespan). The recorder
// plugs into either substrate through the pool/engine gauge hook.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"skandium/internal/event"
)

// Sample is one gauge observation.
type Sample struct {
	T      time.Time
	Active int
	LP     int
}

// Recorder accumulates gauge samples. Safe for concurrent use (the real
// pool calls it from many workers).
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	started bool
	samples []Sample
	retries uint64
	faults  uint64
}

// NewRecorder returns an empty recorder. The first sample anchors t=0
// unless SetStart is called first.
func NewRecorder() *Recorder { return &Recorder{} }

// SetStart fixes the time origin of the series.
func (r *Recorder) SetStart(t time.Time) {
	r.mu.Lock()
	r.start, r.started = t, true
	r.mu.Unlock()
}

// Gauge is the hook to install on a pool or simulator engine.
func (r *Recorder) Gauge(now time.Time, active, lp int) {
	r.mu.Lock()
	if !r.started {
		r.start, r.started = now, true
	}
	r.samples = append(r.samples, Sample{T: now, Active: active, LP: lp})
	r.mu.Unlock()
}

// FaultListener returns an event listener tallying retry and terminal-fault
// events into the recorder — the telemetry face of the fault-tolerance
// layer. Install it next to the gauge hook.
func (r *Recorder) FaultListener() event.Listener {
	return event.Func(func(e *event.Event) any {
		switch e.Where {
		case event.Retry:
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
		case event.Fault:
			r.mu.Lock()
			r.faults++
			r.mu.Unlock()
		}
		return e.Param
	})
}

// FaultCounts returns the retry and terminal-fault events observed so far.
func (r *Recorder) FaultCounts() (retries, faults uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries, r.faults
}

// Samples returns a copy of the raw observations in time order.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Sample(nil), r.samples...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T.Before(out[j].T) })
	return out
}

// Last returns the most recent observation, if any.
func (r *Recorder) Last() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return Sample{}, false
	}
	// Samples arrive roughly time-ordered; the append order's tail is the
	// freshest observation for gauge-style consumers.
	return r.samples[len(r.samples)-1], true
}

// Point is one (time, value) pair of an exported series, time in units.
type Point struct {
	T float64
	V int
}

// ActiveSeries exports the active-thread step series (Figs. 5-7 y-axis)
// with time scaled to unit (e.g. time.Millisecond).
func (r *Recorder) ActiveSeries(unit time.Duration) []Point {
	return r.series(unit, func(s Sample) int { return s.Active })
}

// LPSeries exports the LP-target step series.
func (r *Recorder) LPSeries(unit time.Duration) []Point {
	return r.series(unit, func(s Sample) int { return s.LP })
}

func (r *Recorder) series(unit time.Duration, f func(Sample) int) []Point {
	r.mu.Lock()
	start := r.start
	samples := append([]Sample(nil), r.samples...)
	r.mu.Unlock()
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].T.Before(samples[j].T) })
	var out []Point
	for _, s := range samples {
		p := Point{T: float64(s.T.Sub(start)) / float64(unit), V: f(s)}
		if n := len(out); n > 0 && out[n-1].V == p.V {
			continue
		}
		if n := len(out); n > 0 && out[n-1].T == p.T {
			out[n-1].V = p.V
			continue
		}
		out = append(out, p)
	}
	return out
}

// PeakActive returns the maximum observed number of active threads.
func (r *Recorder) PeakActive() int {
	peak := 0
	for _, s := range r.Samples() {
		if s.Active > peak {
			peak = s.Active
		}
	}
	return peak
}

// PeakLP returns the maximum observed LP target.
func (r *Recorder) PeakLP() int {
	peak := 0
	for _, s := range r.Samples() {
		if s.LP > peak {
			peak = s.LP
		}
	}
	return peak
}

// FirstLPAbove returns the instant (since start) the LP target first
// exceeded n, and whether it ever did.
func (r *Recorder) FirstLPAbove(n int) (time.Duration, bool) {
	r.mu.Lock()
	start := r.start
	samples := append([]Sample(nil), r.samples...)
	r.mu.Unlock()
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].T.Before(samples[j].T) })
	for _, s := range samples {
		if s.LP > n {
			return s.T.Sub(start), true
		}
	}
	return 0, false
}

// CSV renders the active-thread series as "t,active" lines, time in unit.
func (r *Recorder) CSV(unit time.Duration) string {
	var b strings.Builder
	b.WriteString("t,active,lp\n")
	samples := r.Samples()
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	for _, s := range samples {
		fmt.Fprintf(&b, "%.4f,%d,%d\n", float64(s.T.Sub(start))/float64(unit), s.Active, s.LP)
	}
	return b.String()
}
