package metrics

import (
	"sort"
	"sync"
	"time"
)

// Fleet aggregates per-job recorders for a multi-job service: each job gets
// its own Recorder (the per-job LP/active timeline), and the fleet exposes
// machine-wide series — total LP committed over time, its peak — which is
// how a budget arbiter's "sum of grants never exceeds the budget" invariant
// becomes observable.
type Fleet struct {
	mu          sync.Mutex
	start       time.Time
	started     bool
	jobs        map[string]*Recorder
	order       []string
	sheds       map[string]uint64
	tenantSheds map[string]map[string]uint64 // tenant → reason → count
}

// Canonical shed reasons (admission-control rejections) so dashboards can
// rely on stable label values.
const (
	ShedQueueFull  = "queue-full"
	ShedInfeasible = "goal-infeasible"
	ShedDraining   = "draining"
	// ShedPressure is the weighted probabilistic shed on the admission
	// ladder's middle rung: the queue is filling and the submission drew an
	// unlucky (weight-biased) lot before the hard queue-full wall.
	ShedPressure = "queue-pressure"
	// ShedBrownout marks optional work refused while the server is browned
	// out — sustained overload detected, only guaranteed traffic admitted.
	ShedBrownout = "brownout"
)

// NewFleet returns an empty fleet recorder.
func NewFleet() *Fleet {
	return &Fleet{
		jobs:        map[string]*Recorder{},
		sheds:       map[string]uint64{},
		tenantSheds: map[string]map[string]uint64{},
	}
}

// Shed counts one shed submission under its reason.
func (f *Fleet) Shed(reason string) {
	f.mu.Lock()
	f.sheds[reason]++
	f.mu.Unlock()
}

// ShedTenant counts one shed submission under both its reason and the
// tenant it belonged to, feeding the per-tenant shed counters that make
// unfair shedding observable.
func (f *Fleet) ShedTenant(tenant, reason string) {
	f.mu.Lock()
	f.sheds[reason]++
	ts := f.tenantSheds[tenant]
	if ts == nil {
		ts = map[string]uint64{}
		f.tenantSheds[tenant] = ts
	}
	ts[reason]++
	f.mu.Unlock()
}

// Sheds returns a copy of the shed counters by reason.
func (f *Fleet) Sheds() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.sheds))
	for k, v := range f.sheds {
		out[k] = v
	}
	return out
}

// TenantSheds returns a copy of the per-tenant shed counters by reason.
func (f *Fleet) TenantSheds() map[string]map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]map[string]uint64, len(f.tenantSheds))
	for t, ts := range f.tenantSheds {
		m := make(map[string]uint64, len(ts))
		for k, v := range ts {
			m[k] = v
		}
		out[t] = m
	}
	return out
}

// SetStart fixes the fleet-wide time origin; job recorders created later
// inherit it.
func (f *Fleet) SetStart(t time.Time) {
	f.mu.Lock()
	f.start, f.started = t, true
	for _, r := range f.jobs {
		r.SetStart(t)
	}
	f.mu.Unlock()
}

// Job returns (creating on demand) the recorder of one job.
func (f *Fleet) Job(id string) *Recorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	if r, ok := f.jobs[id]; ok {
		return r
	}
	r := NewRecorder()
	if f.started {
		r.SetStart(f.start)
	}
	f.jobs[id] = r
	f.order = append(f.order, id)
	return r
}

// Remove forgets a job's recorder (eviction; completed jobs are usually
// kept so their timeline stays queryable).
func (f *Fleet) Remove(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.jobs, id)
	for i, oid := range f.order {
		if oid == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Jobs returns the known job ids in creation order.
func (f *Fleet) Jobs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// TotalLP returns the sum of every job's most recent LP observation — the
// machine-wide level of parallelism currently committed.
func (f *Fleet) TotalLP() int {
	f.mu.Lock()
	recs := make([]*Recorder, 0, len(f.jobs))
	for _, r := range f.jobs {
		recs = append(recs, r)
	}
	f.mu.Unlock()
	total := 0
	for _, r := range recs {
		if s, ok := r.Last(); ok {
			total += s.LP
		}
	}
	return total
}

// TotalLPSeries exports the aggregate LP step series: at every observation
// instant, the sum of each job's LP at that moment (jobs contribute 0
// before their first and after their last-zero sample). Time is scaled to
// unit from the fleet start (or the earliest sample when unset).
func (f *Fleet) TotalLPSeries(unit time.Duration) []Point {
	return f.totalSeries(unit, func(s Sample) int { return s.LP })
}

// TotalActiveSeries is TotalLPSeries for the active-worker counts.
func (f *Fleet) TotalActiveSeries(unit time.Duration) []Point {
	return f.totalSeries(unit, func(s Sample) int { return s.Active })
}

// TotalFaults sums the retry and terminal-fault events observed across
// every job's recorder.
func (f *Fleet) TotalFaults() (retries, faults uint64) {
	f.mu.Lock()
	recs := make([]*Recorder, 0, len(f.jobs))
	for _, r := range f.jobs {
		recs = append(recs, r)
	}
	f.mu.Unlock()
	for _, r := range recs {
		re, fa := r.FaultCounts()
		retries += re
		faults += fa
	}
	return retries, faults
}

// PeakTotalLP returns the maximum of the aggregate LP series.
func (f *Fleet) PeakTotalLP() int {
	peak := 0
	for _, p := range f.TotalLPSeries(time.Millisecond) {
		if p.V > peak {
			peak = p.V
		}
	}
	return peak
}

// sweepEvent is one job's value change during the aggregate sweep.
type sweepEvent struct {
	t     time.Time
	job   int
	value int
}

func (f *Fleet) totalSeries(unit time.Duration, val func(Sample) int) []Point {
	f.mu.Lock()
	start, started := f.start, f.started
	recs := make([]*Recorder, 0, len(f.jobs))
	for _, id := range f.order {
		recs = append(recs, f.jobs[id])
	}
	f.mu.Unlock()

	var events []sweepEvent
	for j, r := range recs {
		for _, s := range r.Samples() {
			events = append(events, sweepEvent{t: s.T, job: j, value: val(s)})
		}
	}
	if len(events) == 0 {
		return nil
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })
	if !started {
		start = events[0].t
	}

	cur := make([]int, len(recs))
	total := 0
	var out []Point
	for _, e := range events {
		total += e.value - cur[e.job]
		cur[e.job] = e.value
		p := Point{T: float64(e.t.Sub(start)) / float64(unit), V: total}
		if n := len(out); n > 0 && out[n-1].T == p.T {
			out[n-1].V = p.V
			continue
		}
		if n := len(out); n > 0 && out[n-1].V == p.V {
			continue
		}
		out = append(out, p)
	}
	return out
}
