package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
)

func at(ms int) time.Time { return clock.Epoch.Add(time.Duration(ms) * time.Millisecond) }

func TestRecorderSeries(t *testing.T) {
	r := NewRecorder()
	r.SetStart(at(0))
	r.Gauge(at(0), 1, 1)
	r.Gauge(at(10), 2, 4)
	r.Gauge(at(20), 2, 4) // duplicate level: collapsed in series
	r.Gauge(at(30), 0, 4)

	active := r.ActiveSeries(time.Millisecond)
	want := []Point{{0, 1}, {10, 2}, {30, 0}}
	if len(active) != len(want) {
		t.Fatalf("series %v, want %v", active, want)
	}
	for i := range want {
		if active[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, active[i], want[i])
		}
	}
	lp := r.LPSeries(time.Millisecond)
	if len(lp) != 2 || lp[0] != (Point{0, 1}) || lp[1] != (Point{10, 4}) {
		t.Fatalf("lp series %v", lp)
	}
}

func TestRecorderPeaks(t *testing.T) {
	r := NewRecorder()
	r.Gauge(at(0), 1, 2)
	r.Gauge(at(5), 7, 8)
	r.Gauge(at(9), 3, 4)
	if r.PeakActive() != 7 {
		t.Fatalf("peak active %d", r.PeakActive())
	}
	if r.PeakLP() != 8 {
		t.Fatalf("peak LP %d", r.PeakLP())
	}
}

func TestFirstLPAbove(t *testing.T) {
	r := NewRecorder()
	r.SetStart(at(0))
	r.Gauge(at(0), 1, 1)
	r.Gauge(at(42), 1, 6)
	d, ok := r.FirstLPAbove(1)
	if !ok || d != 42*time.Millisecond {
		t.Fatalf("FirstLPAbove = %v/%v", d, ok)
	}
	if _, ok := r.FirstLPAbove(10); ok {
		t.Fatal("LP never exceeded 10")
	}
}

func TestSamplesSortedEvenIfLate(t *testing.T) {
	r := NewRecorder()
	r.SetStart(at(0))
	r.Gauge(at(20), 2, 2)
	r.Gauge(at(10), 1, 1) // late arrival (concurrent gauges can race)
	s := r.Samples()
	if len(s) != 2 || s[0].T.After(s[1].T) {
		t.Fatalf("samples unsorted: %v", s)
	}
}

func TestCSV(t *testing.T) {
	r := NewRecorder()
	r.SetStart(at(0))
	r.Gauge(at(0), 1, 1)
	r.Gauge(at(1500), 3, 4)
	csv := r.CSV(time.Second)
	if !strings.HasPrefix(csv, "t,active,lp\n") {
		t.Fatalf("missing header: %q", csv)
	}
	if !strings.Contains(csv, "1.5000,3,4") {
		t.Fatalf("missing row: %q", csv)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Gauge(at(i), w, w+1)
			}
		}(w)
	}
	wg.Wait()
	if len(r.Samples()) != 2000 {
		t.Fatalf("lost samples: %d", len(r.Samples()))
	}
}

func TestAutoStart(t *testing.T) {
	r := NewRecorder()
	r.Gauge(at(100), 1, 1) // first sample anchors t=0
	pts := r.ActiveSeries(time.Millisecond)
	if len(pts) != 1 || pts[0].T != 0 {
		t.Fatalf("auto-start series: %v", pts)
	}
}
