package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Tweets: 100, Seed: 7})
	b := Generate(GenConfig{Tweets: 100, Seed: 7})
	if len(a.Tweets) != 100 || len(b.Tweets) != 100 {
		t.Fatalf("sizes: %d/%d", len(a.Tweets), len(b.Tweets))
	}
	for i := range a.Tweets {
		if a.Tweets[i] != b.Tweets[i] {
			t.Fatalf("tweet %d differs for equal seeds", i)
		}
	}
	c := Generate(GenConfig{Tweets: 100, Seed: 8})
	same := true
	for i := range a.Tweets {
		if a.Tweets[i] != c.Tweets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateContainsTagsAndMentions(t *testing.T) {
	c := Generate(GenConfig{Tweets: 500, Seed: 1})
	hasTag, hasUser := false, false
	for _, tw := range c.Tweets {
		if strings.Contains(tw, "#tag") {
			hasTag = true
		}
		if strings.Contains(tw, "@user") {
			hasUser = true
		}
	}
	if !hasTag || !hasUser {
		t.Fatalf("corpus lacks tags (%v) or mentions (%v)", hasTag, hasUser)
	}
}

func TestSplitChunkPartition(t *testing.T) {
	c := Generate(GenConfig{Tweets: 103, Seed: 1})
	full := Chunk{Corpus: c, Lo: 0, Hi: 103}
	parts := SplitChunk(full, 5)
	if len(parts) != 5 {
		t.Fatalf("got %d parts", len(parts))
	}
	covered := 0
	prevHi := 0
	for _, p := range parts {
		if p.Lo != prevHi {
			t.Fatalf("gap or overlap at %d", p.Lo)
		}
		prevHi = p.Hi
		covered += p.Len()
	}
	if covered != 103 || prevHi != 103 {
		t.Fatalf("partition covers %d", covered)
	}
}

func TestSplitChunkSmallerThanK(t *testing.T) {
	c := Generate(GenConfig{Tweets: 3, Seed: 1})
	parts := SplitChunk(Chunk{Corpus: c, Lo: 0, Hi: 3}, 10)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	if got := SplitChunk(Chunk{Corpus: c, Lo: 1, Hi: 1}, 4); got != nil {
		t.Fatalf("empty chunk split: %v", got)
	}
}

// Property: splitting then counting then merging equals counting the whole
// chunk, for any split fan-out — the map/merge semantics the paper's
// program relies on.
func TestSplitCountMergeEquivalence(t *testing.T) {
	c := Generate(GenConfig{Tweets: 200, Seed: 3})
	full := Chunk{Corpus: c, Lo: 0, Hi: 200}
	whole := CountChunk(full)
	f := func(kRaw uint8) bool {
		k := int(kRaw%16) + 1
		parts := SplitChunk(full, k)
		counts := make([]Counts, len(parts))
		for i, p := range parts {
			counts[i] = CountChunk(p)
		}
		merged := MergeCounts(counts)
		if len(merged) != len(whole) {
			return false
		}
		for tag, n := range whole {
			if merged[tag] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Fatal(err)
	}
}

func TestCountChunkParsesTokens(t *testing.T) {
	c := &Corpus{Tweets: []string{"hola #gol @ana #gol", "# @ solo texto", "#gol fin"}}
	counts := CountChunk(Chunk{Corpus: c, Lo: 0, Hi: 3})
	if counts["#gol"] != 3 {
		t.Fatalf("#gol = %d, want 3", counts["#gol"])
	}
	if counts["@ana"] != 1 {
		t.Fatalf("@ana = %d", counts["@ana"])
	}
	if _, ok := counts["#"]; ok {
		t.Fatal("bare # counted")
	}
	if counts.Total() != 4 {
		t.Fatalf("total = %d, want 4", counts.Total())
	}
}

func TestTop(t *testing.T) {
	counts := Counts{"#a": 3, "#b": 5, "#c": 3, "#d": 1}
	top := counts.Top(3)
	if len(top) != 3 || top[0] != "#b" || top[1] != "#a" || top[2] != "#c" {
		t.Fatalf("top = %v", top)
	}
	if got := counts.Top(10); len(got) != 4 {
		t.Fatalf("top(10) = %v", got)
	}
}

func TestMergeCountsEmpty(t *testing.T) {
	if got := MergeCounts(nil); len(got) != 0 {
		t.Fatalf("merge(nil) = %v", got)
	}
}
