package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Overload traffic generation: a seeded, multi-tenant Poisson arrival
// pattern for the admission-ladder harness. Everything is derived from the
// pattern's seed, so the same pattern always produces byte-identical
// arrival schedules — the overload tests replay hundreds of thousands of
// submissions deterministically on one CPU under virtual time.

// TenantLoad describes one tenant's traffic in an overload pattern.
type TenantLoad struct {
	Name   string
	Weight int // arbiter/admission weight (informational; the harness configures the server with it)
	// Rate is the steady-state arrival rate in jobs per second; BurstRate
	// replaces it inside the pattern's burst window (0 = keep Rate).
	Rate      float64
	BurstRate float64
	// Priority tags every arrival from this tenant (<0 sheds first, >0
	// rides to the hard wall).
	Priority int
	// GoalFrac is the fraction of arrivals carrying a WCT goal, drawn
	// per-arrival from the tenant's RNG.
	GoalFrac float64
}

// Arrival is one synthetic submission, ordered by At (virtual time offset
// from the pattern start).
type Arrival struct {
	At       time.Duration
	Tenant   string
	Priority int
	// Work is the total CPU the job needs (LP×time); WantLP is how many
	// processors it asks the arbiter for.
	Work   time.Duration
	WantLP int
	// Goal is a WCT goal in virtual time (0 = none).
	Goal time.Duration
}

// OverloadPattern is a seeded description of an overload episode: a warm-up
// at steady rates, a burst window at burst rates, and a cool-down back at
// steady rates until Duration.
type OverloadPattern struct {
	Seed       int64
	Duration   time.Duration
	BurstStart time.Duration
	BurstEnd   time.Duration
	Tenants    []TenantLoad
	// MeanWork is the mean of the exponential per-job work distribution
	// (default 100ms); MaxWantLP bounds the uniform LP ask (default 4).
	MeanWork  time.Duration
	MaxWantLP int
}

// Arrivals expands the pattern into its full, time-sorted arrival schedule.
// Each tenant draws from its own RNG (derived from Seed and the tenant's
// position), so adding a tenant never perturbs the others' schedules.
func (p OverloadPattern) Arrivals() []Arrival {
	meanWork := p.MeanWork
	if meanWork <= 0 {
		meanWork = 100 * time.Millisecond
	}
	maxLP := p.MaxWantLP
	if maxLP < 1 {
		maxLP = 4
	}
	var out []Arrival
	for i, tl := range p.Tenants {
		rng := rand.New(rand.NewSource(p.Seed + int64(i)*7919)) // offset by a prime: distinct streams
		burst := tl.BurstRate
		if burst <= 0 {
			burst = tl.Rate
		}
		at := time.Duration(0)
		for {
			rate := tl.Rate
			if at >= p.BurstStart && at < p.BurstEnd {
				rate = burst
			}
			if rate <= 0 {
				// No traffic in this regime: jump to the next regime edge.
				if at < p.BurstStart && burst > 0 {
					at = p.BurstStart
					continue
				}
				break
			}
			// Exponential inter-arrival for a Poisson process at rate/s.
			gap := time.Duration(-math.Log(1-rng.Float64()) / rate * float64(time.Second))
			if gap < time.Microsecond {
				gap = time.Microsecond
			}
			at += gap
			if at >= p.Duration {
				break
			}
			work := time.Duration(-math.Log(1-rng.Float64()) * float64(meanWork))
			if work < time.Millisecond {
				work = time.Millisecond
			}
			a := Arrival{
				At:       at,
				Tenant:   tl.Name,
				Priority: tl.Priority,
				Work:     work,
				WantLP:   1 + rng.Intn(maxLP),
			}
			if tl.GoalFrac > 0 && rng.Float64() < tl.GoalFrac {
				// A goal around 2× the serial work at the asked LP: tight
				// enough to drive the controller, loose enough to be metable.
				a.Goal = 2 * work / time.Duration(a.WantLP)
			}
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
