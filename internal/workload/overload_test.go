package workload

import (
	"testing"
	"time"
)

func pattern(seed int64) OverloadPattern {
	return OverloadPattern{
		Seed:       seed,
		Duration:   10 * time.Second,
		BurstStart: 2 * time.Second,
		BurstEnd:   8 * time.Second,
		Tenants: []TenantLoad{
			{Name: "alpha", Weight: 3, Rate: 10, BurstRate: 60, GoalFrac: 0.5},
			{Name: "beta", Weight: 2, Rate: 10, BurstRate: 40},
			{Name: "gamma", Weight: 1, Rate: 10, BurstRate: 20, Priority: -1},
		},
	}
}

func TestOverloadArrivalsDeterministic(t *testing.T) {
	a, b := pattern(42).Arrivals(), pattern(42).Arrivals()
	if len(a) == 0 {
		t.Fatalf("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := pattern(43).Arrivals()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestOverloadArrivalsSortedAndBounded(t *testing.T) {
	p := pattern(1)
	as := p.Arrivals()
	counts := map[string]int{}
	burstCounts := map[string]int{}
	for i, a := range as {
		if i > 0 && a.At < as[i-1].At {
			t.Fatalf("arrivals unsorted at %d: %v < %v", i, a.At, as[i-1].At)
		}
		if a.At < 0 || a.At >= p.Duration {
			t.Fatalf("arrival %d outside [0, Duration): %v", i, a.At)
		}
		if a.Work < time.Millisecond {
			t.Fatalf("arrival %d work too small: %v", i, a.Work)
		}
		if a.WantLP < 1 || a.WantLP > 4 {
			t.Fatalf("arrival %d WantLP %d outside [1, 4]", i, a.WantLP)
		}
		counts[a.Tenant]++
		if a.At >= p.BurstStart && a.At < p.BurstEnd {
			burstCounts[a.Tenant]++
		}
	}
	for _, tl := range p.Tenants {
		if counts[tl.Name] == 0 {
			t.Fatalf("tenant %s generated no arrivals", tl.Name)
		}
	}
	// The burst window really bursts: alpha's 6s at 60/s dwarfs its 4s at
	// 10/s; expect the clear majority of its arrivals inside the window.
	if frac := float64(burstCounts["alpha"]) / float64(counts["alpha"]); frac < 0.7 {
		t.Fatalf("alpha burst fraction %.2f, want > 0.7", frac)
	}
}

func TestOverloadPriorityAndGoalTagging(t *testing.T) {
	as := pattern(7).Arrivals()
	goals := 0
	for _, a := range as {
		switch a.Tenant {
		case "gamma":
			if a.Priority != -1 {
				t.Fatalf("gamma arrival priority %d, want -1", a.Priority)
			}
		default:
			if a.Priority != 0 {
				t.Fatalf("%s arrival priority %d, want 0", a.Tenant, a.Priority)
			}
		}
		if a.Tenant == "alpha" && a.Goal > 0 {
			goals++
		}
		if a.Tenant != "alpha" && a.Goal != 0 {
			t.Fatalf("%s arrival has a goal but GoalFrac is 0", a.Tenant)
		}
	}
	if goals == 0 {
		t.Fatalf("alpha GoalFrac 0.5 produced no goals")
	}
}

func TestOverloadTenantStreamsIndependent(t *testing.T) {
	// Dropping a tenant must not change the other tenants' schedules:
	// per-tenant RNG streams are independent.
	full := pattern(11).Arrivals()
	p := pattern(11)
	p.Tenants = p.Tenants[:2] // drop gamma
	trimmed := p.Arrivals()
	var fullAB []Arrival
	for _, a := range full {
		if a.Tenant != "gamma" {
			fullAB = append(fullAB, a)
		}
	}
	if len(fullAB) != len(trimmed) {
		t.Fatalf("alpha+beta schedule changed when gamma was dropped: %d vs %d", len(fullAB), len(trimmed))
	}
	for i := range trimmed {
		if fullAB[i] != trimmed[i] {
			t.Fatalf("arrival %d changed when gamma was dropped", i)
		}
	}
}
