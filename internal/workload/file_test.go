package workload

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadCorpusRoundTrip(t *testing.T) {
	c := Generate(GenConfig{Tweets: 300, Seed: 5})
	path := filepath.Join(t.TempDir(), "tweets.txt")
	if err := SaveCorpus(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tweets) != len(c.Tweets) {
		t.Fatalf("loaded %d tweets, want %d", len(got.Tweets), len(c.Tweets))
	}
	for i := range c.Tweets {
		if got.Tweets[i] != c.Tweets[i] {
			t.Fatalf("tweet %d differs", i)
		}
	}
}

func TestLoadCorpusMissingFile(t *testing.T) {
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveCorpusRejectsNewlines(t *testing.T) {
	c := &Corpus{Tweets: []string{"ok", "bad\ntweet"}}
	if err := SaveCorpus(filepath.Join(t.TempDir(), "x.txt"), c); err == nil {
		t.Fatal("embedded newline accepted")
	}
}

func TestCountReaderMatchesCountChunk(t *testing.T) {
	c := Generate(GenConfig{Tweets: 200, Seed: 9})
	whole := CountChunk(Chunk{Corpus: c, Lo: 0, Hi: len(c.Tweets)})
	streamed, err := CountReader(strings.NewReader(strings.Join(c.Tweets, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(whole) || streamed.Total() != whole.Total() {
		t.Fatalf("streamed %d/%d vs chunked %d/%d",
			len(streamed), streamed.Total(), len(whole), whole.Total())
	}
	for k, v := range whole {
		if streamed[k] != v {
			t.Fatalf("%s: %d vs %d", k, streamed[k], v)
		}
	}
}

func TestReadCorpusEmpty(t *testing.T) {
	c, err := ReadCorpus(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tweets) != 0 {
		t.Fatalf("got %d tweets", len(c.Tweets))
	}
}
