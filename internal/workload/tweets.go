// Package workload provides the evaluation workload of the paper's §5: a
// hashtag and commented-user (@mention) count over a tweet corpus,
// modelled as two nested map skeletons map(fs, map(fs, seq(fe), fm), fm).
//
// The paper used 1.2M Colombian tweets (July 25 - August 5, 2013) whose
// download link is dead; this package substitutes a seeded synthetic corpus
// with the same relevant structure — lines of text containing #hashtags and
// @mentions drawn from a skewed vocabulary — and word-count muscles
// operating on it. For simulator runs, PaperCosts reproduces the duration
// profile stated in the paper (first split 6.4 s dominated by I/O,
// second-level splits ~7x faster, ~40 ms execute and merge muscles,
// sequential total ~12.5 s).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Corpus is a generated tweet collection.
type Corpus struct {
	Tweets []string
}

// GenConfig controls corpus generation.
type GenConfig struct {
	// Tweets is the number of tweets (paper: 1.2M; tests use far fewer).
	Tweets int
	// Hashtags / Users are vocabulary sizes.
	Hashtags int
	Users    int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultGen is a laptop-sized corpus with the paper's flavour.
var DefaultGen = GenConfig{Tweets: 50000, Hashtags: 400, Users: 1200, Seed: 20130725}

// Generate builds a synthetic corpus. Tag frequencies are Zipf-like so
// counts have a realistic skew.
func Generate(cfg GenConfig) *Corpus {
	if cfg.Tweets <= 0 {
		cfg.Tweets = DefaultGen.Tweets
	}
	if cfg.Hashtags <= 0 {
		cfg.Hashtags = DefaultGen.Hashtags
	}
	if cfg.Users <= 0 {
		cfg.Users = DefaultGen.Users
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hz := rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.Hashtags-1))
	uz := rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.Users-1))
	words := []string{"hola", "que", "rico", "vamos", "gol", "hoy", "siempre",
		"nunca", "bien", "gracias", "feliz", "noche", "dia", "vida", "pues"}
	tweets := make([]string, cfg.Tweets)
	var b strings.Builder
	for i := range tweets {
		b.Reset()
		n := 4 + rng.Intn(8)
		for w := 0; w < n; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			switch rng.Intn(6) {
			case 0:
				fmt.Fprintf(&b, "#tag%d", hz.Uint64())
			case 1:
				fmt.Fprintf(&b, "@user%d", uz.Uint64())
			default:
				b.WriteString(words[rng.Intn(len(words))])
			}
		}
		tweets[i] = b.String()
	}
	return &Corpus{Tweets: tweets}
}

// Chunk is a slice of the corpus processed by one muscle invocation.
type Chunk struct {
	Corpus *Corpus
	Lo, Hi int // tweet index range [Lo, Hi)
}

// Len returns the number of tweets in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// SplitChunk partitions a chunk into k near-equal sub-chunks (the paper's
// fs). Fewer than k tweets yield one chunk per tweet.
func SplitChunk(c Chunk, k int) []Chunk {
	n := c.Len()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	out := make([]Chunk, 0, k)
	for i := 0; i < k; i++ {
		lo := c.Lo + i*n/k
		hi := c.Lo + (i+1)*n/k
		out = append(out, Chunk{Corpus: c.Corpus, Lo: lo, Hi: hi})
	}
	return out
}

// Counts maps a tag ("#x" or "@y") to its number of occurrences — the
// paper's partial solution (a Java HashMap there).
type Counts map[string]int

// CountChunk tallies hashtags and commented users in a chunk (the paper's
// fe).
func CountChunk(c Chunk) Counts {
	counts := make(Counts)
	for _, tw := range c.Corpus.Tweets[c.Lo:c.Hi] {
		for _, tok := range strings.Fields(tw) {
			if len(tok) > 1 && (tok[0] == '#' || tok[0] == '@') {
				counts[tok]++
			}
		}
	}
	return counts
}

// MergeCounts folds partial counts into a global count (the paper's fm).
func MergeCounts(parts []Counts) Counts {
	total := make(Counts)
	for _, p := range parts {
		for k, v := range p {
			total[k] += v
		}
	}
	return total
}

// Top returns the n most frequent tags, ties broken lexicographically.
func (c Counts) Top(n int) []string {
	type kv struct {
		k string
		v int
	}
	all := make([]kv, 0, len(c))
	for k, v := range c {
		all = append(all, kv{k, v})
	}
	// insertion-sort by (count desc, key asc); corpora are small enough.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if b.v > a.v || (b.v == a.v && b.k < a.k) {
				all[j-1], all[j] = all[j], all[j-1]
			} else {
				break
			}
		}
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].k
	}
	return out
}

// Total returns the sum of all counts.
func (c Counts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}
