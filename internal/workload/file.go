package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// SaveCorpus writes the corpus as a text file, one tweet per line — the
// on-disk shape of the paper's input (a tweet dump read by the first
// split).
func SaveCorpus(path string, c *Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: creating corpus file: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, tw := range c.Tweets {
		if strings.ContainsRune(tw, '\n') {
			f.Close()
			return fmt.Errorf("workload: tweet contains newline")
		}
		if _, err := w.WriteString(tw); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCorpus reads a corpus file written by SaveCorpus. This is the
// I/O-bound operation that dominates the paper's first split (6.4 of
// 12.5 s): no parallelism helps until the stream has been read.
func LoadCorpus(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: opening corpus file: %w", err)
	}
	defer f.Close()
	c, err := ReadCorpus(f)
	if err != nil {
		return nil, fmt.Errorf("workload: reading %s: %w", path, err)
	}
	return c, nil
}

// ReadCorpus reads one tweet per line from r.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var tweets []string
	for sc.Scan() {
		tweets = append(tweets, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Corpus{Tweets: tweets}, nil
}

// CountReader tallies hashtags and mentions straight from a stream without
// materializing the corpus — the fully streaming fe variant.
func CountReader(r io.Reader) (Counts, error) {
	counts := make(Counts)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		for _, tok := range strings.Fields(sc.Text()) {
			if len(tok) > 1 && (tok[0] == '#' || tok[0] == '@') {
				counts[tok]++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return counts, nil
}
