package workload

import (
	"strings"
	"testing"
)

// FuzzCountReader: arbitrary input never panics, and counting a stream
// equals counting the same lines as a chunk.
func FuzzCountReader(f *testing.F) {
	f.Add("hola #gol @ana\n#gol fin")
	f.Add("")
	f.Add("# @ ##double @@x\n\n\n#y")
	f.Fuzz(func(t *testing.T, input string) {
		streamed, err := CountReader(strings.NewReader(input))
		if err != nil {
			t.Skip() // scanner limits on pathological input
		}
		c := &Corpus{Tweets: strings.Split(input, "\n")}
		chunked := CountChunk(Chunk{Corpus: c, Lo: 0, Hi: len(c.Tweets)})
		if len(streamed) != len(chunked) || streamed.Total() != chunked.Total() {
			t.Fatalf("streamed %d/%d vs chunked %d/%d",
				len(streamed), streamed.Total(), len(chunked), chunked.Total())
		}
	})
}

// FuzzSplitChunk: any split covers the chunk exactly, in order, gap-free.
func FuzzSplitChunk(f *testing.F) {
	f.Add(10, 3)
	f.Add(0, 1)
	f.Add(1, 100)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n < 0 || n > 10000 {
			t.Skip()
		}
		c := &Corpus{Tweets: make([]string, n)}
		parts := SplitChunk(Chunk{Corpus: c, Lo: 0, Hi: n}, k)
		covered := 0
		prev := 0
		for _, p := range parts {
			if p.Lo != prev || p.Hi < p.Lo {
				t.Fatalf("bad partition at %d: %+v", prev, p)
			}
			prev = p.Hi
			covered += p.Len()
		}
		if n > 0 && k > 0 {
			if covered != n || prev != n {
				t.Fatalf("covered %d of %d", covered, n)
			}
		}
	})
}
