package exec

import (
	"fmt"
	"sync"

	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// Instr is one step of skeleton interpretation. interpret may mutate the
// task (its param and instruction stack) and may return child tasks; when it
// does, the worker submits the children and parks the task until they all
// complete. Instructions are created at run time and are used exactly once;
// pooled instruction types implement releasable and are recycled by the
// worker right after their single interpret call.
type Instr interface {
	interpret(w *worker, t *Task) (children []*Task, err error)
}

// releasable is implemented by pooled instructions; the worker calls
// release exactly once, after interpret returns.
type releasable interface{ release() }

// instrPool recycles one instruction type through a sync.Pool.
type instrPool[T any] struct{ p sync.Pool }

func (ip *instrPool[T]) get() *T {
	if v := ip.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

func (ip *instrPool[T]) put(x *T) {
	var zero T
	*x = zero
	ip.p.Put(x)
}

// instrFor builds the entry instruction for one activation of the program
// step. parent is the activation index of the enclosing skeleton
// activation (event.NoParent at the root). The instruction's trace is the
// step's precompiled static trace. A step annotated as the root of a fused
// serial chain is entered through the single fused instruction; only this
// static-trace entry takes that path — divide&conquer re-entry with a
// dynamically grown trace goes through instrWithTrace and stays on the
// per-step instructions.
func instrFor(step *plan.Step, parent int64) Instr {
	if fp := step.Fused(); fp != nil {
		return fusedFor(fp, parent)
	}
	return instrWithTrace(step, parent, step.Trace())
}

// instrWithTrace is instrFor with an explicit trace — divide&conquer
// recursion re-enters steps with a longer, dynamically grown trace.
func instrWithTrace(step *plan.Step, parent int64, tr []*skel.Node) Instr {
	switch step.Op() {
	case plan.OpExec:
		in := seqPool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpWrap:
		in := farmPool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpStages:
		in := pipePool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpLoop:
		in := whilePool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpSelect:
		in := ifPool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpRepeat:
		in := forPool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpFanOut:
		in := mapPool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpFanFixed:
		in := forkPool.get()
		in.step, in.parent, in.trace = step, parent, tr
		return in
	case plan.OpRecurse:
		in := dacPool.get()
		in.step, in.parent, in.trace, in.depth = step, parent, tr, 0
		return in
	default:
		// An unknown op is unreachable through Compile, but a forged or
		// future Step must fail the root cleanly instead of panicking the
		// worker goroutine.
		return badOpInst{op: step.Op()}
	}
}

// badOpInst fails the root for a program operation the interpreter does not
// know.
type badOpInst struct{ op plan.Op }

func (in badOpInst) interpret(w *worker, t *Task) ([]*Task, error) {
	return nil, fmt.Errorf("skandium: unknown program operation %v", in.op)
}

// MuscleError wraps an error (or recovered panic) raised by a muscle, adding
// the muscle identity and the skeleton trace for diagnosis.
type MuscleError struct {
	Muscle *muscle.Muscle
	Trace  []*skel.Node
	Err    error
}

// Error implements error.
func (e *MuscleError) Error() string {
	loc := "?"
	if len(e.Trace) > 0 {
		loc = e.Trace[len(e.Trace)-1].Kind().String()
	}
	return fmt.Sprintf("skandium: muscle %s in %s failed: %v", e.Muscle, loc, e.Err)
}

// Unwrap exposes the underlying error.
func (e *MuscleError) Unwrap() error { return e.Err }

// emitter bundles the arguments common to every event of one activation.
type emitter struct {
	root   *Root
	w      *worker
	nd     *skel.Node
	trace  []*skel.Node
	idx    int64
	parent int64
}

// emit raises one event and returns the (possibly listener-replaced)
// partial solution. mod, when non-nil, sets the extra payload fields. When
// no listener can match the event's slot, the Event is never constructed —
// the emission costs two atomic loads. Events are pooled: they are valid
// only during the listener calls.
func (em emitter) emit(when event.When, where event.Where, param any, mod func(*event.Event)) any {
	reg := em.root.events
	if !reg.Wants(em.nd.Kind(), when, where) {
		return param
	}
	e := event.Acquire()
	e.Node = em.nd
	e.Trace = em.trace
	e.Index = em.idx
	e.Parent = em.parent
	e.When = when
	e.Where = where
	e.Param = param
	e.Time = em.root.clk.Now()
	e.Worker = workerID(em.w)
	if mod != nil {
		mod(e)
	}
	p := reg.Emit(e)
	event.Release(e)
	return p
}

func workerID(w *worker) int {
	if w == nil {
		return -1
	}
	return w.id
}
