package exec

import (
	"fmt"
	"sync"

	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// Instr is one step of skeleton interpretation. interpret may mutate the
// task (its param and instruction stack) and may return child tasks; when it
// does, the worker submits the children and parks the task until they all
// complete. Instructions are created at run time and are used exactly once;
// pooled instruction types implement releasable and are recycled by the
// worker right after their single interpret call.
type Instr interface {
	interpret(w *worker, t *Task) (children []*Task, err error)
}

// releasable is implemented by pooled instructions; the worker calls
// release exactly once, after interpret returns.
type releasable interface{ release() }

// instrPool recycles one instruction type through a sync.Pool.
type instrPool[T any] struct{ p sync.Pool }

func (ip *instrPool[T]) get() *T {
	if v := ip.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

func (ip *instrPool[T]) put(x *T) {
	var zero T
	*x = zero
	ip.p.Put(x)
}

// instrFor builds the entry instruction for one activation of the skeleton
// at site. parent is the activation index of the enclosing skeleton
// activation (event.NoParent at the root). The instruction's trace is the
// site's precomputed static trace.
func instrFor(site *skel.Site, parent int64) Instr {
	return instrWithTrace(site, parent, site.Trace())
}

// instrWithTrace is instrFor with an explicit trace — divide&conquer
// recursion re-enters sites with a longer, dynamically grown trace.
func instrWithTrace(site *skel.Site, parent int64, tr []*skel.Node) Instr {
	switch site.Node().Kind() {
	case skel.Seq:
		in := seqPool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.Farm:
		in := farmPool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.Pipe:
		in := pipePool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.While:
		in := whilePool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.If:
		in := ifPool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.For:
		in := forPool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.Map:
		in := mapPool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.Fork:
		in := forkPool.get()
		in.site, in.parent, in.trace = site, parent, tr
		return in
	case skel.DaC:
		in := dacPool.get()
		in.site, in.parent, in.trace, in.depth = site, parent, tr, 0
		return in
	default:
		// An unknown kind is unreachable through the public constructors,
		// but a forged or future Node must fail the root cleanly instead of
		// panicking the worker goroutine.
		return badKindInst{kind: site.Node().Kind()}
	}
}

// badKindInst fails the root for a skeleton kind the interpreter does not
// know.
type badKindInst struct{ kind skel.Kind }

func (in badKindInst) interpret(w *worker, t *Task) ([]*Task, error) {
	return nil, fmt.Errorf("skandium: unknown skeleton kind %v", in.kind)
}

// MuscleError wraps an error (or recovered panic) raised by a muscle, adding
// the muscle identity and the skeleton trace for diagnosis.
type MuscleError struct {
	Muscle *muscle.Muscle
	Trace  []*skel.Node
	Err    error
}

// Error implements error.
func (e *MuscleError) Error() string {
	loc := "?"
	if len(e.Trace) > 0 {
		loc = e.Trace[len(e.Trace)-1].Kind().String()
	}
	return fmt.Sprintf("skandium: muscle %s in %s failed: %v", e.Muscle, loc, e.Err)
}

// Unwrap exposes the underlying error.
func (e *MuscleError) Unwrap() error { return e.Err }

// emitter bundles the arguments common to every event of one activation.
type emitter struct {
	root   *Root
	w      *worker
	nd     *skel.Node
	trace  []*skel.Node
	idx    int64
	parent int64
}

// emit raises one event and returns the (possibly listener-replaced)
// partial solution. mod, when non-nil, sets the extra payload fields. When
// no listener can match the event's slot, the Event is never constructed —
// the emission costs two atomic loads. Events are pooled: they are valid
// only during the listener calls.
func (em emitter) emit(when event.When, where event.Where, param any, mod func(*event.Event)) any {
	reg := em.root.events
	if !reg.Wants(em.nd.Kind(), when, where) {
		return param
	}
	e := event.Acquire()
	e.Node = em.nd
	e.Trace = em.trace
	e.Index = em.idx
	e.Parent = em.parent
	e.When = when
	e.Where = where
	e.Param = param
	e.Time = em.root.clk.Now()
	e.Worker = workerID(em.w)
	if mod != nil {
		mod(e)
	}
	p := reg.Emit(e)
	event.Release(e)
	return p
}

func workerID(w *worker) int {
	if w == nil {
		return -1
	}
	return w.id
}
