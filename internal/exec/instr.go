package exec

import (
	"fmt"

	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// Instr is one step of skeleton interpretation. interpret may mutate the
// task (its param and instruction stack) and may return child tasks; when it
// does, the worker submits the children and parks the task until they all
// complete. Instructions are created at run time and are used exactly once.
type Instr interface {
	interpret(w *worker, t *Task) (children []*Task, err error)
}

// instrFor builds the entry instruction for one activation of nd. parent is
// the activation index of the enclosing skeleton activation (event.NoParent
// at the root); trace is the static path from the root up to and including
// nd's parent.
func instrFor(nd *skel.Node, parent int64, trace []*skel.Node) Instr {
	tr := appendTrace(trace, nd)
	switch nd.Kind() {
	case skel.Seq:
		return &seqInst{nd: nd, parent: parent, trace: tr}
	case skel.Farm:
		return &farmInst{nd: nd, parent: parent, trace: tr}
	case skel.Pipe:
		return &pipeInst{nd: nd, parent: parent, trace: tr}
	case skel.While:
		return &whileInst{nd: nd, parent: parent, trace: tr}
	case skel.If:
		return &ifInst{nd: nd, parent: parent, trace: tr}
	case skel.For:
		return &forInst{nd: nd, parent: parent, trace: tr}
	case skel.Map:
		return &mapInst{nd: nd, parent: parent, trace: tr}
	case skel.Fork:
		return &forkInst{nd: nd, parent: parent, trace: tr}
	case skel.DaC:
		return &dacInst{nd: nd, parent: parent, trace: tr, depth: 0}
	default:
		// An unknown kind is unreachable through the public constructors,
		// but a forged or future Node must fail the root cleanly instead of
		// panicking the worker goroutine.
		return badKindInst{kind: nd.Kind()}
	}
}

// badKindInst fails the root for a skeleton kind the interpreter does not
// know.
type badKindInst struct{ kind skel.Kind }

func (in badKindInst) interpret(w *worker, t *Task) ([]*Task, error) {
	return nil, fmt.Errorf("skandium: unknown skeleton kind %v", in.kind)
}

// MuscleError wraps an error (or recovered panic) raised by a muscle, adding
// the muscle identity and the skeleton trace for diagnosis.
type MuscleError struct {
	Muscle *muscle.Muscle
	Trace  []*skel.Node
	Err    error
}

// Error implements error.
func (e *MuscleError) Error() string {
	loc := "?"
	if len(e.Trace) > 0 {
		loc = e.Trace[len(e.Trace)-1].Kind().String()
	}
	return fmt.Sprintf("skandium: muscle %s in %s failed: %v", e.Muscle, loc, e.Err)
}

// Unwrap exposes the underlying error.
func (e *MuscleError) Unwrap() error { return e.Err }

// emitter bundles the arguments common to every event of one activation.
type emitter struct {
	root   *Root
	w      *worker
	nd     *skel.Node
	trace  []*skel.Node
	idx    int64
	parent int64
}

// emit raises one event and returns the (possibly listener-replaced)
// partial solution. mod, when non-nil, sets the extra payload fields.
func (em emitter) emit(when event.When, where event.Where, param any, mod func(*event.Event)) any {
	e := &event.Event{
		Node:   em.nd,
		Trace:  em.trace,
		Index:  em.idx,
		Parent: em.parent,
		When:   when,
		Where:  where,
		Param:  param,
		Time:   em.root.clk.Now(),
		Worker: workerID(em.w),
	}
	if mod != nil {
		mod(e)
	}
	return em.root.events.Emit(e)
}

func workerID(w *worker) int {
	if w == nil {
		return -1
	}
	return w.id
}
