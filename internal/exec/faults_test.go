package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// runFaulty executes nd with the given fault config on a fresh pool.
func runFaulty(t *testing.T, nd *skel.Node, param any, lp int, cfg FaultConfig) (*Root, any, error) {
	t.Helper()
	pool := NewPool(clock.System, lp, 0)
	t.Cleanup(pool.Close)
	root := NewRoot(pool, nil, nil)
	root.SetFaults(cfg)
	res, err := root.Start(nd, param).GetContext(testCtx(t))
	return root, res, err
}

// flaky fails the first n invocations, then succeeds returning p+1.
func flaky(n int) *muscle.Muscle {
	var calls atomic.Int64
	return muscle.NewExecute("flaky", func(p any) (any, error) {
		if calls.Add(1) <= int64(n) {
			return nil, errors.New("transient")
		}
		return p.(int) + 1, nil
	})
}

func TestRetryRecoversTransientFault(t *testing.T) {
	root, res, err := runFaulty(t, skel.NewSeq(flaky(2)), 1, 1, FaultConfig{
		Retry: RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != 2 {
		t.Fatalf("res = %v, want 2", res)
	}
	st := root.FaultStats()
	if st.Retries != 2 || st.Faults != 0 {
		t.Fatalf("stats = %+v, want 2 retries, 0 faults", st)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	root, _, err := runFaulty(t, skel.NewSeq(flaky(10)), 1, 1, FaultConfig{
		Retry: RetryPolicy{MaxAttempts: 3},
	})
	var me *MuscleError
	if !errors.As(err, &me) {
		t.Fatalf("want MuscleError, got %v", err)
	}
	st := root.FaultStats()
	if st.Retries != 2 || st.Faults != 1 {
		t.Fatalf("stats = %+v, want 2 retries, 1 fault", st)
	}
}

func TestRetryIfRejectsError(t *testing.T) {
	root, _, err := runFaulty(t, skel.NewSeq(flaky(1)), 1, 1, FaultConfig{
		Retry: RetryPolicy{MaxAttempts: 5, RetryIf: func(error) bool { return false }},
	})
	if err == nil {
		t.Fatal("want failure when RetryIf rejects")
	}
	if st := root.FaultStats(); st.Retries != 0 || st.Faults != 1 {
		t.Fatalf("stats = %+v, want 0 retries, 1 fault", st)
	}
}

func TestRetryEmitsRetryAndFaultEvents(t *testing.T) {
	reg := event.NewRegistry()
	var retries, faults atomic.Int64
	reg.Add(event.Func(func(e *event.Event) any {
		switch e.Where {
		case event.Retry:
			if e.Err == nil {
				t.Error("Retry event without Err")
			}
			retries.Add(1)
		case event.Fault:
			if e.Err == nil {
				t.Error("Fault event without Err")
			}
			faults.Add(1)
		}
		return e.Param
	}))
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	root := NewRoot(pool, reg, nil)
	root.SetFaults(FaultConfig{Retry: RetryPolicy{MaxAttempts: 2}})
	_, err := root.Start(skel.NewSeq(flaky(5)), 1).GetContext(testCtx(t))
	if err == nil {
		t.Fatal("want terminal failure")
	}
	if retries.Load() != 1 || faults.Load() != 1 {
		t.Fatalf("saw %d retry, %d fault events, want 1 and 1", retries.Load(), faults.Load())
	}
}

func TestMuscleTimeout(t *testing.T) {
	blocked := make(chan struct{})
	defer close(blocked)
	hang := muscle.NewExecute("hang", func(p any) (any, error) {
		<-blocked
		return p, nil
	})
	root, _, err := runFaulty(t, skel.NewSeq(hang), 1, 1, FaultConfig{
		Timeout: 20 * time.Millisecond,
	})
	if !errors.Is(err, ErrMuscleTimeout) {
		t.Fatalf("want ErrMuscleTimeout, got %v", err)
	}
	var me *MuscleError
	if !errors.As(err, &me) {
		t.Fatalf("timeout not wrapped in MuscleError: %v", err)
	}
	if st := root.FaultStats(); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}

// gridNode builds map(range, seq(fe), sum) where fe fails for even inputs
// and returns 1 for odd ones; run with param n for n branches.
func gridNode() *skel.Node {
	fe := muscle.NewExecute("one", func(p any) (any, error) {
		if p.(int)%2 == 0 {
			return nil, fmt.Errorf("branch %d down", p)
		}
		return 1, nil
	})
	return skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
}

func TestPartialSkipFailed(t *testing.T) {
	root, res, err := runFaulty(t, gridNode(), 10, 4, FaultConfig{
		Partial: SkipFailed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != 5 { // branches 1,3,5,7,9 survive
		t.Fatalf("res = %v, want 5", res)
	}
	if st := root.FaultStats(); st.Skipped != 5 {
		t.Fatalf("skipped = %d, want 5", st.Skipped)
	}
	fe := root.Failures()
	if fe == nil || len(fe.Failures) != 5 {
		t.Fatalf("Failures() = %v, want 5 branch failures", fe)
	}
	for _, bf := range fe.Failures {
		if bf.Substituted {
			t.Fatalf("branch %d marked substituted under skip", bf.Branch)
		}
	}
}

func TestPartialSubstitute(t *testing.T) {
	root, res, err := runFaulty(t, gridNode(), 10, 4, FaultConfig{
		Partial: Substitute(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != 505 { // 5 survivors ×1 + 5 substitutes ×100
		t.Fatalf("res = %v, want 505", res)
	}
	if st := root.FaultStats(); st.Substituted != 5 {
		t.Fatalf("substituted = %d, want 5", st.Substituted)
	}
}

func TestPartialFailFastDefault(t *testing.T) {
	_, _, err := runFaulty(t, gridNode(), 10, 4, FaultConfig{})
	var me *MuscleError
	if !errors.As(err, &me) {
		t.Fatalf("want MuscleError under fail-fast, got %v", err)
	}
}

func TestPartialAllBranchesFailed(t *testing.T) {
	fe := muscle.NewExecute("down", func(p any) (any, error) {
		return nil, errors.New("down")
	})
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	_, _, err := runFaulty(t, nd, 4, 2, FaultConfig{Partial: SkipFailed()})
	var fail *FailureError
	if !errors.As(err, &fail) {
		t.Fatalf("want FailureError when every branch fails, got %v", err)
	}
	if len(fail.Failures) != 4 {
		t.Fatalf("aggregate has %d failures, want 4", len(fail.Failures))
	}
}

// TestNestedMapInnerCollapseAbsorbedByOuter: when one inner map loses every
// branch under SkipFailed, its FailureError is itself absorbable one level
// up — the outer map merges around the collapsed chunk.
func TestNestedMapInnerCollapseAbsorbedByOuter(t *testing.T) {
	// Outer splits 9 → three chunks {0,3,6}; inner splits a chunk c into
	// leaves {c, c+1, c+2}. Every leaf of chunk 0 fails; all others yield 1.
	split := muscle.NewSplit("chunk3", func(p any) ([]any, error) {
		n := p.(int)
		if n == 9 {
			return []any{0, 3, 6}, nil
		}
		return []any{n, n + 1, n + 2}, nil
	})
	fe := muscle.NewExecute("firstChunkDown", func(p any) (any, error) {
		if p.(int) < 3 {
			return nil, errors.New("down")
		}
		return 1, nil
	})
	inner := skel.NewMap(split, skel.NewSeq(fe), fmSum())
	outer := skel.NewMap(split, inner, fmSum())
	root, res, err := runFaulty(t, outer, 9, 4, FaultConfig{Partial: SkipFailed()})
	if err != nil {
		t.Fatal(err)
	}
	if res != 6 { // chunks {3,4,5} and {6,7,8} survive, 3 leaves each
		t.Fatalf("res = %v, want 6", res)
	}
	// 3 leaves of chunk 0 skipped inside the inner map, then the collapsed
	// inner map itself skipped as an outer branch.
	if st := root.FaultStats(); st.Skipped != 4 {
		t.Fatalf("skipped = %d, want 4", st.Skipped)
	}
	fails := root.Failures()
	if fails == nil || len(fails.Failures) != 4 {
		t.Fatalf("Failures() = %v, want 4 records", fails)
	}
}

func TestBackoffVirtualClockAndJitterDeterminism(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	pool := NewPool(clk, 1, 0)
	defer pool.Close()
	root := NewRoot(pool, nil, clk)
	root.SetFaults(FaultConfig{Retry: RetryPolicy{
		MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Multiplier: 2, Seed: 99,
	}})
	start := clk.Now()
	res, err := root.Start(skel.NewSeq(flaky(3)), 1).GetContext(testCtx(t))
	if err != nil || res != 2 {
		t.Fatalf("got (%v, %v)", res, err)
	}
	// Backoff 10+20+40 ms advanced on the virtual clock, no real sleeping.
	if d := clk.Now().Sub(start); d != 70*time.Millisecond {
		t.Fatalf("virtual clock advanced %v, want 70ms", d)
	}

	// With jitter, two roots with the same seed advance identically.
	adv := func() time.Duration {
		c := clock.NewVirtual(time.Unix(0, 0))
		p := NewPool(c, 1, 0)
		defer p.Close()
		r := NewRoot(p, nil, c)
		r.SetFaults(FaultConfig{Retry: RetryPolicy{
			MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Jitter: 0.5, Seed: 7,
		}})
		t0 := c.Now()
		if _, err := r.Start(skel.NewSeq(flaky(3)), 1).GetContext(testCtx(t)); err != nil {
			t.Fatal(err)
		}
		return c.Now().Sub(t0)
	}
	if a, b := adv(), adv(); a != b || a == 70*time.Millisecond {
		t.Fatalf("jittered backoffs %v vs %v: want equal and != unjittered 70ms", a, b)
	}
}

func TestBadOpFailsRootCleanly(t *testing.T) {
	in := badOpInst{op: plan.Op(255)}
	_, err := in.interpret(nil, nil)
	if err == nil {
		t.Fatal("badOpInst must return an error")
	}
}

func TestRetryCondition(t *testing.T) {
	var calls atomic.Int64
	cond := muscle.NewCondition("flap", func(p any) (bool, error) {
		if calls.Add(1) == 1 {
			return false, errors.New("transient")
		}
		return false, nil
	})
	nd := skel.NewWhile(cond, skel.NewSeq(feAdd(1)))
	root, res, err := runFaulty(t, nd, 5, 1, FaultConfig{Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil || res != 5 {
		t.Fatalf("got (%v, %v), want (5, nil)", res, err)
	}
	if st := root.FaultStats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
}

func TestRetrySplitAndMerge(t *testing.T) {
	var splitCalls, mergeCalls atomic.Int64
	fs := muscle.NewSplit("flakySplit", func(p any) ([]any, error) {
		if splitCalls.Add(1) == 1 {
			return nil, errors.New("transient split")
		}
		return []any{1, 2, 3}, nil
	})
	fm := muscle.NewMerge("flakyMerge", func(ps []any) (any, error) {
		if mergeCalls.Add(1) == 1 {
			return nil, errors.New("transient merge")
		}
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
	nd := skel.NewMap(fs, skel.NewSeq(feDouble()), fm)
	root, res, err := runFaulty(t, nd, 0, 2, FaultConfig{Retry: RetryPolicy{MaxAttempts: 2}})
	if err != nil || res != 12 {
		t.Fatalf("got (%v, %v), want (12, nil)", res, err)
	}
	if st := root.FaultStats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (split + merge)", st.Retries)
	}
}
