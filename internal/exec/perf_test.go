package exec

import (
	"sync"
	"testing"

	"skandium/internal/clock"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// TestRootFIFOFairness: externally submitted roots drain in submission
// order (the shared overflow queue is FIFO), so early stream inputs are not
// starved by later arrivals the way a global LIFO stack would. Children
// spawned by a running task stay LIFO on the worker's own deque — this test
// pins only the root ordering.
func TestRootFIFOFairness(t *testing.T) {
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker := muscle.NewExecute("block", func(p any) (any, error) {
		once.Do(func() { close(started) })
		<-block
		return p, nil
	})
	var mu sync.Mutex
	var order []int
	rec := muscle.NewExecute("rec", func(p any) (any, error) {
		mu.Lock()
		order = append(order, p.(int))
		mu.Unlock()
		return p, nil
	})

	// Occupy the single worker so subsequent roots pile up queued.
	blockRoot := NewRoot(pool, nil, nil)
	blockFut := blockRoot.Start(skel.NewSeq(blocker), -1)
	<-started

	const n = 8
	nd := skel.NewSeq(rec)
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		r := NewRoot(pool, nil, nil)
		futs[i] = r.Start(nd, i)
	}

	close(block)
	if _, err := blockFut.Get(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if _, err := f.Get(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("ran %d of %d roots", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v, want FIFO submission order", order)
		}
	}
}

// TestPoolResizeRaceWithSteal hammers every pool control and observer while
// fan-out work keeps all workers stealing; run under -race it checks the
// deque/counter protocol against concurrent resizing.
func TestPoolResizeRaceWithSteal(t *testing.T) {
	pool := NewPool(clock.System, 2, 16)
	defer pool.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lp := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			lp = lp%8 + 1
			pool.SetLP(lp)
			pool.SetCap(lp + 1)
			pool.SetMaxLP(16)
			_ = pool.LP()
			_ = pool.Active()
			_ = pool.QueueLen()
			_ = pool.Stats()
		}
	}()

	fe := muscle.NewExecute("id", func(p any) (any, error) { return p, nil })
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	for i := 0; i < 40; i++ {
		root := NewRoot(pool, nil, nil)
		if _, err := root.Start(nd, 16).Get(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
