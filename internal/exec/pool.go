package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/clock"
)

// ErrPoolClosed resolves the futures of roots whose tasks reach a closed
// pool: the execution cannot make progress anymore, so waiters must not
// hang.
var ErrPoolClosed = errors.New("exec: pool closed")

// GaugeFunc observes pool state transitions: now is the clock reading,
// active the number of workers currently executing a task, lp the current
// level-of-parallelism target. It is invoked outside all pool locks, from
// whichever goroutine caused the transition, so a slow gauge delays only its
// own worker; it may be called concurrently and must be safe for that. It
// must not call back into the pool's setters. The metrics recorder uses it
// to build the "number of active threads vs wall-clock time" series of the
// paper's Figs. 5-7.
type GaugeFunc func(now time.Time, active, lp int)

// runWrapFunc is the SetRunWrapper hook type (the distributed substrate
// injects shipping latency and per-node accounting here).
type runWrapFunc = func(workerID int, run func())

// Pool is a task pool with a dynamically resizable level of parallelism
// (LP). It is the autonomic lever of the paper: raising LP admits more
// workers to execute tasks concurrently; lowering it parks surplus workers
// after their current task (running muscles are never interrupted, matching
// Skandium's behaviour).
//
// The hot path is contention-free: every worker owns a Chase-Lev deque for
// the tasks it forks (LIFO, depth-first locality) and steals from its peers
// when its own deque drains; external submissions (one per stream input)
// land in a shared FIFO overflow queue so early inputs are not starved by
// later ones. All counters the controller reads — LP(), Active(),
// QueueLen(), Want(), Cap() — are atomics and never take a lock. The mutex
// only serializes the cold paths: parking idle workers, spawning, and the
// LP/cap setters.
type Pool struct {
	clk clock.Clock

	// Hot-path state, all atomic. lp is the effective (clamped) target;
	// want/maxLP/extCap are the inputs it is recomputed from under mu.
	lp       atomic.Int32
	want     atomic.Int32
	maxLP    atomic.Int32
	extCap   atomic.Int32
	active   atomic.Int32
	queued   atomic.Int64 // tasks submitted and not yet taken by a worker
	closed   atomic.Bool
	tasksRun atomic.Uint64
	busyNS   atomic.Int64

	gauge  atomic.Pointer[GaugeFunc]
	wrap   atomic.Pointer[runWrapFunc]
	deques atomic.Pointer[[]*deque] // copy-on-write snapshot for stealing

	// overflow is the shared FIFO of externally submitted (root-level)
	// tasks; head indexes the next task to pop.
	overflowMu sync.Mutex
	overflow   []*Task
	overflowHd int

	// mu guards parking, spawning, and the LP recomputation.
	mu       sync.Mutex
	cond     *sync.Cond
	spawned  int
	sleepers atomic.Int32
}

// Stats is a snapshot of pool counters.
type Stats struct {
	// TasksRun counts task executions (a task that parks and resumes
	// counts once per execution slice).
	TasksRun uint64
	// BusyTime is the cumulative wall time workers spent executing tasks.
	BusyTime time.Duration
	// Spawned is the number of worker goroutines ever created.
	Spawned int
}

// NewPool creates a pool with the given initial LP and hard cap. maxLP <= 0
// means no cap. The clock is used only for gauge timestamps.
func NewPool(clk clock.Clock, initialLP, maxLP int) *Pool {
	if clk == nil {
		clk = clock.System
	}
	if initialLP < 1 {
		initialLP = 1
	}
	p := &Pool{clk: clk}
	p.want.Store(int32(initialLP))
	p.maxLP.Store(int32(maxLP))
	p.lp.Store(p.effective())
	p.cond = sync.NewCond(&p.mu)
	empty := make([]*deque, 0)
	p.deques.Store(&empty)
	return p
}

// effective clamps the requested target by the pool's own cap and the
// external cap, with a floor of one worker.
func (p *Pool) effective() int32 {
	n := p.want.Load()
	if m := p.maxLP.Load(); m > 0 && n > m {
		n = m
	}
	if c := p.extCap.Load(); c > 0 && n > c {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// applyLocked recomputes the effective LP after want/maxLP/extCap changed
// and reports whether it moved (the caller samples the gauge after
// unlocking).
func (p *Pool) applyLocked() bool {
	eff := p.effective()
	old := p.lp.Load()
	if eff == old {
		return false
	}
	p.lp.Store(eff)
	p.ensureWorkersLocked()
	p.cond.Broadcast()
	return true
}

// SetGauge installs the state observer. Pass nil to remove it.
func (p *Pool) SetGauge(g GaugeFunc) {
	if g == nil {
		p.gauge.Store(nil)
		return
	}
	p.gauge.Store(&g)
}

// SetRunWrapper surrounds every task execution with w (nil = direct). The
// wrapper must call run exactly once. Install before submitting work.
func (p *Pool) SetRunWrapper(w func(workerID int, run func())) {
	if w == nil {
		p.wrap.Store(nil)
		return
	}
	p.wrap.Store(&w)
}

// LP returns the current level-of-parallelism target. Lock-free.
func (p *Pool) LP() int { return int(p.lp.Load()) }

// MaxLP returns the hard cap (0 = unlimited). Lock-free.
func (p *Pool) MaxLP() int { return int(p.maxLP.Load()) }

// Active returns the number of workers currently executing a task.
// Lock-free.
func (p *Pool) Active() int { return int(p.active.Load()) }

// QueueLen returns the number of tasks waiting for a worker (across the
// overflow queue and all worker deques). Lock-free.
func (p *Pool) QueueLen() int { return int(p.queued.Load()) }

// Want returns the last requested LP target before clamping — what the
// controller asked for, as opposed to what the caps allow. Lock-free.
func (p *Pool) Want() int { return int(p.want.Load()) }

// Cap returns the external LP cap (0 = none). Lock-free.
func (p *Pool) Cap() int { return int(p.extCap.Load()) }

// SetLP changes the level-of-parallelism target, clamped to [1, maxLP] and
// any external cap. Raising it spawns or wakes workers immediately; lowering
// it takes effect as running workers finish their current task. The
// unclamped target is remembered, so lifting a cap later restores it.
func (p *Pool) SetLP(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return
	}
	p.want.Store(int32(n))
	changed := p.applyLocked()
	p.mu.Unlock()
	if changed {
		p.sample()
	}
}

// SetCap imposes (or, with n <= 0, lifts) an external LP cap on top of the
// pool's own maxLP — the lever a machine-wide budget arbiter pulls. The last
// SetLP target is re-clamped immediately, in both directions.
func (p *Pool) SetCap(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return
	}
	p.extCap.Store(int32(n))
	changed := p.applyLocked()
	p.mu.Unlock()
	if changed {
		p.sample()
	}
}

// SetMaxLP adjusts the pool's own hard cap at runtime (0 = unlimited); the
// current target is re-clamped immediately.
func (p *Pool) SetMaxLP(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return
	}
	p.maxLP.Store(int32(n))
	changed := p.applyLocked()
	p.mu.Unlock()
	if changed {
		p.sample()
	}
}

// Submit enqueues a task for execution from outside the pool (a root-level
// task). External tasks go through the shared FIFO overflow queue, so
// concurrent stream inputs are served in arrival order. Submitting to a
// closed pool fails the task's root (resolving its future with
// ErrPoolClosed) instead of panicking, so a stream racing Close against
// Input degrades to an errored execution rather than a crash.
func (p *Pool) Submit(t *Task) { p.submit(nil, t) }

// submit routes t to w's own deque (LIFO, locality) when called from a
// worker, or to the overflow FIFO otherwise.
func (p *Pool) submit(w *worker, t *Task) {
	if p.closed.Load() {
		t.root.fail(ErrPoolClosed)
		return
	}
	if w != nil {
		w.dq.push(t)
		p.queued.Add(1)
	} else {
		p.overflowMu.Lock()
		p.overflow = append(p.overflow, t)
		p.overflowMu.Unlock()
		p.queued.Add(1)
		p.maybeSpawn()
	}
	p.wakeOne()
}

// popOverflow takes the oldest externally submitted task, if any.
func (p *Pool) popOverflow() *Task {
	if p.queued.Load() == 0 {
		return nil
	}
	p.overflowMu.Lock()
	defer p.overflowMu.Unlock()
	if p.overflowHd >= len(p.overflow) {
		return nil
	}
	t := p.overflow[p.overflowHd]
	p.overflow[p.overflowHd] = nil
	p.overflowHd++
	if p.overflowHd == len(p.overflow) {
		p.overflow = p.overflow[:0]
		p.overflowHd = 0
	}
	return t
}

// Close shuts the pool down. Queued tasks are dropped; workers exit after
// their current task. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return
	}
	p.closed.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.overflowMu.Lock()
	p.overflow, p.overflowHd = nil, 0
	p.overflowMu.Unlock()
}

// maybeSpawn brings the worker count up to the current LP; fast-path
// lock-free when enough workers already exist.
func (p *Pool) maybeSpawn() {
	if ds := p.deques.Load(); int32(len(*ds)) >= p.lp.Load() {
		return
	}
	p.mu.Lock()
	p.ensureWorkersLocked()
	p.mu.Unlock()
}

func (p *Pool) ensureWorkersLocked() {
	for p.spawned < int(p.lp.Load()) {
		w := &worker{id: p.spawned, dq: newDeque()}
		p.spawned++
		cur := *p.deques.Load()
		next := make([]*deque, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = w.dq
		p.deques.Store(&next)
		go p.workerLoop(w)
	}
}

// sample invokes the gauge, outside all pool locks.
func (p *Pool) sample() {
	if g := p.gauge.Load(); g != nil {
		(*g)(p.clk.Now(), int(p.active.Load()), int(p.lp.Load()))
	}
}

// worker identifies one pool goroutine in events and metrics and owns its
// work-stealing deque.
type worker struct {
	id int
	dq *deque
}

// acquire claims an execution slot under the LP gate.
func (p *Pool) acquire() bool {
	for {
		a := p.active.Load()
		if a >= p.lp.Load() {
			return false
		}
		if p.active.CompareAndSwap(a, a+1) {
			return true
		}
	}
}

// runnable reports whether a parked worker has any chance to make progress.
func (p *Pool) runnable() bool {
	return p.queued.Load() > 0 && p.active.Load() < p.lp.Load()
}

// park blocks until there is work to try for or the pool closes. The
// sleepers counter is incremented before re-checking runnable, and
// submitters increment queued before reading sleepers; with Go's
// sequentially consistent atomics at least one side always sees the other,
// so no wakeup is lost.
func (p *Pool) park() {
	p.mu.Lock()
	p.sleepers.Add(1)
	for !p.closed.Load() && !p.runnable() {
		p.cond.Wait()
	}
	p.sleepers.Add(-1)
	p.mu.Unlock()
}

// wakeOne signals one parked worker, if any.
func (p *Pool) wakeOne() {
	if p.sleepers.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Signal()
	p.mu.Unlock()
}

// take returns the next task for w: its own deque first (LIFO children),
// then the shared FIFO overflow (root tasks in arrival order), then a steal
// sweep over the other workers' deques.
func (p *Pool) take(w *worker) *Task {
	if t := w.dq.pop(); t != nil {
		p.queued.Add(-1)
		return t
	}
	if t := p.popOverflow(); t != nil {
		p.queued.Add(-1)
		return t
	}
	dqs := *p.deques.Load()
	n := len(dqs)
	for attempt := 0; attempt < 2; attempt++ {
		for i := 1; i <= n; i++ {
			d := dqs[(w.id+i)%n]
			if d == w.dq {
				continue
			}
			if t := d.steal(); t != nil {
				p.queued.Add(-1)
				return t
			}
		}
		if t := p.popOverflow(); t != nil {
			p.queued.Add(-1)
			return t
		}
		if p.queued.Load() == 0 {
			return nil
		}
	}
	return nil
}

func (p *Pool) workerLoop(w *worker) {
	for {
		if p.closed.Load() {
			return
		}
		if !p.acquire() {
			p.park()
			continue
		}
		t := p.take(w)
		if t == nil {
			p.active.Add(-1)
			p.park()
			continue
		}
		p.sample()
		runStart := p.clk.Now()
		if wf := p.wrap.Load(); wf != nil {
			(*wf)(w.id, func() { p.run(w, t) })
		} else {
			p.run(w, t)
		}
		p.busyNS.Add(int64(p.clk.Now().Sub(runStart)))
		p.tasksRun.Add(1)
		p.active.Add(-1)
		p.sample()
		if p.queued.Load() > 0 {
			p.wakeOne()
		}
	}
}

// run interprets t's instruction stack until the task completes, parks
// behind children, or its root fails. A panic escaping an instruction —
// which muscle wrappers already convert, so in practice a panicking event
// listener — aborts the execution instead of killing the worker. Terminal
// paths recycle the task; parked parents are recycled by the worker that
// later completes them.
func (p *Pool) run(w *worker, t *Task) {
	defer func() {
		if rec := recover(); rec != nil {
			t.root.fail(fmt.Errorf("skandium: panic during skeleton interpretation (listener?): %v", rec))
		}
	}()
	for {
		if t.root.Canceled() {
			releaseTask(t)
			return
		}
		if len(t.stack) == 0 {
			t.complete(w)
			return
		}
		in := t.pop()
		children, err := in.interpret(w, t)
		if rel, ok := in.(releasable); ok {
			rel.release()
		}
		if err != nil {
			if !t.absorb(w, err) {
				t.root.fail(err)
			}
			releaseTask(t)
			return
		}
		if children != nil {
			for _, c := range children {
				p.submit(w, c)
			}
			return
		}
	}
}

// Stats returns a snapshot of the pool's execution counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	spawned := p.spawned
	p.mu.Unlock()
	return Stats{
		TasksRun: p.tasksRun.Load(),
		BusyTime: time.Duration(p.busyNS.Load()),
		Spawned:  spawned,
	}
}

// String describes the pool state for debugging.
func (p *Pool) String() string {
	p.mu.Lock()
	spawned := p.spawned
	p.mu.Unlock()
	return fmt.Sprintf("pool{lp=%d max=%d active=%d queued=%d spawned=%d closed=%v}",
		p.lp.Load(), p.maxLP.Load(), p.active.Load(), p.queued.Load(), spawned, p.closed.Load())
}
