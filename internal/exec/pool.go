package exec

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"skandium/internal/clock"
)

// ErrPoolClosed resolves the futures of roots whose tasks reach a closed
// pool: the execution cannot make progress anymore, so waiters must not
// hang.
var ErrPoolClosed = errors.New("exec: pool closed")

// GaugeFunc observes pool state transitions: now is the clock reading,
// active the number of workers currently executing a task, lp the current
// level-of-parallelism target. It is invoked with the pool lock held, so it
// must be fast and must not call back into the pool. The metrics recorder
// uses it to build the "number of active threads vs wall-clock time" series
// of the paper's Figs. 5-7.
type GaugeFunc func(now time.Time, active, lp int)

// Pool is a task pool with a dynamically resizable level of parallelism
// (LP). It is the autonomic lever of the paper: raising LP admits more
// workers to execute tasks concurrently; lowering it parks surplus workers
// after their current task (running muscles are never interrupted, matching
// Skandium's behaviour).
//
// Workers are goroutines spawned lazily up to the historical maximum LP and
// gated by the current LP: at most lp workers execute tasks at any moment.
type Pool struct {
	clk clock.Clock

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Task // LIFO: depth-first keeps the working set small
	lp      int
	want    int // last requested LP target, before clamping
	maxLP   int // hard cap (QoS "maximum LP"); 0 = unlimited
	extCap  int // externally imposed cap (a budget arbiter's grant); 0 = none
	spawned int
	active  int
	closed  bool
	gauge   GaugeFunc
	// wrap, when set, surrounds every task execution (the distributed
	// substrate injects shipping latency and per-node accounting here).
	wrap func(workerID int, run func())

	// statistics (guarded by mu)
	tasksRun  uint64
	busyTotal time.Duration
}

// Stats is a snapshot of pool counters.
type Stats struct {
	// TasksRun counts task executions (a task that parks and resumes
	// counts once per execution slice).
	TasksRun uint64
	// BusyTime is the cumulative wall time workers spent executing tasks.
	BusyTime time.Duration
	// Spawned is the number of worker goroutines ever created.
	Spawned int
}

// NewPool creates a pool with the given initial LP and hard cap. maxLP <= 0
// means no cap. The clock is used only for gauge timestamps.
func NewPool(clk clock.Clock, initialLP, maxLP int) *Pool {
	if clk == nil {
		clk = clock.System
	}
	if initialLP < 1 {
		initialLP = 1
	}
	p := &Pool{clk: clk, want: initialLP, maxLP: maxLP}
	p.lp = p.effectiveLocked()
	p.cond = sync.NewCond(&p.mu)
	return p
}

// effectiveLocked clamps the requested target by the pool's own cap and the
// external cap, with a floor of one worker.
func (p *Pool) effectiveLocked() int {
	n := p.want
	if p.maxLP > 0 && n > p.maxLP {
		n = p.maxLP
	}
	if p.extCap > 0 && n > p.extCap {
		n = p.extCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// applyLocked recomputes the effective LP after want/maxLP/extCap changed.
func (p *Pool) applyLocked() {
	eff := p.effectiveLocked()
	if eff == p.lp {
		return
	}
	p.lp = eff
	p.ensureWorkersLocked()
	p.sampleLocked()
	p.cond.Broadcast()
}

// SetGauge installs the state observer. Pass nil to remove it.
func (p *Pool) SetGauge(g GaugeFunc) {
	p.mu.Lock()
	p.gauge = g
	p.mu.Unlock()
}

// SetRunWrapper surrounds every task execution with w (nil = direct). The
// wrapper must call run exactly once. Install before submitting work.
func (p *Pool) SetRunWrapper(w func(workerID int, run func())) {
	p.mu.Lock()
	p.wrap = w
	p.mu.Unlock()
}

// LP returns the current level-of-parallelism target.
func (p *Pool) LP() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lp
}

// MaxLP returns the hard cap (0 = unlimited).
func (p *Pool) MaxLP() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxLP
}

// Active returns the number of workers currently executing a task.
func (p *Pool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// QueueLen returns the number of tasks waiting for a worker.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// SetLP changes the level-of-parallelism target, clamped to [1, maxLP] and
// any external cap. Raising it spawns or wakes workers immediately; lowering
// it takes effect as running workers finish their current task. The
// unclamped target is remembered, so lifting a cap later restores it.
func (p *Pool) SetLP(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if n < 1 {
		n = 1
	}
	p.want = n
	p.applyLocked()
}

// Want returns the last requested LP target before clamping — what the
// controller asked for, as opposed to what the caps allow.
func (p *Pool) Want() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.want
}

// SetCap imposes (or, with n <= 0, lifts) an external LP cap on top of the
// pool's own maxLP — the lever a machine-wide budget arbiter pulls. The last
// SetLP target is re-clamped immediately, in both directions.
func (p *Pool) SetCap(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if n < 0 {
		n = 0
	}
	p.extCap = n
	p.applyLocked()
}

// Cap returns the external LP cap (0 = none).
func (p *Pool) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.extCap
}

// SetMaxLP adjusts the pool's own hard cap at runtime (0 = unlimited); the
// current target is re-clamped immediately.
func (p *Pool) SetMaxLP(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if n < 0 {
		n = 0
	}
	p.maxLP = n
	p.applyLocked()
}

// Submit enqueues a task for execution. Submitting to a closed pool fails
// the task's root (resolving its future with ErrPoolClosed) instead of
// panicking, so a stream racing Close against Input degrades to an errored
// execution rather than a crash.
func (p *Pool) Submit(t *Task) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.root.fail(ErrPoolClosed)
		return
	}
	defer p.mu.Unlock()
	p.queue = append(p.queue, t)
	p.ensureWorkersLocked()
	p.cond.Broadcast()
}

// Close shuts the pool down. Queued tasks are dropped; workers exit after
// their current task. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.queue = nil
	p.cond.Broadcast()
}

func (p *Pool) ensureWorkersLocked() {
	for p.spawned < p.lp {
		w := &worker{id: p.spawned}
		p.spawned++
		go p.workerLoop(w)
	}
}

func (p *Pool) sampleLocked() {
	if p.gauge != nil {
		p.gauge(p.clk.Now(), p.active, p.lp)
	}
}

// worker identifies one pool goroutine in events and metrics.
type worker struct {
	id int
}

func (p *Pool) workerLoop(w *worker) {
	for {
		p.mu.Lock()
		for !p.closed && (len(p.queue) == 0 || p.active >= p.lp) {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		t := p.queue[len(p.queue)-1]
		p.queue[len(p.queue)-1] = nil
		p.queue = p.queue[:len(p.queue)-1]
		p.active++
		p.sampleLocked()
		wrap := p.wrap
		p.mu.Unlock()

		runStart := p.clk.Now()
		if wrap != nil {
			wrap(w.id, func() { p.run(w, t) })
		} else {
			p.run(w, t)
		}
		busy := p.clk.Now().Sub(runStart)

		p.mu.Lock()
		p.active--
		p.tasksRun++
		p.busyTotal += busy
		p.sampleLocked()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// run interprets t's instruction stack until the task completes, parks
// behind children, or its root fails. A panic escaping an instruction —
// which muscle wrappers already convert, so in practice a panicking event
// listener — aborts the execution instead of killing the worker.
func (p *Pool) run(w *worker, t *Task) {
	defer func() {
		if rec := recover(); rec != nil {
			t.root.fail(fmt.Errorf("skandium: panic during skeleton interpretation (listener?): %v", rec))
		}
	}()
	for {
		if t.root.Canceled() {
			return
		}
		if len(t.stack) == 0 {
			t.complete()
			return
		}
		in := t.pop()
		children, err := in.interpret(w, t)
		if err != nil {
			if !t.absorb(err) {
				t.root.fail(err)
			}
			return
		}
		if children != nil {
			for _, c := range children {
				p.Submit(c)
			}
			return
		}
	}
}

// Stats returns a snapshot of the pool's execution counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{TasksRun: p.tasksRun, BusyTime: p.busyTotal, Spawned: p.spawned}
}

// String describes the pool state for debugging.
func (p *Pool) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("pool{lp=%d max=%d active=%d queued=%d spawned=%d closed=%v}",
		p.lp, p.maxLP, p.active, len(p.queue), p.spawned, p.closed)
}
