package exec

import (
	"skandium/internal/event"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// farmInst evaluates farm(∆). Farm expresses task replication: every input
// injected into the stream may be processed concurrently by the nested
// skeleton. For a single parameter it is a transparent wrapper, so the
// instruction simply brackets one nested evaluation with events; the
// replication itself comes from the task pool running many farm activations
// at once.
type farmInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var farmPool instrPool[farmInst]

func (in *farmInst) release() { farmPool.put(in) }

func (in *farmInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	t.push(
		newSkelEnd(a),
		newNestedEnd(a, 0, 0),
		instrFor(in.step.Child(0), a.idx),
		newNestedBegin(a, 0, 0),
	)
	return nil, nil
}

// pipeInst evaluates pipe(∆1,...,∆k): the stages run in order on this
// task's value, each bracketed by nested-skeleton events carrying the stage
// number in Branch. Pipeline parallelism across *different* inputs emerges
// from the pool executing several pipe activations concurrently.
type pipeInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var pipePool instrPool[pipeInst]

func (in *pipeInst) release() { pipePool.put(in) }

func (in *pipeInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	stages := in.step.Children()
	t.push(newSkelEnd(a))
	for i := len(stages) - 1; i >= 0; i-- {
		t.push(
			newNestedEnd(a, i, 0),
			instrFor(stages[i], a.idx),
			newNestedBegin(a, i, 0),
		)
	}
	return nil, nil
}

// forInst evaluates for(n,∆): n sequential nested evaluations, iteration
// numbers carried in Iter.
type forInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var forPool instrPool[forInst]

func (in *forInst) release() { forPool.put(in) }

func (in *forInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	n := in.step.N()
	t.push(newSkelEnd(a))
	for i := n - 1; i >= 0; i-- {
		t.push(
			newNestedEnd(a, 0, i),
			instrFor(in.step.Child(0), a.idx),
			newNestedBegin(a, 0, i),
		)
	}
	return nil, nil
}

// whileInst opens a while(fc,∆) activation and schedules the first
// condition check.
type whileInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var whilePool instrPool[whileInst]

func (in *whileInst) release() { whilePool.put(in) }

func (in *whileInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	t.push(newWhileCond(a, 0))
	return nil, nil
}

// whileCondInst checks the condition for iteration iter; when true it
// schedules one nested evaluation followed by the next check, when false it
// closes the activation.
type whileCondInst struct {
	a    actx
	iter int
}

var whileCondPool instrPool[whileCondInst]

func (in *whileCondInst) release() { whileCondPool.put(in) }

func newWhileCond(a actx, iter int) *whileCondInst {
	in := whileCondPool.get()
	in.a, in.iter = a, iter
	return in
}

func (in *whileCondInst) interpret(w *worker, t *Task) ([]*Task, error) {
	c, err := runCondition(in.a, w, t, in.iter)
	if err != nil {
		return nil, err
	}
	if !c {
		t.param = in.a.em(t.root, w).emit(event.After, event.Skeleton, t.param, nil)
		return nil, nil
	}
	t.push(
		newWhileCond(in.a, in.iter+1),
		newNestedEnd(in.a, 0, in.iter),
		instrFor(in.a.step.Child(0), in.a.idx),
		newNestedBegin(in.a, 0, in.iter),
	)
	return nil, nil
}

// runCondition raises before/after condition events around fc and returns
// its verdict.
func runCondition(a actx, w *worker, t *Task, iter int) (bool, error) {
	em := a.em(t.root, w)
	p := em.emit(event.Before, event.Condition, t.param, func(e *event.Event) { e.Iter = iter })
	fc := a.nd().Cond()
	c, err := runAttempts(em, fc, p, func() (any, error) {
		return em.emit(event.Before, event.Condition, t.param, func(e *event.Event) { e.Iter = iter }), nil
	}, func(p any) (bool, error) { return fc.CallCondition(p) })
	if err != nil {
		return false, err
	}
	t.param = em.emit(event.After, event.Condition, p, func(e *event.Event) {
		e.Cond, e.Iter = c, iter
	})
	return c, nil
}

// ifInst evaluates if(fc,∆true,∆false): condition events, then one nested
// evaluation of the chosen branch (Branch 0 = true, 1 = false). The paper's
// autonomic layer leaves If unsupported; the engine runs it and the ADG
// layer handles it as a documented extension.
type ifInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var ifPool instrPool[ifInst]

func (in *ifInst) release() { ifPool.put(in) }

func (in *ifInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	c, err := runCondition(a, w, t, 0)
	if err != nil {
		return nil, err
	}
	branch := 0
	if !c {
		branch = 1
	}
	t.push(
		newSkelEnd(a),
		newNestedEnd(a, branch, 0),
		instrFor(in.step.Child(branch), a.idx),
		newNestedBegin(a, branch, 0),
	)
	return nil, nil
}
