package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// --- event payload details ----------------------------------------------------

// TestNestedEventBranches: map nested events carry the sub-problem index in
// Branch, matched between Before and After.
func TestNestedEventBranches(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	var mu sync.Mutex
	opened := map[int]int{}
	closed := map[int]int{}
	reg.AddFiltered(event.Func(func(e *event.Event) any {
		mu.Lock()
		if e.When == event.Before {
			opened[e.Branch]++
		} else {
			closed[e.Branch]++
		}
		mu.Unlock()
		return e.Param
	}), event.Filter{Where: event.NestedSkel, HasWhere: true})
	root := NewRoot(pool, reg, nil)
	if _, err := root.Start(nd, 4).Get(); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if opened[b] != 1 || closed[b] != 1 {
			t.Fatalf("branch %d: opened %d closed %d", b, opened[b], closed[b])
		}
	}
}

// TestWhileIterEvents: while condition and nested events carry iteration
// numbers; the final check carries the iteration count.
func TestWhileIterEvents(t *testing.T) {
	fc := muscle.NewCondition("lt3", func(p any) (bool, error) { return p.(int) < 3, nil })
	inc := muscle.NewExecute("inc", func(p any) (any, error) { return p.(int) + 1, nil })
	nd := skel.NewWhile(fc, skel.NewSeq(inc))
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	var iters []int
	var verdicts []bool
	reg.AddFiltered(event.Func(func(e *event.Event) any {
		iters = append(iters, e.Iter)
		verdicts = append(verdicts, e.Cond)
		return e.Param
	}), event.Filter{Where: event.Condition, HasWhere: true, When: event.After, HasWhen: true})
	root := NewRoot(pool, reg, nil)
	res, err := root.Start(nd, 0).Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 3 {
		t.Fatalf("result %v", res)
	}
	wantIters := []int{0, 1, 2, 3}
	wantVerdicts := []bool{true, true, true, false}
	if len(iters) != 4 {
		t.Fatalf("iters %v", iters)
	}
	for i := range wantIters {
		if iters[i] != wantIters[i] || verdicts[i] != wantVerdicts[i] {
			t.Fatalf("check %d: iter=%d cond=%v", i, iters[i], verdicts[i])
		}
	}
}

// TestDaCDepthInEvents: d&c condition events carry the recursion depth.
func TestDaCDepthInEvents(t *testing.T) {
	fc := muscle.NewCondition("big", func(p any) (bool, error) { return p.(int) > 2, nil })
	fs := muscle.NewSplit("halve", func(p any) ([]any, error) {
		n := p.(int)
		return []any{n / 2, n - n/2}, nil
	})
	fe := muscle.NewExecute("one", func(p any) (any, error) { return 1, nil })
	nd := skel.NewDaC(fc, fs, skel.NewSeq(fe), fmSum())
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	maxDepth := 0
	var mu sync.Mutex
	reg.AddFiltered(event.Func(func(e *event.Event) any {
		mu.Lock()
		if e.Iter > maxDepth {
			maxDepth = e.Iter
		}
		mu.Unlock()
		return e.Param
	}), event.Filter{Where: event.Condition, HasWhere: true})
	root := NewRoot(pool, reg, nil)
	if _, err := root.Start(nd, 8).Get(); err != nil {
		t.Fatal(err)
	}
	// 8 -> 4,4 -> 2,2,2,2: depths 0,1,2.
	if maxDepth != 2 {
		t.Fatalf("max depth %d, want 2", maxDepth)
	}
}

// TestTraceDepth: events expose the static nesting path.
func TestTraceDepth(t *testing.T) {
	inner := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	outer := skel.NewMap(fsRange(), inner, fmSum())
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	depths := map[skel.Kind]int{}
	var mu sync.Mutex
	reg.Add(event.Func(func(e *event.Event) any {
		mu.Lock()
		if len(e.Trace) > depths[e.Node.Kind()] {
			depths[e.Node.Kind()] = len(e.Trace)
		}
		if e.Trace[len(e.Trace)-1] != e.Node {
			t.Errorf("trace does not end at the emitting node")
		}
		mu.Unlock()
		return e.Param
	}))
	root := NewRoot(pool, reg, nil)
	if _, err := root.Start(outer, 2).Get(); err != nil {
		t.Fatal(err)
	}
	if depths[skel.Map] != 2 || depths[skel.Seq] != 3 {
		t.Fatalf("trace depths: %v", depths)
	}
}

// --- pool dynamics -------------------------------------------------------------

// TestLPDecreaseParksWorkers: after lowering LP, concurrency drops for the
// remaining work (running muscles finish first).
func TestLPDecreaseParksWorkers(t *testing.T) {
	const items = 24
	var cur, peakAfter atomic.Int64
	var lowered atomic.Bool
	fe := muscle.NewExecute("track", func(p any) (any, error) {
		n := cur.Add(1)
		if lowered.Load() && n > peakAfter.Load() {
			peakAfter.Store(n)
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return p, nil
	})
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	pool := NewPool(clock.System, 6, 0)
	defer pool.Close()
	root := NewRoot(pool, nil, nil)
	fut := root.Start(nd, items)
	time.Sleep(4 * time.Millisecond) // let several run at LP 6
	pool.SetLP(2)
	time.Sleep(5 * time.Millisecond) // drain the in-flight muscles
	lowered.Store(true)
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
	if got := peakAfter.Load(); got > 2 {
		t.Fatalf("concurrency after decrease: %d > 2", got)
	}
}

// TestDeepNesting: 30 levels of farms around a seq still work at LP 1.
func TestDeepNesting(t *testing.T) {
	nd := skel.NewSeq(feAdd(1))
	for i := 0; i < 30; i++ {
		nd = skel.NewFarm(nd)
	}
	res, err := run(t, nd, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != 1 {
		t.Fatalf("got %v", res)
	}
}

// TestWideFanout: a 2000-way map on a small pool.
func TestWideFanout(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	res, err := run(t, nd, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res != 2000*1999 { // sum(2i, i<2000)
		t.Fatalf("got %v, want %d", res, 2000*1999)
	}
}

// TestStressManyConcurrentInputs: many roots with mixed shapes racing on
// one pool.
func TestStressManyConcurrentInputs(t *testing.T) {
	pool := NewPool(clock.System, 4, 0)
	defer pool.Close()
	mapNd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	fc := muscle.NewCondition("lt64", func(p any) (bool, error) { return p.(int) < 64, nil })
	whileNd := skel.NewWhile(fc, skel.NewSeq(feDouble()))
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r1 := NewRoot(pool, nil, nil)
			if res, err := r1.Start(mapNd, 10).Get(); err != nil || res != 90 {
				errs <- fmt.Errorf("map %d: %v/%v", i, res, err)
			}
			r2 := NewRoot(pool, nil, nil)
			if res, err := r2.Start(whileNd, 1).Get(); err != nil || res != 64 {
				errs <- fmt.Errorf("while %d: %v/%v", i, res, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPanicInListenerAbortsExecution: a panicking listener fails the
// execution instead of killing the worker or the process.
func TestPanicInListenerAbortsExecution(t *testing.T) {
	pool := NewPool(clock.System, 2, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	reg.Add(event.Func(func(e *event.Event) any {
		if e.When == event.After && e.Where == event.Split {
			panic("listener bug")
		}
		return e.Param
	}))
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	root := NewRoot(pool, reg, nil)
	_, err := root.Start(nd, 3).Get()
	if err == nil {
		t.Fatal("listener panic swallowed")
	}
	// The pool must still be usable afterwards.
	root2 := NewRoot(pool, nil, nil)
	if res, err := root2.Start(nd, 3).Get(); err != nil || res != 6 {
		t.Fatalf("pool broken after listener panic: %v/%v", res, err)
	}
}

// TestSubmitAfterCloseFailsFuture: submitting to a closed pool neither
// panics nor hangs — the root's future resolves with ErrPoolClosed, so a
// stream racing Close against Input degrades to an errored execution.
func TestSubmitAfterCloseFailsFuture(t *testing.T) {
	pool := NewPool(clock.System, 1, 0)
	pool.Close()
	root := NewRoot(pool, nil, nil)
	if _, err := root.Start(skel.NewSeq(feAdd(1)), 1).Get(); err != ErrPoolClosed {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

// TestPoolCloseIdempotent: double close is safe.
func TestPoolCloseIdempotent(t *testing.T) {
	pool := NewPool(clock.System, 2, 0)
	pool.Close()
	pool.Close()
	if got := pool.String(); got == "" {
		t.Fatal("String() empty")
	}
}

// TestQueueLenVisibility: queued work is observable.
func TestQueueLenVisibility(t *testing.T) {
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	fe := muscle.NewExecute("block", func(p any) (any, error) {
		once.Do(func() { close(started) })
		<-block
		return p, nil
	})
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	root := NewRoot(pool, nil, nil)
	fut := root.Start(nd, 5)
	<-started
	if pool.QueueLen() == 0 {
		t.Error("no queued tasks visible while worker blocked")
	}
	close(block)
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeReplaceTypeError: a listener replacing the merge input with a
// non-[]any value fails the execution with a descriptive error.
func TestMergeReplaceTypeError(t *testing.T) {
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	reg.AddFiltered(event.Func(func(e *event.Event) any { return 42 }),
		event.Filter{Where: event.Merge, HasWhere: true, When: event.Before, HasWhen: true})
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	root := NewRoot(pool, reg, nil)
	_, err := root.Start(nd, 2).Get()
	if err == nil || !strings.Contains(err.Error(), "replaced merge input") {
		t.Fatalf("want merge replacement error, got %v", err)
	}
}
