package exec

import (
	"sync"
	"sync/atomic"
)

// Task is one schedulable unit of skeleton interpretation. A task carries
// the current partial solution (param) and a LIFO stack of instructions to
// run on it. Data-parallel instructions fork child tasks; the parent task is
// parked (it holds no worker) until its last child completes, at which point
// the child's worker re-enqueues the parent. This continuation design is
// what makes the level of parallelism a pure resource knob: a map with LP=1
// still terminates, it just runs its branches sequentially.
//
// Tasks are recycled through a sync.Pool: the worker releases a task on its
// terminal paths (complete, failure, cancellation), when no other goroutine
// can still reference it — a task taken from a queue has no outstanding
// children (a forked parent is parked, not queued, until its last child
// re-submits it).
type Task struct {
	id     uint64
	root   *Root
	parent *Task
	// branch is this task's slot in parent.results.
	branch int

	param any
	stack []Instr

	// results and pending are set by fork before children are submitted.
	// Each child writes only its own slot, so no lock is needed; pending is
	// decremented atomically as children complete.
	results []any
	pending atomic.Int32
}

var lastTaskID atomic.Uint64

var taskPool = sync.Pool{New: func() any { return new(Task) }}

func newTask(root *Root, parent *Task, branch int, param any, program ...Instr) *Task {
	t := taskPool.Get().(*Task)
	t.id = lastTaskID.Add(1)
	t.root, t.parent, t.branch, t.param = root, parent, branch, param
	t.stack = append(t.stack, program...)
	return t
}

// releaseTask zeroes t and returns it to the pool, keeping the stack's
// backing array. Callers must guarantee no other goroutine references t.
func releaseTask(t *Task) {
	for i := range t.stack {
		t.stack[i] = nil
	}
	t.stack = t.stack[:0]
	t.id, t.root, t.parent, t.branch = 0, nil, nil, 0
	t.param, t.results = nil, nil
	t.pending.Store(0)
	taskPool.Put(t)
}

// push adds instructions to the stack; the last pushed runs first.
func (t *Task) push(in ...Instr) { t.stack = append(t.stack, in...) }

// pop removes and returns the top instruction. The caller guarantees the
// stack is non-empty.
func (t *Task) pop() Instr {
	in := t.stack[len(t.stack)-1]
	t.stack[len(t.stack)-1] = nil
	t.stack = t.stack[:len(t.stack)-1]
	return in
}

// fork prepares the bookkeeping for n children and returns the slice the
// caller fills with newTask values (one per branch, in order). The children
// must then be returned from the instruction's interpret so the worker
// submits them after parking this task.
func (t *Task) fork(n int) {
	t.results = make([]any, n)
	t.pending.Store(int32(n))
}

// takeResults consumes the children results gathered by fork.
func (t *Task) takeResults() []any {
	rs := t.results
	t.results = nil
	return rs
}

// childDone records a child's result; the last child re-enqueues the parent
// on the worker's own deque (w may be nil for non-worker contexts).
func (t *Task) childDone(w *worker, branch int, result any) {
	t.results[branch] = result
	if t.pending.Add(-1) == 0 {
		t.root.pool.submit(w, t)
	}
}

// complete is called when the stack is empty: the task's value is final.
// The task is recycled before the parent is notified (the parent never
// reads the child again).
func (t *Task) complete(w *worker) {
	parent, branch, param, root := t.parent, t.branch, t.param, t.root
	releaseTask(t)
	if parent != nil {
		parent.childDone(w, branch, param)
		return
	}
	root.finish(param, nil)
}
