package exec

import (
	"sync/atomic"

	"skandium/internal/skel"
)

// Task is one schedulable unit of skeleton interpretation. A task carries
// the current partial solution (param) and a LIFO stack of instructions to
// run on it. Data-parallel instructions fork child tasks; the parent task is
// parked (it holds no worker) until its last child completes, at which point
// the child's worker re-enqueues the parent. This continuation design is
// what makes the level of parallelism a pure resource knob: a map with LP=1
// still terminates, it just runs its branches sequentially.
type Task struct {
	id     uint64
	root   *Root
	parent *Task
	// branch is this task's slot in parent.results.
	branch int

	param any
	stack []Instr

	// results and pending are set by fork before children are submitted.
	// Each child writes only its own slot, so no lock is needed; pending is
	// decremented atomically as children complete.
	results []any
	pending atomic.Int32
}

var lastTaskID atomic.Uint64

func newTask(root *Root, parent *Task, branch int, param any, program ...Instr) *Task {
	return &Task{
		id:     lastTaskID.Add(1),
		root:   root,
		parent: parent,
		branch: branch,
		param:  param,
		stack:  program,
	}
}

// push adds instructions to the stack; the last pushed runs first.
func (t *Task) push(in ...Instr) { t.stack = append(t.stack, in...) }

// pop removes and returns the top instruction. The caller guarantees the
// stack is non-empty.
func (t *Task) pop() Instr {
	in := t.stack[len(t.stack)-1]
	t.stack[len(t.stack)-1] = nil
	t.stack = t.stack[:len(t.stack)-1]
	return in
}

// fork prepares the bookkeeping for n children and returns the slice the
// caller fills with newTask values (one per branch, in order). The children
// must then be returned from the instruction's interpret so the worker
// submits them after parking this task.
func (t *Task) fork(n int) {
	t.results = make([]any, n)
	t.pending.Store(int32(n))
}

// takeResults consumes the children results gathered by fork.
func (t *Task) takeResults() []any {
	rs := t.results
	t.results = nil
	return rs
}

// childDone records a child's result; the last child re-enqueues the parent
// on the pool.
func (t *Task) childDone(branch int, result any) {
	t.results[branch] = result
	if t.pending.Add(-1) == 0 {
		t.root.pool.Submit(t)
	}
}

// complete is called when the stack is empty: the task's value is final.
func (t *Task) complete() {
	if t.parent != nil {
		t.parent.childDone(t.branch, t.param)
		return
	}
	t.root.finish(t.param, nil)
}

// appendTrace returns a fresh trace slice extending base with nd. Traces are
// immutable once handed to events, so each extension copies.
func appendTrace(base []*skel.Node, nd *skel.Node) []*skel.Node {
	tr := make([]*skel.Node, len(base)+1)
	copy(tr, base)
	tr[len(base)] = nd
	return tr
}
