package exec

import "sync/atomic"

// deque is a Chase-Lev work-stealing deque of tasks. The owning worker
// pushes and pops at the bottom (LIFO, which keeps the working set of a
// fan-out's children small); thieves steal from the top (FIFO). All methods
// are lock-free; Go's atomics are sequentially consistent, which is what the
// classic algorithm's correctness argument assumes.
//
// Overwrite safety: push only reuses a ring slot once top has advanced past
// it, and a steal whose slot was overwritten after it read the element loses
// the CAS on top (top must have moved for the overwrite to be possible), so
// the stale value is discarded.
type deque struct {
	top    atomic.Int64 // next index to steal
	bottom atomic.Int64 // next index to push
	ring   atomic.Pointer[dequeRing]
}

// dequeRing is the deque's circular buffer. The buffer is immutable once
// published (growth allocates a new ring); stealers may keep reading an old
// ring, which stays valid for every index the CAS on top can still admit.
type dequeRing struct {
	buf  []atomic.Pointer[Task]
	mask int64
}

func newDequeRing(size int64) *dequeRing {
	return &dequeRing{buf: make([]atomic.Pointer[Task], size), mask: size - 1}
}

func (r *dequeRing) get(i int64) *Task    { return r.buf[i&r.mask].Load() }
func (r *dequeRing) put(i int64, t *Task) { r.buf[i&r.mask].Store(t) }
func (r *dequeRing) grow(top, bottom int64) *dequeRing {
	nr := newDequeRing(int64(len(r.buf)) * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

func newDeque() *deque {
	d := &deque{}
	d.ring.Store(newDequeRing(64))
	return d
}

// push appends t at the bottom. Owner only.
func (d *deque) push(t *Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top >= int64(len(r.buf)) {
		r = r.grow(top, b)
		d.ring.Store(r)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner only.
func (d *deque) pop() *Task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	top := d.top.Load()
	if b < top {
		// Empty: undo the tentative claim.
		d.bottom.Store(top)
		return nil
	}
	t := r.get(b)
	if b > top {
		return t
	}
	// Last element: race stealers for it via the CAS on top.
	if !d.top.CompareAndSwap(top, top+1) {
		t = nil
	}
	d.bottom.Store(top + 1)
	return t
}

// steal removes the oldest task. Safe from any goroutine.
func (d *deque) steal() *Task {
	top := d.top.Load()
	b := d.bottom.Load()
	if top >= b {
		return nil
	}
	r := d.ring.Load()
	t := r.get(top)
	if !d.top.CompareAndSwap(top, top+1) {
		return nil
	}
	return t
}
