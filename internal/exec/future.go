package exec

import (
	"context"
	"sync"
)

// Future is the handle returned when a parameter is injected into a skeleton
// program. It resolves exactly once, either with the final result or with
// the first error raised by a muscle.
type Future struct {
	once sync.Once
	done chan struct{}

	mu     sync.Mutex
	result any
	err    error
}

// NewFuture returns an unresolved future.
func NewFuture() *Future {
	return &Future{done: make(chan struct{})}
}

// resolve fulfils the future. Only the first call has any effect.
func (f *Future) resolve(result any, err error) {
	f.once.Do(func() {
		f.mu.Lock()
		f.result, f.err = result, err
		f.mu.Unlock()
		close(f.done)
	})
}

// Done returns a channel closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Get blocks until the future resolves and returns the outcome.
func (f *Future) Get() (any, error) {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.result, f.err
}

// GetContext is Get with cancellation: it returns ctx.Err() if the context
// ends first. The underlying execution keeps running; use the root's cancel
// to abort it.
func (f *Future) GetContext(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.Get()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryGet returns the outcome without blocking; ok reports whether the
// future has resolved.
func (f *Future) TryGet() (result any, err error, ok bool) {
	select {
	case <-f.done:
		r, e := f.Get()
		return r, e, true
	default:
		return nil, nil, false
	}
}
