package exec

import (
	"skandium/internal/skel"
)

// dacInst evaluates one level of d&c(fc,fs,∆,fm). Each recursion level is
// its own activation: the condition decides between splitting (recursive
// children in parallel, then merge) and solving the leaf with ∆. The
// recursion depth travels in the events' Iter field — it is what the
// estimator's |fc| cardinality tracks for d&c (estimated depth of the
// recursion tree, per the paper §4).
type dacInst struct {
	nd     *skel.Node
	parent int64
	trace  []*skel.Node
	depth  int
}

func (in *dacInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.nd, in.parent, in.trace, w, t)
	c, err := runCondition(a, w, t, in.depth)
	if err != nil {
		return nil, err
	}
	if !c {
		// Leaf: solve with the nested skeleton, then close the activation.
		t.push(
			&skelEndInst{a: a},
			&nestedEndInst{a: a, iter: in.depth},
			instrFor(in.nd.Children()[0], a.idx, in.trace),
			&nestedBeginInst{a: a, iter: in.depth},
		)
		return nil, nil
	}
	parts, err := runSplit(a, w, t)
	if err != nil {
		return nil, err
	}
	t.push(&mapMergeInst{a: a})
	return forkChildren(a, t, parts, func(branch int) Instr {
		return &dacInst{
			nd:     in.nd,
			parent: a.idx,
			trace:  appendTrace(in.trace, in.nd),
			depth:  in.depth + 1,
		}
	}), nil
}
