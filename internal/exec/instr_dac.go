package exec

import (
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// dacInst evaluates one level of d&c(fc,fs,∆,fm). Each recursion level is
// its own activation: the condition decides between splitting (recursive
// children in parallel, then merge) and solving the leaf with ∆. The
// recursion depth travels in the events' Iter field — it is what the
// estimator's |fc| cardinality tracks for d&c (estimated depth of the
// recursion tree, per the paper §4). The trace grows with recursion depth,
// so it cannot come from the static step beyond depth 0; it is extended once
// per activation and shared by all of that activation's branches.
type dacInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
	depth  int
}

var dacPool instrPool[dacInst]

func (in *dacInst) release() { dacPool.put(in) }

func (in *dacInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	c, err := runCondition(a, w, t, in.depth)
	if err != nil {
		return nil, err
	}
	if !c {
		// Leaf: solve with the nested skeleton, then close the activation.
		leaf := in.step.Child(0)
		var leafInstr Instr
		if in.depth > 0 {
			leafInstr = instrWithTrace(leaf, a.idx, plan.ExtendTrace(in.trace, leaf.Node()))
		} else {
			leafInstr = instrFor(leaf, a.idx)
		}
		t.push(
			newSkelEnd(a),
			newNestedEnd(a, 0, in.depth),
			leafInstr,
			newNestedBegin(a, 0, in.depth),
		)
		return nil, nil
	}
	parts, err := runSplit(a, w, t)
	if err != nil {
		return nil, err
	}
	t.push(newMapMerge(a))
	// One grown trace per activation, shared by every recursive branch.
	step, nd := in.step, in.step.Node()
	depth := in.depth
	branchTrace := plan.ExtendTrace(in.trace, nd)
	return forkChildren(a, t, parts, func(branch int) Instr {
		child := dacPool.get()
		child.step, child.parent, child.trace, child.depth = step, a.idx, branchTrace, depth+1
		return child
	}), nil
}
