package exec

import (
	"skandium/internal/event"
	"skandium/internal/plan"
)

// fusedInst interprets one fused serial chain (plan.FusedProg) in a single
// instruction: the whole chain runs back-to-back on one worker, replacing
// the per-activation push/pop of seq, farm, pipe and for instructions. The
// micro-op list replays exactly the instruction sequence the unfused
// interpreter would execute — same event order, same activation-index
// allocation order, same retry/timeout protocol per execute muscle — so a
// fused run is observably identical; it just stops paying per-stage Task
// stack and instruction-pool traffic.
//
// Instances are per-activation scratch recycled through the chain's
// program-owned arena (FusedProg.Scratch), so steady-state execution of a
// fused chain allocates nothing.
type fusedInst struct {
	prog   *plan.FusedProg
	parent int64
	frames []actx // open activations, innermost last
}

// fusedFor builds the entry instruction for one activation of a fused
// chain, drawing scratch from the chain's arena.
func fusedFor(fp *plan.FusedProg, parent int64) Instr {
	in, _ := fp.Scratch().Get().(*fusedInst)
	if in == nil {
		in = &fusedInst{frames: make([]actx, 0, fp.MaxFrames())}
	}
	in.prog, in.parent = fp, parent
	return in
}

func (in *fusedInst) release() {
	fp := in.prog
	in.prog, in.parent = nil, 0
	in.frames = in.frames[:0]
	fp.Scratch().Put(in)
}

func (in *fusedInst) interpret(w *worker, t *Task) ([]*Task, error) {
	r := t.root
	ops := in.prog.Ops()
	for i := range ops {
		// The unfused interpreter checks for cancellation between
		// instructions; mirror that between micro-ops. The run loop sees
		// the canceled root and retires the task.
		if r.Canceled() {
			return nil, nil
		}
		op := &ops[i]
		switch op.Code {
		case plan.FBegin:
			parent := in.parent
			if n := len(in.frames); n > 0 {
				parent = in.frames[n-1].idx
			}
			in.frames = append(in.frames, begin(op.Step, parent, op.Step.Trace(), w, t))
		case plan.FBody:
			a := in.frames[len(in.frames)-1]
			fe := op.Step.Exec()
			em := a.em(r, w)
			// Same protocol as seqInst: each retry re-raises the
			// Skeleton/Before event so the estimator times only the final
			// attempt.
			res, err := runAttempts(em, fe, t.param, func() (any, error) {
				t.param = em.emit(event.Before, event.Skeleton, t.param, nil)
				return t.param, nil
			}, func(p any) (any, error) { return fe.CallExecute(p) })
			if err != nil {
				return nil, err
			}
			t.param = em.emit(event.After, event.Skeleton, res, nil)
			in.frames = in.frames[:len(in.frames)-1]
		case plan.FEnd:
			a := in.frames[len(in.frames)-1]
			t.param = a.em(r, w).emit(event.After, event.Skeleton, t.param, nil)
			in.frames = in.frames[:len(in.frames)-1]
		case plan.FNestedBegin:
			a := in.frames[len(in.frames)-1]
			t.param = a.em(r, w).emit(event.Before, event.NestedSkel, t.param, func(e *event.Event) {
				e.Branch, e.Iter = op.Branch, op.Iter
			})
		case plan.FNestedEnd:
			a := in.frames[len(in.frames)-1]
			t.param = a.em(r, w).emit(event.After, event.NestedSkel, t.param, func(e *event.Event) {
				e.Branch, e.Iter = op.Branch, op.Iter
			})
		}
	}
	return nil, nil
}
