package exec

import (
	"skandium/internal/event"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// actx is the context of one skeleton activation, shared by the several
// instructions an activation schedules (e.g. a map's split instruction and
// its merge continuation). trace is usually the step's static trace; d&c
// recursion substitutes its dynamically grown one.
type actx struct {
	step   *plan.Step
	trace  []*skel.Node
	idx    int64
	parent int64
}

// nd returns the activation's skeleton node.
func (a actx) nd() *skel.Node { return a.step.Node() }

// em builds an emitter for the current worker.
func (a actx) em(r *Root, w *worker) emitter {
	return emitter{root: r, w: w, nd: a.step.Node(), trace: a.trace, idx: a.idx, parent: a.parent}
}

// begin allocates the activation index and raises the Skeleton/Before event.
func begin(step *plan.Step, parent int64, trace []*skel.Node, w *worker, t *Task) actx {
	a := actx{step: step, trace: trace, idx: t.root.nextIndex(), parent: parent}
	t.param = a.em(t.root, w).emit(event.Before, event.Skeleton, t.param, nil)
	return a
}

// seqInst evaluates seq(fe): the two events of the paper's Fig. 3,
// seq(fe)@b(i) and seq(fe)@a(i), bracket the execute muscle.
type seqInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var seqPool instrPool[seqInst]

func (in *seqInst) release() { seqPool.put(in) }

func (in *seqInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	fe := in.step.Exec()
	em := a.em(t.root, w)
	// Each retry re-raises the Skeleton/Before event, restarting the
	// activation clock so the estimator times only the final attempt.
	res, err := runAttempts(em, fe, t.param, func() (any, error) {
		t.param = em.emit(event.Before, event.Skeleton, t.param, nil)
		return t.param, nil
	}, func(p any) (any, error) { return fe.CallExecute(p) })
	if err != nil {
		return nil, err
	}
	t.param = em.emit(event.After, event.Skeleton, res, nil)
	return nil, nil
}

// nestedBeginInst raises the "before nested skeleton" event of the enclosing
// activation; it is the first instruction of every child/stage program.
type nestedBeginInst struct {
	a      actx
	branch int
	iter   int
}

var nestedBeginPool instrPool[nestedBeginInst]

func (in *nestedBeginInst) release() { nestedBeginPool.put(in) }

func newNestedBegin(a actx, branch, iter int) *nestedBeginInst {
	in := nestedBeginPool.get()
	in.a, in.branch, in.iter = a, branch, iter
	return in
}

func (in *nestedBeginInst) interpret(w *worker, t *Task) ([]*Task, error) {
	t.param = in.a.em(t.root, w).emit(event.Before, event.NestedSkel, t.param, func(e *event.Event) {
		e.Branch, e.Iter = in.branch, in.iter
	})
	return nil, nil
}

// nestedEndInst raises the matching "after nested skeleton" event.
type nestedEndInst struct {
	a      actx
	branch int
	iter   int
}

var nestedEndPool instrPool[nestedEndInst]

func (in *nestedEndInst) release() { nestedEndPool.put(in) }

func newNestedEnd(a actx, branch, iter int) *nestedEndInst {
	in := nestedEndPool.get()
	in.a, in.branch, in.iter = a, branch, iter
	return in
}

func (in *nestedEndInst) interpret(w *worker, t *Task) ([]*Task, error) {
	t.param = in.a.em(t.root, w).emit(event.After, event.NestedSkel, t.param, func(e *event.Event) {
		e.Branch, e.Iter = in.branch, in.iter
	})
	return nil, nil
}

// skelEndInst raises the Skeleton/After event that closes an activation
// whose body was scheduled as separate stack entries (farm, pipe, for,
// if, while, and the leaf arm of d&c).
type skelEndInst struct{ a actx }

var skelEndPool instrPool[skelEndInst]

func (in *skelEndInst) release() { skelEndPool.put(in) }

func newSkelEnd(a actx) *skelEndInst {
	in := skelEndPool.get()
	in.a = a
	return in
}

func (in *skelEndInst) interpret(w *worker, t *Task) ([]*Task, error) {
	t.param = in.a.em(t.root, w).emit(event.After, event.Skeleton, t.param, nil)
	return nil, nil
}
