package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// --- test muscles -----------------------------------------------------------

func feAdd(n int) *muscle.Muscle {
	return muscle.NewExecute(fmt.Sprintf("add%d", n), func(p any) (any, error) {
		return p.(int) + n, nil
	})
}

func feDouble() *muscle.Muscle {
	return muscle.NewExecute("double", func(p any) (any, error) { return p.(int) * 2, nil })
}

// fsHalves splits an int interval length into per-unit work items.
func fsRange() *muscle.Muscle {
	return muscle.NewSplit("range", func(p any) ([]any, error) {
		n := p.(int)
		out := make([]any, n)
		for i := 0; i < n; i++ {
			out[i] = i
		}
		return out, nil
	})
}

func fmSum() *muscle.Muscle {
	return muscle.NewMerge("sum", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
}

func run(t *testing.T, nd *skel.Node, param any, lp int) (any, error) {
	t.Helper()
	pool := NewPool(clock.System, lp, 0)
	defer pool.Close()
	root := NewRoot(pool, nil, nil)
	res, err := root.Start(nd, param).GetContext(testCtx(t))
	return res, err
}

func testCtx(t *testing.T) timeoutCtx { return timeoutCtx{t} }

// timeoutCtx adapts testing deadlines to context for future gets.
type timeoutCtx struct{ t *testing.T }

func (c timeoutCtx) Deadline() (time.Time, bool) { return time.Now().Add(30 * time.Second), true }
func (c timeoutCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	go func() { time.Sleep(30 * time.Second); close(ch) }()
	return ch
}
func (c timeoutCtx) Err() error    { return errors.New("test timeout") }
func (c timeoutCtx) Value(any) any { return nil }

// --- functional correctness -------------------------------------------------

func TestSeq(t *testing.T) {
	res, err := run(t, skel.NewSeq(feAdd(5)), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != 15 {
		t.Fatalf("got %v, want 15", res)
	}
}

func TestPipe(t *testing.T) {
	nd := skel.NewPipe(skel.NewSeq(feAdd(1)), skel.NewSeq(feDouble()), skel.NewSeq(feAdd(3)))
	res, err := run(t, nd, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res != 13 { // (4+1)*2+3
		t.Fatalf("got %v, want 13", res)
	}
}

func TestFarm(t *testing.T) {
	res, err := run(t, skel.NewFarm(skel.NewSeq(feDouble())), 21, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Fatalf("got %v, want 42", res)
	}
}

func TestMapSumAllLPs(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	// sum(2*i for i<10) = 90
	for lp := 1; lp <= 4; lp++ {
		res, err := run(t, nd, 10, lp)
		if err != nil {
			t.Fatalf("lp=%d: %v", lp, err)
		}
		if res != 90 {
			t.Fatalf("lp=%d: got %v, want 90", lp, res)
		}
	}
}

func TestMapEmptySplit(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	res, err := run(t, nd, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res != 0 {
		t.Fatalf("got %v, want 0", res)
	}
}

func TestNestedMap(t *testing.T) {
	// map(range, map(range, seq(double), sum), sum) over 4:
	// inner(i) = sum(2j for j<i) = i*(i-1); total = sum_{i<4} i(i-1) = 0+0+2+6 = 8
	inner := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	outer := skel.NewMap(fsRange(), inner, fmSum())
	for lp := 1; lp <= 3; lp++ {
		res, err := run(t, outer, 4, lp)
		if err != nil {
			t.Fatalf("lp=%d: %v", lp, err)
		}
		if res != 8 {
			t.Fatalf("lp=%d: got %v, want 8", lp, res)
		}
	}
}

func TestWhile(t *testing.T) {
	fc := muscle.NewCondition("lt100", func(p any) (bool, error) { return p.(int) < 100, nil })
	nd := skel.NewWhile(fc, skel.NewSeq(feDouble()))
	res, err := run(t, nd, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != 192 { // 3,6,12,24,48,96,192
		t.Fatalf("got %v, want 192", res)
	}
}

func TestWhileZeroIterations(t *testing.T) {
	fc := muscle.NewCondition("never", func(p any) (bool, error) { return false, nil })
	res, err := run(t, skel.NewWhile(fc, skel.NewSeq(feDouble())), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != 7 {
		t.Fatalf("got %v, want 7", res)
	}
}

func TestFor(t *testing.T) {
	res, err := run(t, skel.NewFor(5, skel.NewSeq(feAdd(3))), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res != 15 {
		t.Fatalf("got %v, want 15", res)
	}
}

func TestIfBranches(t *testing.T) {
	fc := muscle.NewCondition("pos", func(p any) (bool, error) { return p.(int) > 0, nil })
	nd := skel.NewIf(fc, skel.NewSeq(feAdd(100)), skel.NewSeq(feAdd(-100)))
	res, err := run(t, nd, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != 101 {
		t.Fatalf("true branch: got %v, want 101", res)
	}
	res, err = run(t, nd, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != -101 {
		t.Fatalf("false branch: got %v, want -101", res)
	}
}

func TestFork(t *testing.T) {
	fs := muscle.NewSplit("dup", func(p any) ([]any, error) { return []any{p, p}, nil })
	nd := skel.NewFork(fs, []*skel.Node{skel.NewSeq(feAdd(1)), skel.NewSeq(feDouble())}, fmSum())
	res, err := run(t, nd, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res != 31 { // (10+1) + (10*2)
		t.Fatalf("got %v, want 31", res)
	}
}

func TestForkCardinalityMismatch(t *testing.T) {
	fs := muscle.NewSplit("three", func(p any) ([]any, error) { return []any{1, 2, 3}, nil })
	nd := skel.NewFork(fs, []*skel.Node{skel.NewSeq(feAdd(1)), skel.NewSeq(feAdd(2))}, fmSum())
	_, err := run(t, nd, 0, 2)
	if err == nil || !strings.Contains(err.Error(), "fork split produced 3") {
		t.Fatalf("want cardinality error, got %v", err)
	}
}

// mergesort via d&c over []int payloads.
func TestDaCMergesort(t *testing.T) {
	fc := muscle.NewCondition("big", func(p any) (bool, error) { return len(p.([]int)) > 3, nil })
	fs := muscle.NewSplit("halve", func(p any) ([]any, error) {
		s := p.([]int)
		mid := len(s) / 2
		return []any{append([]int(nil), s[:mid]...), append([]int(nil), s[mid:]...)}, nil
	})
	fe := muscle.NewExecute("sortLeaf", func(p any) (any, error) {
		s := append([]int(nil), p.([]int)...)
		sort.Ints(s)
		return s, nil
	})
	fm := muscle.NewMerge("mergeSorted", func(ps []any) (any, error) {
		a, b := ps[0].([]int), ps[1].([]int)
		out := make([]int, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		return out, nil
	})
	nd := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)
	input := []int{9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 11, 10}
	for lp := 1; lp <= 4; lp++ {
		res, err := run(t, nd, append([]int(nil), input...), lp)
		if err != nil {
			t.Fatalf("lp=%d: %v", lp, err)
		}
		got := res.([]int)
		if !sort.IntsAreSorted(got) || len(got) != len(input) {
			t.Fatalf("lp=%d: not sorted: %v", lp, got)
		}
	}
}

// --- error handling ---------------------------------------------------------

func TestMuscleErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	fe := muscle.NewExecute("boom", func(p any) (any, error) { return nil, boom })
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	_, err := run(t, nd, 4, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	var me *MuscleError
	if !errors.As(err, &me) {
		t.Fatalf("want *MuscleError, got %T", err)
	}
	if me.Muscle != fe {
		t.Fatalf("error attributes wrong muscle: %v", me.Muscle)
	}
}

func TestMusclePanicBecomesError(t *testing.T) {
	fe := muscle.NewExecute("panics", func(p any) (any, error) { panic("kaboom") })
	_, err := run(t, skel.NewSeq(fe), 1, 1)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestCancel(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	fe := muscle.NewExecute("slow", func(p any) (any, error) {
		close(started)
		<-release
		return p, nil
	})
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	root := NewRoot(pool, nil, nil)
	fut := root.Start(skel.NewFor(3, skel.NewSeq(fe)), 0)
	<-started
	abort := errors.New("abort")
	root.Cancel(abort)
	close(release)
	if _, err := fut.Get(); !errors.Is(err, abort) {
		t.Fatalf("want abort, got %v", err)
	}
}

func TestInvalidSkeletonFailsFast(t *testing.T) {
	// Hand-build an invalid node via zero value semantics is impossible from
	// outside skel; instead check Validate wiring with a valid tree.
	nd := skel.NewSeq(feAdd(1))
	if err := nd.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

// --- events -----------------------------------------------------------------

type recEvent struct {
	kind  skel.Kind
	when  event.When
	where event.Where
	idx   int64
}

func collectEvents(t *testing.T, nd *skel.Node, param any, lp int) ([]recEvent, any) {
	t.Helper()
	pool := NewPool(clock.System, lp, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	var mu sync.Mutex
	var evs []recEvent
	reg.Add(event.Func(func(e *event.Event) any {
		mu.Lock()
		evs = append(evs, recEvent{e.Node.Kind(), e.When, e.Where, e.Index})
		mu.Unlock()
		return e.Param
	}))
	root := NewRoot(pool, reg, nil)
	res, err := root.Start(nd, param).Get()
	if err != nil {
		t.Fatal(err)
	}
	return evs, res
}

func TestSeqEvents(t *testing.T) {
	evs, _ := collectEvents(t, skel.NewSeq(feAdd(1)), 0, 1)
	want := []recEvent{
		{skel.Seq, event.Before, event.Skeleton, 0},
		{skel.Seq, event.After, event.Skeleton, 0},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), evs, len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, evs[i], want[i])
		}
	}
}

func TestMapEventProtocol(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	evs, _ := collectEvents(t, nd, 3, 1)
	// The paper's eight map events (nested ones appear per branch), plus the
	// nested seq's own before/after pairs.
	var mapEvents []recEvent
	for _, e := range evs {
		if e.kind == skel.Map {
			mapEvents = append(mapEvents, e)
		}
	}
	counts := map[string]int{}
	for _, e := range mapEvents {
		counts[fmt.Sprintf("%v/%v", e.when, e.where)]++
	}
	wantCounts := map[string]int{
		"before/skeleton": 1,
		"before/split":    1,
		"after/split":     1,
		"before/nested":   3,
		"after/nested":    3,
		"before/merge":    1,
		"after/merge":     1,
		"after/skeleton":  1,
	}
	for k, v := range wantCounts {
		if counts[k] != v {
			t.Fatalf("map event %s: got %d, want %d (events: %v)", k, counts[k], v, counts)
		}
	}
	// All map events of this single activation share one index.
	idx := mapEvents[0].idx
	for _, e := range mapEvents {
		if e.idx != idx {
			t.Fatalf("map events use several indices: %v", mapEvents)
		}
	}
}

func TestEventOrderSeqInsideMapBranch(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	evs, _ := collectEvents(t, nd, 2, 1) // LP=1 makes ordering deterministic
	// For each branch: nested-before then seq-before then seq-after then
	// nested-after, in that order.
	var seqSeen, nestedOpen int
	for _, e := range evs {
		switch {
		case e.kind == skel.Map && e.where == event.NestedSkel && e.when == event.Before:
			nestedOpen++
		case e.kind == skel.Map && e.where == event.NestedSkel && e.when == event.After:
			nestedOpen--
			if nestedOpen < 0 {
				t.Fatal("nested-after without matching before")
			}
		case e.kind == skel.Seq:
			if nestedOpen == 0 {
				t.Fatal("seq event outside nested bracket")
			}
			seqSeen++
		}
	}
	if seqSeen != 4 {
		t.Fatalf("want 4 seq events, got %d", seqSeen)
	}
}

func TestListenerReplacesParam(t *testing.T) {
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	// Triple the value right before the execute muscle runs.
	reg.AddFiltered(event.Func(func(e *event.Event) any {
		return e.Param.(int) * 3
	}), event.Filter{Kind: skel.Seq, HasKind: true, When: event.Before, HasWhen: true})
	root := NewRoot(pool, reg, nil)
	res, err := root.Start(skel.NewSeq(feAdd(1)), 10).Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 31 {
		t.Fatalf("got %v, want 31", res)
	}
}

func TestParentIndexLinksActivations(t *testing.T) {
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	reg := event.NewRegistry()
	var mu sync.Mutex
	parentOf := map[int64]int64{}
	kinds := map[int64]skel.Kind{}
	reg.Add(event.Func(func(e *event.Event) any {
		mu.Lock()
		parentOf[e.Index] = e.Parent
		kinds[e.Index] = e.Node.Kind()
		mu.Unlock()
		return e.Param
	}))
	root := NewRoot(pool, reg, nil)
	if _, err := root.Start(nd, 3).Get(); err != nil {
		t.Fatal(err)
	}
	var mapIdx int64 = -1
	for idx, k := range kinds {
		if k == skel.Map {
			mapIdx = idx
		}
	}
	if mapIdx < 0 {
		t.Fatal("no map activation recorded")
	}
	if parentOf[mapIdx] != event.NoParent {
		t.Fatalf("map parent = %d, want NoParent", parentOf[mapIdx])
	}
	seqs := 0
	for idx, k := range kinds {
		if k == skel.Seq {
			seqs++
			if parentOf[idx] != mapIdx {
				t.Fatalf("seq activation %d has parent %d, want %d", idx, parentOf[idx], mapIdx)
			}
		}
	}
	if seqs != 3 {
		t.Fatalf("want 3 seq activations, got %d", seqs)
	}
}

// --- pool behaviour ---------------------------------------------------------

func TestPoolLPLimitsConcurrency(t *testing.T) {
	const n, lp = 12, 3
	var mu sync.Mutex
	cur, peak := 0, 0
	fe := muscle.NewExecute("track", func(p any) (any, error) {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
		return p, nil
	})
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	pool := NewPool(clock.System, lp, 0)
	defer pool.Close()
	root := NewRoot(pool, nil, nil)
	if _, err := root.Start(nd, n).Get(); err != nil {
		t.Fatal(err)
	}
	if peak > lp {
		t.Fatalf("peak concurrency %d exceeds LP %d", peak, lp)
	}
}

func TestPoolSetLPRaisesConcurrency(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	cur, peak := 0, 0
	block := make(chan struct{})
	var once sync.Once
	fe := muscle.NewExecute("track", func(p any) (any, error) {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		once.Do(func() { close(block) })
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
		return p, nil
	})
	nd := skel.NewMap(fsRange(), skel.NewSeq(fe), fmSum())
	pool := NewPool(clock.System, 1, 0)
	defer pool.Close()
	root := NewRoot(pool, nil, nil)
	fut := root.Start(nd, n)
	<-block
	pool.SetLP(4)
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Fatalf("raising LP had no effect: peak=%d", peak)
	}
	if peak > 4 {
		t.Fatalf("peak %d exceeds raised LP 4", peak)
	}
}

func TestPoolSetLPClamps(t *testing.T) {
	pool := NewPool(clock.System, 2, 4)
	defer pool.Close()
	pool.SetLP(100)
	if lp := pool.LP(); lp != 4 {
		t.Fatalf("LP=%d, want clamp to 4", lp)
	}
	pool.SetLP(0)
	if lp := pool.LP(); lp != 1 {
		t.Fatalf("LP=%d, want clamp to 1", lp)
	}
}

func TestPoolGaugeObservesTransitions(t *testing.T) {
	var mu sync.Mutex
	samples := 0
	maxActive := 0
	pool := NewPool(clock.System, 2, 0)
	defer pool.Close()
	pool.SetGauge(func(_ time.Time, active, lp int) {
		mu.Lock()
		samples++
		if active > maxActive {
			maxActive = active
		}
		if lp != 2 {
			t.Errorf("gauge lp=%d, want 2", lp)
		}
		mu.Unlock()
	})
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	root := NewRoot(pool, nil, nil)
	if _, err := root.Start(nd, 6).Get(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if samples == 0 {
		t.Fatal("gauge never called")
	}
	if maxActive < 1 {
		t.Fatal("gauge never saw an active worker")
	}
}

func TestManyRootsShareOnePool(t *testing.T) {
	pool := NewPool(clock.System, 4, 0)
	defer pool.Close()
	nd := skel.NewMap(fsRange(), skel.NewSeq(feDouble()), fmSum())
	futs := make([]*Future, 20)
	for i := range futs {
		futs[i] = NewRoot(pool, nil, nil).Start(nd, 10)
	}
	for i, f := range futs {
		res, err := f.Get()
		if err != nil {
			t.Fatalf("root %d: %v", i, err)
		}
		if res != 90 {
			t.Fatalf("root %d: got %v, want 90", i, res)
		}
	}
}
