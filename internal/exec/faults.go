package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// ErrMuscleTimeout is wrapped by the MuscleError of an attempt that
// overran its per-muscle deadline. Detect it with errors.Is.
var ErrMuscleTimeout = errors.New("muscle deadline exceeded")

// RetryPolicy bounds how a failed muscle invocation is retried. The zero
// value disables retries (a single attempt). Backoff is exponential:
// attempt k waits BaseDelay·Multiplier^(k-1), capped at MaxDelay, with a
// symmetric ±Jitter fraction drawn from a seeded source so runs are
// reproducible.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first call included).
	// Values <= 1 mean no retry.
	MaxAttempts int
	// BaseDelay is the wait before the first retry (0 = immediate).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = uncapped).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (values < 1 default to 2).
	Multiplier float64
	// Jitter is the relative backoff noise in [0,1]: the wait is scaled by
	// a uniform factor in [1-Jitter, 1+Jitter].
	Jitter float64
	// Seed makes the jitter sequence reproducible (0 uses seed 1).
	Seed int64
	// RetryIf, when non-nil, restricts which errors are retried. The error
	// passed is the attempt's MuscleError (unwrap for the cause). Timeouts
	// are retryable like any other failure unless RetryIf rejects them.
	RetryIf func(error) bool
}

// maxAttempts normalizes the attempt budget.
func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// shouldRetry consults RetryIf (nil retries everything).
func (p RetryPolicy) shouldRetry(err error) bool {
	return p.RetryIf == nil || p.RetryIf(err)
}

// partialMode enumerates the fan-out failure policies.
type partialMode int

const (
	failFast partialMode = iota
	skipFailed
	substituteFailed
)

// PartialPolicy decides what happens when one branch of a data-parallel
// fan-out (map, fork, d&c) fails terminally. Build values with FailFast,
// SkipFailed or Substitute.
type PartialPolicy struct {
	mode partialMode
	sub  any
}

// FailFast aborts the whole execution on the first branch failure — the
// default, and the only behaviour the paper's engine had.
func FailFast() PartialPolicy { return PartialPolicy{mode: failFast} }

// SkipFailed drops failed branches before the merge: the merge muscle
// receives only the surviving results (it must tolerate a shorter slice).
// When every branch of a fan-out fails, the activation fails with the
// FailureError aggregate.
func SkipFailed() PartialPolicy { return PartialPolicy{mode: skipFailed} }

// Substitute replaces each failed branch's result with v before the merge,
// preserving the fan-out's cardinality.
func Substitute(v any) PartialPolicy { return PartialPolicy{mode: substituteFailed, sub: v} }

// String names the policy for logs and the daemon API.
func (p PartialPolicy) String() string {
	switch p.mode {
	case skipFailed:
		return "skip"
	case substituteFailed:
		return "substitute"
	default:
		return "failfast"
	}
}

// FaultConfig is the fault-tolerance envelope of one Root (usually shared
// by every root of a stream). The zero value reproduces the historical
// behaviour: no deadline, no retry, fail-fast.
type FaultConfig struct {
	// Timeout is the per-muscle deadline. A muscle attempt overrunning it
	// fails with ErrMuscleTimeout; the abandoned goroutine finishes in the
	// background and its result is discarded, so muscles guarded by a
	// timeout should be side-effect-free or idempotent.
	Timeout time.Duration
	// Retry is applied to every muscle invocation.
	Retry RetryPolicy
	// Partial governs branch failures in map/fork/d&c fan-outs.
	Partial PartialPolicy
	// Counters, when non-nil, aggregates fault statistics across roots (a
	// stream installs one shared instance). Nil gets a private one.
	Counters *FaultCounters
}

// FaultCounters accumulates fault-tolerance statistics. Safe for concurrent
// use; share one instance across the roots of a stream.
type FaultCounters struct {
	retries     atomic.Uint64
	faults      atomic.Uint64
	timeouts    atomic.Uint64
	skipped     atomic.Uint64
	substituted atomic.Uint64
}

// FaultStats is a snapshot of FaultCounters.
type FaultStats struct {
	// Retries counts failed attempts that were retried.
	Retries uint64
	// Faults counts terminal muscle failures (retry budget exhausted).
	Faults uint64
	// Timeouts counts attempts killed by the per-muscle deadline (each is
	// also counted as a retry or fault, depending on what followed).
	Timeouts uint64
	// Skipped counts branches dropped by the SkipFailed policy.
	Skipped uint64
	// Substituted counts branches replaced by the Substitute policy.
	Substituted uint64
}

// Stats snapshots the counters. Safe on a nil receiver (all zeros).
func (c *FaultCounters) Stats() FaultStats {
	if c == nil {
		return FaultStats{}
	}
	return FaultStats{
		Retries:     c.retries.Load(),
		Faults:      c.faults.Load(),
		Timeouts:    c.timeouts.Load(),
		Skipped:     c.skipped.Load(),
		Substituted: c.substituted.Load(),
	}
}

// BranchFailure records one fan-out branch lost to the partial-failure
// policy: which branch, how it failed, and whether a substitute stood in.
type BranchFailure struct {
	// Branch is the failed branch's position in its fan-out.
	Branch int
	// Err is the terminal error (a *MuscleError carrying the trace).
	Err error
	// Substituted says whether the Substitute policy filled the slot
	// (false = the branch was skipped).
	Substituted bool
}

// FailureError aggregates the branch failures of one execution. It resolves
// the future when every branch of a fan-out failed under SkipFailed, and is
// available from Root.Failures after partially-degraded successes.
type FailureError struct {
	Failures []BranchFailure
}

// Error implements error.
func (e *FailureError) Error() string {
	skipped, substituted := 0, 0
	for _, f := range e.Failures {
		if f.Substituted {
			substituted++
		} else {
			skipped++
		}
	}
	msg := fmt.Sprintf("skandium: %d branch failure(s) (%d skipped, %d substituted)",
		len(e.Failures), skipped, substituted)
	if len(e.Failures) > 0 {
		msg += ": " + e.Failures[0].Err.Error()
	}
	return msg
}

// guard invokes fn with panic recovery, turning panics and errors into
// MuscleError so a buggy muscle aborts its execution instead of the
// process.
func guard[P, T any](m *muscle.Muscle, trace []*skel.Node, p P, fn func(P) (T, error)) (res T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &MuscleError{Muscle: m, Trace: trace, Err: fmt.Errorf("panic: %v", rec)}
		}
	}()
	res, err = fn(p)
	if err != nil {
		err = &MuscleError{Muscle: m, Trace: trace, Err: err}
	}
	return res, err
}

// callTimed runs one guarded muscle attempt under the root's per-muscle
// deadline. Without a deadline the muscle runs on the calling worker; with
// one it runs on a helper goroutine so the worker can give up at the
// deadline — the abandoned attempt finishes in the background and its
// result is dropped (running muscles are never interrupted, matching
// Skandium).
func callTimed[P, T any](r *Root, m *muscle.Muscle, trace []*skel.Node, p P, fn func(P) (T, error)) (T, error) {
	d := r.faults.Timeout
	if d <= 0 {
		return guard(m, trace, p, fn)
	}
	type outcome struct {
		res T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := guard(m, trace, p, fn)
		ch <- outcome{res: res, err: err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		r.counters().timeouts.Add(1)
		var zero T
		return zero, &MuscleError{Muscle: m, Trace: trace,
			Err: fmt.Errorf("%w (deadline %v)", ErrMuscleTimeout, d)}
	}
}

// runAttempts invokes one muscle under the root's fault policy. first is
// the input of the first attempt (its Before event has already been
// raised by the call site); before each retry, reBefore re-raises the
// attempt's Before event and returns the (listener-threaded) input, so
// estimators time each attempt separately and never double-count. Failed
// attempts raise Retry events while budget remains; the terminal failure
// raises a Fault event and returns the error.
func runAttempts[P, T any](em emitter, m *muscle.Muscle, first P, reBefore func() (P, error), fn func(P) (T, error)) (T, error) {
	r := em.root
	pol := r.faults.Retry
	p := first
	for attempt := 1; ; attempt++ {
		res, err := callTimed(r, m, em.trace, p, fn)
		if err == nil {
			return res, nil
		}
		if attempt < pol.maxAttempts() && pol.shouldRetry(err) && !r.Canceled() {
			r.counters().retries.Add(1)
			em.emit(event.After, event.Retry, p, func(e *event.Event) {
				e.Err, e.Iter = err, attempt
			})
			clock.Sleep(r.clk, r.backoff(attempt))
			np, berr := reBefore()
			if berr == nil {
				p = np
				continue
			}
			err = berr
		}
		r.counters().faults.Add(1)
		em.emit(event.After, event.Fault, p, func(e *event.Event) {
			e.Err, e.Iter = err, attempt
		})
		var zero T
		return zero, err
	}
}

// backoff computes the jittered exponential wait before retry attempt k
// (1-based: the wait after the k-th failed attempt).
func (r *Root) backoff(attempt int) time.Duration {
	pol := r.faults.Retry
	if pol.BaseDelay <= 0 {
		return 0
	}
	mult := pol.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(pol.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
	}
	if pol.MaxDelay > 0 && d > float64(pol.MaxDelay) {
		d = float64(pol.MaxDelay)
	}
	if pol.Jitter > 0 {
		r.rngMu.Lock()
		u := r.rng.Float64()
		r.rngMu.Unlock()
		d *= 1 + pol.Jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// failedBranch is the result marker a failed fan-out branch reports to its
// parent under a non-fail-fast partial policy; the parent's merge replaces
// or drops it per the policy.
type failedBranch struct {
	err error
}

// absorb routes a task failure to the enclosing fan-out per the root's
// partial-failure policy. It reports true when the failure was absorbed
// (the parent merges around the lost branch) and false when it must fail
// the whole root: fail-fast policy, a root-level task, or a structural
// (non-muscle) error.
func (t *Task) absorb(w *worker, err error) bool {
	if t.parent == nil {
		return false
	}
	mode := t.root.faults.Partial.mode
	if mode == failFast {
		return false
	}
	var me *MuscleError
	var fe *FailureError
	if !errors.As(err, &me) && !errors.As(err, &fe) {
		return false
	}
	t.root.recordBranchFailure(BranchFailure{
		Branch:      t.branch,
		Err:         err,
		Substituted: mode == substituteFailed,
	})
	t.parent.childDone(w, t.branch, failedBranch{err: err})
	return true
}

// applyPartial resolves failed-branch markers in a fan-out's results per
// the root's policy: substitution preserves cardinality, skipping drops the
// slots. When skipping leaves nothing of a non-empty fan-out, the merge
// cannot proceed and the activation fails with the FailureError aggregate.
func applyPartial(r *Root, results []any) ([]any, error) {
	pol := r.faults.Partial
	kept := make([]any, 0, len(results))
	var lost []BranchFailure
	for b, res := range results {
		fb, failed := res.(failedBranch)
		if !failed {
			kept = append(kept, res)
			continue
		}
		lost = append(lost, BranchFailure{
			Branch:      b,
			Err:         fb.err,
			Substituted: pol.mode == substituteFailed,
		})
		if pol.mode == substituteFailed {
			kept = append(kept, pol.sub)
		}
	}
	if len(lost) > 0 && len(kept) == 0 {
		return nil, &FailureError{Failures: lost}
	}
	return kept, nil
}
