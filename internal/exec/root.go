// Package exec is the skeleton interpreter: a task pool with a resizable
// level of parallelism executing instruction stacks compiled on the fly from
// skeleton trees, raising the event hooks the autonomic layer observes.
package exec

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// Root is one end-to-end execution of a skeleton program for one input
// parameter. It owns the activation-index counter, the listener registry
// the execution reports to, and the future the caller waits on. Several
// roots may share one pool.
type Root struct {
	pool   *Pool
	events *event.Registry
	clk    clock.Clock

	idx      atomic.Int64
	canceled atomic.Bool
	future   *Future
	start    time.Time

	// Fault tolerance: the policy envelope (immutable after Start), the
	// jitter source it draws from, and the branch failures absorbed by
	// partial-failure policies.
	faults      FaultConfig
	ctrs        *FaultCounters
	rngMu       sync.Mutex
	rng         *rand.Rand
	failMu      sync.Mutex
	branchFails []BranchFailure
}

// NewRoot creates an execution session on pool reporting to events. A nil
// registry gets a fresh empty one; a nil clock means the system clock.
func NewRoot(pool *Pool, events *event.Registry, clk clock.Clock) *Root {
	if pool == nil {
		panic("exec: NewRoot with nil pool")
	}
	if events == nil {
		events = event.NewRegistry()
	}
	if clk == nil {
		clk = clock.System
	}
	r := &Root{pool: pool, events: events, clk: clk, future: NewFuture()}
	r.ctrs = &FaultCounters{}
	r.rng = rand.New(rand.NewSource(1))
	return r
}

// SetFaults installs the fault-tolerance policy. Call before Start; the
// config must not change once tasks are running. A non-nil cfg.Counters
// replaces the root's private counters (streams share one across inputs).
func (r *Root) SetFaults(cfg FaultConfig) {
	r.faults = cfg
	if cfg.Counters != nil {
		r.ctrs = cfg.Counters
	}
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	r.rng = rand.New(rand.NewSource(seed))
}

// Faults returns the fault-tolerance policy in force.
func (r *Root) Faults() FaultConfig { return r.faults }

// counters returns the fault counter sink (never nil).
func (r *Root) counters() *FaultCounters { return r.ctrs }

// FaultStats snapshots the root's fault counters. When the root shares a
// stream-level FaultCounters, the snapshot covers the whole stream.
func (r *Root) FaultStats() FaultStats { return r.ctrs.Stats() }

// recordBranchFailure logs one absorbed fan-out branch failure.
func (r *Root) recordBranchFailure(bf BranchFailure) {
	if bf.Substituted {
		r.ctrs.substituted.Add(1)
	} else {
		r.ctrs.skipped.Add(1)
	}
	r.failMu.Lock()
	r.branchFails = append(r.branchFails, bf)
	r.failMu.Unlock()
}

// Failures returns the branch failures absorbed by partial-failure policies
// during this execution, or nil when every branch succeeded. A non-nil
// return alongside a successful future means the result is partial.
func (r *Root) Failures() *FailureError {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	if len(r.branchFails) == 0 {
		return nil
	}
	return &FailureError{Failures: append([]BranchFailure(nil), r.branchFails...)}
}

// Events returns the registry this execution emits to.
func (r *Root) Events() *event.Registry { return r.events }

// Pool returns the pool executing this root.
func (r *Root) Pool() *Pool { return r.pool }

// Clock returns the root's time source.
func (r *Root) Clock() clock.Clock { return r.clk }

// Future returns the handle resolved with the final result.
func (r *Root) Future() *Future { return r.future }

// StartTime returns the clock reading at Start (zero before Start).
func (r *Root) StartTime() time.Time { return r.start }

// Start injects param into the skeleton program rooted at node and returns
// the future of the result. Start must be called exactly once per Root.
// The node is compiled to the shared program IR on first use (cached on the
// node); compile errors resolve the future.
func (r *Root) Start(node *skel.Node, param any) *Future {
	p, err := plan.Of(node)
	if err != nil {
		r.finish(nil, err)
		return r.future
	}
	return r.StartProgram(p, param)
}

// StartProgram is Start for a pre-compiled program: the seam through which
// every backend injects work. A remote/distributed backend ships (or
// references) the compiled IR once per program instead of re-deriving
// structure per task; internal/dist exercises it via Cluster.Compile.
func (r *Root) StartProgram(p *plan.Program, param any) *Future {
	r.start = r.clk.Now()
	t := newTask(r, nil, 0, param, instrFor(p.Root(), event.NoParent))
	r.pool.Submit(t)
	return r.future
}

// nextIndex allocates an activation index; the Before and After events of
// one activation share it.
func (r *Root) nextIndex() int64 { return r.idx.Add(1) - 1 }

// LastIndex returns the number of activation indices allocated so far.
func (r *Root) LastIndex() int64 { return r.idx.Load() }

// Canceled reports whether the execution has been aborted (muscle error or
// explicit Cancel). Workers drop tasks of canceled roots between
// instructions.
func (r *Root) Canceled() bool { return r.canceled.Load() }

// Cancel aborts the execution: the future resolves with err and remaining
// tasks are discarded as workers encounter them. Running muscles are not
// interrupted.
func (r *Root) Cancel(err error) { r.fail(err) }

func (r *Root) fail(err error) {
	r.canceled.Store(true)
	r.future.resolve(nil, err)
}

func (r *Root) finish(result any, err error) {
	if err != nil {
		r.fail(err)
		return
	}
	r.future.resolve(result, nil)
}
