// Package exec is the skeleton interpreter: a task pool with a resizable
// level of parallelism executing instruction stacks compiled on the fly from
// skeleton trees, raising the event hooks the autonomic layer observes.
package exec

import (
	"sync/atomic"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/skel"
)

// Root is one end-to-end execution of a skeleton program for one input
// parameter. It owns the activation-index counter, the listener registry
// the execution reports to, and the future the caller waits on. Several
// roots may share one pool.
type Root struct {
	pool   *Pool
	events *event.Registry
	clk    clock.Clock

	idx      atomic.Int64
	canceled atomic.Bool
	future   *Future
	start    time.Time
}

// NewRoot creates an execution session on pool reporting to events. A nil
// registry gets a fresh empty one; a nil clock means the system clock.
func NewRoot(pool *Pool, events *event.Registry, clk clock.Clock) *Root {
	if pool == nil {
		panic("exec: NewRoot with nil pool")
	}
	if events == nil {
		events = event.NewRegistry()
	}
	if clk == nil {
		clk = clock.System
	}
	return &Root{pool: pool, events: events, clk: clk, future: NewFuture()}
}

// Events returns the registry this execution emits to.
func (r *Root) Events() *event.Registry { return r.events }

// Pool returns the pool executing this root.
func (r *Root) Pool() *Pool { return r.pool }

// Clock returns the root's time source.
func (r *Root) Clock() clock.Clock { return r.clk }

// Future returns the handle resolved with the final result.
func (r *Root) Future() *Future { return r.future }

// StartTime returns the clock reading at Start (zero before Start).
func (r *Root) StartTime() time.Time { return r.start }

// Start injects param into the skeleton program rooted at node and returns
// the future of the result. Start must be called exactly once per Root.
func (r *Root) Start(node *skel.Node, param any) *Future {
	if err := node.Validate(); err != nil {
		r.finish(nil, err)
		return r.future
	}
	r.start = r.clk.Now()
	t := newTask(r, nil, 0, param, instrFor(node, event.NoParent, nil))
	r.pool.Submit(t)
	return r.future
}

// nextIndex allocates an activation index; the Before and After events of
// one activation share it.
func (r *Root) nextIndex() int64 { return r.idx.Add(1) - 1 }

// LastIndex returns the number of activation indices allocated so far.
func (r *Root) LastIndex() int64 { return r.idx.Load() }

// Canceled reports whether the execution has been aborted (muscle error or
// explicit Cancel). Workers drop tasks of canceled roots between
// instructions.
func (r *Root) Canceled() bool { return r.canceled.Load() }

// Cancel aborts the execution: the future resolves with err and remaining
// tasks are discarded as workers encounter them. Running muscles are not
// interrupted.
func (r *Root) Cancel(err error) { r.fail(err) }

func (r *Root) fail(err error) {
	r.canceled.Store(true)
	r.future.resolve(nil, err)
}

func (r *Root) finish(result any, err error) {
	if err != nil {
		r.fail(err)
		return
	}
	r.future.resolve(result, nil)
}
