package exec

import (
	"fmt"

	"skandium/internal/event"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// mapInst evaluates map(fs,∆,fm). It raises the paper's eight map events:
// skeleton begin, before/after split, before/after each nested skeleton,
// before/after merge, skeleton end. The split's sub-problems become child
// tasks executed in parallel; the merge runs as a continuation when the last
// child completes.
type mapInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var mapPool instrPool[mapInst]

func (in *mapInst) release() { mapPool.put(in) }

func (in *mapInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	parts, err := runSplit(a, w, t)
	if err != nil {
		return nil, err
	}
	t.push(newMapMerge(a))
	child := in.step.Child(0)
	return forkChildren(a, t, parts, func(branch int) Instr {
		return instrFor(child, a.idx)
	}), nil
}

// runSplit raises the before/after split events around the split muscle and
// returns the sub-problems.
func runSplit(a actx, w *worker, t *Task) ([]any, error) {
	em := a.em(t.root, w)
	p := em.emit(event.Before, event.Split, t.param, nil)
	fs := a.nd().Split()
	parts, err := runAttempts(em, fs, p, func() (any, error) {
		return em.emit(event.Before, event.Split, t.param, nil), nil
	}, func(p any) ([]any, error) { return fs.CallSplit(p) })
	if err != nil {
		return nil, err
	}
	after := em.emit(event.After, event.Split, any(parts), func(e *event.Event) {
		e.Card = len(parts)
	})
	if repl, ok := after.([]any); ok {
		parts = repl
	}
	// Feed the optimizer's pre-sizing hint (nil on unoptimized programs):
	// later consumers size buffers and shard batches for this fan-out width.
	a.step.CardHint().Record(len(parts))
	return parts, nil
}

// forkChildren parks t behind len(parts) children, each running the program
// produced by prog for its branch, bracketed by the nested-skeleton events
// of activation a. With zero parts no children are created and the
// continuation already pushed on t runs immediately with empty results.
func forkChildren(a actx, t *Task, parts []any, prog func(branch int) Instr) []*Task {
	t.fork(len(parts))
	if len(parts) == 0 {
		return nil
	}
	children := make([]*Task, len(parts))
	for b, p := range parts {
		children[b] = newTask(t.root, t, b, p,
			newNestedEnd(a, b, 0),
			prog(b),
			newNestedBegin(a, b, 0),
		)
	}
	return children
}

// mapMergeInst is the continuation of a map activation: it merges the
// children results and closes the activation.
type mapMergeInst struct{ a actx }

var mapMergePool instrPool[mapMergeInst]

func (in *mapMergeInst) release() { mapMergePool.put(in) }

func newMapMerge(a actx) *mapMergeInst {
	in := mapMergePool.get()
	in.a = a
	return in
}

func (in *mapMergeInst) interpret(w *worker, t *Task) ([]*Task, error) {
	merged, err := runMerge(in.a, w, t)
	if err != nil {
		return nil, err
	}
	t.param = in.a.em(t.root, w).emit(event.After, event.Skeleton, merged, nil)
	return nil, nil
}

// runMerge raises the before/after merge events around the merge muscle and
// returns the merged value. Failed-branch markers are resolved by the
// root's partial-failure policy before the merge's Before event, so
// listeners and the merge muscle only ever see real (or substituted)
// results.
func runMerge(a actx, w *worker, t *Task) (any, error) {
	em := a.em(t.root, w)
	results, ferr := applyPartial(t.root, t.takeResults())
	if ferr != nil {
		// Every branch failed: close the activation with a Fault event and
		// the aggregate error (absorbable one level up, like any failure).
		em.emit(event.After, event.Fault, nil, func(e *event.Event) { e.Err = ferr })
		return nil, ferr
	}
	cast := func(p any) ([]any, error) {
		rs, ok := p.([]any)
		if !ok {
			return nil, fmt.Errorf("skandium: listener replaced merge input of %s with %T (want []any)",
				a.nd().Kind(), p)
		}
		return rs, nil
	}
	rs, err := cast(em.emit(event.Before, event.Merge, any(results), nil))
	if err != nil {
		return nil, err
	}
	fm := a.nd().Merge()
	merged, err := runAttempts(em, fm, rs, func() ([]any, error) {
		return cast(em.emit(event.Before, event.Merge, any(results), nil))
	}, func(ps []any) (any, error) { return fm.CallMerge(ps) })
	if err != nil {
		return nil, err
	}
	return em.emit(event.After, event.Merge, merged, nil), nil
}

// forkInst evaluates fork(fs,{∆},fm): like map, but branch b is processed by
// nested skeleton ∆b. The split must produce exactly one sub-problem per
// nested skeleton.
type forkInst struct {
	step   *plan.Step
	parent int64
	trace  []*skel.Node
}

var forkPool instrPool[forkInst]

func (in *forkInst) release() { forkPool.put(in) }

func (in *forkInst) interpret(w *worker, t *Task) ([]*Task, error) {
	a := begin(in.step, in.parent, in.trace, w, t)
	parts, err := runSplit(a, w, t)
	if err != nil {
		return nil, err
	}
	subs := in.step.Children()
	if len(parts) != len(subs) {
		return nil, fmt.Errorf("skandium: fork split produced %d sub-problems for %d nested skeletons",
			len(parts), len(subs))
	}
	t.push(newMapMerge(a))
	return forkChildren(a, t, parts, func(branch int) Instr {
		return instrFor(subs[branch], a.idx)
	}), nil
}
