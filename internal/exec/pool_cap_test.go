package exec

import (
	"testing"

	"skandium/internal/clock"
)

// TestExternalCapClampsAndRestores: SetCap lowers the effective LP in both
// directions and remembers the unclamped target, so lifting the cap restores
// the controller's last request.
func TestExternalCapClampsAndRestores(t *testing.T) {
	pool := NewPool(clock.System, 4, 0)
	defer pool.Close()
	if got := pool.LP(); got != 4 {
		t.Fatalf("initial LP = %d, want 4", got)
	}
	pool.SetCap(2)
	if got := pool.LP(); got != 2 {
		t.Fatalf("LP under cap = %d, want 2", got)
	}
	if got := pool.Want(); got != 4 {
		t.Fatalf("Want = %d, want 4", got)
	}
	// Raising the target while capped records the wish but stays clamped.
	pool.SetLP(8)
	if got := pool.LP(); got != 2 {
		t.Fatalf("LP after capped SetLP = %d, want 2", got)
	}
	// Widening the cap releases up to the remembered target.
	pool.SetCap(6)
	if got := pool.LP(); got != 6 {
		t.Fatalf("LP after widening cap = %d, want 6", got)
	}
	pool.SetCap(0)
	if got := pool.LP(); got != 8 {
		t.Fatalf("LP after lifting cap = %d, want 8", got)
	}
}

// TestExternalCapComposesWithMaxLP: the tighter of maxLP and the external
// cap wins; SetMaxLP re-clamps at runtime.
func TestExternalCapComposesWithMaxLP(t *testing.T) {
	pool := NewPool(clock.System, 10, 5)
	defer pool.Close()
	if got := pool.LP(); got != 5 {
		t.Fatalf("LP = %d, want 5 (maxLP clamp)", got)
	}
	pool.SetCap(3)
	if got := pool.LP(); got != 3 {
		t.Fatalf("LP = %d, want 3 (cap tighter)", got)
	}
	pool.SetMaxLP(2)
	if got := pool.LP(); got != 2 {
		t.Fatalf("LP = %d, want 2 (maxLP tighter)", got)
	}
	pool.SetMaxLP(0)
	if got := pool.LP(); got != 3 {
		t.Fatalf("LP = %d, want 3 (cap again)", got)
	}
	// A cap never drops the floor below one worker.
	pool.SetCap(1)
	if got := pool.LP(); got != 1 {
		t.Fatalf("LP = %d, want 1", got)
	}
}
