package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Fatal("real clock went backwards")
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	if !v.Now().Equal(Epoch) {
		t.Fatal("wrong origin")
	}
	v.Advance(70 * time.Millisecond)
	if got := v.Now().Sub(Epoch); got != 70*time.Millisecond {
		t.Fatalf("advanced to %v", got)
	}
	v.Advance(-time.Hour) // ignored
	if got := v.Now().Sub(Epoch); got != 70*time.Millisecond {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestVirtualSetMonotonic(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Set(Epoch.Add(time.Second))
	v.Set(Epoch.Add(500 * time.Millisecond)) // earlier: ignored
	if got := v.Now().Sub(Epoch); got != time.Second {
		t.Fatalf("clock at %v, want 1s", got)
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual(Epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Nanosecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(Epoch); got != 8000*time.Nanosecond {
		t.Fatalf("lost advances: %v", got)
	}
}
