// Package clock provides a small clock abstraction so that the skeleton
// engine, the estimators and the autonomic controller can run either against
// the real wall clock (production) or against a manually advanced virtual
// clock (deterministic tests and the discrete-event simulator substrate).
//
// All times in the library are expressed as time.Time values obtained from a
// Clock; durations are ordinary time.Duration values. The virtual clock is
// safe for concurrent use.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the library.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock using time.Now.
func (Real) Now() time.Time { return time.Now() }

// System is the shared real clock instance.
var System Clock = Real{}

// Virtual is a manually advanced clock. The zero value is not ready for use;
// create instances with NewVirtual.
type Virtual struct {
	mu  sync.RWMutex
	now time.Time
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Epoch is the conventional origin used by tests and the simulator: virtual
// time zero. Using a fixed epoch keeps durations-as-times readable (a
// timestamp of Epoch+70ms means "virtual time 70").
var Epoch = time.Unix(0, 0).UTC()

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Advance moves the clock forward by d. Negative d is ignored: a virtual
// clock never goes backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set moves the clock to t if t is not before the current time; earlier
// values are ignored so the clock stays monotonic.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// Advancer is the optional capability of clocks whose time is moved by the
// program instead of the hardware (Virtual implements it). Components that
// must wait a duration — retry backoff, injected latency faults — use it to
// stay deterministic under a virtual clock.
type Advancer interface {
	Advance(d time.Duration)
}

// Sleep waits for d according to clk: on an Advancer (virtual clock) it
// advances the clock and returns immediately, otherwise it sleeps real wall
// time. Non-positive durations return at once.
func Sleep(clk Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if adv, ok := clk.(Advancer); ok {
		adv.Advance(d)
		return
	}
	time.Sleep(d)
}
