package skel

import (
	"skandium/internal/muscle"
)

// OptimizeOptions selects which rewrites Optimize applies.
type OptimizeOptions struct {
	// FuseSeqPipes replaces pipe stages of adjacent seq skeletons with a
	// single seq of the composed muscle (g∘f). Fusion preserves functional
	// semantics and removes per-stage scheduling and event overhead, but
	// coarsens the event stream and gives the fused muscle a fresh
	// identity (its estimates start cold).
	FuseSeqPipes bool
}

// Optimize returns a semantically equivalent, normalized copy of the tree:
//
//	farm(farm(∆))        → farm(∆)
//	pipe(..,pipe(a,b),..) → pipe(..,a,b,..)   (flattening)
//	for(1,∆)             → ∆
//	for(n,for(m,∆))      → for(n·m,∆)
//	pipe(seq f, seq g)   → seq(g∘f)           (with FuseSeqPipes)
//
// Unchanged subtrees are shared with the input; the input itself is never
// mutated. Muscles keep their identity except for fused sequences.
func Optimize(n *Node, opts OptimizeOptions) *Node {
	return rewrite(n, opts)
}

func rewrite(n *Node, opts OptimizeOptions) *Node {
	// Rewrite children first (bottom-up).
	kids := make([]*Node, len(n.children))
	changed := false
	for i, c := range n.children {
		kids[i] = rewrite(c, opts)
		if kids[i] != c {
			changed = true
		}
	}
	cur := n
	if changed {
		cur = n.withChildren(kids)
	}

	switch cur.kind {
	case Farm:
		// farm(farm(∆)) → farm(∆)
		if cur.children[0].kind == Farm {
			return cur.children[0]
		}
	case For:
		sub := cur.children[0]
		if cur.n == 1 {
			return sub
		}
		// for(n, for(m, ∆)) → for(n·m, ∆)
		if sub.kind == For {
			return NewFor(cur.n*sub.n, sub.children[0])
		}
	case Pipe:
		// Flatten nested pipes.
		flat := make([]*Node, 0, len(cur.children))
		flattened := false
		for _, c := range cur.children {
			if c.kind == Pipe {
				flat = append(flat, c.children...)
				flattened = true
			} else {
				flat = append(flat, c)
			}
		}
		if opts.FuseSeqPipes {
			fused := fuseSeqRun(flat)
			if len(fused) != len(flat) {
				flat, flattened = fused, true
			}
		}
		if len(flat) == 1 {
			return flat[0]
		}
		if flattened {
			return NewPipe(flat...)
		}
	}
	return cur
}

// fuseSeqRun merges maximal runs of adjacent seq stages into single seqs
// of composed muscles.
func fuseSeqRun(stages []*Node) []*Node {
	out := make([]*Node, 0, len(stages))
	i := 0
	for i < len(stages) {
		if stages[i].kind != Seq {
			out = append(out, stages[i])
			i++
			continue
		}
		j := i
		for j+1 < len(stages) && stages[j+1].kind == Seq {
			j++
		}
		if j == i {
			out = append(out, stages[i])
		} else {
			out = append(out, NewSeq(composeExecs(stages[i:j+1])))
		}
		i = j + 1
	}
	return out
}

// composeExecs builds one Execute muscle applying the given seq stages'
// muscles left to right.
func composeExecs(seqs []*Node) *muscle.Muscle {
	ms := make([]*muscle.Muscle, len(seqs))
	name := ""
	for i, s := range seqs {
		ms[i] = s.exec
		if i > 0 {
			name += "∘"
		}
		name += s.exec.Name()
	}
	return muscle.NewExecute(name, func(p any) (any, error) {
		var err error
		for _, m := range ms {
			p, err = m.CallExecute(p)
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	})
}

// withChildren clones the node with new children (muscles and n shared).
func (n *Node) withChildren(kids []*Node) *Node {
	c := newNode(n.kind)
	c.exec, c.split, c.merge, c.cond = n.exec, n.split, n.merge, n.cond
	c.n = n.n
	c.children = kids
	return c
}
