package skel

import (
	"strings"
	"testing"

	"skandium/internal/muscle"
)

func fe() *muscle.Muscle {
	return muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
}

func fs() *muscle.Muscle {
	return muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
}

func fm() *muscle.Muscle {
	return muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
}

func fc() *muscle.Muscle {
	return muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
}

func TestConstructorsAndAccessors(t *testing.T) {
	e, s, m, c := fe(), fs(), fm(), fc()
	seq := NewSeq(e)
	if seq.Kind() != Seq || seq.Exec() != e || len(seq.Children()) != 0 {
		t.Fatal("seq accessors")
	}
	mp := NewMap(s, seq, m)
	if mp.Kind() != Map || mp.Split() != s || mp.Merge() != m || mp.Children()[0] != seq {
		t.Fatal("map accessors")
	}
	w := NewWhile(c, seq)
	if w.Kind() != While || w.Cond() != c {
		t.Fatal("while accessors")
	}
	f := NewFor(3, seq)
	if f.Kind() != For || f.N() != 3 {
		t.Fatal("for accessors")
	}
	dac := NewDaC(c, s, seq, m)
	if dac.Kind() != DaC || dac.Cond() != c || dac.Split() != s || dac.Merge() != m {
		t.Fatal("d&c accessors")
	}
	if got := len(dac.Muscles()); got != 3 {
		t.Fatalf("d&c has %d muscles, want 3", got)
	}
}

func TestNodeIDsUnique(t *testing.T) {
	a, b := NewSeq(fe()), NewSeq(fe())
	if a.ID() == b.ID() {
		t.Fatal("node IDs collide")
	}
}

func TestStringMatchesPaperSyntax(t *testing.T) {
	e, s, m, c := fe(), fs(), fm(), fc()
	inner := NewMap(s, NewSeq(e), m)
	outer := NewMap(s, inner, m)
	if got := outer.String(); got != "map(fs, map(fs, seq(fe), fm), fm)" {
		t.Fatalf("got %q", got)
	}
	cases := map[string]*Node{
		"farm(seq(fe))":                    NewFarm(NewSeq(e)),
		"pipe(seq(fe), seq(fe))":           NewPipe(NewSeq(e), NewSeq(e)),
		"while(fc, seq(fe))":               NewWhile(c, NewSeq(e)),
		"if(fc, seq(fe), seq(fe))":         NewIf(c, NewSeq(e), NewSeq(e)),
		"for(4, seq(fe))":                  NewFor(4, NewSeq(e)),
		"fork(fs, {seq(fe), seq(fe)}, fm)": NewFork(s, []*Node{NewSeq(e), NewSeq(e)}, m),
		"d&c(fc, fs, seq(fe), fm)":         NewDaC(c, s, NewSeq(e), m),
	}
	for want, nd := range cases {
		if got := nd.String(); got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestWalkSizeDepth(t *testing.T) {
	e, s, m := fe(), fs(), fm()
	inner := NewMap(s, NewSeq(e), m)
	outer := NewMap(s, inner, m)
	if outer.Size() != 3 {
		t.Fatalf("size = %d, want 3", outer.Size())
	}
	if outer.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", outer.Depth())
	}
	var kinds []Kind
	outer.Walk(func(nd *Node, depth int) bool {
		kinds = append(kinds, nd.Kind())
		return true
	})
	if len(kinds) != 3 || kinds[0] != Map || kinds[2] != Seq {
		t.Fatalf("walk order: %v", kinds)
	}
	// Early stop.
	visits := 0
	outer.Walk(func(*Node, int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestValidateAcceptsConstructed(t *testing.T) {
	e, s, m, c := fe(), fs(), fm(), fc()
	nodes := []*Node{
		NewSeq(e),
		NewFarm(NewSeq(e)),
		NewPipe(NewSeq(e), NewSeq(e), NewSeq(e)),
		NewWhile(c, NewSeq(e)),
		NewIf(c, NewSeq(e), NewSeq(e)),
		NewFor(2, NewSeq(e)),
		NewMap(s, NewSeq(e), m),
		NewFork(s, []*Node{NewSeq(e)}, m),
		NewDaC(c, s, NewSeq(e), m),
	}
	for _, nd := range nodes {
		if err := nd.Validate(); err != nil {
			t.Errorf("%s: %v", nd, err)
		}
	}
}

func TestValidateNil(t *testing.T) {
	var nd *Node
	if err := nd.Validate(); err == nil {
		t.Fatal("nil skeleton validated")
	}
}

func TestConstructorPanics(t *testing.T) {
	e, s, m, c := fe(), fs(), fm(), fc()
	cases := map[string]func(){
		"seq nil":           func() { NewSeq(nil) },
		"seq wrong kind":    func() { NewSeq(s) },
		"farm nil child":    func() { NewFarm(nil) },
		"pipe single stage": func() { NewPipe(NewSeq(e)) },
		"while wrong cond":  func() { NewWhile(m, NewSeq(e)) },
		"if nil branch":     func() { NewIf(c, NewSeq(e), nil) },
		"for zero":          func() { NewFor(0, NewSeq(e)) },
		"map wrong split":   func() { NewMap(e, NewSeq(e), m) },
		"map wrong merge":   func() { NewMap(s, NewSeq(e), c) },
		"fork no children":  func() { NewFork(s, nil, m) },
		"dac wrong split":   func() { NewDaC(c, m, NewSeq(e), m) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if rec := recover(); rec == nil {
					t.Errorf("%s: no panic", name)
				} else if !strings.Contains(rec.(string), "skel:") {
					t.Errorf("%s: unexpected panic %v", name, rec)
				}
			}()
			fn()
		}()
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Seq: "seq", Farm: "farm", Pipe: "pipe", While: "while", If: "if",
		For: "for", Map: "map", Fork: "fork", DaC: "d&c",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d: got %q want %q", int(k), k.String(), s)
		}
	}
}

func TestSharedSubtreeAllowed(t *testing.T) {
	// The same node may appear in several trees (muscle/estimate sharing).
	e, s, m := fe(), fs(), fm()
	leaf := NewSeq(e)
	a := NewMap(s, leaf, m)
	b := NewMap(s, leaf, m)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Children()[0] != b.Children()[0] {
		t.Fatal("shared leaf not preserved")
	}
}
