package skel

import (
	"testing"
)

func TestOptimizeFarmFarm(t *testing.T) {
	leaf := NewSeq(fe())
	nd := NewFarm(NewFarm(NewFarm(leaf)))
	got := Optimize(nd, OptimizeOptions{})
	if got.String() != "farm(seq(fe))" {
		t.Fatalf("got %s", got)
	}
}

func TestOptimizeForCollapse(t *testing.T) {
	leaf := NewSeq(fe())
	if got := Optimize(NewFor(1, leaf), OptimizeOptions{}); got != leaf {
		t.Fatalf("for(1,∆) not collapsed: %s", got)
	}
	nested := NewFor(3, NewFor(4, leaf))
	got := Optimize(nested, OptimizeOptions{})
	if got.Kind() != For || got.N() != 12 {
		t.Fatalf("got %s", got)
	}
}

func TestOptimizePipeFlatten(t *testing.T) {
	a, b, c := NewSeq(fe()), NewSeq(fe()), NewSeq(fe())
	nd := NewPipe(a, NewPipe(b, c))
	got := Optimize(nd, OptimizeOptions{})
	if got.Kind() != Pipe || len(got.Children()) != 3 {
		t.Fatalf("got %s", got)
	}
	// Without fusion the stages are preserved as-is.
	if got.Children()[0] != a || got.Children()[1] != b || got.Children()[2] != c {
		t.Fatal("stages not shared")
	}
}

func TestOptimizeFusion(t *testing.T) {
	a, b := NewSeq(fe()), NewSeq(fe())
	m := NewMap(fs(), NewSeq(fe()), fm())
	nd := NewPipe(a, b, m, NewPipe(a, b))
	got := Optimize(nd, OptimizeOptions{FuseSeqPipes: true})
	if got.Kind() != Pipe || len(got.Children()) != 3 {
		t.Fatalf("got %s", got)
	}
	if got.Children()[0].Kind() != Seq || got.Children()[2].Kind() != Seq {
		t.Fatalf("runs not fused: %s", got)
	}
	if got.Children()[1] != m {
		t.Fatal("map stage not preserved")
	}
	if got.Children()[0].Exec().Name() != "fe∘fe" {
		t.Fatalf("fused name %q", got.Children()[0].Exec().Name())
	}
}

func TestOptimizeFusionCollapsesWholePipe(t *testing.T) {
	nd := NewPipe(NewSeq(fe()), NewSeq(fe()))
	got := Optimize(nd, OptimizeOptions{FuseSeqPipes: true})
	if got.Kind() != Seq {
		t.Fatalf("pipe of seqs should fuse to one seq: %s", got)
	}
}

func TestOptimizeSharesUnchangedSubtrees(t *testing.T) {
	leaf := NewSeq(fe())
	m := NewMap(fs(), leaf, fm())
	got := Optimize(m, OptimizeOptions{})
	if got != m {
		t.Fatal("already-normal tree was copied")
	}
}

func TestOptimizeValidates(t *testing.T) {
	nd := NewPipe(NewFor(1, NewSeq(fe())), NewFarm(NewFarm(NewSeq(fe()))))
	got := Optimize(nd, OptimizeOptions{FuseSeqPipes: true})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
