// Package skel defines the algorithmic-skeleton algebra of the paper:
//
//	∆ ::= seq(fe) | farm(∆) | pipe(∆1,∆2) | while(fc,∆) | if(fc,∆t,∆f)
//	    | for(n,∆) | map(fs,∆,fm) | fork(fs,{∆},fm) | d&c(fc,fs,∆,fm)
//
// A skeleton program is an immutable tree of Nodes. Nodes are type-erased;
// the typed public API at the module root guarantees that the muscles wired
// into a tree are type-compatible. Each Node has a process-unique identity
// used by the state machines and the ADG to key per-node estimates.
package skel

import (
	"fmt"
	"strings"
	"sync/atomic"

	"skandium/internal/muscle"
)

// Kind enumerates the skeleton patterns.
type Kind int

// Skeleton kinds following the paper's grammar.
const (
	Seq Kind = iota
	Farm
	Pipe
	While
	If
	For
	Map
	Fork
	DaC
)

// String returns the paper's name of the pattern.
func (k Kind) String() string {
	switch k {
	case Seq:
		return "seq"
	case Farm:
		return "farm"
	case Pipe:
		return "pipe"
	case While:
		return "while"
	case If:
		return "if"
	case For:
		return "for"
	case Map:
		return "map"
	case Fork:
		return "fork"
	case DaC:
		return "d&c"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

var lastNodeID atomic.Uint64

// NodeID uniquely identifies a node of a skeleton tree within the process.
type NodeID uint64

// Node is one pattern instance in a skeleton tree. Nodes are created through
// the constructors below and are immutable afterwards; they may be shared by
// several trees and executed concurrently.
type Node struct {
	id       NodeID
	kind     Kind
	exec     *muscle.Muscle // Seq
	split    *muscle.Muscle // Map, Fork, DaC
	merge    *muscle.Muscle // Map, Fork, DaC
	cond     *muscle.Muscle // While, If, DaC
	children []*Node        // Pipe: stages; Farm/While/For/Map/DaC: 1; If: 2; Fork: n
	n        int            // For: iteration count
	// plan caches the compiled program (internal/plan's IR) for executions
	// rooted at this node; opaque here, see plan.go.
	plan atomic.Value
}

func newNode(kind Kind) *Node {
	return &Node{id: NodeID(lastNodeID.Add(1)), kind: kind}
}

// NewSeq builds seq(fe). fe must be an Execute muscle.
func NewSeq(fe *muscle.Muscle) *Node {
	mustKind("seq", "fe", fe, muscle.Execute)
	nd := newNode(Seq)
	nd.exec = fe
	return nd
}

// NewFarm builds farm(∆): task replication over the nested skeleton.
func NewFarm(sub *Node) *Node {
	mustChild("farm", sub)
	nd := newNode(Farm)
	nd.children = []*Node{sub}
	return nd
}

// NewPipe builds pipe(∆1,∆2,...): staged computation. At least two stages
// are required; more than two are treated as the right fold
// pipe(∆1, pipe(∆2, ...)) flattened into a single node.
func NewPipe(stages ...*Node) *Node {
	if len(stages) < 2 {
		panic("skel: pipe requires at least two stages")
	}
	for _, s := range stages {
		mustChild("pipe", s)
	}
	nd := newNode(Pipe)
	nd.children = append([]*Node(nil), stages...)
	return nd
}

// NewWhile builds while(fc,∆): repeat ∆ while fc holds.
func NewWhile(fc *muscle.Muscle, sub *Node) *Node {
	mustKind("while", "fc", fc, muscle.Condition)
	mustChild("while", sub)
	nd := newNode(While)
	nd.cond = fc
	nd.children = []*Node{sub}
	return nd
}

// NewIf builds if(fc,∆true,∆false). The paper's autonomic layer does not
// support If (it would duplicate the ADG); the engine runs it and the ADG
// uses the worst-case branch as an extension (see DESIGN.md §5).
func NewIf(fc *muscle.Muscle, onTrue, onFalse *Node) *Node {
	mustKind("if", "fc", fc, muscle.Condition)
	mustChild("if", onTrue)
	mustChild("if", onFalse)
	nd := newNode(If)
	nd.cond = fc
	nd.children = []*Node{onTrue, onFalse}
	return nd
}

// NewFor builds for(n,∆): execute ∆ exactly n times. n must be positive.
func NewFor(n int, sub *Node) *Node {
	if n <= 0 {
		panic(fmt.Sprintf("skel: for requires n > 0, got %d", n))
	}
	mustChild("for", sub)
	nd := newNode(For)
	nd.n = n
	nd.children = []*Node{sub}
	return nd
}

// NewMap builds map(fs,∆,fm): split, apply ∆ to every sub-problem in
// parallel, merge.
func NewMap(fs *muscle.Muscle, sub *Node, fm *muscle.Muscle) *Node {
	mustKind("map", "fs", fs, muscle.Split)
	mustKind("map", "fm", fm, muscle.Merge)
	mustChild("map", sub)
	nd := newNode(Map)
	nd.split = fs
	nd.merge = fm
	nd.children = []*Node{sub}
	return nd
}

// NewFork builds fork(fs,{∆},fm): like map but sub-problem i is processed by
// skeleton ∆i. The split must produce exactly len(subs) sub-problems at run
// time; the engine reports an error otherwise.
func NewFork(fs *muscle.Muscle, subs []*Node, fm *muscle.Muscle) *Node {
	mustKind("fork", "fs", fs, muscle.Split)
	mustKind("fork", "fm", fm, muscle.Merge)
	if len(subs) == 0 {
		panic("skel: fork requires at least one nested skeleton")
	}
	for _, s := range subs {
		mustChild("fork", s)
	}
	nd := newNode(Fork)
	nd.split = fs
	nd.merge = fm
	nd.children = append([]*Node(nil), subs...)
	return nd
}

// NewDaC builds d&c(fc,fs,∆,fm): while fc holds, split and recurse on each
// sub-problem in parallel, then merge; once fc fails, solve with ∆.
func NewDaC(fc, fs *muscle.Muscle, sub *Node, fm *muscle.Muscle) *Node {
	mustKind("d&c", "fc", fc, muscle.Condition)
	mustKind("d&c", "fs", fs, muscle.Split)
	mustKind("d&c", "fm", fm, muscle.Merge)
	mustChild("d&c", sub)
	nd := newNode(DaC)
	nd.cond = fc
	nd.split = fs
	nd.merge = fm
	nd.children = []*Node{sub}
	return nd
}

func mustKind(pattern, role string, m *muscle.Muscle, k muscle.Kind) {
	if m == nil {
		panic(fmt.Sprintf("skel: %s requires a non-nil %s muscle", pattern, role))
	}
	if m.Kind() != k {
		panic(fmt.Sprintf("skel: %s requires %s of kind %s, got %s", pattern, role, k, m))
	}
}

func mustChild(pattern string, sub *Node) {
	if sub == nil {
		panic(fmt.Sprintf("skel: %s requires a non-nil nested skeleton", pattern))
	}
}

// ID returns the process-unique identity of this node.
func (n *Node) ID() NodeID { return n.id }

// Kind returns the pattern of this node.
func (n *Node) Kind() Kind { return n.kind }

// Children returns the nested skeletons. Callers must not modify the
// returned slice.
func (n *Node) Children() []*Node { return n.children }

// Exec returns the Execute muscle (Seq nodes), or nil.
func (n *Node) Exec() *muscle.Muscle { return n.exec }

// Split returns the Split muscle (Map/Fork/DaC nodes), or nil.
func (n *Node) Split() *muscle.Muscle { return n.split }

// Merge returns the Merge muscle (Map/Fork/DaC nodes), or nil.
func (n *Node) Merge() *muscle.Muscle { return n.merge }

// Cond returns the Condition muscle (While/If/DaC nodes), or nil.
func (n *Node) Cond() *muscle.Muscle { return n.cond }

// N returns the iteration count of a For node (zero otherwise).
func (n *Node) N() int { return n.n }

// Muscles returns all muscles attached directly to this node, in the
// conventional order fc, fs, fe, fm (skipping nils).
func (n *Node) Muscles() []*muscle.Muscle {
	var out []*muscle.Muscle
	for _, m := range []*muscle.Muscle{n.cond, n.split, n.exec, n.merge} {
		if m != nil {
			out = append(out, m)
		}
	}
	return out
}

// Walk visits the tree rooted at n in pre-order, calling fn for every node
// with its depth. Walking stops early if fn returns false.
func (n *Node) Walk(fn func(node *Node, depth int) bool) {
	var rec func(nd *Node, d int) bool
	rec = func(nd *Node, d int) bool {
		if !fn(nd, d) {
			return false
		}
		for _, c := range nd.children {
			if !rec(c, d+1) {
				return false
			}
		}
		return true
	}
	rec(n, 0)
}

// Size returns the number of nodes in the tree rooted at n.
func (n *Node) Size() int {
	count := 0
	n.Walk(func(*Node, int) bool { count++; return true })
	return count
}

// Depth returns the height of the tree rooted at n (a leaf has depth 1).
func (n *Node) Depth() int {
	max := 0
	n.Walk(func(_ *Node, d int) bool {
		if d+1 > max {
			max = d + 1
		}
		return true
	})
	return max
}

// Validate checks structural invariants of the whole tree and reports the
// first violation. Trees built exclusively through the constructors are
// always valid; Validate exists for defence in depth (e.g. programs
// assembled reflectively or deserialized).
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("skel: nil skeleton")
	}
	var err error
	n.Walk(func(nd *Node, _ int) bool {
		err = nd.validateLocal()
		return err == nil
	})
	return err
}

func (n *Node) validateLocal() error {
	type req struct {
		m    *muscle.Muscle
		kind muscle.Kind
		role string
	}
	var reqs []req
	var wantChildren func(int) bool
	childSpec := ""
	switch n.kind {
	case Seq:
		reqs = []req{{n.exec, muscle.Execute, "fe"}}
		wantChildren, childSpec = func(c int) bool { return c == 0 }, "0"
	case Farm, For:
		wantChildren, childSpec = func(c int) bool { return c == 1 }, "1"
		if n.kind == For && n.n <= 0 {
			return fmt.Errorf("skel: for node #%d has non-positive n=%d", n.id, n.n)
		}
	case Pipe:
		wantChildren, childSpec = func(c int) bool { return c >= 2 }, ">=2"
	case While:
		reqs = []req{{n.cond, muscle.Condition, "fc"}}
		wantChildren, childSpec = func(c int) bool { return c == 1 }, "1"
	case If:
		reqs = []req{{n.cond, muscle.Condition, "fc"}}
		wantChildren, childSpec = func(c int) bool { return c == 2 }, "2"
	case Map:
		reqs = []req{{n.split, muscle.Split, "fs"}, {n.merge, muscle.Merge, "fm"}}
		wantChildren, childSpec = func(c int) bool { return c == 1 }, "1"
	case Fork:
		reqs = []req{{n.split, muscle.Split, "fs"}, {n.merge, muscle.Merge, "fm"}}
		wantChildren, childSpec = func(c int) bool { return c >= 1 }, ">=1"
	case DaC:
		reqs = []req{
			{n.cond, muscle.Condition, "fc"},
			{n.split, muscle.Split, "fs"},
			{n.merge, muscle.Merge, "fm"},
		}
		wantChildren, childSpec = func(c int) bool { return c == 1 }, "1"
	default:
		return fmt.Errorf("skel: node #%d has unknown kind %d", n.id, int(n.kind))
	}
	for _, r := range reqs {
		if r.m == nil {
			return fmt.Errorf("skel: %s node #%d is missing muscle %s", n.kind, n.id, r.role)
		}
		if r.m.Kind() != r.kind {
			return fmt.Errorf("skel: %s node #%d has %s of kind %s, want %s",
				n.kind, n.id, r.role, r.m.Kind(), r.kind)
		}
	}
	if !wantChildren(len(n.children)) {
		return fmt.Errorf("skel: %s node #%d has %d children, want %s",
			n.kind, n.id, len(n.children), childSpec)
	}
	for _, c := range n.children {
		if c == nil {
			return fmt.Errorf("skel: %s node #%d has a nil child", n.kind, n.id)
		}
	}
	return nil
}

// String renders the tree in the paper's concrete syntax, e.g.
// "map(fs, map(fs, seq(fe), fm), fm)".
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(n.kind.String())
	b.WriteByte('(')
	switch n.kind {
	case Seq:
		b.WriteString(n.exec.Name())
	case Farm:
		n.children[0].render(b)
	case Pipe:
		for i, c := range n.children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.render(b)
		}
	case While:
		b.WriteString(n.cond.Name())
		b.WriteString(", ")
		n.children[0].render(b)
	case If:
		b.WriteString(n.cond.Name())
		b.WriteString(", ")
		n.children[0].render(b)
		b.WriteString(", ")
		n.children[1].render(b)
	case For:
		fmt.Fprintf(b, "%d, ", n.n)
		n.children[0].render(b)
	case Map:
		b.WriteString(n.split.Name())
		b.WriteString(", ")
		n.children[0].render(b)
		b.WriteString(", ")
		b.WriteString(n.merge.Name())
	case Fork:
		b.WriteString(n.split.Name())
		b.WriteString(", {")
		for i, c := range n.children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.render(b)
		}
		b.WriteString("}, ")
		b.WriteString(n.merge.Name())
	case DaC:
		b.WriteString(n.cond.Name())
		b.WriteString(", ")
		b.WriteString(n.split.Name())
		b.WriteString(", ")
		n.children[0].render(b)
		b.WriteString(", ")
		b.WriteString(n.merge.Name())
	}
	b.WriteByte(')')
}
