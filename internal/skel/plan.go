package skel

// Site is one static position of a skeleton tree as seen from a given
// execution root: the node at that position, the (immutable, shared) trace
// from the root down to it, and the sites of its children. Interpreters use
// sites instead of re-deriving traces per activation — the trace slices are
// built once per root and shared by every activation and every event, which
// keeps the hot path free of appendTrace copies.
//
// Divide&conquer recursion re-enters the same node with a longer trace than
// the static one; interpreters handle that by extending the site's trace
// once per recursion level (see exec's dac instruction).
type Site struct {
	nd       *Node
	trace    []*Node
	children []*Site
}

// Node returns the node at this site.
func (s *Site) Node() *Node { return s.nd }

// Trace returns the static nesting path from the execution root to this
// site's node, inclusive. Callers must not modify it.
func (s *Site) Trace() []*Node { return s.trace }

// Child returns the site of the i-th child.
func (s *Site) Child(i int) *Site { return s.children[i] }

// Children returns the child sites. Callers must not modify the slice.
func (s *Site) Children() []*Site { return s.children }

// Plan returns the static site tree for executions rooted at n, building and
// caching it on first use. The plan is immutable and shared by all
// concurrent executions of n; it stays alive exactly as long as the node
// does (it is stored on the node, not in a global table).
func (n *Node) Plan() *Site {
	if s := n.plan.Load(); s != nil {
		return s
	}
	s := buildSite(n, nil)
	if n.plan.CompareAndSwap(nil, s) {
		return s
	}
	return n.plan.Load()
}

func buildSite(nd *Node, parentTrace []*Node) *Site {
	trace := make([]*Node, len(parentTrace)+1)
	copy(trace, parentTrace)
	trace[len(parentTrace)] = nd
	s := &Site{nd: nd, trace: trace}
	if len(nd.children) > 0 {
		s.children = make([]*Site, len(nd.children))
		for i, c := range nd.children {
			s.children[i] = buildSite(c, trace)
		}
	}
	return s
}
