package skel

// The compiled-program cache. A skeleton tree is compiled once per
// execution root into the program IR of internal/plan; the compiled form is
// cached here, on the root node itself, so it is shared by all concurrent
// executions and all engines (interpreter, simulator, ADG builder, cluster)
// and stays alive exactly as long as the node does. The value is opaque to
// skel — plan depends on skel, not the other way around.
//
// Nodes are immutable after construction and rewrites (Optimize) build
// fresh nodes, so a cached program can never go stale: a new tree starts
// with an empty slot.

// CachedPlan returns the compiled program cached for executions rooted at
// n, or nil when none has been stored yet.
func (n *Node) CachedPlan() any { return n.plan.Load() }

// CachePlan publishes p as the compiled program for roots at n and returns
// the winning value: p itself, or the program another goroutine raced in
// first. All callers must store the same concrete type.
func (n *Node) CachePlan(p any) any {
	if n.plan.CompareAndSwap(nil, p) {
		return p
	}
	return n.plan.Load()
}
