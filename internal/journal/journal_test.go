package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opt Options) (*Journal, []JobState) {
	t.Helper()
	j, states, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, states
}

func spec(skel string) Spec {
	return Spec{Skeleton: skel, Params: map[string]any{"k": 2.0}, GoalMS: 100, InitialLP: 1}
}

// TestRoundTrip: submit/start/finish/cancel survive a close + reopen with
// the exact states, results and fault counters that were journaled.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, states := openT(t, dir, Options{Fsync: FsyncAlways})
	if len(states) != 0 {
		t.Fatalf("fresh journal has %d states", len(states))
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Submit("job-1", spec("sleepgrid")))
	must(j.Start("job-1"))
	must(j.Finish("job-1", StateDone, "16", "", FaultCounts{Retries: 3}))
	must(j.Submit("job-2", spec("wordcount")))
	must(j.Start("job-2"))
	must(j.Submit("job-3", spec("mergesort")))
	must(j.Cancel("job-3", "canceled by request"))
	must(j.Submit("job-4", spec("montecarlo")))
	must(j.Close())

	_, states = openT(t, dir, Options{})
	if len(states) != 4 {
		t.Fatalf("replayed %d states, want 4", len(states))
	}
	byID := map[string]JobState{}
	for _, s := range states {
		byID[s.ID] = s
	}
	if s := byID["job-1"]; s.State != StateDone || s.Result != "16" || s.Faults.Retries != 3 {
		t.Fatalf("job-1 replayed wrong: %+v", s)
	}
	if s := byID["job-2"]; s.State != StateRunning || s.Spec.Skeleton != "wordcount" {
		t.Fatalf("job-2 replayed wrong: %+v", s)
	}
	if s := byID["job-3"]; s.State != StateCanceled || s.Error != "canceled by request" {
		t.Fatalf("job-3 replayed wrong: %+v", s)
	}
	if s := byID["job-4"]; s.State != StateQueued {
		t.Fatalf("job-4 replayed wrong: %+v", s)
	}
	// Submission order is preserved across replay.
	for i, want := range []string{"job-1", "job-2", "job-3", "job-4"} {
		if states[i].ID != want {
			t.Fatalf("order[%d] = %s, want %s", i, states[i].ID, want)
		}
	}
}

// TestDuplicateFinishIgnored: a finish replayed after a terminal state (a
// crash between append and ack, then a retried append) must not change the
// persisted outcome — no duplicate result records.
func TestDuplicateFinishIgnored(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	if err := j.Submit("job-1", spec("sleepgrid")); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish("job-1", StateDone, "first", "", FaultCounts{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish("job-1", StateFailed, "second", "boom", FaultCounts{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Cancel("job-1", "late cancel"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, states := openT(t, dir, Options{})
	if len(states) != 1 || states[0].State != StateDone || states[0].Result != "first" {
		t.Fatalf("duplicate finish changed the outcome: %+v", states)
	}
}

// TestTornFinalRecord: a crash mid-append leaves a half-written last line;
// replay must drop exactly that record and keep everything before it.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	if err := j.Submit("job-1", spec("sleepgrid")); err != nil {
		t.Fatal(err)
	}
	if err := j.Start("job-1"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate the torn write: append half a finish record, no newline.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"finish","job":"job-1","state":"done","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, states := openT(t, dir, Options{})
	if len(states) != 1 || states[0].State != StateRunning {
		t.Fatalf("torn record corrupted replay: %+v", states)
	}
	if c := j2.Counters(); c.Torn != 1 {
		t.Fatalf("torn counter = %d, want 1", c.Torn)
	}
}

// TestTruncationSweep cuts a valid journal at every byte offset inside its
// final record: each prefix must open cleanly and recover every record
// before the cut.
func TestTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	if err := j.Submit("job-1", spec("sleepgrid")); err != nil {
		t.Fatal(err)
	}
	if err := j.Start("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish("job-1", StateDone, "42", "", FaultCounts{Faults: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	prefix := strings.Join(lines[:len(lines)-1], "")
	last := lines[len(lines)-1]

	for cut := 0; cut < len(last); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, journalName), []byte(prefix+last[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		j2, states, err := Open(sub, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(states) != 1 {
			t.Fatalf("cut %d: %d states, want 1", cut, len(states))
		}
		// The finish is the torn record: replay must land on the pre-finish
		// state (running), never a half-parsed terminal state.
		if got := states[0].State; got != StateRunning {
			t.Fatalf("cut %d: state %q, want running", cut, got)
		}
		j2.Close()
	}
}

// TestCompaction: exceeding RotateBytes folds the log into the snapshot and
// truncates the journal; nothing is lost across the rotation or a reopen.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncNever, RotateBytes: 512})
	for i := 0; i < 50; i++ {
		id := jobID(i)
		if err := j.Submit(id, spec("sleepgrid")); err != nil {
			t.Fatal(err)
		}
		if err := j.Finish(id, StateDone, "1", "", FaultCounts{}); err != nil {
			t.Fatal(err)
		}
	}
	c := j.Counters()
	if c.Rotations == 0 {
		t.Fatalf("no rotation after 100 appends over a 512-byte cap: %+v", c)
	}
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() > 512 {
		t.Fatalf("journal not truncated by rotation: %v %d", err, fi.Size())
	}
	j.Close()

	j2, states := openT(t, dir, Options{})
	if len(states) != 50 {
		t.Fatalf("replayed %d states after compaction, want 50", len(states))
	}
	for _, s := range states {
		if s.State != StateDone {
			t.Fatalf("%s replayed as %s, want done", s.ID, s.State)
		}
	}
	// Open itself compacts, so a second reopen replays nothing from the log:
	// every outcome is served from the snapshot alone.
	j2.Close()
	j3, states3 := openT(t, dir, Options{})
	if len(states3) != 50 {
		t.Fatalf("second reopen: %d states, want 50", len(states3))
	}
	if c := j3.Counters(); c.Replayed != 0 {
		t.Fatalf("post-compaction reopen replayed %d journal records, want 0", c.Replayed)
	}
}

// TestFaultCountersSurviveCrash: mid-run fault records keep counters across
// a crash (no finish record ever written).
func TestFaultCountersSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	if err := j.Submit("job-1", spec("chaosgrid")); err != nil {
		t.Fatal(err)
	}
	if err := j.Start("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Fault("job-1", FaultCounts{Retries: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Fault("job-1", FaultCounts{Retries: 5, Faults: 1}); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the crash by reopening the same directory.
	_, states, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].State != StateRunning {
		t.Fatalf("replay: %+v", states)
	}
	if fc := states[0].Faults; fc.Retries != 5 || fc.Faults != 1 {
		t.Fatalf("fault counters lost: %+v", fc)
	}
}

// TestSnapshotAtomicity: a corrupt snapshot (crash during compaction before
// the rename... or disk garbage) must not abort Open.
func TestCorruptSnapshotTolerated(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{half a snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, states := openT(t, dir, Options{})
	if len(states) != 0 {
		t.Fatalf("states from corrupt snapshot: %+v", states)
	}
	if c := j.Counters(); c.Torn != 1 {
		t.Fatalf("torn counter = %d, want 1", c.Torn)
	}
}

// TestAppendAfterClose: the daemon's shutdown path may race a last watch
// goroutine; late appends must fail cleanly, not crash.
func TestAppendAfterClose(t *testing.T) {
	j, _ := openT(t, t.TempDir(), Options{})
	j.Close()
	if err := j.Submit("job-1", spec("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestIntervalFsync: the timer policy syncs dirty appends without being
// asked.
func TestIntervalFsync(t *testing.T) {
	j, _ := openT(t, t.TempDir(), Options{Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond})
	if err := j.Submit("job-1", spec("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if j.Counters().Fsyncs > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no interval fsync within 2s: %+v", j.Counters())
}

// TestParseFsync covers the flag parser.
func TestParseFsync(t *testing.T) {
	for _, ok := range []string{"always", "interval", "never", ""} {
		if _, err := ParseFsync(ok); err != nil {
			t.Fatalf("ParseFsync(%q): %v", ok, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("ParseFsync accepted garbage")
	}
}

// TestRecordShape pins the NDJSON wire format: one object per line with the
// op/job/seq envelope (external followers depend on it).
func TestRecordShape(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways, RotateBytes: 1 << 30})
	if err := j.Submit("job-1", spec("sleepgrid")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	line := strings.TrimSpace(string(data))
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("journal line is not one JSON object: %q", line)
	}
	if rec["op"] != "submit" || rec["job"] != "job-1" || rec["seq"] != float64(1) {
		t.Fatalf("envelope wrong: %v", rec)
	}
}

func jobID(i int) string {
	return "job-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
