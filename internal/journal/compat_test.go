package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The tenant and priority fields were added to Spec after journals existed
// in the wild, so both directions of compatibility matter: a new daemon must
// replay old journals (fields absent → zero values), and an old daemon must
// replay new journals (unknown fields ignored by encoding/json). These tests
// pin both, plus the omitempty contract that keeps tenant-less journals
// byte-identical to the old format.

// TestTenantBackwardCompat: a journal written before the tenant fields
// existed replays with zero tenant/priority, and recovery treats that as the
// default tenant downstream.
func TestTenantBackwardCompat(t *testing.T) {
	dir := t.TempDir()
	old := `{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"sleepgrid","goal_ms":100,"initial_lp":1}}` + "\n" +
		`{"op":"start","job":"job-1","seq":2}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	_, states := openT(t, dir, Options{})
	if len(states) != 1 {
		t.Fatalf("replayed %d states, want 1", len(states))
	}
	if s := states[0]; s.Spec.Tenant != "" || s.Spec.Priority != 0 {
		t.Fatalf("old record replayed tenant=%q priority=%d, want zero values", s.Spec.Tenant, s.Spec.Priority)
	}
}

// TestTenantForwardCompat: a journal written by a future daemon — tenant,
// priority, and fields this version has never heard of — still replays; the
// known fields land and the unknown ones are ignored.
func TestTenantForwardCompat(t *testing.T) {
	dir := t.TempDir()
	future := `{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"sleepgrid","tenant":"alpha","priority":-1,"future_knob":"ignored","initial_lp":1}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, states := openT(t, dir, Options{})
	if len(states) != 1 {
		t.Fatalf("replayed %d states, want 1", len(states))
	}
	if s := states[0]; s.Spec.Tenant != "alpha" || s.Spec.Priority != -1 {
		t.Fatalf("future record replayed tenant=%q priority=%d, want alpha/-1", s.Spec.Tenant, s.Spec.Priority)
	}
}

// TestTenantRoundTrip: tenant and priority survive journal close + reopen,
// and a spec without them serializes without the keys at all (omitempty), so
// journals from tenant-less deployments stay readable by old binaries.
func TestTenantRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	tagged := spec("sleepgrid")
	tagged.Tenant, tagged.Priority = "beta", 2
	if err := j.Submit("job-1", tagged); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("job-2", spec("wordcount")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d journal lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"tenant":"beta"`) || !strings.Contains(lines[0], `"priority":2`) {
		t.Fatalf("tagged record missing tenant/priority: %s", lines[0])
	}
	if strings.Contains(lines[1], "tenant") || strings.Contains(lines[1], "priority") {
		t.Fatalf("untagged record leaked tenant keys: %s", lines[1])
	}

	_, states := openT(t, dir, Options{})
	byID := map[string]JobState{}
	for _, s := range states {
		byID[s.ID] = s
	}
	if s := byID["job-1"]; s.Spec.Tenant != "beta" || s.Spec.Priority != 2 {
		t.Fatalf("job-1 replayed tenant=%q priority=%d, want beta/2", s.Spec.Tenant, s.Spec.Priority)
	}
	if s := byID["job-2"]; s.Spec.Tenant != "" || s.Spec.Priority != 0 {
		t.Fatalf("job-2 replayed tenant=%q priority=%d, want zero values", s.Spec.Tenant, s.Spec.Priority)
	}
}

// TestTenantTruncationSweep: every byte-level truncation of a tenant-tagged
// record is either fully replayed or fully dropped — a torn tenant field can
// never surface as a half-parsed spec.
func TestTenantTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	first := spec("sleepgrid")
	first.Tenant = "alpha"
	if err := j.Submit("job-1", first); err != nil {
		t.Fatal(err)
	}
	second := spec("wordcount")
	second.Tenant, second.Priority = "beta", -1
	if err := j.Submit("job-2", second); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	prefix := strings.Join(lines[:len(lines)-1], "")
	last := lines[len(lines)-1]

	for cut := 0; cut < len(last); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, journalName), []byte(prefix+last[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		j2, states, err := Open(sub, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(states) != 1 {
			t.Fatalf("cut %d: %d states, want 1 (torn tail dropped whole)", cut, len(states))
		}
		if s := states[0]; s.Spec.Tenant != "alpha" || s.Spec.Priority != 0 {
			t.Fatalf("cut %d: surviving record corrupted: tenant=%q priority=%d", cut, s.Spec.Tenant, s.Spec.Priority)
		}
		j2.Close()
	}
}
