// Package journal is skelrund's write-ahead job journal: an append-only
// NDJSON log of job state transitions (submit/start/finish/cancel/fault)
// that the daemon writes before acting, plus a JSON snapshot the log
// periodically compacts into. On restart the daemon replays snapshot +
// journal and recovers every job the crash interrupted: jobs that were
// queued or running are re-queued (muscles are pure, so re-execution is
// safe), finished jobs keep serving their persisted result.
//
// Durability is tunable per deployment through the fsync policy: "always"
// syncs after every append (no record is ever lost, slowest), "interval"
// syncs on a timer (bounded loss window, the default), "never" leaves
// syncing to the OS (crash-of-process safe, crash-of-kernel lossy).
//
// The format is deliberately boring — one JSON object per line — so a torn
// final record (the process died mid-write) is detected by a failed parse
// and dropped, never poisoning the records before it.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Op labels one journal record's transition.
type Op string

// Record operations.
const (
	OpSubmit Op = "submit" // job accepted: Spec holds the full submission
	OpStart  Op = "start"  // job admitted by the arbiter, stream launched
	OpFinish Op = "finish" // job reached done/failed: result or error persisted
	OpCancel Op = "cancel" // job canceled by request or graceful shutdown
	OpFault  Op = "fault"  // fault counters advanced (crash-safe counters)
)

// Replayed job states (string-typed so the server maps them onto its own
// lifecycle without an import cycle).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Spec is the durable form of one job submission, in the JSON units of the
// daemon's API (milliseconds) so journals stay readable with plain tools.
type Spec struct {
	Skeleton  string         `json:"skeleton"`
	Program   string         `json:"program,omitempty"`
	Params    map[string]any `json:"params,omitempty"`
	GoalMS    float64        `json:"goal_ms,omitempty"`
	MaxLP     int            `json:"max_lp,omitempty"`
	InitialLP int            `json:"initial_lp,omitempty"`
	// Policy names the job's adaptation rule. omitempty: journals written
	// before pluggable policies replay as the paper default, and journals
	// carrying it are ignored gracefully by older readers.
	Policy         string  `json:"policy,omitempty"`
	TimeoutMS      float64 `json:"timeout_ms,omitempty"`
	Retries        int     `json:"retries,omitempty"`
	RetryBackoffMS float64 `json:"retry_backoff_ms,omitempty"`
	Partial        string  `json:"partial,omitempty"`
	Substitute     any     `json:"substitute,omitempty"`
	// Tenant and Priority identify whose traffic the job is and how it
	// ranks on the admission ladder. Both are omitempty, so journals
	// written before multi-tenancy replay unchanged (empty tenant = the
	// default tenant, priority 0 = normal) and journals written with them
	// are ignored gracefully by older readers.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// FaultCounts carries a job's cumulative fault-tolerance counters. Fault
// records persist them mid-run so a crash does not zero the history.
type FaultCounts struct {
	Retries     uint64 `json:"retries,omitempty"`
	Faults      uint64 `json:"faults,omitempty"`
	Timeouts    uint64 `json:"timeouts,omitempty"`
	Skipped     uint64 `json:"skipped,omitempty"`
	Substituted uint64 `json:"substituted,omitempty"`
}

// Record is one NDJSON line of the journal.
type Record struct {
	Op     Op           `json:"op"`
	Job    string       `json:"job"`
	Seq    uint64       `json:"seq"`
	TS     int64        `json:"ts_ms,omitempty"` // wall clock, informational
	Spec   *Spec        `json:"spec,omitempty"`
	State  string       `json:"state,omitempty"`  // finish: done|failed
	Result string       `json:"result,omitempty"` // finish: summarized result
	Error  string       `json:"error,omitempty"`
	Faults *FaultCounts `json:"faults,omitempty"`
}

// JobState is one job's state reduced from snapshot + journal: what the
// daemon needs to either re-queue the job or serve its persisted outcome.
type JobState struct {
	ID          string      `json:"id"`
	Spec        Spec        `json:"spec"`
	State       string      `json:"state"`
	Result      string      `json:"result,omitempty"`
	Error       string      `json:"error,omitempty"`
	Faults      FaultCounts `json:"faults,omitempty"`
	SubmittedTS int64       `json:"submitted_ts_ms,omitempty"`
	FinishedTS  int64       `json:"finished_ts_ms,omitempty"`
}

// Terminal reports whether the replayed state is final — such jobs serve
// their persisted outcome instead of re-running.
func (s *JobState) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// FsyncPolicy says when appended records reach the disk platter.
type FsyncPolicy string

// Fsync policies.
const (
	FsyncAlways   FsyncPolicy = "always"   // sync after every append
	FsyncInterval FsyncPolicy = "interval" // sync on a timer (default)
	FsyncNever    FsyncPolicy = "never"    // leave syncing to the OS
)

// ParseFsync validates a policy name from a flag.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	default:
		return "", fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options tunes a Journal.
type Options struct {
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the interval policy's sync period (default 100ms).
	FsyncEvery time.Duration
	// RotateBytes compacts the journal into the snapshot once the live log
	// exceeds this size (default 1 MiB).
	RotateBytes int64
}

// Counters observes the journal's activity for /metrics.
type Counters struct {
	Appends     uint64 // records written
	Fsyncs      uint64 // explicit syncs issued
	Rotations   uint64 // size-triggered compactions
	Compactions uint64 // all compactions (rotations + the open-time one)
	Torn        uint64 // unparsable records dropped during replay
	Replayed    uint64 // records applied during replay
}

const (
	journalName  = "journal.ndjson"
	snapshotName = "snapshot.json"
)

// snapshotFile is the on-disk shape of the compacted state.
type snapshotFile struct {
	Seq  uint64     `json:"seq"`
	Jobs []JobState `json:"jobs"`
}

// Journal is the write-ahead log plus its reduced job-state table (kept
// in memory so compaction never has to re-read the log it is replacing).
type Journal struct {
	dir string
	opt Options

	mu     sync.Mutex
	f      *os.File
	size   int64
	seq    uint64
	states map[string]*JobState
	order  []string
	ctr    Counters
	dirty  bool
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// ErrClosed rejects appends after Close.
var ErrClosed = fmt.Errorf("journal: closed")

// Open loads (snapshot + journal), compacts the result into a fresh
// snapshot — so startup cost stays proportional to the job table, not the
// log — and returns the journal ready for appends together with the
// replayed job states in submission order.
func Open(dir string, opt Options) (*Journal, []JobState, error) {
	if opt.Fsync == "" {
		opt.Fsync = FsyncInterval
	}
	if opt.FsyncEvery <= 0 {
		opt.FsyncEvery = 100 * time.Millisecond
	}
	if opt.RotateBytes <= 0 {
		opt.RotateBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opt: opt, states: map[string]*JobState{}, stop: make(chan struct{})}
	if err := j.loadSnapshot(); err != nil {
		return nil, nil, err
	}
	if err := j.replayLog(); err != nil {
		return nil, nil, err
	}
	if err := j.compactLocked(); err != nil { // also opens j.f fresh
		return nil, nil, err
	}
	if opt.Fsync == FsyncInterval {
		j.wg.Add(1)
		go j.fsyncLoop()
	}
	return j, j.States(), nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// loadSnapshot reads the compacted state, tolerating a missing or corrupt
// snapshot (corrupt means a crash during compaction: the journal still has
// everything the snapshot would have had, minus what older compactions
// folded in — the torn counter records the loss).
func (j *Journal) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(j.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: read snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		j.ctr.Torn++
		return nil
	}
	j.seq = snap.Seq
	for i := range snap.Jobs {
		st := snap.Jobs[i]
		j.states[st.ID] = &st
		j.order = append(j.order, st.ID)
	}
	return nil
}

// replayLog applies the journal on top of the snapshot. Records that fail
// to parse — a torn final write, or garbage from a partial page flush — are
// dropped and counted, never aborting the replay.
func (j *Journal) replayLog() error {
	data, err := os.ReadFile(filepath.Join(j.dir, journalName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: read log: %w", err)
	}
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Op == "" || rec.Job == "" {
			j.ctr.Torn++
			continue
		}
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		if j.applyLocked(rec) {
			j.ctr.Replayed++
		}
	}
	return nil
}

// applyLocked folds one record into the job-state table; it reports whether
// the record changed anything (duplicates — a finish replayed twice, a
// start for a terminal job — are no-ops, which is what makes replay
// idempotent and result records duplicate-proof).
func (j *Journal) applyLocked(rec Record) bool {
	st := j.states[rec.Job]
	switch rec.Op {
	case OpSubmit:
		if st != nil || rec.Spec == nil {
			return false
		}
		j.states[rec.Job] = &JobState{
			ID: rec.Job, Spec: *rec.Spec, State: StateQueued, SubmittedTS: rec.TS,
		}
		j.order = append(j.order, rec.Job)
		return true
	case OpStart:
		if st == nil || st.Terminal() {
			return false
		}
		st.State = StateRunning
		return true
	case OpFinish:
		if st == nil || st.Terminal() || (rec.State != StateDone && rec.State != StateFailed) {
			return false
		}
		st.State, st.Result, st.Error, st.FinishedTS = rec.State, rec.Result, rec.Error, rec.TS
		if rec.Faults != nil {
			st.Faults = *rec.Faults
		}
		return true
	case OpCancel:
		if st == nil || st.Terminal() {
			return false
		}
		st.State, st.Error, st.FinishedTS = StateCanceled, rec.Error, rec.TS
		return true
	case OpFault:
		if st == nil || st.Terminal() || rec.Faults == nil {
			return false
		}
		st.Faults = *rec.Faults
		return true
	}
	return false
}

// append stamps, applies and persists one record.
func (j *Journal) append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.seq++
	rec.Seq = j.seq
	rec.TS = time.Now().UnixMilli()
	j.applyLocked(rec)
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	b = append(b, '\n')
	n, err := j.f.Write(b)
	j.size += int64(n)
	j.ctr.Appends++
	j.dirty = true
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if j.opt.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.ctr.Fsyncs++
		j.dirty = false
	}
	if j.size > j.opt.RotateBytes {
		j.ctr.Rotations++
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Submit journals a job acceptance.
func (j *Journal) Submit(id string, spec Spec) error {
	return j.append(Record{Op: OpSubmit, Job: id, Spec: &spec})
}

// Start journals a job's admission.
func (j *Journal) Start(id string) error {
	return j.append(Record{Op: OpStart, Job: id})
}

// Finish journals a terminal done/failed outcome with its fault counters.
func (j *Journal) Finish(id, state, result, errMsg string, fc FaultCounts) error {
	return j.append(Record{Op: OpFinish, Job: id, State: state, Result: result, Error: errMsg, Faults: &fc})
}

// Cancel journals a cancellation.
func (j *Journal) Cancel(id, errMsg string) error {
	return j.append(Record{Op: OpCancel, Job: id, Error: errMsg})
}

// Fault journals a job's cumulative fault counters mid-run.
func (j *Journal) Fault(id string, fc FaultCounts) error {
	return j.append(Record{Op: OpFault, Job: id, Faults: &fc})
}

// compactLocked writes the reduced job table to the snapshot (atomically:
// tmp + fsync + rename) and truncates the journal. Caller holds j.mu (or is
// Open, before the journal is shared).
func (j *Journal) compactLocked() error {
	jobs := make([]JobState, 0, len(j.order))
	for _, id := range j.order {
		jobs = append(jobs, *j.states[id])
	}
	b, err := json.MarshalIndent(snapshotFile{Seq: j.seq, Jobs: jobs}, "", " ")
	if err != nil {
		return fmt.Errorf("journal: snapshot marshal: %w", err)
	}
	tmp := filepath.Join(j.dir, snapshotName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := tf.Write(b); err != nil {
		tf.Close()
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("journal: snapshot sync: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotName)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(filepath.Join(j.dir, journalName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen log: %w", err)
	}
	j.f, j.size = f, 0
	j.syncDir()
	j.ctr.Compactions++
	return nil
}

// syncDir best-effort fsyncs the journal directory so renames survive a
// power cut (not all filesystems support directory sync; errors ignored).
func (j *Journal) syncDir() {
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// fsyncLoop is the interval policy's timer.
func (j *Journal) fsyncLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.opt.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				if err := j.f.Sync(); err == nil {
					j.ctr.Fsyncs++
					j.dirty = false
				}
			}
			j.mu.Unlock()
		}
	}
}

// Counters returns a copy of the activity counters.
func (j *Journal) Counters() Counters {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ctr
}

// States returns a copy of the replayed/current job states in submission
// order.
func (j *Journal) States() []JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JobState, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.states[id])
	}
	return out
}

// Close syncs and closes the journal; later appends return ErrClosed.
// Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	close(j.stop)
	var err error
	if j.f != nil {
		if j.dirty {
			if serr := j.f.Sync(); serr == nil {
				j.ctr.Fsyncs++
			}
		}
		err = j.f.Close()
	}
	j.mu.Unlock()
	j.wg.Wait()
	return err
}
