package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the journal reader: whatever garbage
// a crash, a partial page flush or a hostile disk leaves behind, Open must
// neither panic nor error — it recovers what parses and counts the rest as
// torn. Seeds cover the interesting shapes: valid logs, torn tails, interior
// corruption, and JSON that parses but is not a record.
func FuzzReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"sleepgrid"}}` + "\n"))
	f.Add([]byte(`{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"s"}}` + "\n" +
		`{"op":"start","job":"job-1","seq":2}` + "\n" +
		`{"op":"finish","job":"job-1","seq":3,"state":"done","result":"16"}` + "\n"))
	f.Add([]byte(`{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"s"}}` + "\n" +
		`{"op":"finish","job":"job-1","seq":2,"sta`)) // torn tail
	f.Add([]byte("{\"op\":\"submit\"\x00\xff garbage\n{\"op\":\"start\",\"job\":\"job-1\",\"seq\":2}\n"))
	f.Add([]byte(`[1,2,3]` + "\n" + `"just a string"` + "\n" + `{}` + "\n"))
	f.Add([]byte(`{"op":"cancel","job":"ghost","seq":9}` + "\n")) // op for unknown job
	f.Add([]byte(`{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"s","tenant":"alpha","priority":-1}}` + "\n"))
	f.Add([]byte(`{"op":"submit","job":"job-1","seq":1,"spec":{"skeleton":"s","tenant":"al`)) // torn inside tenant

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, states, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed journal: %v", err)
		}
		defer j.Close()
		// Whatever was recovered must be internally consistent: IDs unique,
		// states legal, terminal iff Terminal() says so.
		seen := map[string]bool{}
		for i := range states {
			s := &states[i]
			if s.ID == "" || seen[s.ID] {
				t.Fatalf("bad replayed id %q (dup=%v)", s.ID, seen[s.ID])
			}
			seen[s.ID] = true
			switch s.State {
			case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
			default:
				t.Fatalf("illegal replayed state %q", s.State)
			}
		}
		// And the journal must be writable after any replay: recovery cannot
		// leave the WAL wedged.
		if err := j.Submit("fuzz-probe", Spec{Skeleton: "probe"}); err != nil {
			t.Fatalf("append after fuzzed replay: %v", err)
		}
	})
}

// FuzzSnapshot does the same for the compacted snapshot file.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte(`{"seq":3,"jobs":[{"id":"job-1","spec":{"skeleton":"s"},"state":"done","result":"1"}]}`))
	f.Add([]byte(`{"seq":3,"jobs":[{"id":"job-1","spec":{"skeleton":"s","tenant":"alpha","priority":2},"state":"queued"}]}`))
	f.Add([]byte(`{"seq":1,"jobs":`)) // torn compaction
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapshotName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed snapshot: %v", err)
		}
		j.Close()
	})
}
