package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"skandium"
	"skandium/internal/core"
	"skandium/internal/journal"
)

// recover rebuilds the job table from a journal replay. Terminal jobs are
// rehydrated in place: they serve their persisted result or error without a
// runner. Queued and running jobs are re-queued for execution from scratch
// — muscles are pure, so re-running a job the crash interrupted produces
// the same result it would have produced — and their journaled fault
// counters carry over. Job numbering continues after the highest recovered
// id, so recovered and fresh jobs never collide.
func (s *Server) recover(states []journal.JobState) {
	if len(states) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range states {
		if n, ok := jobNum(st.ID); ok && n > s.nextID {
			s.nextID = n
		}
		if st.Terminal() {
			s.restoreLocked(st)
		} else {
			s.requeueLocked(st)
		}
		s.recovered++
	}
	s.admitLocked()
}

// jobNum parses the N of a "job-N" id.
func jobNum(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	return n, err == nil
}

// restoreLocked rehydrates one terminal job from its persisted outcome.
// Caller holds s.mu.
func (s *Server) restoreLocked(st journal.JobState) {
	j := &job{
		id:            st.ID,
		skeleton:      st.Spec.Skeleton,
		program:       st.Spec.Program,
		params:        st.Spec.Params,
		goal:          msToDur(st.Spec.GoalMS),
		maxLP:         st.Spec.MaxLP,
		policy:        st.Spec.Policy,
		tenant:        core.CanonTenant(st.Spec.Tenant),
		priority:      st.Spec.Priority,
		restored:      true,
		resultSummary: st.Result,
		prior:         faultStats(st.Faults),
		state:         restoredState(st.State),
		created:       s.clk.Now(),
	}
	if st.Error != "" {
		j.err = fmt.Errorf("%s", st.Error)
	}
	j.log = newEventLog(1, j.created)
	j.log.close()
	j.rec = s.fleet.Job(j.id)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// requeueLocked rebuilds a queued/running job's runner from its journaled
// spec and puts it back on the wait queue. A spec that no longer builds
// (blueprint unregistered, params now invalid) is rehydrated as failed —
// and that outcome is journaled, so the next restart does not retry it
// forever. Caller holds s.mu.
func (s *Server) requeueLocked(st journal.JobState) {
	spec := fromJournalSpec(st.Spec)
	fail := func(err error) {
		st.State = journal.StateFailed
		st.Error = fmt.Sprintf("recovery: %v", err)
		s.restoreLocked(st)
		if s.jn != nil {
			_ = s.jn.Finish(st.ID, journal.StateFailed, "", st.Error, st.Faults)
		}
	}
	bp, ok := skandium.LookupBlueprint(spec.Skeleton)
	if !ok {
		fail(fmt.Errorf("unknown skeleton %q", spec.Skeleton))
		return
	}
	runner, err := bp.Build(spec.Params)
	if err != nil {
		fail(fmt.Errorf("build %s: %w", spec.Skeleton, err))
		return
	}
	partial, err := parsePartial(spec.Partial, spec.Substitute)
	if err != nil {
		fail(err)
		return
	}
	if spec.InitialLP < 1 {
		spec.InitialLP = 1
	}
	j := &job{
		id:        st.ID,
		skeleton:  spec.Skeleton,
		program:   runner.Program(),
		params:    spec.Params,
		runner:    runner,
		goal:      spec.Goal,
		maxLP:     spec.MaxLP,
		initLP:    spec.InitialLP,
		policy:    spec.Policy,
		tenant:    core.CanonTenant(spec.Tenant),
		priority:  spec.Priority,
		timeout:   spec.MuscleTimeout,
		retry:     skandium.RetryPolicy{MaxAttempts: spec.RetryAttempts, BaseDelay: spec.RetryBackoff},
		partial:   partial,
		recovered: true,
		prior:     faultStats(st.Faults),
		created:   s.clk.Now(),
		state:     stateQueued,
	}
	j.log = newEventLog(s.cfg.EventLog, j.created)
	j.rec = s.fleet.Job(j.id)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	// The crash already admitted this job once; re-reserve its queue slot
	// so the ladder's tenant accounting matches the rebuilt queue.
	s.adm.enqueued(j.tenant)
}

// restoredState maps a journal terminal state onto the job lifecycle.
func restoredState(st string) jobState {
	switch st {
	case journal.StateDone:
		return stateDone
	case journal.StateFailed:
		return stateFailed
	default:
		return stateCanceled
	}
}

// faultStats converts journaled fault counters into the runtime form.
func faultStats(fc journal.FaultCounts) skandium.FaultStats {
	return skandium.FaultStats{
		Retries: fc.Retries, Faults: fc.Faults, Timeouts: fc.Timeouts,
		Skipped: fc.Skipped, Substituted: fc.Substituted,
	}
}

// toJournalSpec converts a submission into its durable form (API units).
func toJournalSpec(spec SubmitSpec, program string) journal.Spec {
	return journal.Spec{
		Skeleton:       spec.Skeleton,
		Program:        program,
		Params:         spec.Params,
		GoalMS:         durToMS(spec.Goal),
		MaxLP:          spec.MaxLP,
		InitialLP:      spec.InitialLP,
		Policy:         spec.Policy,
		TimeoutMS:      durToMS(spec.MuscleTimeout),
		Retries:        spec.RetryAttempts,
		RetryBackoffMS: durToMS(spec.RetryBackoff),
		Partial:        spec.Partial,
		Substitute:     spec.Substitute,
		Tenant:         spec.Tenant,
		Priority:       spec.Priority,
	}
}

// fromJournalSpec is the inverse, for re-queuing a recovered job.
func fromJournalSpec(js journal.Spec) SubmitSpec {
	return SubmitSpec{
		Skeleton:      js.Skeleton,
		Params:        js.Params,
		Goal:          msToDur(js.GoalMS),
		MaxLP:         js.MaxLP,
		InitialLP:     js.InitialLP,
		Policy:        js.Policy,
		MuscleTimeout: msToDur(js.TimeoutMS),
		RetryAttempts: js.Retries,
		RetryBackoff:  msToDur(js.RetryBackoffMS),
		Partial:       js.Partial,
		Substitute:    js.Substitute,
		Tenant:        js.Tenant,
		Priority:      js.Priority,
	}
}

func durToMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
