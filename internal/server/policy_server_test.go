package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"skandium/internal/journal"
)

// TestSubmitPolicySelection covers the policy face of the front door: a
// named policy is validated at submit, echoed in the job view, runs the job
// to completion, and an unknown name is rejected synchronously with 400.
func TestSubmitPolicySelection(t *testing.T) {
	_, ts := newTestDaemon(t, Config{
		Budget:           4,
		Rebalance:        5 * time.Millisecond,
		AnalysisTick:     2 * time.Millisecond,
		AnalysisInterval: time.Millisecond,
	})
	base := ts.URL

	resp, body := postJSON(t, base+"/jobs", map[string]any{
		"skeleton": "sleepgrid",
		"params":   map[string]any{"k": 2, "m": 2, "cell_ms": 4.0},
		"goal_ms":  60.0,
		"policy":   "hillclimb",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with policy: status %d: %s", resp.StatusCode, body)
	}
	v := getJSON[jobView](t, base+"/jobs/"+decodeJobID(t, body))
	if v.Policy != "hillclimb" {
		t.Fatalf("job view policy = %q, want hillclimb", v.Policy)
	}
	waitDone(t, base, v.ID)

	if resp, body := postJSON(t, base+"/jobs", map[string]any{
		"skeleton": "sleepgrid", "policy": "no-such-policy",
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown policy: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestDefaultPolicyAppliesToJobs checks Config.DefaultPolicy flows into
// jobs that do not pick a policy, and that an explicit choice still wins.
func TestDefaultPolicyAppliesToJobs(t *testing.T) {
	_, ts := newTestDaemon(t, Config{
		Budget:        4,
		DefaultPolicy: "costaware",
	})
	base := ts.URL

	v := submitSleepgrid(t, base, 80, 4)
	if v.Policy != "costaware" {
		t.Fatalf("defaulted job policy = %q, want costaware", v.Policy)
	}

	resp, body := postJSON(t, base+"/jobs", map[string]any{
		"skeleton": "sleepgrid",
		"params":   map[string]any{"k": 2, "m": 2, "cell_ms": 4.0},
		"goal_ms":  80.0,
		"policy":   "paper-minimal",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	if id := decodeJobID(t, body); getJSON[jobView](t, base+"/jobs/"+id).Policy != "paper-minimal" {
		t.Fatal("explicit policy did not override the server default")
	}
}

// TestPolicySurvivesJournalRoundTrip checks the journal spec carries the
// policy name through toJournalSpec/fromJournalSpec unchanged.
func TestPolicySurvivesJournalRoundTrip(t *testing.T) {
	spec := SubmitSpec{Skeleton: "sleepgrid", Goal: 50 * time.Millisecond, Policy: "bandit"}
	js := toJournalSpec(spec, "prog")
	if js.Policy != "bandit" {
		t.Fatalf("journal spec policy = %q", js.Policy)
	}
	back := fromJournalSpec(js)
	if back.Policy != "bandit" {
		t.Fatalf("round-tripped policy = %q", back.Policy)
	}
	// Old journals (no policy field) replay as the paper default.
	if got := fromJournalSpec(journal.Spec{Skeleton: "sleepgrid"}).Policy; got != "" {
		t.Fatalf("legacy journal spec policy = %q, want empty", got)
	}
}

// TestPolicySurvivesCrashRecovery covers the requeue path: a job the crash
// interrupted mid-run must come back with its policy, not the default.
func TestPolicySurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	jn1, _ := openJournal(t, dir)
	spec := sleepSpec(4)
	spec.Policy = "bandit"
	if err := jn1.Submit("job-1", spec); err != nil {
		t.Fatalf("journal submit: %v", err)
	}
	if err := jn1.Start("job-1"); err != nil {
		t.Fatalf("journal start: %v", err)
	}
	_ = jn1.Close() // crash: no finish record

	jn2, states := openJournal(t, dir)
	_, ts := newTestDaemon(t, Config{
		Budget: 2, Rebalance: 5 * time.Millisecond,
		Journal: jn2, Recover: states,
	})
	v := waitState(t, ts.URL, "job-1", "done", 20*time.Second)
	if v.Policy != "bandit" {
		t.Fatalf("recovered job policy = %q, want bandit", v.Policy)
	}
}

// TestRecoveredUnknownPolicyFallsBackVisibly: a journal written by a binary
// with a richer policy registry can name a policy this binary does not
// know. The job must still run (paper rule), and the fallback must be
// visible: the job view stops reporting the unhonoured policy name.
func TestRecoveredUnknownPolicyFallsBackVisibly(t *testing.T) {
	dir := t.TempDir()
	jn1, _ := openJournal(t, dir)
	spec := sleepSpec(4)
	spec.Policy = "from-the-future"
	spec.GoalMS = 120 // the policy only drives a goal-bound controller
	if err := jn1.Submit("job-1", spec); err != nil {
		t.Fatalf("journal submit: %v", err)
	}
	if err := jn1.Start("job-1"); err != nil {
		t.Fatalf("journal start: %v", err)
	}
	_ = jn1.Close() // crash: no finish record

	jn2, states := openJournal(t, dir)
	_, ts := newTestDaemon(t, Config{
		Budget: 2, Rebalance: 5 * time.Millisecond,
		Journal: jn2, Recover: states,
	})
	v := waitState(t, ts.URL, "job-1", "done", 20*time.Second)
	if v.Policy != "" {
		t.Fatalf("recovered job still reports unknown policy %q; want cleared (paper rule)", v.Policy)
	}
}

func decodeJobID(t *testing.T, body []byte) string {
	t.Helper()
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode job view %q: %v", body, err)
	}
	return v.ID
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJSON[jobView](t, base+"/jobs/"+id)
		switch v.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, v.State, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}
