package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestDaemon boots a server on a loopback port via httptest.
func newTestDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return v
}

func getNDJSON(t *testing.T, url string) []map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("GET %s: bad NDJSON line %q: %v", url, line, err)
		}
		out = append(out, m)
	}
	return out
}

func submitSleepgrid(t *testing.T, base string, goalMS float64, cellMS float64) jobView {
	t.Helper()
	resp, body := postJSON(t, base+"/jobs", map[string]any{
		"skeleton": "sleepgrid",
		"params":   map[string]any{"k": 4, "m": 4, "cell_ms": cellMS},
		"goal_ms":  goalMS,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("submit: decode %q: %v", body, err)
	}
	return v
}

// TestServerEndToEnd is the acceptance scenario: boot the daemon on a
// loopback port, submit three concurrent jobs with different WCT goals,
// watch the per-job LP allocations shift through the API while their sum
// never exceeds the global budget, and confirm every job completes with a
// recorded decision timeline.
func TestServerEndToEnd(t *testing.T) {
	const budget = 6
	srv, ts := newTestDaemon(t, Config{
		Budget:           budget,
		Rebalance:        5 * time.Millisecond,
		AnalysisTick:     2 * time.Millisecond,
		AnalysisInterval: time.Millisecond,
	})
	base := ts.URL

	// Three 4×4 sleep grids (~128ms serial work each): one with a goal it
	// badly misses, one moderate, one with all the slack in the world.
	severe := submitSleepgrid(t, base, 40, 8)
	medium := submitSleepgrid(t, base, 90, 8)
	slack := submitSleepgrid(t, base, 5000, 8)
	ids := []string{severe.ID, medium.ID, slack.ID}

	grantsSeen := map[string]map[int]bool{}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not finish; last states: %+v", getJSON[[]jobView](t, base+"/jobs"))
		}

		// The arbiter's own accounting is atomic: never over budget.
		arb := getJSON[arbiterView](t, base+"/arbiter")
		if arb.Granted > budget {
			t.Fatalf("arbiter granted %d > budget %d", arb.Granted, budget)
		}
		for id, g := range arb.Grants {
			if grantsSeen[id] == nil {
				grantsSeen[id] = map[int]bool{}
			}
			grantsSeen[id][g] = true
		}

		// The per-job pool LPs must respect the grants. A job can finish
		// between two reads of this non-atomic listing (its budget already
		// re-granted while it still lists as running), so re-check before
		// calling a violation real.
		sumLP, done := runningLPSum(t, base)
		if sumLP > budget {
			if s2, _ := runningLPSum(t, base); s2 > budget {
				t.Fatalf("sum of running-job LPs %d then %d > budget %d", sumLP, s2, budget)
			}
		}
		if done == len(ids) {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}

	jobs := map[string]jobView{}
	for _, v := range getJSON[[]jobView](t, base+"/jobs") {
		jobs[v.ID] = v
	}
	for _, id := range ids {
		v, ok := jobs[id]
		if !ok {
			t.Fatalf("job %s missing from listing", id)
		}
		if v.State != "done" {
			t.Errorf("job %s state = %s (err %q), want done", id, v.State, v.Error)
		}
		if v.Result != "16" { // 4×4 cells, each counted once
			t.Errorf("job %s result = %q, want 16", id, v.Result)
		}
	}

	// The allocations changed over time: the goal-missing job must have been
	// granted at least two distinct LP shares (it starts at 1 and is raised
	// once its controller publishes a demand).
	if n := len(grantsSeen[severe.ID]); n < 2 {
		t.Errorf("severe job saw %d distinct grants %v, want >= 2", n, grantsSeen[severe.ID])
	}

	// The goal-missing job recorded an autonomic decision timeline.
	decs := getJSON[[]decisionView](t, base+"/jobs/"+severe.ID+"/decisions")
	if len(decs) == 0 {
		t.Errorf("severe job has no decisions")
	}

	// The timeline endpoint interleaves LP samples and decisions as NDJSON.
	timeline := getNDJSON(t, base+"/jobs/"+severe.ID+"/timeline")
	kinds := map[string]int{}
	for _, rec := range timeline {
		kinds[rec["type"].(string)]++
	}
	if kinds["lp"] == 0 || kinds["decision"] == 0 {
		t.Errorf("timeline kinds = %v, want both lp and decision records", kinds)
	}

	// The event stream replays the job's history in ∆@notation.
	events := getNDJSON(t, base+"/jobs/"+severe.ID+"/events")
	if len(events) == 0 {
		t.Fatalf("no events for %s", severe.ID)
	}
	if ev := events[0]["ev"].(string); !strings.Contains(ev, "map@") {
		t.Errorf("first event = %q, want a map@ activation", ev)
	}

	// Fleet metrics and health.
	health := getJSON[map[string]any](t, base+"/healthz")
	if health["status"] != "ok" {
		t.Errorf("health status = %v", health["status"])
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("skelrund_budget %d", budget),
		"skelrund_job_tasks_total",
		`skelrund_jobs{state="done"} 3`,
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	_ = srv
}

// runningLPSum reads the job listing once, summing LP over running jobs.
func runningLPSum(t *testing.T, base string) (sum, done int) {
	t.Helper()
	for _, v := range getJSON[[]jobView](t, base+"/jobs") {
		switch v.State {
		case "running":
			sum += v.LP
		case "done", "failed", "canceled":
			done++
		}
	}
	return sum, done
}

// TestServerQueueAdmission: with budget 2 only two jobs run at once; the
// third queues and is admitted when budget returns.
func TestServerQueueAdmission(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 2, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	a := submitSleepgrid(t, base, 0, 5)
	b := submitSleepgrid(t, base, 0, 5)
	c := submitSleepgrid(t, base, 0, 5)
	if a.State != "running" || b.State != "running" {
		t.Fatalf("first two jobs should start immediately: %s/%s", a.State, b.State)
	}
	if c.State != "queued" {
		t.Fatalf("third job state = %s, want queued (budget full)", c.State)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("jobs stuck: %+v", getJSON[[]jobView](t, base+"/jobs"))
		}
		_, done := runningLPSum(t, base)
		if done == 3 {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}
	v := getJSON[jobView](t, base+"/jobs/"+c.ID)
	if v.State != "done" || v.StartedMS == 0 {
		t.Fatalf("queued job should have started and finished: %+v", v)
	}
}

// TestServerQoSAndCancel: runtime QoS adjustment is visible through the
// API, an unknown skeleton is rejected, and DELETE cancels a job.
func TestServerQoSAndCancel(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 4, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitSleepgrid(t, base, 10000, 25) // slack: ~400ms serial
	req, _ := http.NewRequest(http.MethodPatch, base+"/jobs/"+j.ID+"/qos",
		strings.NewReader(`{"goal_ms": 50, "max_lp": 3}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PATCH qos: %v", err)
	}
	var after jobView
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatalf("decode qos response: %v", err)
	}
	resp.Body.Close()
	if after.GoalMS != 50 || after.MaxLP != 3 {
		t.Fatalf("qos not applied: goal=%v max_lp=%d", after.GoalMS, after.MaxLP)
	}

	del, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+j.ID, nil)
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE job: %v (%v)", err, resp)
	} else {
		resp.Body.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := getJSON[jobView](t, base+"/jobs/"+j.ID)
		if v.State == "canceled" {
			break
		}
		if v.State == "done" {
			t.Fatalf("job finished before cancel took effect — enlarge the workload")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not canceled: %+v", v)
		}
		time.Sleep(3 * time.Millisecond)
	}

	if resp, body := postJSON(t, base+"/jobs", map[string]any{"skeleton": "no-such"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown skeleton: status %d body %s", resp.StatusCode, body)
	}
}

// TestServerDrain: draining refuses new submissions with 503 while letting
// running jobs finish; a deadline cancels stragglers.
func TestServerDrain(t *testing.T) {
	srv, ts := newTestDaemon(t, Config{Budget: 4, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitSleepgrid(t, base, 0, 5) // ~80ms serial at LP 1
	srv.BeginDrain()

	if resp, _ := postJSON(t, base+"/jobs", map[string]any{"skeleton": "sleepgrid"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", resp.StatusCode)
	}
	health := getJSON[map[string]any](t, base+"/healthz")
	if health["status"] != "draining" {
		t.Fatalf("health status = %v, want draining", health["status"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := getJSON[jobView](t, base+"/jobs/"+j.ID); v.State != "done" {
		t.Fatalf("drained job state = %s, want done", v.State)
	}
}

// TestServerDrainDeadline: a drain whose context expires cancels the jobs
// that outlived it.
func TestServerDrainDeadline(t *testing.T) {
	srv, ts := newTestDaemon(t, Config{Budget: 2, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitSleepgrid(t, base, 0, 200) // 16 × 200ms serial: outlives the drain
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain err = %v, want DeadlineExceeded", err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		v := getJSON[jobView](t, base+"/jobs/"+j.ID)
		if v.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("straggler not canceled: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
