package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func submitChaosgrid(t *testing.T, base string, extra map[string]any) jobView {
	t.Helper()
	body := map[string]any{
		"skeleton": "chaosgrid",
		"params":   map[string]any{"k": 4, "m": 4, "cell_ms": 1, "seed": 3, "fail_rate": 0.25},
	}
	for k, v := range extra {
		body[k] = v
	}
	resp, raw := postJSON(t, base+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit chaosgrid: status %d: %s", resp.StatusCode, raw)
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("submit: decode %q: %v", raw, err)
	}
	return v
}

func waitJob(t *testing.T, base, id string, states ...string) jobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		v := getJSON[jobView](t, base+"/jobs/"+id)
		for _, s := range states {
			if v.State == s {
				return v
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want one of %v", id, v.State, states)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// TestServerChaosgridRetryRecovers: a chaos job submitted with a retry
// budget completes with the full result and its fault counters visible in
// the job view and /metrics.
func TestServerChaosgridRetryRecovers(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 4, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitChaosgrid(t, base, map[string]any{"retries": 20})
	if j.RetryAttempts != 20 || j.Partial != "failfast" {
		t.Fatalf("config not echoed: retry_attempts=%d partial=%q", j.RetryAttempts, j.Partial)
	}
	v := waitJob(t, base, j.ID, "done", "failed")
	if v.State != "done" || v.Result != "16" {
		t.Fatalf("job = %s result %q (err %q), want done/16", v.State, v.Result, v.Error)
	}
	if v.Retries == 0 {
		t.Fatalf("retries_total = 0: chaos injected nothing (seed drift?)")
	}
	if v.Faults != 0 {
		t.Fatalf("faults_total = %d, want 0 (all recovered)", v.Faults)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"skelrund_retries_total", "skelrund_faults_total", "skelrund_job_retries_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerChaosgridSkipFailed: under partial=skip the job completes with
// a partial result and the skipped/failed-branch counters agree.
func TestServerChaosgridSkipFailed(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 4, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitChaosgrid(t, base, map[string]any{"partial": "skip"})
	if j.Partial != "skip" {
		t.Fatalf("partial = %q, want skip", j.Partial)
	}
	v := waitJob(t, base, j.ID, "done", "failed")
	if v.State != "done" {
		t.Fatalf("job = %s (err %q), want done", v.State, v.Error)
	}
	if v.Skipped == 0 || v.FailedBranches == 0 {
		t.Fatalf("skipped=%d failed_branches=%d: chaos injected nothing", v.Skipped, v.FailedBranches)
	}
	// Each surviving leaf contributes 1 of the 16 cells.
	want := 16 - int(v.Skipped)
	if v.Result != strconv.Itoa(want) {
		t.Fatalf("result = %q, want %d (16 cells - %d skipped)", v.Result, want, v.Skipped)
	}
}

// TestServerChaosgridFailFastRendersError: with no retries and failfast,
// the job fails terminally and the NDJSON event log records the error.
func TestServerChaosgridFailFastRendersError(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 2, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitChaosgrid(t, base, nil) // fail_rate 0.25, no retries, failfast
	v := waitJob(t, base, j.ID, "done", "failed")
	if v.State != "failed" {
		t.Fatalf("job = %s, want failed (failfast, no retries)", v.State)
	}
	if !strings.Contains(v.Error, "chaos") {
		t.Fatalf("job error %q does not name the injected fault", v.Error)
	}
	events := getNDJSON(t, base+"/jobs/"+j.ID+"/events")
	var errLines int
	for _, rec := range events {
		if s, ok := rec["err"].(string); ok && s != "" {
			errLines++
		}
	}
	if errLines == 0 {
		t.Fatalf("no NDJSON event carries an err field; events=%d", len(events))
	}
}

// TestServerBadPartialRejected: an unknown partial policy is a 400 at
// submit time, not a runtime surprise.
func TestServerBadPartialRejected(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 2})
	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"skeleton": "sleepgrid",
		"partial":  "best-effort",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad partial: status %d body %s, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "partial") {
		t.Fatalf("error body %q does not mention the partial policy", body)
	}
}

// TestServerMuscleTimeoutFailsJob: a timeout far below the cell sleep
// fails the job with ErrMuscleTimeout in the error string and a timeout
// counter in the view.
func TestServerMuscleTimeoutFailsJob(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 2, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	resp, raw := postJSON(t, base+"/jobs", map[string]any{
		"skeleton":   "sleepgrid",
		"params":     map[string]any{"k": 2, "m": 2, "cell_ms": 200},
		"timeout_ms": 10,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var j jobView
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if j.TimeoutMS != 10 {
		t.Fatalf("timeout_ms echoed as %v, want 10", j.TimeoutMS)
	}
	v := waitJob(t, base, j.ID, "done", "failed")
	if v.State != "failed" || !strings.Contains(v.Error, "deadline") {
		t.Fatalf("job = %s err %q, want failed with muscle deadline error", v.State, v.Error)
	}
	if v.Timeouts == 0 {
		t.Fatalf("timeouts_total = 0, want >= 1")
	}
}
