package server

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"skandium"
	"skandium/internal/chaos"
	"skandium/internal/workload"
)

// The built-in catalog: the paper's word-count evaluation workload plus the
// mergesort / montecarlo examples, and a sleep-grid workload whose muscles
// are wall-clock-bound (they parallelize even on a single-CPU box, which
// makes it the workload of choice for exercising multi-job arbitration in
// tests and demos). Importing this package registers all of them.
func init() {
	skandium.RegisterBlueprint(wordcountBlueprint())
	skandium.RegisterBlueprint(mergesortBlueprint())
	skandium.RegisterBlueprint(montecarloBlueprint())
	skandium.RegisterBlueprint(sleepgridBlueprint())
	skandium.RegisterBlueprint(chaosgridBlueprint())
}

// wordcountBlueprint is the paper's §5 workload: a two-level map over a
// synthetic tweet corpus with shared split/merge muscles, so inner merges
// teach the estimator about the outer merge early.
func wordcountBlueprint() skandium.Blueprint {
	return skandium.Blueprint{
		Name:        "wordcount",
		Description: "paper §5 two-level map hashtag count over a synthetic tweet corpus",
		Defaults:    skandium.Params{"tweets": 20000, "k": 5, "m": 7, "seed": 20130725},
		Build: func(p skandium.Params) (skandium.Runner, error) {
			tweets := p.Int("tweets", 20000)
			k := p.Int("k", 5)
			m := p.Int("m", 7)
			if tweets < 1 || k < 1 || m < 1 {
				return nil, fmt.Errorf("wordcount: tweets/k/m must be >= 1")
			}
			corpus := workload.Generate(workload.GenConfig{
				Tweets: tweets, Seed: int64(p.Int("seed", 20130725)),
			})
			total := len(corpus.Tweets)
			fs := skandium.NewSplit("fs", func(c workload.Chunk) ([]workload.Chunk, error) {
				parts := k
				if c.Len() < total {
					parts = m
				}
				return workload.SplitChunk(c, parts), nil
			})
			fe := skandium.NewExec("fe", func(c workload.Chunk) (workload.Counts, error) {
				return workload.CountChunk(c), nil
			})
			fm := skandium.NewMerge("fm", func(parts []workload.Counts) (workload.Counts, error) {
				return workload.MergeCounts(parts), nil
			})
			inner := skandium.Map(fs, skandium.Seq(fe), fm)
			program := skandium.Map(fs, inner, fm)
			return skandium.NewRunner(program, workload.Chunk{Corpus: corpus, Lo: 0, Hi: total}), nil
		},
	}
}

// mergesortBlueprint sorts a seeded random slice with the d&c skeleton.
func mergesortBlueprint() skandium.Blueprint {
	return skandium.Blueprint{
		Name:        "mergesort",
		Description: "divide & conquer mergesort of a seeded random []int",
		Defaults:    skandium.Params{"n": 200000, "leaf": 16000, "seed": 1},
		Build: func(p skandium.Params) (skandium.Runner, error) {
			n := p.Int("n", 200000)
			leaf := p.Int("leaf", 16000)
			if n < 1 || leaf < 1 {
				return nil, fmt.Errorf("mergesort: n/leaf must be >= 1")
			}
			rng := rand.New(rand.NewSource(int64(p.Int("seed", 1))))
			data := make([]int, n)
			for i := range data {
				data[i] = rng.Int()
			}
			deep := skandium.NewCond("deep", func(s []int) (bool, error) {
				return len(s) > leaf, nil
			})
			halve := skandium.NewSplit("halve", func(s []int) ([][]int, error) {
				mid := len(s) / 2
				return [][]int{s[:mid:mid], s[mid:]}, nil
			})
			sortLeaf := skandium.NewExec("sortLeaf", func(s []int) ([]int, error) {
				out := append([]int(nil), s...)
				sort.Ints(out)
				return out, nil
			})
			mergeRuns := skandium.NewMerge("mergeRuns", func(runs [][]int) ([]int, error) {
				a, b := runs[0], runs[1]
				out := make([]int, 0, len(a)+len(b))
				i, j := 0, 0
				for i < len(a) && j < len(b) {
					if a[i] <= b[j] {
						out = append(out, a[i])
						i++
					} else {
						out = append(out, b[j])
						j++
					}
				}
				out = append(out, a[i:]...)
				return append(out, b[j:]...), nil
			})
			program := skandium.DaC(deep, halve, skandium.Seq(sortLeaf), mergeRuns)
			return skandium.NewRunner(program, data), nil
		},
	}
}

// montecarloBlueprint estimates π by map-parallel sampling.
func montecarloBlueprint() skandium.Blueprint {
	type batch struct {
		Seed int64
		N    int
	}
	return skandium.Blueprint{
		Name:        "montecarlo",
		Description: "map-parallel Monte-Carlo π estimation (returns the hit count)",
		Defaults:    skandium.Params{"samples": 2000000, "batches": 32},
		// Batches are seeded, so a batch computes the same hit count on any
		// node — cluster execution stays deterministic.
		Remote: skandium.JSONCodec[batch, int](),
		Build: func(p skandium.Params) (skandium.Runner, error) {
			samples := p.Int("samples", 2000000)
			batches := p.Int("batches", 32)
			if samples < 1 || batches < 1 {
				return nil, fmt.Errorf("montecarlo: samples/batches must be >= 1")
			}
			split := skandium.NewSplit("batches", func(total int) ([]batch, error) {
				out := make([]batch, batches)
				for i := range out {
					out[i] = batch{Seed: int64(i + 1), N: total / batches}
				}
				return out, nil
			})
			sample := skandium.NewExec("sample", func(b batch) (int, error) {
				rng := rand.New(rand.NewSource(b.Seed))
				hits := 0
				for i := 0; i < b.N; i++ {
					x, y := rng.Float64(), rng.Float64()
					if x*x+y*y <= 1 {
						hits++
					}
				}
				return hits, nil
			})
			fold := skandium.NewMerge("fold", func(hits []int) (int, error) {
				total := 0
				for _, h := range hits {
					total += h
				}
				return total, nil
			})
			program := skandium.Map(split, skandium.Seq(sample), fold)
			return skandium.NewRunner(program, samples), nil
		},
	}
}

// sleepgridBlueprint is a two-level map of sleep muscles: k outer chunks
// each split into m cells, every cell sleeping cell_ms. Like the word
// count it shares fs/fm across both levels so analyses start after the
// first inner merge; unlike it, the muscles hold no CPU, so LP translates
// into real speedup even on one core — ideal for exercising the arbiter.
func sleepgridBlueprint() skandium.Blueprint {
	type cells struct {
		N int // cells in this chunk (outer: total cells)
	}
	return skandium.Blueprint{
		Name:        "sleepgrid",
		Description: "two-level map of sleeping muscles (k×m grid, cell_ms each): wall-clock-bound, parallelizes on any box",
		Defaults:    skandium.Params{"k": 4, "m": 4, "cell_ms": 5},
		// A chunk ships as its cell count; each remote node re-splits and
		// sleeps locally, returning the surviving-cell tally.
		Remote: skandium.JSONCodec[cells, int](),
		Build: func(p skandium.Params) (skandium.Runner, error) {
			k := p.Int("k", 4)
			m := p.Int("m", 4)
			cellMS := p.Float("cell_ms", 5)
			if k < 1 || m < 1 || cellMS <= 0 {
				return nil, fmt.Errorf("sleepgrid: k/m/cell_ms must be positive")
			}
			cell := time.Duration(cellMS * float64(time.Millisecond))
			total := k * m
			fs := skandium.NewSplit("fs", func(c cells) ([]cells, error) {
				parts := k
				if c.N < total {
					parts = m
				}
				out := make([]cells, parts)
				for i := range out {
					out[i] = cells{N: c.N / parts}
				}
				return out, nil
			})
			fe := skandium.NewExec("fe", func(c cells) (int, error) {
				time.Sleep(cell)
				return 1, nil
			})
			fm := skandium.NewMerge("fm", func(parts []int) (int, error) {
				s := 0
				for _, v := range parts {
					s += v
				}
				return s, nil
			})
			inner := skandium.Map(fs, skandium.Seq(fe), fm)
			program := skandium.Map(fs, inner, fm)
			return skandium.NewRunner(program, cells{N: total}), nil
		},
	}
}

// chaosgridBlueprint is the sleep grid with seeded fault injection on the
// leaf muscle — the daemon's live demonstration of the fault-tolerance
// layer. Submit it with retries/partial policies and watch the retry and
// fault counters move; each leaf returns 1, so under a "skip" policy the
// job's result is exactly the number of surviving cells.
func chaosgridBlueprint() skandium.Blueprint {
	type cells struct {
		N int
	}
	return skandium.Blueprint{
		Name:        "chaosgrid",
		Description: "sleep grid with seeded fault injection on the leaf muscle (pair with retries/timeout_ms/partial)",
		Defaults: skandium.Params{
			"k": 4, "m": 4, "cell_ms": 2, "seed": 1,
			"fail_rate": 0.1, "panic_rate": 0.0, "latency_rate": 0.0, "latency_ms": 0, "fail_first": 0,
		},
		Build: func(p skandium.Params) (skandium.Runner, error) {
			k := p.Int("k", 4)
			m := p.Int("m", 4)
			cellMS := p.Float("cell_ms", 2)
			if k < 1 || m < 1 || cellMS <= 0 {
				return nil, fmt.Errorf("chaosgrid: k/m/cell_ms must be positive")
			}
			failRate := p.Float("fail_rate", 0.1)
			panicRate := p.Float("panic_rate", 0)
			latencyRate := p.Float("latency_rate", 0)
			if failRate < 0 || failRate > 1 || panicRate < 0 || panicRate > 1 || latencyRate < 0 || latencyRate > 1 {
				return nil, fmt.Errorf("chaosgrid: rates must be in [0,1]")
			}
			inj := chaos.New(chaos.Config{
				Seed:        int64(p.Int("seed", 1)),
				ErrorRate:   failRate,
				PanicRate:   panicRate,
				LatencyRate: latencyRate,
				Latency:     time.Duration(p.Float("latency_ms", 0) * float64(time.Millisecond)),
				FailFirst:   p.Int("fail_first", 0),
			})
			cell := time.Duration(cellMS * float64(time.Millisecond))
			total := k * m
			fs := skandium.NewSplit("fs", func(c cells) ([]cells, error) {
				parts := k
				if c.N < total {
					parts = m
				}
				out := make([]cells, parts)
				for i := range out {
					out[i] = cells{N: c.N / parts}
				}
				return out, nil
			})
			fe := skandium.NewExec("fe", chaos.Wrap(inj, func(c cells) (int, error) {
				time.Sleep(cell)
				return 1, nil
			}))
			fm := skandium.NewMerge("fm", func(parts []int) (int, error) {
				s := 0
				for _, v := range parts {
					s += v
				}
				return s, nil
			})
			inner := skandium.Map(fs, skandium.Seq(fe), fm)
			program := skandium.Map(fs, inner, fm)
			return skandium.NewRunner(program, cells{N: total}), nil
		},
	}
}
