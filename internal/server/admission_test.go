package server

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestOverloadShed is the overload acceptance scenario: with budget 1 and a
// one-slot wait queue, a third submission is shed with 429 + Retry-After,
// /healthz degrades to "overloaded", and /metrics exposes the shed and
// journal counters.
func TestOverloadShed(t *testing.T) {
	jn, states := openJournal(t, t.TempDir())
	_, ts := newTestDaemon(t, Config{
		Budget: 1, QueueMax: 1, Rebalance: 5 * time.Millisecond,
		Journal: jn, Recover: states,
	})
	base := ts.URL

	// Long cells so both jobs comfortably outlive the assertions.
	a := submitSleepgrid(t, base, 0, 300)
	b := submitSleepgrid(t, base, 0, 300)
	if a.State != "running" || b.State != "queued" {
		t.Fatalf("setup states = %s/%s, want running/queued", a.State, b.State)
	}

	resp, body := postJSON(t, base+"/jobs", map[string]any{
		"skeleton": "sleepgrid",
		"params":   map[string]any{"k": 4, "m": 4, "cell_ms": 300},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: status %d body %s, want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
	if !strings.Contains(string(body), `"rejected": "queue-full"`) {
		t.Fatalf("shed body %s, want rejected queue-full", body)
	}

	health := getJSON[map[string]any](t, base+"/healthz")
	if health["status"] != HealthOverloaded {
		t.Fatalf("health status = %v, want overloaded", health["status"])
	}
	if q, qm := health["queue"].(float64), health["queue_max"].(float64); q != 1 || qm != 1 {
		t.Fatalf("health queue = %v/%v, want 1/1", q, qm)
	}
	shed, ok := health["shed"].(map[string]any)
	if !ok || shed["queue-full"].(float64) != 1 {
		t.Fatalf("health shed = %v, want queue-full: 1", health["shed"])
	}
	if _, ok := health["journal"].(map[string]any); !ok {
		t.Fatalf("health journal counters missing: %v", health)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`skelrund_shed_total{reason="queue-full"} 1`,
		"skelrund_queue_len 1",
		"skelrund_queue_max 1",
		"skelrund_journal_appends_total",
		"skelrund_journal_fsyncs_total",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestInfeasibleGoal: once a completed run has taught the profile store a
// skeleton's work, a goal below the work/budget lower bound is rejected
// with 422 rather than accepted and inevitably missed — while generous
// goals keep being admitted (the gate is conservative).
func TestInfeasibleGoal(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Budget: 2, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	// Seed the profile: a 4×4 grid of 20ms cells is ~320ms of serial work,
	// so even the full budget of 2 cannot finish under ~160ms.
	seed := submitSleepgrid(t, base, 0, 20)
	waitState(t, base, seed.ID, "done", 20*time.Second)

	resp, body := postJSON(t, base+"/jobs", map[string]any{
		"skeleton": "sleepgrid",
		"params":   map[string]any{"k": 4, "m": 4, "cell_ms": 20},
		"goal_ms":  1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible submit: status %d body %s, want 422", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"rejected": "goal-infeasible"`) {
		t.Fatalf("infeasible body %s, want rejected goal-infeasible", body)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if want := `skelrund_shed_total{reason="goal-infeasible"} 1`; !strings.Contains(mbuf.String(), want) {
		t.Errorf("/metrics missing %q", want)
	}

	// A reachable goal is still admitted.
	ok := submitSleepgrid(t, base, 10000, 20)
	waitState(t, base, ok.ID, "done", 20*time.Second)
}

// TestEventLogTruncation: a ring smaller than the job's event count drops
// the oldest records, reports how many through the job view, and the NDJSON
// stream announces the gap with an explicit truncation marker instead of
// silently skipping sequence numbers.
func TestEventLogTruncation(t *testing.T) {
	const ring = 4
	_, ts := newTestDaemon(t, Config{Budget: 2, EventLog: ring, Rebalance: 5 * time.Millisecond})
	base := ts.URL

	j := submitSleepgrid(t, base, 0, 2) // 16 cells emit far more than 4 events
	v := waitState(t, base, j.ID, "done", 20*time.Second)
	if v.EventsDropped <= 0 {
		t.Fatalf("events_dropped = %d, want > 0 with a %d-slot ring", v.EventsDropped, ring)
	}
	if v.Events <= int64(ring) {
		t.Fatalf("events = %d, want more than the ring holds", v.Events)
	}

	recs := getNDJSON(t, base+"/jobs/"+j.ID+"/events")
	if len(recs) == 0 {
		t.Fatal("no event records")
	}
	first := recs[0]
	if first["ev"] != "truncated" {
		t.Fatalf("first record = %v, want the truncated marker", first)
	}
	lost := int64(first["truncated"].(float64))
	if lost != v.EventsDropped {
		t.Fatalf("marker lost = %d, want events_dropped %d", lost, v.EventsDropped)
	}
	if got := int64(len(recs) - 1); lost+got != v.Events {
		t.Fatalf("lost %d + streamed %d != total events %d", lost, got, v.Events)
	}
	// The retained records are the newest ones: sequence numbers resume
	// exactly where the marker says the gap ends.
	if seq := int64(recs[1]["seq"].(float64)); seq != lost {
		t.Fatalf("first retained seq = %d, want %d", seq, lost)
	}
}
