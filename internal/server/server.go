// Package server turns the skandium library into a long-running,
// network-facing service: an HTTP/JSON API to submit jobs against named
// registered skeletons, observe their events and LP/WCT timelines, adjust
// QoS at runtime — with a machine-wide LP budget divided across the per-job
// autonomic controllers by a core.Arbiter (the fleet-level analogue of the
// paper's asymmetric adaptation policy).
package server

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"runtime"
	"sort"
	"time"

	"sync"

	"skandium"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/event"
	"skandium/internal/journal"
	"skandium/internal/metrics"
	"skandium/internal/remote"
)

// Config tunes a Server.
type Config struct {
	// Budget is the machine-wide LP budget the arbiter divides across jobs
	// (default: 2 × GOMAXPROCS — sleep- and IO-bound muscles oversubscribe
	// safely; lower it for purely CPU-bound fleets).
	Budget int
	// Rebalance is the arbiter's reallocation period (default 25ms).
	Rebalance time.Duration
	// AnalysisTick is each job's periodic controller re-analysis (default
	// 5ms; see Stream.WithAnalysisTicker).
	AnalysisTick time.Duration
	// AnalysisInterval throttles event-driven analyses (default 2ms).
	AnalysisInterval time.Duration
	// DefaultPolicy names the adaptation policy for jobs that do not pick
	// one ("" = the paper rule). It also drives the arbiter's contraction
	// ordering. Unknown names are rejected by skelrund at startup.
	DefaultPolicy string
	// EventLog bounds the per-job event ring (default 8192 records).
	EventLog int
	// Clock substitutes the time source (tests).
	Clock clock.Clock

	// Journal is the write-ahead job journal; nil runs the daemon
	// memory-only (the historical behaviour). Every job state transition is
	// journaled before it is acted on.
	Journal *journal.Journal
	// Recover is the replayed job-state table from journal.Open: terminal
	// jobs are rehydrated to serve their persisted outcome, queued/running
	// jobs are re-queued for execution.
	Recover []journal.JobState
	// QueueMax bounds the number of jobs waiting for budget; submissions
	// beyond it are shed with an OverloadError (HTTP 429 + Retry-After).
	// 0 keeps the queue unbounded. With tenants configured the bound is
	// soft: guaranteed traffic (a tenant below its weighted quota) still
	// admits, stretching the queue by at most the quota sum.
	QueueMax int
	// Tenants maps tenant names to their weights in both the LP budget
	// division and the queue-quota math (unlisted tenants weigh 1).
	Tenants map[string]int
	// BrownoutAfter/BrownoutExit tune the overload hysteresis: how long
	// queue pressure must persist before the server browns out (sheds all
	// optional work, disables hedging) and how long calm must persist
	// before it recovers. Defaults 1s / 2s.
	BrownoutAfter time.Duration
	BrownoutExit  time.Duration
	// ShedSeed seeds the probabilistic shed and Retry-After jitter
	// (default 1; fix it to make overload behaviour reproducible).
	ShedSeed int64

	// Cluster, when set, routes eligible jobs (cluster-eligible blueprint,
	// shardable program, no WCT goal or fault envelope) to remote workers
	// instead of the local pool. Ineligible jobs run locally, unchanged.
	Cluster *remote.Cluster
}

// Server owns the job table, the arbiter and the fleet metrics. Build one
// with New, expose Handler over HTTP, stop with Drain/Close.
type Server struct {
	cfg       Config
	arb       *core.Arbiter
	fleet     *metrics.Fleet
	clk       clock.Clock
	stopArb   func()
	startTime time.Time
	jn        *journal.Journal   // nil = memory-only
	profiles  *core.ProfileStore // per-skeleton work/span, feeds admission
	adm       *admission         // tenant-fair front door (ladder + brownout)

	mu         sync.Mutex
	jobs       map[string]*job
	remoteJobs map[string]*job // currently executing on the cluster
	order      []string
	queue      []*job // accepted, waiting for budget (FIFO)
	nextID     int
	draining   bool
	recovered  int // jobs rehydrated or re-queued from the journal
}

// New builds a server and starts the arbiter's rebalance ticker.
func New(cfg Config) *Server {
	if cfg.Budget < 1 {
		cfg.Budget = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Rebalance <= 0 {
		cfg.Rebalance = 25 * time.Millisecond
	}
	if cfg.AnalysisTick <= 0 {
		cfg.AnalysisTick = 5 * time.Millisecond
	}
	if cfg.AnalysisInterval <= 0 {
		cfg.AnalysisInterval = 2 * time.Millisecond
	}
	if cfg.EventLog <= 0 {
		cfg.EventLog = 8192
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	s := &Server{
		cfg:        cfg,
		arb:        core.NewArbiter(cfg.Budget, cfg.Clock),
		fleet:      metrics.NewFleet(),
		clk:        cfg.Clock,
		jn:         cfg.Journal,
		profiles:   core.NewProfileStore(),
		jobs:       map[string]*job{},
		remoteJobs: map[string]*job{},
	}
	s.adm = newAdmission(admissionConfig{
		QueueMax:      cfg.QueueMax,
		Tenants:       cfg.Tenants,
		BrownoutAfter: cfg.BrownoutAfter,
		BrownoutExit:  cfg.BrownoutExit,
		Seed:          cfg.ShedSeed,
		Clock:         cfg.Clock,
		OnBrownout:    s.onBrownout,
	})
	for t, w := range cfg.Tenants {
		s.arb.SetTenantWeight(t, w)
	}
	if cfg.DefaultPolicy != "" {
		// The arbiter's contraction ordering follows the default policy.
		// skelrund validates the name at startup; an unknown name here (New
		// called programmatically) keeps the paper contract — loudly, so a
		// misspelled default is not silently misreported by job views.
		if p, err := core.NewPolicy(cfg.DefaultPolicy, cfg.ShedSeed); err == nil {
			s.arb.SetPolicy(p)
		} else {
			log.Printf("server: default policy %q unknown, keeping the paper contract: %v",
				cfg.DefaultPolicy, err)
		}
	}
	if cfg.Cluster != nil {
		cfg.Cluster.SetOnNodeEvent(s.onNodeEvent)
	}
	s.startTime = s.clk.Now()
	s.fleet.SetStart(s.startTime)
	s.stopArb = s.arb.StartTicker(cfg.Rebalance)
	s.recover(cfg.Recover)
	return s
}

// Budget returns the machine-wide LP budget.
func (s *Server) Budget() int { return s.arb.Budget() }

// Arbiter exposes the budget arbiter (API handlers, tests).
func (s *Server) Arbiter() *core.Arbiter { return s.arb }

// Fleet exposes the aggregate metrics recorder.
func (s *Server) Fleet() *metrics.Fleet { return s.fleet }

// SubmitSpec is a decoded job submission.
type SubmitSpec struct {
	Skeleton  string
	Params    skandium.Params
	Goal      time.Duration // 0 disables autonomic adaptation
	MaxLP     int           // per-job LP QoS cap; 0 = uncapped
	InitialLP int           // starting LP (default 1, the paper's setup)
	// Policy names the adaptation rule driving this job's controller
	// ("" = the server's DefaultPolicy, then the paper rule). Unknown
	// names are rejected synchronously at submit.
	Policy string

	// Tenant names whose traffic the job is ("" = the default tenant);
	// Priority ranks it on the admission ladder: < 0 is batch work shed
	// first, 0 is normal, > 0 rides until the hard queue-full wall.
	Tenant   string
	Priority int

	// Fault tolerance (all optional; zero values reproduce the historical
	// fail-fast behaviour).
	MuscleTimeout time.Duration // per-muscle deadline; 0 = none
	RetryAttempts int           // total attempts per muscle; <= 1 = no retry
	RetryBackoff  time.Duration // base delay of the exponential backoff
	Partial       string        // "", "failfast", "skip" or "substitute"
	Substitute    any           // stand-in value when Partial == "substitute"
}

// parsePartial validates the submission's partial-failure policy name.
func parsePartial(name string, sub any) (skandium.PartialPolicy, error) {
	switch name {
	case "", "failfast":
		return skandium.FailFast(), nil
	case "skip":
		return skandium.SkipFailed(), nil
	case "substitute":
		return skandium.Substitute(sub), nil
	default:
		return skandium.PartialPolicy{}, fmt.Errorf("server: unknown partial policy %q (want failfast, skip or substitute)", name)
	}
}

// Submit accepts a job: the blueprint is compiled immediately (rejecting
// bad params synchronously), then the job either starts — when the budget
// has room — or queues. Admission control runs first: during drain all
// submissions are refused; the tenant-fair admission ladder sheds optional
// work under pressure with OverloadError; a WCT goal the predictor's
// profile proves unreachable under the whole budget is rejected with
// InfeasibleError rather than accepted and missed.
func (s *Server) Submit(spec SubmitSpec) (*job, error) {
	tenant := core.CanonTenant(spec.Tenant)
	bp, ok := skandium.LookupBlueprint(spec.Skeleton)
	if !ok {
		return nil, fmt.Errorf("server: unknown skeleton %q", spec.Skeleton)
	}
	if spec.Params == nil {
		spec.Params = skandium.Params{}
	}
	runner, err := bp.Build(spec.Params)
	if err != nil {
		return nil, fmt.Errorf("server: build %s: %w", spec.Skeleton, err)
	}
	if spec.InitialLP < 1 {
		spec.InitialLP = 1
	}
	partial, err := parsePartial(spec.Partial, spec.Substitute)
	if err != nil {
		return nil, err
	}
	policy := spec.Policy
	if policy == "" {
		policy = s.cfg.DefaultPolicy
	}
	if policy != "" {
		if _, err := core.NewPolicy(policy, 0); err != nil {
			return nil, err
		}
	}
	if spec.Goal > 0 {
		if pr, ok := s.profiles.Lookup(spec.Skeleton); ok &&
			!core.Feasible(spec.Goal, pr.Work, pr.Span, s.arb.Budget()) {
			s.fleet.ShedTenant(tenant, metrics.ShedInfeasible)
			return nil, &InfeasibleError{
				Skeleton: spec.Skeleton, Goal: spec.Goal,
				Work: pr.Work, Span: pr.Span, Budget: s.arb.Budget(),
			}
		}
	}
	if s.Draining() {
		s.fleet.ShedTenant(tenant, metrics.ShedDraining)
		return nil, ErrDraining
	}

	// The ladder rules outside s.mu (admission is a leaf component with its
	// own queue accounting), so a brownout transition it trips can call
	// straight back into the server.
	v := s.adm.decide(tenant, spec.Priority)
	if !v.admit {
		s.fleet.ShedTenant(tenant, v.reason)
		return nil, &OverloadError{Reason: v.reason, Queued: v.queued, RetryAfter: v.retryAfter}
	}

	s.mu.Lock()
	if s.draining {
		// Drain began between the ladder ruling and here: give the reserved
		// queue slot back and refuse.
		s.mu.Unlock()
		s.adm.dequeued(tenant)
		s.fleet.ShedTenant(tenant, metrics.ShedDraining)
		return nil, ErrDraining
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%d", s.nextID),
		skeleton: spec.Skeleton,
		program:  runner.Program(),
		params:   spec.Params,
		runner:   runner,
		goal:     spec.Goal,
		maxLP:    spec.MaxLP,
		initLP:   spec.InitialLP,
		policy:   policy,
		tenant:   tenant,
		priority: spec.Priority,
		timeout:  spec.MuscleTimeout,
		retry:    skandium.RetryPolicy{MaxAttempts: spec.RetryAttempts, BaseDelay: spec.RetryBackoff},
		partial:  partial,
		created:  s.clk.Now(),
		state:    stateQueued,
		remoteOK: s.cfg.Cluster != nil && bp.Remote != nil &&
			spec.Goal == 0 && spec.MuscleTimeout == 0 &&
			spec.RetryAttempts <= 1 && spec.Partial == "",
	}
	j.log = newEventLog(s.cfg.EventLog, j.created)
	j.rec = s.fleet.Job(j.id)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	if s.jn != nil {
		// Write-ahead: the submission is durable before the job can start.
		_ = s.jn.Submit(j.id, toJournalSpec(spec, j.program))
	}
	s.admitLocked()
	s.mu.Unlock()
	return j, nil
}

// policySeed derives a stable per-job seed for stochastic policies.
func policySeed(id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return int64(h.Sum64())
}

// ErrDraining rejects submissions during shutdown.
var ErrDraining = fmt.Errorf("server: draining, not accepting jobs")

// OverloadError sheds a submission on the admission ladder. The HTTP layer
// renders it as 429 with a Retry-After hint derived from the drain rate.
type OverloadError struct {
	Reason     string // metrics.Shed* label naming the rung that refused
	Queued     int
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	reason := e.Reason
	if reason == "" {
		reason = metrics.ShedQueueFull
	}
	return fmt.Sprintf("server: overloaded (%s), %d jobs already queued (retry in %v)", reason, e.Queued, e.RetryAfter)
}

// onBrownout reacts to a brownout transition: cluster hedging is disabled
// while browned out (speculative duplicates are the first optional load to
// shed) and the transition is threaded into the event log of every live
// job, so a job's timeline shows the overload window that shaped it.
func (s *Server) onBrownout(on bool, at time.Time) {
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.SetHedging(!on)
	}
	kind := "brownout-off"
	if on {
		kind = "brownout-on"
	}
	s.mu.Lock()
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			live = append(live, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range live {
		j.log.append(eventRecord{
			TMS:  float64(at.Sub(j.log.start)) / float64(time.Millisecond),
			Ev:   fmt.Sprintf("admission@%s", kind),
			Kind: "admission", When: kind, Where: "admission",
		})
	}
}

// InfeasibleError rejects a submission whose WCT goal is provably
// unreachable: even granted the whole budget, the skeleton's observed
// work/span lower-bounds the makespan above the goal.
type InfeasibleError struct {
	Skeleton   string
	Goal       time.Duration
	Work, Span time.Duration
	Budget     int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf(
		"server: goal %v for %s is infeasible: observed work %v / span %v lower-bound the makespan above the goal even at the full budget of %d",
		e.Goal, e.Skeleton, e.Work, e.Span, e.Budget)
}

// admitLocked starts queued jobs while the arbiter has capacity. Caller
// holds s.mu.
func (s *Server) admitLocked() {
	for len(s.queue) > 0 {
		j := s.queue[0]
		if err := s.arb.AdmitFor(j.id, j.tenant, j); err != nil {
			return // at capacity (or duplicate — impossible by construction)
		}
		s.queue = s.queue[1:]
		s.adm.started(j.tenant)
		s.start(j)
	}
}

// start launches an admitted job's stream. The arbiter has already set the
// job's grant (Admit rebalances), so the stream starts capped: the sum of
// pool LPs never exceeds the budget, not even transiently.
func (s *Server) start(j *job) {
	if s.cfg.Cluster != nil && s.remoteEligible(j) {
		s.startRemote(j)
		return
	}
	j.mu.Lock()
	grant := j.grant
	if grant < 1 {
		grant = 1
	}
	opts := []skandium.Option{
		skandium.WithLP(j.initLP),
		skandium.WithMaxLP(j.maxLP),
		skandium.WithLPCap(grant),
		skandium.WithClock(s.clk),
		skandium.WithGauge(j.rec.Gauge),
		skandium.WithListener(j.log.listener()),
		skandium.WithListener(j.rec.FaultListener()),
		skandium.WithPartialFailure(j.partial),
	}
	if j.timeout > 0 {
		opts = append(opts, skandium.WithMuscleTimeout(j.timeout))
	}
	if j.retry.MaxAttempts > 1 {
		opts = append(opts, skandium.WithRetry(j.retry))
	}
	if j.goal > 0 {
		opts = append(opts,
			skandium.WithWCTGoal(j.goal),
			skandium.WithAnalysisInterval(s.cfg.AnalysisInterval),
			skandium.WithAnalysisTicker(s.cfg.AnalysisTick),
		)
		if j.policy != "" {
			// A fresh instance per start: stateful policies (hillclimb,
			// bandit) must not be shared across concurrent controllers. The
			// seed derives from the job id so re-runs reproduce.
			if p, err := skandium.NewPolicy(j.policy, policySeed(j.id)); err == nil {
				opts = append(opts, skandium.WithPolicy(p))
			} else {
				// Submit validates policy names, but a journal written by a
				// binary with a richer registry (newer build, runtime-
				// registered policy) can recover a name this one does not
				// know. Fall back to the paper rule visibly: log the
				// fallback into the job's event stream and stop reporting
				// the unhonoured name in job views.
				j.log.append(eventRecord{
					TMS: float64(s.clk.Now().Sub(j.log.start)) / float64(time.Millisecond),
					Ev:  fmt.Sprintf("policy %q unknown to this binary: falling back to the paper rule", j.policy),
				})
				j.policy = ""
			}
		}
	}
	if s.jn != nil {
		// Write-ahead: the start is durable before any muscle runs, and
		// fault counters are journaled as they advance so a crash cannot
		// zero them.
		_ = s.jn.Start(j.id)
		opts = append(opts, skandium.WithListener(s.faultJournalListener(j)))
	}
	j.handle = j.runner.Start(opts...)
	j.state = stateRunning
	j.started = s.clk.Now()
	handle := j.handle
	j.mu.Unlock()
	go s.watch(j, handle)
}

// faultJournalListener persists a job's cumulative retry/fault counters on
// every fault-vocabulary event. It runs on worker goroutines, so it only
// touches atomics and the journal's own lock.
func (s *Server) faultJournalListener(j *job) event.Listener {
	return event.Func(func(e *event.Event) any {
		switch e.Where {
		case event.Retry:
			j.faultRetries.Add(1)
		case event.Fault:
			j.faultFaults.Add(1)
		default:
			return e.Param
		}
		_ = s.jn.Fault(j.id, journal.FaultCounts{
			Retries: j.prior.Retries + j.faultRetries.Load(),
			Faults:  j.prior.Faults + j.faultFaults.Load(),
		})
		return e.Param
	})
}

// watch waits for a job to finish, persists the outcome, returns its
// budget and admits the next queued job.
func (s *Server) watch(j *job, h skandium.Handle) {
	res, err := h.Result()
	now := s.clk.Now()

	j.mu.Lock()
	j.finished = now
	j.result, j.err = res, err
	switch {
	case err == nil:
		j.state = stateDone
	case j.canceled || err == errCanceled || err == errShutdown || err == skandium.ErrClosed:
		j.state = stateCanceled
	default:
		j.state = stateFailed
	}
	state := j.state
	j.mu.Unlock()

	if s.jn != nil {
		fc := faultCounts(j.totalFaults(h))
		switch state {
		case stateDone:
			_ = s.jn.Finish(j.id, journal.StateDone, summarize(res), "", fc)
		case stateFailed:
			_ = s.jn.Finish(j.id, journal.StateFailed, "", err.Error(), fc)
		case stateCanceled:
			_ = s.jn.Cancel(j.id, err.Error())
		}
	}
	if state == stateDone {
		// Feed the admission-control profile: busy time is the serial work,
		// the controller's best-effort estimate is the span (zero without a
		// goal — the work bound still applies).
		var span time.Duration
		if d := h.Demand(); d.Valid && d.BestWCT > 0 {
			span = d.BestWCT
		}
		s.profiles.Observe(j.skeleton, h.Stats().BusyTime, span)
	}
	s.adm.finished(now) // feed the drain-rate estimate behind Retry-After

	j.rec.Gauge(now, 0, 0) // the aggregate series drops to reality
	j.log.close()
	s.arb.Release(j.id)
	h.Close()

	s.mu.Lock()
	s.admitLocked()
	s.mu.Unlock()
}

// faultCounts converts the fault stats into their journal form.
func faultCounts(fs skandium.FaultStats) journal.FaultCounts {
	return journal.FaultCounts{
		Retries: fs.Retries, Faults: fs.Faults, Timeouts: fs.Timeouts,
		Skipped: fs.Skipped, Substituted: fs.Substituted,
	}
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobIDs returns all job ids in submission order.
func (s *Server) JobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Cancel aborts a job. Queued jobs are canceled in place; running jobs are
// canceled through their execution (running muscles finish, nothing new
// starts). Unknown ids report false.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	wasQueued := false
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			wasQueued = true
			break
		}
	}
	s.mu.Unlock()
	if wasQueued {
		s.adm.dequeued(j.tenant)
	}

	j.mu.Lock()
	j.canceled = true
	h := j.handle
	canceledInPlace := false
	if h == nil && !j.state.terminal() {
		j.state = stateCanceled
		j.finished = s.clk.Now()
		j.err = errCanceled
		canceledInPlace = true
	}
	j.mu.Unlock()
	if h != nil {
		h.Cancel(errCanceled) // watch journals the terminal state
	} else {
		if canceledInPlace && s.jn != nil {
			_ = s.jn.Cancel(j.id, errCanceled.Error())
		}
		j.log.close()
	}
	return true
}

// AdjustQoS changes a running job's WCT goal and/or LP cap and triggers an
// immediate rebalance so the new wish is arbitrated right away. Nil fields
// keep the current value.
func (s *Server) AdjustQoS(id string, goal *time.Duration, maxLP *int) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no job %q", id)
	}
	j.mu.Lock()
	if goal != nil {
		j.goal = *goal
	}
	if maxLP != nil {
		j.maxLP = *maxLP
	}
	h := j.handle
	goalNow, maxNow := j.goal, j.maxLP
	j.mu.Unlock()
	if h != nil {
		if goal != nil {
			h.SetGoal(goalNow)
		}
		if maxLP != nil {
			h.SetMaxLP(maxNow)
		}
	}
	s.arb.Rebalance()
	return nil
}

// BeginDrain stops accepting submissions; running and queued jobs proceed.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether the server is refusing submissions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Health degradation states for /healthz, most severe first.
const (
	HealthDraining   = "draining"    // shutting down, refusing submissions
	HealthRecovering = "recovering"  // journal-recovered jobs still queued
	HealthBrownedOut = "browned-out" // sustained overload, optional work shed
	HealthOverloaded = "overloaded"  // wait queue at capacity, shedding
	HealthOK         = "ok"
)

// Health reports the daemon's degradation state. Brownout outranks
// overloaded: a full queue is an instantaneous condition, brownout is the
// sustained one the hysteresis has confirmed.
func (s *Server) Health() string {
	// Polling re-evaluates the brownout hysteresis even when traffic has
	// gone quiet — the health probe is what observes the recovery.
	s.adm.poll(s.clk.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return HealthDraining
	case s.recoveringLocked():
		return HealthRecovering
	case s.adm.isBrownedOut():
		return HealthBrownedOut
	case s.cfg.QueueMax > 0 && len(s.queue) >= s.cfg.QueueMax:
		return HealthOverloaded
	default:
		return HealthOK
	}
}

// recoveringLocked reports whether any journal-recovered job is still
// waiting for budget. Caller holds s.mu.
func (s *Server) recoveringLocked() bool {
	for _, j := range s.queue {
		if j.recovered {
			return true
		}
	}
	return false
}

// QueueDepth returns the number of jobs waiting for budget and the bound
// (0 = unbounded).
func (s *Server) QueueDepth() (queued, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.cfg.QueueMax
}

// RecoveredJobs returns how many jobs the journal replay rehydrated or
// re-queued.
func (s *Server) RecoveredJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Journal exposes the write-ahead journal (nil when memory-only).
func (s *Server) Journal() *journal.Journal { return s.jn }

// Drain refuses new submissions and waits until every accepted job reached
// a terminal state or ctx expires; on expiry the stragglers are canceled
// (running muscles still finish — the pool never interrupts them). The
// returned error is ctx's when the deadline cut the drain short.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.liveJobs() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			for _, id := range s.JobIDs() {
				if j, ok := s.Job(id); ok {
					st, _, _, _, _, _, _ := j.snapshot()
					if !st.terminal() {
						s.Cancel(id)
					}
				}
			}
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Server) liveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Close stops the arbiter and tears every job down (canceling what still
// runs). Call after Drain for a graceful stop, or alone for a hard one.
func (s *Server) Close() {
	s.stopArb()
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.queue = nil
	s.draining = true
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		h := j.handle
		if h == nil && !j.state.terminal() {
			j.state = stateCanceled
			j.err = errShutdown
			j.finished = s.clk.Now()
		}
		j.mu.Unlock()
		if h != nil {
			h.Cancel(errShutdown)
			h.Close()
		}
		j.log.close()
	}
}

// sortedStates summarizes job states for /healthz and /metrics.
func (s *Server) stateCounts() map[jobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[jobState]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// statesInOrder lists the states deterministically for text exposition.
func statesInOrder(m map[jobState]int) []jobState {
	states := make([]jobState, 0, len(m))
	for st := range m {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	return states
}
