// Package server turns the skandium library into a long-running,
// network-facing service: an HTTP/JSON API to submit jobs against named
// registered skeletons, observe their events and LP/WCT timelines, adjust
// QoS at runtime — with a machine-wide LP budget divided across the per-job
// autonomic controllers by a core.Arbiter (the fleet-level analogue of the
// paper's asymmetric adaptation policy).
package server

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"sync"

	"skandium"
	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/metrics"
)

// Config tunes a Server.
type Config struct {
	// Budget is the machine-wide LP budget the arbiter divides across jobs
	// (default: 2 × GOMAXPROCS — sleep- and IO-bound muscles oversubscribe
	// safely; lower it for purely CPU-bound fleets).
	Budget int
	// Rebalance is the arbiter's reallocation period (default 25ms).
	Rebalance time.Duration
	// AnalysisTick is each job's periodic controller re-analysis (default
	// 5ms; see Stream.WithAnalysisTicker).
	AnalysisTick time.Duration
	// AnalysisInterval throttles event-driven analyses (default 2ms).
	AnalysisInterval time.Duration
	// EventLog bounds the per-job event ring (default 8192 records).
	EventLog int
	// Clock substitutes the time source (tests).
	Clock clock.Clock
}

// Server owns the job table, the arbiter and the fleet metrics. Build one
// with New, expose Handler over HTTP, stop with Drain/Close.
type Server struct {
	cfg       Config
	arb       *core.Arbiter
	fleet     *metrics.Fleet
	clk       clock.Clock
	stopArb   func()
	startTime time.Time

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	queue    []*job // accepted, waiting for budget (FIFO)
	nextID   int
	draining bool
}

// New builds a server and starts the arbiter's rebalance ticker.
func New(cfg Config) *Server {
	if cfg.Budget < 1 {
		cfg.Budget = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Rebalance <= 0 {
		cfg.Rebalance = 25 * time.Millisecond
	}
	if cfg.AnalysisTick <= 0 {
		cfg.AnalysisTick = 5 * time.Millisecond
	}
	if cfg.AnalysisInterval <= 0 {
		cfg.AnalysisInterval = 2 * time.Millisecond
	}
	if cfg.EventLog <= 0 {
		cfg.EventLog = 8192
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	s := &Server{
		cfg:   cfg,
		arb:   core.NewArbiter(cfg.Budget, cfg.Clock),
		fleet: metrics.NewFleet(),
		clk:   cfg.Clock,
		jobs:  map[string]*job{},
	}
	s.startTime = s.clk.Now()
	s.fleet.SetStart(s.startTime)
	s.stopArb = s.arb.StartTicker(cfg.Rebalance)
	return s
}

// Budget returns the machine-wide LP budget.
func (s *Server) Budget() int { return s.arb.Budget() }

// Arbiter exposes the budget arbiter (API handlers, tests).
func (s *Server) Arbiter() *core.Arbiter { return s.arb }

// Fleet exposes the aggregate metrics recorder.
func (s *Server) Fleet() *metrics.Fleet { return s.fleet }

// SubmitSpec is a decoded job submission.
type SubmitSpec struct {
	Skeleton  string
	Params    skandium.Params
	Goal      time.Duration // 0 disables autonomic adaptation
	MaxLP     int           // per-job LP QoS cap; 0 = uncapped
	InitialLP int           // starting LP (default 1, the paper's setup)

	// Fault tolerance (all optional; zero values reproduce the historical
	// fail-fast behaviour).
	MuscleTimeout time.Duration // per-muscle deadline; 0 = none
	RetryAttempts int           // total attempts per muscle; <= 1 = no retry
	RetryBackoff  time.Duration // base delay of the exponential backoff
	Partial       string        // "", "failfast", "skip" or "substitute"
	Substitute    any           // stand-in value when Partial == "substitute"
}

// parsePartial validates the submission's partial-failure policy name.
func parsePartial(name string, sub any) (skandium.PartialPolicy, error) {
	switch name {
	case "", "failfast":
		return skandium.FailFast(), nil
	case "skip":
		return skandium.SkipFailed(), nil
	case "substitute":
		return skandium.Substitute(sub), nil
	default:
		return skandium.PartialPolicy{}, fmt.Errorf("server: unknown partial policy %q (want failfast, skip or substitute)", name)
	}
}

// Submit accepts a job: the blueprint is compiled immediately (rejecting
// bad params synchronously), then the job either starts — when the budget
// has room — or queues. During drain all submissions are refused.
func (s *Server) Submit(spec SubmitSpec) (*job, error) {
	bp, ok := skandium.LookupBlueprint(spec.Skeleton)
	if !ok {
		return nil, fmt.Errorf("server: unknown skeleton %q", spec.Skeleton)
	}
	if spec.Params == nil {
		spec.Params = skandium.Params{}
	}
	runner, err := bp.Build(spec.Params)
	if err != nil {
		return nil, fmt.Errorf("server: build %s: %w", spec.Skeleton, err)
	}
	if spec.InitialLP < 1 {
		spec.InitialLP = 1
	}
	partial, err := parsePartial(spec.Partial, spec.Substitute)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%d", s.nextID),
		skeleton: spec.Skeleton,
		program:  runner.Program(),
		params:   spec.Params,
		runner:   runner,
		goal:     spec.Goal,
		maxLP:    spec.MaxLP,
		initLP:   spec.InitialLP,
		timeout:  spec.MuscleTimeout,
		retry:    skandium.RetryPolicy{MaxAttempts: spec.RetryAttempts, BaseDelay: spec.RetryBackoff},
		partial:  partial,
		created:  s.clk.Now(),
		state:    stateQueued,
	}
	j.log = newEventLog(s.cfg.EventLog, j.created)
	j.rec = s.fleet.Job(j.id)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	s.admitLocked()
	s.mu.Unlock()
	return j, nil
}

// ErrDraining rejects submissions during shutdown.
var ErrDraining = fmt.Errorf("server: draining, not accepting jobs")

// admitLocked starts queued jobs while the arbiter has capacity. Caller
// holds s.mu.
func (s *Server) admitLocked() {
	for len(s.queue) > 0 {
		j := s.queue[0]
		if err := s.arb.Admit(j.id, j); err != nil {
			return // at capacity (or duplicate — impossible by construction)
		}
		s.queue = s.queue[1:]
		s.start(j)
	}
}

// start launches an admitted job's stream. The arbiter has already set the
// job's grant (Admit rebalances), so the stream starts capped: the sum of
// pool LPs never exceeds the budget, not even transiently.
func (s *Server) start(j *job) {
	j.mu.Lock()
	grant := j.grant
	if grant < 1 {
		grant = 1
	}
	opts := []skandium.Option{
		skandium.WithLP(j.initLP),
		skandium.WithMaxLP(j.maxLP),
		skandium.WithLPCap(grant),
		skandium.WithClock(s.clk),
		skandium.WithGauge(j.rec.Gauge),
		skandium.WithListener(j.log.listener()),
		skandium.WithListener(j.rec.FaultListener()),
		skandium.WithPartialFailure(j.partial),
	}
	if j.timeout > 0 {
		opts = append(opts, skandium.WithMuscleTimeout(j.timeout))
	}
	if j.retry.MaxAttempts > 1 {
		opts = append(opts, skandium.WithRetry(j.retry))
	}
	if j.goal > 0 {
		opts = append(opts,
			skandium.WithWCTGoal(j.goal),
			skandium.WithAnalysisInterval(s.cfg.AnalysisInterval),
			skandium.WithAnalysisTicker(s.cfg.AnalysisTick),
		)
	}
	j.handle = j.runner.Start(opts...)
	j.state = stateRunning
	j.started = s.clk.Now()
	handle := j.handle
	j.mu.Unlock()
	go s.watch(j, handle)
}

// watch waits for a job to finish, returns its budget and admits the next
// queued job.
func (s *Server) watch(j *job, h skandium.Handle) {
	res, err := h.Result()
	now := s.clk.Now()

	j.mu.Lock()
	j.finished = now
	j.result, j.err = res, err
	switch {
	case err == nil:
		j.state = stateDone
	case j.canceled || err == errCanceled || err == errShutdown || err == skandium.ErrClosed:
		j.state = stateCanceled
	default:
		j.state = stateFailed
	}
	j.mu.Unlock()

	j.rec.Gauge(now, 0, 0) // the aggregate series drops to reality
	j.log.close()
	s.arb.Release(j.id)
	h.Close()

	s.mu.Lock()
	s.admitLocked()
	s.mu.Unlock()
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobIDs returns all job ids in submission order.
func (s *Server) JobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Cancel aborts a job. Queued jobs are canceled in place; running jobs are
// canceled through their execution (running muscles finish, nothing new
// starts). Unknown ids report false.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	j.canceled = true
	h := j.handle
	if h == nil && !j.state.terminal() {
		j.state = stateCanceled
		j.finished = s.clk.Now()
		j.err = errCanceled
	}
	j.mu.Unlock()
	if h != nil {
		h.Cancel(errCanceled)
	} else {
		j.log.close()
	}
	return true
}

// AdjustQoS changes a running job's WCT goal and/or LP cap and triggers an
// immediate rebalance so the new wish is arbitrated right away. Nil fields
// keep the current value.
func (s *Server) AdjustQoS(id string, goal *time.Duration, maxLP *int) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no job %q", id)
	}
	j.mu.Lock()
	if goal != nil {
		j.goal = *goal
	}
	if maxLP != nil {
		j.maxLP = *maxLP
	}
	h := j.handle
	goalNow, maxNow := j.goal, j.maxLP
	j.mu.Unlock()
	if h != nil {
		if goal != nil {
			h.SetGoal(goalNow)
		}
		if maxLP != nil {
			h.SetMaxLP(maxNow)
		}
	}
	s.arb.Rebalance()
	return nil
}

// BeginDrain stops accepting submissions; running and queued jobs proceed.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether the server is refusing submissions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain refuses new submissions and waits until every accepted job reached
// a terminal state or ctx expires; on expiry the stragglers are canceled
// (running muscles still finish — the pool never interrupts them). The
// returned error is ctx's when the deadline cut the drain short.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.liveJobs() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			for _, id := range s.JobIDs() {
				if j, ok := s.Job(id); ok {
					st, _, _, _, _, _, _ := j.snapshot()
					if !st.terminal() {
						s.Cancel(id)
					}
				}
			}
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Server) liveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Close stops the arbiter and tears every job down (canceling what still
// runs). Call after Drain for a graceful stop, or alone for a hard one.
func (s *Server) Close() {
	s.stopArb()
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.queue = nil
	s.draining = true
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		h := j.handle
		if h == nil && !j.state.terminal() {
			j.state = stateCanceled
			j.err = errShutdown
			j.finished = s.clk.Now()
		}
		j.mu.Unlock()
		if h != nil {
			h.Cancel(errShutdown)
			h.Close()
		}
		j.log.close()
	}
}

// sortedStates summarizes job states for /healthz and /metrics.
func (s *Server) stateCounts() map[jobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[jobState]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// statesInOrder lists the states deterministically for text exposition.
func statesInOrder(m map[jobState]int) []jobState {
	states := make([]jobState, 0, len(m))
	for st := range m {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	return states
}
