package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skandium"
	"skandium/internal/core"
	"skandium/internal/metrics"
)

// jobState is the lifecycle of one submitted job.
type jobState string

// Job lifecycle states.
const (
	stateQueued   jobState = "queued"   // accepted, waiting for budget
	stateRunning  jobState = "running"  // admitted, executing
	stateDone     jobState = "done"     // finished successfully
	stateFailed   jobState = "failed"   // a muscle failed
	stateCanceled jobState = "canceled" // canceled by request or shutdown
)

// errCanceled resolves executions canceled through the API.
var errCanceled = fmt.Errorf("server: job canceled by request")

// errShutdown resolves executions cut off by daemon shutdown.
var errShutdown = fmt.Errorf("server: daemon shutting down")

// job is one submitted execution: the erased runner plus its QoS, event
// log, timeline recorder and arbitration state. It implements core.Member,
// so the arbiter reads its controller's demand and imposes grants directly.
type job struct {
	id       string
	skeleton string
	program  string
	params   skandium.Params
	runner   skandium.Runner
	goal     time.Duration
	maxLP    int
	initLP   int
	// policy names the adaptation rule driving this job's controller
	// ("" = the paper rule); resolved against the server default at submit.
	policy string
	// tenant (canonical, never "") and priority place the job on the
	// admission ladder and in the arbiter's weighted budget division.
	tenant   string
	priority int
	timeout  time.Duration
	retry    skandium.RetryPolicy
	partial  skandium.PartialPolicy
	log      *eventLog
	rec      *metrics.Recorder
	// remoteOK marks the job routable to the cluster: eligible blueprint,
	// no local-only QoS/fault knobs (shardability is checked at start).
	remoteOK bool

	// Crash-recovery state. recovered marks a job re-queued from the
	// journal (it re-runs; muscles are pure). restored marks a terminal job
	// rehydrated from the snapshot: it has no runner or handle, only its
	// persisted outcome. prior carries fault counters journaled before the
	// crash; faultRetries/faultFaults accumulate this run's, for mid-run
	// journaling (listener goroutines, hence atomics).
	recovered     bool
	restored      bool
	resultSummary string
	prior         skandium.FaultStats
	faultRetries  atomic.Uint64
	faultFaults   atomic.Uint64

	mu       sync.Mutex
	state    jobState
	grant    int
	handle   skandium.Handle
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error
	canceled bool
}

// Demand implements core.Member: the controller's wish once running, a
// minimal placeholder while queued (so a just-admitted job starts at one
// worker until its first analysis).
func (j *job) Demand() core.Demand {
	j.mu.Lock()
	h := j.handle
	j.mu.Unlock()
	if h == nil {
		return core.Demand{}
	}
	d := h.Demand()
	if d.CurrentLP == 0 {
		// No autonomic controller (no WCT goal): hold what the pool uses.
		d.CurrentLP = h.LP()
	}
	return d
}

// Grant implements core.Member: the arbiter's budget share becomes the
// stream's external LP cap.
func (j *job) Grant(n int) {
	j.mu.Lock()
	j.grant = n
	h := j.handle
	j.mu.Unlock()
	if h != nil {
		h.SetCap(n)
	}
}

// snapshot returns the mutable fields under the job lock.
func (j *job) snapshot() (state jobState, grant int, h skandium.Handle, started, finished time.Time, result any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.grant, j.handle, j.started, j.finished, j.result, j.err
}

// totalFaults merges the fault counters journaled before a crash with this
// run's (h is nil for restored or still-queued jobs).
func (j *job) totalFaults(h skandium.Handle) skandium.FaultStats {
	fs := j.prior
	if h != nil {
		cur := h.FaultStats()
		fs.Retries += cur.Retries
		fs.Faults += cur.Faults
		fs.Timeouts += cur.Timeouts
		fs.Skipped += cur.Skipped
		fs.Substituted += cur.Substituted
	}
	return fs
}

// terminal reports whether the state is final.
func (s jobState) terminal() bool {
	return s == stateDone || s == stateFailed || s == stateCanceled
}
