package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"reflect"
	"sort"
	"strconv"
	"time"

	"skandium"
)

// Handler returns the daemon's HTTP API:
//
//	GET    /healthz                   liveness + drain state
//	GET    /metrics                   text exposition of fleet/job/pool gauges
//	GET    /skeletons                 registered blueprint catalog
//	POST   /jobs                      submit a job
//	GET    /jobs                      list jobs
//	GET    /jobs/{id}                 one job's status/QoS/arbitration
//	GET    /jobs/{id}/decisions       the autonomic decision log
//	GET    /jobs/{id}/events          NDJSON event stream (?follow=1&from=N)
//	GET    /jobs/{id}/timeline        NDJSON LP/WCT timeline (+ decisions)
//	PATCH  /jobs/{id}/qos             adjust WCT goal / max LP at runtime
//	DELETE /jobs/{id}                 cancel a job
//	GET    /arbiter                   budget, grants and grant decisions
//	GET    /debug/pprof/...           runtime profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /skeletons", s.handleSkeletons)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/decisions", s.handleDecisions)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("PATCH /jobs/{id}/qos", s.handleQoS)
	mux.HandleFunc("POST /jobs/{id}/qos", s.handleQoS) // curl-friendly alias
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /arbiter", s.handleArbiter)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := s.Health()
	counts := s.stateCounts()
	jobs := map[string]int{}
	for _, st := range statesInOrder(counts) {
		jobs[string(st)] = counts[st]
	}
	queued, queueMax := s.QueueDepth()
	body := map[string]any{
		"status":    status,
		"budget":    s.Budget(),
		"jobs":      jobs,
		"queue":     queued,
		"queue_max": queueMax,
	}
	if n := s.RecoveredJobs(); n > 0 {
		body["recovered"] = n
	}
	if sheds := s.fleet.Sheds(); len(sheds) > 0 {
		body["shed"] = sheds
	}
	ast := s.adm.stats()
	adm := map[string]any{
		"browned_out": ast.BrownedOut,
		"brownouts":   ast.Brownouts,
	}
	if len(ast.Queued) > 0 {
		adm["queued"] = ast.Queued
	}
	if len(ast.Quotas) > 0 {
		adm["quotas"] = ast.Quotas
	}
	if len(ast.Weights) > 0 {
		adm["weights"] = ast.Weights
	}
	body["admission"] = adm
	if jn := s.Journal(); jn != nil {
		c := jn.Counters()
		body["journal"] = map[string]uint64{
			"appends": c.Appends, "fsyncs": c.Fsyncs, "rotations": c.Rotations,
			"compactions": c.Compactions, "torn": c.Torn, "replayed": c.Replayed,
		}
	}
	if cl := s.cfg.Cluster; cl != nil {
		nodes := cl.Nodes()
		views := make([]map[string]any, 0, len(nodes))
		for _, n := range nodes {
			v := map[string]any{
				"addr": n.Addr, "healthy": n.Healthy, "state": n.State, "enabled": n.Enabled,
				"grant": n.Grant, "tasks": n.Tasks,
				"lp": n.Report.LP, "active": n.Report.Active, "queued": n.Report.Queued,
			}
			if n.ConsecFails > 0 {
				v["consec_fails"] = n.ConsecFails
			}
			if n.LastErr != "" {
				v["last_error"] = n.LastErr
			}
			if n.LastCause != "" {
				v["last_cause"] = n.LastCause
			}
			views = append(views, v)
		}
		body["cluster"] = map[string]any{
			"workers":  len(nodes),
			"healthy":  cl.Healthy(),
			"serving":  cl.Serving(),
			"budget":   cl.Budget(),
			"granted":  cl.Granted(),
			"degraded": cl.Degraded(),
			"hedged":   cl.Hedged(),
			"nodes":    views,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSkeletons(w http.ResponseWriter, r *http.Request) {
	type bpView struct {
		Name        string          `json:"name"`
		Description string          `json:"description"`
		Defaults    skandium.Params `json:"defaults,omitempty"`
	}
	var out []bpView
	for _, b := range skandium.Blueprints() {
		out = append(out, bpView{Name: b.Name, Description: b.Description, Defaults: b.Defaults})
	}
	writeJSON(w, http.StatusOK, out)
}

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Skeleton  string          `json:"skeleton"`
	Params    skandium.Params `json:"params"`
	GoalMS    float64         `json:"goal_ms"`
	MaxLP     int             `json:"max_lp"`
	InitialLP int             `json:"initial_lp"`
	Policy    string          `json:"policy"`
	// Tenant identity and admission priority (both optional; the
	// X-Skel-Tenant header wins over the body field when both are set).
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Fault tolerance (all optional).
	TimeoutMS      float64 `json:"timeout_ms"`
	Retries        int     `json:"retries"`
	RetryBackoffMS float64 `json:"retry_backoff_ms"`
	Partial        string  `json:"partial"`
	Substitute     any     `json:"substitute"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad submit body: %w", err))
		return
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Skel-Tenant"); h != "" {
		tenant = h
	}
	j, err := s.Submit(SubmitSpec{
		Skeleton:      req.Skeleton,
		Params:        req.Params,
		Goal:          time.Duration(req.GoalMS * float64(time.Millisecond)),
		MaxLP:         req.MaxLP,
		InitialLP:     req.InitialLP,
		Policy:        req.Policy,
		Tenant:        tenant,
		Priority:      req.Priority,
		MuscleTimeout: time.Duration(req.TimeoutMS * float64(time.Millisecond)),
		RetryAttempts: req.Retries,
		RetryBackoff:  time.Duration(req.RetryBackoffMS * float64(time.Millisecond)),
		Partial:       req.Partial,
		Substitute:    req.Substitute,
	})
	var over *OverloadError
	var infeasible *InfeasibleError
	switch {
	case errors.Is(err, ErrDraining):
		// Even the drain hint is drain-rate-derived: tell the client when
		// the backlog (which still runs during graceful shutdown) should
		// have moved, instead of a hardcoded number of seconds.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(s.adm.retryAfter())))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": err.Error(), "rejected": "draining",
		})
		return
	case errors.As(err, &over):
		reason := over.Reason
		if reason == "" {
			reason = "queue-full"
		}
		secs := retryAfterSecs(over.RetryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(), "rejected": reason, "retry_after_s": secs,
		})
		return
	case errors.As(err, &infeasible):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error": err.Error(), "rejected": "goal-infeasible",
		})
		return
	case err != nil:
		code := http.StatusBadRequest
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobView(j))
}

// retryAfterSecs renders a Retry-After duration as whole seconds, never
// below 1 (a zero header would invite an immediate retry storm).
func retryAfterSecs(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// jobView is the API projection of one job.
type jobView struct {
	ID          string          `json:"id"`
	Skeleton    string          `json:"skeleton"`
	Program     string          `json:"program"`
	Params      skandium.Params `json:"params,omitempty"`
	State       string          `json:"state"`
	Tenant      string          `json:"tenant,omitempty"`
	Priority    int             `json:"priority,omitempty"`
	GoalMS      float64         `json:"goal_ms,omitempty"`
	MaxLP       int             `json:"max_lp,omitempty"`
	Policy      string          `json:"policy,omitempty"`
	LP          int             `json:"lp"`
	Active      int             `json:"active"`
	Grant       int             `json:"grant"`
	DesiredLP   int             `json:"desired_lp,omitempty"`
	OptimalLP   int             `json:"optimal_lp,omitempty"`
	PredictedMS float64         `json:"predicted_wct_ms,omitempty"`
	OvershootMS float64         `json:"overshoot_ms,omitempty"`
	Analyses    int             `json:"analyses"`
	Decisions   int             `json:"decisions"`
	Events      int64           `json:"events"`
	TasksRun    uint64          `json:"tasks_run"`
	BusyMS      float64         `json:"busy_ms"`
	CreatedMS   float64         `json:"created_ms"`
	StartedMS   float64         `json:"started_ms,omitempty"`
	FinishedMS  float64         `json:"finished_ms,omitempty"`
	Result      string          `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`

	// Fault-tolerance configuration and counters.
	TimeoutMS      float64 `json:"timeout_ms,omitempty"`
	RetryAttempts  int     `json:"retry_attempts,omitempty"`
	Partial        string  `json:"partial,omitempty"`
	Retries        uint64  `json:"retries_total,omitempty"`
	Faults         uint64  `json:"faults_total,omitempty"`
	Timeouts       uint64  `json:"timeouts_total,omitempty"`
	Skipped        uint64  `json:"skipped_total,omitempty"`
	Substituted    uint64  `json:"substituted_total,omitempty"`
	FailedBranches int     `json:"failed_branches,omitempty"`

	// Durability. Recovered marks a job that survived a daemon restart:
	// either re-queued from the journal (it re-ran) or rehydrated from the
	// snapshot (its persisted outcome is served). EventsDropped counts
	// records the bounded event ring evicted.
	Recovered     bool  `json:"recovered,omitempty"`
	EventsDropped int64 `json:"events_dropped,omitempty"`
}

// sinceStart renders a timestamp as ms since the fleet start (0 for zero
// times), keeping the API clock-agnostic.
func (s *Server) sinceStart(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	start := time.Time{}
	if smp := s.fleetStart(); !smp.IsZero() {
		start = smp
	}
	return float64(t.Sub(start)) / float64(time.Millisecond)
}

func (s *Server) fleetStart() time.Time {
	// The fleet start was fixed in New; recover it from any recorder-free
	// path by caching on the server would be overkill — store once.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startTime
}

func (s *Server) jobView(j *job) jobView {
	state, grant, h, started, finished, result, jerr := j.snapshot()
	v := jobView{
		ID:         j.id,
		Skeleton:   j.skeleton,
		Program:    j.program,
		Params:     j.params,
		State:      string(state),
		Tenant:     j.tenant,
		Priority:   j.priority,
		GoalMS:     float64(j.goal) / float64(time.Millisecond),
		MaxLP:      j.maxLP,
		Policy:     j.policy,
		Grant:      grant,
		Events:     j.log.len(),
		CreatedMS:  s.sinceStart(j.created),
		StartedMS:  s.sinceStart(started),
		FinishedMS: s.sinceStart(finished),
	}
	v.TimeoutMS = float64(j.timeout) / float64(time.Millisecond)
	v.RetryAttempts = j.retry.MaxAttempts
	v.Partial = j.partial.String()
	v.Recovered = j.recovered || j.restored
	v.EventsDropped = j.log.droppedCount()
	fs := j.totalFaults(h)
	v.Retries, v.Faults, v.Timeouts = fs.Retries, fs.Faults, fs.Timeouts
	v.Skipped, v.Substituted = fs.Skipped, fs.Substituted
	if h != nil {
		v.LP = h.LP()
		v.Active = h.Active()
		v.Analyses = h.Analyses()
		v.Decisions = len(h.Decisions())
		st := h.Stats()
		v.TasksRun = st.TasksRun
		v.BusyMS = float64(st.BusyTime) / float64(time.Millisecond)
		if f := h.Failures(); f != nil {
			v.FailedBranches = len(f.Failures)
		}
		if d := h.Demand(); d.Valid {
			v.DesiredLP = d.DesiredLP
			v.OptimalLP = d.OptimalLP
			v.PredictedMS = float64(d.PredictedWCT) / float64(time.Millisecond)
			v.OvershootMS = float64(d.Overshoot) / float64(time.Millisecond)
		}
	}
	if state.terminal() {
		v.LP = 0
		switch {
		case jerr != nil:
			v.Error = jerr.Error()
		case j.restored:
			v.Result = j.resultSummary // already summarized when journaled
		default:
			v.Result = summarize(result)
		}
	}
	return v
}

// summarize renders a job result compactly: scalars and small maps print
// as JSON, big collections print as a type+length sketch (nobody wants two
// million sorted ints in a status response).
func summarize(v any) string {
	if v == nil {
		return "null"
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array, reflect.Map:
		if rv.Len() > 64 {
			return fmt.Sprintf("%T of %d elements", v, rv.Len())
		}
	}
	b, err := json.Marshal(v)
	if err != nil || len(b) > 4096 {
		return fmt.Sprintf("%T", v)
	}
	return string(b)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var out []jobView
	for _, id := range s.JobIDs() {
		if j, ok := s.Job(id); ok {
			out = append(out, s.jobView(j))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, s.jobView(j))
	}
}

// decisionView is one autonomic adaptation in API form.
type decisionView struct {
	TMS         float64 `json:"t_ms"`
	OldLP       int     `json:"old_lp"`
	NewLP       int     `json:"new_lp"`
	PredictedMS float64 `json:"predicted_wct_ms"`
	BestMS      float64 `json:"best_wct_ms"`
	OptimalLP   int     `json:"optimal_lp"`
	Reason      string  `json:"reason"`
}

func (s *Server) decisionViews(ds []skandium.Decision) []decisionView {
	out := make([]decisionView, 0, len(ds))
	for _, d := range ds {
		out = append(out, decisionView{
			TMS:         s.sinceStart(d.Time),
			OldLP:       d.OldLP,
			NewLP:       d.NewLP,
			PredictedMS: float64(d.PredictedWCT) / float64(time.Millisecond),
			BestMS:      float64(d.BestWCT) / float64(time.Millisecond),
			OptimalLP:   d.OptimalLP,
			Reason:      d.Reason,
		})
	}
	return out
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	_, _, h, _, _, _, _ := j.snapshot()
	var ds []skandium.Decision
	if h != nil {
		ds = h.Decisions()
	}
	writeJSON(w, http.StatusOK, s.decisionViews(ds))
}

// handleEvents streams the job's event log as NDJSON. With ?follow=1 the
// response keeps streaming until the job finishes or the client leaves;
// ?from=N resumes after sequence number N-1.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	var from int64
	fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		recs, next, done, lost, changed := j.log.snapshot(from)
		if lost > 0 {
			// The ring evicted records between the reader's cursor and the
			// oldest retained one: say so explicitly instead of silently
			// skipping sequence numbers.
			first := next - int64(len(recs))
			if err := enc.Encode(eventRecord{Seq: first, Ev: "truncated", Truncated: lost}); err != nil {
				return
			}
		}
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
		if flusher != nil && (len(recs) > 0 || lost > 0) {
			flusher.Flush()
		}
		from = next
		if !follow || done {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// timelineRecord is one NDJSON line of the LP/WCT timeline: gauge samples
// ("lp") interleaved with controller decisions ("decision") in time order.
type timelineRecord struct {
	Type        string  `json:"type"`
	TMS         float64 `json:"t_ms"`
	Active      int     `json:"active,omitempty"`
	LP          int     `json:"lp,omitempty"`
	OldLP       int     `json:"old_lp,omitempty"`
	NewLP       int     `json:"new_lp,omitempty"`
	PredictedMS float64 `json:"predicted_wct_ms,omitempty"`
	BestMS      float64 `json:"best_wct_ms,omitempty"`
	OptimalLP   int     `json:"optimal_lp,omitempty"`
	Reason      string  `json:"reason,omitempty"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	_, _, h, _, _, _, _ := j.snapshot()

	var recs []timelineRecord
	for _, smp := range j.rec.Samples() {
		recs = append(recs, timelineRecord{
			Type: "lp", TMS: s.sinceStart(smp.T), Active: smp.Active, LP: smp.LP,
		})
	}
	if h != nil {
		for _, d := range h.Decisions() {
			recs = append(recs, timelineRecord{
				Type: "decision", TMS: s.sinceStart(d.Time),
				OldLP: d.OldLP, NewLP: d.NewLP,
				PredictedMS: float64(d.PredictedWCT) / float64(time.Millisecond),
				BestMS:      float64(d.BestWCT) / float64(time.Millisecond),
				OptimalLP:   d.OptimalLP, Reason: d.Reason,
			})
		}
	}
	sortTimeline(recs)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return
		}
	}
}

// qosRequest is the PATCH /jobs/{id}/qos body; absent fields keep the
// current value.
type qosRequest struct {
	GoalMS *float64 `json:"goal_ms"`
	MaxLP  *int     `json:"max_lp"`
}

func (s *Server) handleQoS(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	var req qosRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad qos body: %w", err))
		return
	}
	var goal *time.Duration
	if req.GoalMS != nil {
		g := time.Duration(*req.GoalMS * float64(time.Millisecond))
		goal = &g
	}
	if err := s.AdjustQoS(j.id, goal, req.MaxLP); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.Cancel(j.id)
	writeJSON(w, http.StatusOK, s.jobView(j))
}

// arbiterView is the GET /arbiter response.
type arbiterView struct {
	Budget    int              `json:"budget"`
	Granted   int              `json:"granted"`
	Grants    map[string]int   `json:"grants"`
	Decisions []grantDecisionV `json:"decisions"`
}

type grantDecisionV struct {
	TMS    float64 `json:"t_ms"`
	Job    string  `json:"job"`
	OldLP  int     `json:"old_lp"`
	NewLP  int     `json:"new_lp"`
	Reason string  `json:"reason"`
}

func (s *Server) handleArbiter(w http.ResponseWriter, r *http.Request) {
	ds := s.arb.Decisions()
	out := arbiterView{
		Budget:    s.arb.Budget(),
		Granted:   s.arb.Granted(),
		Grants:    s.arb.Grants(),
		Decisions: make([]grantDecisionV, 0, len(ds)),
	}
	for _, d := range ds {
		out.Decisions = append(out.Decisions, grantDecisionV{
			TMS: s.sinceStart(d.Time), Job: d.Job,
			OldLP: d.OldLP, NewLP: d.NewLP, Reason: d.Reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics exposes the fleet in Prometheus text exposition format
// (hand-rolled: no dependency for a text format).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP skelrund_budget machine-wide LP budget\n")
	fmt.Fprintf(w, "skelrund_budget %d\n", s.Budget())
	fmt.Fprintf(w, "# HELP skelrund_granted sum of current arbiter grants\n")
	fmt.Fprintf(w, "skelrund_granted %d\n", s.arb.Granted())
	fmt.Fprintf(w, "# HELP skelrund_total_lp sum of all job pools' current LP\n")
	fmt.Fprintf(w, "skelrund_total_lp %d\n", s.fleet.TotalLP())
	fmt.Fprintf(w, "# HELP skelrund_peak_total_lp peak of the aggregate LP series\n")
	fmt.Fprintf(w, "skelrund_peak_total_lp %d\n", s.fleet.PeakTotalLP())
	retries, faults := s.fleet.TotalFaults()
	fmt.Fprintf(w, "# HELP skelrund_retries_total muscle attempts retried, fleet-wide\n")
	fmt.Fprintf(w, "skelrund_retries_total %d\n", retries)
	fmt.Fprintf(w, "# HELP skelrund_faults_total terminal muscle failures, fleet-wide\n")
	fmt.Fprintf(w, "skelrund_faults_total %d\n", faults)
	queued, queueMax := s.QueueDepth()
	fmt.Fprintf(w, "# HELP skelrund_queue_len jobs waiting for budget\n")
	fmt.Fprintf(w, "skelrund_queue_len %d\n", queued)
	fmt.Fprintf(w, "# HELP skelrund_queue_max wait-queue bound (0 = unbounded)\n")
	fmt.Fprintf(w, "skelrund_queue_max %d\n", queueMax)
	fmt.Fprintf(w, "# HELP skelrund_shed_total submissions rejected by admission control\n")
	sheds := s.fleet.Sheds()
	reasons := make([]string, 0, len(sheds))
	for r := range sheds {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "skelrund_shed_total{reason=%q} %d\n", r, sheds[r])
	}
	ast := s.adm.stats()
	brown := 0
	if ast.BrownedOut {
		brown = 1
	}
	fmt.Fprintf(w, "# HELP skelrund_browned_out whether brownout shedding is active (1 = shedding optional work)\n")
	fmt.Fprintf(w, "skelrund_browned_out %d\n", brown)
	fmt.Fprintf(w, "# HELP skelrund_brownouts_total brownout episodes entered since start\n")
	fmt.Fprintf(w, "skelrund_brownouts_total %d\n", ast.Brownouts)
	grants := s.arb.TenantGrants()
	if len(grants) > 0 {
		fmt.Fprintf(w, "# HELP skelrund_tenant_granted_lp current arbiter LP granted per tenant\n")
		tenants := make([]string, 0, len(grants))
		for t := range grants {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			fmt.Fprintf(w, "skelrund_tenant_granted_lp{tenant=%q} %d\n", t, grants[t])
		}
	}
	if tsheds := s.fleet.TenantSheds(); len(tsheds) > 0 {
		fmt.Fprintf(w, "# HELP skelrund_tenant_shed_total submissions rejected per tenant and reason\n")
		tenants := make([]string, 0, len(tsheds))
		for t := range tsheds {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			rs := make([]string, 0, len(tsheds[t]))
			for r := range tsheds[t] {
				rs = append(rs, r)
			}
			sort.Strings(rs)
			for _, r := range rs {
				fmt.Fprintf(w, "skelrund_tenant_shed_total{tenant=%q,reason=%q} %d\n", t, r, tsheds[t][r])
			}
		}
	}
	fmt.Fprintf(w, "# HELP skelrund_recovered_jobs jobs rehydrated or re-queued from the journal\n")
	fmt.Fprintf(w, "skelrund_recovered_jobs %d\n", s.RecoveredJobs())
	if cl := s.cfg.Cluster; cl != nil {
		fmt.Fprintf(w, "# HELP skelrund_cluster_budget cluster-wide LP budget\n")
		fmt.Fprintf(w, "skelrund_cluster_budget %d\n", cl.Budget())
		fmt.Fprintf(w, "# HELP skelrund_cluster_granted sum of per-node LP grants (never exceeds the budget)\n")
		fmt.Fprintf(w, "skelrund_cluster_granted %d\n", cl.Granted())
		fmt.Fprintf(w, "# HELP skelrund_cluster_serving nodes currently shipped work (healthy, suspect or probation)\n")
		fmt.Fprintf(w, "skelrund_cluster_serving %d\n", cl.Serving())
		fmt.Fprintf(w, "# HELP skelrund_cluster_degraded_tasks_total tasks drained to the local pool after cluster brown-out\n")
		fmt.Fprintf(w, "skelrund_cluster_degraded_tasks_total %d\n", cl.Degraded())
		fmt.Fprintf(w, "# HELP skelrund_cluster_hedged_tasks_total straggler tasks re-enqueued for hedging\n")
		fmt.Fprintf(w, "skelrund_cluster_hedged_tasks_total %d\n", cl.Hedged())
		fmt.Fprintf(w, "# HELP skelrund_cluster_node_up worker health (1 = responding to probes)\n")
		fmt.Fprintf(w, "# HELP skelrund_cluster_node_state worker health state (1 on the current state's series)\n")
		fmt.Fprintf(w, "# HELP skelrund_cluster_node_consec_fails current consecutive-failure streak\n")
		for _, n := range cl.Nodes() {
			lbl := fmt.Sprintf("{node=%q}", n.Addr)
			up := 0
			if n.Healthy {
				up = 1
			}
			fmt.Fprintf(w, "skelrund_cluster_node_up%s %d\n", lbl, up)
			fmt.Fprintf(w, "skelrund_cluster_node_state{node=%q,state=%q} 1\n", n.Addr, n.State)
			fmt.Fprintf(w, "skelrund_cluster_node_consec_fails%s %d\n", lbl, n.ConsecFails)
			fmt.Fprintf(w, "skelrund_cluster_node_grant%s %d\n", lbl, n.Grant)
			fmt.Fprintf(w, "skelrund_cluster_node_tasks_total%s %d\n", lbl, n.Tasks)
			fmt.Fprintf(w, "skelrund_cluster_node_lp%s %d\n", lbl, n.Report.LP)
			fmt.Fprintf(w, "skelrund_cluster_node_active%s %d\n", lbl, n.Report.Active)
			fmt.Fprintf(w, "skelrund_cluster_node_queued%s %d\n", lbl, n.Report.Queued)
		}
	}
	if jn := s.Journal(); jn != nil {
		c := jn.Counters()
		fmt.Fprintf(w, "# HELP skelrund_journal_appends_total journal records written\n")
		fmt.Fprintf(w, "skelrund_journal_appends_total %d\n", c.Appends)
		fmt.Fprintf(w, "# HELP skelrund_journal_fsyncs_total explicit journal syncs\n")
		fmt.Fprintf(w, "skelrund_journal_fsyncs_total %d\n", c.Fsyncs)
		fmt.Fprintf(w, "skelrund_journal_rotations_total %d\n", c.Rotations)
		fmt.Fprintf(w, "skelrund_journal_compactions_total %d\n", c.Compactions)
		fmt.Fprintf(w, "skelrund_journal_torn_total %d\n", c.Torn)
		fmt.Fprintf(w, "skelrund_journal_replayed_total %d\n", c.Replayed)
	}
	counts := s.stateCounts()
	for _, st := range statesInOrder(counts) {
		fmt.Fprintf(w, "skelrund_jobs{state=%q} %d\n", st, counts[st])
	}
	for _, id := range s.JobIDs() {
		j, ok := s.Job(id)
		if !ok {
			continue
		}
		state, grant, h, _, _, _, _ := j.snapshot()
		lp, active := 0, 0
		var stats statsView
		faults := j.totalFaults(h)
		if h != nil {
			if !state.terminal() {
				lp, active = h.LP(), h.Active()
			}
			ps := h.Stats()
			stats = statsView{Tasks: ps.TasksRun, BusySec: ps.BusyTime.Seconds(), Spawned: ps.Spawned}
		}
		lbl := fmt.Sprintf("{job=%q,skeleton=%q}", j.id, j.skeleton)
		fmt.Fprintf(w, "skelrund_job_lp%s %d\n", lbl, lp)
		fmt.Fprintf(w, "skelrund_job_active%s %d\n", lbl, active)
		fmt.Fprintf(w, "skelrund_job_grant%s %d\n", lbl, grant)
		fmt.Fprintf(w, "skelrund_job_tasks_total%s %d\n", lbl, stats.Tasks)
		fmt.Fprintf(w, "skelrund_job_busy_seconds%s %g\n", lbl, stats.BusySec)
		fmt.Fprintf(w, "skelrund_job_workers_spawned%s %d\n", lbl, stats.Spawned)
		fmt.Fprintf(w, "skelrund_job_retries_total%s %d\n", lbl, faults.Retries)
		fmt.Fprintf(w, "skelrund_job_faults_total%s %d\n", lbl, faults.Faults)
		fmt.Fprintf(w, "skelrund_job_timeouts_total%s %d\n", lbl, faults.Timeouts)
		fmt.Fprintf(w, "skelrund_job_skipped_total%s %d\n", lbl, faults.Skipped)
		fmt.Fprintf(w, "skelrund_job_substituted_total%s %d\n", lbl, faults.Substituted)
		fmt.Fprintf(w, "skelrund_job_events_dropped%s %d\n", lbl, j.log.droppedCount())
	}
}

type statsView struct {
	Tasks   uint64
	BusySec float64
	Spawned int
}

// sortTimeline orders records by time, stable across types.
func sortTimeline(recs []timelineRecord) {
	metricsSortSlice(recs)
}

// metricsSortSlice is a tiny insertion sort: timelines are mostly ordered
// already (two pre-sorted series merged), where insertion sort is linear.
func metricsSortSlice(recs []timelineRecord) {
	for i := 1; i < len(recs); i++ {
		for k := i; k > 0 && recs[k].TMS < recs[k-1].TMS; k-- {
			recs[k], recs[k-1] = recs[k-1], recs[k]
		}
	}
}
