package server

import (
	"math/rand"
	"sync"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/metrics"
)

// admissionConfig tunes the multi-tenant admission ladder.
type admissionConfig struct {
	// QueueMax bounds the wait queue; 0 disables the ladder (everything
	// admits, as an unbounded queue always did).
	QueueMax int
	// Tenants maps tenant names to their weights (unlisted tenants weigh 1).
	Tenants map[string]int
	// BrownoutAfter is how long queue pressure must stay above HighWater
	// before the server browns out (default 1s). BrownoutExit is how long
	// pressure must stay below LowWater before it recovers (default 2s).
	BrownoutAfter time.Duration
	BrownoutExit  time.Duration
	// HighWater/LowWater are the queue-fill hysteresis thresholds
	// (defaults 0.75 and 0.25).
	HighWater float64
	LowWater  float64
	// Seed makes the probabilistic shed and the Retry-After jitter
	// reproducible (default 1).
	Seed  int64
	Clock clock.Clock
	// OnBrownout, when set, observes brownout transitions. It is invoked
	// with no admission lock held, but only from decide/poll call sites —
	// never from the counter-only bookkeeping hooks — so a server callback
	// may take the server lock.
	OnBrownout func(on bool, at time.Time)
}

// verdict is the admission ladder's ruling on one submission.
type verdict struct {
	admit bool
	// guaranteed marks rung-1 admissions: the tenant was below its weighted
	// queue quota and the priority non-negative, so admission was
	// unconditional. Such submissions are never shed — the invariant the
	// overload harness asserts.
	guaranteed bool
	reason     string // shed reason (metrics.Shed*) when !admit
	queued     int    // total queue depth at decision time
	retryAfter time.Duration
}

// brownoutChange is one hysteresis transition, delivered to OnBrownout.
type brownoutChange struct {
	on bool
	at time.Time
}

// drainCap bounds the completion-stamp ring the drain rate is derived
// from; drainWindow is how far back it looks.
const (
	drainCap    = 512
	drainWindow = 5 * time.Second
)

// admission is the priority-aware, tenant-fair front door that replaced the
// flat queue-max shed. It rules on every submission via a three-rung
// ladder:
//
//  1. guaranteed — the tenant is below its weighted share of the queue and
//     the submission is not low-priority: admit unconditionally (the queue
//     may stretch past QueueMax for guaranteed traffic; the stretch is
//     bounded by the quota sum);
//  2. weighted probabilistic shed — optional work is shed with probability
//     fill²/weight (doubled for low priority, zero for high) so pressure
//     lands on heavy and low-priority tenants first and ramps smoothly
//     instead of cliffing at the bound;
//  3. hard shed — the queue is full (or the server browned out): 429 with
//     a Retry-After derived from the observed drain rate.
//
// Brownout is a hysteresis detector over the same event stream: queue fill
// sustained above HighWater for BrownoutAfter trips it, sustained below
// LowWater for BrownoutExit clears it. While browned out, all optional
// (over-quota or low-priority) work is shed deterministically and the
// server disables cluster hedging — optional duplicates are the first
// ballast overboard.
//
// admission is a leaf lock: it never calls back under its mutex, so its
// methods are safe from any server path.
type admission struct {
	cfg admissionConfig

	mu          sync.Mutex
	rng         *rand.Rand
	weights     map[string]int // every tenant seen, configured or not
	weightSum   int
	queued      map[string]int
	queuedTotal int

	brownedOut    bool
	brownouts     uint64 // total on-transitions
	pressureSince time.Time
	calmSince     time.Time

	completions [drainCap]time.Time
	chead, clen int
}

func newAdmission(cfg admissionConfig) *admission {
	if cfg.BrownoutAfter <= 0 {
		cfg.BrownoutAfter = time.Second
	}
	if cfg.BrownoutExit <= 0 {
		cfg.BrownoutExit = 2 * time.Second
	}
	if cfg.HighWater <= 0 {
		cfg.HighWater = 0.75
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = 0.25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	a := &admission{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		weights: map[string]int{},
		queued:  map[string]int{},
	}
	for t, w := range cfg.Tenants {
		if w < 1 {
			w = 1
		}
		a.weights[core.CanonTenant(t)] = w
		a.weightSum += w
	}
	return a
}

// weightLocked returns (registering if new) a tenant's weight.
func (a *admission) weightLocked(tenant string) int {
	w, ok := a.weights[tenant]
	if !ok {
		w = 1
		a.weights[tenant] = w
		a.weightSum += w
	}
	return w
}

// quotaLocked is a tenant's guaranteed share of the queue: its weighted
// fraction of QueueMax, floored at one slot so every tenant can always get
// at least one job in.
func (a *admission) quotaLocked(w int) int {
	q := a.cfg.QueueMax * w / a.weightSum
	if q < 1 {
		q = 1
	}
	return q
}

// decide rules on one submission and reserves its queue slot when admitted
// (release it with started or dequeued). Brownout transitions triggered by
// this observation are delivered to OnBrownout before decide returns.
func (a *admission) decide(tenant string, priority int) verdict {
	now := a.cfg.Clock.Now()
	a.mu.Lock()
	trs := a.observeLocked(now)
	v := a.decideLocked(tenant, priority, now)
	a.mu.Unlock()
	a.fire(trs)
	return v
}

func (a *admission) decideLocked(tenant string, priority int, now time.Time) verdict {
	w := a.weightLocked(tenant)
	if a.cfg.QueueMax <= 0 {
		// Unbounded queue: no ladder, everything is guaranteed.
		a.queued[tenant]++
		a.queuedTotal++
		return verdict{admit: true, guaranteed: priority >= 0, queued: a.queuedTotal}
	}
	if priority >= 0 && a.queued[tenant] < a.quotaLocked(w) {
		a.queued[tenant]++
		a.queuedTotal++
		return verdict{admit: true, guaranteed: true, queued: a.queuedTotal}
	}

	// Over quota or low priority: this is optional work, the shed ladder
	// applies.
	shed := func(reason string) verdict {
		return verdict{
			reason: reason, queued: a.queuedTotal,
			retryAfter: a.retryAfterLocked(now),
		}
	}
	if a.queuedTotal >= a.cfg.QueueMax {
		return shed(metrics.ShedQueueFull)
	}
	if a.brownedOut {
		return shed(metrics.ShedBrownout)
	}
	fill := float64(a.queuedTotal) / float64(a.cfg.QueueMax)
	var pshed float64
	switch {
	case priority > 0:
		pshed = 0 // high priority rides until the hard wall
	case priority < 0:
		pshed = 2 * fill * fill / float64(w)
	default:
		pshed = fill * fill / float64(w)
	}
	if pshed > 0 && a.rng.Float64() < pshed {
		return shed(metrics.ShedPressure)
	}
	a.queued[tenant]++
	a.queuedTotal++
	return verdict{admit: true, queued: a.queuedTotal}
}

// entitled reports whether a submission would ride the guaranteed rung
// right now. The overload harness probes it immediately before decide to
// verify guaranteed traffic is never shed.
func (a *admission) entitled(tenant string, priority int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if priority < 0 {
		return false
	}
	if a.cfg.QueueMax <= 0 {
		return true
	}
	return a.queued[tenant] < a.quotaLocked(a.weightLocked(tenant))
}

// started releases a tenant's queue slot: the job moved from the wait
// queue to a budget grant. Counter-only — never fires OnBrownout — so it
// is safe under the server lock.
func (a *admission) started(tenant string) {
	a.mu.Lock()
	if a.queued[tenant] > 0 {
		a.queued[tenant]--
		a.queuedTotal--
	}
	a.mu.Unlock()
}

// dequeued releases a queue slot without a start (cancel, drain race).
func (a *admission) dequeued(tenant string) { a.started(tenant) }

// enqueued reserves a queue slot without a decision — journal recovery
// re-queues jobs that were admitted before the crash. Counter-only.
func (a *admission) enqueued(tenant string) {
	a.mu.Lock()
	a.weightLocked(tenant)
	a.queued[tenant]++
	a.queuedTotal++
	a.mu.Unlock()
}

// finished records a job completion for the drain-rate estimate.
func (a *admission) finished(now time.Time) {
	a.mu.Lock()
	if a.clen < drainCap {
		a.completions[(a.chead+a.clen)%drainCap] = now
		a.clen++
	} else {
		a.completions[a.chead] = now
		a.chead = (a.chead + 1) % drainCap
	}
	a.mu.Unlock()
}

// poll re-evaluates the brownout hysteresis without a submission — the
// health endpoint and the overload harness drive exit detection with it
// when traffic has gone quiet.
func (a *admission) poll(now time.Time) {
	a.mu.Lock()
	trs := a.observeLocked(now)
	a.mu.Unlock()
	a.fire(trs)
}

// observeLocked advances the hysteresis detector on the current queue fill
// and returns the transitions to deliver (after unlocking).
func (a *admission) observeLocked(now time.Time) []brownoutChange {
	if a.cfg.QueueMax <= 0 {
		return nil
	}
	fill := float64(a.queuedTotal) / float64(a.cfg.QueueMax)
	var trs []brownoutChange
	switch {
	case fill >= a.cfg.HighWater:
		a.calmSince = time.Time{}
		if a.pressureSince.IsZero() {
			a.pressureSince = now
		}
		if !a.brownedOut && now.Sub(a.pressureSince) >= a.cfg.BrownoutAfter {
			a.brownedOut = true
			a.brownouts++
			trs = append(trs, brownoutChange{on: true, at: now})
		}
	case fill <= a.cfg.LowWater:
		a.pressureSince = time.Time{}
		if a.calmSince.IsZero() {
			a.calmSince = now
		}
		if a.brownedOut && now.Sub(a.calmSince) >= a.cfg.BrownoutExit {
			a.brownedOut = false
			trs = append(trs, brownoutChange{on: false, at: now})
		}
	default:
		// Between the water marks neither timer runs: the current state
		// holds (that is the hysteresis).
		a.pressureSince, a.calmSince = time.Time{}, time.Time{}
	}
	return trs
}

func (a *admission) fire(trs []brownoutChange) {
	if a.cfg.OnBrownout == nil {
		return
	}
	for _, tr := range trs {
		a.cfg.OnBrownout(tr.on, tr.at)
	}
}

// isBrownedOut reports the current hysteresis state (leaf lock; safe under
// the server lock).
func (a *admission) isBrownedOut() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.brownedOut
}

// retryAfter derives the current backoff hint (draining responses).
func (a *admission) retryAfter() time.Duration {
	now := a.cfg.Clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retryAfterLocked(now)
}

// retryAfterLocked estimates when a shed client should try again from the
// observed drain rate: queue depth plus one, divided by recent completions
// per second, clamped to [1s, 60s] and jittered ±20% so a shed burst does
// not come back as a synchronized retry burst.
func (a *admission) retryAfterLocked(now time.Time) time.Duration {
	for a.clen > 0 && now.Sub(a.completions[a.chead]) > drainWindow {
		a.chead = (a.chead + 1) % drainCap
		a.clen--
	}
	ra := 5 * time.Second // no drain observed: a blind but bounded default
	if a.clen > 0 {
		window := now.Sub(a.completions[a.chead])
		if window < time.Second {
			window = time.Second
		}
		rate := float64(a.clen) / window.Seconds()
		ra = time.Duration(float64(a.queuedTotal+1) / rate * float64(time.Second))
	}
	ra = time.Duration(float64(ra) * (0.8 + 0.4*a.rng.Float64()))
	if ra < time.Second {
		ra = time.Second
	}
	if ra > 60*time.Second {
		ra = 60 * time.Second
	}
	return ra
}

// admissionStats is a point-in-time snapshot for /healthz and /metrics.
type admissionStats struct {
	BrownedOut bool
	Brownouts  uint64
	Queued     map[string]int
	Quotas     map[string]int
	Weights    map[string]int
}

func (a *admission) stats() admissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := admissionStats{
		BrownedOut: a.brownedOut,
		Brownouts:  a.brownouts,
		Queued:     make(map[string]int, len(a.weights)),
		Quotas:     make(map[string]int, len(a.weights)),
		Weights:    make(map[string]int, len(a.weights)),
	}
	for t, w := range a.weights {
		st.Weights[t] = w
		st.Queued[t] = a.queued[t]
		if a.cfg.QueueMax > 0 {
			st.Quotas[t] = a.quotaLocked(w)
		}
	}
	return st
}
