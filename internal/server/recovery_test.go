package server

import (
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"skandium/internal/journal"
)

// openJournal opens a test journal with always-sync durability, so every
// record is on disk the moment the call returns — the strictest crash model.
func openJournal(t *testing.T, dir string) (*journal.Journal, []journal.JobState) {
	t.Helper()
	jn, states, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("open journal %s: %v", dir, err)
	}
	return jn, states
}

// sleepSpec is a journal-form sleepgrid submission (4×4 grid).
func sleepSpec(cellMS float64) journal.Spec {
	return journal.Spec{
		Skeleton: "sleepgrid",
		Params:   map[string]any{"k": 4, "m": 4, "cell_ms": cellMS},
	}
}

// waitState polls a job until it reaches want or the deadline expires.
func waitState(t *testing.T, base, id, want string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJSON[jobView](t, base+"/jobs/"+id)
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s state = %s (err %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecoveryRoundTrip crash-simulates in process: a journal is populated
// exactly as a daemon would have (one finished job, one mid-run with fault
// counters, one still queued), reopened, and a fresh server recovers from
// it — the finished job serves its persisted result without re-running,
// the interrupted jobs re-run to completion, fault counters carry over,
// and the journal ends with exactly one terminal record per job.
func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()

	jn1, _ := openJournal(t, dir)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("journal write: %v", err)
		}
	}
	must(jn1.Submit("job-1", sleepSpec(5)))
	must(jn1.Start("job-1"))
	must(jn1.Finish("job-1", journal.StateDone, "16", "", journal.FaultCounts{}))
	must(jn1.Submit("job-2", sleepSpec(5)))
	must(jn1.Start("job-2"))
	must(jn1.Fault("job-2", journal.FaultCounts{Retries: 3, Faults: 1}))
	must(jn1.Submit("job-3", sleepSpec(5)))
	// A crash writes no close record — every byte above is already synced,
	// so closing here only releases the file handles for the reopen.
	_ = jn1.Close()

	jn2, states := openJournal(t, dir)
	if len(states) != 3 {
		t.Fatalf("replayed %d jobs, want 3: %+v", len(states), states)
	}
	srv, ts := newTestDaemon(t, Config{
		Budget: 2, Rebalance: 5 * time.Millisecond,
		Journal: jn2, Recover: states,
	})
	base := ts.URL

	if n := srv.RecoveredJobs(); n != 3 {
		t.Fatalf("RecoveredJobs = %d, want 3", n)
	}

	// The finished job was rehydrated: persisted result, no re-execution.
	done := getJSON[jobView](t, base+"/jobs/job-1")
	if done.State != "done" || done.Result != "16" || !done.Recovered {
		t.Fatalf("restored job-1 = %+v, want done/16/recovered", done)
	}
	if done.StartedMS != 0 {
		t.Fatalf("restored job-1 started_ms = %v, want 0 (never re-ran)", done.StartedMS)
	}

	// The interrupted jobs re-ran from scratch (muscles are pure) and
	// produced the same result a crash-free run would have.
	rerun := waitState(t, base, "job-2", "done", 20*time.Second)
	if rerun.Result != "16" || !rerun.Recovered {
		t.Fatalf("re-run job-2 = %+v, want result 16 and recovered", rerun)
	}
	if rerun.Retries < 3 || rerun.Faults < 1 {
		t.Fatalf("job-2 fault counters = %d/%d, want journaled 3/1 preserved", rerun.Retries, rerun.Faults)
	}
	queued := waitState(t, base, "job-3", "done", 20*time.Second)
	if queued.Result != "16" || !queued.Recovered {
		t.Fatalf("re-queued job-3 = %+v, want result 16 and recovered", queued)
	}

	// Job numbering continues after the recovered ids.
	fresh := submitSleepgrid(t, base, 0, 5)
	if fresh.ID != "job-4" {
		t.Fatalf("fresh submission id = %s, want job-4", fresh.ID)
	}
	waitState(t, base, fresh.ID, "done", 20*time.Second)

	// Exactly one terminal record per job: the journal's state table shows
	// every job done with its single result, and job-1's original result
	// untouched (its rehydration journaled nothing).
	byID := map[string]journal.JobState{}
	for _, st := range jn2.States() {
		byID[st.ID] = st
	}
	for _, id := range []string{"job-1", "job-2", "job-3", "job-4"} {
		st, ok := byID[id]
		if !ok || st.State != journal.StateDone || st.Result != "16" {
			t.Fatalf("journal state for %s = %+v, want done/16", id, st)
		}
	}
	if fc := byID["job-2"].Faults; fc.Retries < 3 || fc.Faults < 1 {
		t.Fatalf("journaled job-2 faults = %+v, want >= 3/1", fc)
	}
}

// TestRecoveringHealth: while journal-recovered jobs still wait for budget
// the daemon reports "recovering", and returns to "ok" once they drain.
func TestRecoveringHealth(t *testing.T) {
	dir := t.TempDir()
	jn1, _ := openJournal(t, dir)
	_ = jn1.Submit("job-1", sleepSpec(20))
	_ = jn1.Submit("job-2", sleepSpec(20))
	_ = jn1.Close()

	jn2, states := openJournal(t, dir)
	srv, ts := newTestDaemon(t, Config{
		Budget: 1, Rebalance: 5 * time.Millisecond,
		Journal: jn2, Recover: states,
	})
	if h := srv.Health(); h != HealthRecovering {
		t.Fatalf("health during recovery = %s, want %s", h, HealthRecovering)
	}
	waitState(t, ts.URL, "job-2", "done", 20*time.Second)
	if h := srv.Health(); h != HealthOK {
		t.Fatalf("health after recovery = %s, want %s", h, HealthOK)
	}
}

// TestCloseDuringRecovery is the regression for a shutdown racing a journal
// replay: Close while recovered jobs are mid-flight (one stream running,
// several queued) must cancel everything and return — not deadlock against
// the arbiter.
func TestCloseDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	jn1, _ := openJournal(t, dir)
	for _, id := range []string{"job-1", "job-2", "job-3", "job-4"} {
		_ = jn1.Submit(id, sleepSpec(200))
	}
	_ = jn1.Start("job-1")
	_ = jn1.Close()

	jn2, states := openJournal(t, dir)
	defer jn2.Close()
	srv := New(Config{
		Budget: 1, Rebalance: time.Millisecond,
		Journal: jn2, Recover: states,
	})

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Close deadlocked during recovery replay")
	}
	// Close cancels the running stream; its watch goroutine records the
	// terminal state moments later.
	deadline := time.Now().Add(10 * time.Second)
	for {
		live := 0
		for _, id := range srv.JobIDs() {
			j, _ := srv.Job(id)
			st, _, _, _, _, _, _ := j.snapshot()
			if !st.terminal() {
				live++
			}
		}
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs still non-terminal after Close", live)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRecoverySIGKILL is the acceptance scenario end-to-end: a real
// daemon subprocess with one running and one queued job is SIGKILLed
// mid-execution, and a successor using only the same journal directory
// recovers both to completion.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	addrFile := filepath.Join(dir, "addr")

	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashDaemonHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SKELRUND_CRASH_HELPER=1",
		"SKELRUND_JOURNAL_DIR="+jdir,
		"SKELRUND_ADDR_FILE="+addrFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	var base string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("helper daemon never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Budget 1 in the helper: the first job runs (16 × 300ms serial — far
	// outlives this test's interaction), the second queues behind it.
	a := submitSleepgrid(t, base, 0, 300)
	b := submitSleepgrid(t, base, 0, 300)
	if a.State != "running" || b.State != "queued" {
		t.Fatalf("pre-crash states = %s/%s, want running/queued", a.State, b.State)
	}

	// SIGKILL: no drain, no journal close — recovery must work from the
	// fsynced bytes alone.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill helper: %v", err)
	}
	_ = cmd.Wait()
	killed = true

	jn, states := openJournal(t, jdir)
	if len(states) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(states))
	}
	byID := map[string]journal.JobState{}
	for _, st := range states {
		byID[st.ID] = st
	}
	if st := byID[a.ID].State; st != journal.StateRunning {
		t.Fatalf("journaled state of %s = %s, want running", a.ID, st)
	}
	if st := byID[b.ID].State; st != journal.StateQueued {
		t.Fatalf("journaled state of %s = %s, want queued", b.ID, st)
	}

	srv, ts := newTestDaemon(t, Config{
		Budget: 2, Rebalance: 5 * time.Millisecond,
		Journal: jn, Recover: states,
	})
	if n := srv.RecoveredJobs(); n != 2 {
		t.Fatalf("RecoveredJobs = %d, want 2", n)
	}
	for _, id := range []string{a.ID, b.ID} {
		v := waitState(t, ts.URL, id, "done", 3*time.Minute)
		if v.Result != "16" || !v.Recovered {
			t.Fatalf("recovered %s = result %q recovered %v, want 16/true", id, v.Result, v.Recovered)
		}
	}
	// One terminal record per job, despite the re-run.
	for _, st := range jn.States() {
		if st.State != journal.StateDone || st.Result != "16" {
			t.Fatalf("journal state %+v, want done/16", st)
		}
	}
}

// TestCrashDaemonHelper is the subprocess body of TestCrashRecoverySIGKILL:
// a budget-1 daemon on a loopback port with an always-sync journal, running
// until the parent kills it. Guarded by an env var so a normal test run
// skips it.
func TestCrashDaemonHelper(t *testing.T) {
	if os.Getenv("SKELRUND_CRASH_HELPER") != "1" {
		t.Skip("subprocess helper for TestCrashRecoverySIGKILL")
	}
	jn, states, err := journal.Open(os.Getenv("SKELRUND_JOURNAL_DIR"),
		journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("helper: open journal: %v", err)
	}
	srv := New(Config{
		Budget: 1, Rebalance: 5 * time.Millisecond,
		Journal: jn, Recover: states,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper: listen: %v", err)
	}
	if err := os.WriteFile(os.Getenv("SKELRUND_ADDR_FILE"),
		[]byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("helper: write addr: %v", err)
	}
	// Serve until SIGKILL; there is deliberately no shutdown path.
	_ = http.Serve(ln, srv.Handler())
}
