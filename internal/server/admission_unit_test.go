package server

import (
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/metrics"
)

// newTestAdmission builds an admission ladder on a virtual clock with the
// canonical 3/2/1 tenant mix used across the overload tests.
func newTestAdmission(queueMax int, clk clock.Clock, onBrownout func(bool, time.Time)) *admission {
	return newAdmission(admissionConfig{
		QueueMax:      queueMax,
		Tenants:       map[string]int{"alpha": 3, "beta": 2, "gamma": 1},
		BrownoutAfter: time.Second,
		BrownoutExit:  2 * time.Second,
		Seed:          1,
		Clock:         clk,
		OnBrownout:    onBrownout,
	})
}

func TestAdmissionQuotaMath(t *testing.T) {
	a := newTestAdmission(60, clock.NewVirtual(clock.Epoch), nil)
	st := a.stats()
	want := map[string]int{"alpha": 30, "beta": 20, "gamma": 10}
	for tn, q := range want {
		if st.Quotas[tn] != q {
			t.Errorf("quota[%s] = %d, want %d", tn, st.Quotas[tn], q)
		}
	}
	// An unseen tenant registers at weight 1 and dilutes everyone's share:
	// weight sum becomes 7, so alpha's quota drops to 60*3/7 = 25.
	if !a.decide("delta", 0).admit {
		t.Fatalf("first job from a new tenant must be guaranteed-admitted")
	}
	st = a.stats()
	if st.Weights["delta"] != 1 {
		t.Errorf("delta weight = %d, want 1", st.Weights["delta"])
	}
	if st.Quotas["alpha"] != 25 {
		t.Errorf("alpha quota after delta = %d, want 25", st.Quotas["alpha"])
	}
	if st.Quotas["delta"] != 8 {
		t.Errorf("delta quota = %d, want 8", st.Quotas["delta"])
	}
}

func TestAdmissionGuaranteedRung(t *testing.T) {
	a := newTestAdmission(12, clock.NewVirtual(clock.Epoch), nil)
	// Quotas: alpha 6, beta 4, gamma 2. Every submission inside quota is
	// guaranteed, regardless of how full the rest of the queue is.
	for i := 0; i < 6; i++ {
		v := a.decide("alpha", 0)
		if !v.admit || !v.guaranteed {
			t.Fatalf("alpha #%d: admit=%v guaranteed=%v, want both", i, v.admit, v.guaranteed)
		}
	}
	// Seventh alpha job is over quota: still possibly admitted (rung 2), but
	// never guaranteed.
	if v := a.decide("alpha", 0); v.admit && v.guaranteed {
		t.Fatalf("over-quota admission must not be guaranteed")
	}
	// Gamma is untouched by alpha's overrun: its quota slots remain.
	for i := 0; i < 2; i++ {
		if v := a.decide("gamma", 0); !v.guaranteed {
			t.Fatalf("gamma #%d should be inside quota", i)
		}
	}
	// Low priority never rides the guaranteed rung, even inside quota.
	if v := a.decide("beta", -1); v.guaranteed {
		t.Fatalf("low-priority admission must not be guaranteed")
	}
}

func TestAdmissionHardShed(t *testing.T) {
	a := newTestAdmission(12, clock.NewVirtual(clock.Epoch), nil)
	// Fill every quota exactly: 6+4+2 = 12 = QueueMax.
	for tn, n := range map[string]int{"alpha": 6, "beta": 4, "gamma": 2} {
		for i := 0; i < n; i++ {
			if v := a.decide(tn, 0); !v.guaranteed {
				t.Fatalf("%s #%d should be guaranteed", tn, i)
			}
		}
	}
	v := a.decide("alpha", 1)
	if v.admit {
		t.Fatalf("queue at max: even high priority must shed")
	}
	if v.reason != metrics.ShedQueueFull {
		t.Fatalf("reason = %q, want %q", v.reason, metrics.ShedQueueFull)
	}
	if v.retryAfter < time.Second || v.retryAfter > 60*time.Second {
		t.Fatalf("retryAfter %v outside [1s, 60s]", v.retryAfter)
	}
}

func TestAdmissionPriorityShedding(t *testing.T) {
	// At high fill, low-priority sheds more often than default priority and
	// high priority never pressure-sheds. Run many trials over fresh ladders
	// at a fixed fill to compare observed rates.
	shedRate := func(priority int) float64 {
		clk := clock.NewVirtual(clock.Epoch)
		sheds, trials := 0, 400
		for i := 0; i < trials; i++ {
			a := newAdmission(admissionConfig{
				QueueMax: 20,
				Seed:     int64(i + 1),
				Clock:    clk,
			})
			// Fill to 15/20 (0.75) with the probe tenant over its quota of
			// 10, so its decision rides the probabilistic rung: expected
			// shed probability 0.75² ≈ 0.56 at default priority, ~1.0 at
			// low, 0 at high.
			for k := 0; k < 4; k++ {
				a.enqueued("filler")
			}
			for k := 0; k < 11; k++ {
				a.enqueued("probe")
			}
			if v := a.decide("probe", priority); !v.admit {
				if v.reason != metrics.ShedPressure {
					t.Fatalf("unexpected shed reason %q", v.reason)
				}
				sheds++
			}
		}
		return float64(sheds) / float64(trials)
	}
	low, def, high := shedRate(-1), shedRate(0), shedRate(1)
	if high != 0 {
		t.Errorf("high-priority shed rate %.2f, want 0 below the hard wall", high)
	}
	if low <= def {
		t.Errorf("low-priority shed rate %.2f should exceed default %.2f", low, def)
	}
	if def < 0.3 || def > 0.8 {
		t.Errorf("default shed rate %.2f implausibly far from fill² = 0.56", def)
	}
}

func TestAdmissionPressureRungHighPriorityRides(t *testing.T) {
	a := newAdmission(admissionConfig{QueueMax: 20, Seed: 1, Clock: clock.NewVirtual(clock.Epoch)})
	// 15 queued of 20 (fill 0.75), probe over quota (quota = 20/2 = 10).
	for k := 0; k < 4; k++ {
		a.enqueued("filler")
	}
	for k := 0; k < 11; k++ {
		a.enqueued("probe")
	}
	for i := 0; i < 50; i++ {
		if v := a.decide("probe", 1); !v.admit {
			t.Fatalf("high priority pressure-shed at fill<1 (reason %q)", v.reason)
		}
		a.started("probe") // release so fill stays put
	}
}

func TestAdmissionBrownoutHysteresis(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	var transitions []bool
	a := newTestAdmission(12, clk, func(on bool, at time.Time) {
		transitions = append(transitions, on)
	})
	// Push fill to 1.0 (12/12 ≥ HighWater 0.75).
	for i := 0; i < 12; i++ {
		a.enqueued("alpha")
	}
	a.poll(clk.Now()) // starts the pressure timer
	if a.isBrownedOut() {
		t.Fatalf("browned out before BrownoutAfter elapsed")
	}
	clk.Advance(999 * time.Millisecond)
	a.poll(clk.Now())
	if a.isBrownedOut() {
		t.Fatalf("browned out 1ms early")
	}
	clk.Advance(time.Millisecond)
	a.poll(clk.Now())
	if !a.isBrownedOut() {
		t.Fatalf("not browned out after sustained pressure")
	}
	// While browned out, optional work sheds deterministically with the
	// brownout reason.
	a.started("alpha") // make room below the hard wall
	if v := a.decide("beta", -1); v.admit || v.reason != metrics.ShedBrownout {
		t.Fatalf("optional work during brownout: admit=%v reason=%q", v.admit, v.reason)
	}
	// Drain below LowWater (0.25 of 12 = 3).
	for i := 0; i < 9; i++ {
		a.started("alpha")
	}
	a.poll(clk.Now()) // starts the calm timer
	clk.Advance(1999 * time.Millisecond)
	a.poll(clk.Now())
	if !a.isBrownedOut() {
		t.Fatalf("recovered 1ms early")
	}
	clk.Advance(time.Millisecond)
	a.poll(clk.Now())
	if a.isBrownedOut() {
		t.Fatalf("still browned out after sustained calm")
	}
	want := []bool{true, false}
	if len(transitions) != len(want) || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	if st := a.stats(); st.Brownouts != 1 {
		t.Fatalf("brownouts = %d, want 1", st.Brownouts)
	}
}

func TestAdmissionBrownoutMidBandHolds(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := newTestAdmission(12, clk, nil)
	for i := 0; i < 12; i++ {
		a.enqueued("alpha")
	}
	a.poll(clk.Now())
	clk.Advance(time.Second)
	a.poll(clk.Now())
	if !a.isBrownedOut() {
		t.Fatalf("expected brownout")
	}
	// Drop into the middle band (6/12 = 0.5): state must hold indefinitely.
	for i := 0; i < 6; i++ {
		a.started("alpha")
	}
	clk.Advance(time.Hour)
	a.poll(clk.Now())
	if !a.isBrownedOut() {
		t.Fatalf("mid-band fill must not clear a brownout")
	}
}

func TestAdmissionRetryAfterFromDrainRate(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	a := newTestAdmission(100, clk, nil)
	// No completions yet: blind default of ~5s, jittered within ±20%.
	ra := a.retryAfter()
	if ra < 4*time.Second || ra > 6*time.Second {
		t.Fatalf("blind retryAfter = %v, want within [4s, 6s]", ra)
	}
	// 10 completions over the last second → ~10 jobs/s drain. With 20
	// queued, the estimate is ~(20+1)/10 ≈ 2.1s before jitter.
	for i := 0; i < 20; i++ {
		a.enqueued("alpha")
	}
	for i := 0; i < 10; i++ {
		clk.Advance(100 * time.Millisecond)
		a.finished(clk.Now())
	}
	ra = a.retryAfter()
	if ra < 1680*time.Millisecond || ra > 2520*time.Millisecond {
		t.Fatalf("derived retryAfter = %v, want ~2.1s ±20%%", ra)
	}
	// Stale completions age out of the window and the default returns.
	clk.Advance(drainWindow + time.Second)
	ra = a.retryAfter()
	if ra < 4*time.Second || ra > 6*time.Second {
		t.Fatalf("post-window retryAfter = %v, want within [4s, 6s]", ra)
	}
}

func TestAdmissionRetryAfterDeterministic(t *testing.T) {
	seq := func() []time.Duration {
		a := newTestAdmission(10, clock.NewVirtual(clock.Epoch), nil)
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, a.retryAfter())
		}
		return out
	}
	x, y := seq(), seq()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("seeded retryAfter diverged at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestAdmissionEntitledMatchesGuaranteed(t *testing.T) {
	a := newTestAdmission(12, clock.NewVirtual(clock.Epoch), nil)
	for i := 0; i < 30; i++ {
		tn := []string{"alpha", "beta", "gamma"}[i%3]
		pr := []int{0, 1, -1}[i%3]
		ent := a.entitled(tn, pr)
		v := a.decide(tn, pr)
		if ent && (!v.admit || !v.guaranteed) {
			t.Fatalf("step %d: entitled but verdict admit=%v guaranteed=%v", i, v.admit, v.guaranteed)
		}
		if v.admit {
			a.started(tn)
		}
	}
}

func TestAdmissionUnboundedQueueAdmitsAll(t *testing.T) {
	a := newAdmission(admissionConfig{QueueMax: 0, Clock: clock.NewVirtual(clock.Epoch)})
	for i := 0; i < 100; i++ {
		v := a.decide("anyone", 0)
		if !v.admit || !v.guaranteed {
			t.Fatalf("unbounded queue must admit everything as guaranteed")
		}
	}
	if v := a.decide("anyone", -1); !v.admit || v.guaranteed {
		t.Fatalf("low priority admits but is not guaranteed: admit=%v guaranteed=%v", v.admit, v.guaranteed)
	}
}
