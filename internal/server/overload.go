package server

import (
	"fmt"
	"sort"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/workload"
)

// The overload harness replays a seeded multi-tenant arrival pattern
// against the REAL admission ladder and the REAL weighted-fair arbiter
// under a virtual clock — hundreds of thousands of submissions on one CPU,
// in milliseconds of wall time, with bit-identical results on every run.
// Only the execution layer is simulated: a simJob burns `grant × tick` of
// virtual work per tick instead of running muscles. Everything the
// invariants quantify (quotas, shed probabilities, brownout hysteresis,
// fair-share arbitration) is the production code path.

// OverloadConfig parameterizes one harness run.
type OverloadConfig struct {
	// Budget is the arbiter's machine-wide LP budget.
	Budget int
	// QueueMax bounds the admission queue (the ladder's hard wall).
	QueueMax int
	// Tenants maps tenant names to weights for both the admission quotas
	// and the arbiter's fair shares.
	Tenants map[string]int
	// Pattern is the seeded arrival schedule to replay.
	Pattern workload.OverloadPattern
	// Tick is the virtual time step (default 5ms); RebalanceEvery is the
	// arbiter cadence (default 25ms).
	Tick           time.Duration
	RebalanceEvery time.Duration
	// Brownout hysteresis knobs (defaults as in production: 1s in, 2s out).
	BrownoutAfter time.Duration
	BrownoutExit  time.Duration
	// Seed feeds the admission ladder's RNG (default 1).
	Seed int64
	// MeasureLatency samples the real wall-clock latency of each decide()
	// call for the benchmark percentiles.
	MeasureLatency bool
}

// HealthTransition is one observed change of the harness's health ladder,
// stamped in virtual time from the pattern start.
type HealthTransition struct {
	At     time.Duration
	Status string
}

// OverloadReport is what a harness run measured.
type OverloadReport struct {
	Submitted int
	Admitted  int
	Completed int
	// Shed counts rejections by ladder reason.
	Shed map[string]int
	// GuaranteedSheds counts submissions the ladder shed even though the
	// tenant was entitled to the guaranteed rung at that instant. The
	// invariant is zero: guaranteed-share traffic is never 429'd.
	GuaranteedSheds int
	// TenantShare is each tenant's fraction of granted LP×time accumulated
	// while the arbiter was saturated (grants == budget) — the window where
	// fairness is contested. Under sustained all-tenant overload it must
	// track the configured weights.
	TenantShare map[string]float64
	// Transitions is the health ladder's virtual-time trajectory.
	Transitions []HealthTransition
	// WaitP50/WaitP99 are virtual queue-wait percentiles (admission →
	// budget grant) over admitted jobs.
	WaitP50 time.Duration
	WaitP99 time.Duration
	// DecideP50/DecideP99 are real wall-clock percentiles of the admission
	// decision itself (only when MeasureLatency).
	DecideP50 time.Duration
	DecideP99 time.Duration
	// PeakQueue is the deepest the wait queue got.
	PeakQueue int
}

// simJob is a simulated execution: a core.Member whose demand is its
// remaining work and whose "execution" is the harness decrementing
// remaining by grant × tick each step.
type simJob struct {
	id        string
	tenant    string
	remaining time.Duration
	wantLP    int
	goal      time.Duration
	deadline  time.Time
	grant     int
}

func (j *simJob) Demand() core.Demand {
	d := core.Demand{
		Valid:     true,
		CurrentLP: j.grant,
		DesiredLP: j.wantLP,
		OptimalLP: j.wantLP,
		Goal:      j.goal,
	}
	if j.goal > 0 {
		// Severity for the intra-tenant shrink order: how late the job will
		// be at its current grant.
		lp := j.grant
		if lp < 1 {
			lp = 1
		}
		d.PredictedWCT = j.remaining / time.Duration(lp)
		d.Overshoot = d.PredictedWCT - j.goal
	}
	return d
}

func (j *simJob) Grant(n int) { j.grant = n }

// RunOverload replays cfg.Pattern to completion and reports what happened.
func RunOverload(cfg OverloadConfig) *OverloadReport {
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.RebalanceEvery <= 0 {
		cfg.RebalanceEvery = 25 * time.Millisecond
	}
	clk := clock.NewVirtual(clock.Epoch)
	start := clk.Now()
	arb := core.NewArbiter(cfg.Budget, clk)
	for t, w := range cfg.Tenants {
		arb.SetTenantWeight(t, w)
	}
	adm := newAdmission(admissionConfig{
		QueueMax:      cfg.QueueMax,
		Tenants:       cfg.Tenants,
		BrownoutAfter: cfg.BrownoutAfter,
		BrownoutExit:  cfg.BrownoutExit,
		Seed:          cfg.Seed,
		Clock:         clk,
	})

	arrivals := cfg.Pattern.Arrivals()
	rep := &OverloadReport{
		Shed:        map[string]int{},
		TenantShare: map[string]float64{},
	}
	type queued struct {
		job *simJob
		at  time.Time
	}
	var (
		queue      []queued
		running    []*simJob
		waits      []time.Duration
		decideNS   []time.Duration
		grantTicks = map[string]int64{}
		totalTicks int64
		next       = 0
		nextID     = 0
		lastRebal  = start
		health     = HealthOK
	)
	healthOf := func() string {
		// The daemon ladder, minus the states a harness cannot enter
		// (draining, recovering).
		switch {
		case adm.isBrownedOut():
			return HealthBrownedOut
		case cfg.QueueMax > 0 && len(queue) >= cfg.QueueMax:
			return HealthOverloaded
		default:
			return HealthOK
		}
	}
	for next < len(arrivals) || len(queue) > 0 || len(running) > 0 {
		now := clk.Now()
		// 1. Drain every arrival due by now through the admission ladder.
		for next < len(arrivals) && arrivals[next].At <= now.Sub(start) {
			a := arrivals[next]
			next++
			rep.Submitted++
			ent := adm.entitled(a.Tenant, a.Priority)
			var t0 time.Time
			if cfg.MeasureLatency {
				t0 = time.Now()
			}
			v := adm.decide(a.Tenant, a.Priority)
			if cfg.MeasureLatency {
				decideNS = append(decideNS, time.Since(t0))
			}
			if !v.admit {
				rep.Shed[v.reason]++
				if ent {
					rep.GuaranteedSheds++
				}
				continue
			}
			nextID++
			j := &simJob{
				id:        fmt.Sprintf("sim-%d", nextID),
				tenant:    core.CanonTenant(a.Tenant),
				remaining: a.Work,
				wantLP:    a.WantLP,
				goal:      a.Goal,
			}
			if a.Goal > 0 {
				j.deadline = now.Add(a.Goal)
			}
			queue = append(queue, queued{job: j, at: now})
		}
		if len(queue) > rep.PeakQueue {
			rep.PeakQueue = len(queue)
		}
		// 2. Admit queued jobs while the arbiter has capacity, FIFO like the
		// daemon's admitLocked.
		for len(queue) > 0 {
			q := queue[0]
			if err := arb.AdmitFor(q.job.id, q.job.tenant, q.job); err != nil {
				break // at capacity
			}
			queue = queue[1:]
			adm.started(q.job.tenant)
			waits = append(waits, now.Sub(q.at))
			running = append(running, q.job)
			rep.Admitted++
		}
		// 3. Rebalance on the daemon's cadence.
		if now.Sub(lastRebal) >= cfg.RebalanceEvery {
			arb.Rebalance()
			lastRebal = now
		}
		// 4. Progress running jobs; account fair-share only while the budget
		// is saturated (fairness is only contested when there is contention).
		saturated := arb.Granted() >= cfg.Budget
		for _, j := range running {
			if j.grant > 0 {
				j.remaining -= time.Duration(j.grant) * cfg.Tick
				if saturated {
					grantTicks[j.tenant] += int64(j.grant)
				}
			}
		}
		if saturated {
			totalTicks++
		}
		// 5. Retire completed jobs (deterministic slice order).
		kept := running[:0]
		for _, j := range running {
			if j.remaining <= 0 {
				arb.Release(j.id)
				adm.finished(now)
				rep.Completed++
			} else {
				kept = append(kept, j)
			}
		}
		running = kept
		// 6. Observe the health ladder (poll drives brownout exit when the
		// queue has gone quiet).
		adm.poll(now)
		if h := healthOf(); h != health {
			health = h
			rep.Transitions = append(rep.Transitions, HealthTransition{At: now.Sub(start), Status: h})
		}
		clk.Advance(cfg.Tick)
	}
	var total int64
	for _, g := range grantTicks {
		total += g
	}
	if total > 0 {
		for t, g := range grantTicks {
			rep.TenantShare[t] = float64(g) / float64(total)
		}
	}
	rep.WaitP50, rep.WaitP99 = percentiles(waits)
	if cfg.MeasureLatency {
		rep.DecideP50, rep.DecideP99 = percentiles(decideNS)
	}
	return rep
}

// percentiles returns the p50 and p99 of a duration sample (zeroes when
// empty).
func percentiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return idx(0.50), idx(0.99)
}
