package server

import (
	"sync"
	"time"

	"skandium/internal/event"
)

// eventRecord is one job event rendered for the NDJSON stream. Times are
// milliseconds since the job start, so clients need no clock correlation.
type eventRecord struct {
	Seq    int64   `json:"seq"`
	TMS    float64 `json:"t_ms"`
	Ev     string  `json:"ev"` // the paper's ∆@notation, e.g. "map@as(3)"
	Kind   string  `json:"kind"`
	When   string  `json:"when"`
	Where  string  `json:"where"`
	Index  int64   `json:"index"`
	Parent int64   `json:"parent"`
	Card   int     `json:"card,omitempty"`
	Branch int     `json:"branch,omitempty"`
	Iter   int     `json:"iter,omitempty"`
	Worker int     `json:"worker"`
	Err    string  `json:"err,omitempty"`
	// Truncated marks the synthetic marker record a follower receives when
	// the ring dropped records between its cursor and the oldest retained
	// one; it holds the number of records lost to the reader.
	Truncated int64 `json:"truncated,omitempty"`
}

// eventLog is a bounded ring of a job's events with follow support: the
// listener appends from worker goroutines (it must stay cheap — no JSON
// here), NDJSON handlers snapshot and wait for growth.
type eventLog struct {
	mu      sync.Mutex
	start   time.Time
	base    int64 // sequence number of buf[0]
	buf     []eventRecord
	cap     int
	dropped int64 // records pushed out of the ring (memory stays bounded)
	closed  bool
	changed chan struct{} // replaced on every append/close; closed to wake waiters
}

func newEventLog(capacity int, start time.Time) *eventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &eventLog{start: start, cap: capacity, changed: make(chan struct{})}
}

// listener adapts the log to the stream's event hook.
func (l *eventLog) listener() event.Listener {
	return event.Func(func(e *event.Event) any {
		rec := eventRecord{
			TMS:    float64(e.Time.Sub(l.start)) / float64(time.Millisecond),
			Ev:     e.String(),
			Kind:   e.Node.Kind().String(),
			When:   e.When.String(),
			Where:  e.Where.String(),
			Index:  e.Index,
			Parent: e.Parent,
			Card:   e.Card,
			Branch: e.Branch,
			Iter:   e.Iter,
			Worker: e.Worker,
		}
		if e.Err != nil {
			rec.Err = e.Err.Error()
		}
		l.append(rec)
		return e.Param
	})
}

func (l *eventLog) append(rec eventRecord) {
	l.mu.Lock()
	rec.Seq = l.base + int64(len(l.buf))
	l.buf = append(l.buf, rec)
	if len(l.buf) > l.cap {
		drop := len(l.buf) - l.cap
		l.buf = append(l.buf[:0], l.buf[drop:]...)
		l.base += int64(drop)
		l.dropped += int64(drop)
	}
	ch := l.changed
	l.changed = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

// close marks the log complete (job finished) and wakes all followers.
func (l *eventLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	ch := l.changed
	l.changed = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

// snapshot returns the records with Seq >= from, the next cursor, whether
// the log is complete, how many records between from and the oldest
// retained one were lost to the ring (the caller surfaces those with an
// explicit truncation marker), and a channel that closes on the next change.
func (l *eventLog) snapshot(from int64) (recs []eventRecord, next int64, done bool, lost int64, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		lost = l.base - from // older records fell off the ring
		from = l.base
	}
	if idx := from - l.base; idx < int64(len(l.buf)) {
		recs = append(recs, l.buf[idx:]...)
	}
	return recs, l.base + int64(len(l.buf)), l.closed, lost, l.changed
}

// len returns the number of events ever appended.
func (l *eventLog) len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + int64(len(l.buf))
}

// droppedCount returns how many records the ring has evicted so far.
func (l *eventLog) droppedCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
