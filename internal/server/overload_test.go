package server

import (
	"testing"
	"time"

	"skandium/internal/metrics"
	"skandium/internal/workload"
)

// overloadAcceptanceConfig is the canonical 2× oversubscription episode:
// three tenants weighted 3/2/1 whose burst demand is double the budget's
// drain capacity (budget 24 LP × 1s / 120ms mean work = 200 jobs/s; burst
// offers 400/s split proportionally to the weights). QueueMax 121 makes the
// quotas 60/40/20 — their sum 120 stays under the hard wall, so guaranteed
// traffic alone can never trip "overloaded".
func overloadAcceptanceConfig(seed int64, burst time.Duration) OverloadConfig {
	warm := 20 * time.Second
	cool := 15 * time.Second
	return OverloadConfig{
		Budget:        24,
		QueueMax:      121,
		Tenants:       map[string]int{"alpha": 3, "beta": 2, "gamma": 1},
		BrownoutAfter: 100 * time.Millisecond,
		BrownoutExit:  2 * time.Second,
		Seed:          seed,
		Pattern: workload.OverloadPattern{
			Seed:       seed,
			Duration:   warm + burst + cool,
			BurstStart: warm,
			BurstEnd:   warm + burst,
			MeanWork:   120 * time.Millisecond,
			MaxWantLP:  4,
			Tenants: []workload.TenantLoad{
				{Name: "alpha", Weight: 3, Rate: 10, BurstRate: 200, GoalFrac: 0.3},
				{Name: "beta", Weight: 2, Rate: 6, BurstRate: 133},
				{Name: "gamma", Weight: 1, Rate: 4, BurstRate: 67},
			},
		},
	}
}

// TestOverloadFairnessInvariants is the acceptance run: hundreds of
// thousands of seeded submissions through the real admission ladder and the
// real weighted-fair arbiter under virtual time, asserting
//
//  1. granted-LP shares during saturation track the 3/2/1 weights within
//     10%,
//  2. guaranteed-share submissions are never shed,
//  3. the health ladder walks exactly ok → browned-out → ok.
func TestOverloadFairnessInvariants(t *testing.T) {
	cfg := overloadAcceptanceConfig(1, 480*time.Second)
	rep := RunOverload(cfg)

	if rep.Submitted < 150_000 {
		t.Fatalf("pattern produced %d submissions, want ≥ 150k (overload not exercised)", rep.Submitted)
	}
	t.Logf("submitted=%d admitted=%d completed=%d shed=%v peakQueue=%d",
		rep.Submitted, rep.Admitted, rep.Completed, rep.Shed, rep.PeakQueue)
	t.Logf("shares=%v transitions=%v waitP50=%v waitP99=%v",
		rep.TenantShare, rep.Transitions, rep.WaitP50, rep.WaitP99)

	// Conservation: every submission either admitted or shed, and every
	// admitted job completed (the harness drains to empty).
	sheds := 0
	for _, n := range rep.Shed {
		sheds += n
	}
	if rep.Admitted+sheds != rep.Submitted {
		t.Errorf("admitted %d + shed %d != submitted %d", rep.Admitted, sheds, rep.Submitted)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d != admitted %d", rep.Completed, rep.Admitted)
	}
	// 2× oversubscription must actually shed a substantial fraction.
	if frac := float64(sheds) / float64(rep.Submitted); frac < 0.25 {
		t.Errorf("shed fraction %.2f implausibly low for 2× oversubscription", frac)
	}
	if rep.Shed[metrics.ShedBrownout] == 0 {
		t.Errorf("no brownout sheds: %v", rep.Shed)
	}

	// Invariant 1: weighted fair shares within 10% (relative) of 3/2/1.
	want := map[string]float64{"alpha": 3.0 / 6, "beta": 2.0 / 6, "gamma": 1.0 / 6}
	for tenant, w := range want {
		got := rep.TenantShare[tenant]
		if got < 0.9*w || got > 1.1*w {
			t.Errorf("tenant %s granted-LP share %.3f outside ±10%% of %.3f", tenant, got, w)
		}
	}

	// Invariant 2: the guaranteed rung is inviolable.
	if rep.GuaranteedSheds != 0 {
		t.Errorf("%d guaranteed-share submissions were shed", rep.GuaranteedSheds)
	}

	// Invariant 3: the ladder walks ok → browned-out → ok, nothing else.
	wantTr := []string{HealthBrownedOut, HealthOK}
	if len(rep.Transitions) != len(wantTr) {
		t.Fatalf("health transitions %v, want exactly %v", rep.Transitions, wantTr)
	}
	for i, tr := range rep.Transitions {
		if tr.Status != wantTr[i] {
			t.Fatalf("transition %d = %s, want %s (all: %v)", i, tr.Status, wantTr[i], rep.Transitions)
		}
	}
	if rep.Transitions[0].At < cfg.Pattern.BurstStart {
		t.Errorf("browned out at %v, before the burst started at %v", rep.Transitions[0].At, cfg.Pattern.BurstStart)
	}
	if rep.Transitions[1].At < cfg.Pattern.BurstEnd {
		t.Errorf("recovered at %v, before the burst ended at %v", rep.Transitions[1].At, cfg.Pattern.BurstEnd)
	}
}

// TestOverloadDeterministic: the same seed replays to the identical report.
func TestOverloadDeterministic(t *testing.T) {
	run := func() *OverloadReport { return RunOverload(overloadAcceptanceConfig(7, 30*time.Second)) }
	a, b := run(), run()
	if a.Submitted != b.Submitted || a.Admitted != b.Admitted || a.Completed != b.Completed ||
		a.GuaranteedSheds != b.GuaranteedSheds || a.PeakQueue != b.PeakQueue ||
		a.WaitP50 != b.WaitP50 || a.WaitP99 != b.WaitP99 {
		t.Fatalf("seeded runs diverged:\n%+v\n%+v", a, b)
	}
	for r, n := range a.Shed {
		if b.Shed[r] != n {
			t.Fatalf("shed[%s] %d vs %d", r, n, b.Shed[r])
		}
	}
	for tn, s := range a.TenantShare {
		if b.TenantShare[tn] != s {
			t.Fatalf("share[%s] %v vs %v", tn, s, b.TenantShare[tn])
		}
	}
	if len(a.Transitions) != len(b.Transitions) {
		t.Fatalf("transition counts differ: %v vs %v", a.Transitions, b.Transitions)
	}
	for i := range a.Transitions {
		if a.Transitions[i] != b.Transitions[i] {
			t.Fatalf("transition %d differs: %v vs %v", i, a.Transitions[i], b.Transitions[i])
		}
	}
}

// TestOverloadLowPrioritySheddedFirst: a low-priority tenant suffers a
// higher shed rate than an equal-weight default-priority tenant under the
// same pressure.
func TestOverloadLowPrioritySheddedFirst(t *testing.T) {
	cfg := OverloadConfig{
		Budget:        8,
		QueueMax:      41, // quotas 20/20, sum 40 < 41
		Tenants:       map[string]int{"steady": 1, "cheap": 1},
		BrownoutAfter: 100 * time.Millisecond,
		BrownoutExit:  2 * time.Second,
		Seed:          3,
		Pattern: workload.OverloadPattern{
			Seed:       3,
			Duration:   120 * time.Second,
			BurstStart: 5 * time.Second,
			BurstEnd:   110 * time.Second,
			MeanWork:   120 * time.Millisecond,
			Tenants: []workload.TenantLoad{
				{Name: "steady", Weight: 1, Rate: 5, BurstRate: 70},
				{Name: "cheap", Weight: 1, Rate: 5, BurstRate: 70, Priority: -1},
			},
		},
	}
	rep := RunOverload(cfg)
	shedOf := func(tenant string) float64 {
		// Approximate per-tenant shed rate from admissions: both tenants
		// offered statistically identical load, so fewer grants ⇒ more shed.
		return rep.TenantShare[tenant]
	}
	if rep.GuaranteedSheds != 0 {
		t.Fatalf("%d guaranteed sheds", rep.GuaranteedSheds)
	}
	// Low priority never rides the guaranteed rung, so under brownout the
	// cheap tenant is starved of new admissions while steady keeps its
	// quota: steady must end up with the (much) larger granted share.
	if shedOf("steady") <= shedOf("cheap") {
		t.Errorf("steady share %.3f not above low-priority share %.3f: %+v",
			shedOf("steady"), shedOf("cheap"), rep)
	}
}

// BenchmarkOverloadAdmission publishes the front door's measured overhead:
// real wall-clock percentiles of the admission decision, plus virtual-time
// shed rate and queue-wait, over a ~35k-submission episode.
func BenchmarkOverloadAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := overloadAcceptanceConfig(int64(i+1), 80*time.Second)
		cfg.MeasureLatency = true
		rep := RunOverload(cfg)
		sheds := 0
		for _, n := range rep.Shed {
			sheds += n
		}
		b.ReportMetric(float64(rep.DecideP50.Nanoseconds()), "admit_p50_ns")
		b.ReportMetric(float64(rep.DecideP99.Nanoseconds()), "admit_p99_ns")
		b.ReportMetric(float64(sheds)/float64(rep.Submitted), "shed_rate")
		b.ReportMetric(float64(rep.WaitP99)/float64(time.Millisecond), "wait_p99_ms")
	}
}
