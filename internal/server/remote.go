package server

import (
	"fmt"
	"sync"
	"time"

	"skandium"
	"skandium/internal/exec"
	"skandium/internal/plan"
	"skandium/internal/remote"
)

// remoteEligible reports whether a job can route through the cluster: the
// blueprint declares a remote codec, its program is shardable, and the job
// uses none of the knobs that only the local stream implements (WCT goal,
// fault-tolerance envelope) — those jobs keep the local path unchanged.
func (s *Server) remoteEligible(j *job) bool {
	if !j.remoteOK {
		return false
	}
	prog, err := plan.Of(j.runner.Node())
	if err != nil {
		return false
	}
	return remote.Shardable(prog) != nil
}

// startRemote launches an admitted job on the cluster instead of the local
// pool. Like start, it is called with s.mu held (from admitLocked).
func (s *Server) startRemote(j *job) {
	h := &remoteHandle{cluster: s.cfg.Cluster, done: make(chan struct{})}
	j.mu.Lock()
	j.handle = h
	j.state = stateRunning
	j.started = s.clk.Now()
	j.mu.Unlock()
	if s.jn != nil {
		_ = s.jn.Start(j.id)
	}
	j.log.append(eventRecord{
		TMS:  float64(s.clk.Now().Sub(j.log.start)) / float64(time.Millisecond),
		Ev:   fmt.Sprintf("cluster@route(%s tenant=%s)", j.skeleton, j.tenant),
		Kind: "cluster", When: "route", Where: "cluster",
	})
	s.remoteJobs[j.id] = j
	go func() {
		res, err := s.cfg.Cluster.RunAs(j.tenant, j.skeleton, j.params)
		s.mu.Lock()
		delete(s.remoteJobs, j.id)
		s.mu.Unlock()
		h.finish(res, err)
	}()
	go s.watch(j, h)
}

// onNodeEvent threads a cluster health transition into the event log of
// every job currently running on the cluster — the job's stream of events
// shows the node loss (and recovery) that explains its timeline. Records
// carry the full state transition and the classified failure cause
// ("refused", "timeout", "http-5xx", ...), not just a binary up/down.
func (s *Server) onNodeEvent(ev remote.NodeEvent) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.remoteJobs))
	for _, j := range s.remoteJobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	// node-down / node-up name the serving boundary (the transitions the
	// dispatcher acts on); everything else is a node-state refinement
	// (healthy→suspect, down→probation, probation→healthy, ...).
	var kind string
	switch {
	case ev.To == remote.StateDown:
		kind = "node-down"
	case ev.From == remote.StateDown:
		kind = "node-up"
	default:
		kind = "node-state"
	}
	detail := ev.Addr
	if ev.From != ev.To {
		detail = fmt.Sprintf("%s %s→%s", ev.Addr, ev.From, ev.To)
	}
	if ev.Cause != "" {
		detail += " cause=" + ev.Cause
	}
	for _, j := range jobs {
		j.log.append(eventRecord{
			TMS:  float64(ev.Time.Sub(j.log.start)) / float64(time.Millisecond),
			Ev:   fmt.Sprintf("cluster@%s(%s)", kind, detail),
			Kind: "cluster", When: kind, Where: ev.Addr, Err: ev.Err,
		})
	}
}

// remoteHandle is the erased face of a cluster-routed job. The cluster owns
// execution (sharding, retry, per-node LP via the cluster arbiter), so the
// per-stream levers are inert: there is no local pool to cap and no
// controller to re-aim. Result/Done/Cancel behave exactly like the local
// handle, which is all the daemon's watch loop relies on.
type remoteHandle struct {
	cluster *remote.Cluster
	done    chan struct{}
	once    sync.Once
	mu      sync.Mutex
	res     any
	err     error
}

func (h *remoteHandle) finish(res any, err error) {
	h.once.Do(func() {
		h.mu.Lock()
		h.res, h.err = res, err
		h.mu.Unlock()
		close(h.done)
	})
}

func (h *remoteHandle) Done() <-chan struct{} { return h.done }

func (h *remoteHandle) Result() (any, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

func (h *remoteHandle) Decisions() []skandium.Decision { return nil }
func (h *remoteHandle) Analyses() int                  { return 0 }
func (h *remoteHandle) Demand() skandium.Demand        { return skandium.Demand{} }
func (h *remoteHandle) LP() int                        { return h.cluster.LP() }
func (h *remoteHandle) Active() int                    { return 0 }
func (h *remoteHandle) SetLP(int)                      {}
func (h *remoteHandle) SetCap(int)                     {}
func (h *remoteHandle) Cap() int                       { return 0 }
func (h *remoteHandle) SetGoal(time.Duration)          {}
func (h *remoteHandle) SetMaxLP(int)                   {}
func (h *remoteHandle) Stats() exec.Stats              { return exec.Stats{} }
func (h *remoteHandle) FaultStats() skandium.FaultStats {
	return skandium.FaultStats{}
}
func (h *remoteHandle) Failures() *skandium.FailureError { return nil }

// Cancel resolves the handle with err; the in-flight cluster tasks finish
// on their workers but their results are discarded.
func (h *remoteHandle) Cancel(err error) { h.finish(nil, err) }

func (h *remoteHandle) Close() {}
