package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"skandium/internal/remote"
)

// newTestCluster serves in-process workers over loopback HTTP and builds a
// coordinator on them, returning the worker servers for mid-test sabotage.
func newTestClusterDaemon(t *testing.T, workers int) (*Server, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var endpoints []string
	wss := make([]*httptest.Server, workers)
	for i := range wss {
		w := remote.NewWorker(remote.WorkerConfig{LP: 2, MaxLP: 4})
		ws := httptest.NewServer(w.Handler())
		t.Cleanup(func() { ws.Close(); w.Close() })
		wss[i] = ws
		endpoints = append(endpoints, ws.URL)
	}
	cl, err := remote.New(remote.Config{
		Workers:       endpoints,
		Budget:        4,
		ProbeInterval: 25 * time.Millisecond,
		Rebalance:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	srv, ts := newTestDaemon(t, Config{Budget: 4, Cluster: cl})
	return srv, ts, wss
}

func waitJobDone(t *testing.T, j *job) (any, error) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j.mu.Lock()
		h := j.handle
		j.mu.Unlock()
		if h != nil {
			select {
			case <-h.Done():
				return h.Result()
			case <-time.After(10 * time.Millisecond):
			}
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Fatal("job never finished")
	return nil, nil
}

// jobEvents renders a job's full event log as one string.
func jobEvents(j *job) string {
	recs, _, _, _, _ := j.log.snapshot(0)
	var sb strings.Builder
	for _, r := range recs {
		sb.WriteString(r.Ev)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestServerRoutesEligibleJobToCluster: a goal-less sleepgrid routes to the
// workers, completes with the right result, and the daemon's metrics and
// health endpoints expose the per-node cluster state.
func TestServerRoutesEligibleJobToCluster(t *testing.T) {
	srv, ts, _ := newTestClusterDaemon(t, 2)

	j, err := srv.Submit(SubmitSpec{
		Skeleton: "sleepgrid",
		Params:   map[string]any{"k": 4, "m": 4, "cell_ms": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := waitJobDone(t, j)
	if err != nil {
		t.Fatal(err)
	}
	if res != 16 {
		t.Fatalf("result %v, want 16 surviving cells", res)
	}
	if evs := jobEvents(j); !strings.Contains(evs, "cluster@route") {
		t.Fatalf("event log lacks the cluster routing marker:\n%s", evs)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"skelrund_cluster_budget 4",
		"skelrund_cluster_node_up{node=",
		"skelrund_cluster_node_tasks_total{node=",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"cluster"`) || !strings.Contains(string(body), `"healthy": 2`) {
		t.Fatalf("/healthz lacks the cluster section:\n%s", body)
	}
}

// TestServerKeepsGoalJobsLocal: a WCT goal needs the local controller, so
// the job must not route to the cluster.
func TestServerKeepsGoalJobsLocal(t *testing.T) {
	srv, _, _ := newTestClusterDaemon(t, 1)
	j, err := srv.Submit(SubmitSpec{
		Skeleton: "sleepgrid",
		Params:   map[string]any{"k": 2, "m": 2, "cell_ms": 1},
		Goal:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waitJobDone(t, j); err != nil {
		t.Fatal(err)
	}
	if evs := jobEvents(j); strings.Contains(evs, "cluster@route") {
		t.Fatal("goal-bearing job was routed to the cluster")
	}
}

// TestServerNodeLossInJobLog: killing a worker mid-job lands a node-down
// record in the running job's event log, and the job still completes on
// the survivor.
func TestServerNodeLossInJobLog(t *testing.T) {
	srv, _, wss := newTestClusterDaemon(t, 2)

	j, err := srv.Submit(SubmitSpec{
		Skeleton: "sleepgrid",
		Params:   map[string]any{"k": 6, "m": 4, "cell_ms": 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(150*time.Millisecond, wss[1].CloseClientConnections)
	time.AfterFunc(160*time.Millisecond, wss[1].Close)

	res, err := waitJobDone(t, j)
	if err != nil {
		t.Fatalf("job failed despite a surviving worker: %v", err)
	}
	if res != 24 {
		t.Fatalf("result %v, want 24", res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if evs := jobEvents(j); strings.Contains(evs, "cluster@node-down") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no node-down record in the job event log:\n%s", jobEvents(j))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
