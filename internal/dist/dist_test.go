package dist

import (
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

func wordcountish(sleep time.Duration, card int) (*skel.Node, *muscle.Muscle, *muscle.Muscle, *muscle.Muscle) {
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		out := make([]any, card)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) {
		time.Sleep(sleep)
		return 1, nil
	})
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
	return skel.NewMap(fs, skel.NewSeq(fe), fm), fs, fe, fm
}

func TestClusterExecutes(t *testing.T) {
	nd, _, _, _ := wordcountish(time.Millisecond, 6)
	c := New(Config{Nodes: 3, ShipLatency: 100 * time.Microsecond})
	defer c.Close()
	res, err := c.NewExecution(nil).Start(nd, 0).Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 6 {
		t.Fatalf("result %v, want 6", res)
	}
	stats := c.Stats()
	if len(stats) == 0 {
		t.Fatal("no node stats recorded")
	}
	total := 0
	for _, st := range stats {
		total += st.Tasks
		if st.BusyTime <= 0 {
			t.Fatalf("node %d has zero busy time over %d tasks", st.Node, st.Tasks)
		}
	}
	if total < 6 {
		t.Fatalf("only %d tasks accounted", total)
	}
}

func TestShipLatencySlowsExecution(t *testing.T) {
	nd, _, _, _ := wordcountish(0, 4)
	fast := New(Config{Nodes: 1})
	defer fast.Close()
	start := time.Now()
	if _, err := fast.NewExecution(nil).Start(nd, 0).Get(); err != nil {
		t.Fatal(err)
	}
	local := time.Since(start)

	slow := New(Config{Nodes: 1, ShipLatency: 3 * time.Millisecond})
	defer slow.Close()
	start = time.Now()
	if _, err := slow.NewExecution(nil).Start(nd, 0).Get(); err != nil {
		t.Fatal(err)
	}
	remote := time.Since(start)
	if remote < local+10*time.Millisecond {
		t.Fatalf("shipping latency not paid: local %v, remote %v", local, remote)
	}
}

func TestNodesScaleThroughput(t *testing.T) {
	nd, _, _, _ := wordcountish(4*time.Millisecond, 8)
	run := func(nodes int) time.Duration {
		c := New(Config{Nodes: nodes})
		defer c.Close()
		start := time.Now()
		if _, err := c.NewExecution(nil).Start(nd, 0).Get(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	one := run(1)  // ~32ms of sleeps
	four := run(4) // ~8ms of sleeps
	if four >= one {
		t.Fatalf("4 nodes (%v) not faster than 1 node (%v)", four, one)
	}
}

// TestAutonomicClusterScaling: the unchanged WCT controller provisions
// extra nodes mid-run — the paper's distributed adaptation, centralised.
func TestAutonomicClusterScaling(t *testing.T) {
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		out := make([]any, 4)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) {
		time.Sleep(6 * time.Millisecond)
		return 1, nil
	})
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) { return len(ps), nil })
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	outer := skel.NewMap(fs, inner, fm)
	// Sequential: 16 × 6ms ≈ 96ms (+ instant splits). Goal: 60ms.

	c := New(Config{Nodes: 1, MaxNodes: 8})
	defer c.Close()
	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	ctl := core.NewController(core.Config{WCTGoal: 60 * time.Millisecond, MaxLP: 8},
		outer, c, est, tracker, nil)
	core.Attach(reg, tracker, ctl)

	start := time.Now()
	res, err := c.NewExecution(reg).Start(outer, 0).Get()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res != 4 {
		t.Fatalf("result %v, want 4", res)
	}
	if len(ctl.Decisions()) == 0 {
		t.Fatal("controller never provisioned nodes")
	}
	grew := false
	for _, d := range ctl.Decisions() {
		if d.NewLP > d.OldLP {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no node increase: %v", ctl.Decisions())
	}
	if elapsed >= 95*time.Millisecond {
		t.Fatalf("autonomic cluster no faster than sequential: %v", elapsed)
	}
}

func TestConcurrentStatsAccess(t *testing.T) {
	nd, _, _, _ := wordcountish(100*time.Microsecond, 16)
	c := New(Config{Nodes: 4})
	defer c.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Stats()
			c.Nodes()
		}
	}()
	if _, err := c.NewExecution(nil).Start(nd, 0).Get(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestCompiledProgramSeam: a coordinator compiles the program once and
// injects inputs through exec.Root.StartProgram; results match Start.
func TestCompiledProgramSeam(t *testing.T) {
	nd, _, _, _ := wordcountish(100*time.Microsecond, 5)
	c := New(Config{Nodes: 2})
	defer c.Close()

	prog, err := c.Compile(nd)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Node() != nd {
		t.Fatal("compiled program not rooted at the source node")
	}
	// Compile is cached on the node: recompiling yields the same program.
	again, err := c.Compile(nd)
	if err != nil {
		t.Fatal(err)
	}
	if again != prog {
		t.Fatal("recompiling the same node built a second program")
	}

	viaProgram, err := c.NewExecution(nil).StartProgram(prog, 0).Get()
	if err != nil {
		t.Fatal(err)
	}
	viaStart, err := c.NewExecution(nil).Start(nd, 0).Get()
	if err != nil {
		t.Fatal(err)
	}
	if viaProgram != viaStart || viaProgram != 5 {
		t.Fatalf("StartProgram=%v Start=%v, want both 5", viaProgram, viaStart)
	}
}

// TestVirtualClockShipLatency: the shipping delay goes through the injected
// clock, so a virtual-clock cluster simulation with an hour of one-way
// latency completes in real milliseconds while the virtual clock pays the
// full round trips. Regression test for dispatch using time.Sleep.
func TestVirtualClockShipLatency(t *testing.T) {
	nd, _, _, _ := wordcountish(0, 4) // instant muscles: only shipping costs
	vclk := clock.NewVirtual(clock.Epoch)
	ship := time.Hour
	c := New(Config{Nodes: 2, ShipLatency: ship, Clock: vclk})
	defer c.Close()

	start := time.Now()
	res, err := c.NewExecution(nil).Start(nd, 0).Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != 4 {
		t.Fatalf("result %v, want 4", res)
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("virtual shipping burned %v of wall time", wall)
	}
	// Every dispatched task pays two one-way ships on the virtual clock.
	if adv := vclk.Now().Sub(clock.Epoch); adv < 2*ship {
		t.Fatalf("virtual clock advanced only %v, want >= %v", adv, 2*ship)
	}
}
