// Package dist simulates the distributed execution environment the paper
// sketches in §4/§6: "a centralised distribution of tasks to a distributed
// set of workers, adding or removing workers like adding or removing
// threads in a centralised manner".
//
// A Cluster is a centralized coordinator handing skeleton tasks to worker
// nodes. Each task dispatch pays a configurable shipping latency in both
// directions (the substitution for a real network: the relevant behaviour —
// tasks get slower per hop, parallelism still scales throughput — is
// preserved; see DESIGN.md). The number of provisioned nodes is the
// autonomic lever: the Cluster implements core.LPControl, so the unchanged
// WCT controller scales a simulated cluster exactly like it scales a
// thread pool.
package dist

import (
	"sync"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the initial number of worker nodes (default 1).
	Nodes int
	// MaxNodes caps provisioning (0 = unlimited).
	MaxNodes int
	// ShipLatency is the one-way task shipping delay paid before and after
	// every task execution (RTT = 2×ShipLatency).
	ShipLatency time.Duration
	// Clock is the time source (default system clock).
	Clock clock.Clock
	// Gauge observes (now, busy nodes, provisioned nodes) transitions.
	Gauge func(now time.Time, busy, nodes int)
}

// NodeStats is per-node accounting.
type NodeStats struct {
	Node     int
	Tasks    int
	BusyTime time.Duration
}

// Cluster is the centralized coordinator. It wraps the ordinary task pool:
// every pool worker models one remote node.
type Cluster struct {
	pool *exec.Pool
	clk  clock.Clock
	ship time.Duration

	mu    sync.Mutex
	stats map[int]*NodeStats
}

// New provisions a cluster.
func New(cfg Config) *Cluster {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	pool := exec.NewPool(cfg.Clock, cfg.Nodes, cfg.MaxNodes)
	c := &Cluster{
		pool:  pool,
		clk:   cfg.Clock,
		ship:  cfg.ShipLatency,
		stats: make(map[int]*NodeStats),
	}
	if cfg.Gauge != nil {
		pool.SetGauge(exec.GaugeFunc(cfg.Gauge))
	}
	pool.SetRunWrapper(c.dispatch)
	return c
}

// dispatch models one remote task execution: ship there, run, ship back.
// The shipping delay goes through the injected clock (clock.Sleep), so a
// virtual-clock cluster simulation advances virtual time instead of burning
// real wall time.
func (c *Cluster) dispatch(node int, run func()) {
	if c.ship > 0 {
		clock.Sleep(c.clk, c.ship)
	}
	start := c.clk.Now()
	run()
	busy := c.clk.Now().Sub(start)
	if c.ship > 0 {
		clock.Sleep(c.clk, c.ship)
	}
	c.mu.Lock()
	st, ok := c.stats[node]
	if !ok {
		st = &NodeStats{Node: node}
		c.stats[node] = st
	}
	st.Tasks++
	st.BusyTime += busy
	c.mu.Unlock()
}

// NewExecution opens an execution session on the cluster; events reports to
// reg (nil = fresh).
func (c *Cluster) NewExecution(reg *event.Registry) *exec.Root {
	return exec.NewRoot(c.pool, reg, c.clk)
}

// Compile lowers a skeleton tree to the shared program IR. A distributed
// coordinator ships (or references) the compiled program once; worker nodes
// interpret steps without re-deriving structure per task. Local executions
// feed the result to exec.Root.StartProgram — the same seam a remote
// backend would use.
func (c *Cluster) Compile(node *skel.Node) (*plan.Program, error) {
	return plan.Of(node)
}

// Pool exposes the underlying coordinator queue.
func (c *Cluster) Pool() *exec.Pool { return c.pool }

// LP implements core.LPControl: the number of provisioned nodes.
func (c *Cluster) LP() int { return c.pool.LP() }

// SetLP implements core.LPControl: provision or decommission nodes.
// Decommissioned nodes finish their current task first, exactly like the
// paper's thread semantics.
func (c *Cluster) SetLP(n int) { c.pool.SetLP(n) }

// Nodes returns the provisioned node count.
func (c *Cluster) Nodes() int { return c.pool.LP() }

// SetNodes provisions or decommissions nodes (alias of SetLP in cluster
// vocabulary).
func (c *Cluster) SetNodes(n int) { c.pool.SetLP(n) }

// Stats returns per-node accounting in node order.
func (c *Cluster) Stats() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := -1
	for id := range c.stats {
		if id > max {
			max = id
		}
	}
	out := make([]NodeStats, 0, len(c.stats))
	for id := 0; id <= max; id++ {
		if st, ok := c.stats[id]; ok {
			out = append(out, *st)
		}
	}
	return out
}

// Close decommissions the cluster; queued tasks are dropped.
func (c *Cluster) Close() { c.pool.Close() }
