package estimate

import (
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/muscle"
)

// Registry tracks, per muscle, the duration estimate t(m) and — for Split
// and Condition muscles — the cardinality estimate |m|. It is the shared
// knowledge base the state machines write to and the ADG builder reads
// from. Safe for concurrent use.
type Registry struct {
	factory Factory

	// ver counts mutations (observations and inits). Readers use it to
	// detect that nothing changed between two analyses and reuse derived
	// results; it only ever advances, so a matching version can never mean
	// a stale view.
	ver atomic.Uint64

	mu   sync.RWMutex
	dur  map[muscle.ID]Estimator
	card map[muscle.ID]Estimator
}

// Version returns the mutation counter: it advances on every Observe*,
// Init* and Restore. Read it before consulting estimates; if it reads the
// same on a later check, the estimates are unchanged in between.
func (r *Registry) Version() uint64 { return r.ver.Load() }

// NewRegistry builds a registry whose per-quantity estimators come from
// factory; nil means the paper's default, EWMA with ρ=0.5.
func NewRegistry(factory Factory) *Registry {
	if factory == nil {
		factory = EWMAFactory(DefaultRho)
	}
	return &Registry{
		factory: factory,
		dur:     make(map[muscle.ID]Estimator),
		card:    make(map[muscle.ID]Estimator),
	}
}

func (r *Registry) estimator(m map[muscle.ID]Estimator, id muscle.ID) Estimator {
	if e, ok := m[id]; ok {
		return e
	}
	e := r.factory()
	m[id] = e
	return e
}

// ObserveDuration records one actual execution time of muscle id.
func (r *Registry) ObserveDuration(id muscle.ID, d time.Duration) {
	r.mu.Lock()
	r.estimator(r.dur, id).Observe(d.Seconds())
	r.ver.Add(1)
	r.mu.Unlock()
}

// InitDuration seeds t(m) (paper scenario 2, "goal with initialization").
func (r *Registry) InitDuration(id muscle.ID, d time.Duration) {
	r.mu.Lock()
	r.estimator(r.dur, id).Init(d.Seconds())
	r.ver.Add(1)
	r.mu.Unlock()
}

// Duration returns the t(m) estimate; ok is false when the muscle has never
// been observed nor initialized.
func (r *Registry) Duration(id muscle.ID) (time.Duration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.dur[id]
	if !ok {
		return 0, false
	}
	v, ok := e.Value()
	if !ok {
		return 0, false
	}
	return time.Duration(v * float64(time.Second)), true
}

// ObserveCard records one actual cardinality of a Split or Condition
// muscle: the number of sub-problems, the number of true verdicts of a
// while condition, or the d&c recursion depth.
func (r *Registry) ObserveCard(id muscle.ID, n float64) {
	r.mu.Lock()
	r.estimator(r.card, id).Observe(n)
	r.ver.Add(1)
	r.mu.Unlock()
}

// InitCard seeds |m|.
func (r *Registry) InitCard(id muscle.ID, n float64) {
	r.mu.Lock()
	r.estimator(r.card, id).Init(n)
	r.ver.Add(1)
	r.mu.Unlock()
}

// Card returns the |m| estimate.
func (r *Registry) Card(id muscle.ID) (float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.card[id]
	if !ok {
		return 0, false
	}
	return e.Value()
}

// DurationObservations returns how many actual durations of id were
// consumed (0 for unknown muscles).
func (r *Registry) DurationObservations(id muscle.ID) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.dur[id]; ok {
		return e.Observations()
	}
	return 0
}

// Complete reports whether every muscle in ids has a duration estimate, and
// every id in cardIDs a cardinality estimate. The paper's first analysis
// can only run once "all muscles have been executed at least once" (or were
// initialized); the controller uses Complete as that gate.
func (r *Registry) Complete(ids []muscle.ID, cardIDs []muscle.ID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range ids {
		e, ok := r.dur[id]
		if !ok {
			return false
		}
		if _, ok := e.Value(); !ok {
			return false
		}
	}
	for _, id := range cardIDs {
		e, ok := r.card[id]
		if !ok {
			return false
		}
		if _, ok := e.Value(); !ok {
			return false
		}
	}
	return true
}

// ProfileEntry is one muscle's exported estimates.
type ProfileEntry struct {
	Duration    time.Duration
	HasDuration bool
	Card        float64
	HasCard     bool
}

// Profile is a snapshot of every estimate in a registry, keyed by muscle.
// It is what a run exports and a later run imports to start "with
// initialization".
type Profile map[muscle.ID]ProfileEntry

// Snapshot exports the current estimates.
func (r *Registry) Snapshot() Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p := make(Profile)
	for id, e := range r.dur {
		if v, ok := e.Value(); ok {
			en := p[id]
			en.Duration = time.Duration(v * float64(time.Second))
			en.HasDuration = true
			p[id] = en
		}
	}
	for id, e := range r.card {
		if v, ok := e.Value(); ok {
			en := p[id]
			en.Card = v
			en.HasCard = true
			p[id] = en
		}
	}
	return p
}

// Restore seeds the registry from a profile via Init (it does not count as
// observations).
func (r *Registry) Restore(p Profile) {
	for id, en := range p {
		if en.HasDuration {
			r.InitDuration(id, en.Duration)
		}
		if en.HasCard {
			r.InitCard(id, en.Card)
		}
	}
}
