package estimate

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"skandium/internal/muscle"
)

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Value(); ok {
		t.Fatal("fresh estimator reports a value")
	}
	e.Observe(10)
	v, ok := e.Value()
	if !ok || v != 10 {
		t.Fatalf("after first observation: %v/%v", v, ok)
	}
}

func TestEWMAPaperFormula(t *testing.T) {
	// newEstimatedVal = ρ·lastActual + (1-ρ)·previousEstimated
	e := NewEWMA(0.5)
	e.Observe(10)
	e.Observe(20) // 0.5*20 + 0.5*10 = 15
	if v, _ := e.Value(); v != 15 {
		t.Fatalf("got %v, want 15", v)
	}
	e.Observe(5) // 0.5*5 + 0.5*15 = 10
	if v, _ := e.Value(); v != 10 {
		t.Fatalf("got %v, want 10", v)
	}
	if e.Observations() != 3 {
		t.Fatalf("observations = %d, want 3", e.Observations())
	}
}

func TestEWMARhoOneKeepsLast(t *testing.T) {
	// "if ρ is set to 1, then only the last measure will be taken into
	// account"
	e := NewEWMA(1)
	for _, v := range []float64{3, 9, 27} {
		e.Observe(v)
	}
	if v, _ := e.Value(); v != 27 {
		t.Fatalf("got %v, want 27", v)
	}
}

func TestEWMARhoZeroKeepsFirst(t *testing.T) {
	// "if ρ is set to 0, then only the first value will be taken into
	// account"
	e := NewEWMA(0)
	for _, v := range []float64{3, 9, 27} {
		e.Observe(v)
	}
	if v, _ := e.Value(); v != 3 {
		t.Fatalf("got %v, want 3", v)
	}
}

func TestEWMAInitSeedsWithoutObservation(t *testing.T) {
	e := NewEWMA(0.5)
	e.Init(40)
	v, ok := e.Value()
	if !ok || v != 40 {
		t.Fatalf("init not visible: %v/%v", v, ok)
	}
	if e.Observations() != 0 {
		t.Fatal("Init must not count as an observation")
	}
	e.Observe(20) // 0.5*20 + 0.5*40 = 30: init acts as previous estimate
	if v, _ := e.Value(); v != 30 {
		t.Fatalf("got %v, want 30", v)
	}
}

func TestEWMABadRhoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ρ=2")
		}
	}()
	NewEWMA(2)
}

// Property: an EWMA estimate always stays within [min, max] of everything
// it has seen (observations and init).
func TestEWMABoundedProperty(t *testing.T) {
	f := func(rhoRaw uint8, seed []float64) bool {
		rho := float64(rhoRaw%101) / 100
		e := NewEWMA(rho)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, raw := range seed {
			v := normalize(raw)
			e.Observe(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if math.IsInf(lo, 1) {
			return true // nothing observed
		}
		got, ok := e.Value()
		return ok && got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// normalize maps an arbitrary generated float into [0, 1e6) so additive
// epsilons in bound checks stay meaningful (at 1e308 scale the EWMA's
// floating-point rounding legitimately exceeds any absolute epsilon).
func normalize(raw float64) float64 {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 0
	}
	return math.Mod(math.Abs(raw), 1e6)
}

func TestMean(t *testing.T) {
	m := NewMean()
	m.Init(100)
	if v, ok := m.Value(); !ok || v != 100 {
		t.Fatalf("init: %v/%v", v, ok)
	}
	m.Observe(2)
	m.Observe(4)
	if v, _ := m.Value(); v != 3 {
		t.Fatalf("mean = %v, want 3 (init ignored once observed)", v)
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		w.Observe(v)
	}
	if v, _ := w.Value(); v != 4 { // (3+4+5)/3
		t.Fatalf("window mean = %v, want 4", v)
	}
}

func TestMedianWindowRobustToOutlier(t *testing.T) {
	w := NewMedianWindow(5)
	for _, v := range []float64{10, 11, 9, 1000, 10} {
		w.Observe(v)
	}
	if v, _ := w.Value(); v != 10 {
		t.Fatalf("median = %v, want 10", v)
	}
	// Even window: average of the middle two.
	w2 := NewMedianWindow(4)
	for _, v := range []float64{1, 2, 3, 4} {
		w2.Observe(v)
	}
	if v, _ := w2.Value(); v != 2.5 {
		t.Fatalf("even median = %v, want 2.5", v)
	}
}

func TestLast(t *testing.T) {
	l := NewLast()
	l.Observe(1)
	l.Observe(7)
	if v, _ := l.Value(); v != 7 {
		t.Fatalf("last = %v, want 7", v)
	}
}

// Property: Window and Median values always lie within the min/max of the
// last k observations.
func TestWindowBoundedProperty(t *testing.T) {
	f := func(vals []float64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		w := NewWindow(k)
		med := NewMedianWindow(k)
		var clean []float64
		for _, raw := range vals {
			v := normalize(raw)
			w.Observe(v)
			med.Observe(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		tail := clean
		if len(tail) > k {
			tail = tail[len(tail)-k:]
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range tail {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		wv, _ := w.Value()
		mv, _ := med.Value()
		const eps = 1e-9
		return wv >= lo-eps && wv <= hi+eps && mv >= lo-eps && mv <= hi+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- registry -------------------------------------------------------------------

func TestRegistryDurations(t *testing.T) {
	r := NewRegistry(nil)
	m := muscle.NewExecute("m", func(p any) (any, error) { return p, nil })
	if _, ok := r.Duration(m.ID()); ok {
		t.Fatal("unknown muscle reports a duration")
	}
	r.ObserveDuration(m.ID(), 100*time.Millisecond)
	d, ok := r.Duration(m.ID())
	if !ok || d != 100*time.Millisecond {
		t.Fatalf("duration %v/%v", d, ok)
	}
	r.ObserveDuration(m.ID(), 200*time.Millisecond)
	if d, _ := r.Duration(m.ID()); d != 150*time.Millisecond {
		t.Fatalf("EWMA duration %v, want 150ms", d)
	}
	if n := r.DurationObservations(m.ID()); n != 2 {
		t.Fatalf("observations %d, want 2", n)
	}
}

func TestRegistryCards(t *testing.T) {
	r := NewRegistry(nil)
	m := muscle.NewSplit("s", func(p any) ([]any, error) { return nil, nil })
	r.ObserveCard(m.ID(), 5)
	r.ObserveCard(m.ID(), 7)
	c, ok := r.Card(m.ID())
	if !ok || c != 6 {
		t.Fatalf("card %v/%v, want 6", c, ok)
	}
}

func TestRegistryComplete(t *testing.T) {
	r := NewRegistry(nil)
	a := muscle.NewExecute("a", func(p any) (any, error) { return p, nil })
	s := muscle.NewSplit("s", func(p any) ([]any, error) { return nil, nil })
	durIDs := []muscle.ID{a.ID(), s.ID()}
	cardIDs := []muscle.ID{s.ID()}
	if r.Complete(durIDs, cardIDs) {
		t.Fatal("empty registry reported complete")
	}
	r.ObserveDuration(a.ID(), time.Millisecond)
	r.ObserveDuration(s.ID(), time.Millisecond)
	if r.Complete(durIDs, cardIDs) {
		t.Fatal("missing card reported complete")
	}
	r.ObserveCard(s.ID(), 3)
	if !r.Complete(durIDs, cardIDs) {
		t.Fatal("complete registry reported incomplete")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := NewRegistry(nil)
	a := muscle.NewExecute("a", func(p any) (any, error) { return p, nil })
	s := muscle.NewSplit("s", func(p any) ([]any, error) { return nil, nil })
	r.ObserveDuration(a.ID(), 80*time.Millisecond)
	r.ObserveDuration(s.ID(), 10*time.Millisecond)
	r.ObserveCard(s.ID(), 4)
	prof := r.Snapshot()

	r2 := NewRegistry(nil)
	r2.Restore(prof)
	if d, ok := r2.Duration(a.ID()); !ok || d != 80*time.Millisecond {
		t.Fatalf("restored duration %v/%v", d, ok)
	}
	if c, ok := r2.Card(s.ID()); !ok || c != 4 {
		t.Fatalf("restored card %v/%v", c, ok)
	}
	// Restored values arrive via Init: no observation counted.
	if n := r2.DurationObservations(a.ID()); n != 0 {
		t.Fatalf("restore counted %d observations", n)
	}
}

func TestRegistryNegativeDurationClamped(t *testing.T) {
	r := NewRegistry(nil)
	a := muscle.NewExecute("a", func(p any) (any, error) { return p, nil })
	r.InitDuration(a.ID(), -5*time.Millisecond)
	d, ok := r.Duration(a.ID())
	if !ok {
		t.Fatal("no value")
	}
	if d > 0 {
		t.Fatalf("negative init produced %v", d)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry(nil)
	m := muscle.NewExecute("m", func(p any) (any, error) { return p, nil })
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			r.ObserveDuration(m.ID(), time.Duration(i))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		r.Duration(m.ID())
		r.Snapshot()
	}
	<-done
}
