// Package estimate implements the paper's history-based estimation of
// muscle behaviour: the execution time t(m) of every muscle and the
// cardinality |m| of Split and Condition muscles ("the best predictor of the
// future behaviour is past behaviour", §4).
//
// The paper's base formula is an exponentially weighted moving average:
//
//	newEstimatedVal = ρ·lastActualVal + (1-ρ)·previousEstimatedVal
//
// with ρ ∈ [0,1] defaulting to 0.5. ρ close to 0 follows the stable
// tendency (slow adaptation); ρ close to 1 reacts to the latest measure.
// Alternative estimators (cumulative mean, sliding window, median, last
// value) are provided for the overhead/accuracy ablation the paper lists as
// future work.
package estimate

import (
	"fmt"
	"sort"
)

// Estimator tracks one scalar quantity.
type Estimator interface {
	// Observe feeds one actual measurement.
	Observe(v float64)
	// Init seeds the estimate without consuming an observation slot; the
	// paper's "initialization of estimation functions" (scenario 2) uses
	// this to start from a previous run's final values.
	Init(v float64)
	// Value returns the current estimate; ok is false until the estimator
	// has been observed or initialized.
	Value() (v float64, ok bool)
	// Observations returns how many actual measurements were consumed.
	Observations() int
}

// Factory builds fresh estimators; the registry uses one per tracked
// quantity.
type Factory func() Estimator

// --- EWMA (the paper's estimator) -------------------------------------------

// EWMA is the paper's ρ-weighted estimator.
type EWMA struct {
	rho  float64
	val  float64
	ok   bool
	seen int
}

// NewEWMA returns an EWMA estimator with the given ρ. It panics if ρ is
// outside [0,1].
func NewEWMA(rho float64) *EWMA {
	if rho < 0 || rho > 1 {
		panic(fmt.Sprintf("estimate: ρ=%v outside [0,1]", rho))
	}
	return &EWMA{rho: rho}
}

// DefaultRho is the paper's default ρ: the estimate is the average of the
// last actual value and the previous estimate.
const DefaultRho = 0.5

// EWMAFactory returns a Factory of EWMA estimators with the given ρ.
func EWMAFactory(rho float64) Factory {
	if rho < 0 || rho > 1 {
		panic(fmt.Sprintf("estimate: ρ=%v outside [0,1]", rho))
	}
	return func() Estimator { return NewEWMA(rho) }
}

// Observe implements Estimator.
func (e *EWMA) Observe(v float64) {
	e.seen++
	if !e.ok {
		e.val, e.ok = v, true
		return
	}
	e.val = e.rho*v + (1-e.rho)*e.val
}

// Init implements Estimator.
func (e *EWMA) Init(v float64) { e.val, e.ok = v, true }

// Value implements Estimator.
func (e *EWMA) Value() (float64, bool) { return e.val, e.ok }

// Observations implements Estimator.
func (e *EWMA) Observations() int { return e.seen }

// Rho returns the estimator's ρ.
func (e *EWMA) Rho() float64 { return e.rho }

// --- Cumulative mean ----------------------------------------------------------

// Mean is the cumulative average of all observations.
type Mean struct {
	sum  float64
	n    int
	init float64
	ok   bool
}

// NewMean returns a cumulative-mean estimator.
func NewMean() *Mean { return &Mean{} }

// MeanFactory builds Mean estimators.
func MeanFactory() Estimator { return NewMean() }

// Observe implements Estimator.
func (m *Mean) Observe(v float64) { m.sum += v; m.n++; m.ok = true }

// Init implements Estimator.
func (m *Mean) Init(v float64) {
	if m.n == 0 {
		m.init, m.ok = v, true
	}
}

// Value implements Estimator.
func (m *Mean) Value() (float64, bool) {
	if m.n == 0 {
		return m.init, m.ok
	}
	return m.sum / float64(m.n), true
}

// Observations implements Estimator.
func (m *Mean) Observations() int { return m.n }

// --- Sliding window mean / median ---------------------------------------------

// Window averages the last k observations.
type Window struct {
	k    int
	buf  []float64
	next int
	n    int
	med  bool
	init float64
	ok   bool
}

// NewWindow returns a sliding-window mean over the last k observations.
func NewWindow(k int) *Window {
	if k < 1 {
		panic("estimate: window size must be >= 1")
	}
	return &Window{k: k, buf: make([]float64, k)}
}

// NewMedianWindow returns a sliding-window median over the last k
// observations, robust to outlier measurements (GC pauses, cache misses).
func NewMedianWindow(k int) *Window {
	w := NewWindow(k)
	w.med = true
	return w
}

// WindowFactory builds sliding-window means of size k.
func WindowFactory(k int) Factory { return func() Estimator { return NewWindow(k) } }

// MedianFactory builds sliding-window medians of size k.
func MedianFactory(k int) Factory { return func() Estimator { return NewMedianWindow(k) } }

// Observe implements Estimator.
func (w *Window) Observe(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % w.k
	if w.n < w.k {
		w.n++
	}
	w.ok = true
}

// Init implements Estimator.
func (w *Window) Init(v float64) {
	if w.n == 0 {
		w.init, w.ok = v, true
	}
}

// Value implements Estimator.
func (w *Window) Value() (float64, bool) {
	if w.n == 0 {
		return w.init, w.ok
	}
	vals := append([]float64(nil), w.buf[:w.n]...)
	if w.med {
		sort.Float64s(vals)
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			return vals[mid], true
		}
		return (vals[mid-1] + vals[mid]) / 2, true
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals)), true
}

// Observations implements Estimator.
func (w *Window) Observations() int { return w.n }

// --- Last value -----------------------------------------------------------------

// Last keeps only the most recent observation (ρ=1 degenerate case).
type Last struct {
	val  float64
	ok   bool
	seen int
}

// NewLast returns a last-value estimator.
func NewLast() *Last { return &Last{} }

// LastFactory builds Last estimators.
func LastFactory() Estimator { return NewLast() }

// Observe implements Estimator.
func (l *Last) Observe(v float64) { l.val, l.ok = v, true; l.seen++ }

// Init implements Estimator.
func (l *Last) Init(v float64) { l.val, l.ok = v, true }

// Value implements Estimator.
func (l *Last) Value() (float64, bool) { return l.val, l.ok }

// Observations implements Estimator.
func (l *Last) Observations() int { return l.seen }

// guard the interface contracts at compile time.
var (
	_ Estimator = (*EWMA)(nil)
	_ Estimator = (*Mean)(nil)
	_ Estimator = (*Window)(nil)
	_ Estimator = (*Last)(nil)
)
