package conformance

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/sim"
	"skandium/internal/statemachine"
)

// legacyPaperPolicy is the pre-refactor controller decision logic,
// transcribed verbatim from the inline branches of Controller.Analyze
// before the Policy extraction. It is the oracle the refactored default
// (PaperPolicy through the one actuation API) must match decision-for-
// decision across the conformance corpus.
type legacyPaperPolicy struct {
	core.PaperContract
	inc core.IncreasePolicy
	dec core.DecreasePolicy
}

func (legacyPaperPolicy) Name() string { return "legacy-paper" }

const legacyUnreachableSlack = 0.05

func (l legacyPaperPolicy) Observe(pred *core.Prediction, act core.Actuation) core.Proposal {
	cur := act.CurLP
	deadline := act.Start.Add(act.Goal)
	ceil := act.MaxLP
	if ceil <= 0 {
		ceil = pred.OptimalLP
	}
	if pred.LimitedEnd(cur).After(deadline) {
		target := cur
		reason := ""
		switch l.inc {
		case core.IncreaseOptimal:
			target = pred.OptimalLP
			reason = "goal missed: raise to optimal LP"
		case core.IncreaseMinimal:
			if lp, ok := pred.MinLP(deadline, ceil); ok {
				target = lp
				reason = "goal missed: raise to minimal sufficient LP"
			} else {
				slack := time.Duration(float64(pred.BestEnd.Sub(act.Now)) * legacyUnreachableSlack)
				if lp, ok := pred.MinLP(pred.BestEnd.Add(slack), ceil); ok {
					target = lp
				} else {
					target = pred.OptimalLP
				}
				reason = "goal unreachable: raise to minimal LP near best effort"
			}
		}
		if act.MaxLP > 0 && target > act.MaxLP {
			target = act.MaxLP
		}
		if target > cur {
			return core.Proposal{LP: target, Reason: reason}
		}
		return core.Proposal{LP: cur}
	}
	if act.Held {
		return core.Proposal{LP: cur}
	}
	switch l.dec {
	case core.DecreaseNone:
		return core.Proposal{LP: cur}
	case core.DecreaseHalve:
		half := cur / 2
		if half < 1 || half == cur {
			return core.Proposal{LP: cur}
		}
		if !pred.LimitedEnd(half).After(deadline) {
			return core.Proposal{LP: half, Reason: "goal met with half the threads: halve LP"}
		}
	case core.DecreaseExact:
		if lp, ok := pred.MinLP(deadline, cur); ok && lp < cur {
			return core.Proposal{LP: lp, Reason: "goal met with fewer threads: drop to minimum"}
		}
	}
	return core.Proposal{LP: cur}
}

// seededCosts assigns every muscle of a tree a deterministic 1-5ms cost.
func seededCosts(tree *Tree, seed int64) (sim.CostModel, map[muscle.ID]time.Duration) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	d := make(map[muscle.ID]time.Duration, len(tree.Muscles))
	for _, m := range tree.Muscles {
		d[m.ID()] = time.Duration(1+rng.Intn(5)) * time.Millisecond
	}
	return sim.CostFunc(func(m *muscle.Muscle, _ any) time.Duration { return d[m.ID()] }), d
}

// controlledRun simulates one tree under an autonomic controller and
// returns its decision log.
func controlledRun(t *testing.T, tree *Tree, costs sim.CostModel,
	durs map[muscle.ID]time.Duration, cfg core.Config) []core.Decision {
	t.Helper()
	est := estimate.NewRegistry(nil)
	for _, m := range tree.Muscles {
		est.InitDuration(m.ID(), durs[m.ID()])
	}
	for id, card := range tree.Cards {
		est.InitCard(id, card)
	}
	tracker := statemachine.NewTracker(est)
	reg := event.NewRegistry()
	eng := sim.NewEngine(sim.Config{Costs: costs, LP: 1, MaxLP: 8, Events: reg})
	ctl := core.NewController(cfg, tree.Node, eng, est, tracker, eng.Clock())
	ctl.SetStart(eng.Now())
	core.Attach(reg, tracker, ctl)
	if _, _, err := eng.Run(tree.Node, tree.Input); err != nil {
		t.Fatalf("controlled sim (%s): %v", tree.Node, err)
	}
	return ctl.Decisions()
}

// TestPaperPolicyDecisionsMatchLegacyOnCorpus drives the refactored paper
// policy (the default Config path) and the pre-refactor decision logic (the
// verbatim legacy oracle above, via Config.Policy) through the full 240-tree
// conformance corpus and asserts the Decision sequences are byte-identical —
// the guarantee PR 4/9 relied on, carried across the Policy refactor. Every
// increase/decrease ablation pair is cycled across the corpus.
func TestPaperPolicyDecisionsMatchLegacyOnCorpus(t *testing.T) {
	combos := []struct {
		inc core.IncreasePolicy
		dec core.DecreasePolicy
	}{
		{core.IncreaseOptimal, core.DecreaseHalve},
		{core.IncreaseMinimal, core.DecreaseHalve},
		{core.IncreaseOptimal, core.DecreaseNone},
		{core.IncreaseMinimal, core.DecreaseNone},
		{core.IncreaseOptimal, core.DecreaseExact},
		{core.IncreaseMinimal, core.DecreaseExact},
	}
	fracs := []float64{0.3, 0.5, 0.8} // goal position between span and work

	total := 0
	check := func(seed int64, tree *Tree) {
		costs, durs := seededCosts(tree, seed)
		// Probe the tree's sequential work and unbounded span to place an
		// adaptation-provoking goal between them.
		eng := sim.NewEngine(sim.Config{Costs: costs, LP: 1})
		if _, work, err := eng.Run(tree.Node, tree.Input); err != nil {
			t.Fatalf("seed %d probe lp1 (%s): %v", seed, tree.Node, err)
		} else {
			eng2 := sim.NewEngine(sim.Config{Costs: costs, LP: 4096})
			_, span, err := eng2.Run(tree.Node, tree.Input)
			if err != nil {
				t.Fatalf("seed %d probe span (%s): %v", seed, tree.Node, err)
			}
			frac := fracs[int(seed)%len(fracs)]
			goal := span + time.Duration(float64(work-span)*frac)
			if goal <= 0 {
				goal = work
			}
			combo := combos[int(seed)%len(combos)]
			cfg := core.Config{WCTGoal: goal, MaxLP: 8,
				Increase: combo.inc, Decrease: combo.dec}
			got := controlledRun(t, tree, costs, durs, cfg)

			legacyCfg := cfg
			legacyCfg.Policy = legacyPaperPolicy{inc: combo.inc, dec: combo.dec}
			want := controlledRun(t, tree, costs, durs, legacyCfg)

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d (%s) goal %v inc=%d dec=%d: decisions diverge\nrefactored: %v\nlegacy:     %v",
					seed, tree.Node, goal, combo.inc, combo.dec, got, want)
			}
			total += len(got)
		}
	}

	for seed := int64(0); seed < fullSeeds; seed++ {
		check(seed, Generate(seed, genDepth))
	}
	for seed := int64(1000); seed < 1000+staticSeeds; seed++ {
		check(seed, GenerateStatic(seed, genDepth))
	}
	if total == 0 {
		t.Fatal("corpus produced no adaptation decisions: the regression test is vacuous")
	}
}
