package conformance

import (
	"fmt"
	"sort"
	"strings"

	"skandium/internal/statemachine"
)

// Shape renders the canonical structure of a completed execution's
// activation tree: every activation's kind, structural slot, muscle
// cardinalities and control-flow verdicts, with children sorted by slot
// rather than by arrival order. Two executions of the same program on the
// same input must produce identical shapes regardless of substrate (pool
// interpreter vs simulator) and regardless of scheduling (activation
// indices and event interleavings are concurrency-dependent; the shape is
// not).
func Shape(tr *statemachine.Tracker) string {
	var out string
	tr.WithTree(func(roots []*statemachine.Instance) {
		parts := make([]string, len(roots))
		for i, r := range roots {
			parts[i] = shapeOf(r)
		}
		out = strings.Join(parts, "\n")
	})
	return out
}

func shapeOf(in *statemachine.Instance) string {
	var b strings.Builder
	writeShape(&b, in, 0)
	return b.String()
}

func writeShape(b *strings.Builder, in *statemachine.Instance, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%v[branch=%d iter=%d depth=%d card=%d conds=%d true=%d closed=%t done=%t]",
		in.Kind, in.Branch, in.Iter, in.Depth, in.ActualCard,
		len(in.Conds), in.TrueIters, in.CondClosed, in.Done)
	b.WriteByte('\n')
	kids := make([]*statemachine.Instance, len(in.Children))
	copy(kids, in.Children)
	sort.SliceStable(kids, func(i, j int) bool {
		if kids[i].Iter != kids[j].Iter {
			return kids[i].Iter < kids[j].Iter
		}
		return kids[i].Branch < kids[j].Branch
	})
	for _, c := range kids {
		writeShape(b, c, depth+1)
	}
}
