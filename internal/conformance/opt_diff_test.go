package conformance

import (
	"reflect"
	"testing"
	"time"

	"skandium/internal/adg"
	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/plan"
	"skandium/internal/refeval"
	"skandium/internal/sim"
	"skandium/internal/statemachine"
)

// compilePair compiles one tree twice — raw and optimized — bypassing the
// node's plan cache so both programs coexist for differential runs.
func compilePair(t *testing.T, tree *Tree) (raw, opt *plan.Program) {
	t.Helper()
	raw, err := plan.Compile(tree.Node)
	if err != nil {
		t.Fatalf("compile (%s): %v", tree.Node, err)
	}
	return raw, plan.Optimize(raw)
}

func execRunProgram(t *testing.T, p *plan.Program, input, lp int, reg *event.Registry) any {
	t.Helper()
	pool := exec.NewPool(clock.System, lp, 0)
	defer pool.Close()
	got, err := exec.NewRoot(pool, reg, nil).StartProgram(p, input).Get()
	if err != nil {
		t.Fatalf("exec lp %d (%s): %v", lp, p.Node(), err)
	}
	return got
}

func simRunProgram(t *testing.T, p *plan.Program, input, lp int, reg *event.Registry) (any, time.Duration) {
	t.Helper()
	eng := sim.NewEngine(sim.Config{Costs: unitCosts(), LP: lp, Events: reg})
	start := eng.Now()
	rs, err := eng.RunStreamProgram(p, []sim.Injection{{Param: input}})
	if err != nil {
		t.Fatalf("sim lp %d (%s): %v", lp, p.Node(), err)
	}
	return rs[0].Result, eng.Now().Sub(start)
}

func programShape(t *testing.T, run func(reg *event.Registry)) string {
	t.Helper()
	reg := event.NewRegistry()
	tr := statemachine.NewTracker(estimate.NewRegistry(nil))
	reg.Add(tr.Listener())
	run(reg)
	return Shape(tr)
}

// allTrees yields every tree of the harness: the full-algebra seeds and the
// static-subclass seeds — the same 240 programs the backend tests cover.
func allTrees() []*Tree {
	trees := make([]*Tree, 0, fullSeeds+staticSeeds)
	for seed := int64(0); seed < fullSeeds; seed++ {
		trees = append(trees, Generate(seed, genDepth))
	}
	for seed := int64(1000); seed < 1000+staticSeeds; seed++ {
		trees = append(trees, GenerateStatic(seed, genDepth))
	}
	return trees
}

// TestOptimizerObservationEquivalence: for every harness tree, the optimized
// program is observationally identical to the raw one on both execution
// engines — same results (equal to the reference evaluator), same canonical
// activation shapes, and in the simulator the same exact virtual makespans.
// This is the fuzz/property gate for the fusion, specialization and
// pre-sizing passes.
func TestOptimizerObservationEquivalence(t *testing.T) {
	for _, tree := range allTrees() {
		raw, opt := compilePair(t, tree)
		want, err := refeval.Eval(tree.Node, tree.Input)
		if err != nil {
			t.Fatalf("(%s): reference: %v", tree.Node, err)
		}
		for _, lp := range []int{1, 3} {
			if got := execRunProgram(t, raw, tree.Input, lp, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("lp %d (%s): raw exec %v != reference %v", lp, tree.Node, got, want)
			}
			if got := execRunProgram(t, opt, tree.Input, lp, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("lp %d (%s): optimized exec %v != reference %v", lp, tree.Node, got, want)
			}
			rawRes, rawMs := simRunProgram(t, raw, tree.Input, lp, nil)
			optRes, optMs := simRunProgram(t, opt, tree.Input, lp, nil)
			if !reflect.DeepEqual(optRes, want) || !reflect.DeepEqual(rawRes, want) {
				t.Fatalf("lp %d (%s): sim results raw=%v opt=%v != reference %v",
					lp, tree.Node, rawRes, optRes, want)
			}
			if rawMs != optMs {
				t.Fatalf("lp %d (%s): optimized sim makespan %v != raw %v",
					lp, tree.Node, optMs, rawMs)
			}
		}

		rawExec := programShape(t, func(reg *event.Registry) { execRunProgram(t, raw, tree.Input, 3, reg) })
		optExec := programShape(t, func(reg *event.Registry) { execRunProgram(t, opt, tree.Input, 3, reg) })
		if rawExec != optExec || rawExec == "" {
			t.Fatalf("(%s): exec shape changed under optimization\nraw:\n%s\nopt:\n%s",
				tree.Node, rawExec, optExec)
		}
		rawSim := programShape(t, func(reg *event.Registry) { simRunProgram(t, raw, tree.Input, 3, reg) })
		optSim := programShape(t, func(reg *event.Registry) { simRunProgram(t, opt, tree.Input, 3, reg) })
		if rawSim != optSim || rawSim != rawExec {
			t.Fatalf("(%s): sim shape changed under optimization\nraw:\n%s\nopt:\n%s",
				tree.Node, rawSim, optSim)
		}
	}
}

// TestOptimizerEstimatesEquivalent: the closed-form analytic annotations
// produce exactly the recursive estimator's numbers on every static tree —
// work and span of the optimized program equal those of the raw walk.
func TestOptimizerEstimatesEquivalent(t *testing.T) {
	for seed := int64(1000); seed < 1000+staticSeeds; seed++ {
		tree := GenerateStatic(seed, genDepth)
		raw, opt := compilePair(t, tree)
		est := seedEstimates(tree)

		rawWork, err := adg.SeqEstimateProgram(est, raw)
		if err != nil {
			t.Fatalf("seed %d (%s): raw work: %v", seed, tree.Node, err)
		}
		optWork, err := adg.SeqEstimateProgram(est, opt)
		if err != nil {
			t.Fatalf("seed %d (%s): optimized work: %v", seed, tree.Node, err)
		}
		if rawWork != optWork {
			t.Fatalf("seed %d (%s): work %v (optimized) != %v (raw)", seed, tree.Node, optWork, rawWork)
		}
		rawSpan, err := adg.SpanEstimateProgram(est, raw)
		if err != nil {
			t.Fatalf("seed %d (%s): raw span: %v", seed, tree.Node, err)
		}
		optSpan, err := adg.SpanEstimateProgram(est, opt)
		if err != nil {
			t.Fatalf("seed %d (%s): optimized span: %v", seed, tree.Node, err)
		}
		if rawSpan != optSpan {
			t.Fatalf("seed %d (%s): span %v (optimized) != %v (raw)", seed, tree.Node, optSpan, rawSpan)
		}
	}
}
