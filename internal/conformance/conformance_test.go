package conformance

import (
	"reflect"
	"testing"
	"time"

	"skandium/internal/adg"
	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/refeval"
	"skandium/internal/sim"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// The harness runs hundreds of seeded random trees through every backend.
// fullSeeds exercises the whole algebra; staticSeeds the analytic subclass
// where closed-form estimates are exact.
const (
	fullSeeds   = 120
	staticSeeds = 120
	genDepth    = 3
)

// unitCosts declares 1ms for every muscle invocation, making simulated
// makespans pure functions of program structure.
func unitCosts() sim.CostModel {
	return sim.CostFunc(func(*muscle.Muscle, any) time.Duration { return time.Millisecond })
}

func execRun(t *testing.T, node *skel.Node, input, lp int, reg *event.Registry) any {
	t.Helper()
	pool := exec.NewPool(clock.System, lp, 0)
	defer pool.Close()
	got, err := exec.NewRoot(pool, reg, nil).Start(node, input).Get()
	if err != nil {
		t.Fatalf("exec lp %d (%s): %v", lp, node, err)
	}
	return got
}

func simRun(t *testing.T, node *skel.Node, input, lp int, reg *event.Registry) (any, time.Duration, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(sim.Config{Costs: unitCosts(), LP: lp, Events: reg})
	got, makespan, err := eng.Run(node, input)
	if err != nil {
		t.Fatalf("sim lp %d (%s): %v", lp, node, err)
	}
	return got, makespan, eng
}

// TestBackendsComputeReferenceResults: for seeded random trees over the
// full algebra, the pool interpreter (at several LPs) and the simulator (at
// several LPs) compute exactly the reference evaluator's result.
func TestBackendsComputeReferenceResults(t *testing.T) {
	for seed := int64(0); seed < fullSeeds; seed++ {
		tree := Generate(seed, genDepth)
		want, err := refeval.Eval(tree.Node, tree.Input)
		if err != nil {
			t.Fatalf("seed %d (%s): reference: %v", seed, tree.Node, err)
		}
		for _, lp := range []int{1, 3} {
			if got := execRun(t, tree.Node, tree.Input, lp, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d lp %d (%s) input %d: exec %v != reference %v",
					seed, lp, tree.Node, tree.Input, got, want)
			}
			got, _, _ := simRun(t, tree.Node, tree.Input, lp, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d lp %d (%s) input %d: sim %v != reference %v",
					seed, lp, tree.Node, tree.Input, got, want)
			}
		}
	}
}

// TestActivationShapesAgree: the canonical activation-tree shape recorded
// by the state-machine tracker is identical between the concurrent pool
// interpreter and the simulator — i.e. both backends unfold the compiled
// program into the same activations with the same structural slots,
// cardinalities and verdicts, independent of scheduling.
func TestActivationShapesAgree(t *testing.T) {
	for seed := int64(0); seed < fullSeeds; seed++ {
		tree := Generate(seed, genDepth)

		shape := func(attach func(reg *event.Registry)) string {
			reg := event.NewRegistry()
			tr := statemachine.NewTracker(estimate.NewRegistry(nil))
			reg.Add(tr.Listener())
			attach(reg)
			return Shape(tr)
		}
		execShape := shape(func(reg *event.Registry) {
			execRun(t, tree.Node, tree.Input, 3, reg)
		})
		simShape := shape(func(reg *event.Registry) {
			simRun(t, tree.Node, tree.Input, 3, reg)
		})
		simSeqShape := shape(func(reg *event.Registry) {
			simRun(t, tree.Node, tree.Input, 1, reg)
		})
		if execShape != simShape {
			t.Fatalf("seed %d (%s): exec shape differs from sim shape\nexec:\n%s\nsim:\n%s",
				seed, tree.Node, execShape, simShape)
		}
		if simShape != simSeqShape {
			t.Fatalf("seed %d (%s): sim shape varies with LP\nlp3:\n%s\nlp1:\n%s",
				seed, tree.Node, simShape, simSeqShape)
		}
		if execShape == "" {
			t.Fatalf("seed %d: empty shape", seed)
		}
	}
}

// TestLiveADGMatchesSimMakespan: an ADG built from the tracker of a
// *completed* simulated execution consists solely of Done activities, so
// its WCT must equal the simulator's makespan exactly — the timeline the
// ADG reconstructs is the timeline the simulator executed.
func TestLiveADGMatchesSimMakespan(t *testing.T) {
	for seed := int64(0); seed < fullSeeds; seed++ {
		tree := Generate(seed, genDepth)

		est := estimate.NewRegistry(nil)
		tr := statemachine.NewTracker(est)
		reg := event.NewRegistry()
		reg.Add(tr.Listener())

		eng := sim.NewEngine(sim.Config{Costs: unitCosts(), LP: 3, Events: reg})
		start := eng.Now()
		_, makespan, err := eng.Run(tree.Node, tree.Input)
		if err != nil {
			t.Fatalf("seed %d (%s): sim: %v", seed, tree.Node, err)
		}

		g, err := adg.Builder{Est: est}.BuildLive(tr.Root(), start, eng.Now())
		if err != nil {
			t.Fatalf("seed %d (%s): BuildLive: %v", seed, tree.Node, err)
		}
		g.ScheduleBestEffort()
		if wct := g.WCT(); wct != makespan {
			t.Fatalf("seed %d (%s): live ADG WCT %v != sim makespan %v",
				seed, tree.Node, wct, makespan)
		}
		// With every activity Done the schedule is history, not a plan:
		// the LP cap must not change it.
		g.ScheduleLimited(1)
		if wct := g.WCT(); wct != makespan {
			t.Fatalf("seed %d (%s): completed ADG WCT %v under LP=1 != makespan %v",
				seed, tree.Node, wct, makespan)
		}
	}
}

// seedEstimates initializes the registry with the exact unit costs and the
// exact split cardinalities of a static tree, so analytic estimates and
// virtual ADGs are exact rather than learned.
func seedEstimates(tree *Tree) *estimate.Registry {
	est := estimate.NewRegistry(nil)
	for _, m := range tree.Muscles {
		est.InitDuration(m.ID(), time.Millisecond)
	}
	for id, card := range tree.Cards {
		est.InitCard(id, card)
	}
	return est
}

// TestAnalyticEstimatesExactOnStaticTrees: on the subclass with no
// data-dependent control flow and fixed-cardinality splits, the closed-form
// estimators and the virtual ADG schedules must match simulated makespans
// exactly:
//
//   - SeqEstimate (work) == sim makespan at LP=1 == virtual ADG under
//     ScheduleLimited(1);
//   - SpanEstimate (span) == sim makespan at effectively-infinite LP ==
//     virtual ADG under ScheduleBestEffort.
func TestAnalyticEstimatesExactOnStaticTrees(t *testing.T) {
	for seed := int64(1000); seed < 1000+staticSeeds; seed++ {
		tree := GenerateStatic(seed, genDepth)
		est := seedEstimates(tree)

		work, err := adg.SeqEstimate(est, tree.Node)
		if err != nil {
			t.Fatalf("seed %d (%s): SeqEstimate: %v", seed, tree.Node, err)
		}
		span, err := adg.SpanEstimate(est, tree.Node)
		if err != nil {
			t.Fatalf("seed %d (%s): SpanEstimate: %v", seed, tree.Node, err)
		}
		if span > work {
			t.Fatalf("seed %d (%s): span %v exceeds work %v", seed, tree.Node, span, work)
		}

		_, seqMakespan, _ := simRun(t, tree.Node, tree.Input, 1, nil)
		if seqMakespan != work {
			t.Fatalf("seed %d (%s): sim LP=1 makespan %v != SeqEstimate %v",
				seed, tree.Node, seqMakespan, work)
		}
		_, parMakespan, _ := simRun(t, tree.Node, tree.Input, 4096, nil)
		if parMakespan != span {
			t.Fatalf("seed %d (%s): sim LP=4096 makespan %v != SpanEstimate %v",
				seed, tree.Node, parMakespan, span)
		}

		g, err := adg.Builder{Est: est}.BuildVirtual(tree.Node, clock.Epoch)
		if err != nil {
			t.Fatalf("seed %d (%s): BuildVirtual: %v", seed, tree.Node, err)
		}
		g.ScheduleBestEffort()
		if wct := g.WCT(); wct != span {
			t.Fatalf("seed %d (%s): virtual ADG best-effort WCT %v != SpanEstimate %v",
				seed, tree.Node, wct, span)
		}
		g.ScheduleLimited(1)
		if wct := g.WCT(); wct != work {
			t.Fatalf("seed %d (%s): virtual ADG LP=1 WCT %v != SeqEstimate %v",
				seed, tree.Node, wct, work)
		}
	}
}
