// Package conformance is the cross-backend differential harness: a seeded
// random-skeleton-tree generator plus canonical views of an execution that
// every backend must agree on.
//
// All four consumers of the compiled program IR (internal/plan) — the
// task-pool interpreter (internal/exec), the discrete-event simulator
// (internal/sim), the reference evaluator (internal/refeval) and the ADG
// builder/estimators (internal/adg) — are run over the same generated
// trees, and the harness asserts that results, activation-tree shapes and
// ADG spans agree exactly. A future remote/distributed backend joins the
// harness by implementing the same seam (exec.Root.StartProgram) and being
// added to the comparison loop in conformance_test.go.
package conformance

import (
	"fmt"
	"math/rand"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// Tree is one generated skeleton program plus everything a harness needs to
// run and analyze it: a sample input, the set of muscles (for seeding
// estimate registries) and the exact split cardinalities of the static
// subclass.
type Tree struct {
	Node  *skel.Node
	Input int
	// Muscles lists every muscle in the tree, in construction order.
	Muscles []*muscle.Muscle
	// Cards maps split muscles to their exact, input-independent
	// cardinality. Populated fully only for static trees (Generate may
	// include data-dependent structure with no exact card).
	Cards map[muscle.ID]float64
}

// gen is the seeded generator. Every generated execute muscle maps
// non-negative ints to non-negative ints and is non-decreasing (f(n) >= n),
// which makes while loops with a leading +1 stage strictly increasing
// (termination) and keeps d&c recursion on halvings well-founded.
type gen struct {
	rng     *rand.Rand
	muscles []*muscle.Muscle
	cards   map[muscle.ID]float64
}

func newGen(seed int64) *gen {
	return &gen{rng: rand.New(rand.NewSource(seed)), cards: make(map[muscle.ID]float64)}
}

func (g *gen) reg(m *muscle.Muscle) *muscle.Muscle {
	g.muscles = append(g.muscles, m)
	return m
}

func (g *gen) exec() *skel.Node {
	switch g.rng.Intn(3) {
	case 0:
		k := g.rng.Intn(5)
		return skel.NewSeq(g.reg(muscle.NewExecute(fmt.Sprintf("add%d", k), func(p any) (any, error) {
			return p.(int) + k, nil
		})))
	case 1:
		return skel.NewSeq(g.reg(muscle.NewExecute("double", func(p any) (any, error) {
			return p.(int) * 2, nil
		})))
	default:
		return skel.NewSeq(g.reg(muscle.NewExecute("id", func(p any) (any, error) {
			return p, nil
		})))
	}
}

// splitSum splits n into exactly k parts that sum to n (k = 2 or 3), so the
// cardinality is static even though the parts are data-dependent.
func (g *gen) splitSum() (*muscle.Muscle, int) {
	k := 2 + g.rng.Intn(2)
	m := g.reg(muscle.NewSplit(fmt.Sprintf("split%d", k), func(p any) ([]any, error) {
		n := p.(int)
		out := make([]any, k)
		rest := n
		for i := 0; i < k-1; i++ {
			part := rest / (k - i)
			out[i] = part
			rest -= part
		}
		out[k-1] = rest
		return out, nil
	}))
	g.cards[m.ID()] = float64(k)
	return m, k
}

func (g *gen) mergeSum() *muscle.Muscle {
	return g.reg(muscle.NewMerge("sum", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	}))
}

// full produces a random skeleton over the whole algebra; every subtree
// maps n -> >= n.
func (g *gen) full(depth int) *skel.Node {
	if depth <= 0 {
		return g.exec()
	}
	switch g.rng.Intn(9) {
	case 0:
		return g.exec()
	case 1:
		return skel.NewFarm(g.full(depth - 1))
	case 2:
		return skel.NewPipe(g.full(depth-1), g.full(depth-1))
	case 3:
		return skel.NewFor(1+g.rng.Intn(3), g.full(depth-1))
	case 4:
		bound := 20 + g.rng.Intn(100)
		fc := g.reg(muscle.NewCondition(fmt.Sprintf("lt%d", bound), func(p any) (bool, error) {
			return p.(int) < bound, nil
		}))
		inc := skel.NewSeq(g.reg(muscle.NewExecute("inc", func(p any) (any, error) {
			return p.(int) + 1, nil
		})))
		return skel.NewWhile(fc, skel.NewPipe(inc, g.full(depth-1)))
	case 5:
		threshold := g.rng.Intn(10)
		fc := g.reg(muscle.NewCondition(fmt.Sprintf("gt%d", threshold), func(p any) (bool, error) {
			return p.(int) > threshold, nil
		}))
		return skel.NewIf(fc, g.full(depth-1), g.full(depth-1))
	case 6:
		fs, _ := g.splitSum()
		return skel.NewMap(fs, g.full(depth-1), g.mergeSum())
	case 7:
		fs, k := g.splitSum()
		subs := make([]*skel.Node, k)
		for i := range subs {
			subs[i] = g.full(depth - 1)
		}
		return skel.NewFork(fs, subs, g.mergeSum())
	default:
		threshold := 4 + g.rng.Intn(20)
		fc := g.reg(muscle.NewCondition(fmt.Sprintf("big%d", threshold), func(p any) (bool, error) {
			return p.(int) > threshold, nil
		}))
		fs := g.reg(muscle.NewSplit("halve", func(p any) ([]any, error) {
			n := p.(int)
			return []any{n / 2, n - n/2}, nil
		}))
		g.cards[fs.ID()] = 2
		return skel.NewDaC(fc, fs, g.full(depth-1), g.mergeSum())
	}
}

// static produces a random skeleton from the analytic subclass: no
// data-dependent control flow (no while/if/d&c) and only fixed-cardinality
// splits. For such trees the closed-form work and span estimators are
// exact, so the harness can compare them against simulated makespans
// without tolerance.
func (g *gen) static(depth int) *skel.Node {
	if depth <= 0 {
		return g.exec()
	}
	switch g.rng.Intn(6) {
	case 0:
		return g.exec()
	case 1:
		return skel.NewFarm(g.static(depth - 1))
	case 2:
		return skel.NewPipe(g.static(depth-1), g.static(depth-1))
	case 3:
		return skel.NewFor(1+g.rng.Intn(3), g.static(depth-1))
	case 4:
		fs, _ := g.splitSum()
		return skel.NewMap(fs, g.static(depth-1), g.mergeSum())
	default:
		fs, k := g.splitSum()
		subs := make([]*skel.Node, k)
		for i := range subs {
			subs[i] = g.static(depth - 1)
		}
		return skel.NewFork(fs, subs, g.mergeSum())
	}
}

func (g *gen) tree(node *skel.Node) *Tree {
	return &Tree{
		Node:    node,
		Input:   g.rng.Intn(50),
		Muscles: g.muscles,
		Cards:   g.cards,
	}
}

// Generate builds a seeded random tree over the full skeleton algebra.
func Generate(seed int64, depth int) *Tree {
	g := newGen(seed)
	return g.tree(g.full(depth))
}

// GenerateStatic builds a seeded random tree from the analytic subclass
// (fixed structure, fixed-cardinality splits).
func GenerateStatic(seed int64, depth int) *Tree {
	g := newGen(seed)
	return g.tree(g.static(depth))
}
