package adg

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// mkMuscles builds one muscle of each flavour with initialized estimates.
func mkMuscles(est *estimate.Registry, tFe, tFs, tFm, tFc time.Duration, card float64) (fe, fs, fm, fc *muscle.Muscle) {
	fe = muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fs = muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fm = muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	fc = muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
	est.InitDuration(fe.ID(), tFe)
	est.InitDuration(fs.ID(), tFs)
	est.InitDuration(fm.ID(), tFm)
	est.InitDuration(fc.ID(), tFc)
	est.InitCard(fs.ID(), card)
	est.InitCard(fc.ID(), card)
	return
}

// --- virtual builds per kind -----------------------------------------------------

func TestVirtualWhile(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, _, _, fc := mkMuscles(est, u(10), 0, 0, u(2), 3)
	nd := skel.NewWhile(fc, skel.NewSeq(fe))
	g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	// 3 iterations: (cond+body)*3 + final cond = 4 conds + 3 bodies.
	if g.Len() != 7 {
		t.Fatalf("activities = %d, want 7", g.Len())
	}
	g.ScheduleBestEffort()
	// Strictly sequential: 4*2 + 3*10 = 38.
	if wct := g.WCT(); wct != u(38) {
		t.Fatalf("WCT = %v, want 38ms", wct)
	}
	// A while has no internal parallelism: limited(1) equals best effort.
	g.ScheduleLimited(1)
	if wct := g.WCT(); wct != u(38) {
		t.Fatalf("limited(1) WCT = %v, want 38ms", wct)
	}
}

func TestVirtualFor(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, _, _, _ := mkMuscles(est, u(10), 0, 0, 0, 0)
	nd := skel.NewFor(4, skel.NewSeq(fe))
	g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	if wct := g.WCT(); wct != u(40) {
		t.Fatalf("WCT = %v, want 40ms", wct)
	}
}

func TestVirtualPipeFarm(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, _, _, _ := mkMuscles(est, u(10), 0, 0, 0, 0)
	nd := skel.NewPipe(skel.NewSeq(fe), skel.NewFarm(skel.NewSeq(fe)))
	g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	if wct := g.WCT(); wct != u(20) {
		t.Fatalf("WCT = %v, want 20ms", wct)
	}
}

func TestVirtualIfWorstCaseBranch(t *testing.T) {
	est := estimate.NewRegistry(nil)
	feShort, _, _, fc := mkMuscles(est, u(5), 0, 0, u(1), 0)
	feLong := muscle.NewExecute("long", func(p any) (any, error) { return p, nil })
	est.InitDuration(feLong.ID(), u(50))
	nd := skel.NewIf(fc, skel.NewSeq(feShort), skel.NewSeq(feLong))
	g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	// cond 1ms + worst branch 50ms.
	if wct := g.WCT(); wct != u(51) {
		t.Fatalf("WCT = %v, want 51ms (worst-case branch)", wct)
	}
}

func TestVirtualDaC(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, fs, fm, fc := mkMuscles(est, u(8), u(2), u(3), u(1), 2)
	nd := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)
	g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	// Depth 2, branching 2: level0 cond+split, level1 2×(cond+split),
	// level2 4×(cond+leaf), merges back. Critical path:
	// 1+2 + 1+2 + 1+8 + 3 + 3 = 21.
	if wct := g.WCT(); wct != u(21) {
		t.Fatalf("WCT = %v, want 21ms", wct)
	}
	// 4 leaves in parallel at the deepest level.
	if lp := g.OptimalLP(); lp != 4 {
		t.Fatalf("optimal LP = %d, want 4", lp)
	}
}

func TestBudgetCollapse(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, fs, fm, _ := mkMuscles(est, u(1), u(1), u(1), 0, 100)
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)
	g, err := Builder{Est: est, Budget: 10}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() > 12 {
		t.Fatalf("budget ignored: %d activities", g.Len())
	}
	collapsed := false
	for _, a := range g.Acts {
		if a.Muscle == nil && len(a.Label) > 0 && a.Label[0] == '~' {
			collapsed = true
			if a.Dur <= 0 {
				t.Fatal("collapsed activity has no duration")
			}
		}
	}
	if !collapsed {
		t.Fatal("no collapsed activity found")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- SeqEstimate -------------------------------------------------------------------

func TestSeqEstimateAllKinds(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, fs, fm, fc := mkMuscles(est, u(10), u(2), u(3), u(1), 2)
	leaf := skel.NewSeq(fe)
	cases := []struct {
		nd   *skel.Node
		want time.Duration
	}{
		{leaf, u(10)},
		{skel.NewFarm(leaf), u(10)},
		{skel.NewPipe(leaf, leaf), u(20)},
		{skel.NewFor(3, leaf), u(30)},
		{skel.NewWhile(fc, leaf), u(23)},                        // 3 conds + 2 bodies
		{skel.NewIf(fc, leaf, skel.NewFor(2, leaf)), u(21)},     // cond + max(10,20)
		{skel.NewMap(fs, leaf, fm), u(25)},                      // 2 + 2*10 + 3
		{skel.NewFork(fs, []*skel.Node{leaf, leaf}, fm), u(25)}, // 2 + 10+10 + 3
		{skel.NewDaC(fc, fs, leaf, fm), u(1+2) + 2*u(1+2) + 4*u(1+10) + 2*u(3) + u(3)},
	}
	for _, tc := range cases {
		got, err := SeqEstimate(est, tc.nd)
		if err != nil {
			t.Errorf("%s: %v", tc.nd, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.nd, got, tc.want)
		}
	}
}

// SeqEstimate must equal the limited(1) schedule of the virtual graph.
func TestSeqEstimateMatchesLimited1(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, fs, fm, fc := mkMuscles(est, u(7), u(2), u(3), u(1), 3)
	leaf := skel.NewSeq(fe)
	programs := []*skel.Node{
		skel.NewMap(fs, leaf, fm),
		skel.NewMap(fs, skel.NewMap(fs, leaf, fm), fm),
		skel.NewPipe(leaf, skel.NewMap(fs, leaf, fm)),
		skel.NewWhile(fc, skel.NewMap(fs, leaf, fm)),
		skel.NewDaC(fc, fs, leaf, fm),
	}
	for _, nd := range programs {
		analytic, err := SeqEstimate(est, nd)
		if err != nil {
			t.Fatalf("%s: %v", nd, err)
		}
		g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
		if err != nil {
			t.Fatalf("%s: %v", nd, err)
		}
		g.ScheduleLimited(1)
		if got := g.WCT(); got != analytic {
			t.Errorf("%s: limited(1)=%v analytic=%v", nd, got, analytic)
		}
	}
}

// --- scheduling properties over random programs ------------------------------------

// randomProgram builds a random skeleton tree (bounded size) with
// initialized estimates.
func randomProgram(rng *rand.Rand, est *estimate.Registry, depth int) *skel.Node {
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	est.InitDuration(fe.ID(), time.Duration(1+rng.Intn(20))*time.Millisecond)
	leaf := skel.NewSeq(fe)
	if depth <= 0 {
		return leaf
	}
	switch rng.Intn(7) {
	case 0:
		return leaf
	case 1:
		return skel.NewFarm(randomProgram(rng, est, depth-1))
	case 2:
		return skel.NewPipe(randomProgram(rng, est, depth-1), randomProgram(rng, est, depth-1))
	case 3:
		return skel.NewFor(1+rng.Intn(3), randomProgram(rng, est, depth-1))
	case 4:
		fc := muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
		est.InitDuration(fc.ID(), time.Duration(1+rng.Intn(3))*time.Millisecond)
		est.InitCard(fc.ID(), float64(rng.Intn(4)))
		return skel.NewWhile(fc, randomProgram(rng, est, depth-1))
	case 5:
		fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
		fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
		est.InitDuration(fs.ID(), time.Duration(1+rng.Intn(5))*time.Millisecond)
		est.InitDuration(fm.ID(), time.Duration(1+rng.Intn(5))*time.Millisecond)
		est.InitCard(fs.ID(), float64(1+rng.Intn(5)))
		return skel.NewMap(fs, randomProgram(rng, est, depth-1), fm)
	default:
		fc := muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
		fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
		fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
		est.InitDuration(fc.ID(), time.Millisecond)
		est.InitDuration(fs.ID(), time.Millisecond)
		est.InitDuration(fm.ID(), time.Millisecond)
		est.InitCard(fc.ID(), float64(1+rng.Intn(2)))
		est.InitCard(fs.ID(), float64(1+rng.Intn(2)))
		return skel.NewDaC(fc, fs, randomProgram(rng, est, depth-1), fm)
	}
}

// TestScheduleProperties: for random programs and LPs —
//  1. the graph is a valid DAG,
//  2. every schedule respects dependencies and the LP cap,
//  3. limited-LP WCT is non-increasing in LP,
//  4. best effort is a lower bound on every limited schedule,
//  5. limited(1) equals the total work (no idling on a tree).
func TestScheduleProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		est := estimate.NewRegistry(nil)
		nd := randomProgram(rng, est, 2+rng.Intn(2))
		g, err := Builder{Est: est, Budget: 3000}.BuildVirtual(nd, clock.Epoch)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		g.ScheduleBestEffort()
		if err := g.CheckSchedule(0); err != nil {
			t.Logf("seed %d best effort: %v", seed, err)
			return false
		}
		best := g.WCT()
		prev := time.Duration(-1)
		for lp := 1; lp <= 8; lp++ {
			g.ScheduleLimited(lp)
			if err := g.CheckSchedule(lp); err != nil {
				t.Logf("seed %d lp %d: %v", seed, lp, err)
				return false
			}
			wct := g.WCT()
			if wct < best {
				t.Logf("seed %d lp %d: %v beats best effort %v", seed, lp, wct, best)
				return false
			}
			if prev >= 0 && wct > prev {
				t.Logf("seed %d: WCT increased %v -> %v at lp %d", seed, prev, wct, lp)
				return false
			}
			prev = wct
		}
		g.ScheduleLimited(1)
		var total time.Duration
		for _, a := range g.Acts {
			total += a.Dur
		}
		if g.WCT() != total {
			t.Logf("seed %d: limited(1) %v != total work %v", seed, g.WCT(), total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalLPAchievesBestEffort: scheduling limited at the optimal LP
// must reach the best-effort WCT (for all-pending graphs).
func TestOptimalLPAchievesBestEffort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		est := estimate.NewRegistry(nil)
		nd := randomProgram(rng, est, 2)
		g, err := Builder{Est: est, Budget: 3000}.BuildVirtual(nd, clock.Epoch)
		if err != nil {
			return false
		}
		g.ScheduleBestEffort()
		best := g.WCT()
		opt := g.OptimalLP()
		g.ScheduleLimited(opt)
		return g.WCT() == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMinLPForGoalMinimality: the returned LP meets the deadline and LP-1
// does not.
func TestMinLPForGoalMinimality(t *testing.T) {
	f := func(seed int64, slackPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		est := estimate.NewRegistry(nil)
		nd := randomProgram(rng, est, 2)
		g, err := Builder{Est: est, Budget: 3000}.BuildVirtual(nd, clock.Epoch)
		if err != nil {
			return false
		}
		g.ScheduleBestEffort()
		best := g.WCT()
		// A deadline between best effort and 2x best effort.
		deadline := clock.Epoch.Add(best + time.Duration(slackPct%100)*best/100)
		lp, ok := g.MinLPForGoal(deadline, 64)
		if !ok {
			return false // must be feasible: deadline >= best effort
		}
		g.ScheduleLimited(lp)
		if g.EndTime().After(deadline) {
			return false
		}
		if lp > 1 {
			g.ScheduleLimited(lp - 1)
			if !g.EndTime().After(deadline) {
				return false // not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- timeline helpers ---------------------------------------------------------------

func TestTimelineAndPeak(t *testing.T) {
	mk := func(ti, tf int) *Activity {
		return &Activity{
			Dur:         time.Duration(tf-ti) * time.Millisecond,
			ActualStart: clock.Epoch.Add(u(ti)), HasStart: true,
			ActualEnd: clock.Epoch.Add(u(tf)), HasEnd: true,
		}
	}
	g := &Graph{Start: clock.Epoch, Now: clock.Epoch.Add(u(100)),
		Acts: []*Activity{mk(0, 10), mk(5, 15), mk(5, 8), mk(20, 30)}}
	for i, a := range g.Acts {
		a.ID = i
	}
	g.ScheduleBestEffort()
	steps := g.Timeline()
	// levels: [0,5)=1 [5,8)=3 [8,10)=2 [10,15)=1 [15,20)=0 [20,30)=1 [30..)=0
	if Peak(steps, clock.Epoch) != 3 {
		t.Fatalf("peak = %d, want 3", Peak(steps, clock.Epoch))
	}
	if Peak(steps, clock.Epoch.Add(u(9))) != 2 {
		t.Fatalf("peak from 9 = %d, want 2", Peak(steps, clock.Epoch.Add(u(9))))
	}
	if Peak(steps, clock.Epoch.Add(u(16))) != 1 {
		t.Fatalf("peak from 16 = %d, want 1", Peak(steps, clock.Epoch.Add(u(16))))
	}
}

func TestZeroDurationActivitiesIgnoredInTimeline(t *testing.T) {
	a := &Activity{ID: 0, Dur: 0}
	g := &Graph{Start: clock.Epoch, Now: clock.Epoch, Acts: []*Activity{a}}
	g.ScheduleBestEffort()
	if steps := g.Timeline(); len(steps) != 0 {
		t.Fatalf("zero-duration produced steps: %v", steps)
	}
}

// --- live builds beyond Fig. 1 -------------------------------------------------------

func TestLiveWhileMidIteration(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, _, _, fc := mkMuscles(est, u(10), 0, 0, u(2), 4)
	nd := skel.NewWhile(fc, skel.NewSeq(fe))
	tr := newTrackerWithWhileHistory(t, est, nd)
	g, err := Builder{Est: est}.BuildLive(tr, clock.Epoch, clock.Epoch.Add(u(17)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	// History: cond[0,2] true, body[2,12], cond[12,14] true, body running
	// since 14 (ends 24 est). Future per |fc|=4: 2 more iterations
	// (cond+body) + final cond: 24 + (2+10)*2 + 2 = 50.
	if wct := g.WCT(); wct != u(50) {
		t.Fatalf("WCT = %v, want 50ms\n%s", wct, g.Render(time.Millisecond))
	}
}

// newTrackerWithWhileHistory replays: two true condition checks, one
// complete body, one body running at t=17.
func newTrackerWithWhileHistory(t *testing.T, est *estimate.Registry, nd *skel.Node) *statemachine.Instance {
	t.Helper()
	tr := statemachine.NewTracker(est)
	emit := func(n *skel.Node, idx, parent int64, when event.When, where event.Where, ms, iter int, cond bool) {
		tr.Listener().Handler(&event.Event{
			Node: n, Trace: []*skel.Node{n}, Index: idx, Parent: parent,
			When: when, Where: where, Time: clock.Epoch.Add(u(ms)),
			Iter: iter, Cond: cond,
		})
	}
	seq := nd.Children()[0]
	emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, 0, false)
	emit(nd, 0, event.NoParent, event.Before, event.Condition, 0, 0, false)
	emit(nd, 0, event.NoParent, event.After, event.Condition, 2, 0, true)
	emit(seq, 1, 0, event.Before, event.Skeleton, 2, 0, false)
	emit(seq, 1, 0, event.After, event.Skeleton, 12, 0, false)
	emit(nd, 0, event.NoParent, event.Before, event.Condition, 12, 1, false)
	emit(nd, 0, event.NoParent, event.After, event.Condition, 14, 1, true)
	emit(seq, 2, 0, event.Before, event.Skeleton, 14, 0, false)
	return tr.Root()
}
