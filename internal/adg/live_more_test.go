package adg

import (
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// emitter drives a tracker with hand-written histories for the less-common
// live paths.
type liveWorld struct {
	tr  *statemachine.Tracker
	est *estimate.Registry
}

func newLiveWorld() *liveWorld {
	est := estimate.NewRegistry(nil)
	return &liveWorld{tr: statemachine.NewTracker(est), est: est}
}

func (w *liveWorld) emit(nd *skel.Node, idx, parent int64, when event.When, where event.Where, ms int, mod func(*event.Event)) {
	e := &event.Event{
		Node: nd, Trace: []*skel.Node{nd}, Index: idx, Parent: parent,
		When: when, Where: where, Time: clock.Epoch.Add(u(ms)),
	}
	if mod != nil {
		mod(e)
	}
	w.tr.Listener().Handler(e)
}

func (w *liveWorld) graph(t *testing.T, nowMs int) *Graph {
	t.Helper()
	g, err := Builder{Est: w.est}.BuildLive(w.tr.Root(), clock.Epoch, clock.Epoch.Add(u(nowMs)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLiveFork: a running fork with one child done and one pending plans
// the pending branch from its own (distinct) sub-skeleton.
func TestLiveFork(t *testing.T) {
	w := newLiveWorld()
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	feA := muscle.NewExecute("feA", func(p any) (any, error) { return p, nil })
	feB := muscle.NewExecute("feB", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewFork(fs, []*skel.Node{skel.NewSeq(feA), skel.NewSeq(feB)}, fm)
	w.est.InitDuration(fs.ID(), u(5))
	w.est.InitDuration(feA.ID(), u(10))
	w.est.InitDuration(feB.ID(), u(30))
	w.est.InitDuration(fm.ID(), u(2))

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Split, 0, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Split, 5, func(e *event.Event) { e.Card = 2 })
	// Branch 0 (feA) done; branch 1 (feB) has not activated.
	w.emit(nd, 0, event.NoParent, event.Before, event.NestedSkel, 5, func(e *event.Event) { e.Branch = 0 })
	seqA := nd.Children()[0]
	w.emit(seqA, 1, 0, event.Before, event.Skeleton, 5, nil)
	w.emit(seqA, 1, 0, event.After, event.Skeleton, 15, nil)

	g := w.graph(t, 20)
	g.ScheduleBestEffort()
	// Pending feB starts at now (its pred, the split, is history): 20+30,
	// then merge 2: WCT = 52.
	if wct := g.WCT(); wct != u(52) {
		t.Fatalf("WCT %v, want 52ms\n%s", wct, g.Render(time.Millisecond))
	}
	// The pending branch must cost feB's 30ms, not feA's 10ms.
	foundB := false
	for _, a := range g.Acts {
		if a.Muscle == feB && a.State() == Pending && a.Dur == u(30) {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("pending fork branch not planned from feB\n%s", g.Render(time.Millisecond))
	}
}

// TestLiveIfChosenBranch: once the verdict picked a branch, the plan uses
// that branch's actual child, not the worst case.
func TestLiveIfChosenBranch(t *testing.T) {
	w := newLiveWorld()
	fc := muscle.NewCondition("fc", func(p any) (bool, error) { return true, nil })
	feShort := muscle.NewExecute("short", func(p any) (any, error) { return p, nil })
	feLong := muscle.NewExecute("long", func(p any) (any, error) { return p, nil })
	nd := skel.NewIf(fc, skel.NewSeq(feShort), skel.NewSeq(feLong))
	w.est.InitDuration(fc.ID(), u(1))
	w.est.InitDuration(feShort.ID(), u(5))
	w.est.InitDuration(feLong.ID(), u(50))

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Condition, 0, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Condition, 1, func(e *event.Event) { e.Cond = true })
	// The true branch (short) activated and is running.
	w.emit(nd.Children()[0], 1, 0, event.Before, event.Skeleton, 1, nil)

	g := w.graph(t, 3)
	g.ScheduleBestEffort()
	// cond [0,1] + short running since 1 (est 5 -> ends 6): WCT 6, not 51.
	if wct := g.WCT(); wct != u(6) {
		t.Fatalf("WCT %v, want 6ms\n%s", wct, g.Render(time.Millisecond))
	}
}

// TestLiveIfUndecided: before the verdict, the worst-case branch is
// planned (the documented extension).
func TestLiveIfUndecided(t *testing.T) {
	w := newLiveWorld()
	fc := muscle.NewCondition("fc", func(p any) (bool, error) { return true, nil })
	feShort := muscle.NewExecute("short", func(p any) (any, error) { return p, nil })
	feLong := muscle.NewExecute("long", func(p any) (any, error) { return p, nil })
	nd := skel.NewIf(fc, skel.NewSeq(feShort), skel.NewSeq(feLong))
	w.est.InitDuration(fc.ID(), u(1))
	w.est.InitDuration(feShort.ID(), u(5))
	w.est.InitDuration(feLong.ID(), u(50))

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Condition, 0, nil)

	g := w.graph(t, 0)
	g.ScheduleBestEffort()
	// Running cond (est 1ms) + worst branch 50ms.
	if wct := g.WCT(); wct != u(51) {
		t.Fatalf("WCT %v, want 51ms\n%s", wct, g.Render(time.Millisecond))
	}
}

// TestLiveDaCLeaf: a d&c activation whose condition came back false plans
// only the leaf.
func TestLiveDaCLeaf(t *testing.T) {
	w := newLiveWorld()
	fc := muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)
	w.est.InitDuration(fc.ID(), u(1))
	w.est.InitDuration(fs.ID(), u(5))
	w.est.InitDuration(fe.ID(), u(20))
	w.est.InitDuration(fm.ID(), u(3))
	w.est.InitCard(fc.ID(), 2)
	w.est.InitCard(fs.ID(), 2)

	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Condition, 0, func(e *event.Event) { e.Iter = 0 })
	w.emit(nd, 0, event.NoParent, event.After, event.Condition, 1, func(e *event.Event) { e.Cond = false; e.Iter = 0 })

	g := w.graph(t, 2)
	g.ScheduleBestEffort()
	// cond [0,1], leaf pending 20ms from now=2: WCT 22. No split/merge.
	if wct := g.WCT(); wct != u(22) {
		t.Fatalf("WCT %v, want 22ms\n%s", wct, g.Render(time.Millisecond))
	}
	for _, a := range g.Acts {
		if a.Muscle == fs || a.Muscle == fm {
			t.Fatalf("leaf-mode d&c planned split/merge\n%s", g.Render(time.Millisecond))
		}
	}
}

// TestLiveDaCRecursing: mid-recursion, known children are live and missing
// siblings are planned virtually one level deeper.
func TestLiveDaCRecursing(t *testing.T) {
	w := newLiveWorld()
	fc := muscle.NewCondition("fc", func(p any) (bool, error) { return false, nil })
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	nd := skel.NewDaC(fc, fs, skel.NewSeq(fe), fm)
	w.est.InitDuration(fc.ID(), u(1))
	w.est.InitDuration(fs.ID(), u(4))
	w.est.InitDuration(fe.ID(), u(20))
	w.est.InitDuration(fm.ID(), u(3))
	w.est.InitCard(fc.ID(), 1) // depth estimate: one split level
	w.est.InitCard(fs.ID(), 2)

	// Root dac: cond true [0,1], split [1,5] card 2; no children started.
	w.emit(nd, 0, event.NoParent, event.Before, event.Skeleton, 0, nil)
	w.emit(nd, 0, event.NoParent, event.Before, event.Condition, 0, func(e *event.Event) { e.Iter = 0 })
	w.emit(nd, 0, event.NoParent, event.After, event.Condition, 1, func(e *event.Event) { e.Cond = true; e.Iter = 0 })
	w.emit(nd, 0, event.NoParent, event.Before, event.Split, 1, nil)
	w.emit(nd, 0, event.NoParent, event.After, event.Split, 5, func(e *event.Event) { e.Card = 2 })

	g := w.graph(t, 6)
	g.ScheduleBestEffort()
	// Children (virtual, depth 1 = leaves): cond 1 + fe 20 each in
	// parallel from now=6 -> 27; merge 3 -> 30.
	if wct := g.WCT(); wct != u(30) {
		t.Fatalf("WCT %v, want 30ms\n%s", wct, g.Render(time.Millisecond))
	}
}
