// Package adg implements the Activity Dependency Graph of the paper's §4:
// the model that turns "where the execution is right now" plus the t(m) and
// |m| estimates into predictions of the remaining wall-clock time.
//
// An Activity is one muscle execution — past (actual start and end), running
// (actual start, estimated end), or future (both estimated). Dependencies
// follow the data flow of the skeleton program: a split precedes its
// sub-problems, every sub-problem precedes the merge, pipeline stages and
// loop iterations chain, and so on.
//
// Two scheduling strategies evaluate the graph, exactly as in Fig. 1/Fig. 2:
//
//   - best effort assumes an infinite level of parallelism: an activity
//     starts as soon as its predecessors finish (clamped to "now" if that is
//     in the past). Its makespan is the best achievable WCT, and the peak of
//     its active-thread timeline is the optimal LP.
//   - limited LP list-schedules pending activities onto lp slots (greedy,
//     ready-time order): its makespan predicts the WCT if the current LP is
//     kept.
package adg

import (
	"fmt"
	"sort"
	"time"

	"skandium/internal/muscle"
)

// State classifies an activity at analysis time.
type State int

// Activity states.
const (
	// Done: both start and end are actual history.
	Done State = iota
	// Running: started, not finished; end is estimated.
	Running
	// Pending: not started; both times come from scheduling.
	Pending
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Done:
		return "done"
	case Running:
		return "running"
	case Pending:
		return "pending"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Activity is one node of the ADG.
type Activity struct {
	ID     int
	Muscle *muscle.Muscle
	// Label names the activity in dumps, e.g. "fs", "fe[2]", "~collapsed".
	Label string
	// Dur is the estimated duration, used when the end is not actual.
	Dur time.Duration
	// ActualStart/ActualEnd are history; valid per HasStart/HasEnd.
	ActualStart time.Time
	ActualEnd   time.Time
	HasStart    bool
	HasEnd      bool
	// Preds are the activities that must finish before this one starts.
	Preds []*Activity

	// TI and TF are the scheduled start and end times, filled by
	// ScheduleBestEffort / ScheduleLimited. For Done activities they equal
	// the actual times.
	TI time.Time
	TF time.Time
}

// State returns the activity's classification.
func (a *Activity) State() State {
	switch {
	case a.HasEnd:
		return Done
	case a.HasStart:
		return Running
	default:
		return Pending
	}
}

// Graph is an ADG snapshot taken at time Now for an execution that started
// at Start. Activities are topologically ordered (every activity appears
// after all of its predecessors).
type Graph struct {
	Acts  []*Activity
	Start time.Time
	Now   time.Time
}

// Len returns the number of activities.
func (g *Graph) Len() int { return len(g.Acts) }

// ScheduleBestEffort fills TI/TF assuming infinite parallelism (the paper's
// "best effort" strategy): ti = max over predecessors of tf, clamped to Now
// if in the past; tf = ti + t(m), clamped to Now for running activities
// whose estimate has already elapsed.
func (g *Graph) ScheduleBestEffort() {
	for _, a := range g.Acts {
		g.scheduleFixed(a)
		if a.State() != Pending {
			continue
		}
		ti := g.Now
		for _, p := range a.Preds {
			if p.TF.After(ti) {
				ti = p.TF
			}
		}
		a.TI = ti
		a.TF = ti.Add(a.Dur)
	}
}

// scheduleFixed sets TI/TF for Done and Running activities, which are the
// same under every strategy.
func (g *Graph) scheduleFixed(a *Activity) {
	switch a.State() {
	case Done:
		a.TI, a.TF = a.ActualStart, a.ActualEnd
	case Running:
		a.TI = a.ActualStart
		a.TF = a.ActualStart.Add(a.Dur)
		if a.TF.Before(g.Now) {
			// The paper: "if ti + t(m) is in the past, tf = currentTime".
			a.TF = g.Now
		}
	}
}

// ScheduleLimited fills TI/TF under a level-of-parallelism cap: pending
// activities are greedily list-scheduled onto lp slots in ready-time order
// (ties by creation order), starting from Now. Running activities occupy
// slots until their estimated end. lp < 1 is treated as 1.
func (g *Graph) ScheduleLimited(lp int) {
	if lp < 1 {
		lp = 1
	}
	// indegree counts unfinished predecessors per pending activity;
	// finished means TF <= the event cursor as the simulation advances.
	indeg := make(map[*Activity]int, len(g.Acts))
	succs := make(map[*Activity][]*Activity, len(g.Acts))
	var completions eventHeap
	busy := 0
	for _, a := range g.Acts {
		g.scheduleFixed(a)
		switch a.State() {
		case Running:
			busy++
			completions.push(evt{t: a.TF, act: a})
		case Pending:
			a.TI, a.TF = time.Time{}, time.Time{}
		}
	}
	for _, a := range g.Acts {
		if a.State() != Pending {
			continue
		}
		n := 0
		for _, p := range a.Preds {
			switch p.State() {
			case Done:
				if p.TF.After(g.Now) {
					n++ // cannot happen (done is history), defensive
				}
			case Running:
				n++
			case Pending:
				n++
			}
		}
		indeg[a] = n
		for _, p := range a.Preds {
			if p.State() != Done {
				succs[p] = append(succs[p], a)
			}
		}
	}
	// ready holds pending activities whose predecessors have all completed
	// by the cursor, in (ready time, ID) order.
	var ready actQueue
	for _, a := range g.Acts {
		if a.State() == Pending && indeg[a] == 0 {
			ready.push(a)
		}
	}
	cursor := g.Now
	free := lp - busy
	if free < 0 {
		free = 0
	}
	for {
		for free > 0 && ready.len() > 0 {
			a := ready.pop()
			a.TI = cursor
			a.TF = cursor.Add(a.Dur)
			free--
			completions.push(evt{t: a.TF, act: a})
		}
		if completions.len() == 0 {
			return // everything scheduled (or nothing left)
		}
		// Advance to the next completion; release its slot and unlock
		// successors. Process all completions at the same instant.
		cursor = completions.peek().t
		for completions.len() > 0 && !completions.peek().t.After(cursor) {
			e := completions.pop()
			free++
			for _, s := range succs[e.act] {
				indeg[s]--
				if indeg[s] == 0 {
					ready.push(s)
				}
			}
		}
	}
}

// WCT returns the makespan of the last computed schedule as a duration
// since the execution start.
func (g *Graph) WCT() time.Duration {
	var end time.Time
	for _, a := range g.Acts {
		if a.TF.After(end) {
			end = a.TF
		}
	}
	if end.IsZero() {
		return 0
	}
	return end.Sub(g.Start)
}

// EndTime returns the absolute completion time of the last computed
// schedule.
func (g *Graph) EndTime() time.Time {
	var end time.Time
	for _, a := range g.Acts {
		if a.TF.After(end) {
			end = a.TF
		}
	}
	return end
}

// Step is one level of the active-thread timeline: Active threads are in
// use from T until the next step's T.
type Step struct {
	T      time.Time
	Active int
}

// Timeline sweeps the scheduled activities into the step function of
// Fig. 2: how many activities are in flight at every instant. Zero-length
// activities do not contribute.
func (g *Graph) Timeline() []Step {
	type edge struct {
		t     time.Time
		delta int
	}
	var edges []edge
	for _, a := range g.Acts {
		if !a.TF.After(a.TI) {
			continue
		}
		edges = append(edges, edge{a.TI, +1}, edge{a.TF, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if !edges[i].t.Equal(edges[j].t) {
			return edges[i].t.Before(edges[j].t)
		}
		return edges[i].delta < edges[j].delta // ends before starts at same t
	})
	var steps []Step
	active := 0
	for i := 0; i < len(edges); {
		t := edges[i].t
		for i < len(edges) && edges[i].t.Equal(t) {
			active += edges[i].delta
			i++
		}
		if len(steps) > 0 && steps[len(steps)-1].Active == active {
			continue
		}
		steps = append(steps, Step{T: t, Active: active})
	}
	return steps
}

// Peak returns the maximum Active level of the timeline at or after from.
// It is the paper's optimal LP when applied to a best-effort schedule from
// Now.
func Peak(steps []Step, from time.Time) int {
	peak := 0
	cur := 0
	for i, s := range steps {
		// Determine the level in effect during [s.T, next.T).
		cur = s.Active
		endsBefore := i+1 < len(steps) && !steps[i+1].T.After(from)
		if endsBefore {
			continue
		}
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// OptimalLP computes the paper's optimal level of parallelism: the peak of
// the best-effort timeline from Now on. It (re)schedules the graph
// best-effort.
func (g *Graph) OptimalLP() int {
	g.ScheduleBestEffort()
	p := Peak(g.Timeline(), g.Now)
	if p < 1 {
		p = 1
	}
	return p
}

// MinLPForGoal returns the smallest lp in [1, ceil] whose limited-LP
// schedule completes by deadline, and whether such an lp exists. The graph
// is left scheduled at the returned lp. The paper notes the exact problem
// is NP-complete; like the paper this relies on the greedy list schedule,
// plus the (stated) assumption that more threads never hurt, which makes
// the predicate monotone and binary-searchable.
func (g *Graph) MinLPForGoal(deadline time.Time, ceil int) (int, bool) {
	if ceil < 1 {
		ceil = 1
	}
	g.ScheduleLimited(ceil)
	if g.EndTime().After(deadline) {
		return ceil, false
	}
	lo, hi := 1, ceil // invariant: hi works
	for lo < hi {
		mid := (lo + hi) / 2
		g.ScheduleLimited(mid)
		if g.EndTime().After(deadline) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g.ScheduleLimited(lo)
	return lo, true
}

// --- small helpers ------------------------------------------------------------

type evt struct {
	t   time.Time
	act *Activity
}

// eventHeap is a min-heap of completion events ordered by time then ID.
type eventHeap struct{ es []evt }

func (h *eventHeap) len() int { return len(h.es) }

func (h *eventHeap) less(i, j int) bool {
	if !h.es[i].t.Equal(h.es[j].t) {
		return h.es[i].t.Before(h.es[j].t)
	}
	return h.es[i].act.ID < h.es[j].act.ID
}

func (h *eventHeap) push(e evt) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(p, i) {
			break
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

func (h *eventHeap) peek() evt { return h.es[0] }

func (h *eventHeap) pop() evt {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.es) && h.less(l, small) {
			small = l
		}
		if r < len(h.es) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.es[i], h.es[small] = h.es[small], h.es[i]
		i = small
	}
	return top
}

// actQueue orders ready activities by ID (creation order), which the
// builder assigns in program order — the greedy tie-break of the paper's
// list scheduler.
type actQueue struct{ as []*Activity }

func (q *actQueue) len() int { return len(q.as) }

func (q *actQueue) push(a *Activity) {
	q.as = append(q.as, a)
	i := len(q.as) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.as[p].ID < q.as[i].ID {
			break
		}
		q.as[p], q.as[i] = q.as[i], q.as[p]
		i = p
	}
}

func (q *actQueue) pop() *Activity {
	top := q.as[0]
	last := len(q.as) - 1
	q.as[0] = q.as[last]
	q.as = q.as[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.as) && q.as[l].ID < q.as[small].ID {
			small = l
		}
		if r < len(q.as) && q.as[r].ID < q.as[small].ID {
			small = r
		}
		if small == i {
			break
		}
		q.as[i], q.as[small] = q.as[small], q.as[i]
		i = small
	}
	return top
}
