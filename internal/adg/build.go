package adg

import (
	"fmt"
	"math"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// DefaultBudget caps the number of activities a single ADG may contain.
// Structure beyond the budget is collapsed into single activities whose
// duration is the analytic sequential estimate, so analysis cost stays
// bounded on explosive programs (deep d&c, huge maps).
const DefaultBudget = 50000

// IncompleteError reports that the ADG could not be built because a muscle
// has no estimate yet. The paper: "the system has to wait until all muscles
// have been executed at least once"; the controller treats this error as
// "analysis not possible yet".
type IncompleteError struct {
	Muscle *muscle.Muscle
	// Card is true when the missing piece is the cardinality |m| rather
	// than the duration t(m).
	Card bool
}

// Error implements error.
func (e *IncompleteError) Error() string {
	what := "t(m)"
	if e.Card {
		what = "|m|"
	}
	return fmt.Sprintf("adg: no %s estimate for muscle %s yet", what, e.Muscle)
}

// Builder constructs ADGs from a live activation tree (or from bare
// structure, for pre-execution planning) and an estimate registry.
type Builder struct {
	// Est supplies t(m) and |m|.
	Est *estimate.Registry
	// Budget caps the activity count (0 = DefaultBudget).
	Budget int
}

type build struct {
	est    *estimate.Registry
	now    time.Time
	budget int
	acts   []*Activity
	err    error
}

// BuildLive snapshots the ADG of a running execution: root is the tracker's
// root instance, start the execution start time, now the analysis instant.
func (b Builder) BuildLive(root *statemachine.Instance, start, now time.Time) (*Graph, error) {
	if root == nil {
		return nil, fmt.Errorf("adg: no root activation yet")
	}
	bd := b.newBuild(now)
	bd.liveInst(root, nil)
	if bd.err != nil {
		return nil, bd.err
	}
	return &Graph{Acts: bd.acts, Start: start, Now: now}, nil
}

// BuildVirtual constructs the a-priori ADG of a program that has not
// started: every activity is pending, anchored at start. It requires every
// muscle to have (initialized) estimates.
func (b Builder) BuildVirtual(node *skel.Node, start time.Time) (*Graph, error) {
	bd := b.newBuild(start)
	bd.virtual(node, nil)
	if bd.err != nil {
		return nil, bd.err
	}
	return &Graph{Acts: bd.acts, Start: start, Now: start}, nil
}

func (b Builder) newBuild(now time.Time) *build {
	budget := b.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &build{est: b.Est, now: now, budget: budget}
}

// --- activity constructors ----------------------------------------------------

func (bd *build) fail(err error) {
	if bd.err == nil {
		bd.err = err
	}
}

func (bd *build) dur(m *muscle.Muscle) time.Duration {
	d, ok := bd.est.Duration(m.ID())
	if !ok {
		bd.fail(&IncompleteError{Muscle: m})
		return 0
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (bd *build) card(m *muscle.Muscle) int {
	c, ok := bd.est.Card(m.ID())
	if !ok {
		bd.fail(&IncompleteError{Muscle: m, Card: true})
		return 0
	}
	k := int(math.Round(c))
	if k < 0 {
		k = 0
	}
	return k
}

// act appends a new activity. rec carries the actual times when the muscle
// has started/finished.
func (bd *build) act(m *muscle.Muscle, label string, rec statemachine.ActivityRec, preds []*Activity) *Activity {
	a := &Activity{
		ID:     len(bd.acts),
		Muscle: m,
		Label:  label,
		Dur:    bd.dur(m),
		Preds:  preds,
	}
	if rec.Started {
		a.ActualStart, a.HasStart = rec.Start, true
	}
	if rec.Ended {
		a.ActualEnd, a.HasEnd = rec.End, true
	}
	bd.acts = append(bd.acts, a)
	bd.budget--
	return a
}

// collapsed replaces a whole subtree with one pending activity whose
// duration is the analytic sequential estimate — the budget fallback.
func (bd *build) collapsed(node *skel.Node, preds []*Activity) []*Activity {
	return bd.lump(node, 1, preds)
}

// lump replaces count repetitions of a subtree with one pending activity of
// count times the analytic sequential estimate. It keeps over-budget graphs
// bounded: the remaining work is modelled pessimistically (sequential) but
// the analysis stays cheap.
func (bd *build) lump(node *skel.Node, count int, preds []*Activity) []*Activity {
	if count <= 0 {
		return preds
	}
	d, err := SeqEstimate(bd.est, node)
	if err != nil {
		bd.fail(err)
		return nil
	}
	a := &Activity{
		ID:    len(bd.acts),
		Label: "~" + node.Kind().String(),
		Dur:   time.Duration(count) * d,
		Preds: preds,
	}
	bd.acts = append(bd.acts, a)
	bd.budget--
	return []*Activity{a}
}

// --- virtual expansion (structure that has not started) ------------------------

// virtual expands node into pending activities and returns the exit set.
func (bd *build) virtual(node *skel.Node, preds []*Activity) []*Activity {
	if bd.err != nil {
		return nil
	}
	if bd.budget <= 0 {
		return bd.collapsed(node, preds)
	}
	none := statemachine.ActivityRec{}
	switch node.Kind() {
	case skel.Seq:
		return []*Activity{bd.act(node.Exec(), node.Exec().Name(), none, preds)}
	case skel.Farm:
		return bd.virtual(node.Children()[0], preds)
	case skel.Pipe:
		for _, stage := range node.Children() {
			preds = bd.virtual(stage, preds)
		}
		return preds
	case skel.For:
		for i := 0; i < node.N(); i++ {
			if bd.budget <= 0 {
				return bd.lump(node.Children()[0], node.N()-i, preds)
			}
			preds = bd.virtual(node.Children()[0], preds)
		}
		return preds
	case skel.While:
		k := bd.card(node.Cond())
		for i := 0; i < k; i++ {
			if bd.budget <= 0 {
				return bd.lump(node, 1, preds) // remaining loop as one lump
			}
			cond := bd.act(node.Cond(), node.Cond().Name(), none, preds)
			preds = bd.virtual(node.Children()[0], []*Activity{cond})
		}
		final := bd.act(node.Cond(), node.Cond().Name(), none, preds)
		return []*Activity{final}
	case skel.If:
		cond := bd.act(node.Cond(), node.Cond().Name(), none, preds)
		// Extension (paper leaves If unsupported): plan for the worst-case
		// branch by analytic sequential estimate.
		t, errT := SeqEstimate(bd.est, node.Children()[0])
		f, errF := SeqEstimate(bd.est, node.Children()[1])
		branch := node.Children()[0]
		if errT != nil || (errF == nil && f > t) {
			branch = node.Children()[1]
		}
		return bd.virtual(branch, []*Activity{cond})
	case skel.Map:
		split := bd.act(node.Split(), node.Split().Name(), none, preds)
		k := bd.card(node.Split())
		exits := make([]*Activity, 0, k)
		for i := 0; i < k; i++ {
			if bd.budget <= 0 {
				exits = append(exits, bd.lump(node.Children()[0], k-i, []*Activity{split})...)
				break
			}
			exits = append(exits, bd.virtual(node.Children()[0], []*Activity{split})...)
		}
		merge := bd.act(node.Merge(), node.Merge().Name(), none, exits)
		return []*Activity{merge}
	case skel.Fork:
		split := bd.act(node.Split(), node.Split().Name(), none, preds)
		var exits []*Activity
		for _, sub := range node.Children() {
			exits = append(exits, bd.virtual(sub, []*Activity{split})...)
		}
		merge := bd.act(node.Merge(), node.Merge().Name(), none, exits)
		return []*Activity{merge}
	case skel.DaC:
		depth := bd.card(node.Cond())
		return bd.virtualDaC(node, preds, depth)
	default:
		bd.fail(fmt.Errorf("adg: unknown kind %v", node.Kind()))
		return nil
	}
}

// virtualDaC expands a divide-and-conquer with `remaining` estimated levels
// of recursion left before the leaf.
func (bd *build) virtualDaC(node *skel.Node, preds []*Activity, remaining int) []*Activity {
	if bd.err != nil {
		return nil
	}
	if bd.budget <= 0 {
		return bd.collapsed(node, preds)
	}
	none := statemachine.ActivityRec{}
	cond := bd.act(node.Cond(), node.Cond().Name(), none, preds)
	if remaining <= 0 {
		return bd.virtual(node.Children()[0], []*Activity{cond})
	}
	split := bd.act(node.Split(), node.Split().Name(), none, []*Activity{cond})
	k := bd.card(node.Split())
	if k < 1 {
		k = 1
	}
	var exits []*Activity
	for i := 0; i < k; i++ {
		if bd.budget <= 0 {
			exits = append(exits, bd.lump(node, k-i, []*Activity{split})...)
			break
		}
		exits = append(exits, bd.virtualDaC(node, []*Activity{split}, remaining-1)...)
	}
	merge := bd.act(node.Merge(), node.Merge().Name(), none, exits)
	return []*Activity{merge}
}

// --- live expansion (activations that exist) -----------------------------------

// liveInst expands a live activation, mixing actual history with estimated
// futures, and returns the exit set.
func (bd *build) liveInst(in *statemachine.Instance, preds []*Activity) []*Activity {
	if bd.err != nil {
		return nil
	}
	if bd.budget <= 0 {
		return bd.collapsed(in.Node, preds)
	}
	switch in.Kind {
	case skel.Seq:
		rec := in.Exec
		if !rec.Started {
			// Fig. 3: the seq activation brackets exactly the fe muscle.
			rec = statemachine.ActivityRec{Start: in.StartTime, Started: in.Started}
		}
		return []*Activity{bd.act(in.Node.Exec(), in.Node.Exec().Name(), rec, preds)}
	case skel.Farm:
		return bd.singleBody(in, preds)
	case skel.Pipe:
		byBranch := childrenByBranch(in)
		for i := range in.Node.Children() {
			if c, ok := byBranch[i]; ok {
				preds = bd.liveInst(c, preds)
			} else {
				preds = bd.virtual(in.Node.Children()[i], preds)
			}
		}
		return preds
	case skel.For:
		byIter := childrenByIter(in)
		for i := 0; i < in.Node.N(); i++ {
			if c, ok := byIter[i]; ok {
				preds = bd.liveInst(c, preds)
			} else {
				preds = bd.virtual(in.Node.Children()[0], preds)
			}
		}
		return preds
	case skel.While:
		return bd.liveWhile(in, preds)
	case skel.If:
		return bd.liveIf(in, preds)
	case skel.Map, skel.Fork:
		return bd.liveSplitMerge(in, preds, nil)
	case skel.DaC:
		return bd.liveDaC(in, preds)
	default:
		bd.fail(fmt.Errorf("adg: unknown kind %v", in.Kind))
		return nil
	}
}

// singleBody handles wrappers with exactly one nested evaluation (farm).
func (bd *build) singleBody(in *statemachine.Instance, preds []*Activity) []*Activity {
	if len(in.Children) > 0 {
		return bd.liveInst(in.Children[0], preds)
	}
	return bd.virtual(in.Node.Children()[0], preds)
}

func (bd *build) liveWhile(in *statemachine.Instance, preds []*Activity) []*Activity {
	fc := in.Node.Cond()
	body := in.Node.Children()[0]
	byIter := childrenByIter(in)
	// Recorded condition checks alternate with body iterations. A check
	// still running is assumed true when the |fc| estimate predicts more
	// iterations, false otherwise.
	assumed := 0
	for i, rec := range in.Conds {
		cond := bd.act(fc, fc.Name(), rec, preds)
		preds = []*Activity{cond}
		last := i == len(in.Conds)-1
		if in.CondClosed && last {
			return preds // final false verdict: the while is structurally over
		}
		if !rec.Ended {
			if bd.card(fc) <= in.TrueIters {
				return preds // estimate says the running check will end the loop
			}
			assumed = 1
		}
		if c, ok := byIter[i]; ok {
			preds = bd.liveInst(c, preds)
		} else {
			preds = bd.virtual(body, preds)
		}
	}
	// Future iterations: the |fc| estimate minus the true verdicts already
	// seen (and the one assumed above).
	k := bd.card(fc) - in.TrueIters - assumed
	for i := 0; i < k; i++ {
		cond := bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
		preds = bd.virtual(body, []*Activity{cond})
	}
	final := bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
	return []*Activity{final}
}

func (bd *build) liveIf(in *statemachine.Instance, preds []*Activity) []*Activity {
	fc := in.Node.Cond()
	var cond *Activity
	if len(in.Conds) > 0 {
		cond = bd.act(fc, fc.Name(), in.Conds[0], preds)
	} else {
		cond = bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
	}
	if len(in.Children) > 0 {
		return bd.liveInst(in.Children[0], []*Activity{cond})
	}
	// Branch not chosen yet: worst case, as in the virtual expansion.
	t, errT := SeqEstimate(bd.est, in.Node.Children()[0])
	f, errF := SeqEstimate(bd.est, in.Node.Children()[1])
	branch := in.Node.Children()[0]
	if errT != nil || (errF == nil && f > t) {
		branch = in.Node.Children()[1]
	}
	return bd.virtual(branch, []*Activity{cond})
}

// liveSplitMerge handles map and fork (and the split arm of d&c when extra
// entry predecessors are supplied).
func (bd *build) liveSplitMerge(in *statemachine.Instance, preds []*Activity, entry []*Activity) []*Activity {
	node := in.Node
	splitPreds := preds
	if entry != nil {
		splitPreds = entry
	}
	split := bd.act(node.Split(), node.Split().Name(), in.Split, splitPreds)
	k := in.ActualCard
	var subFor func(branch int) *skel.Node
	if in.Kind == skel.Fork {
		if k < 0 {
			k = len(node.Children())
		}
		subFor = func(b int) *skel.Node {
			if b < len(node.Children()) {
				return node.Children()[b]
			}
			return node.Children()[len(node.Children())-1]
		}
	} else {
		if k < 0 {
			k = bd.card(node.Split())
		}
		subFor = func(int) *skel.Node { return node.Children()[0] }
	}
	byBranch := childrenByBranch(in)
	var exits []*Activity
	for b := 0; b < k; b++ {
		if bd.budget <= 0 {
			exits = append(exits, bd.lump(subFor(b), k-b, []*Activity{split})...)
			break
		}
		if c, ok := byBranch[b]; ok {
			exits = append(exits, bd.liveInst(c, []*Activity{split})...)
		} else {
			exits = append(exits, bd.virtual(subFor(b), []*Activity{split})...)
		}
	}
	merge := bd.act(node.Merge(), node.Merge().Name(), in.Merge, exits)
	return []*Activity{merge}
}

func (bd *build) liveDaC(in *statemachine.Instance, preds []*Activity) []*Activity {
	fc := in.Node.Cond()
	var cond *Activity
	if len(in.Conds) > 0 {
		cond = bd.act(fc, fc.Name(), in.Conds[0], preds)
	} else {
		cond = bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
	}
	entry := []*Activity{cond}
	switch {
	case in.Split.Started || in.ActualCard >= 0:
		// Condition held: recursive arm. Children are dacs one level deeper.
		return bd.liveSplitMergeDaC(in, entry)
	case in.CondClosed:
		// Leaf: the nested skeleton solves it.
		if len(in.Children) > 0 {
			return bd.liveInst(in.Children[0], entry)
		}
		return bd.virtual(in.Node.Children()[0], entry)
	default:
		// Condition still running/unknown: expand virtually from the
		// estimated remaining depth.
		est := bd.card(fc)
		remaining := est - in.Depth
		if remaining <= 0 {
			return bd.virtual(in.Node.Children()[0], entry)
		}
		split := bd.act(in.Node.Split(), in.Node.Split().Name(), statemachine.ActivityRec{}, entry)
		k := bd.card(in.Node.Split())
		if k < 1 {
			k = 1
		}
		var exits []*Activity
		for i := 0; i < k; i++ {
			exits = append(exits, bd.virtualDaC(in.Node, []*Activity{split}, remaining-1)...)
		}
		merge := bd.act(in.Node.Merge(), in.Node.Merge().Name(), statemachine.ActivityRec{}, exits)
		return []*Activity{merge}
	}
}

func (bd *build) liveSplitMergeDaC(in *statemachine.Instance, entry []*Activity) []*Activity {
	node := in.Node
	split := bd.act(node.Split(), node.Split().Name(), in.Split, entry)
	k := in.ActualCard
	if k < 0 {
		k = bd.card(node.Split())
		if k < 1 {
			k = 1
		}
	}
	byBranch := childrenByBranch(in)
	est := bd.card(node.Cond())
	var exits []*Activity
	for b := 0; b < k; b++ {
		if c, ok := byBranch[b]; ok {
			exits = append(exits, bd.liveInst(c, []*Activity{split})...)
		} else {
			remaining := est - (in.Depth + 1)
			exits = append(exits, bd.virtualDaC(node, []*Activity{split}, remaining)...)
		}
	}
	merge := bd.act(node.Merge(), node.Merge().Name(), in.Merge, exits)
	return []*Activity{merge}
}

func childrenByBranch(in *statemachine.Instance) map[int]*statemachine.Instance {
	m := make(map[int]*statemachine.Instance, len(in.Children))
	for i, c := range in.Children {
		b := c.Branch
		if _, dup := m[b]; dup {
			b = i // fall back to arrival order on branch collisions
		}
		m[b] = c
	}
	return m
}

func childrenByIter(in *statemachine.Instance) map[int]*statemachine.Instance {
	m := make(map[int]*statemachine.Instance, len(in.Children))
	for i, c := range in.Children {
		it := c.Iter
		if _, dup := m[it]; dup {
			it = i
		}
		m[it] = c
	}
	return m
}
