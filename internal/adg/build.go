package adg

import (
	"fmt"
	"math"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// DefaultBudget caps the number of activities a single ADG may contain.
// Structure beyond the budget is collapsed into single activities whose
// duration is the analytic sequential estimate, so analysis cost stays
// bounded on explosive programs (deep d&c, huge maps).
const DefaultBudget = 50000

// IncompleteError reports that the ADG could not be built because a muscle
// has no estimate yet. The paper: "the system has to wait until all muscles
// have been executed at least once"; the controller treats this error as
// "analysis not possible yet".
type IncompleteError struct {
	Muscle *muscle.Muscle
	// Card is true when the missing piece is the cardinality |m| rather
	// than the duration t(m).
	Card bool
}

// Error implements error.
func (e *IncompleteError) Error() string {
	what := "t(m)"
	if e.Card {
		what = "|m|"
	}
	return fmt.Sprintf("adg: no %s estimate for muscle %s yet", what, e.Muscle)
}

// Builder constructs ADGs from a live activation tree (or from bare
// structure, for pre-execution planning) and an estimate registry. Both
// walks run over the compiled program IR (internal/plan) — the same steps
// the interpreter and the simulator execute — so structural decisions
// (branch resolution, fan-out arity, muscle slots) cannot drift between
// analysis and execution.
type Builder struct {
	// Est supplies t(m) and |m|.
	Est *estimate.Registry
	// Budget caps the activity count (0 = DefaultBudget).
	Budget int
}

type build struct {
	est    *estimate.Registry
	now    time.Time
	budget int
	acts   []*Activity
	err    error
}

// BuildLive snapshots the ADG of a running execution: root is the tracker's
// root instance, start the execution start time, now the analysis instant.
// The walk pairs each live activation with its compiled program step.
func (b Builder) BuildLive(root *statemachine.Instance, start, now time.Time) (*Graph, error) {
	if root == nil {
		return nil, fmt.Errorf("adg: no root activation yet")
	}
	p, err := plan.Of(root.Node)
	if err != nil {
		return nil, err
	}
	bd := b.newBuild(now)
	bd.liveInst(root, p.Root(), nil)
	if bd.err != nil {
		return nil, bd.err
	}
	return &Graph{Acts: bd.acts, Start: start, Now: now}, nil
}

// BuildVirtual constructs the a-priori ADG of a program that has not
// started: every activity is pending, anchored at start. It requires every
// muscle to have (initialized) estimates.
func (b Builder) BuildVirtual(node *skel.Node, start time.Time) (*Graph, error) {
	p, err := plan.Of(node)
	if err != nil {
		return nil, err
	}
	bd := b.newBuild(start)
	bd.virtual(p.Root(), nil)
	if bd.err != nil {
		return nil, bd.err
	}
	return &Graph{Acts: bd.acts, Start: start, Now: start}, nil
}

func (b Builder) newBuild(now time.Time) *build {
	budget := b.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &build{est: b.Est, now: now, budget: budget}
}

// --- activity constructors ----------------------------------------------------

func (bd *build) fail(err error) {
	if bd.err == nil {
		bd.err = err
	}
}

func (bd *build) dur(m *muscle.Muscle) time.Duration {
	d, ok := bd.est.Duration(m.ID())
	if !ok {
		bd.fail(&IncompleteError{Muscle: m})
		return 0
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (bd *build) card(m *muscle.Muscle) int {
	c, ok := bd.est.Card(m.ID())
	if !ok {
		bd.fail(&IncompleteError{Muscle: m, Card: true})
		return 0
	}
	k := int(math.Round(c))
	if k < 0 {
		k = 0
	}
	return k
}

// act appends a new activity. rec carries the actual times when the muscle
// has started/finished.
func (bd *build) act(m *muscle.Muscle, label string, rec statemachine.ActivityRec, preds []*Activity) *Activity {
	a := &Activity{
		ID:     len(bd.acts),
		Muscle: m,
		Label:  label,
		Dur:    bd.dur(m),
		Preds:  preds,
	}
	if rec.Started {
		a.ActualStart, a.HasStart = rec.Start, true
	}
	if rec.Ended {
		a.ActualEnd, a.HasEnd = rec.End, true
	}
	bd.acts = append(bd.acts, a)
	bd.budget--
	return a
}

// collapsed replaces a whole subtree with one pending activity whose
// duration is the analytic sequential estimate — the budget fallback.
func (bd *build) collapsed(st *plan.Step, preds []*Activity) []*Activity {
	return bd.lump(st, 1, preds)
}

// lump replaces count repetitions of a subtree with one pending activity of
// count times the analytic sequential estimate. It keeps over-budget graphs
// bounded: the remaining work is modelled pessimistically (sequential) but
// the analysis stays cheap.
func (bd *build) lump(st *plan.Step, count int, preds []*Activity) []*Activity {
	if count <= 0 {
		return preds
	}
	d, err := seqEst(bd.est, st)
	if err != nil {
		bd.fail(err)
		return nil
	}
	a := &Activity{
		ID:    len(bd.acts),
		Label: "~" + st.Kind().String(),
		Dur:   time.Duration(count) * d,
		Preds: preds,
	}
	bd.acts = append(bd.acts, a)
	bd.budget--
	return []*Activity{a}
}

// --- virtual expansion (structure that has not started) ------------------------

// virtual expands the program step into pending activities and returns the
// exit set.
func (bd *build) virtual(st *plan.Step, preds []*Activity) []*Activity {
	if bd.err != nil {
		return nil
	}
	if bd.budget <= 0 {
		return bd.collapsed(st, preds)
	}
	none := statemachine.ActivityRec{}
	switch st.Op() {
	case plan.OpExec:
		return []*Activity{bd.act(st.Exec(), st.Exec().Name(), none, preds)}
	case plan.OpWrap:
		return bd.virtual(st.Child(0), preds)
	case plan.OpStages:
		for _, stage := range st.Children() {
			preds = bd.virtual(stage, preds)
		}
		return preds
	case plan.OpRepeat:
		for i := 0; i < st.N(); i++ {
			if bd.budget <= 0 {
				return bd.lump(st.Child(0), st.N()-i, preds)
			}
			preds = bd.virtual(st.Child(0), preds)
		}
		return preds
	case plan.OpLoop:
		k := bd.card(st.Cond())
		for i := 0; i < k; i++ {
			if bd.budget <= 0 {
				return bd.lump(st, 1, preds) // remaining loop as one lump
			}
			cond := bd.act(st.Cond(), st.Cond().Name(), none, preds)
			preds = bd.virtual(st.Child(0), []*Activity{cond})
		}
		final := bd.act(st.Cond(), st.Cond().Name(), none, preds)
		return []*Activity{final}
	case plan.OpSelect:
		cond := bd.act(st.Cond(), st.Cond().Name(), none, preds)
		// Extension (paper leaves If unsupported): plan for the worst-case
		// branch by analytic sequential estimate.
		t, errT := seqEst(bd.est, st.Child(0))
		f, errF := seqEst(bd.est, st.Child(1))
		branch := st.Child(0)
		if errT != nil || (errF == nil && f > t) {
			branch = st.Child(1)
		}
		return bd.virtual(branch, []*Activity{cond})
	case plan.OpFanOut:
		split := bd.act(st.Split(), st.Split().Name(), none, preds)
		k := bd.card(st.Split())
		exits := make([]*Activity, 0, k)
		for i := 0; i < k; i++ {
			if bd.budget <= 0 {
				exits = append(exits, bd.lump(st.Child(0), k-i, []*Activity{split})...)
				break
			}
			exits = append(exits, bd.virtual(st.Child(0), []*Activity{split})...)
		}
		merge := bd.act(st.Merge(), st.Merge().Name(), none, exits)
		return []*Activity{merge}
	case plan.OpFanFixed:
		split := bd.act(st.Split(), st.Split().Name(), none, preds)
		var exits []*Activity
		for _, sub := range st.Children() {
			exits = append(exits, bd.virtual(sub, []*Activity{split})...)
		}
		merge := bd.act(st.Merge(), st.Merge().Name(), none, exits)
		return []*Activity{merge}
	case plan.OpRecurse:
		depth := bd.card(st.Cond())
		return bd.virtualDaC(st, preds, depth)
	default:
		bd.fail(fmt.Errorf("adg: unknown program operation %v", st.Op()))
		return nil
	}
}

// virtualDaC expands a divide-and-conquer with `remaining` estimated levels
// of recursion left before the leaf.
func (bd *build) virtualDaC(st *plan.Step, preds []*Activity, remaining int) []*Activity {
	if bd.err != nil {
		return nil
	}
	if bd.budget <= 0 {
		return bd.collapsed(st, preds)
	}
	none := statemachine.ActivityRec{}
	cond := bd.act(st.Cond(), st.Cond().Name(), none, preds)
	if remaining <= 0 {
		return bd.virtual(st.Child(0), []*Activity{cond})
	}
	split := bd.act(st.Split(), st.Split().Name(), none, []*Activity{cond})
	k := bd.card(st.Split())
	if k < 1 {
		k = 1
	}
	var exits []*Activity
	for i := 0; i < k; i++ {
		if bd.budget <= 0 {
			exits = append(exits, bd.lump(st, k-i, []*Activity{split})...)
			break
		}
		exits = append(exits, bd.virtualDaC(st, []*Activity{split}, remaining-1)...)
	}
	merge := bd.act(st.Merge(), st.Merge().Name(), none, exits)
	return []*Activity{merge}
}

// --- live expansion (activations that exist) -----------------------------------

// liveInst expands a live activation, mixing actual history with estimated
// futures, and returns the exit set. st is the compiled step the activation
// was executed from (d&c recursion levels share their node's single step).
func (bd *build) liveInst(in *statemachine.Instance, st *plan.Step, preds []*Activity) []*Activity {
	if bd.err != nil {
		return nil
	}
	if bd.budget <= 0 {
		return bd.collapsed(st, preds)
	}
	switch st.Op() {
	case plan.OpExec:
		rec := in.Exec
		if !rec.Started {
			// Fig. 3: the seq activation brackets exactly the fe muscle.
			rec = statemachine.ActivityRec{Start: in.StartTime, Started: in.Started}
		}
		return []*Activity{bd.act(st.Exec(), st.Exec().Name(), rec, preds)}
	case plan.OpWrap:
		return bd.singleBody(in, st, preds)
	case plan.OpStages:
		byBranch := childrenByBranch(in)
		for i, stage := range st.Children() {
			if c, ok := byBranch[i]; ok {
				preds = bd.liveInst(c, stage, preds)
			} else {
				preds = bd.virtual(stage, preds)
			}
		}
		return preds
	case plan.OpRepeat:
		byIter := childrenByIter(in)
		for i := 0; i < st.N(); i++ {
			if c, ok := byIter[i]; ok {
				preds = bd.liveInst(c, st.Child(0), preds)
			} else {
				preds = bd.virtual(st.Child(0), preds)
			}
		}
		return preds
	case plan.OpLoop:
		return bd.liveWhile(in, st, preds)
	case plan.OpSelect:
		return bd.liveIf(in, st, preds)
	case plan.OpFanOut, plan.OpFanFixed:
		return bd.liveSplitMerge(in, st, preds, nil)
	case plan.OpRecurse:
		return bd.liveDaC(in, st, preds)
	default:
		bd.fail(fmt.Errorf("adg: unknown program operation %v", st.Op()))
		return nil
	}
}

// singleBody handles wrappers with exactly one nested evaluation (farm).
func (bd *build) singleBody(in *statemachine.Instance, st *plan.Step, preds []*Activity) []*Activity {
	if len(in.Children) > 0 {
		return bd.liveInst(in.Children[0], st.Child(0), preds)
	}
	return bd.virtual(st.Child(0), preds)
}

func (bd *build) liveWhile(in *statemachine.Instance, st *plan.Step, preds []*Activity) []*Activity {
	fc := st.Cond()
	body := st.Child(0)
	byIter := childrenByIter(in)
	// Recorded condition checks alternate with body iterations. A check
	// still running is assumed true when the |fc| estimate predicts more
	// iterations, false otherwise.
	assumed := 0
	for i, rec := range in.Conds {
		cond := bd.act(fc, fc.Name(), rec, preds)
		preds = []*Activity{cond}
		last := i == len(in.Conds)-1
		if in.CondClosed && last {
			return preds // final false verdict: the while is structurally over
		}
		if !rec.Ended {
			if bd.card(fc) <= in.TrueIters {
				return preds // estimate says the running check will end the loop
			}
			assumed = 1
		}
		if c, ok := byIter[i]; ok {
			preds = bd.liveInst(c, body, preds)
		} else {
			preds = bd.virtual(body, preds)
		}
	}
	// Future iterations: the |fc| estimate minus the true verdicts already
	// seen (and the one assumed above).
	k := bd.card(fc) - in.TrueIters - assumed
	for i := 0; i < k; i++ {
		cond := bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
		preds = bd.virtual(body, []*Activity{cond})
	}
	final := bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
	return []*Activity{final}
}

func (bd *build) liveIf(in *statemachine.Instance, st *plan.Step, preds []*Activity) []*Activity {
	fc := st.Cond()
	var cond *Activity
	if len(in.Conds) > 0 {
		cond = bd.act(fc, fc.Name(), in.Conds[0], preds)
	} else {
		cond = bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
	}
	if len(in.Children) > 0 {
		// The chosen branch is recorded on the child instance.
		b := in.Children[0].Branch
		if b < 0 || b > 1 {
			b = 0
		}
		return bd.liveInst(in.Children[0], st.Child(b), []*Activity{cond})
	}
	// Branch not chosen yet: worst case, as in the virtual expansion.
	t, errT := seqEst(bd.est, st.Child(0))
	f, errF := seqEst(bd.est, st.Child(1))
	branch := st.Child(0)
	if errT != nil || (errF == nil && f > t) {
		branch = st.Child(1)
	}
	return bd.virtual(branch, []*Activity{cond})
}

// liveSplitMerge handles map and fork (and the split arm of d&c when extra
// entry predecessors are supplied).
func (bd *build) liveSplitMerge(in *statemachine.Instance, st *plan.Step, preds []*Activity, entry []*Activity) []*Activity {
	splitPreds := preds
	if entry != nil {
		splitPreds = entry
	}
	split := bd.act(st.Split(), st.Split().Name(), in.Split, splitPreds)
	k := in.ActualCard
	var subFor func(branch int) *plan.Step
	if st.Op() == plan.OpFanFixed {
		subs := st.Children()
		if k < 0 {
			k = len(subs)
		}
		subFor = func(b int) *plan.Step {
			if b < len(subs) {
				return subs[b]
			}
			return subs[len(subs)-1]
		}
	} else {
		if k < 0 {
			k = bd.card(st.Split())
		}
		subFor = func(int) *plan.Step { return st.Child(0) }
	}
	byBranch := childrenByBranch(in)
	var exits []*Activity
	for b := 0; b < k; b++ {
		if bd.budget <= 0 {
			exits = append(exits, bd.lump(subFor(b), k-b, []*Activity{split})...)
			break
		}
		if c, ok := byBranch[b]; ok {
			exits = append(exits, bd.liveInst(c, subFor(b), []*Activity{split})...)
		} else {
			exits = append(exits, bd.virtual(subFor(b), []*Activity{split})...)
		}
	}
	merge := bd.act(st.Merge(), st.Merge().Name(), in.Merge, exits)
	return []*Activity{merge}
}

func (bd *build) liveDaC(in *statemachine.Instance, st *plan.Step, preds []*Activity) []*Activity {
	fc := st.Cond()
	var cond *Activity
	if len(in.Conds) > 0 {
		cond = bd.act(fc, fc.Name(), in.Conds[0], preds)
	} else {
		cond = bd.act(fc, fc.Name(), statemachine.ActivityRec{}, preds)
	}
	entry := []*Activity{cond}
	switch {
	case in.Split.Started || in.ActualCard >= 0:
		// Condition held: recursive arm. Children are dacs one level deeper.
		return bd.liveSplitMergeDaC(in, st, entry)
	case in.CondClosed:
		// Leaf: the nested skeleton solves it.
		if len(in.Children) > 0 {
			return bd.liveInst(in.Children[0], st.Child(0), entry)
		}
		return bd.virtual(st.Child(0), entry)
	default:
		// Condition still running/unknown: expand virtually from the
		// estimated remaining depth.
		est := bd.card(fc)
		remaining := est - in.Depth
		if remaining <= 0 {
			return bd.virtual(st.Child(0), entry)
		}
		split := bd.act(st.Split(), st.Split().Name(), statemachine.ActivityRec{}, entry)
		k := bd.card(st.Split())
		if k < 1 {
			k = 1
		}
		var exits []*Activity
		for i := 0; i < k; i++ {
			exits = append(exits, bd.virtualDaC(st, []*Activity{split}, remaining-1)...)
		}
		merge := bd.act(st.Merge(), st.Merge().Name(), statemachine.ActivityRec{}, exits)
		return []*Activity{merge}
	}
}

func (bd *build) liveSplitMergeDaC(in *statemachine.Instance, st *plan.Step, entry []*Activity) []*Activity {
	split := bd.act(st.Split(), st.Split().Name(), in.Split, entry)
	k := in.ActualCard
	if k < 0 {
		k = bd.card(st.Split())
		if k < 1 {
			k = 1
		}
	}
	byBranch := childrenByBranch(in)
	est := bd.card(st.Cond())
	var exits []*Activity
	for b := 0; b < k; b++ {
		if c, ok := byBranch[b]; ok {
			// Recursive children re-enter the same d&c step one level deeper.
			exits = append(exits, bd.liveInst(c, st, []*Activity{split})...)
		} else {
			remaining := est - (in.Depth + 1)
			exits = append(exits, bd.virtualDaC(st, []*Activity{split}, remaining)...)
		}
	}
	merge := bd.act(st.Merge(), st.Merge().Name(), in.Merge, exits)
	return []*Activity{merge}
}

func childrenByBranch(in *statemachine.Instance) map[int]*statemachine.Instance {
	m := make(map[int]*statemachine.Instance, len(in.Children))
	for i, c := range in.Children {
		b := c.Branch
		if _, dup := m[b]; dup {
			b = i // fall back to arrival order on branch collisions
		}
		m[b] = c
	}
	return m
}

func childrenByIter(in *statemachine.Instance) map[int]*statemachine.Instance {
	m := make(map[int]*statemachine.Instance, len(in.Children))
	for i, c := range in.Children {
		it := c.Iter
		if _, dup := m[it]; dup {
			it = i
		}
		m[it] = c
	}
	return m
}
