package adg

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// RequiredEstimates lists the muscles whose t(m) (first return) and |m|
// (second return) estimates are needed before an ADG of node can be built.
// The controller gates its first analysis on estimate.Registry.Complete of
// these lists — the paper's "wait until all muscles have been executed at
// least once".
func RequiredEstimates(node *skel.Node) (dur []muscle.ID, card []muscle.ID) {
	seenDur := map[muscle.ID]bool{}
	seenCard := map[muscle.ID]bool{}
	node.Walk(func(nd *skel.Node, _ int) bool {
		for _, m := range nd.Muscles() {
			if !seenDur[m.ID()] {
				seenDur[m.ID()] = true
				dur = append(dur, m.ID())
			}
		}
		switch nd.Kind() {
		case skel.Map:
			addCard(nd.Split(), seenCard, &card)
		case skel.While:
			addCard(nd.Cond(), seenCard, &card)
		case skel.DaC:
			addCard(nd.Cond(), seenCard, &card)
			addCard(nd.Split(), seenCard, &card)
		}
		return true
	})
	return dur, card
}

func addCard(m *muscle.Muscle, seen map[muscle.ID]bool, out *[]muscle.ID) {
	if !seen[m.ID()] {
		seen[m.ID()] = true
		*out = append(*out, m.ID())
	}
}

// Render prints the graph as a table resembling the paper's Fig. 1: one row
// per activity with its scheduled interval, state and predecessors. unit
// scales timestamps (e.g. time.Millisecond prints virtual ms). The graph
// must have been scheduled.
func (g *Graph) Render(unit time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ADG @ now=%s (start=0, unit=%v, %d activities)\n",
		fmtT(g.Now, g.Start, unit), unit, len(g.Acts))
	for _, a := range g.Acts {
		preds := make([]string, 0, len(a.Preds))
		for _, p := range a.Preds {
			preds = append(preds, fmt.Sprintf("#%d", p.ID))
		}
		fmt.Fprintf(&b, "  #%-4d %-12s [%7s %7s) %-7s <- %s\n",
			a.ID, a.Label,
			fmtT(a.TI, g.Start, unit), fmtT(a.TF, g.Start, unit),
			a.State(), strings.Join(preds, ","))
	}
	return b.String()
}

// RenderTimeline prints the Fig. 2 style step function "active threads vs
// time" of the last schedule.
func (g *Graph) RenderTimeline(unit time.Duration) string {
	steps := g.Timeline()
	var b strings.Builder
	b.WriteString("t      active\n")
	for _, s := range steps {
		fmt.Fprintf(&b, "%-7s %d %s\n", fmtT(s.T, g.Start, unit), s.Active,
			strings.Repeat("█", min(s.Active, 80)))
	}
	return b.String()
}

func fmtT(t, start time.Time, unit time.Duration) string {
	if t.IsZero() {
		return "-"
	}
	v := float64(t.Sub(start)) / float64(unit)
	return fmt.Sprintf("%.4g", v)
}

// Series converts the timeline into (t, active) pairs in the given unit,
// for CSV export by cmd/figures.
func (g *Graph) Series(unit time.Duration) [][2]float64 {
	steps := g.Timeline()
	out := make([][2]float64, 0, len(steps))
	for _, s := range steps {
		out = append(out, [2]float64{float64(s.T.Sub(g.Start)) / float64(unit), float64(s.Active)})
	}
	return out
}

// Validate checks internal graph invariants (DAG order, pred scheduling
// consistency after a schedule). Intended for tests and debugging.
func (g *Graph) Validate() error {
	pos := make(map[*Activity]int, len(g.Acts))
	for i, a := range g.Acts {
		if a.ID != i {
			return fmt.Errorf("adg: activity %d carries ID %d", i, a.ID)
		}
		pos[a] = i
	}
	for i, a := range g.Acts {
		for _, p := range a.Preds {
			j, ok := pos[p]
			if !ok {
				return fmt.Errorf("adg: activity #%d has foreign predecessor", i)
			}
			if j >= i {
				return fmt.Errorf("adg: activity #%d precedes its predecessor #%d", i, j)
			}
		}
	}
	return nil
}

// CheckSchedule verifies that the last computed schedule respects
// dependencies and, when lp > 0, never uses more than lp slots for
// non-historical work. Done activities are exempt from the lp check (they
// are history). Returns the first violation.
func (g *Graph) CheckSchedule(lp int) error {
	for _, a := range g.Acts {
		if a.TF.Before(a.TI) {
			return fmt.Errorf("adg: #%d ends before it starts", a.ID)
		}
		for _, p := range a.Preds {
			if a.State() == Pending && a.TI.Before(p.TF) {
				return fmt.Errorf("adg: #%d starts at %v before pred #%d ends at %v",
					a.ID, a.TI, p.ID, p.TF)
			}
		}
	}
	if lp <= 0 {
		return nil
	}
	type edge struct {
		t     time.Time
		delta int
	}
	var edges []edge
	for _, a := range g.Acts {
		if a.State() == Done || !a.TF.After(a.TI) {
			continue
		}
		ti := a.TI
		if ti.Before(g.Now) {
			ti = g.Now // running activities only count from the snapshot on
		}
		if !a.TF.After(ti) {
			continue
		}
		edges = append(edges, edge{ti, +1}, edge{a.TF, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if !edges[i].t.Equal(edges[j].t) {
			return edges[i].t.Before(edges[j].t)
		}
		return edges[i].delta < edges[j].delta
	})
	active := 0
	for _, e := range edges {
		active += e.delta
		if active > lp {
			return fmt.Errorf("adg: schedule uses %d > lp=%d slots at %v", active, lp, e.t)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
