package adg

import (
	"strings"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/skel"
)

func renderGraph(t *testing.T) *Graph {
	t.Helper()
	est := estimate.NewRegistry(nil)
	fe, fs, fm, _ := mkMuscles(est, u(15), u(10), u(5), 0, 3)
	nd := skel.NewMap(fs, skel.NewSeq(fe), fm)
	g, err := Builder{Est: est}.BuildVirtual(nd, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	return g
}

func TestRenderContainsActivities(t *testing.T) {
	g := renderGraph(t)
	out := g.Render(time.Millisecond)
	for _, want := range []string{"fs", "fe", "fm", "pending", "5 activities"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// Best-effort schedule: fs [0,10), fe [10,25), fm [25,30).
	if !strings.Contains(out, "[      0      10)") {
		t.Errorf("split interval missing:\n%s", out)
	}
	if !strings.Contains(out, "[     25      30)") {
		t.Errorf("merge interval missing:\n%s", out)
	}
}

func TestRenderTimelineSteps(t *testing.T) {
	g := renderGraph(t)
	out := g.RenderTimeline(time.Millisecond)
	if !strings.Contains(out, "t      active") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Peak of 3 during the fe phase renders three blocks.
	if !strings.Contains(out, "███") {
		t.Fatalf("missing 3-level bar:\n%s", out)
	}
}

func TestSeriesExport(t *testing.T) {
	g := renderGraph(t)
	series := g.Series(time.Millisecond)
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	// First step: one activity (the split) active at t=0.
	if series[0][0] != 0 || series[0][1] != 1 {
		t.Fatalf("first point %v", series[0])
	}
	last := series[len(series)-1]
	if last[1] != 0 {
		t.Fatalf("series does not end idle: %v", last)
	}
	// Monotone time.
	for i := 1; i < len(series); i++ {
		if series[i][0] < series[i-1][0] {
			t.Fatalf("series time regressed at %d", i)
		}
	}
}

func TestStateStrings(t *testing.T) {
	if Done.String() != "done" || Running.String() != "running" || Pending.String() != "pending" {
		t.Fatal("state strings changed")
	}
}

func TestValidateCatchesCorruptGraph(t *testing.T) {
	g := renderGraph(t)
	// Corrupt: make activity 0 depend on the last (forward edge).
	g.Acts[0].Preds = []*Activity{g.Acts[len(g.Acts)-1]}
	if err := g.Validate(); err == nil {
		t.Fatal("forward dependency accepted")
	}
}

func TestCheckScheduleCatchesViolation(t *testing.T) {
	g := renderGraph(t)
	g.ScheduleBestEffort()
	// Corrupt the merge to start before its predecessors end.
	last := g.Acts[len(g.Acts)-1]
	last.TI = clock.Epoch
	if err := g.CheckSchedule(0); err == nil {
		t.Fatal("dependency violation accepted")
	}
}
