package adg

import (
	"fmt"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// SpanEstimate computes the estimated span of a program: the WCT under
// infinite parallelism (the critical path of the virtual ADG), from the
// current t(m)/|m| estimates, in closed form. Together with SeqEstimate
// (the work) it powers the cheap work/span WCT predictor
// (core.WorkSpanPredictor) used to ablate estimation overhead, in the
// spirit of Lobachev et al.'s sequential-work + parallel-penalty model
// that the paper contrasts with its ADG approach.
func SpanEstimate(est *estimate.Registry, node *skel.Node) (time.Duration, error) {
	p, err := plan.Of(node)
	if err != nil {
		return 0, err
	}
	return spanEst(est, p.Root())
}

// SpanEstimateProgram is SpanEstimate over an explicitly compiled program,
// bypassing the node's plan cache — the seam for estimating a raw program
// next to the cached optimized one.
func SpanEstimateProgram(est *estimate.Registry, p *plan.Program) (time.Duration, error) {
	return spanEst(est, p.Root())
}

func spanEst(est *estimate.Registry, st *plan.Step) (time.Duration, error) {
	// Static specialization: evaluate the optimizer's precompiled span
	// program instead of walking the (provably static) subtree.
	if a := st.Analytic(); a != nil {
		d, miss := a.Span(est)
		if miss != nil {
			return 0, &IncompleteError{Muscle: miss.M, Card: miss.Card}
		}
		return d, nil
	}
	switch st.Op() {
	case plan.OpExec:
		return mDur(est, st.Exec())
	case plan.OpWrap:
		return spanEst(est, st.Child(0))
	case plan.OpStages:
		var total time.Duration
		for _, s := range st.Children() {
			d, err := spanEst(est, s)
			if err != nil {
				return 0, err
			}
			total += d
		}
		return total, nil
	case plan.OpRepeat:
		d, err := spanEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		return time.Duration(st.N()) * d, nil
	case plan.OpLoop:
		tc, err := mDur(est, st.Cond())
		if err != nil {
			return 0, err
		}
		k, err := mCard(est, st.Cond())
		if err != nil {
			return 0, err
		}
		body, err := spanEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		return time.Duration(k+1)*tc + time.Duration(k)*body, nil
	case plan.OpSelect:
		tc, err := mDur(est, st.Cond())
		if err != nil {
			return 0, err
		}
		a, err := spanEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		b, err := spanEst(est, st.Child(1))
		if err != nil {
			return 0, err
		}
		if b > a {
			a = b
		}
		return tc + a, nil
	case plan.OpFanOut:
		// All sub-problems run in parallel: span = split + one body + merge.
		ts, err := mDur(est, st.Split())
		if err != nil {
			return 0, err
		}
		body, err := spanEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		tm, err := mDur(est, st.Merge())
		if err != nil {
			return 0, err
		}
		return ts + body + tm, nil
	case plan.OpFanFixed:
		ts, err := mDur(est, st.Split())
		if err != nil {
			return 0, err
		}
		var widest time.Duration
		for _, sub := range st.Children() {
			d, err := spanEst(est, sub)
			if err != nil {
				return 0, err
			}
			if d > widest {
				widest = d
			}
		}
		tm, err := mDur(est, st.Merge())
		if err != nil {
			return 0, err
		}
		return ts + widest + tm, nil
	case plan.OpRecurse:
		depth, err := mCard(est, st.Cond())
		if err != nil {
			return 0, err
		}
		if depth > maxAnalyticDepth {
			depth = maxAnalyticDepth
		}
		return dacSpan(est, st, depth)
	default:
		return 0, fmt.Errorf("adg: unknown program operation %v", st.Op())
	}
}

func dacSpan(est *estimate.Registry, st *plan.Step, remaining int) (time.Duration, error) {
	tc, err := mDur(est, st.Cond())
	if err != nil {
		return 0, err
	}
	if remaining <= 0 {
		leaf, err := spanEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		return tc + leaf, nil
	}
	ts, err := mDur(est, st.Split())
	if err != nil {
		return 0, err
	}
	tm, err := mDur(est, st.Merge())
	if err != nil {
		return 0, err
	}
	sub, err := dacSpan(est, st, remaining-1)
	if err != nil {
		return 0, err
	}
	// Recursive children run in parallel: one child on the critical path.
	return tc + ts + sub + tm, nil
}
