package adg

import (
	"fmt"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/skel"
)

// SpanEstimate computes the estimated span of a program: the WCT under
// infinite parallelism (the critical path of the virtual ADG), from the
// current t(m)/|m| estimates, in closed form. Together with SeqEstimate
// (the work) it powers the cheap work/span WCT predictor
// (core.WorkSpanPredictor) used to ablate estimation overhead, in the
// spirit of Lobachev et al.'s sequential-work + parallel-penalty model
// that the paper contrasts with its ADG approach.
func SpanEstimate(est *estimate.Registry, node *skel.Node) (time.Duration, error) {
	return spanEst(est, node)
}

func spanEst(est *estimate.Registry, node *skel.Node) (time.Duration, error) {
	switch node.Kind() {
	case skel.Seq:
		return mDur(est, node.Exec())
	case skel.Farm:
		return spanEst(est, node.Children()[0])
	case skel.Pipe:
		var total time.Duration
		for _, s := range node.Children() {
			d, err := spanEst(est, s)
			if err != nil {
				return 0, err
			}
			total += d
		}
		return total, nil
	case skel.For:
		d, err := spanEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		return time.Duration(node.N()) * d, nil
	case skel.While:
		tc, err := mDur(est, node.Cond())
		if err != nil {
			return 0, err
		}
		k, err := mCard(est, node.Cond())
		if err != nil {
			return 0, err
		}
		body, err := spanEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		return time.Duration(k+1)*tc + time.Duration(k)*body, nil
	case skel.If:
		tc, err := mDur(est, node.Cond())
		if err != nil {
			return 0, err
		}
		a, err := spanEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		b, err := spanEst(est, node.Children()[1])
		if err != nil {
			return 0, err
		}
		if b > a {
			a = b
		}
		return tc + a, nil
	case skel.Map:
		// All sub-problems run in parallel: span = split + one body + merge.
		ts, err := mDur(est, node.Split())
		if err != nil {
			return 0, err
		}
		body, err := spanEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		tm, err := mDur(est, node.Merge())
		if err != nil {
			return 0, err
		}
		return ts + body + tm, nil
	case skel.Fork:
		ts, err := mDur(est, node.Split())
		if err != nil {
			return 0, err
		}
		var widest time.Duration
		for _, sub := range node.Children() {
			d, err := spanEst(est, sub)
			if err != nil {
				return 0, err
			}
			if d > widest {
				widest = d
			}
		}
		tm, err := mDur(est, node.Merge())
		if err != nil {
			return 0, err
		}
		return ts + widest + tm, nil
	case skel.DaC:
		depth, err := mCard(est, node.Cond())
		if err != nil {
			return 0, err
		}
		if depth > maxAnalyticDepth {
			depth = maxAnalyticDepth
		}
		return dacSpan(est, node, depth)
	default:
		return 0, fmt.Errorf("adg: unknown kind %v", node.Kind())
	}
}

func dacSpan(est *estimate.Registry, node *skel.Node, remaining int) (time.Duration, error) {
	tc, err := mDur(est, node.Cond())
	if err != nil {
		return 0, err
	}
	if remaining <= 0 {
		leaf, err := spanEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		return tc + leaf, nil
	}
	ts, err := mDur(est, node.Split())
	if err != nil {
		return 0, err
	}
	tm, err := mDur(est, node.Merge())
	if err != nil {
		return 0, err
	}
	sub, err := dacSpan(est, node, remaining-1)
	if err != nil {
		return 0, err
	}
	// Recursive children run in parallel: one child on the critical path.
	return tc + ts + sub + tm, nil
}
