package adg

import (
	"fmt"
	"strings"
	"time"
)

// DOT renders the graph in Graphviz dot syntax, one node per activity
// colored by state (done = gray, running = orange, pending = white), with
// the scheduled interval in the label. Feed it to `dot -Tsvg` to obtain a
// diagram in the spirit of the paper's Fig. 1.
func (g *Graph) DOT(unit time.Duration) string {
	var b strings.Builder
	b.WriteString("digraph adg {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=record, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  label=\"ADG @ now=%s (unit %v)\";\n", fmtT(g.Now, g.Start, unit), unit)
	for _, a := range g.Acts {
		fill := "white"
		switch a.State() {
		case Done:
			fill = "gray85"
		case Running:
			fill = "orange"
		}
		fmt.Fprintf(&b, "  a%d [style=filled, fillcolor=%s, label=\"{%s|%s .. %s}\"];\n",
			a.ID, fill, escapeDot(a.Label),
			fmtT(a.TI, g.Start, unit), fmtT(a.TF, g.Start, unit))
	}
	for _, a := range g.Acts {
		for _, p := range a.Preds {
			fmt.Fprintf(&b, "  a%d -> a%d;\n", p.ID, a.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	r := strings.NewReplacer(`"`, `\"`, `{`, `\{`, `}`, `\}`, `|`, `\|`, `<`, `\<`, `>`, `\>`)
	return r.Replace(s)
}
