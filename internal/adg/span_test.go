package adg

import (
	"testing"
	"testing/quick"

	"math/rand"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/skel"
)

func TestSpanEstimateAllKinds(t *testing.T) {
	est := estimate.NewRegistry(nil)
	fe, fs, fm, fc := mkMuscles(est, u(10), u(2), u(3), u(1), 2)
	leaf := skel.NewSeq(fe)
	cases := []struct {
		nd   *skel.Node
		want int // ms
	}{
		{leaf, 10},
		{skel.NewFarm(leaf), 10},
		{skel.NewPipe(leaf, leaf), 20},
		{skel.NewFor(3, leaf), 30},
		{skel.NewWhile(fc, leaf), 23},                        // loops are sequential
		{skel.NewIf(fc, leaf, skel.NewFor(2, leaf)), 21},     // worst branch
		{skel.NewMap(fs, leaf, fm), 15},                      // 2 + 10 + 3, bodies parallel
		{skel.NewFork(fs, []*skel.Node{leaf, leaf}, fm), 15}, // widest branch
		// d&c depth 2: (1+2) + (1+2) + (1+10) + 3 + 3 = 23.
		{skel.NewDaC(fc, fs, leaf, fm), 23},
	}
	for _, tc := range cases {
		got, err := SpanEstimate(est, tc.nd)
		if err != nil {
			t.Errorf("%s: %v", tc.nd, err)
			continue
		}
		if got != u(tc.want) {
			t.Errorf("%s: span = %v, want %dms", tc.nd, got, tc.want)
		}
	}
}

// Property: span <= work, and span equals the best-effort WCT of the
// virtual ADG (the critical path).
func TestSpanMatchesBestEffortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		est := estimate.NewRegistry(nil)
		nd := randomProgram(rng, est, 2)
		span, err := SpanEstimate(est, nd)
		if err != nil {
			return false
		}
		work, err := SeqEstimate(est, nd)
		if err != nil {
			return false
		}
		if span > work {
			t.Logf("seed %d (%s): span %v > work %v", seed, nd, span, work)
			return false
		}
		g, err := Builder{Est: est, Budget: 3000}.BuildVirtual(nd, clock.Epoch)
		if err != nil {
			return false
		}
		g.ScheduleBestEffort()
		if g.WCT() != span {
			t.Logf("seed %d (%s): best effort %v != span %v", seed, nd, g.WCT(), span)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
