package adg

import (
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// fig1World reconstructs the paper's Fig. 1 situation: the program
// map(fs, map(fs, seq(fe), fm), fm) with t(fs)=10, t(fe)=15, t(fm)=5 and
// |fs|=3, executed with LP 2, observed at WCT 70. Times are virtual
// milliseconds ("1 paper time unit = 1 ms").
type fig1World struct {
	fs, fe, fm *muscle.Muscle
	outer      *skel.Node
	inner      *skel.Node
	est        *estimate.Registry
	tr         *statemachine.Tracker
	start      time.Time
}

func u(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

func newFig1World(t *testing.T) *fig1World {
	t.Helper()
	w := &fig1World{
		fs: muscle.NewSplit("fs", func(any) ([]any, error) { return nil, nil }),
		fe: muscle.NewExecute("fe", func(p any) (any, error) { return p, nil }),
		fm: muscle.NewMerge("fm", func([]any) (any, error) { return nil, nil }),
	}
	w.inner = skel.NewMap(w.fs, skel.NewSeq(w.fe), w.fm)
	w.outer = skel.NewMap(w.fs, w.inner, w.fm)
	w.est = estimate.NewRegistry(nil)
	w.est.InitDuration(w.fs.ID(), u(10))
	w.est.InitDuration(w.fe.ID(), u(15))
	w.est.InitDuration(w.fm.ID(), u(5))
	w.est.InitCard(w.fs.ID(), 3)
	w.tr = statemachine.NewTracker(w.est)
	w.start = clock.Epoch
	return w
}

// ev feeds one event into the tracker.
func (w *fig1World) ev(nd *skel.Node, idx, parent int64, when event.When, where event.Where, ms int, worker int, mod func(*event.Event)) {
	e := &event.Event{
		Node:   nd,
		Trace:  []*skel.Node{nd},
		Index:  idx,
		Parent: parent,
		When:   when,
		Where:  where,
		Time:   w.start.Add(u(ms)),
		Worker: worker,
	}
	if mod != nil {
		mod(e)
	}
	w.tr.Listener().Handler(e)
}

// replayUntil70 feeds the exact history of the paper's example: LP 2, both
// first-level branches done by 70 except B's merge, third split running
// since 65.
func (w *fig1World) replayUntil70() {
	card3 := func(e *event.Event) { e.Card = 3 }
	// Outer map: split [0,10], card 3.
	w.ev(w.outer, 0, event.NoParent, event.Before, event.Skeleton, 0, 0, nil)
	w.ev(w.outer, 0, event.NoParent, event.Before, event.Split, 0, 0, nil)
	w.ev(w.outer, 0, event.NoParent, event.After, event.Split, 10, 0, card3)
	// Inner maps A (worker 0) and B (worker 1): splits [10,20].
	w.ev(w.inner, 1, 0, event.Before, event.Skeleton, 10, 0, nil)
	w.ev(w.inner, 1, 0, event.Before, event.Split, 10, 0, nil)
	w.ev(w.inner, 1, 0, event.After, event.Split, 20, 0, card3)
	w.ev(w.inner, 2, 0, event.Before, event.Skeleton, 10, 1, nil)
	w.ev(w.inner, 2, 0, event.Before, event.Split, 10, 1, nil)
	w.ev(w.inner, 2, 0, event.After, event.Split, 20, 1, card3)
	// Six fe muscles, two at a time: [20,35], [35,50], [50,65].
	seq := w.inner.Children()[0]
	idx := int64(3)
	for round := 0; round < 3; round++ {
		for b, parent := range []int64{1, 2} {
			start := 20 + 15*round
			w.ev(seq, idx, parent, event.Before, event.Skeleton, start, b, nil)
			w.ev(seq, idx, parent, event.After, event.Skeleton, start+15, b, nil)
			idx++
		}
	}
	// A's merge [65,70] on worker 0; A closes at 70.
	w.ev(w.inner, 1, 0, event.Before, event.Merge, 65, 0, nil)
	w.ev(w.inner, 1, 0, event.After, event.Merge, 70, 0, nil)
	w.ev(w.inner, 1, 0, event.After, event.Skeleton, 70, 0, nil)
	// Third inner map C: split started at 65 on worker 1, still running.
	w.ev(w.inner, 9, 0, event.Before, event.Skeleton, 65, 1, nil)
	w.ev(w.inner, 9, 0, event.Before, event.Split, 65, 1, nil)
}

func (w *fig1World) graphAt70(t *testing.T) *Graph {
	t.Helper()
	b := Builder{Est: w.est}
	g, err := b.BuildLive(w.tr.Root(), w.start, w.start.Add(u(70)))
	if err != nil {
		t.Fatalf("BuildLive: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return g
}

// TestFig1BestEffort reproduces the paper's best-effort analysis: the
// estimated best WCT at snapshot time 70 is 100.
func TestFig1BestEffort(t *testing.T) {
	w := newFig1World(t)
	w.replayUntil70()
	g := w.graphAt70(t)
	g.ScheduleBestEffort()
	if err := g.CheckSchedule(0); err != nil {
		t.Fatal(err)
	}
	if wct := g.WCT(); wct != u(100) {
		t.Fatalf("best-effort WCT = %v, want 100ms\n%s", wct, g.Render(time.Millisecond))
	}
}

// TestFig1OptimalLP reproduces Fig. 2: the best-effort timeline peaks at 3
// active threads (during [75,90)), so the optimal LP is 3.
func TestFig1OptimalLP(t *testing.T) {
	w := newFig1World(t)
	w.replayUntil70()
	g := w.graphAt70(t)
	if lp := g.OptimalLP(); lp != 3 {
		t.Fatalf("optimal LP = %d, want 3\n%s\n%s", lp,
			g.Render(time.Millisecond), g.RenderTimeline(time.Millisecond))
	}
	// And the peak interval is [75,90): at 74 the level is 2, at 75..89 it
	// is 3, at 90 it drops.
	steps := g.Timeline()
	levelAt := func(ms int) int {
		at := w.start.Add(u(ms))
		lvl := 0
		for _, s := range steps {
			if s.T.After(at) {
				break
			}
			lvl = s.Active
		}
		return lvl
	}
	for ms, want := range map[int]int{72: 2, 75: 3, 89: 3, 90: 1, 96: 1} {
		if got := levelAt(ms); got != want {
			t.Errorf("active threads at %dms = %d, want %d", ms, got, want)
		}
	}
}

// TestFig1LimitedLP reproduces the limited-LP(2) strategy: total WCT 115.
func TestFig1LimitedLP(t *testing.T) {
	w := newFig1World(t)
	w.replayUntil70()
	g := w.graphAt70(t)
	g.ScheduleLimited(2)
	if err := g.CheckSchedule(2); err != nil {
		t.Fatal(err)
	}
	if wct := g.WCT(); wct != u(115) {
		t.Fatalf("limited-LP(2) WCT = %v, want 115ms\n%s", wct, g.Render(time.Millisecond))
	}
}

// TestFig1GoalDrivenIncrease reproduces the paper's closing remark on the
// example: "if we set the WCT QoS goal to 100, Skandium will autonomically
// increase LP to 3 in order to achieve the goal".
func TestFig1GoalDrivenIncrease(t *testing.T) {
	w := newFig1World(t)
	w.replayUntil70()
	g := w.graphAt70(t)
	deadline := w.start.Add(u(100))
	lp, ok := g.MinLPForGoal(deadline, 16)
	if !ok {
		t.Fatal("goal 100 should be achievable")
	}
	if lp != 3 {
		t.Fatalf("min LP for goal 100 = %d, want 3", lp)
	}
	// With LP 2 the goal is missed (115 > 100).
	g.ScheduleLimited(2)
	if !g.EndTime().After(deadline) {
		t.Fatal("LP 2 should miss the 100ms goal")
	}
}

// TestFig1SequentialEstimate checks the closed-form sequential work:
// 10 + 3*(10 + 3*15 + 5) + 5 = 195.
func TestFig1SequentialEstimate(t *testing.T) {
	w := newFig1World(t)
	d, err := SeqEstimate(w.est, w.outer)
	if err != nil {
		t.Fatal(err)
	}
	if d != u(195) {
		t.Fatalf("sequential estimate = %v, want 195ms", d)
	}
}

// TestFig1VirtualBuild plans the whole program before execution: the
// virtual best-effort WCT is 10 (outer split) + 10 (inner splits, parallel)
// + 15 (all fe parallel) + 5 (inner merges) + 5 (outer merge) = 45.
func TestFig1VirtualBuild(t *testing.T) {
	w := newFig1World(t)
	b := Builder{Est: w.est}
	g, err := b.BuildVirtual(w.outer, w.start)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.ScheduleBestEffort()
	if wct := g.WCT(); wct != u(45) {
		t.Fatalf("virtual best-effort WCT = %v, want 45ms\n%s", wct, g.Render(time.Millisecond))
	}
	// 17 activities: 1 split + 3*(split + 3 fe + merge) + 1 merge.
	if g.Len() != 17 {
		t.Fatalf("got %d activities, want 17", g.Len())
	}
	// Limited to 1 thread the schedule must equal the sequential estimate.
	g.ScheduleLimited(1)
	if wct := g.WCT(); wct != u(195) {
		t.Fatalf("limited(1) WCT = %v, want 195ms (sequential)", wct)
	}
	if err := g.CheckSchedule(1); err != nil {
		t.Fatal(err)
	}
}

// TestFig1IncompleteEstimates: without |fs| the ADG cannot be built and the
// error names the muscle.
func TestFig1IncompleteEstimates(t *testing.T) {
	w := newFig1World(t)
	est := estimate.NewRegistry(nil)
	est.InitDuration(w.fs.ID(), u(10))
	est.InitDuration(w.fe.ID(), u(15))
	est.InitDuration(w.fm.ID(), u(5))
	// no card for fs
	b := Builder{Est: est}
	_, err := b.BuildVirtual(w.outer, w.start)
	ie, ok := err.(*IncompleteError)
	if !ok {
		t.Fatalf("want IncompleteError, got %v", err)
	}
	if !ie.Card || ie.Muscle != w.fs {
		t.Fatalf("wrong incomplete report: %v", err)
	}
}

// TestRequiredEstimates lists exactly fs/fe/fm durations and fs cardinality
// for the Fig. 1 program.
func TestRequiredEstimates(t *testing.T) {
	w := newFig1World(t)
	dur, card := RequiredEstimates(w.outer)
	if len(dur) != 3 {
		t.Fatalf("dur IDs = %v, want 3 distinct", dur)
	}
	if len(card) != 1 || card[0] != w.fs.ID() {
		t.Fatalf("card IDs = %v, want [fs]", card)
	}
}
