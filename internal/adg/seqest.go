package adg

import (
	"fmt"
	"math"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// maxAnalyticDepth bounds d&c recursion in the analytic estimator; deeper
// estimates are clamped (the result would overflow anyway).
const maxAnalyticDepth = 64

// SeqEstimate computes the estimated sequential work of a program: the WCT
// of executing node with one thread, under the current t(m)/|m| estimates.
// It is the closed-form counterpart of a limited-LP(1) schedule of the
// virtual ADG and is also used to collapse over-budget subtrees and to rank
// if-branches. It fails with IncompleteError when an estimate is missing.
func SeqEstimate(est *estimate.Registry, node *skel.Node) (time.Duration, error) {
	return seqEst(est, node)
}

func seqEst(est *estimate.Registry, node *skel.Node) (time.Duration, error) {
	switch node.Kind() {
	case skel.Seq:
		return mDur(est, node.Exec())
	case skel.Farm:
		return seqEst(est, node.Children()[0])
	case skel.Pipe:
		var total time.Duration
		for _, s := range node.Children() {
			d, err := seqEst(est, s)
			if err != nil {
				return 0, err
			}
			total += d
		}
		return total, nil
	case skel.For:
		d, err := seqEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		return time.Duration(node.N()) * d, nil
	case skel.While:
		tc, err := mDur(est, node.Cond())
		if err != nil {
			return 0, err
		}
		k, err := mCard(est, node.Cond())
		if err != nil {
			return 0, err
		}
		body, err := seqEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		return time.Duration(k+1)*tc + time.Duration(k)*body, nil
	case skel.If:
		tc, err := mDur(est, node.Cond())
		if err != nil {
			return 0, err
		}
		t, err := seqEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		f, err := seqEst(est, node.Children()[1])
		if err != nil {
			return 0, err
		}
		if f > t {
			t = f
		}
		return tc + t, nil
	case skel.Map:
		ts, err := mDur(est, node.Split())
		if err != nil {
			return 0, err
		}
		k, err := mCard(est, node.Split())
		if err != nil {
			return 0, err
		}
		body, err := seqEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		tm, err := mDur(est, node.Merge())
		if err != nil {
			return 0, err
		}
		return ts + time.Duration(k)*body + tm, nil
	case skel.Fork:
		ts, err := mDur(est, node.Split())
		if err != nil {
			return 0, err
		}
		var bodies time.Duration
		for _, sub := range node.Children() {
			d, err := seqEst(est, sub)
			if err != nil {
				return 0, err
			}
			bodies += d
		}
		tm, err := mDur(est, node.Merge())
		if err != nil {
			return 0, err
		}
		return ts + bodies + tm, nil
	case skel.DaC:
		depth, err := mCard(est, node.Cond())
		if err != nil {
			return 0, err
		}
		if depth > maxAnalyticDepth {
			depth = maxAnalyticDepth
		}
		return dacEst(est, node, depth)
	default:
		return 0, fmt.Errorf("adg: unknown kind %v", node.Kind())
	}
}

func dacEst(est *estimate.Registry, node *skel.Node, remaining int) (time.Duration, error) {
	tc, err := mDur(est, node.Cond())
	if err != nil {
		return 0, err
	}
	if remaining <= 0 {
		leaf, err := seqEst(est, node.Children()[0])
		if err != nil {
			return 0, err
		}
		return tc + leaf, nil
	}
	ts, err := mDur(est, node.Split())
	if err != nil {
		return 0, err
	}
	k, err := mCard(est, node.Split())
	if err != nil {
		return 0, err
	}
	if k < 1 {
		k = 1
	}
	tm, err := mDur(est, node.Merge())
	if err != nil {
		return 0, err
	}
	sub, err := dacEst(est, node, remaining-1)
	if err != nil {
		return 0, err
	}
	return tc + ts + time.Duration(k)*sub + tm, nil
}

// mDur reads t(m), failing with IncompleteError when unknown.
func mDur(est *estimate.Registry, m *muscle.Muscle) (time.Duration, error) {
	d, ok := est.Duration(m.ID())
	if !ok {
		return 0, &IncompleteError{Muscle: m}
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// mCard reads |m| rounded to an int >= 0, failing when unknown.
func mCard(est *estimate.Registry, m *muscle.Muscle) (int, error) {
	c, ok := est.Card(m.ID())
	if !ok {
		return 0, &IncompleteError{Muscle: m, Card: true}
	}
	k := int(math.Round(c))
	if k < 0 {
		k = 0
	}
	return k, nil
}
