package adg

import (
	"fmt"
	"math"
	"time"

	"skandium/internal/estimate"
	"skandium/internal/muscle"
	"skandium/internal/plan"
	"skandium/internal/skel"
)

// maxAnalyticDepth bounds d&c recursion in the analytic estimator; deeper
// estimates are clamped (the result would overflow anyway).
const maxAnalyticDepth = 64

// SeqEstimate computes the estimated sequential work of a program: the WCT
// of executing node with one thread, under the current t(m)/|m| estimates.
// It is the closed-form counterpart of a limited-LP(1) schedule of the
// virtual ADG and is also used to collapse over-budget subtrees and to rank
// if-branches. It fails with IncompleteError when an estimate is missing.
func SeqEstimate(est *estimate.Registry, node *skel.Node) (time.Duration, error) {
	p, err := plan.Of(node)
	if err != nil {
		return 0, err
	}
	return seqEst(est, p.Root())
}

// SeqEstimateProgram is SeqEstimate over an explicitly compiled program,
// bypassing the node's plan cache — the seam for estimating a raw program
// next to the cached optimized one.
func SeqEstimateProgram(est *estimate.Registry, p *plan.Program) (time.Duration, error) {
	return seqEst(est, p.Root())
}

func seqEst(est *estimate.Registry, st *plan.Step) (time.Duration, error) {
	// Static specialization: the optimizer precompiles the exact formulas
	// below into a flat postfix program for static subtrees; evaluating it
	// replays the identical arithmetic without walking the subtree.
	if a := st.Analytic(); a != nil {
		d, miss := a.Work(est)
		if miss != nil {
			return 0, &IncompleteError{Muscle: miss.M, Card: miss.Card}
		}
		return d, nil
	}
	switch st.Op() {
	case plan.OpExec:
		return mDur(est, st.Exec())
	case plan.OpWrap:
		return seqEst(est, st.Child(0))
	case plan.OpStages:
		var total time.Duration
		for _, s := range st.Children() {
			d, err := seqEst(est, s)
			if err != nil {
				return 0, err
			}
			total += d
		}
		return total, nil
	case plan.OpRepeat:
		d, err := seqEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		return time.Duration(st.N()) * d, nil
	case plan.OpLoop:
		tc, err := mDur(est, st.Cond())
		if err != nil {
			return 0, err
		}
		k, err := mCard(est, st.Cond())
		if err != nil {
			return 0, err
		}
		body, err := seqEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		return time.Duration(k+1)*tc + time.Duration(k)*body, nil
	case plan.OpSelect:
		tc, err := mDur(est, st.Cond())
		if err != nil {
			return 0, err
		}
		t, err := seqEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		f, err := seqEst(est, st.Child(1))
		if err != nil {
			return 0, err
		}
		if f > t {
			t = f
		}
		return tc + t, nil
	case plan.OpFanOut:
		ts, err := mDur(est, st.Split())
		if err != nil {
			return 0, err
		}
		k, err := mCard(est, st.Split())
		if err != nil {
			return 0, err
		}
		body, err := seqEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		tm, err := mDur(est, st.Merge())
		if err != nil {
			return 0, err
		}
		return ts + time.Duration(k)*body + tm, nil
	case plan.OpFanFixed:
		ts, err := mDur(est, st.Split())
		if err != nil {
			return 0, err
		}
		var bodies time.Duration
		for _, sub := range st.Children() {
			d, err := seqEst(est, sub)
			if err != nil {
				return 0, err
			}
			bodies += d
		}
		tm, err := mDur(est, st.Merge())
		if err != nil {
			return 0, err
		}
		return ts + bodies + tm, nil
	case plan.OpRecurse:
		depth, err := mCard(est, st.Cond())
		if err != nil {
			return 0, err
		}
		if depth > maxAnalyticDepth {
			depth = maxAnalyticDepth
		}
		return dacEst(est, st, depth)
	default:
		return 0, fmt.Errorf("adg: unknown program operation %v", st.Op())
	}
}

func dacEst(est *estimate.Registry, st *plan.Step, remaining int) (time.Duration, error) {
	tc, err := mDur(est, st.Cond())
	if err != nil {
		return 0, err
	}
	if remaining <= 0 {
		leaf, err := seqEst(est, st.Child(0))
		if err != nil {
			return 0, err
		}
		return tc + leaf, nil
	}
	ts, err := mDur(est, st.Split())
	if err != nil {
		return 0, err
	}
	k, err := mCard(est, st.Split())
	if err != nil {
		return 0, err
	}
	if k < 1 {
		k = 1
	}
	tm, err := mDur(est, st.Merge())
	if err != nil {
		return 0, err
	}
	sub, err := dacEst(est, st, remaining-1)
	if err != nil {
		return 0, err
	}
	return tc + ts + time.Duration(k)*sub + tm, nil
}

// mDur reads t(m), failing with IncompleteError when unknown.
func mDur(est *estimate.Registry, m *muscle.Muscle) (time.Duration, error) {
	d, ok := est.Duration(m.ID())
	if !ok {
		return 0, &IncompleteError{Muscle: m}
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// mCard reads |m| rounded to an int >= 0, failing when unknown.
func mCard(est *estimate.Registry, m *muscle.Muscle) (int, error) {
	c, ok := est.Card(m.ID())
	if !ok {
		return 0, &IncompleteError{Muscle: m, Card: true}
	}
	k := int(math.Round(c))
	if k < 0 {
		k = 0
	}
	return k, nil
}
