// Package event implements the event-driven separation of concerns the
// paper builds on (Pabón & Leyton, "Tackling algorithmic skeleton's
// inversion of control", PDP 2012). Events are statically defined hooks
// woven into the skeleton interpreter: every muscle invocation and every
// skeleton activation is bracketed by Before/After events that carry the
// partial solution, the skeleton trace, and an activation index i used to
// correlate Before with After.
//
// Listeners run synchronously on the worker goroutine that executes the
// adjacent muscle, exactly as the paper guarantees ("the handler is executed
// on the same thread as the related muscle"). A listener may replace the
// partial solution by returning a different value, which enables
// non-functional concerns such as encryption or compression of intermediate
// data without touching business code.
package event

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"skandium/internal/skel"
)

// When says whether the event fires before or after its subject.
type When int

// When values.
const (
	Before When = iota
	After
)

// String implements fmt.Stringer.
func (w When) String() string {
	switch w {
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return fmt.Sprintf("When(%d)", int(w))
	}
}

// Where says which part of a skeleton's evaluation the event brackets.
type Where int

// Where values. Skeleton brackets the whole pattern activation ("beginning
// of the skeleton" / "end of the map" in the paper); the others bracket the
// correspondingly named muscle; NestedSkel brackets one nested-skeleton
// evaluation inside map/fork/d&c/pipe/while/for/farm. Retry and Fault are
// the fault-tolerance extension: Retry fires once per failed-but-retried
// muscle attempt (Err holds the attempt's error, Iter the attempt number),
// Fault fires when a muscle invocation fails terminally — after exhausting
// its retry budget — just before the error unwinds.
const (
	Skeleton Where = iota
	Split
	Merge
	Condition
	NestedSkel
	Retry
	Fault
)

// String implements fmt.Stringer.
func (w Where) String() string {
	switch w {
	case Skeleton:
		return "skeleton"
	case Split:
		return "split"
	case Merge:
		return "merge"
	case Condition:
		return "condition"
	case NestedSkel:
		return "nested"
	case Retry:
		return "retry"
	case Fault:
		return "fault"
	default:
		return fmt.Sprintf("Where(%d)", int(w))
	}
}

// NoParent is the Parent value of events raised by a root-level activation.
const NoParent int64 = -1

// Event is the information delivered to listeners. In the paper's notation
// an event is ∆@when-where(i, extra...); for example map(fs,∆,fm)@as(i,
// fsCard) becomes {Node: the map node, When: After, Where: Split, Index: i,
// Card: fsCard}.
type Event struct {
	// Node is the skeleton whose evaluation raised the event.
	Node *skel.Node
	// Trace is the static nesting path from the root skeleton to Node,
	// inclusive. Listeners must not modify it.
	Trace []*skel.Node
	// Index identifies the activation: the Before and After events of one
	// muscle or skeleton activation share the same Index.
	Index int64
	// Parent is the activation index of the enclosing skeleton activation,
	// or NoParent for the root. It lets listeners rebuild the dynamic
	// activation tree (the state machines rely on it).
	Parent int64
	// When and Where locate the event around the activation.
	When  When
	Where Where
	// Param is the partial solution flowing through the skeleton. For
	// After/Merge-style events it is the produced value; for Before events
	// it is the input. Listeners may substitute it via their return value.
	Param any
	// Card is the number of sub-problems produced by a split; it is only
	// meaningful on After/Split events (the paper's fsCard).
	Card int
	// Branch is the child position for NestedSkel events of map/fork (which
	// sub-problem), and the stage number for pipe.
	Branch int
	// Iter is the iteration counter for while/for NestedSkel and Condition
	// events, and the recursion depth for d&c events.
	Iter int
	// Cond is the outcome of the condition muscle; only meaningful on
	// After/Condition events.
	Cond bool
	// Time is the clock reading when the event fired.
	Time time.Time
	// Worker is the id of the pool worker that raised the event (-1 when
	// raised outside a worker, e.g. by the simulator).
	Worker int
	// Err is the muscle error on After events of failed muscles. When Err
	// is non-nil the execution is unwinding; Param holds the input that
	// caused the failure.
	Err error
}

// CurrentSkel returns the innermost skeleton of the trace (the node that
// raised the event). It mirrors st[st.length-1] from the paper's listing 2.
func (e *Event) CurrentSkel() *skel.Node { return e.Node }

// String renders the event in the paper's ∆@notation for logs and tests.
func (e *Event) String() string {
	code := map[Where]string{
		Skeleton: "", Split: "s", Merge: "m", Condition: "c", NestedSkel: "n",
		Retry: "r", Fault: "f",
	}[e.Where]
	wh := "b"
	if e.When == After {
		wh = "a"
	}
	return fmt.Sprintf("%s@%s%s(%d)", e.Node.Kind(), wh, code, e.Index)
}

// Listener receives events. Handler returns the (possibly replaced) partial
// solution; returning e.Param unchanged is the common case. Handlers run on
// the worker goroutine: they must be fast and must not block on the skeleton
// execution they observe (deadlock).
type Listener interface {
	Handler(e *Event) any
}

// Func adapts a plain function to the Listener interface.
type Func func(e *Event) any

// Handler implements Listener.
func (f Func) Handler(e *Event) any { return f(e) }

// Filter restricts which events reach a listener. Zero-value fields do not
// filter; combine fields to narrow. A Filter with all fields zero matches
// every event (the paper's "generic listener").
type Filter struct {
	// Node, when non-nil, matches only events raised by that exact node.
	Node *skel.Node
	// Kind, when set (HasKind true), matches only events whose node has
	// that pattern kind.
	Kind    skel.Kind
	HasKind bool
	// When, when set (HasWhen true), matches only Before or only After.
	When    When
	HasWhen bool
	// Where, when set (HasWhere true), matches only that position.
	Where    Where
	HasWhere bool
}

// Matches reports whether the filter admits e.
func (f Filter) Matches(e *Event) bool {
	if f.Node != nil && f.Node != e.Node {
		return false
	}
	if f.HasKind && e.Node.Kind() != f.Kind {
		return false
	}
	if f.HasWhen && e.When != f.When {
		return false
	}
	if f.HasWhere && e.Where != f.Where {
		return false
	}
	return true
}

type entry struct {
	id     uint64
	filter Filter
	l      Listener
}

// Slot-index dimensions: every event carries a (When, Where, node Kind)
// triple drawn from these small enums, so the snapshot can pre-sort the
// listener list into one bucket per triple and Emit only walks listeners
// that can possibly match.
const (
	numWhen  = int(After) + 1
	numWhere = int(Fault) + 1
	numKind  = int(skel.DaC) + 1
)

// maskBits is how many entries the slot index covers; listeners past it
// (rare — registries hold a handful) stay correct via an unindexed scan.
const maskBits = 64

// snapshot is the immutable listener view Emit reads through an atomic
// pointer. For each (When, Where, Kind) triple, slots holds a bitmask over
// entries: bit i set means entries[i]'s filter admits that triple, with only
// the Node field left to check at emission time. Bit position equals
// registration position, so walking set bits dispatches in registration
// order. Bitmasks (rather than per-slot entry slices) keep rebuilds to two
// allocations, which matters because streams add and remove a per-input
// listener around every injected parameter.
type snapshot struct {
	entries []entry
	slots   [numWhen][numWhere][numKind]uint64
}

func buildSnapshot(entries []entry) *snapshot {
	s := &snapshot{entries: append([]entry(nil), entries...)}
	for i, en := range s.entries {
		if i >= maskBits {
			break
		}
		f := en.filter
		for wh := 0; wh < numWhen; wh++ {
			if f.HasWhen && int(f.When) != wh {
				continue
			}
			for wr := 0; wr < numWhere; wr++ {
				if f.HasWhere && int(f.Where) != wr {
					continue
				}
				for k := 0; k < numKind; k++ {
					if f.HasKind && int(f.Kind) != k {
						continue
					}
					// A Node filter implies the node's own kind: the entry
					// can never fire for any other kind's bucket.
					if f.Node != nil && int(f.Node.Kind()) != k {
						continue
					}
					s.slots[wh][wr][k] |= 1 << i
				}
			}
		}
	}
	return s
}

// Registry is an ordered set of listeners with filters. Emission walks the
// listeners in registration order, threading the partial solution through
// each matching handler. A Registry is safe for concurrent use; emission is
// lock-free (it reads an immutable snapshot through an atomic pointer), so
// listeners can (un)register from within handlers without deadlock and
// workers never contend on a registry lock.
type Registry struct {
	mu      sync.Mutex
	nextID  uint64
	entries []entry
	snap    atomic.Pointer[snapshot]
}

// NewRegistry returns an empty listener registry.
func NewRegistry() *Registry { return &Registry{} }

// Subscription identifies a registered listener for removal.
type Subscription uint64

// Add registers l for every event (generic listener) and returns its
// subscription token.
func (r *Registry) Add(l Listener) Subscription { return r.AddFiltered(l, Filter{}) }

// AddFiltered registers l for events admitted by filter.
func (r *Registry) AddFiltered(l Listener, filter Filter) Subscription {
	if l == nil {
		panic("event: nil listener")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := r.nextID
	r.entries = append(r.entries, entry{id: id, filter: filter, l: l})
	r.snap.Store(buildSnapshot(r.entries))
	return Subscription(id)
}

// Remove unregisters a previously added listener. Removing an unknown
// subscription is a no-op.
func (r *Registry) Remove(s Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, en := range r.entries {
		if en.id == uint64(s) {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			r.snap.Store(buildSnapshot(r.entries))
			return
		}
	}
}

// Len returns the number of registered listeners.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Wants reports whether any registered listener could match an event with
// the given (node kind, when, where) coordinates. Emitters use it as a fast
// path: when it returns false they skip Event construction entirely. A true
// result is conservative — a Node-filtered listener makes Wants true for its
// node's kind even though events from sibling nodes of that kind will still
// be dropped at emission time.
func (r *Registry) Wants(kind skel.Kind, when When, where Where) bool {
	snap := r.snap.Load()
	if snap == nil {
		return false
	}
	if int(when) >= numWhen || int(where) >= numWhere || int(kind) >= numKind ||
		when < 0 || where < 0 || kind < 0 {
		return len(snap.entries) > 0
	}
	return snap.slots[when][where][kind] != 0 || len(snap.entries) > maskBits
}

// Emit delivers e to every matching listener in registration order and
// returns the final partial solution (e.Param threaded through handlers).
// Emit is lock-free and never blocks on listener registration.
//
// The *Event is only guaranteed valid for the duration of each handler call:
// emitters may recycle it (see Acquire/Release). Listeners that need to keep
// event data must copy the fields they care about, never the pointer.
func (r *Registry) Emit(e *Event) any {
	snap := r.snap.Load()
	if snap == nil {
		return e.Param
	}
	if e.Node != nil {
		wh, wr, k := int(e.When), int(e.Where), int(e.Node.Kind())
		if wh >= 0 && wh < numWhen && wr >= 0 && wr < numWhere && k >= 0 && k < numKind {
			for m := snap.slots[wh][wr][k]; m != 0; m &= m - 1 {
				en := &snap.entries[bits.TrailingZeros64(m)]
				if en.filter.Node == nil || en.filter.Node == e.Node {
					e.Param = en.l.Handler(e)
				}
			}
			// Entries past the mask width are unindexed; they come after
			// every indexed entry, so scanning them last keeps registration
			// order.
			for i := maskBits; i < len(snap.entries); i++ {
				if en := &snap.entries[i]; en.filter.Matches(e) {
					e.Param = en.l.Handler(e)
				}
			}
			return e.Param
		}
	}
	// Fallback for events outside the indexable space (nil node or
	// out-of-range coordinates): full scan with the complete filter.
	for _, en := range snap.entries {
		if en.filter.Matches(e) {
			e.Param = en.l.Handler(e)
		}
	}
	return e.Param
}

// eventPool recycles Event structs between emissions: the hot path fires
// several events per muscle invocation and pooling keeps them off the heap.
var eventPool = sync.Pool{New: func() any { return new(Event) }}

// Acquire returns a zeroed Event from the pool. Emitters fill it, pass it to
// Emit, and hand it back with Release once Emit returns. Because of this
// recycling, listeners must treat the *Event as valid only during their
// handler call (copy fields, never retain the pointer).
func Acquire() *Event { return eventPool.Get().(*Event) }

// Release zeroes e and returns it to the pool. Callers must not touch e
// afterwards. Only call Release on events obtained from Acquire whose Emit
// call has returned.
func Release(e *Event) {
	*e = Event{}
	eventPool.Put(e)
}
