// Package event implements the event-driven separation of concerns the
// paper builds on (Pabón & Leyton, "Tackling algorithmic skeleton's
// inversion of control", PDP 2012). Events are statically defined hooks
// woven into the skeleton interpreter: every muscle invocation and every
// skeleton activation is bracketed by Before/After events that carry the
// partial solution, the skeleton trace, and an activation index i used to
// correlate Before with After.
//
// Listeners run synchronously on the worker goroutine that executes the
// adjacent muscle, exactly as the paper guarantees ("the handler is executed
// on the same thread as the related muscle"). A listener may replace the
// partial solution by returning a different value, which enables
// non-functional concerns such as encryption or compression of intermediate
// data without touching business code.
package event

import (
	"fmt"
	"sync"
	"time"

	"skandium/internal/skel"
)

// When says whether the event fires before or after its subject.
type When int

// When values.
const (
	Before When = iota
	After
)

// String implements fmt.Stringer.
func (w When) String() string {
	switch w {
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return fmt.Sprintf("When(%d)", int(w))
	}
}

// Where says which part of a skeleton's evaluation the event brackets.
type Where int

// Where values. Skeleton brackets the whole pattern activation ("beginning
// of the skeleton" / "end of the map" in the paper); the others bracket the
// correspondingly named muscle; NestedSkel brackets one nested-skeleton
// evaluation inside map/fork/d&c/pipe/while/for/farm. Retry and Fault are
// the fault-tolerance extension: Retry fires once per failed-but-retried
// muscle attempt (Err holds the attempt's error, Iter the attempt number),
// Fault fires when a muscle invocation fails terminally — after exhausting
// its retry budget — just before the error unwinds.
const (
	Skeleton Where = iota
	Split
	Merge
	Condition
	NestedSkel
	Retry
	Fault
)

// String implements fmt.Stringer.
func (w Where) String() string {
	switch w {
	case Skeleton:
		return "skeleton"
	case Split:
		return "split"
	case Merge:
		return "merge"
	case Condition:
		return "condition"
	case NestedSkel:
		return "nested"
	case Retry:
		return "retry"
	case Fault:
		return "fault"
	default:
		return fmt.Sprintf("Where(%d)", int(w))
	}
}

// NoParent is the Parent value of events raised by a root-level activation.
const NoParent int64 = -1

// Event is the information delivered to listeners. In the paper's notation
// an event is ∆@when-where(i, extra...); for example map(fs,∆,fm)@as(i,
// fsCard) becomes {Node: the map node, When: After, Where: Split, Index: i,
// Card: fsCard}.
type Event struct {
	// Node is the skeleton whose evaluation raised the event.
	Node *skel.Node
	// Trace is the static nesting path from the root skeleton to Node,
	// inclusive. Listeners must not modify it.
	Trace []*skel.Node
	// Index identifies the activation: the Before and After events of one
	// muscle or skeleton activation share the same Index.
	Index int64
	// Parent is the activation index of the enclosing skeleton activation,
	// or NoParent for the root. It lets listeners rebuild the dynamic
	// activation tree (the state machines rely on it).
	Parent int64
	// When and Where locate the event around the activation.
	When  When
	Where Where
	// Param is the partial solution flowing through the skeleton. For
	// After/Merge-style events it is the produced value; for Before events
	// it is the input. Listeners may substitute it via their return value.
	Param any
	// Card is the number of sub-problems produced by a split; it is only
	// meaningful on After/Split events (the paper's fsCard).
	Card int
	// Branch is the child position for NestedSkel events of map/fork (which
	// sub-problem), and the stage number for pipe.
	Branch int
	// Iter is the iteration counter for while/for NestedSkel and Condition
	// events, and the recursion depth for d&c events.
	Iter int
	// Cond is the outcome of the condition muscle; only meaningful on
	// After/Condition events.
	Cond bool
	// Time is the clock reading when the event fired.
	Time time.Time
	// Worker is the id of the pool worker that raised the event (-1 when
	// raised outside a worker, e.g. by the simulator).
	Worker int
	// Err is the muscle error on After events of failed muscles. When Err
	// is non-nil the execution is unwinding; Param holds the input that
	// caused the failure.
	Err error
}

// CurrentSkel returns the innermost skeleton of the trace (the node that
// raised the event). It mirrors st[st.length-1] from the paper's listing 2.
func (e *Event) CurrentSkel() *skel.Node { return e.Node }

// String renders the event in the paper's ∆@notation for logs and tests.
func (e *Event) String() string {
	code := map[Where]string{
		Skeleton: "", Split: "s", Merge: "m", Condition: "c", NestedSkel: "n",
		Retry: "r", Fault: "f",
	}[e.Where]
	wh := "b"
	if e.When == After {
		wh = "a"
	}
	return fmt.Sprintf("%s@%s%s(%d)", e.Node.Kind(), wh, code, e.Index)
}

// Listener receives events. Handler returns the (possibly replaced) partial
// solution; returning e.Param unchanged is the common case. Handlers run on
// the worker goroutine: they must be fast and must not block on the skeleton
// execution they observe (deadlock).
type Listener interface {
	Handler(e *Event) any
}

// Func adapts a plain function to the Listener interface.
type Func func(e *Event) any

// Handler implements Listener.
func (f Func) Handler(e *Event) any { return f(e) }

// Filter restricts which events reach a listener. Zero-value fields do not
// filter; combine fields to narrow. A Filter with all fields zero matches
// every event (the paper's "generic listener").
type Filter struct {
	// Node, when non-nil, matches only events raised by that exact node.
	Node *skel.Node
	// Kind, when set (HasKind true), matches only events whose node has
	// that pattern kind.
	Kind    skel.Kind
	HasKind bool
	// When, when set (HasWhen true), matches only Before or only After.
	When    When
	HasWhen bool
	// Where, when set (HasWhere true), matches only that position.
	Where    Where
	HasWhere bool
}

// Matches reports whether the filter admits e.
func (f Filter) Matches(e *Event) bool {
	if f.Node != nil && f.Node != e.Node {
		return false
	}
	if f.HasKind && e.Node.Kind() != f.Kind {
		return false
	}
	if f.HasWhen && e.When != f.When {
		return false
	}
	if f.HasWhere && e.Where != f.Where {
		return false
	}
	return true
}

type entry struct {
	id     uint64
	filter Filter
	l      Listener
}

// Registry is an ordered set of listeners with filters. Emission walks the
// listeners in registration order, threading the partial solution through
// each matching handler. A Registry is safe for concurrent use; emission
// takes a read-lock-free snapshot so listeners can (un)register from within
// handlers without deadlock.
type Registry struct {
	mu      sync.Mutex
	nextID  uint64
	entries []entry
	// snapshot is the copy-on-write view used by Emit.
	snapshot []entry
}

// NewRegistry returns an empty listener registry.
func NewRegistry() *Registry { return &Registry{} }

// Subscription identifies a registered listener for removal.
type Subscription uint64

// Add registers l for every event (generic listener) and returns its
// subscription token.
func (r *Registry) Add(l Listener) Subscription { return r.AddFiltered(l, Filter{}) }

// AddFiltered registers l for events admitted by filter.
func (r *Registry) AddFiltered(l Listener, filter Filter) Subscription {
	if l == nil {
		panic("event: nil listener")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := r.nextID
	r.entries = append(r.entries, entry{id: id, filter: filter, l: l})
	r.rebuildLocked()
	return Subscription(id)
}

// Remove unregisters a previously added listener. Removing an unknown
// subscription is a no-op.
func (r *Registry) Remove(s Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, en := range r.entries {
		if en.id == uint64(s) {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			r.rebuildLocked()
			return
		}
	}
}

// Len returns the number of registered listeners.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

func (r *Registry) rebuildLocked() {
	snap := make([]entry, len(r.entries))
	copy(snap, r.entries)
	r.snapshot = snap
}

// Emit delivers e to every matching listener in registration order and
// returns the final partial solution (e.Param threaded through handlers).
// Emit never blocks on listener registration.
func (r *Registry) Emit(e *Event) any {
	r.mu.Lock()
	snap := r.snapshot
	r.mu.Unlock()
	for _, en := range snap {
		if en.filter.Matches(e) {
			e.Param = en.l.Handler(e)
		}
	}
	return e.Param
}
