package event

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

func seqNode() *skel.Node {
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	return skel.NewSeq(fe)
}

func mapNode() *skel.Node {
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) { return nil, nil })
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(p []any) (any, error) { return nil, nil })
	return skel.NewMap(fs, skel.NewSeq(fe), fm)
}

func TestEmitThreadsParam(t *testing.T) {
	r := NewRegistry()
	r.Add(Func(func(e *Event) any { return e.Param.(int) + 1 }))
	r.Add(Func(func(e *Event) any { return e.Param.(int) * 10 }))
	nd := seqNode()
	out := r.Emit(&Event{Node: nd, Param: 5})
	if out != 60 { // (5+1)*10, in registration order
		t.Fatalf("got %v, want 60", out)
	}
}

func TestEmitNoListeners(t *testing.T) {
	r := NewRegistry()
	nd := seqNode()
	if out := r.Emit(&Event{Node: nd, Param: "x"}); out != "x" {
		t.Fatalf("got %v", out)
	}
}

func TestFilterByWhenWhere(t *testing.T) {
	r := NewRegistry()
	var got []string
	r.AddFiltered(Func(func(e *Event) any {
		got = append(got, e.String())
		return e.Param
	}), Filter{When: After, HasWhen: true, Where: Split, HasWhere: true})
	nd := mapNode()
	r.Emit(&Event{Node: nd, When: Before, Where: Split, Index: 1})
	r.Emit(&Event{Node: nd, When: After, Where: Split, Index: 1, Card: 3})
	r.Emit(&Event{Node: nd, When: After, Where: Merge, Index: 1})
	if len(got) != 1 || got[0] != "map@as(1)" {
		t.Fatalf("got %v", got)
	}
}

func TestFilterByNodeAndKind(t *testing.T) {
	r := NewRegistry()
	a, b := seqNode(), seqNode()
	hits := 0
	r.AddFiltered(Func(func(e *Event) any { hits++; return e.Param }), Filter{Node: a})
	r.Emit(&Event{Node: a})
	r.Emit(&Event{Node: b})
	if hits != 1 {
		t.Fatalf("node filter hits = %d, want 1", hits)
	}
	kindHits := 0
	r.AddFiltered(Func(func(e *Event) any { kindHits++; return e.Param }),
		Filter{Kind: skel.Map, HasKind: true})
	r.Emit(&Event{Node: mapNode()})
	r.Emit(&Event{Node: a})
	if kindHits != 1 {
		t.Fatalf("kind filter hits = %d, want 1", kindHits)
	}
}

func TestRemoveListener(t *testing.T) {
	r := NewRegistry()
	hits := 0
	sub := r.Add(Func(func(e *Event) any { hits++; return e.Param }))
	nd := seqNode()
	r.Emit(&Event{Node: nd})
	r.Remove(sub)
	r.Emit(&Event{Node: nd})
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	r.Remove(sub) // double remove is a no-op
	if r.Len() != 0 {
		t.Fatalf("len = %d, want 0", r.Len())
	}
}

func TestListenerCanUnregisterDuringEmit(t *testing.T) {
	r := NewRegistry()
	var sub Subscription
	fired := 0
	sub = r.Add(Func(func(e *Event) any {
		fired++
		r.Remove(sub) // must not deadlock
		return e.Param
	}))
	nd := seqNode()
	r.Emit(&Event{Node: nd})
	r.Emit(&Event{Node: nd})
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestConcurrentEmitAndRegister(t *testing.T) {
	r := NewRegistry()
	nd := seqNode()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(&Event{Node: nd, Param: i})
			}
		}()
	}
	for i := 0; i < 100; i++ {
		sub := r.Add(Func(func(e *Event) any { return e.Param }))
		r.Remove(sub)
	}
	wg.Wait()
}

func TestEventStringNotation(t *testing.T) {
	nd := mapNode()
	cases := []struct {
		when  When
		where Where
		want  string
	}{
		{Before, Skeleton, "map@b(7)"},
		{After, Skeleton, "map@a(7)"},
		{Before, Split, "map@bs(7)"},
		{After, Split, "map@as(7)"},
		{Before, Merge, "map@bm(7)"},
		{After, Merge, "map@am(7)"},
		{Before, NestedSkel, "map@bn(7)"},
		{After, Condition, "map@ac(7)"},
	}
	for _, tc := range cases {
		e := &Event{Node: nd, When: tc.when, Where: tc.where, Index: 7}
		if got := e.String(); got != tc.want {
			t.Errorf("%v/%v: got %q, want %q", tc.when, tc.where, got, tc.want)
		}
	}
}

func TestWhenWhereStrings(t *testing.T) {
	if fmt.Sprint(Before, After) != "before after" {
		t.Fatalf("When strings: %v %v", Before, After)
	}
	for w, want := range map[Where]string{
		Skeleton: "skeleton", Split: "split", Merge: "merge",
		Condition: "condition", NestedSkel: "nested",
	} {
		if w.String() != want {
			t.Errorf("%d: got %q want %q", int(w), w.String(), want)
		}
	}
}

func TestCurrentSkel(t *testing.T) {
	nd := mapNode()
	inner := nd.Children()[0]
	e := &Event{Node: inner, Trace: []*skel.Node{nd, inner}}
	if e.CurrentSkel() != inner {
		t.Fatal("CurrentSkel is not the event's node")
	}
}

func TestNilListenerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRegistry().Add(nil)
}

// TestFilterMatchProperty: a filter with no constraints matches everything;
// adding any single constraint only ever removes matches.
func TestFilterMatchProperty(t *testing.T) {
	nodes := []*skel.Node{seqNode(), mapNode()}
	f := func(whenRaw, whereRaw, kindRaw, nodeIdx uint8) bool {
		e := &Event{
			Node:  nodes[int(nodeIdx)%len(nodes)],
			When:  When(whenRaw % 2),
			Where: Where(whereRaw % 5),
		}
		if !(Filter{}).Matches(e) {
			return false
		}
		base := Filter{}
		narrowed := []Filter{
			{When: When(whenRaw % 2), HasWhen: true},
			{Where: Where(whereRaw % 5), HasWhere: true},
			{Kind: skel.Kind(kindRaw % 9), HasKind: true},
			{Node: nodes[0]},
		}
		for _, n := range narrowed {
			if n.Matches(e) && !base.Matches(e) {
				return false // narrowing cannot add matches
			}
		}
		// A filter exactly describing the event always matches.
		exact := Filter{
			Node: e.Node,
			Kind: e.Node.Kind(), HasKind: true,
			When: e.When, HasWhen: true,
			Where: e.Where, HasWhere: true,
		}
		return exact.Matches(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
