package event

import (
	"sync"
	"testing"
	"time"
)

// TestEmitNoListenerAllocs pins the empty-registry hot path: Wants must be
// false (emitters then skip Event construction entirely) and Emit itself
// must not allocate.
func TestEmitNoListenerAllocs(t *testing.T) {
	reg := NewRegistry()
	nd := seqNode()
	if reg.Wants(nd.Kind(), After, Skeleton) {
		t.Fatal("empty registry Wants = true")
	}
	ev := &Event{Node: nd, When: After, Where: Skeleton, Param: 1}
	if a := testing.AllocsPerRun(200, func() { reg.Emit(ev) }); a != 0 {
		t.Fatalf("Emit with no listeners allocates %v per run, want 0", a)
	}
}

// TestEmitFilteredOutAllocs pins the slot index: a listener filtered to a
// different (Where) slot must leave other slots on the zero-allocation
// no-match path, and Wants must report the mismatch.
func TestEmitFilteredOutAllocs(t *testing.T) {
	reg := NewRegistry()
	fired := 0
	reg.AddFiltered(Func(func(e *Event) any { fired++; return e.Param }),
		Filter{Where: Merge, HasWhere: true})
	nd := seqNode()
	if reg.Wants(nd.Kind(), After, Skeleton) {
		t.Fatal("Wants(Skeleton) = true for a Merge-only listener")
	}
	if !reg.Wants(nd.Kind(), After, Merge) {
		t.Fatal("Wants(Merge) = false for a Merge-only listener")
	}
	ev := &Event{Node: nd, When: After, Where: Skeleton, Param: 1}
	if a := testing.AllocsPerRun(200, func() { reg.Emit(ev) }); a != 0 {
		t.Fatalf("Emit with filtered-out listener allocates %v per run, want 0", a)
	}
	if fired != 0 {
		t.Fatalf("filtered-out listener fired %d times", fired)
	}
}

// TestEmitMatchingAllocs: dispatching to a matching listener allocates
// nothing in Emit itself (the handler here is allocation-free too).
func TestEmitMatchingAllocs(t *testing.T) {
	reg := NewRegistry()
	reg.Add(Func(func(e *Event) any { return e.Param }))
	nd := seqNode()
	ev := &Event{Node: nd, When: After, Where: Skeleton, Param: 1}
	if a := testing.AllocsPerRun(200, func() { reg.Emit(ev) }); a != 0 {
		t.Fatalf("Emit dispatch allocates %v per run, want 0", a)
	}
}

// TestEmitOrderWithManyListeners exercises the unindexed tail (entries past
// the bitmask width): registration order must hold across the boundary and
// no listener may be dropped.
func TestEmitOrderWithManyListeners(t *testing.T) {
	reg := NewRegistry()
	const n = maskBits + 8
	var got []int
	for i := 0; i < n; i++ {
		i := i
		reg.Add(Func(func(e *Event) any { got = append(got, i); return e.Param }))
	}
	nd := seqNode()
	if !reg.Wants(nd.Kind(), Before, Split) {
		t.Fatal("Wants = false with generic listeners past the mask width")
	}
	reg.Emit(&Event{Node: nd, When: Before, Where: Split})
	if len(got) != n {
		t.Fatalf("dispatched %d of %d listeners", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("dispatch order %v, want registration order", got[:i+1])
		}
	}
}

// TestRegistryConcurrentAddRemoveEmit drives registration churn against
// concurrent emission; run under -race it checks the snapshot swap. Every
// emission must observe a consistent listener list (never a torn one), and
// handlers registered at emission time must thread the param correctly.
func TestRegistryConcurrentAddRemoveEmit(t *testing.T) {
	reg := NewRegistry()
	nd := seqNode()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churner: adds and removes filtered listeners.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s1 := reg.Add(Func(func(e *Event) any { return e.Param }))
			s2 := reg.AddFiltered(Func(func(e *Event) any { return e.Param }),
				Filter{Where: Merge, HasWhere: true})
			reg.Remove(s1)
			reg.Remove(s2)
		}
	}()

	// Emitters: fire across several slots.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := &Event{Node: nd, Param: 7}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ev.When = When(i % 2)
				ev.Where = Where(i % 5)
				if out := reg.Emit(ev); out != 7 {
					t.Errorf("emit returned %v, want 7", out)
					return
				}
				_ = reg.Wants(nd.Kind(), ev.When, ev.Where)
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
