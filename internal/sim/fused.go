package sim

import (
	"skandium/internal/event"
	"skandium/internal/plan"
)

// This file executes fused serial chains (plan.FusedProg) on the simulated
// substrate. The micro-op list replays exactly the instruction sequence the
// per-step entries would schedule — same event order, same activation-index
// allocation order, same busy periods parked from the same slot at the same
// virtual instants — so a fused run is byte-identical to an unfused one
// (the conformance harness checks results, activation shapes and makespans
// across the optimizer switch). What it saves is the per-stage instruction
// churn: one recycled state object replaces the per-activation
// seqInstr/seqBusy/emitInstr/instant allocations of the whole chain.

// fusedEntry is the immutable entry instruction of one fused chain. Entry
// instructions are shared — the cached root program pushes the same value
// for every injection — so all per-activation state lives in a fusedState
// acquired from the engine's freelist on first execution.
type fusedEntry struct {
	e      *Engine
	prog   *plan.FusedProg
	parent int64
}

func (*fusedEntry) simInstr() {}

// fusedState interprets one activation of a fused chain. It is both the
// instruction (re-pushed onto the task stack across busy periods) and the
// finisher of its own busy periods: at an FBody op the state parks itself,
// its finish runs the muscle and closes the seq activation, and the
// engine's post-completion step pops the state again to continue at pc+1.
// States are engine-owned scratch: the simulator is single-threaded per
// engine, so the freelist needs no synchronization.
type fusedState struct {
	e      *Engine
	prog   *plan.FusedProg
	parent int64
	pc     int
	frames []sctx // open activations, innermost last
}

func (*fusedState) simInstr() {}

// fusedSlab and frameArenaSize are the growth quanta of the fused-state
// freelist and the shared frame-stack arena.
const (
	fusedSlab      = 16
	frameArenaSize = 64
)

func (e *Engine) acquireFused(fp *plan.FusedProg, parent int64) *fusedState {
	var st *fusedState
	if n := len(e.fusedFree); n > 0 {
		st = e.fusedFree[n-1]
		e.fusedFree = e.fusedFree[:n-1]
	} else {
		slab := make([]fusedState, fusedSlab)
		for i := fusedSlab - 1; i > 0; i-- {
			e.fusedFree = append(e.fusedFree, &slab[i])
		}
		st = &slab[0]
	}
	st.e, st.prog, st.parent, st.pc = e, fp, parent, 0
	if cap(st.frames) < fp.MaxFrames() {
		st.frames = e.carveFrames(fp.MaxFrames())
	}
	return st
}

// carveFrames hands out a zero-length frame stack of capacity mf from the
// shared arena. Capacities are exact (chain nesting never exceeds
// MaxFrames), so a carved region is never appended past its bounds; a
// recycled state keeps its region for its next chain.
func (e *Engine) carveFrames(mf int) []sctx {
	if mf > frameArenaSize/4 {
		return make([]sctx, 0, mf)
	}
	if len(e.frameArena) < mf {
		e.frameArena = make([]sctx, frameArenaSize)
	}
	f := e.frameArena[:0:mf]
	e.frameArena = e.frameArena[mf:]
	return f
}

func (e *Engine) recycleFused(st *fusedState) {
	st.prog = nil
	st.frames = st.frames[:0]
	e.fusedFree = append(e.fusedFree, st)
}

// run executes micro-ops from pc until the chain parks on a busy period
// (returns true; the state sits re-pushed on the task stack and registered
// in the run heap) or completes (returns false; the state is recycled and
// the task continues with whatever is below on its stack).
func (st *fusedState) run(t *task, slot int) bool {
	e := st.e
	ops := st.prog.Ops()
	for st.pc < len(ops) {
		op := &ops[st.pc]
		switch op.Code {
		case plan.FBegin:
			parent := st.parent
			if n := len(st.frames); n > 0 {
				parent = st.frames[n-1].idx
			}
			st.frames = append(st.frames, begin(e, op.Step, parent, op.Step.Trace(), t, slot))
		case plan.FBody:
			// Park exactly like seqInstr+seqBusy: the cost is computed now
			// (on the possibly listener-replaced param), the muscle call and
			// the After event happen at finish time. pc stays on this op so
			// finish knows which seq completed.
			fe := op.Step.Exec()
			t.push(st)
			e.park(t, slot, e.costs.Cost(fe, t.param), st)
			return true
		case plan.FEnd:
			a := st.frames[len(st.frames)-1]
			t.param = a.emit(slot, event.After, event.Skeleton, t.param, nil)
			st.frames = st.frames[:len(st.frames)-1]
		case plan.FNestedBegin:
			emitBracket(st.frames[len(st.frames)-1], slot, event.Before, t, op.Branch, op.Iter)
		case plan.FNestedEnd:
			emitBracket(st.frames[len(st.frames)-1], slot, event.After, t, op.Branch, op.Iter)
		}
		st.pc++
	}
	e.recycleFused(st)
	return false
}

// finish implements finisher: the busy period of the FBody at pc completed.
// Mirrors seqBusy.finish; the engine's post-completion step pops the
// re-pushed state and continues the chain.
func (st *fusedState) finish(t *task, slot int) {
	op := &st.prog.Ops()[st.pc]
	a := st.frames[len(st.frames)-1]
	fe := op.Step.Exec()
	res, err := scall(fe, a.trace, func() (any, error) { return fe.CallExecute(t.param) })
	if err != nil {
		st.e.fail(err)
		return
	}
	t.param = a.emit(slot, event.After, event.Skeleton, res, nil)
	st.frames = st.frames[:len(st.frames)-1]
	st.pc++
}

// emitBracket raises one NestedSkel event with explicit branch/iter —
// emitInstr.run without the instruction (fields instead of a mod closure,
// so the no-listener fast path allocates nothing).
func emitBracket(a sctx, slot int, when event.When, t *task, branch, iter int) {
	reg := a.e.events
	nd := a.step.Node()
	if !reg.Wants(nd.Kind(), when, event.NestedSkel) {
		return
	}
	ev := event.Acquire()
	ev.Node = nd
	ev.Trace = a.trace
	ev.Index = a.idx
	ev.Parent = a.parent
	ev.When = when
	ev.Where = event.NestedSkel
	ev.Param = t.param
	ev.Branch = branch
	ev.Iter = iter
	ev.Time = a.e.clk.Now()
	ev.Worker = slot
	t.param = reg.Emit(ev)
	event.Release(ev)
}
