package sim

import (
	"testing"
	"time"
)

// TestSimPartitionShadowsNode: a node partitioned for the whole run
// contributes nothing — the makespan degrades to the surviving node's
// serial schedule, deterministically.
func TestSimPartitionShadowsNode(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): 0, fe.ID(): ms(10), fm.ID(): 0}
	nodes := []NodeSpec{{Threads: 1}, {Threads: 1}}

	eng := NewEngine(Config{Costs: costs, Nodes: nodes, LP: 2})
	res, healthy, err := eng.Run(nd, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res != 30 { // 2*(0+1+2+3+4+5)
		t.Fatalf("result %v, want 30", res)
	}
	if healthy != ms(30) {
		t.Fatalf("unpartitioned makespan %v, want 30ms (6 items over 2 nodes)", healthy)
	}

	cut := NewEngine(Config{
		Costs: costs, Nodes: nodes, LP: 2,
		Partitions: []Partition{{Node: 1, From: 0, Until: ms(100)}},
	})
	res, degraded, err := cut.Run(nd, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res != 30 {
		t.Fatalf("partitioned result %v, want 30 — partitions must not lose work", res)
	}
	if degraded != ms(60) {
		t.Fatalf("partitioned makespan %v, want 60ms (6 items serial on the survivor)", degraded)
	}
}

// TestSimPartitionStrandsReplies: a muscle finishing inside a partition
// window holds its result until the window heals — the reply is stranded
// behind the partition, and the node's thread stays pinned the whole time.
func TestSimPartitionStrandsReplies(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): 0, fe.ID(): ms(10), fm.ID(): 0}
	nodes := []NodeSpec{{Threads: 1}, {Threads: 1}}

	run := func() time.Duration {
		eng := NewEngine(Config{
			Costs: costs, Nodes: nodes, LP: 2,
			// Node 1 is cut 5ms into the run, after it has started its first
			// item; the item finishes at 10ms but its result lands at 40ms.
			Partitions: []Partition{{Node: 1, From: ms(5), Until: ms(40)}},
		})
		res, makespan, err := eng.Run(nd, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res != 12 {
			t.Fatalf("result %v, want 12", res)
		}
		return makespan
	}
	// Timeline: items 0,1 start at t=0 on nodes 0,1. Item 0 lands at 10ms;
	// item 1 is stranded until the 40ms heal. The stranded run still holds
	// cluster capacity, so items 2,3 start at 40ms and land at 50ms.
	if got := run(); got != ms(50) {
		t.Fatalf("stranded-reply makespan %v, want 50ms", got)
	}
	// Virtual-time chaos is deterministic: the same windows replay the same
	// timeline exactly.
	if a, b := run(), run(); a != b {
		t.Fatalf("partition replay diverged: %v vs %v", a, b)
	}
}

// TestSimPartitionAllNodesWaitsForHeal: when every node is cut the engine
// advances virtual time to the earliest heal instead of declaring a stall.
func TestSimPartitionAllNodesWaitsForHeal(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): 0, fe.ID(): ms(10), fm.ID(): 0}

	eng := NewEngine(Config{
		Costs: costs, Nodes: []NodeSpec{{Threads: 1}}, LP: 1,
		Partitions: []Partition{{Node: 0, From: 0, Until: ms(25)}},
	})
	res, makespan, err := eng.Run(nd, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res != 2 {
		t.Fatalf("result %v, want 2", res)
	}
	if makespan != ms(45) { // blackout until 25ms, then 2 serial items
		t.Fatalf("makespan %v, want 45ms (25ms blackout + 2×10ms)", makespan)
	}
}
