package sim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/exec"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// table-driven cost model by muscle identity.
type costTable map[muscle.ID]time.Duration

func (ct costTable) Cost(m *muscle.Muscle, _ any) time.Duration { return ct[m.ID()] }

// buildMapProgram returns map(fs, seq(fe), fm) splitting an int n into n
// unit work items, summing doubled values, plus its muscles.
func buildMapProgram() (*skel.Node, *muscle.Muscle, *muscle.Muscle, *muscle.Muscle) {
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		n := p.(int)
		out := make([]any, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p.(int) * 2, nil })
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
	return skel.NewMap(fs, skel.NewSeq(fe), fm), fs, fe, fm
}

func TestSimMapResultAndMakespan(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(10), fe.ID(): ms(20), fm.ID(): ms(5)}
	cases := []struct {
		lp   int
		want time.Duration
	}{
		{1, ms(95)},  // 10 + 4*20 + 5
		{2, ms(55)},  // 10 + 2*20 + 5
		{4, ms(35)},  // 10 + 20 + 5
		{16, ms(35)}, // more LP than work: no further gain
	}
	for _, tc := range cases {
		eng := NewEngine(Config{Costs: costs, LP: tc.lp})
		res, makespan, err := eng.Run(nd, 4)
		if err != nil {
			t.Fatalf("lp=%d: %v", tc.lp, err)
		}
		if res != 12 { // 2*(0+1+2+3)
			t.Fatalf("lp=%d: result %v, want 12", tc.lp, res)
		}
		if makespan != tc.want {
			t.Fatalf("lp=%d: makespan %v, want %v", tc.lp, makespan, tc.want)
		}
	}
}

func TestSimZeroCardinality(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(10), fe.ID(): ms(20), fm.ID(): ms(5)}
	eng := NewEngine(Config{Costs: costs, LP: 2})
	res, makespan, err := eng.Run(nd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != 0 {
		t.Fatalf("result %v, want 0", res)
	}
	if makespan != ms(15) {
		t.Fatalf("makespan %v, want 15ms", makespan)
	}
}

func TestSimMuscleError(t *testing.T) {
	boom := errors.New("boom")
	fe := muscle.NewExecute("boom", func(any) (any, error) { return nil, boom })
	nd := skel.NewSeq(fe)
	eng := NewEngine(Config{Costs: costTable{fe.ID(): ms(1)}})
	_, _, err := eng.Run(nd, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	var me *exec.MuscleError
	if !errors.As(err, &me) {
		t.Fatalf("want MuscleError, got %T", err)
	}
}

// sig is a substrate-independent event signature.
type sig struct {
	kind   skel.Kind
	when   event.When
	where  event.Where
	card   int
	cond   bool
	branch int
	iter   int
}

func collectSim(t *testing.T, nd *skel.Node, param any, costs CostModel) []sig {
	t.Helper()
	reg := event.NewRegistry()
	var sigs []sig
	reg.Add(event.Func(func(e *event.Event) any {
		sigs = append(sigs, sig{e.Node.Kind(), e.When, e.Where, e.Card, e.Cond, e.Branch, e.Iter})
		return e.Param
	}))
	eng := NewEngine(Config{Costs: costs, LP: 1, Events: reg})
	if _, _, err := eng.Run(nd, param); err != nil {
		t.Fatal(err)
	}
	return sigs
}

func collectExec(t *testing.T, nd *skel.Node, param any) []sig {
	t.Helper()
	reg := event.NewRegistry()
	var mu sync.Mutex
	var sigs []sig
	reg.Add(event.Func(func(e *event.Event) any {
		mu.Lock()
		sigs = append(sigs, sig{e.Node.Kind(), e.When, e.Where, e.Card, e.Cond, e.Branch, e.Iter})
		mu.Unlock()
		return e.Param
	}))
	pool := exec.NewPool(clock.System, 1, 0)
	defer pool.Close()
	root := exec.NewRoot(pool, reg, nil)
	if _, err := root.Start(nd, param).Get(); err != nil {
		t.Fatal(err)
	}
	return sigs
}

// TestSimExecEventEquivalence: at LP=1 both substrates must produce the
// identical event stream for a program covering every skeleton kind.
func TestSimExecEventEquivalence(t *testing.T) {
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		n := p.(int)
		out := make([]any, 3)
		for i := range out {
			out[i] = n + i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p.(int) + 1, nil })
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
	fcPos := muscle.NewCondition("small", func(p any) (bool, error) { return p.(int) < 40, nil })
	fcIf := muscle.NewCondition("even", func(p any) (bool, error) { return p.(int)%2 == 0, nil })
	fcDac := muscle.NewCondition("deep", func(p any) (bool, error) { return p.(int) > 10, nil })
	fsHalf := muscle.NewSplit("half", func(p any) ([]any, error) {
		n := p.(int)
		return []any{n / 2, n - n/2}, nil
	})

	program := skel.NewPipe(
		skel.NewFarm(skel.NewSeq(fe)),
		skel.NewWhile(fcPos, skel.NewSeq(fe)),
		skel.NewIf(fcIf, skel.NewSeq(fe), skel.NewFor(2, skel.NewSeq(fe))),
		skel.NewMap(fs, skel.NewSeq(fe), fm),
		skel.NewDaC(fcDac, fsHalf, skel.NewSeq(fe), fm),
		skel.NewFork(fsHalf, []*skel.Node{skel.NewSeq(fe), skel.NewSeq(fe)}, fm),
	)
	unit := costTable{}
	for _, m := range []*muscle.Muscle{fs, fe, fm, fcPos, fcIf, fcDac, fsHalf} {
		unit[m.ID()] = ms(1)
	}
	simSigs := collectSim(t, program, 7, unit)
	execSigs := collectExec(t, program, 7)
	if len(simSigs) != len(execSigs) {
		t.Fatalf("event counts differ: sim=%d exec=%d", len(simSigs), len(execSigs))
	}
	for i := range simSigs {
		if simSigs[i] != execSigs[i] {
			t.Fatalf("event %d differs: sim=%+v exec=%+v", i, simSigs[i], execSigs[i])
		}
	}
	if len(simSigs) == 0 {
		t.Fatal("no events recorded")
	}
}

// TestSimExecResultEquivalence: random-ish inputs through both substrates.
func TestSimExecResultEquivalence(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(1), fe.ID(): ms(1), fm.ID(): ms(1)}
	for n := 0; n <= 9; n++ {
		eng := NewEngine(Config{Costs: costs, LP: 3})
		simRes, _, err := eng.Run(nd, n)
		if err != nil {
			t.Fatal(err)
		}
		pool := exec.NewPool(clock.System, 3, 0)
		root := exec.NewRoot(pool, nil, nil)
		execRes, err := root.Start(nd, n).Get()
		pool.Close()
		if err != nil {
			t.Fatal(err)
		}
		if simRes != execRes {
			t.Fatalf("n=%d: sim=%v exec=%v", n, simRes, execRes)
		}
	}
}

// TestSimGauge: the gauge observes active muscle executions bounded by LP.
func TestSimGauge(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(10), fe.ID(): ms(20), fm.ID(): ms(5)}
	peak := 0
	eng := NewEngine(Config{Costs: costs, LP: 3, Gauge: func(_ time.Time, active, lp int) {
		if active > peak {
			peak = active
		}
		if active > lp {
			t.Errorf("active %d exceeds lp %d", active, lp)
		}
	}})
	if _, _, err := eng.Run(nd, 9); err != nil {
		t.Fatal(err)
	}
	if peak != 3 {
		t.Fatalf("peak active = %d, want 3", peak)
	}
}

// TestSimControllerAdapts: the full autonomic loop on the simulator. A
// paper-shaped program (two nested maps) with a WCT goal half the
// sequential time must trigger LP increases and finish within the goal.
func TestSimControllerAdapts(t *testing.T) {
	fsO := muscle.NewSplit("fsO", func(p any) ([]any, error) {
		out := make([]any, 4)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fsI := muscle.NewSplit("fsI", func(p any) ([]any, error) {
		out := make([]any, 3)
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return 1, nil })
	// Like the paper's program, both map levels share the merge muscle, so
	// after the first inner merge every muscle has been observed once and
	// the first analysis can run mid-execution.
	fmBoth := muscle.NewMerge("fm", func(ps []any) (any, error) { return len(ps), nil })
	inner := skel.NewMap(fsI, skel.NewSeq(fe), fmBoth)
	outer := skel.NewMap(fsO, inner, fmBoth)
	costs := costTable{fsO.ID(): ms(10), fsI.ID(): ms(5), fe.ID(): ms(10), fmBoth.ID(): ms(2)}
	// Sequential: 10 + 4*(5+30+2) + 2 = 160ms. Goal: 100ms.

	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	eng := NewEngine(Config{Costs: costs, LP: 1, MaxLP: 24, Events: reg})
	ctl := core.NewController(core.Config{WCTGoal: ms(100), MaxLP: 24},
		outer, eng, est, tracker, eng.Clock())
	ctl.SetStart(eng.Now())
	core.Attach(reg, tracker, ctl)

	_, makespan, err := eng.Run(outer, 0)
	if err != nil {
		t.Fatal(err)
	}
	decisions := ctl.Decisions()
	if len(decisions) == 0 {
		t.Fatal("controller never adapted")
	}
	if decisions[0].NewLP <= decisions[0].OldLP {
		t.Fatalf("first decision did not increase LP: %v", decisions[0])
	}
	// First analysis possible only once every muscle ran once: after the
	// first inner merge at 10+5+30+2 = 47ms.
	if at := decisions[0].Time.Sub(clock.Epoch); at != ms(47) {
		t.Fatalf("first adaptation at %v, want 47ms", at)
	}
	if makespan > ms(100) {
		t.Fatalf("makespan %v misses the 100ms goal (decisions: %v)", makespan, decisions)
	}
	if makespan >= ms(160) {
		t.Fatalf("makespan %v not better than sequential", makespan)
	}
	if ctl.Analyses() == 0 {
		t.Fatal("no analyses recorded")
	}
}

// TestSimControllerNoGoalNoAdaptation: without a WCT goal the controller
// never touches LP.
func TestSimControllerNoGoalNoAdaptation(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(10), fe.ID(): ms(20), fm.ID(): ms(5)}
	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	eng := NewEngine(Config{Costs: costs, LP: 2, Events: reg})
	ctl := core.NewController(core.Config{}, nd, eng, est, tracker, eng.Clock())
	core.Attach(reg, tracker, ctl)
	if _, _, err := eng.Run(nd, 6); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Decisions()) != 0 {
		t.Fatalf("unexpected decisions: %v", ctl.Decisions())
	}
	if eng.LP() != 2 {
		t.Fatalf("LP changed to %d", eng.LP())
	}
}

// TestSimLPDecrease: an over-provisioned run with a loose goal halves LP.
func TestSimLPDecrease(t *testing.T) {
	// for-loop of maps so analyses happen between iterations. The merge
	// returns the incoming cardinality so every iteration splits 4 ways.
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		out := make([]any, p.(int))
		for i := range out {
			out[i] = i
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) { return len(ps), nil })
	loop := skel.NewFor(6, skel.NewMap(fs, skel.NewSeq(fe), fm))
	costs := costTable{fs.ID(): ms(5), fe.ID(): ms(10), fm.ID(): ms(2)}
	// One iteration sequential: 5+4*10+2 = 47; six iterations: 282ms.
	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	eng := NewEngine(Config{Costs: costs, LP: 16, MaxLP: 24, Events: reg})
	ctl := core.NewController(core.Config{WCTGoal: ms(400), MaxLP: 24},
		loop, eng, est, tracker, eng.Clock())
	ctl.SetStart(eng.Now())
	core.Attach(reg, tracker, ctl)
	if _, _, err := eng.Run(loop, 4); err != nil {
		t.Fatal(err)
	}
	var halved bool
	for _, d := range ctl.Decisions() {
		if d.NewLP < d.OldLP {
			halved = true
			if d.NewLP != d.OldLP/2 {
				t.Fatalf("decrease is not halving: %v", d)
			}
		}
	}
	if !halved {
		t.Fatalf("expected at least one halving decision, got %v", ctl.Decisions())
	}
	if eng.LP() >= 16 {
		t.Fatalf("LP never decreased: %d", eng.LP())
	}
}
