package sim

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"skandium/internal/clock"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// jitterCosts draws per-invocation durations from a seeded source.
type jitterCosts struct {
	base time.Duration
	rng  *rand.Rand
}

func (j *jitterCosts) Cost(m *muscle.Muscle, _ any) time.Duration {
	f := 0.5 + j.rng.Float64()
	return time.Duration(float64(j.base) * f)
}

// TestSimDeterministicWithSeededJitter: identical seeds give identical
// makespans; different seeds differ.
func TestSimDeterministicWithSeededJitter(t *testing.T) {
	nd, _, _, _ := buildMapProgram()
	run := func(seed int64) time.Duration {
		eng := NewEngine(Config{Costs: &jitterCosts{base: ms(10), rng: rand.New(rand.NewSource(seed))}, LP: 2})
		_, makespan, err := eng.Run(nd, 6)
		if err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds identical: %v", a1)
	}
}

// TestSimSetLPMidRunViaListener: raising LP from an event listener takes
// effect immediately at the next scheduling point.
func TestSimSetLPMidRunViaListener(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(10), fe.ID(): ms(20), fm.ID(): ms(5)}
	reg := event.NewRegistry()
	eng := NewEngine(Config{Costs: costs, LP: 1, Events: reg, MaxLP: 8})
	reg.AddFiltered(event.Func(func(e *event.Event) any {
		eng.SetLP(4) // right after the split completes
		return e.Param
	}), event.Filter{Where: event.Split, HasWhere: true, When: event.After, HasWhen: true})
	_, makespan, err := eng.Run(nd, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With LP 4 from the split on: 10 + 20 + 5.
	if makespan != ms(35) {
		t.Fatalf("makespan %v, want 35ms", makespan)
	}
}

// TestSimLoweringLPMidRun: decreasing LP mid-run serializes the remainder.
func TestSimLoweringLPMidRun(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(10), fe.ID(): ms(20), fm.ID(): ms(5)}
	reg := event.NewRegistry()
	eng := NewEngine(Config{Costs: costs, LP: 4, Events: reg})
	reg.AddFiltered(event.Func(func(e *event.Event) any {
		eng.SetLP(1)
		return e.Param
	}), event.Filter{Where: event.Split, HasWhere: true, When: event.After, HasWhen: true})
	_, makespan, err := eng.Run(nd, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Split 10, then 4 fe sequential (LP dropped before any fe started),
	// then merge: 10 + 80 + 5.
	if makespan != ms(95) {
		t.Fatalf("makespan %v, want 95ms", makespan)
	}
}

// TestSimWorkerIDsConsecutive: nested Before then child Skeleton Before
// arrive on the same virtual worker slot (the tracker's branch-recovery
// protocol relies on it).
func TestSimWorkerSlotProtocol(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(1), fe.ID(): ms(1), fm.ID(): ms(1)}
	reg := event.NewRegistry()
	var pendingSlot = -1
	var pendingBranch int
	violations := 0
	reg.Add(event.Func(func(e *event.Event) any {
		if e.Where == event.NestedSkel && e.When == event.Before {
			pendingSlot, pendingBranch = e.Worker, e.Branch
		} else if e.Where == event.Skeleton && e.When == event.Before && pendingSlot >= 0 {
			if e.Worker != pendingSlot {
				violations++
			}
			_ = pendingBranch
			pendingSlot = -1
		}
		return e.Param
	}))
	eng := NewEngine(Config{Costs: costs, LP: 3, Events: reg})
	if _, _, err := eng.Run(nd, 6); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d slot-protocol violations", violations)
	}
}

// TestSimListenerPanicSurfacesAsError: a panicking listener aborts the
// simulated run with an error.
func TestSimListenerPanic(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(1), fe.ID(): ms(1), fm.ID(): ms(1)}
	reg := event.NewRegistry()
	reg.Add(event.Func(func(e *event.Event) any {
		if e.Where == event.Merge {
			panic("boom")
		}
		return e.Param
	}))
	eng := NewEngine(Config{Costs: costs, LP: 1, Events: reg})
	if _, _, err := eng.Run(nd, 2); err == nil {
		t.Fatal("listener panic swallowed")
	}
}

// TestSimSequentialRuns: an engine can run several executions back to back
// (virtual clock keeps advancing).
func TestSimSequentialRuns(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(1), fe.ID(): ms(1), fm.ID(): ms(1)}
	eng := NewEngine(Config{Costs: costs, LP: 2})
	before := eng.Now()
	for i := 0; i < 3; i++ {
		res, _, err := eng.Run(nd, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res != 6 {
			t.Fatalf("run %d: %v", i, res)
		}
	}
	if !eng.Now().After(before) {
		t.Fatal("virtual clock did not advance")
	}
}

// TestSimZeroCostMuscles: all-zero costs still execute correctly in zero
// virtual time.
func TestSimZeroCost(t *testing.T) {
	nd, _, _, _ := buildMapProgram()
	eng := NewEngine(Config{Costs: CostFunc(func(*muscle.Muscle, any) time.Duration { return 0 }), LP: 1})
	res, makespan, err := eng.Run(nd, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res != 20 || makespan != 0 {
		t.Fatalf("res %v makespan %v", res, makespan)
	}
}

// TestSimStartTimeAnchor: the engine anchors at clock.Epoch by default.
func TestSimStartTimeAnchor(t *testing.T) {
	eng := NewEngine(Config{Costs: CostFunc(func(*muscle.Muscle, any) time.Duration { return 0 })})
	if !eng.StartTime().Equal(clock.Epoch) || !eng.Now().Equal(clock.Epoch) {
		t.Fatalf("anchor %v / %v", eng.StartTime(), eng.Now())
	}
}

// TestSimNestedWhileInsideMap: composite control flow on the simulator.
func TestSimNestedWhileInsideMap(t *testing.T) {
	fc := muscle.NewCondition("lt10", func(p any) (bool, error) { return p.(int) < 10, nil })
	inc := muscle.NewExecute("inc", func(p any) (any, error) { return p.(int) + 3, nil })
	body := skel.NewWhile(fc, skel.NewSeq(inc))
	fs := muscle.NewSplit("three", func(p any) ([]any, error) { return []any{0, 5, 9}, nil })
	fm := muscle.NewMerge("sum", func(ps []any) (any, error) {
		s := 0
		for _, p := range ps {
			s += p.(int)
		}
		return s, nil
	})
	nd := skel.NewMap(fs, body, fm)
	eng := NewEngine(Config{Costs: CostFunc(func(*muscle.Muscle, any) time.Duration { return ms(1) }), LP: 2})
	res, _, err := eng.Run(nd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 0->12, 5->11, 9->12
	if res != 35 {
		t.Fatalf("res %v, want 35", res)
	}
}

// TestSimMergeReplaceTypeError: a listener replacing the merge input with a
// non-[]any value fails the run with a descriptive error.
func TestSimMergeReplaceTypeError(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(1), fe.ID(): ms(1), fm.ID(): ms(1)}
	reg := event.NewRegistry()
	reg.AddFiltered(event.Func(func(e *event.Event) any { return "corrupted" }),
		event.Filter{Where: event.Merge, HasWhere: true, When: event.Before, HasWhen: true})
	eng := NewEngine(Config{Costs: costs, LP: 1, Events: reg})
	_, _, err := eng.Run(nd, 2)
	if err == nil || !strings.Contains(err.Error(), "replaced merge input") {
		t.Fatalf("want merge replacement error, got %v", err)
	}
}
