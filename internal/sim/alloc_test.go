package sim

import (
	"testing"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

// TestStreamJobAllocBound pins the per-job allocation cost of the simulated
// hot path (farm(seq) with no listeners — the configuration the farm
// throughput benchmark measures). The bound is deliberately loose against
// incidental growth but tight enough to catch a return to per-event Event
// construction or per-activation trace copying, either of which multiplies
// the count.
func TestStreamJobAllocBound(t *testing.T) {
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	node := skel.NewFarm(skel.NewSeq(fe))
	eng := NewEngine(Config{
		Costs: CostFunc(func(*muscle.Muscle, any) time.Duration { return time.Millisecond }),
		LP:    4,
	})

	const jobs = 64
	inj := make([]Injection, jobs)
	for i := range inj {
		inj[i] = Injection{Param: i}
	}
	// Warm up once: plan/root-program caches populate on the first run.
	if _, err := eng.RunStream(node, inj); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.RunStream(node, inj); err != nil {
			t.Fatal(err)
		}
	})
	perJob := allocs / jobs
	// One farm(seq) job currently costs ~10 allocations (task, stack, the
	// activation's typed instructions). 20 leaves headroom; the pre-PR-4
	// closure-per-event interpreter sat near 25.
	if perJob > 20 {
		t.Fatalf("one farm(seq) job allocates %.1f objects (total %.0f for %d jobs), want <= 20",
			perJob, allocs, jobs)
	}
}
