package sim

import (
	"testing"
	"time"

	"skandium/internal/muscle"
	"skandium/internal/skel"
)

func farmProgram() (*skel.Node, *muscle.Muscle) {
	fe := muscle.NewExecute("job", func(p any) (any, error) { return p.(int) * 2, nil })
	return skel.NewFarm(skel.NewSeq(fe)), fe
}

// TestRunStreamBatchThroughput: 8 jobs of 10ms each arriving together.
func TestRunStreamBatchThroughput(t *testing.T) {
	nd, fe := farmProgram()
	costs := costTable{fe.ID(): ms(10)}
	cases := []struct {
		lp       int
		makespan time.Duration
	}{
		{1, ms(80)},
		{2, ms(40)},
		{4, ms(20)},
		{8, ms(10)},
	}
	for _, tc := range cases {
		eng := NewEngine(Config{Costs: costs, LP: tc.lp})
		injs := make([]Injection, 8)
		for i := range injs {
			injs[i] = Injection{Param: i}
		}
		start := eng.Now()
		rs, err := eng.RunStream(nd, injs)
		if err != nil {
			t.Fatalf("lp=%d: %v", tc.lp, err)
		}
		var last time.Time
		for i, r := range rs {
			if r.Result != i*2 {
				t.Fatalf("lp=%d job %d: result %v", tc.lp, i, r.Result)
			}
			if r.End.After(last) {
				last = r.End
			}
		}
		if got := last.Sub(start); got != tc.makespan {
			t.Fatalf("lp=%d: makespan %v, want %v", tc.lp, got, tc.makespan)
		}
	}
}

// TestRunStreamArrivals: spaced arrivals on an idle engine start on time;
// latency is the job's own 10ms when capacity is free.
func TestRunStreamArrivals(t *testing.T) {
	nd, fe := farmProgram()
	costs := costTable{fe.ID(): ms(10)}
	eng := NewEngine(Config{Costs: costs, LP: 2})
	injs := []Injection{
		{At: 0, Param: 0},
		{At: ms(50), Param: 1},
		{At: ms(100), Param: 2},
	}
	rs, err := eng.RunStream(nd, injs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Latency() != ms(10) {
			t.Fatalf("job %d latency %v, want 10ms", i, r.Latency())
		}
		if got := r.Start.Sub(eng.StartTime()); got != injs[i].At {
			t.Fatalf("job %d started at %v, want %v", i, got, injs[i].At)
		}
	}
}

// TestRunStreamQueueing: at LP 1, back-to-back arrivals queue and latency
// grows linearly — the farm bottleneck.
func TestRunStreamQueueing(t *testing.T) {
	nd, fe := farmProgram()
	costs := costTable{fe.ID(): ms(10)}
	eng := NewEngine(Config{Costs: costs, LP: 1})
	injs := []Injection{{Param: 0}, {Param: 1}, {Param: 2}}
	rs, err := eng.RunStream(nd, injs)
	if err != nil {
		t.Fatal(err)
	}
	// LIFO service order: total occupancy is 30ms; the slowest job waits
	// 20ms behind the other two.
	var worst time.Duration
	var sum time.Duration
	for _, r := range rs {
		if r.Latency() > worst {
			worst = r.Latency()
		}
		sum += r.Latency()
	}
	if worst != ms(30) {
		t.Fatalf("worst latency %v, want 30ms", worst)
	}
	if sum != ms(10+20+30) {
		t.Fatalf("total latency %v, want 60ms", sum)
	}
}

// TestRunStreamUnorderedArrivals are sorted by time.
func TestRunStreamUnorderedArrivals(t *testing.T) {
	nd, fe := farmProgram()
	costs := costTable{fe.ID(): ms(10)}
	eng := NewEngine(Config{Costs: costs, LP: 1})
	rs, err := eng.RunStream(nd, []Injection{
		{At: ms(40), Param: 40},
		{At: 0, Param: 0},
		{At: ms(20), Param: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Results stay in injection order; each starts at its own arrival.
	for i, wantAt := range []time.Duration{ms(40), 0, ms(20)} {
		if got := rs[i].Start.Sub(eng.StartTime()); got != wantAt {
			t.Fatalf("job %d start %v, want %v", i, got, wantAt)
		}
	}
	if rs[1].Result != 0 || rs[0].Result != 80 {
		t.Fatalf("results scrambled: %+v", rs)
	}
}

// TestRunStreamEmpty: no injections, no work.
func TestRunStreamEmpty(t *testing.T) {
	nd, fe := farmProgram()
	eng := NewEngine(Config{Costs: costTable{fe.ID(): ms(1)}})
	rs, err := eng.RunStream(nd, nil)
	if err != nil || rs != nil {
		t.Fatalf("got %v/%v", rs, err)
	}
}

// TestRunStreamWithNestedMap: each stream element fans out internally.
func TestRunStreamWithNestedMap(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): ms(2), fe.ID(): ms(10), fm.ID(): ms(1)}
	eng := NewEngine(Config{Costs: costs, LP: 4})
	rs, err := eng.RunStream(nd, []Injection{{Param: 4}, {At: ms(5), Param: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Result != 12 {
			t.Fatalf("job %d result %v", i, r.Result)
		}
	}
}
