package sim

import (
	"math/rand"
	"testing"
	"time"

	"skandium/internal/adg"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// TestLiveADGConsistency builds an ADG at *every* After event of live
// simulated executions (once the estimates are complete) and checks the
// structural and scheduling invariants each time:
//
//   - the graph is a valid DAG (topological order, no forward preds),
//   - best-effort and limited schedules respect dependencies and caps,
//   - limited-LP WCT is monotone in LP and bounded below by best effort,
//   - the graph never predicts completion before "now".
//
// This is the deepest integration property: tracker state machines, the
// builder's live/virtual mixing and both schedulers must agree at every
// instant of real executions, not just at hand-picked snapshots.
func TestLiveADGConsistency(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		est := estimate.NewRegistry(nil)
		program := randomLiveProgram(rng, est)
		reqDur, reqCard := adg.RequiredEstimates(program)

		reg := event.NewRegistry()
		tracker := statemachine.NewTracker(est)
		reg.Add(tracker.Listener())

		costs := CostFunc(func(m *muscle.Muscle, _ any) time.Duration {
			// Deterministic per-muscle-id cost in [1,8]ms.
			return time.Duration(1+int(m.ID())%8) * time.Millisecond
		})
		eng := NewEngine(Config{Costs: costs, LP: 2, Events: reg})

		analyses := 0
		builder := adg.Builder{Est: est, Budget: 5000}
		reg.Add(event.Func(func(e *event.Event) any {
			if e.When != event.After || !est.Complete(reqDur, reqCard) {
				return e.Param
			}
			root := tracker.Root()
			if root == nil {
				return e.Param
			}
			g, err := builder.BuildLive(root, eng.StartTime(), e.Time)
			if err != nil {
				return e.Param // estimates incomplete for unfolded parts
			}
			analyses++
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d (%s) at %v: %v", seed, program, e.Time, err)
			}
			g.ScheduleBestEffort()
			if err := g.CheckSchedule(0); err != nil {
				t.Fatalf("seed %d best effort: %v", seed, err)
			}
			best := g.WCT()
			if g.EndTime().Before(e.Time) {
				t.Fatalf("seed %d: predicted end %v before now %v", seed, g.EndTime(), e.Time)
			}
			prev := time.Duration(-1)
			for _, lp := range []int{1, 2, 4} {
				g.ScheduleLimited(lp)
				if err := g.CheckSchedule(lp); err != nil {
					t.Fatalf("seed %d lp %d: %v", seed, lp, err)
				}
				wct := g.WCT()
				if wct < best {
					t.Fatalf("seed %d lp %d: %v beats best effort %v", seed, lp, wct, best)
				}
				if prev >= 0 && wct > prev {
					t.Fatalf("seed %d: limited WCT grew %v -> %v at lp %d", seed, prev, wct, lp)
				}
				prev = wct
			}
			return e.Param
		}))

		if _, _, err := eng.Run(program, 1); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, program, err)
		}
		if analyses == 0 {
			t.Logf("seed %d (%s): estimates never completed mid-run (single-shot muscles)", seed, program)
		}
	}
}

// randomLiveProgram builds a program whose muscles recur enough for
// estimates to complete mid-run: nested maps with shared muscles and
// optional while/dac around them.
func randomLiveProgram(rng *rand.Rand, est *estimate.Registry) *skel.Node {
	fs := muscle.NewSplit("fs", func(p any) ([]any, error) {
		out := make([]any, 3)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	})
	fe := muscle.NewExecute("fe", func(p any) (any, error) { return p, nil })
	fm := muscle.NewMerge("fm", func(ps []any) (any, error) { return len(ps), nil })
	_ = est
	inner := skel.NewMap(fs, skel.NewSeq(fe), fm)
	program := skel.NewMap(fs, inner, fm)
	switch rng.Intn(3) {
	case 0:
		return program
	case 1:
		return skel.NewFor(2, skel.NewFarm(program))
	default:
		fc := muscle.NewCondition("lt3", func(p any) (bool, error) { return p.(int) < 3, nil })
		// |fc| is only observed when the while closes; seed it so analyses
		// can run mid-loop (the paper's initialization mechanism).
		est.InitCard(fc.ID(), 2)
		body := skel.NewPipe(program, skel.NewSeq(muscle.NewExecute("bump", func(p any) (any, error) {
			return p.(int) + 1, nil
		})))
		return skel.NewWhile(fc, body)
	}
}
