package sim

import (
	"fmt"
	"testing"
	"time"

	"skandium/internal/core"
	"skandium/internal/estimate"
	"skandium/internal/event"
	"skandium/internal/muscle"
	"skandium/internal/skel"
	"skandium/internal/statemachine"
)

// TestMultiNodeCapacityAndLink: in multi-node mode the LP lever provisions
// nodes, admission is bounded by the provisioned nodes' thread sum, and
// every muscle pays its node's round-trip link latency — all in virtual
// time, with exact makespans.
func TestMultiNodeCapacityAndLink(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): 0, fe.ID(): ms(10), fm.ID(): 0}
	nodes := []NodeSpec{
		{Threads: 2, Link: ms(5)},
		{Threads: 2, Link: ms(5)},
	}

	// One provisioned node: 2 threads, every muscle pays a 10ms round trip.
	// split(10) + 8 items × (10+10) on 2 threads (4 waves) + merge(10).
	eng := NewEngine(Config{Costs: costs, Nodes: nodes, LP: 1, MaxLP: 2})
	res, makespan, err := eng.Run(nd, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res != 56 { // sum of 2*i for i in 0..7
		t.Fatalf("result %v, want 56", res)
	}
	if makespan != ms(100) {
		t.Fatalf("1-node makespan %v, want 100ms", makespan)
	}

	// Both nodes: 4 threads, 2 waves of items.
	eng2 := NewEngine(Config{Costs: costs, Nodes: nodes, LP: 2, MaxLP: 2})
	if _, makespan, err = eng2.Run(nd, 8); err != nil {
		t.Fatal(err)
	}
	if makespan != ms(60) {
		t.Fatalf("2-node makespan %v, want 60ms", makespan)
	}
}

// TestMultiNodeLPClampsToPark: SetLP cannot provision more nodes than the
// machine park holds.
func TestMultiNodeLPClampsToPark(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): 0, fe.ID(): ms(1), fm.ID(): 0}
	eng := NewEngine(Config{Costs: costs, Nodes: []NodeSpec{{Threads: 2}, {Threads: 2}}, LP: 1})
	eng.SetLP(99)
	if got := eng.LP(); got != 2 {
		t.Fatalf("LP after SetLP(99) = %d, want clamp to 2 nodes", got)
	}
	if _, _, err := eng.Run(nd, 4); err != nil {
		t.Fatal(err)
	}
}

// TestMultiNodeControllerAdapts: the unchanged WCT controller drives the
// node count of a simulated cluster — provisioning machines instead of
// threads — deterministically in virtual time.
func TestMultiNodeControllerAdapts(t *testing.T) {
	build := func() (*skel.Node, costTable) {
		fsO := muscle.NewSplit("fsO", func(p any) ([]any, error) {
			out := make([]any, 4)
			for i := range out {
				out[i] = i
			}
			return out, nil
		})
		fsI := muscle.NewSplit("fsI", func(p any) ([]any, error) {
			out := make([]any, 3)
			for i := range out {
				out[i] = i
			}
			return out, nil
		})
		fe := muscle.NewExecute("fe", func(p any) (any, error) { return 1, nil })
		fmBoth := muscle.NewMerge("fm", func(ps []any) (any, error) { return len(ps), nil })
		inner := skel.NewMap(fsI, skel.NewSeq(fe), fmBoth)
		outer := skel.NewMap(fsO, inner, fmBoth)
		costs := costTable{fsO.ID(): ms(10), fsI.ID(): ms(5), fe.ID(): ms(10), fmBoth.ID(): ms(2)}
		return outer, costs
	}
	nodes := []NodeSpec{
		{Threads: 2, Link: ms(1)},
		{Threads: 2, Link: ms(1)},
		{Threads: 2, Link: ms(1)},
		{Threads: 2, Link: ms(1)},
	}

	// Baseline: one node, no controller.
	ndB, costsB := build()
	engB := NewEngine(Config{Costs: costsB, Nodes: nodes, LP: 1, MaxLP: 4})
	_, baseline, err := engB.Run(ndB, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Controlled run: the WCT goal forces the controller to provision nodes.
	nd, costs := build()
	reg := event.NewRegistry()
	est := estimate.NewRegistry(nil)
	tracker := statemachine.NewTracker(est)
	eng := NewEngine(Config{Costs: costs, Nodes: nodes, LP: 1, MaxLP: 4, Events: reg})
	ctl := core.NewController(core.Config{WCTGoal: baseline / 2, MaxLP: 4},
		nd, eng, est, tracker, eng.Clock())
	ctl.SetStart(eng.Now())
	core.Attach(reg, tracker, ctl)

	_, makespan, err := eng.Run(nd, 0)
	if err != nil {
		t.Fatal(err)
	}
	decisions := ctl.Decisions()
	if len(decisions) == 0 {
		t.Fatal("controller never provisioned a node")
	}
	if decisions[0].NewLP <= decisions[0].OldLP {
		t.Fatalf("first decision did not provision nodes: %+v", decisions[0])
	}
	for _, d := range decisions {
		if d.NewLP > len(nodes) {
			t.Fatalf("decision provisions %d nodes, park holds %d", d.NewLP, len(nodes))
		}
	}
	if makespan >= baseline {
		t.Fatalf("controlled makespan %v not better than 1-node baseline %v", makespan, baseline)
	}
}

// simNodeMember adapts a simulated node's probed report into a cluster
// arbiter member, mirroring how remote.Cluster adapts a live worker.
type simNodeMember struct {
	rep   core.NodeReport
	grant int
}

func (m *simNodeMember) Demand() core.Demand { return core.NodeDemand(m.rep) }
func (m *simNodeMember) Grant(g int)         { m.grant = g }

// TestMultiNodeClusterArbiterBudget is the acceptance-criteria test: a
// cluster arbiter dividing a global LP budget over the nodes of a
// deterministic multi-node simulation keeps Σ per-node grants ≤ budget at
// every virtual-time transition, even while per-node demand far exceeds
// the budget.
func TestMultiNodeClusterArbiterBudget(t *testing.T) {
	nd, fs, fe, fm := buildMapProgram()
	costs := costTable{fs.ID(): 0, fe.ID(): ms(10), fm.ID(): 0}
	nodes := []NodeSpec{
		{Threads: 4, Link: ms(1)},
		{Threads: 4, Link: ms(1)},
		{Threads: 4, Link: ms(1)},
	}
	budget := 6 // < 12 threads of aggregate demand: the arbiter must squeeze

	var eng *Engine
	members := make([]*simNodeMember, len(nodes))
	for i := range members {
		members[i] = &simNodeMember{rep: core.NodeReport{LP: 1, MaxLP: nodes[i].Threads}}
	}

	var ca *core.ClusterArbiter
	pressured := false
	var violation error
	gauge := func(now time.Time, active, lp int) {
		if ca == nil || violation != nil {
			return
		}
		// Probe: refresh each member's report from the simulated park, then
		// let the arbiter re-divide the budget — the same sample/rebalance
		// cycle the live coordinator runs against worker /healthz responses.
		occ := eng.NodeOccupancy()
		demand := 0
		for i, m := range members {
			m.rep.Active = occ[i]
			m.rep.LP = m.grant
			demand += core.NodeDemand(m.rep).DesiredLP
		}
		if demand > budget {
			pressured = true
		}
		ca.Rebalance()
		total := 0
		for _, m := range members {
			total += m.grant
		}
		if total > budget || ca.Granted() > budget {
			violation = fmt.Errorf("at %v: Σ grants %d (arbiter %d) exceeds budget %d",
				now.Sub(eng.StartTime()), total, ca.Granted(), budget)
		}
	}

	eng = NewEngine(Config{Costs: costs, Nodes: nodes, LP: 3, Gauge: gauge})
	ca = core.NewClusterArbiter(budget, eng.Clock())
	for i, m := range members {
		if err := ca.AdmitNode(fmt.Sprintf("sim-node-%d", i), m); err != nil {
			t.Fatalf("admit node %d: %v", i, err)
		}
	}

	if _, _, err := eng.Run(nd, 32); err != nil {
		t.Fatal(err)
	}
	if violation != nil {
		t.Fatal(violation)
	}
	if !pressured {
		t.Fatal("workload never pushed aggregate demand above the budget; test is vacuous")
	}
	// Every decision the arbiter logged is stamped by the simulation's
	// virtual clock, so the grant history is fully deterministic.
	if len(ca.Decisions()) == 0 {
		t.Fatal("arbiter made no grant decisions under pressure")
	}
	for _, d := range ca.Decisions() {
		if d.Time.Before(eng.StartTime()) {
			t.Fatalf("decision stamped before virtual start: %+v", d)
		}
	}
}
